file(REMOVE_RECURSE
  "libcmpsim.a"
)
