
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/decoupled_set.cc" "src/CMakeFiles/cmpsim.dir/cache/decoupled_set.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/cache/decoupled_set.cc.o.d"
  "/root/repo/src/cache/l1_cache.cc" "src/CMakeFiles/cmpsim.dir/cache/l1_cache.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/cache/l1_cache.cc.o.d"
  "/root/repo/src/cache/l2_cache.cc" "src/CMakeFiles/cmpsim.dir/cache/l2_cache.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/cache/l2_cache.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/cmpsim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/common/log.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/cmpsim.dir/common/random.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/cmpsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/common/stats.cc.o.d"
  "/root/repo/src/compression/bdi.cc" "src/CMakeFiles/cmpsim.dir/compression/bdi.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/compression/bdi.cc.o.d"
  "/root/repo/src/compression/fpc.cc" "src/CMakeFiles/cmpsim.dir/compression/fpc.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/compression/fpc.cc.o.d"
  "/root/repo/src/core/core_model.cc" "src/CMakeFiles/cmpsim.dir/core/core_model.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/core/core_model.cc.o.d"
  "/root/repo/src/core_api/cmp_system.cc" "src/CMakeFiles/cmpsim.dir/core_api/cmp_system.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/core_api/cmp_system.cc.o.d"
  "/root/repo/src/core_api/experiment.cc" "src/CMakeFiles/cmpsim.dir/core_api/experiment.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/core_api/experiment.cc.o.d"
  "/root/repo/src/core_api/miss_classify.cc" "src/CMakeFiles/cmpsim.dir/core_api/miss_classify.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/core_api/miss_classify.cc.o.d"
  "/root/repo/src/core_api/system_config.cc" "src/CMakeFiles/cmpsim.dir/core_api/system_config.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/core_api/system_config.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/cmpsim.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/priority_link.cc" "src/CMakeFiles/cmpsim.dir/mem/priority_link.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/mem/priority_link.cc.o.d"
  "/root/repo/src/prefetch/stride_prefetcher.cc" "src/CMakeFiles/cmpsim.dir/prefetch/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/prefetch/stride_prefetcher.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/cmpsim.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/synthetic_workload.cc" "src/CMakeFiles/cmpsim.dir/workload/synthetic_workload.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/workload/synthetic_workload.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/cmpsim.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/value_profile.cc" "src/CMakeFiles/cmpsim.dir/workload/value_profile.cc.o" "gcc" "src/CMakeFiles/cmpsim.dir/workload/value_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
