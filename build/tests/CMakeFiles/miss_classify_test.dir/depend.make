# Empty dependencies file for miss_classify_test.
# This may be replaced when dependencies are built.
