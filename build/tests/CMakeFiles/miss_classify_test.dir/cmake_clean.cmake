file(REMOVE_RECURSE
  "CMakeFiles/miss_classify_test.dir/miss_classify_test.cc.o"
  "CMakeFiles/miss_classify_test.dir/miss_classify_test.cc.o.d"
  "miss_classify_test"
  "miss_classify_test.pdb"
  "miss_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miss_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
