# Empty compiler generated dependencies file for l2_cache_test.
# This may be replaced when dependencies are built.
