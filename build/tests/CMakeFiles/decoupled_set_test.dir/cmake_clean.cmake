file(REMOVE_RECURSE
  "CMakeFiles/decoupled_set_test.dir/decoupled_set_test.cc.o"
  "CMakeFiles/decoupled_set_test.dir/decoupled_set_test.cc.o.d"
  "decoupled_set_test"
  "decoupled_set_test.pdb"
  "decoupled_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupled_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
