# Empty compiler generated dependencies file for decoupled_set_test.
# This may be replaced when dependencies are built.
