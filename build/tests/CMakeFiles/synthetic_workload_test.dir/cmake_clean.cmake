file(REMOVE_RECURSE
  "CMakeFiles/synthetic_workload_test.dir/synthetic_workload_test.cc.o"
  "CMakeFiles/synthetic_workload_test.dir/synthetic_workload_test.cc.o.d"
  "synthetic_workload_test"
  "synthetic_workload_test.pdb"
  "synthetic_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
