# Empty dependencies file for synthetic_workload_test.
# This may be replaced when dependencies are built.
