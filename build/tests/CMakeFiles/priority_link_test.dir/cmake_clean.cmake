file(REMOVE_RECURSE
  "CMakeFiles/priority_link_test.dir/priority_link_test.cc.o"
  "CMakeFiles/priority_link_test.dir/priority_link_test.cc.o.d"
  "priority_link_test"
  "priority_link_test.pdb"
  "priority_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
