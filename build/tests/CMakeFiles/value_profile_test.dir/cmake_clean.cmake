file(REMOVE_RECURSE
  "CMakeFiles/value_profile_test.dir/value_profile_test.cc.o"
  "CMakeFiles/value_profile_test.dir/value_profile_test.cc.o.d"
  "value_profile_test"
  "value_profile_test.pdb"
  "value_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
