# Empty dependencies file for value_profile_test.
# This may be replaced when dependencies are built.
