file(REMOVE_RECURSE
  "CMakeFiles/l1_cache_test.dir/l1_cache_test.cc.o"
  "CMakeFiles/l1_cache_test.dir/l1_cache_test.cc.o.d"
  "l1_cache_test"
  "l1_cache_test.pdb"
  "l1_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l1_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
