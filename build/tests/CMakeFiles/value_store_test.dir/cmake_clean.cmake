file(REMOVE_RECURSE
  "CMakeFiles/value_store_test.dir/value_store_test.cc.o"
  "CMakeFiles/value_store_test.dir/value_store_test.cc.o.d"
  "value_store_test"
  "value_store_test.pdb"
  "value_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
