# Empty compiler generated dependencies file for value_store_test.
# This may be replaced when dependencies are built.
