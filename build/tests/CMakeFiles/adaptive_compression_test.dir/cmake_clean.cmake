file(REMOVE_RECURSE
  "CMakeFiles/adaptive_compression_test.dir/adaptive_compression_test.cc.o"
  "CMakeFiles/adaptive_compression_test.dir/adaptive_compression_test.cc.o.d"
  "adaptive_compression_test"
  "adaptive_compression_test.pdb"
  "adaptive_compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
