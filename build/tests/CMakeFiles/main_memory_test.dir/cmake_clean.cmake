file(REMOVE_RECURSE
  "CMakeFiles/main_memory_test.dir/main_memory_test.cc.o"
  "CMakeFiles/main_memory_test.dir/main_memory_test.cc.o.d"
  "main_memory_test"
  "main_memory_test.pdb"
  "main_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/main_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
