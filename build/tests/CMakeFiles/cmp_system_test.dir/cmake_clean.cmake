file(REMOVE_RECURSE
  "CMakeFiles/cmp_system_test.dir/cmp_system_test.cc.o"
  "CMakeFiles/cmp_system_test.dir/cmp_system_test.cc.o.d"
  "cmp_system_test"
  "cmp_system_test.pdb"
  "cmp_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
