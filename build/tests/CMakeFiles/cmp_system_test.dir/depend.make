# Empty dependencies file for cmp_system_test.
# This may be replaced when dependencies are built.
