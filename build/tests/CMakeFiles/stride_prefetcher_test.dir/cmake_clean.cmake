file(REMOVE_RECURSE
  "CMakeFiles/stride_prefetcher_test.dir/stride_prefetcher_test.cc.o"
  "CMakeFiles/stride_prefetcher_test.dir/stride_prefetcher_test.cc.o.d"
  "stride_prefetcher_test"
  "stride_prefetcher_test.pdb"
  "stride_prefetcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stride_prefetcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
