# Empty dependencies file for stride_prefetcher_test.
# This may be replaced when dependencies are built.
