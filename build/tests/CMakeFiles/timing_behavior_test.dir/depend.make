# Empty dependencies file for timing_behavior_test.
# This may be replaced when dependencies are built.
