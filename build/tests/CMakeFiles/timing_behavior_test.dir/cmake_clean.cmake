file(REMOVE_RECURSE
  "CMakeFiles/timing_behavior_test.dir/timing_behavior_test.cc.o"
  "CMakeFiles/timing_behavior_test.dir/timing_behavior_test.cc.o.d"
  "timing_behavior_test"
  "timing_behavior_test.pdb"
  "timing_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
