# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/sat_counter_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/fpc_test[1]_include.cmake")
include("/root/repo/build/tests/bdi_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/bandwidth_resource_test[1]_include.cmake")
include("/root/repo/build/tests/value_store_test[1]_include.cmake")
include("/root/repo/build/tests/main_memory_test[1]_include.cmake")
include("/root/repo/build/tests/decoupled_set_test[1]_include.cmake")
include("/root/repo/build/tests/stride_prefetcher_test[1]_include.cmake")
include("/root/repo/build/tests/l2_cache_test[1]_include.cmake")
include("/root/repo/build/tests/l1_cache_test[1]_include.cmake")
include("/root/repo/build/tests/value_profile_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/miss_classify_test[1]_include.cmake")
include("/root/repo/build/tests/cmp_system_test[1]_include.cmake")
include("/root/repo/build/tests/priority_link_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_property_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_compression_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/timing_behavior_test[1]_include.cmake")
