file(REMOVE_RECURSE
  "CMakeFiles/webserver_scaling.dir/webserver_scaling.cc.o"
  "CMakeFiles/webserver_scaling.dir/webserver_scaling.cc.o.d"
  "webserver_scaling"
  "webserver_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
