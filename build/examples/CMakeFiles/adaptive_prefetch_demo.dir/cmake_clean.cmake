file(REMOVE_RECURSE
  "CMakeFiles/adaptive_prefetch_demo.dir/adaptive_prefetch_demo.cc.o"
  "CMakeFiles/adaptive_prefetch_demo.dir/adaptive_prefetch_demo.cc.o.d"
  "adaptive_prefetch_demo"
  "adaptive_prefetch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_prefetch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
