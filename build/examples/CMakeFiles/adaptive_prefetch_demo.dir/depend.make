# Empty dependencies file for adaptive_prefetch_demo.
# This may be replaced when dependencies are built.
