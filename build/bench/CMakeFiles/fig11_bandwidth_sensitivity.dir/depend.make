# Empty dependencies file for fig11_bandwidth_sensitivity.
# This may be replaced when dependencies are built.
