# Empty dependencies file for table4_prefetch_properties.
# This may be replaced when dependencies are built.
