file(REMOVE_RECURSE
  "CMakeFiles/table4_prefetch_properties.dir/table4_prefetch_properties.cc.o"
  "CMakeFiles/table4_prefetch_properties.dir/table4_prefetch_properties.cc.o.d"
  "table4_prefetch_properties"
  "table4_prefetch_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_prefetch_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
