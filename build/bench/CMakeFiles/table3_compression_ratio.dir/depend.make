# Empty dependencies file for table3_compression_ratio.
# This may be replaced when dependencies are built.
