file(REMOVE_RECURSE
  "CMakeFiles/table3_compression_ratio.dir/table3_compression_ratio.cc.o"
  "CMakeFiles/table3_compression_ratio.dir/table3_compression_ratio.cc.o.d"
  "table3_compression_ratio"
  "table3_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
