file(REMOVE_RECURSE
  "CMakeFiles/fig08_miss_classification.dir/fig08_miss_classification.cc.o"
  "CMakeFiles/fig08_miss_classification.dir/fig08_miss_classification.cc.o.d"
  "fig08_miss_classification"
  "fig08_miss_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_miss_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
