# Empty compiler generated dependencies file for fig08_miss_classification.
# This may be replaced when dependencies are built.
