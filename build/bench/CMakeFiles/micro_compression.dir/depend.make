# Empty dependencies file for micro_compression.
# This may be replaced when dependencies are built.
