# Empty dependencies file for table5_interactions.
# This may be replaced when dependencies are built.
