file(REMOVE_RECURSE
  "CMakeFiles/table5_interactions.dir/table5_interactions.cc.o"
  "CMakeFiles/table5_interactions.dir/table5_interactions.cc.o.d"
  "table5_interactions"
  "table5_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
