# Empty dependencies file for fig12_core_scaling.
# This may be replaced when dependencies are built.
