file(REMOVE_RECURSE
  "CMakeFiles/fig09_speedup_combos.dir/fig09_speedup_combos.cc.o"
  "CMakeFiles/fig09_speedup_combos.dir/fig09_speedup_combos.cc.o.d"
  "fig09_speedup_combos"
  "fig09_speedup_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_speedup_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
