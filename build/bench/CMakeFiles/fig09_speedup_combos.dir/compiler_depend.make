# Empty compiler generated dependencies file for fig09_speedup_combos.
# This may be replaced when dependencies are built.
