file(REMOVE_RECURSE
  "CMakeFiles/fig07_bandwidth_pref_compr.dir/fig07_bandwidth_pref_compr.cc.o"
  "CMakeFiles/fig07_bandwidth_pref_compr.dir/fig07_bandwidth_pref_compr.cc.o.d"
  "fig07_bandwidth_pref_compr"
  "fig07_bandwidth_pref_compr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bandwidth_pref_compr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
