# Empty compiler generated dependencies file for fig07_bandwidth_pref_compr.
# This may be replaced when dependencies are built.
