# Empty dependencies file for fig10_adaptive_speedup.
# This may be replaced when dependencies are built.
