file(REMOVE_RECURSE
  "CMakeFiles/fig04_bandwidth_demand.dir/fig04_bandwidth_demand.cc.o"
  "CMakeFiles/fig04_bandwidth_demand.dir/fig04_bandwidth_demand.cc.o.d"
  "fig04_bandwidth_demand"
  "fig04_bandwidth_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bandwidth_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
