# Empty dependencies file for fig04_bandwidth_demand.
# This may be replaced when dependencies are built.
