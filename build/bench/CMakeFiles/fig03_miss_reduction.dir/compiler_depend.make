# Empty compiler generated dependencies file for fig03_miss_reduction.
# This may be replaced when dependencies are built.
