file(REMOVE_RECURSE
  "CMakeFiles/fig03_miss_reduction.dir/fig03_miss_reduction.cc.o"
  "CMakeFiles/fig03_miss_reduction.dir/fig03_miss_reduction.cc.o.d"
  "fig03_miss_reduction"
  "fig03_miss_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_miss_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
