# Empty compiler generated dependencies file for cmpsim_cli.
# This may be replaced when dependencies are built.
