file(REMOVE_RECURSE
  "CMakeFiles/cmpsim_cli.dir/cmpsim_cli.cc.o"
  "CMakeFiles/cmpsim_cli.dir/cmpsim_cli.cc.o.d"
  "cmpsim"
  "cmpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
