/**
 * @file
 * Figure 11 ablation: the banked DRAM timing model (src/dram/) versus
 * the paper's fixed 400-cycle memory. Three questions:
 *
 *  1. Does the Interaction(Pref, Compr) coefficient survive when the
 *     constant-latency memory is replaced by banks, row buffers and
 *     FR-FCFS scheduling? (The paper's effect should not depend on the
 *     simplification — "Validating Simplified Processor Models".)
 *  2. Row locality: a stride-prefetch workload must show a clearly
 *     higher row-hit rate than a random-access variant of the same
 *     workload, and FCFS scheduling must forfeit part of the hits
 *     that FR-FCFS reorders for.
 *  3. Compression x scheduling: with link compression, lines are
 *     stored compressed (ECC meta-bit trick), so DRAM bursts shorten
 *     and mean read latency drops — an interaction the fixed model
 *     cannot express.
 *
 * The fixed-backend points here also give the perf trajectory a
 * banked-vs-fixed overhead number (BENCH_results.json wall-clock).
 */

#include "bench/bench_common.h"

#include "src/core_api/cmp_system.h"
#include "src/dram/dram_backend.h"

using namespace cmpsim;
using namespace cmpsim::bench;

namespace {

/** Pref-config run with the banked backend; reads the DRAM stat block
 *  directly (row-hit rate is deliberately not a RunResult field: the
 *  fixed path's summaries must stay byte-stable). */
struct DramRun
{
    double row_hit_rate;
    double read_latency;
    double cycles;
};

DramRun
runBanked(Cfg cfg, const WorkloadParams &wl, DramSched sched)
{
    SystemConfig c = configFor(cfg);
    c.dram = DramTimingParams{}; // shield against a stray CMPSIM_DRAM
    c.dram.backend = DramBackendKind::Banked;
    c.dram.sched = sched;
    CmpSystem sys(c, wl);
    const RunLengths len = defaultRunLengths();
    sys.warmup(len.warmup_per_core);
    sys.run(len.measure_per_core);
    StatRegistry &reg = sys.stats();
    const auto hits = reg.counter("mem.dram.row_hits");
    const auto misses = reg.counter("mem.dram.row_misses");
    const auto conflicts = reg.counter("mem.dram.row_conflicts");
    const std::uint64_t total = hits + misses + conflicts;
    DramRun r;
    r.row_hit_rate =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits) /
                         static_cast<double>(total);
    r.read_latency = reg.average("mem.read_latency");
    r.cycles = static_cast<double>(sys.cycles());
    return r;
}

} // namespace

int
main()
{
    banner("Figure 11b (ablation): banked DRAM backend vs fixed",
           "model-robustness check: no paper counterpart; interaction "
           "signs should match Figure 11 at 20 GB/s");

    // ---- 1: interaction coefficient under both backends ----------
    const Cfg cfgs[] = {Cfg::Base, Cfg::Pref, Cfg::Compr,
                        Cfg::ComprPref};
    constexpr std::size_t kCfgs = sizeof(cfgs) / sizeof(cfgs[0]);
    const std::vector<std::string> wls = {"zeus", "mgrid"};

    std::vector<PointSpec> specs;
    for (const auto &wl : wls) {
        for (const bool banked : {false, true}) {
            for (const Cfg c : cfgs) {
                PointSpec s = pointSpec(c, wl, 8, 20.0, false, 1);
                s.config.dram = DramTimingParams{};
                if (banked)
                    s.config.dram.backend = DramBackendKind::Banked;
                specs.push_back(s);
            }
        }
    }
    const auto results = runPoints(specs);

    std::printf("%-8s %12s %12s %14s\n", "bench", "fixed", "banked",
                "base overhead");
    for (std::size_t w = 0; w < wls.size(); ++w) {
        double inter[2] = {0, 0};
        double base_cycles[2] = {0, 0};
        for (std::size_t b = 0; b < 2; ++b) {
            const std::size_t at = (w * 2 + b) * kCfgs;
            const double base = meanCycles(results[at]);
            const double pref = meanCycles(results[at + 1]);
            const double compr = meanCycles(results[at + 2]);
            const double both = meanCycles(results[at + 3]);
            base_cycles[b] = base;
            inter[b] = interaction(speedup(base, pref),
                                   speedup(base, compr),
                                   speedup(base, both)) *
                       100.0;
        }
        std::printf("%-8s %+11.1f%% %+11.1f%% %+13.1f%%\n",
                    wls[w].c_str(), inter[0], inter[1],
                    (base_cycles[1] / base_cycles[0] - 1.0) * 100.0);
    }

    // ---- 2 & 3: row locality and compression-shortened bursts ----
    const WorkloadParams stride = benchmarkParams("mgrid");
    WorkloadParams random = stride;
    random.name = "mgrid-random";
    random.stride_frac = 0.0; // same footprints, no stride streams

    const DramRun s_frfcfs =
        runBanked(Cfg::Pref, stride, DramSched::FrFcfs);
    const DramRun s_fcfs = runBanked(Cfg::Pref, stride, DramSched::Fcfs);
    const DramRun r_frfcfs =
        runBanked(Cfg::Pref, random, DramSched::FrFcfs);
    const DramRun compr =
        runBanked(Cfg::ComprPref, stride, DramSched::FrFcfs);

    std::printf("\n%-24s %12s %14s\n", "banked point (mgrid)",
                "row hits", "read latency");
    std::printf("%-24s %11.1f%% %13.0fcy\n", "stride + FR-FCFS",
                s_frfcfs.row_hit_rate, s_frfcfs.read_latency);
    std::printf("%-24s %11.1f%% %13.0fcy\n", "stride + FCFS",
                s_fcfs.row_hit_rate, s_fcfs.read_latency);
    std::printf("%-24s %11.1f%% %13.0fcy\n", "random + FR-FCFS",
                r_frfcfs.row_hit_rate, r_frfcfs.read_latency);
    std::printf("%-24s %11.1f%% %13.0fcy\n", "stride + compression",
                compr.row_hit_rate, compr.read_latency);
    std::printf("\nstride vs random row-hit delta: %+0.1f points "
                "(expect clearly positive)\n",
                s_frfcfs.row_hit_rate - r_frfcfs.row_hit_rate);
    return 0;
}
