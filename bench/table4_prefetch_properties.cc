/**
 * @file
 * Reproduces Table 4: prefetch rate (per 1000 instructions), coverage
 * (EQ 3) and accuracy (EQ 4) for the L1I, L1D and L2 prefetchers, on
 * the 8-core CMP with non-adaptive prefetching and no compression.
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Table 4: prefetching properties (rate / coverage% / "
           "accuracy%)",
           "commercial: high L1I rates, L2 26-45% cov @ 32-58% acc; "
           "SPEComp: near-zero L1I, L2 45-96% cov @ 74-98% acc");

    std::printf("%-8s | %18s | %18s | %18s\n", "bench",
                "L1I  r/cov/acc", "L1D  r/cov/acc", "L2   r/cov/acc");
    std::printf("%-8s | %18s | %18s | %18s  (paper)\n", "", "", "", "");
    for (const auto &wl : benchmarkNames()) {
        const auto s = point(Cfg::Pref, wl);
        auto m = [&](RunResult::PfMetrics RunResult::*field) {
            RunResult::PfMetrics out;
            for (const auto &r : s.runs) {
                out.rate_per_kilo_instr +=
                    (r.*field).rate_per_kilo_instr;
                out.coverage_pct += (r.*field).coverage_pct;
                out.accuracy_pct += (r.*field).accuracy_pct;
            }
            const auto n = static_cast<double>(s.runs.size());
            out.rate_per_kilo_instr /= n;
            out.coverage_pct /= n;
            out.accuracy_pct /= n;
            return out;
        };
        const auto i = m(&RunResult::l1i);
        const auto d = m(&RunResult::l1d);
        const auto l2 = m(&RunResult::l2pf);
        const auto &p = paperTable4Row(wl);
        std::printf("%-8s | %5.1f %5.1f %5.1f | %5.1f %5.1f %5.1f | "
                    "%5.1f %5.1f %5.1f\n",
                    wl.c_str(), i.rate_per_kilo_instr, i.coverage_pct,
                    i.accuracy_pct, d.rate_per_kilo_instr,
                    d.coverage_pct, d.accuracy_pct,
                    l2.rate_per_kilo_instr, l2.coverage_pct,
                    l2.accuracy_pct);
        std::printf("%-8s | %5.1f %5.1f %5.1f | %5.1f %5.1f %5.1f | "
                    "%5.1f %5.1f %5.1f   <- paper\n",
                    "", p.l1i_rate, p.l1i_cov, p.l1i_acc, p.l1d_rate,
                    p.l1d_cov, p.l1d_acc, p.l2_rate, p.l2_cov,
                    p.l2_acc);
    }
    return 0;
}
