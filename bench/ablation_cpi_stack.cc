/**
 * @file
 * CPI-stack ablation: re-derive the *sign* of Table 5's
 * compression x prefetching interaction from cycle attribution
 * instead of end-to-end speedups.
 *
 * EQ 5 defines Interaction(P,C) through multiplicative speedups. To
 * first order that is an additive statement about CPI stacks:
 *
 *   Interaction > 0  <=>  CPI(P) + CPI(C) - CPI(base) - CPI(P,C) > 0
 *
 * and since the armed CPI-stack layer (DESIGN.md Section 9) splits
 * every CPI into leaf causes that sum exactly to elapsed cycles, the
 * left side decomposes exactly, leaf by leaf:
 *
 *   contribution(leaf) = leaf(P) + leaf(C) - leaf(base) - leaf(P,C)
 *
 * The table below prints those contributions per 1k instructions, so
 * the interaction's sign is visible as *which* leaves shrink when the
 * techniques combine — decompression exposure hidden behind prefetch
 * in-flight time, DRAM/link service cycles prefetches pull off the
 * critical path — rather than a single opaque percentage.
 *
 * Paper: Table 5 reports +21.5% (mgrid) and +15.0% (apache).
 */

#include "bench/bench_common.h"

#include <string>
#include <vector>

#include "src/core_api/cmp_system.h"
#include "src/obs/cpi_stack.h"

using namespace cmpsim;
using namespace cmpsim::bench;

namespace {

/** Attribution results of one armed (config, workload) run. */
struct ArmedPoint
{
    double cycles = 0.0;
    double instructions = 0.0;
    /** Per-leaf cycles summed over all cores. */
    std::uint64_t leaves[kCpiLeafCount] = {};
    std::uint64_t pf_hidden = 0;
    std::uint64_t journeys = 0;
};

ArmedPoint
runArmed(Cfg c, const std::string &wl)
{
    SystemConfig cfg = configFor(c);
    cfg.cpi_stack = true;
    const auto len = defaultRunLengths();

    CmpSystem sys(cfg, benchmarkParams(wl));
    sys.warmup(len.warmup_per_core);
    sys.run(len.measure_per_core);

    ArmedPoint p;
    p.cycles = static_cast<double>(sys.cycles());
    p.instructions = static_cast<double>(sys.instructions());
    for (unsigned core = 0; core < cfg.cores; ++core) {
        const CpiAccount *a = sys.cpiAccount(core);
        for (unsigned l = 0; l < kCpiLeafCount; ++l)
            p.leaves[l] += a->leafCycles(static_cast<CpiLeaf>(l));
        p.pf_hidden += a->pfHiddenCycles();
    }
    p.journeys = sys.missJournal()->recordsCompleted();
    return p;
}

/** Leaf cycles per 1k instructions. */
double
perKi(const ArmedPoint &p, unsigned leaf)
{
    return p.instructions == 0.0
               ? 0.0
               : static_cast<double>(p.leaves[leaf]) * 1000.0 /
                     p.instructions;
}

} // namespace

int
main()
{
    banner("CPI-stack ablation: Table 5 interaction sign from cycle "
           "attribution",
           "Table 5 interaction +21.5% (mgrid), +15.0% (apache)");

    const Cfg cfgs[] = {Cfg::Base, Cfg::Pref, Cfg::Compr,
                        Cfg::ComprPref};
    const char *cfg_names[] = {"base", "pref", "compr", "both"};

    for (const std::string wl : {"mgrid", "apache"}) {
        ArmedPoint pts[4];
        for (std::size_t i = 0; i < 4; ++i)
            pts[i] = runArmed(cfgs[i], wl);
        const ArmedPoint &base = pts[0], &pref = pts[1],
                         &compr = pts[2], &both = pts[3];

        std::printf("%s\n", wl.c_str());
        std::printf("  %-6s | %10s %8s %12s %12s %10s\n", "config",
                    "cycles", "CPI", "decomp/ki", "pf_hidden/ki",
                    "journeys");
        for (std::size_t i = 0; i < 4; ++i) {
            const ArmedPoint &p = pts[i];
            std::printf(
                "  %-6s | %10.0f %8.3f %12.1f %12.1f %10llu\n",
                cfg_names[i], p.cycles,
                p.instructions == 0.0
                    ? 0.0
                    : p.cycles * static_cast<double>(configFor(cfgs[i]).cores) /
                          p.instructions,
                perKi(p, static_cast<unsigned>(CpiLeaf::Decompression)),
                p.instructions == 0.0
                    ? 0.0
                    : static_cast<double>(p.pf_hidden) * 1000.0 /
                          p.instructions,
                static_cast<unsigned long long>(p.journeys));
        }

        // Per-leaf interaction contributions (cycles per 1k instr):
        // positive means the leaf shrinks super-additively when the
        // techniques combine. The column sums exactly to the additive
        // CPI interaction because each stack sums to its run's cycles.
        std::printf("  interaction contributions "
                    "(leaf(P)+leaf(C)-leaf(base)-leaf(P,C), per 1k "
                    "instr):\n");
        double total = 0.0;
        for (unsigned l = 0; l < kCpiLeafCount; ++l) {
            const double contrib = perKi(pref, l) + perKi(compr, l) -
                                   perKi(base, l) - perKi(both, l);
            total += contrib;
            if (contrib != 0.0)
                std::printf("    %-16s %+9.1f\n",
                            cpiLeafName(static_cast<CpiLeaf>(l)),
                            contrib);
        }

        // EQ 5's multiplicative interaction from the same runs, for
        // the side-by-side sign check.
        const double sp = base.cycles / pref.cycles;
        const double sc = base.cycles / compr.cycles;
        const double sb = base.cycles / both.cycles;
        const double eq5 = (sb / (sp * sc) - 1.0) * 100.0;
        const auto &paper = paperRow(wl);
        std::printf("    %-16s %+9.1f  (sign %s)\n", "TOTAL", total,
                    total > 0 ? "positive" : "negative");
        std::printf("  EQ5 interaction %+.1f%%  (sign %s)   paper "
                    "%+.1f%%\n\n",
                    eq5, eq5 > 0 ? "positive" : "negative",
                    paper.interaction);
    }
    return 0;
}
