/**
 * @file
 * google-benchmark microbenchmarks for the compression substrate:
 * FPC and BDI compress/decompress throughput over data of varying
 * compressibility, plus word classification. These measure the
 * simulator's own hot paths (compressed-size queries dominate the
 * ValueStore memo misses).
 */

#include <benchmark/benchmark.h>

#include "src/compression/bdi.h"
#include "src/compression/fpc.h"
#include "src/workload/value_profile.h"

namespace {

using namespace cmpsim;

LineData
lineFor(double zero_frac, std::uint64_t seed)
{
    ValueGenerator gen({zero_frac, 0.2, 0.05, 0.1});
    Random rng(seed);
    return gen.generate(rng);
}

void
BM_FpcCompress(benchmark::State &state)
{
    FpcCompressor fpc;
    const LineData line =
        lineFor(static_cast<double>(state.range(0)) / 100.0, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fpc.compress(line).segments);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineBytes);
}
BENCHMARK(BM_FpcCompress)->Arg(0)->Arg(30)->Arg(80);

void
BM_FpcRoundTrip(benchmark::State &state)
{
    FpcCompressor fpc;
    const LineData line = lineFor(0.3, 43);
    for (auto _ : state) {
        BitStream bs;
        const auto size = fpc.compress(line, &bs);
        benchmark::DoNotOptimize(fpc.decompress(bs, size));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineBytes);
}
BENCHMARK(BM_FpcRoundTrip);

void
BM_BdiCompress(benchmark::State &state)
{
    BdiCompressor bdi;
    const LineData line =
        lineFor(static_cast<double>(state.range(0)) / 100.0, 44);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bdi.compress(line).segments);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineBytes);
}
BENCHMARK(BM_BdiCompress)->Arg(0)->Arg(30)->Arg(80);

void
BM_FpcClassify(benchmark::State &state)
{
    Random rng(45);
    std::vector<std::uint32_t> words(1024);
    for (auto &w : words)
        w = static_cast<std::uint32_t>(rng.next());
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            FpcCompressor::classify(words[i++ & 1023]));
    }
}
BENCHMARK(BM_FpcClassify);

} // namespace

BENCHMARK_MAIN();
