/**
 * @file
 * Reproduces Figure 7: pin bandwidth demand of prefetching and
 * compression combinations, normalized to the base system (no
 * compression, no prefetching), on an infinite-bandwidth system.
 * Paper: prefetching alone raises demand 23-206%; combining with
 * cache+link compression pulls the increase back (zeus +98% -> +14%;
 * art +23% -> -4%). Also prints the adaptive rows of Section 5.1
 * (non-adaptive +70-132% commercial vs adaptive +19-52%).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 7: normalized bandwidth demand (base = 100)",
           "pref alone: 123-306; pref+compr far lower (zeus 114); "
           "adaptive limits the commercial increase to +19-52%");

    std::printf("%-8s %8s %8s %12s %12s %14s\n", "bench", "base",
                "pref", "adaptive", "pref+compr", "adapt+compr");
    for (const auto &wl : benchmarkNames()) {
        auto bw = [&](Cfg c) {
            return meanOf(point(c, wl, 8, 20.0, /*infinite=*/true),
                          [](const RunResult &r) {
                              return r.bandwidth_gbps;
                          });
        };
        const double base = bw(Cfg::Base);
        auto norm = [&](double v) {
            return base > 0 ? v / base * 100.0 : 0.0;
        };
        std::printf("%-8s %8.0f %8.0f %12.0f %12.0f %14.0f\n",
                    wl.c_str(), 100.0, norm(bw(Cfg::Pref)),
                    norm(bw(Cfg::Adaptive)), norm(bw(Cfg::ComprPref)),
                    norm(bw(Cfg::ComprAdapt)));
    }
    return 0;
}
