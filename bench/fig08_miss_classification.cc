/**
 * @file
 * Reproduces Figure 8: classification of L2 misses and prefetches by
 * whether compression and/or prefetching avoids them. Six classes as
 * fractions of base demand misses (the 100% line): unavoidable,
 * avoided only by compression, avoided only by prefetching, avoided
 * by either (the negative-interaction intersection — paper: 8% for
 * apache, 7% for art, <=3% elsewhere), prefetches kept, and
 * prefetches avoided by compression (the positive interaction).
 *
 * Unlike the paper's global inclusion-exclusion estimate, the
 * classifier here intersects exact per-line miss counts recorded by
 * the L2 miss observer.
 */

#include "bench/bench_common.h"

#include "src/core_api/cmp_system.h"

using namespace cmpsim;
using namespace cmpsim::bench;

namespace {

MissProfile
profileOf(Cfg cfg, const std::string &wl)
{
    SystemConfig c = configFor(cfg);
    CmpSystem sys(c, benchmarkParams(wl));
    MissProfile profile;
    sys.l2().setMissObserver(
        [&](ReqType t, Addr line) { profile.record(t, line); });
    const auto len = defaultRunLengths();
    sys.warmup(len.warmup_per_core);
    sys.run(len.measure_per_core);
    return profile;
}

} // namespace

int
main()
{
    banner("Figure 8: L2 miss/prefetch classification (% of base "
           "demand misses)",
           "avoided-by-either intersection small: apache 8%, art 7%, "
           "<=3% elsewhere; compression absorbs many commercial "
           "prefetches");

    std::printf("%-8s %8s %8s %8s %8s | %9s %9s\n", "bench", "unavoid",
                "only-C", "only-P", "either", "pf-kept", "pf-avoided");
    for (const auto &wl : benchmarkNames()) {
        const auto base = profileOf(Cfg::Base, wl);
        const auto with_c = profileOf(Cfg::CacheCompr, wl);
        const auto with_p = profileOf(Cfg::Pref, wl);
        const auto with_cp = profileOf(Cfg::ComprPref, wl);
        const auto cls = classifyMisses(base, with_c, with_p, with_cp);
        std::printf("%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %8.1f%% "
                    "%8.1f%%\n",
                    wl.c_str(), cls.unavoidable * 100,
                    cls.only_compression * 100,
                    cls.only_prefetching * 100, cls.either * 100,
                    cls.prefetches_kept * 100,
                    cls.prefetches_avoided * 100);
    }
    return 0;
}
