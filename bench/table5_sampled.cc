/**
 * @file
 * Reproduces the Table 5 interaction sign with the statistical
 * sampling engine (DESIGN.md §14) on a 100x longer workload than the
 * full-detail benches can afford: each point traverses 5M instructions
 * per core (vs the standard 50k measured window) as ten 500k-instr
 * intervals of pure-skip + functional-warming fast-forward + 20k
 * detail. The warming depth is per-workload: mgrid's streaming
 * working set needs a deep warm (145k) before its prefetch/compression
 * interaction shows, zeus is warm after 45k.
 *
 * The interaction CI uses a *paired* per-interval design. Intervals
 * are instruction-indexed and the workload's RNG draws are
 * timing-independent, so with a shared seed the four configurations
 * measure the same workload windows; the per-interval ratio
 *
 *     r_i = (C_pref_i * C_compr_i) / (C_base_i * C_both_i)
 *
 * (EQ 5's 1+Interaction evaluated window-by-window) cancels the
 * common-mode phase noise that dominates unpaired cycle CIs, and the
 * Student-t summary over {r_i} gives the interaction's own 95% CI.
 *
 * Also printed: a sampled-vs-full-detail IPC validation row on the
 * same traversed length, fast-forward throughput in both warming and
 * pure-skip modes, and the wall-clock cost relative to the standard
 * full-detail matrix at the default seed count.
 *
 * Exit status is nonzero when the mgrid interaction (paper: +21.5%,
 * the largest in Table 5) is not positive with a 95% CI excluding
 * zero, or when the 100x-longer sampled matrix costs more than 3x the
 * wall-clock of the standard-length full-detail matrix.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "bench/bench_common.h"
#include "src/sample/matrix_sampler.h"

using namespace cmpsim;
using namespace cmpsim::bench;

namespace {

double
wallOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One workload's config matrix, run in lockstep through the
 *  MatrixSampler so the pure-skip prefix of every fast-forward phase
 *  executes once instead of once per config, and the per-interval
 *  samples pair exactly (same seed, same instruction-indexed
 *  windows). */
template <std::size_t N>
std::vector<SamplingResult>
sampledMatrix(const Cfg (&cfgs)[N], const std::string &wl,
              const SamplingPlan &plan)
{
    std::vector<std::unique_ptr<CmpSystem>> systems;
    for (const Cfg c : cfgs) {
        SystemConfig config = configFor(c);
        config.seed = 1; // shared across configs: pairing needs it
        config.sampling = plan;
        // No separate warmup: the first interval's fast-forward phase
        // (with its functional-warming tail) is the warmup.
        systems.push_back(std::make_unique<CmpSystem>(
            config, benchmarkParams(wl)));
    }
    std::vector<CmpSystem *> ptrs;
    for (auto &s : systems)
        ptrs.push_back(s.get());
    return MatrixSampler(std::move(ptrs)).run();
}

} // namespace

int
main()
{
    // The wall-clock gate compares this process's sampled matrix
    // against its own full-detail reference; pin the runner to one
    // worker so the comparison is compute-for-compute regardless of
    // the host's core count.
    setenv("CMPSIM_JOBS", "1", 1);

    banner("Table 5 (sampled): interaction sign on 100x longer runs "
           "with paired per-interval 95% CIs",
           "interaction positive for mgrid (+21.5) and zeus (+13.2); "
           "sampling: 10 x 500k instr/core (skip + warm ff + 20k "
           "detail)");

    const std::vector<std::string> workloads = {"mgrid", "zeus"};
    const std::vector<SamplingPlan> plans = {
        SamplingPlan::parse("480000:20000:10:warm145000"),
        SamplingPlan::parse("480000:20000:10:warm45000"),
    };
    const Cfg cfgs[] = {Cfg::Base, Cfg::Pref, Cfg::Compr,
                        Cfg::ComprPref};

    // Sampled matrix: 5M instr/core traversed per point.
    std::vector<std::vector<SamplingResult>> sampled(workloads.size());
    const double sampled_wall = wallOf([&] {
        for (std::size_t w = 0; w < workloads.size(); ++w)
            sampled[w] = sampledMatrix(cfgs, workloads[w], plans[w]);
    });

    // Full-detail reference matrix: the same points at the standard
    // measured length and seed count — "today's" cost. Pinned rather
    // than read from the environment so the 100x-longer and 3x-wall
    // claims mean the same thing under CMPSIM_MEASURE/SEEDS overrides.
    std::vector<PointSpec> ref_specs;
    for (const auto &wl : workloads) {
        for (const Cfg c : cfgs) {
            PointSpec spec = pointSpec(c, wl, 8, 20.0, false, 2);
            spec.lengths.warmup_per_core = 400000;
            spec.lengths.measure_per_core = 50000;
            ref_specs.push_back(std::move(spec));
        }
    }
    std::vector<MetricSummary> ref_results;
    const double detail_wall =
        wallOf([&] { ref_results = runPoints(ref_specs); });

    std::printf("%-8s | %10s %12s %8s | %8s\n", "bench", "interact",
                "ci95 (+/-)", "excl 0", "paper");
    bool mgrid_ok = false;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &base = sampled[w][0].samples;
        const auto &pref = sampled[w][1].samples;
        const auto &compr = sampled[w][2].samples;
        const auto &both = sampled[w][3].samples;

        std::size_t n = base.size();
        for (const auto *v : {&pref, &compr, &both})
            n = std::min(n, v->size());
        std::vector<double> ratios;
        for (std::size_t i = 0; i < n; ++i) {
            ratios.push_back((pref[i].cycles * compr[i].cycles) /
                             (base[i].cycles * both[i].cycles));
        }
        const SampleSummary r = summarize(ratios);
        const bool excludes_zero = std::fabs(r.mean - 1.0) > r.ci95;
        const double inter_pct = (r.mean - 1.0) * 100.0;
        std::printf("%-8s | %+9.1f%% %11.1f%% %8s | %+7.1f\n",
                    workloads[w].c_str(), inter_pct, r.ci95 * 100.0,
                    excludes_zero ? "yes" : "NO",
                    paperRow(workloads[w]).interaction);
        if (workloads[w] == "mgrid")
            mgrid_ok = inter_pct > 0 && excludes_zero;
    }

    // Validation row: sampled vs full-detail IPC on the same traversed
    // length (zeus base, 10 x (15k ff + 5k detail) vs one contiguous
    // 200k window) — the sampling error the engine trades for speed.
    PointSpec full = pointSpec(Cfg::Base, "zeus", 8, 20.0, false, 1);
    full.lengths.measure_per_core = 200000;
    PointSpec samp = pointSpec(Cfg::Base, "zeus", 8, 20.0, false, 1);
    samp.config.sampling = SamplingPlan::parse("15000:5000:10");
    const auto val = runPoints({std::move(full), std::move(samp)});
    const double ipc_full = val[0].runs.front().ipc;
    const double ipc_samp = val[1].runs.front().ipc;
    const double err_pct =
        std::fabs(ipc_samp - ipc_full) / ipc_full * 100.0;
    std::printf("\nvalidation: zeus base IPC full-detail %.4f vs "
                "sampled %.4f (%.2f%% error)\n",
                ipc_full, ipc_samp, err_pct);

    // Fast-forward throughput, warming (cache/prefetcher state
    // updated) and pure-skip (workload position + value store only).
    {
        SystemConfig cfg = configFor(Cfg::Base);
        cfg.sampling = plans[0]; // arms the engine
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        sys.warmup(10000);
        const std::uint64_t burst = 2'000'000;
        const double warm_wall =
            wallOf([&] { sys.fastForward(burst); });
        const double skip_wall =
            wallOf([&] { sys.fastForward(burst, 0); });
        std::printf("fast-forward throughput: warm %.1f / skip %.1f "
                    "M instr/core/sec (%.1f / %.1f M instr/sec over "
                    "%u cores)\n",
                    static_cast<double>(burst) / warm_wall / 1e6,
                    static_cast<double>(burst) / skip_wall / 1e6,
                    static_cast<double>(burst) * cfg.cores / warm_wall /
                        1e6,
                    static_cast<double>(burst) * cfg.cores / skip_wall /
                        1e6,
                    cfg.cores);
    }

    const double ratio = sampled_wall / detail_wall;
    std::printf("wall-clock: sampled 100x-longer matrix %.1fs vs "
                "full-detail standard matrix %.1fs (%.2fx)\n",
                sampled_wall, detail_wall, ratio);

    if (!mgrid_ok) {
        std::printf("FAIL: mgrid interaction not positive with CI "
                    "excluding zero\n");
        return 1;
    }
    if (ratio > 3.0) {
        std::printf("FAIL: sampled matrix exceeded 3x full-detail "
                    "wall-clock\n");
        return 1;
    }
    return 0;
}
