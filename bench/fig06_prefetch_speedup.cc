/**
 * @file
 * Reproduces Figure 6: speedup of base and adaptive stride-based
 * prefetching relative to no prefetching (no compression). Paper:
 * base prefetching helps half the workloads (zeus +21%, mgrid +19%)
 * and hurts jbb (-25%) and fma3d (-3%); adaptation turns jbb's -25%
 * into +0.8%, apache's -0.9% into +19%, zeus's +21% into +42%, and
 * oltp's +0.3% into +12% (i.e., +12-34% over non-adaptive for
 * commercial, 0-2% for SPEComp).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 6: prefetching speedup (%) vs no prefetching",
           "paper base-pref: apache -0.9, zeus +21.3, oltp +0.3, "
           "jbb -24.5, art +6.4, apsi +13.6, fma3d -3.4, mgrid +18.9");

    std::printf("%-8s %10s %10s %16s %12s\n", "bench", "pref",
                "adaptive", "adapt-vs-pref", "paper(pref)");
    for (const auto &wl : benchmarkNames()) {
        const double base = meanCycles(point(Cfg::Base, wl));
        const double pref = meanCycles(point(Cfg::Pref, wl));
        const double adap = meanCycles(point(Cfg::Adaptive, wl));
        std::printf("%-8s %+9.1f%% %+9.1f%% %+15.1f%% %+11.1f%%\n",
                    wl.c_str(), pct(base, pref), pct(base, adap),
                    pct(pref, adap), paperRow(wl).pref);
    }
    std::printf("\npaper: adaptive improves commercial workloads by "
                "12-34%% over\nnon-adaptive prefetching and SPEComp by "
                "0-2%% (Section 4.3).\n");
    return 0;
}
