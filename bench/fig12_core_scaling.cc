/**
 * @file
 * Reproduces Figure 12 (and the apache/jbb half of Figure 1):
 * performance improvement of prefetching, adaptive prefetching,
 * compression, and the combinations as the core count scales from 1
 * to 16, each relative to the base system with the same core count.
 *
 * Paper: prefetching's benefit decays with cores (apache +61% at 1p
 * -> 0% at 16p; jbb +2% -> -35%); compression's slowly grows (apache
 * +20% -> +23%); adaptive+compression stays strong at 16 cores
 * (apache +39%, jbb degradation shrinks to -2..+2%).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 12: improvement (%) vs base at the same core count",
           "prefetching decays with cores; compression grows slowly; "
           "the combination stays strong");

    const unsigned core_counts[] = {1, 2, 4, 8, 16};
    const std::vector<std::string> wls = {"apache", "jbb"};
    const Cfg cfgs[] = {Cfg::Base,      Cfg::Pref,      Cfg::Adaptive,
                        Cfg::Compr,     Cfg::ComprPref, Cfg::ComprAdapt};
    constexpr std::size_t kCfgs = sizeof(cfgs) / sizeof(cfgs[0]);

    // Full (workload x cores x config) matrix up front; see
    // parallel_runner.h.
    std::vector<PointSpec> specs;
    for (const auto &wl : wls)
        for (const unsigned n : core_counts)
            for (const Cfg c : cfgs)
                specs.push_back(pointSpec(c, wl, n, 20.0, false, 1));
    const auto results = runPoints(specs);

    std::size_t cell = 0;
    for (const auto &wl : wls) {
        std::printf("--- %s ---\n", wl.c_str());
        std::printf("%6s %8s %8s %8s %10s %12s\n", "cores", "pref",
                    "adapt", "compr", "compr+pref", "compr+adapt");
        for (const unsigned n : core_counts) {
            const std::size_t at = cell * kCfgs;
            const double base = meanCycles(results[at]);
            auto imp = [&](std::size_t cfg_idx) {
                return pct(base, meanCycles(results[at + cfg_idx]));
            };
            ++cell;
            std::printf("%6u %+7.1f%% %+7.1f%% %+7.1f%% %+9.1f%% "
                        "%+11.1f%%\n",
                        n, imp(1), imp(2), imp(3), imp(4), imp(5));
        }
    }
    return 0;
}
