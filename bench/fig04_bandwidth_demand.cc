/**
 * @file
 * Reproduces Figure 4: pin bandwidth demand (GB/s) with no
 * compression, cache compression only, link compression only, and
 * both — measured on a system with infinite pin bandwidth, the
 * paper's definition of demand. Paper: base demand 5.0 (oltp) to 8.8
 * (apache) GB/s commercial, 7.6 (art) to 27.7 (fma3d) GB/s SPEComp;
 * link compression cuts 34-41% commercial, up to 23% SPEComp (apsi
 * barely moves).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 4: pin bandwidth demand (GB/s, infinite-bw system)",
           "base: apache 8.8, oltp 5.0, art 7.6, fma3d 27.7; link "
           "compression -34-41% commercial / up to -23% SPEComp");

    std::printf("%-8s %8s %8s %8s %8s %10s %10s\n", "bench", "none",
                "cache", "link", "both", "both vs none", "paper base");
    for (const auto &wl : benchmarkNames()) {
        auto bw = [&](Cfg c) {
            return meanOf(point(c, wl, 8, 20.0, /*infinite=*/true),
                          [](const RunResult &r) {
                              return r.bandwidth_gbps;
                          });
        };
        const double none = bw(Cfg::Base);
        const double cache = bw(Cfg::CacheCompr);
        const double link = bw(Cfg::LinkCompr);
        const double both = bw(Cfg::Compr);
        std::printf("%-8s %8.1f %8.1f %8.1f %8.1f %9.0f%% %10.1f\n",
                    wl.c_str(), none, cache, link, both,
                    none > 0 ? (both / none - 1.0) * 100.0 : 0.0,
                    paperBandwidthDemand(wl));
    }
    return 0;
}
