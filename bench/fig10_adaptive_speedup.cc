/**
 * @file
 * Reproduces Figure 10: base vs adaptive prefetching, each with and
 * without compression, for the commercial workloads where adaptation
 * matters. Paper: adaptation alone is dramatic (jbb -25% -> +1%,
 * apache -0.9% -> +19%); combined with compression the extra benefit
 * shrinks to 0.1-8% because compression already removed many strided
 * prefetches and is using the spare tags the detector needs —
 * the spare-tag occupancy column shows that effect (Section 5.4:
 * ~4 victim tags/set uncompressed, ~1-2 compressed).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 10: adaptive prefetching x compression (commercial)",
           "paper: adapt-vs-pref +12-34%; with compression only "
           "+0.1-8%; victim tags ~4/set uncompressed vs 1-2 compressed");

    std::printf("%-8s %8s %8s %10s %10s | %10s %10s\n", "bench", "pref",
                "adapt", "compr+pref", "compr+adapt", "vtags(unc)",
                "vtags(cmp)");
    for (const auto &wl :
         {std::string("apache"), std::string("zeus"),
          std::string("oltp"), std::string("jbb")}) {
        const double base = meanCycles(point(Cfg::Base, wl));
        const auto adapt_run = point(Cfg::Adaptive, wl);
        const auto cadapt_run = point(Cfg::ComprAdapt, wl);
        const double pref = meanCycles(point(Cfg::Pref, wl));
        const double adap = meanCycles(adapt_run);
        const double cpref = meanCycles(point(Cfg::ComprPref, wl));
        const double cadap = meanCycles(cadapt_run);
        const double vt_unc = meanOf(adapt_run, [](const RunResult &r) {
            return r.victim_tags_per_set;
        });
        const double vt_cmp = meanOf(cadapt_run, [](const RunResult &r) {
            return r.victim_tags_per_set;
        });
        std::printf("%-8s %+7.1f%% %+7.1f%% %+9.1f%% %+10.1f%% | "
                    "%10.1f %10.1f\n",
                    wl.c_str(), pct(base, pref), pct(base, adap),
                    pct(base, cpref), pct(base, cadap), vt_unc, vt_cmp);
    }
    return 0;
}
