/**
 * @file
 * Reproduces Figure 5: speedup of cache compression, link compression,
 * and both (no prefetching), relative to the base system. Paper: cache
 * compression gains 5-18% commercial / 0-4% SPEComp; link compression
 * alone only matters for bandwidth-bound fma3d (+23%); both together
 * slightly beat cache-only (except fma3d, where link dominates).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 5: compression speedup (%) vs base",
           "cache: +5-18% commercial, 0-4% SPEComp; link: fma3d +23%; "
           "combined Table 5 column: see table5_interactions");

    std::printf("%-8s %10s %10s %10s %14s\n", "bench", "cache",
                "link", "both", "paper(both)");
    for (const auto &wl : benchmarkNames()) {
        const double base = meanCycles(point(Cfg::Base, wl));
        const double cache = meanCycles(point(Cfg::CacheCompr, wl));
        const double link = meanCycles(point(Cfg::LinkCompr, wl));
        const double both = meanCycles(point(Cfg::Compr, wl));
        std::printf("%-8s %+9.1f%% %+9.1f%% %+9.1f%% %+13.1f%%\n",
                    wl.c_str(), pct(base, cache), pct(base, link),
                    pct(base, both), paperRow(wl).compr);
    }
    return 0;
}
