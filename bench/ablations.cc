/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out, run on
 * zeus and jbb (the workloads where prefetching helps / hurts most):
 *
 *  - per-core vs shared L2 prefetch engines (Beckmann & Wood [7]);
 *  - L1 prefetches triggering L2 prefetches (Section 2) on vs off;
 *  - extra victim tags for the uncompressed adaptive config (0/4/8);
 *  - decompression latency 0/5/10 cycles;
 *  - the 64-segment compressed-set variant of the paper's ambiguous
 *    geometry text (DESIGN.md Section 1).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

namespace {

double
cyclesFor(SystemConfig cfg, const std::string &wl)
{
    return meanCycles(runSeeds(cfg, wl, defaultRunLengths(), 1));
}

} // namespace

int
main()
{
    banner("Ablations: design choices behind the paper's mechanisms",
           "DESIGN.md Section 4");

    for (const auto &wl : {std::string("zeus"), std::string("jbb")}) {
        const double base = cyclesFor(configFor(Cfg::Base), wl);
        std::printf("--- %s (improvement vs base) ---\n", wl.c_str());

        auto cfg = configFor(Cfg::Pref);
        std::printf("  %-40s %+6.1f%%\n", "pref, per-core L2 engines",
                    pct(base, cyclesFor(cfg, wl)));
        cfg.shared_l2_prefetcher = true;
        std::printf("  %-40s %+6.1f%%\n", "pref, one shared L2 engine",
                    pct(base, cyclesFor(cfg, wl)));

        cfg = configFor(Cfg::Pref);
        cfg.l1_prefetch_triggers_l2 = false;
        std::printf("  %-40s %+6.1f%%\n",
                    "pref, L1 does not trigger L2",
                    pct(base, cyclesFor(cfg, wl)));

        for (unsigned tags : {0u, 4u, 8u}) {
            cfg = configFor(Cfg::Adaptive);
            cfg.extra_victim_tags = tags;
            std::printf("  adaptive, %u extra victim tags/set %12s "
                        "%+6.1f%%\n",
                        tags, "", pct(base, cyclesFor(cfg, wl)));
        }

        for (Cycle lat : {Cycle(0), Cycle(5), Cycle(10)}) {
            cfg = configFor(Cfg::Compr);
            cfg.decompression_latency = lat;
            std::printf("  compression, %2llu-cycle decompression %9s "
                        "%+6.1f%%\n",
                        static_cast<unsigned long long>(lat), "",
                        pct(base, cyclesFor(cfg, wl)));
        }

        cfg = configFor(Cfg::Compr);
        cfg.wide_compressed_sets = true;
        std::printf("  %-40s %+6.1f%%\n",
                    "compression, 64-segment sets",
                    pct(base, cyclesFor(cfg, wl)));

        cfg = configFor(Cfg::Compr);
        cfg.adaptive_compression = true;
        std::printf("  %-40s %+6.1f%%\n",
                    "compression, ISCA'04 adaptive policy",
                    pct(base, cyclesFor(cfg, wl)));
        std::printf("\n");
    }
    return 0;
}
