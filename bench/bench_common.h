/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: the
 * standard configuration matrix, environment-controlled run lengths,
 * fixed-width table printing, and the paper's published numbers for
 * side-by-side comparison.
 *
 * Environment knobs (see src/core_api/experiment.h):
 *   CMPSIM_SCALE   capacity divisor (default 4; 1 = paper full size)
 *   CMPSIM_WARMUP  functional warmup instructions per core (400k)
 *   CMPSIM_MEASURE timed instructions per core (60k)
 *   CMPSIM_SEEDS   seeds per point (2)
 */

#ifndef CMPSIM_BENCH_BENCH_COMMON_H
#define CMPSIM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "src/core_api/experiment.h"
#include "src/core_api/miss_classify.h"
#include "src/core_api/parallel_runner.h"

namespace cmpsim::bench {

/** The paper's standard configurations. */
enum class Cfg
{
    Base,       ///< no compression, no prefetching
    CacheCompr, ///< cache compression only
    LinkCompr,  ///< link compression only
    Compr,      ///< cache + link compression
    Pref,       ///< stride prefetching (non-adaptive)
    Adaptive,   ///< adaptive prefetching
    ComprPref,  ///< compression + prefetching
    ComprAdapt, ///< compression + adaptive prefetching
};

inline SystemConfig
configFor(Cfg c, unsigned cores = 8, double bw_gbps = 20.0)
{
    const unsigned scale = defaultScale();
    switch (c) {
      case Cfg::Base:
        return makeConfig(cores, scale, false, false, false, false,
                          bw_gbps);
      case Cfg::CacheCompr:
        return makeConfig(cores, scale, true, false, false, false,
                          bw_gbps);
      case Cfg::LinkCompr:
        return makeConfig(cores, scale, false, true, false, false,
                          bw_gbps);
      case Cfg::Compr:
        return makeConfig(cores, scale, true, true, false, false,
                          bw_gbps);
      case Cfg::Pref:
        return makeConfig(cores, scale, false, false, true, false,
                          bw_gbps);
      case Cfg::Adaptive:
        return makeConfig(cores, scale, false, false, true, true,
                          bw_gbps);
      case Cfg::ComprPref:
        return makeConfig(cores, scale, true, true, true, false,
                          bw_gbps);
      case Cfg::ComprAdapt:
        return makeConfig(cores, scale, true, true, true, true,
                          bw_gbps);
    }
    return makeConfig(cores, scale, false, false, false, false, bw_gbps);
}

/** Percentage improvement (speedup - 1) * 100. */
inline double
pct(double base_cycles, double enhanced_cycles)
{
    return (base_cycles / enhanced_cycles - 1.0) * 100.0;
}

/** Print the standard bench banner. */
inline void
banner(const char *title, const char *paper_ref)
{
    const auto len = defaultRunLengths();
    std::printf("=== %s ===\n", title);
    std::printf("paper: %s\n", paper_ref);
    std::printf("setup: scale=%u (L2 %u KB), warmup=%llu, "
                "measure=%llu instr/core, seeds=%u\n\n",
                defaultScale(), 4096 / defaultScale(),
                static_cast<unsigned long long>(len.warmup_per_core),
                static_cast<unsigned long long>(len.measure_per_core),
                defaultSeeds());
}

/** Paper's Table 5 rows (speedup %, 8-core CMP, 20 GB/s). */
struct Table5Row
{
    const char *name;
    double pref;
    double compr;
    double compr_pref;
    double adapt_compr;
    double interaction;
};

inline const std::vector<Table5Row> &
paperTable5()
{
    static const std::vector<Table5Row> rows = {
        {"apache", -0.9, 20.5, 37.3, 39.2, 15.0},
        {"zeus", 21.3, 9.7, 50.7, 50.8, 13.2},
        {"oltp", 0.3, 5.6, 9.9, 13.1, 3.8},
        {"jbb", -24.5, 5.9, -6.5, 1.7, 16.9},
        {"art", 6.4, 3.1, 10.6, 10.7, 0.9},
        {"apsi", 13.6, 4.2, 15.5, 16.1, -2.5},
        {"fma3d", -3.4, 22.6, 18.6, 18.5, 0.2},
        {"mgrid", 18.9, 2.9, 48.7, 49.9, 21.5},
    };
    return rows;
}

inline const Table5Row &
paperRow(const std::string &name)
{
    for (const auto &r : paperTable5()) {
        if (name == r.name)
            return r;
    }
    static const Table5Row none{"?", 0, 0, 0, 0, 0};
    return none;
}

/** Paper's Table 4 (prefetch rate / coverage% / accuracy%). */
struct Table4Row
{
    const char *name;
    double l1i_rate, l1i_cov, l1i_acc;
    double l1d_rate, l1d_cov, l1d_acc;
    double l2_rate, l2_cov, l2_acc;
};

inline const std::vector<Table4Row> &
paperTable4()
{
    static const std::vector<Table4Row> rows = {
        {"apache", 4.9, 16.4, 42.0, 6.1, 8.8, 55.5, 10.5, 37.7, 57.9},
        {"zeus", 7.1, 14.5, 38.9, 5.5, 17.7, 79.2, 8.2, 44.4, 56.0},
        {"oltp", 13.5, 20.9, 44.8, 2.0, 6.6, 58.0, 2.4, 26.4, 41.5},
        {"jbb", 1.8, 24.6, 49.6, 4.2, 23.1, 60.3, 5.5, 34.2, 32.4},
        {"art", 0.05, 9.4, 24.1, 56.3, 30.9, 81.3, 49.7, 56.0, 85.0},
        {"apsi", 0.04, 15.7, 30.7, 8.5, 25.5, 96.9, 4.6, 95.8, 97.6},
        {"fma3d", 0.06, 7.5, 14.4, 7.3, 27.5, 80.9, 8.8, 44.6, 73.5},
        {"mgrid", 0.06, 15.5, 26.6, 8.4, 80.2, 94.2, 6.2, 89.9, 81.9},
    };
    return rows;
}

inline const Table4Row &
paperTable4Row(const std::string &name)
{
    for (const auto &r : paperTable4()) {
        if (name == r.name)
            return r;
    }
    static const Table4Row none{"?", 0, 0, 0, 0, 0, 0, 0, 0, 0};
    return none;
}

/** Paper Figure 4 bandwidth demand (GB/s), base config, where the
 *  text states values; others are approximate figure read-offs. */
inline double
paperBandwidthDemand(const std::string &name)
{
    if (name == "apache")
        return 8.8;
    if (name == "zeus")
        return 7.4; // approx (figure)
    if (name == "oltp")
        return 5.0;
    if (name == "jbb")
        return 6.1; // approx (figure)
    if (name == "art")
        return 7.6;
    if (name == "apsi")
        return 13.0; // approx (figure)
    if (name == "fma3d")
        return 27.7;
    if (name == "mgrid")
        return 15.5; // approx (figure)
    return 0.0;
}

/** Describe one (cfg, workload) point with the standard lengths/seeds,
 *  for batch submission to runPoints(). */
inline PointSpec
pointSpec(Cfg cfg, const std::string &wl, unsigned cores = 8,
          double bw = 20.0, bool infinite_bw = false, unsigned seeds = 0)
{
    PointSpec spec;
    spec.config = configFor(cfg, cores, bw);
    spec.config.infinite_bandwidth = infinite_bw;
    spec.benchmark = wl;
    spec.lengths = defaultRunLengths();
    spec.seeds = seeds == 0 ? defaultSeeds() : seeds;
    return spec;
}

/** Run one (cfg, workload) point with the standard lengths/seeds.
 *  Seeds fan out across CMPSIM_JOBS workers; heavy benches should
 *  batch their whole matrix through runPoints() instead. */
inline MetricSummary
point(Cfg cfg, const std::string &wl, unsigned cores = 8,
      double bw = 20.0, bool infinite_bw = false, unsigned seeds = 0)
{
    auto res = runPoints({pointSpec(cfg, wl, cores, bw, infinite_bw,
                                    seeds)});
    return std::move(res.front());
}

} // namespace cmpsim::bench

#endif // CMPSIM_BENCH_BENCH_COMMON_H
