/**
 * @file
 * Reproduces Figure 1 (the motivating example): zeus performance
 * improvement from prefetching, compression, both, and adaptive
 * prefetching + compression, as the CMP grows from 1 to 16 cores.
 *
 * Paper: uniprocessor prefetching gains +74%; at 16 cores it turns
 * into an 8% LOSS, while compression alone gives +6-12% and the
 * adaptive combination reaches +28%.
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 1: zeus improvement (%) vs base at each core count",
           "pref: +74% (1p) -> -8% (16p); compr alone +6-12%; "
           "adaptive+compr +28% at 16p");

    const unsigned core_counts[] = {1, 2, 4, 8, 16};
    std::printf("%6s %8s %8s %10s %12s\n", "cores", "pref", "compr",
                "compr+pref", "compr+adapt");
    for (const unsigned n : core_counts) {
        const double base =
            meanCycles(point(Cfg::Base, "zeus", n, 20.0, false, 1));
        auto imp = [&](Cfg c) {
            return pct(base,
                       meanCycles(point(c, "zeus", n, 20.0, false, 1)));
        };
        std::printf("%6u %+7.1f%% %+7.1f%% %+9.1f%% %+11.1f%%\n", n,
                    imp(Cfg::Pref), imp(Cfg::Compr),
                    imp(Cfg::ComprPref), imp(Cfg::ComprAdapt));
    }
    return 0;
}
