/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrates: the
 * decoupled variable-segment set, the stride prefetcher, the event
 * kernel, the priority link, and the functional L2 access path that
 * dominates warmup time.
 */

#include <benchmark/benchmark.h>

#include "src/cache/decoupled_set.h"
#include "src/common/random.h"
#include "src/cache/l2_cache.h"
#include "src/compression/fpc.h"
#include "src/mem/priority_link.h"
#include "src/prefetch/stride_prefetcher.h"
#include "src/sim/event_queue.h"

namespace {

using namespace cmpsim;

void
BM_DecoupledSetInsert(benchmark::State &state)
{
    DecoupledSet set(8, 32);
    Random rng(1);
    std::uint64_t line = 0;
    for (auto _ : state) {
        TagEntry e;
        e.line = (line++ % 64) << kLineShift;
        e.valid = true;
        e.segments = static_cast<std::uint8_t>(rng.inRange(1, 8));
        if (set.find(e.line) == nullptr)
            benchmark::DoNotOptimize(set.insert(e));
        else
            set.touch(e.line);
    }
}
BENCHMARK(BM_DecoupledSetInsert);

void
BM_DecoupledSetLookup(benchmark::State &state)
{
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 6; ++a) {
        TagEntry e;
        e.line = a << kLineShift;
        e.valid = true;
        e.segments = 5;
        set.insert(e);
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            set.find(((probe++) % 8) << kLineShift));
    }
}
BENCHMARK(BM_DecoupledSetLookup);

void
BM_PrefetcherObserveMiss(benchmark::State &state)
{
    PrefetcherParams p;
    p.startup_prefetches = 25;
    StridePrefetcher pf(p);
    std::uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pf.observeMiss((line++ & 0xffff) << kLineShift, 25));
    }
}
BENCHMARK(BM_PrefetcherObserveMiss);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(eq.now() + 5, [&sink] { ++sink; });
        eq.schedule(eq.now() + 3, [&sink] { ++sink; });
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_PriorityLinkSend(benchmark::State &state)
{
    EventQueue eq;
    PriorityLink link(eq, 4.0, false);
    for (auto _ : state) {
        link.send(72, LinkClass::Demand, eq.now(), nullptr);
        link.send(72, LinkClass::Prefetch, eq.now(), nullptr);
        eq.drain();
    }
}
BENCHMARK(BM_PriorityLinkSend);

void
BM_L2FunctionalAccess(benchmark::State &state)
{
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values(fpc);
    MemoryParams mp;
    MainMemory mem(eq, values, mp);
    L2Params p2;
    p2.sets = 1024;
    p2.banks = 8;
    p2.cores = 1;
    L2Cache l2(eq, values, mem, p2);
    l2.setFunctionalMode(true);
    Random rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(l2.accessFunctional(
            0, (rng.below(4096)) << kLineShift, false,
            ReqType::Demand));
    }
}
BENCHMARK(BM_L2FunctionalAccess);

} // namespace

BENCHMARK_MAIN();
