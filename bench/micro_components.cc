/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrates: the
 * decoupled variable-segment set, the stride prefetcher, the event
 * kernel, the priority link, and the functional L2 access path that
 * dominates warmup time.
 */

#include <benchmark/benchmark.h>

#include <queue>

#include "src/cache/decoupled_set.h"
#include "src/common/random.h"
#include "src/cache/l2_cache.h"
#include "src/compression/fpc.h"
#include "src/mem/priority_link.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/prefetch/stride_prefetcher.h"
#include "src/sim/event_queue.h"

namespace {

using namespace cmpsim;

/**
 * The pre-optimization event kernel, kept here as the baseline the
 * EventQueue benchmarks compare against: std::priority_queue with
 * either copy-on-pop (the original) or move-on-pop (the first fix).
 */
template <bool MovePop>
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Cycle now() const { return now_; }

    void
    schedule(Cycle when, Callback cb)
    {
        heap_.push(Event{when, next_seq_++, std::move(cb)});
    }

    void
    drain()
    {
        while (!heap_.empty()) {
            Event ev = MovePop
                           ? std::move(const_cast<Event &>(heap_.top()))
                           : heap_.top();
            heap_.pop();
            now_ = ev.when;
            ev.cb();
        }
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
};

/**
 * Fat capture block matching what simulator callbacks carry (this +
 * address + request metadata): pushes the std::function past the
 * small-object buffer so pop-by-copy pays a real allocation, exactly
 * as the production continuations do.
 */
struct FatPayload
{
    std::uint64_t *sink;
    std::uint64_t addr;
    std::uint64_t meta;
    std::uint64_t cycle;
};

template <typename Queue>
void
runScheduleDrainBatch(Queue &q, std::uint64_t &sink)
{
    FatPayload p{&sink, 0x1000, 7, 0};
    for (int i = 0; i < 16; ++i) {
        p.addr += 64;
        q.schedule(q.now() + 1 + (i * 7) % 13,
                   [p] { *p.sink += p.addr + p.meta; });
    }
    q.drain();
}

void
BM_DecoupledSetInsert(benchmark::State &state)
{
    DecoupledSet set(8, 32);
    Random rng(1);
    std::uint64_t line = 0;
    for (auto _ : state) {
        TagEntry e;
        e.line = (line++ % 64) << kLineShift;
        e.valid = true;
        e.segments = static_cast<std::uint8_t>(rng.inRange(1, 8));
        if (set.find(e.line) == nullptr)
            benchmark::DoNotOptimize(set.insert(e));
        else
            set.touch(e.line);
    }
}
BENCHMARK(BM_DecoupledSetInsert);

void
BM_DecoupledSetLookup(benchmark::State &state)
{
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 6; ++a) {
        TagEntry e;
        e.line = a << kLineShift;
        e.valid = true;
        e.segments = 5;
        set.insert(e);
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            set.find(((probe++) % 8) << kLineShift));
    }
}
BENCHMARK(BM_DecoupledSetLookup);

void
BM_PrefetcherObserveMiss(benchmark::State &state)
{
    PrefetcherParams p;
    p.startup_prefetches = 25;
    StridePrefetcher pf(p);
    std::uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pf.observeMiss((line++ & 0xffff) << kLineShift, 25));
    }
}
BENCHMARK(BM_PrefetcherObserveMiss);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(eq.now() + 5, [&sink] { ++sink; });
        eq.schedule(eq.now() + 3, [&sink] { ++sink; });
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

// The copy-on-pop/move-on-pop/intrusive-heap progression on the same
// schedule-then-drain workload (16 fat-capture events per iteration).
void
BM_EventKernelLegacyCopyPop(benchmark::State &state)
{
    LegacyEventQueue<false> eq;
    std::uint64_t sink = 0;
    for (auto _ : state)
        runScheduleDrainBatch(eq, sink);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventKernelLegacyCopyPop);

void
BM_EventKernelLegacyMovePop(benchmark::State &state)
{
    LegacyEventQueue<true> eq;
    std::uint64_t sink = 0;
    for (auto _ : state)
        runScheduleDrainBatch(eq, sink);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventKernelLegacyMovePop);

void
BM_EventKernelIntrusiveHeap(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state)
        runScheduleDrainBatch(eq, sink);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventKernelIntrusiveHeap);

// Cascading same-cycle continuations (the cache-bank -> link ->
// directory pattern): exercises the FIFO fast path that bypasses the
// heap entirely. The legacy variant pays a heap push + sift per
// continuation.
void
BM_EventKernelLegacyCascade(benchmark::State &state)
{
    LegacyEventQueue<true> eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(eq.now() + 1, [&] {
            for (int i = 0; i < 8; ++i)
                eq.schedule(eq.now(), [&sink] { ++sink; });
        });
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventKernelLegacyCascade);

void
BM_EventQueueSameCycleCascade(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(eq.now() + 1, [&] {
            for (int i = 0; i < 8; ++i)
                eq.schedule(eq.now(), [&sink] { ++sink; });
        });
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueSameCycleCascade);

// Burst scheduling with and without pre-sized storage: the sharded
// kernel reserves cores x ROB entries up front (see CmpSystem::
// buildSystem), so the heap never reallocates mid-run. The batch is
// drained outside the reserve so growth cost recurs every iteration
// in the no-reserve variant.
void
BM_EventQueueBurstNoReserve(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 512; ++i)
            eq.schedule(static_cast<Cycle>(1 + (i % 7)),
                        [&sink] { ++sink; });
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueBurstNoReserve);

void
BM_EventQueueBurstWithReserve(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        eq.reserve(512);
        for (int i = 0; i < 512; ++i)
            eq.schedule(static_cast<Cycle>(1 + (i % 7)),
                        [&sink] { ++sink; });
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueBurstWithReserve);

void
BM_PriorityLinkSend(benchmark::State &state)
{
    EventQueue eq;
    PriorityLink link(eq, 4.0, false);
    for (auto _ : state) {
        link.send(72, LinkClass::Demand, eq.now(), nullptr);
        link.send(72, LinkClass::Prefetch, eq.now(), nullptr);
        eq.drain();
    }
}
BENCHMARK(BM_PriorityLinkSend);

// The observability probes live permanently in the hot paths; these
// two pin down their disarmed cost (one relaxed atomic load plus a
// predictable branch — compare against BM_EventQueueScheduleRun-level
// numbers, not zero, since the loop itself isn't free).
void
BM_TraceProbeDisabled(benchmark::State &state)
{
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        traceInstant("bench.probe", ++cycle,
                     {{"line", std::uint64_t{0x1000}}});
        benchmark::DoNotOptimize(cycle);
    }
}
BENCHMARK(BM_TraceProbeDisabled);

void
BM_ProfScopeDisabled(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        CMPSIM_PROF_SCOPE("bench.prof_probe");
        benchmark::DoNotOptimize(++sink);
    }
}
BENCHMARK(BM_ProfScopeDisabled);

void
BM_L2FunctionalAccess(benchmark::State &state)
{
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values(fpc);
    MemoryParams mp;
    MainMemory mem(eq, values, mp);
    L2Params p2;
    p2.sets = 1024;
    p2.banks = 8;
    p2.cores = 1;
    L2Cache l2(eq, values, mem, p2);
    l2.setFunctionalMode(true);
    Random rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(l2.accessFunctional(
            0, (rng.below(4096)) << kLineShift, false,
            ReqType::Demand));
    }
}
BENCHMARK(BM_L2FunctionalAccess);

} // namespace

BENCHMARK_MAIN();
