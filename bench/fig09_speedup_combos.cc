/**
 * @file
 * Reproduces Figure 9: speedups of prefetching alone, compression
 * alone, and their combination, relative to the base system (8-core
 * CMP). Paper (Table 5): combined gains of 10-51% for seven of eight
 * workloads, jbb being the exception (-6.5%).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 9: speedup (%) of prefetching / compression / both",
           "paper Table 5 rows shown for comparison");

    std::printf("%-8s | %8s %8s %8s | %8s %8s %8s\n", "bench",
                "pref", "compr", "both", "p-pref", "p-compr", "p-both");
    for (const auto &wl : benchmarkNames()) {
        const double base = meanCycles(point(Cfg::Base, wl));
        const double pref = meanCycles(point(Cfg::Pref, wl));
        const double compr = meanCycles(point(Cfg::Compr, wl));
        const double both = meanCycles(point(Cfg::ComprPref, wl));
        const auto &p = paperRow(wl);
        std::printf("%-8s | %+7.1f%% %+7.1f%% %+7.1f%% | %+7.1f%% "
                    "%+7.1f%% %+7.1f%%\n",
                    wl.c_str(), pct(base, pref), pct(base, compr),
                    pct(base, both), p.pref, p.compr, p.compr_pref);
    }
    return 0;
}
