/**
 * @file
 * Reproduces Figure 9: speedups of prefetching alone, compression
 * alone, and their combination, relative to the base system (8-core
 * CMP). Paper (Table 5): combined gains of 10-51% for seven of eight
 * workloads, jbb being the exception (-6.5%).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 9: speedup (%) of prefetching / compression / both",
           "paper Table 5 rows shown for comparison");

    std::printf("%-8s | %8s %8s %8s | %8s %8s %8s\n", "bench",
                "pref", "compr", "both", "p-pref", "p-compr", "p-both");
    // Full matrix submitted up front; see parallel_runner.h.
    const Cfg cfgs[] = {Cfg::Base, Cfg::Pref, Cfg::Compr,
                        Cfg::ComprPref};
    constexpr std::size_t kCfgs = sizeof(cfgs) / sizeof(cfgs[0]);
    std::vector<PointSpec> specs;
    for (const auto &wl : benchmarkNames())
        for (const Cfg c : cfgs)
            specs.push_back(pointSpec(c, wl));
    const auto results = runPoints(specs);

    std::size_t row = 0;
    for (const auto &wl : benchmarkNames()) {
        const double base = meanCycles(results[row * kCfgs]);
        const double pref = meanCycles(results[row * kCfgs + 1]);
        const double compr = meanCycles(results[row * kCfgs + 2]);
        const double both = meanCycles(results[row * kCfgs + 3]);
        ++row;
        const auto &p = paperRow(wl);
        std::printf("%-8s | %+7.1f%% %+7.1f%% %+7.1f%% | %+7.1f%% "
                    "%+7.1f%% %+7.1f%%\n",
                    wl.c_str(), pct(base, pref), pct(base, compr),
                    pct(base, both), p.pref, p.compr, p.compr_pref);
    }
    return 0;
}
