/**
 * @file
 * Reproduces Table 5: speedups of prefetching, compression, their
 * combination, and adaptive prefetching + compression, plus the
 * Interaction(Pref, Compr) coefficient of EQ 5 (Fields et al. [21]):
 *
 *   Speedup(P,C) = Speedup(P) x Speedup(C) x (1 + Interaction)
 *
 * Paper: positive interaction for all workloads except apsi, up to
 * +21.5% (mgrid) and +16.9% (jbb).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Table 5: speedups and interaction between prefetching and "
           "compression",
           "interaction positive everywhere except apsi; mgrid +21.5%, "
           "jbb +16.9%");

    std::printf("%-8s | %8s %8s %8s %8s %8s | %28s\n", "bench", "pref",
                "compr", "both", "ad+cmp", "interact",
                "paper p/c/both/inter");
    // Batch the full (workload x config) matrix up front; runPoints
    // fans it across CMPSIM_JOBS workers with slot-ordered results,
    // so the table below is byte-identical at any job count.
    const Cfg cfgs[] = {Cfg::Base, Cfg::Pref, Cfg::Compr,
                        Cfg::ComprPref, Cfg::ComprAdapt};
    constexpr std::size_t kCfgs = sizeof(cfgs) / sizeof(cfgs[0]);
    std::vector<PointSpec> specs;
    for (const auto &wl : benchmarkNames())
        for (const Cfg c : cfgs)
            specs.push_back(pointSpec(c, wl));
    const auto results = runPoints(specs);

    std::size_t row = 0;
    for (const auto &wl : benchmarkNames()) {
        const auto &base_s = results[row * kCfgs];
        const double base = meanCycles(base_s);
        const double pref = meanCycles(results[row * kCfgs + 1]);
        const double compr = meanCycles(results[row * kCfgs + 2]);
        const double both = meanCycles(results[row * kCfgs + 3]);
        const double cadap = meanCycles(results[row * kCfgs + 4]);
        ++row;
        const double sp = speedup(base, pref);
        const double sc = speedup(base, compr);
        const double sb = speedup(base, both);
        const double inter = interaction(sp, sc, sb) * 100.0;
        const auto &p = paperRow(wl);
        std::printf("%-8s | %+7.1f%% %+7.1f%% %+7.1f%% %+7.1f%% "
                    "%+7.1f%% | %+6.1f/%+5.1f/%+5.1f/%+5.1f\n",
                    wl.c_str(), (sp - 1) * 100, (sc - 1) * 100,
                    (sb - 1) * 100, pct(base, cadap), inter, p.pref,
                    p.compr, p.compr_pref, p.interaction);
        std::printf("%-8s |   95%%-CI of base cycles: +/-%.1f%%\n", "",
                    base_s.cycles.mean > 0
                        ? base_s.cycles.ci95 / base_s.cycles.mean * 100
                        : 0.0);
    }
    return 0;
}
