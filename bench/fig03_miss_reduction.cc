/**
 * @file
 * Reproduces Figure 3: L2 miss-rate reduction from cache compression
 * (no prefetching). Paper: commercial workloads reduce misses by
 * 10-23%; SPEComp reductions are substantially smaller (apsi ~5%
 * despite a 1% capacity gain, fma3d ~0% despite 19%).
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 3: miss reduction from cache compression",
           "commercial 10-23% fewer misses; SPEComp ~0-5%");

    std::printf("%-8s %16s %16s %12s %10s\n", "bench", "base m/ki",
                "compressed m/ki", "reduction", "paper");
    for (const auto &wl : benchmarkNames()) {
        const auto base = point(Cfg::Base, wl);
        const auto compr = point(Cfg::CacheCompr, wl);
        const double mb = meanOf(base, [](const RunResult &r) {
            return r.l2_misses_per_kilo_instr;
        });
        const double mc = meanOf(compr, [](const RunResult &r) {
            return r.l2_misses_per_kilo_instr;
        });
        const double reduction = mb > 0 ? (1.0 - mc / mb) * 100.0 : 0;
        std::printf("%-8s %16.2f %16.2f %11.1f%% %10s\n", wl.c_str(),
                    mb, mc, reduction,
                    isCommercial(wl) ? "10-23%" : "0-5%");
    }
    return 0;
}
