/**
 * @file
 * Reproduces Figure 11: the Interaction(Pref, Compr) coefficient as
 * the available pin bandwidth varies over 10, 20, 40 and 80 GB/s.
 * Paper: commercial interactions are large at 10-20 GB/s (up to 29%
 * and 17%) and drop sharply at 40-80 GB/s; SPEComp interactions are
 * small, occasionally slightly negative (>= -3%), with mgrid up to
 * +22% from link compression.
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 11: Interaction(Pref, Compr) vs pin bandwidth",
           "large at 10-20 GB/s for commercial (up to 29%/17%), "
           "near zero at 40-80 GB/s");

    const double bws[] = {10.0, 20.0, 40.0, 80.0};
    constexpr std::size_t kBws = sizeof(bws) / sizeof(bws[0]);
    const Cfg cfgs[] = {Cfg::Base, Cfg::Pref, Cfg::Compr,
                        Cfg::ComprPref};
    constexpr std::size_t kCfgs = sizeof(cfgs) / sizeof(cfgs[0]);
    std::printf("%-8s %10s %10s %10s %10s\n", "bench", "10GB/s",
                "20GB/s", "40GB/s", "80GB/s");

    // Full (workload x bandwidth x config) matrix up front; see
    // parallel_runner.h.
    std::vector<PointSpec> specs;
    for (const auto &wl : benchmarkNames())
        for (const double bw : bws)
            for (const Cfg c : cfgs)
                specs.push_back(pointSpec(c, wl, 8, bw, false, 1));
    const auto results = runPoints(specs);

    std::size_t cell = 0;
    for (const auto &wl : benchmarkNames()) {
        std::printf("%-8s", wl.c_str());
        for (std::size_t b = 0; b < kBws; ++b) {
            const std::size_t at = cell * kCfgs;
            const double base = meanCycles(results[at]);
            const double pref = meanCycles(results[at + 1]);
            const double compr = meanCycles(results[at + 2]);
            const double both = meanCycles(results[at + 3]);
            ++cell;
            const double inter = interaction(speedup(base, pref),
                                             speedup(base, compr),
                                             speedup(base, both)) *
                                 100.0;
            std::printf(" %+9.1f%%", inter);
        }
        std::printf("\n");
    }
    return 0;
}
