/**
 * @file
 * Reproduces Figure 11: the Interaction(Pref, Compr) coefficient as
 * the available pin bandwidth varies over 10, 20, 40 and 80 GB/s.
 * Paper: commercial interactions are large at 10-20 GB/s (up to 29%
 * and 17%) and drop sharply at 40-80 GB/s; SPEComp interactions are
 * small, occasionally slightly negative (>= -3%), with mgrid up to
 * +22% from link compression.
 */

#include "bench/bench_common.h"

using namespace cmpsim;
using namespace cmpsim::bench;

int
main()
{
    banner("Figure 11: Interaction(Pref, Compr) vs pin bandwidth",
           "large at 10-20 GB/s for commercial (up to 29%/17%), "
           "near zero at 40-80 GB/s");

    const double bws[] = {10.0, 20.0, 40.0, 80.0};
    std::printf("%-8s %10s %10s %10s %10s\n", "bench", "10GB/s",
                "20GB/s", "40GB/s", "80GB/s");
    for (const auto &wl : benchmarkNames()) {
        std::printf("%-8s", wl.c_str());
        for (const double bw : bws) {
            const double base =
                meanCycles(point(Cfg::Base, wl, 8, bw, false, 1));
            const double pref =
                meanCycles(point(Cfg::Pref, wl, 8, bw, false, 1));
            const double compr =
                meanCycles(point(Cfg::Compr, wl, 8, bw, false, 1));
            const double both =
                meanCycles(point(Cfg::ComprPref, wl, 8, bw, false, 1));
            const double inter = interaction(speedup(base, pref),
                                             speedup(base, compr),
                                             speedup(base, both)) *
                                 100.0;
            std::printf(" %+9.1f%%", inter);
        }
        std::printf("\n");
    }
    return 0;
}
