/**
 * @file
 * Reproduces Table 3: cache compression ratios (average effective
 * cache size relative to the uncompressed 4 MB L2), measured by
 * periodic sampling during execution, exactly as the paper does.
 * Also reports the raw line-level FPC ratio of each workload's data
 * for reference. Paper targets: commercial up to 1.8 (36-80% capacity
 * gain); SPEComp 1.01-1.19.
 */

#include "bench/bench_common.h"

#include "src/compression/fpc.h"
#include "src/workload/value_profile.h"

using namespace cmpsim;
using namespace cmpsim::bench;

namespace {

double
lineLevelRatio(const ValueProfile &profile)
{
    ValueGenerator gen(profile);
    FpcCompressor fpc;
    Random rng(7);
    double segments = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        segments += fpc.compress(gen.generate(rng)).segments;
    return n * 8.0 / segments;
}

} // namespace

int
main()
{
    banner("Table 3: cache compression ratios",
           "commercial band 1.36-1.8 (oltp highest ~1.8); "
           "SPEComp band 1.01-1.19 (apsi 1.01)");

    std::printf("%-8s %14s %14s %16s\n", "bench", "in-cache", "line-FPC",
                "paper band");
    for (const auto &wl : benchmarkNames()) {
        const auto s = point(Cfg::CacheCompr, wl);
        double ratio = 0;
        for (const auto &r : s.runs)
            ratio += r.compression_ratio;
        ratio /= static_cast<double>(s.runs.size());
        const double line_ratio =
            lineLevelRatio(benchmarkParams(wl).values);
        std::printf("%-8s %14.2f %14.2f %16s\n", wl.c_str(), ratio,
                    line_ratio,
                    isCommercial(wl) ? "1.36-1.80" : "1.01-1.19");
    }
    std::printf("\nNote: the in-cache ratio reflects segment packing and\n"
                "tag limits; the line-level ratio is pure FPC output.\n");
    return 0;
}
