#include "src/ckpt/cont_tag.h"

#include <atomic>

namespace cmpsim::ckpt {

namespace {

// Process-wide arming flag. Re-evaluated from the env at every
// CmpSystem construction; the env knobs are process-global, so
// concurrent runner threads always store the same value and relaxed
// ordering suffices.
std::atomic<bool> g_armed{false};

thread_local bool t_restored = false;

} // namespace

bool
armed()
{
    return g_armed.load(std::memory_order_relaxed);
}

void
setArmed(bool on)
{
    g_armed.store(on, std::memory_order_relaxed);
}

Tag
tag(std::uint16_t kind, std::uint64_t a, std::uint64_t b,
    std::uint64_t c, std::uint64_t d, Tag inner)
{
    if (!armed())
        return {};
    auto f = std::make_shared<Frame>();
    f->kind = kind;
    f->a = a;
    f->b = b;
    f->c = c;
    f->d = d;
    f->inner = std::move(inner);
    return f;
}

void
noteRestored()
{
    t_restored = true;
}

bool
consumeRestoredFlag()
{
    const bool was = t_restored;
    t_restored = false;
    return was;
}

} // namespace cmpsim::ckpt
