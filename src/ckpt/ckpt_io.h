/**
 * @file
 * Checkpoint container I/O (DESIGN.md §13).
 *
 * On-disk layout (all integers little-endian):
 *
 *     magic   "CMPSIMCK"                      8 bytes
 *     u32     format version (kFormatVersion)
 *     u64     pointSpec fingerprint
 *     u32     section count
 *     per section:
 *         u16 + bytes   section name
 *         u64           payload length
 *         bytes         payload
 *         u32           CRC-32 of the payload
 *     u32     CRC-32 of everything above (whole-file)
 *
 * Corruption (bad magic, truncation, CRC mismatch) throws
 * CorruptCheckpoint so the restore controller can fall back to the
 * previous good snapshot; a good-CRC file with an unsupported format
 * version throws ConfigError immediately — that file is not corrupt,
 * it is simply not ours to read, and silently "falling back" would
 * resume from stale state.
 *
 * Doubles are stored as length-prefixed `%a` hexfloat strings (the
 * journal's idiom) so they round-trip bit-exactly and the container
 * stays trivially portable across compilers.
 */

#ifndef CMPSIM_CKPT_CKPT_IO_H
#define CMPSIM_CKPT_CKPT_IO_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/ckpt/cont_tag.h"

namespace cmpsim::ckpt {

inline constexpr char kMagic[8] = {'C', 'M', 'P', 'S',
                                   'I', 'M', 'C', 'K'};
inline constexpr std::uint32_t kFormatVersion = 1;

/**
 * Structural damage in a checkpoint file: bad magic, truncation, or a
 * CRC mismatch. Distinct from ConfigError so the restore controller
 * can fall back to the `.prev` snapshot on corruption while refusing
 * fingerprint/version mismatches outright.
 */
class CorruptCheckpoint : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Append-only byte-buffer writer for section payloads. */
class Encoder
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** Bit-exact double as a length-prefixed %a hexfloat string. */
    void dbl(double v);
    /** Length-prefixed (u16) byte string. */
    void str(std::string_view s);
    /** Raw bytes, caller-framed. */
    void raw(const void *data, std::size_t len);
    /** Continuation-tag chain: u16 frame count, frames outer-first. */
    void tagChain(const Tag &t);

    const std::string &bytes() const { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/**
 * Cursor over a section payload; every underrun or malformed field
 * throws CorruptCheckpoint (structural damage inside a section that
 * passed its CRC can only come from an encoder/decoder mismatch, but
 * the failure mode is the same: the file cannot be trusted).
 */
class Decoder
{
  public:
    explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t u8();
    bool boolean() { return u8() != 0; }
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double dbl();
    std::string str();
    void raw(void *out, std::size_t len);
    Tag tagChain();

    bool atEnd() const { return pos_ == bytes_.size(); }
    /** Throw unless the payload was consumed exactly. */
    void expectEnd(const char *what) const;

  private:
    void need(std::size_t n) const;

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

struct Section
{
    std::string name;
    std::string payload;
};

struct ParsedFile
{
    std::uint64_t fingerprint = 0;
    std::vector<Section> sections;
};

/** Serialize a full checkpoint container (header + CRCs). */
std::string packFile(std::uint64_t fingerprint,
                     const std::vector<Section> &sections);

/**
 * Parse and verify a container. Throws CorruptCheckpoint on
 * structural damage, ConfigError("config.restore") on an unsupported
 * format version.
 */
ParsedFile parseFile(std::string_view bytes);

/** Parse then re-pack: the `ckpt.roundtrip` audit's identity check. */
std::string transcode(std::string_view bytes);

} // namespace cmpsim::ckpt

#endif // CMPSIM_CKPT_CKPT_IO_H
