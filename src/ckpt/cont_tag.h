/**
 * @file
 * Serializable continuation tags for checkpoint/restore (DESIGN.md
 * §13).
 *
 * The simulator's pending work — heap events, MSHR waiters, link
 * messages, DRAM requests — is held as std::function closures, which
 * cannot be written to disk. Instead, every production site that
 * creates such a continuation *also* attaches a Tag: a small,
 * immutable, serializable description (a frame kind plus up to four
 * integer payload words, chained for composite closures) from which
 * the checkpoint codec can rebuild an equivalent closure against the
 * restored component graph.
 *
 * Tags are passive metadata: they are consulted only by the codec, so
 * arming them cannot change simulated behaviour. When checkpointing
 * is not armed (no CMPSIM_CKPT / CMPSIM_RESTORE), tag() returns an
 * empty Tag and the hot path pays only a null shared_ptr pass.
 */

#ifndef CMPSIM_CKPT_CONT_TAG_H
#define CMPSIM_CKPT_CONT_TAG_H

#include <cstdint>
#include <memory>

namespace cmpsim::ckpt {

/**
 * Continuation frame kinds. Each names one closure shape in the
 * simulator; the payload words (a..d) carry the closure's captures
 * and `inner` carries a nested continuation (e.g. the Done a link
 * message will invoke on delivery). Values are part of the on-disk
 * checkpoint format — append new kinds, never renumber.
 */
enum FrameKind : std::uint16_t
{
    kNoop = 1,           ///< Done(Cycle): do nothing
    kCoreIFetch = 2,     ///< a=cpu: ifetch miss completion
    kCoreLoad = 3,       ///< a=cpu b=rob slot c=rob id: load completion
    kCoreStoreWake = 4,  ///< a=cpu: store completion wake
    kCoreChainStore = 5, ///< a=cpu: chained-store completion
    kCoreChainLoad = 6,  ///< a=cpu b=rob slot c=rob id: chained load
    kL1Fill = 7,         ///< a=l1 id (cpu*2+side) b=line: L2 response
    kDoneAt = 8,         ///< event: a=cycle, inner=Done to run there
    kL2Lookup = 9,       ///< event: a=cpu b=line c=start d=flags
    kL2Fill = 10,        ///< a=line: memory fetch -> L2 fill
    kMemReqArrived = 11, ///< a=line b=when c=class: request at memory
    kMemSendData = 12,   ///< a=when b=class c=segments: data response
    kMemDataDelivered = 13, ///< a=when: data back at the L2
    kMemDramWrite = 14,  ///< a=line b=segments: writeback into DRAM
    kLinkPump = 15,      ///< event: PriorityLink::pump()
    kLinkInflight = 16,  ///< event: a=bytes b=done cycle, inner=Deliver
    kDramPump = 17,      ///< event: a=channel: DramBackend::pump(ci)
    kDramWriteDone = 18, ///< event: a=channel: write completion
    kDramReadSvc = 19,   ///< event: a=channel: read service accounting
};

struct Frame;

/** A (possibly chained) continuation description; empty = no tag. */
using Tag = std::shared_ptr<const Frame>;

/** One continuation frame: kind + payload + nested continuation. */
struct Frame
{
    std::uint16_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
    Tag inner;
};

/** True while checkpoint tagging is armed for this process. */
bool armed();

/** Arm/disarm tagging (CmpSystem construction, from the env knobs). */
void setArmed(bool on);

/**
 * Build a tag when armed; empty tag otherwise. The null return on the
 * unarmed path keeps tag creation out of normal runs entirely.
 */
Tag tag(std::uint16_t kind, std::uint64_t a = 0, std::uint64_t b = 0,
        std::uint64_t c = 0, std::uint64_t d = 0, Tag inner = {});

/**
 * Record (thread-locally) that a CmpSystem on this thread was restored
 * from a checkpoint; consumed by the parallel runner to report the
 * point as Restored rather than freshly run.
 */
void noteRestored();

/** Return and clear this thread's restored-from-checkpoint flag. */
bool consumeRestoredFlag();

} // namespace cmpsim::ckpt

#endif // CMPSIM_CKPT_CONT_TAG_H
