/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for checkpoint and
 * journal integrity checks. Table-driven, incremental-friendly: feed
 * the previous return value back in as `seed` to extend a running
 * checksum over multiple buffers.
 */

#ifndef CMPSIM_CKPT_CRC32_H
#define CMPSIM_CKPT_CRC32_H

#include <cstddef>
#include <cstdint>

namespace cmpsim::ckpt {

/** CRC-32 of `data[0..len)`, continuing from `seed` (0 to start). */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

} // namespace cmpsim::ckpt

#endif // CMPSIM_CKPT_CRC32_H
