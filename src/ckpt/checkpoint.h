/**
 * @file
 * The checkpoint codec (DESIGN.md §13): bit-exact serialization and
 * restoration of a complete CmpSystem.
 *
 * save() walks every component the simulation mutates — event queues
 * (heap + same-cycle FIFO, gathered across all lane queues into one
 * (when, seq)-sorted list so the bytes are lane-count independent),
 * L1/L2 tag arrays and MSHRs, the priority link's class queues and
 * in-flight transfer, the banked-DRAM channels when armed, prefetcher
 * filter/stream tables, adaptive counters, workload RNG and cursor
 * state, the value store, and the full stat registry — into named,
 * individually CRC'd sections (src/ckpt/ckpt_io.h).
 *
 * Pending closures are serialized through their continuation tags
 * (src/ckpt/cont_tag.h); restore() rebuilds each closure against the
 * restored component graph from its tag chain. A save that encounters
 * a live closure with no tag throws ConfigError("config.ckpt") — that
 * means a scheduling site was added without a tag, and a silent save
 * would drop work.
 *
 * The container's fingerprint field binds a checkpoint to the
 * behavioural (config, workload) pair that produced it; restore()
 * refuses a mismatch with ConfigError("config.restore"). Lane count
 * and watchdog budget are excluded — they never change simulated
 * results, so a checkpoint saved at lanes=1 restores at lanes=4 and
 * vice versa.
 */

#ifndef CMPSIM_CKPT_CHECKPOINT_H
#define CMPSIM_CKPT_CHECKPOINT_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/ckpt/ckpt_io.h"
#include "src/common/types.h"

namespace cmpsim {

class CmpSystem;
class DecoupledSet;
class L2Cache;
class StridePrefetcher;
struct SystemConfig;
struct WorkloadParams;

/**
 * FNV-1a fingerprint of the behavioural identity of a run: every
 * SystemConfig field that can change simulated results (including the
 * DRAM backend spec, the seed, and the audit/sample intervals, which
 * perturb event order) plus the workload's full parameter block.
 * Excludes lanes and watchdog_cycles (execution strategy, not
 * simulated machine).
 */
std::uint64_t checkpointFingerprint(const SystemConfig &config,
                                    const WorkloadParams &workload);

/** Serializes/restores a CmpSystem; friend of every stateful class. */
class CheckpointCodec
{
  public:
    explicit CheckpointCodec(CmpSystem &sys) : sys_(sys) {}

    /** Full checkpoint container (header + sections + CRCs). */
    std::string save();

    /** Restore @p bytes into the freshly built system. */
    void restore(std::string_view bytes);

  private:
    // ---- section writers ----
    std::string saveSystem();
    std::string saveEvents();
    std::string saveStats();
    std::string saveCores();
    std::string saveL1s();
    std::string saveL2();
    std::string saveLink();
    std::string saveDram();
    std::string saveValues();
    std::string savePrefetch();
    std::string saveWorkload();
    std::string saveSample();

    // ---- section readers ----
    void loadSystem(ckpt::Decoder &d);
    void loadEvents(ckpt::Decoder &d);
    void loadStats(ckpt::Decoder &d);
    void loadCores(ckpt::Decoder &d);
    void loadL1s(ckpt::Decoder &d);
    void loadL2(ckpt::Decoder &d);
    void loadLink(ckpt::Decoder &d);
    void loadDram(ckpt::Decoder &d);
    void loadValues(ckpt::Decoder &d);
    void loadPrefetch(ckpt::Decoder &d);
    void loadWorkload(ckpt::Decoder &d);
    void loadSample(ckpt::Decoder &d);

    // ---- continuation factory: rebuild closures from tag chains ----

    /** Event-queue callback for an event-kind frame. */
    std::function<void()> eventFromTag(const ckpt::Tag &t);

    /** void(Cycle) completion (core / memory-pipeline / link-deliver
     *  kinds); null tag -> null function. */
    std::function<void(Cycle)> doneFromTag(const ckpt::Tag &t);

    /** L2 response callback (kL1Fill); null tag -> null function. */
    std::function<void(Cycle, bool, bool)> l2DoneFromTag(
        const ckpt::Tag &t);

    /** Throw ConfigError("config.ckpt") for an untagged live closure
     *  found during save (@p what names the site). */
    [[noreturn]] static void untagged(const char *what);

    // ---- shared structure helpers ----
    static void encodeSet(ckpt::Encoder &e, const DecoupledSet &set);
    static void decodeSet(ckpt::Decoder &d, DecoupledSet &set);
    static void encodePrefetcher(ckpt::Encoder &e,
                                 const StridePrefetcher &pf);
    static void decodePrefetcher(ckpt::Decoder &d, StridePrefetcher &pf);

    CmpSystem &sys_;
};

} // namespace cmpsim

#endif // CMPSIM_CKPT_CHECKPOINT_H
