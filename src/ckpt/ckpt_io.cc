#include "src/ckpt/ckpt_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/ckpt/crc32.h"
#include "src/common/sim_error.h"

namespace cmpsim::ckpt {

// ---------------------------------------------------------------- Encoder

void
Encoder::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
Encoder::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
Encoder::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
Encoder::dbl(double v)
{
    char buf[64];
    const int n = std::snprintf(buf, sizeof buf, "%a", v);
    str(std::string_view(buf, static_cast<std::size_t>(n)));
}

void
Encoder::str(std::string_view s)
{
    u16(static_cast<std::uint16_t>(s.size()));
    bytes_.append(s.data(), s.size());
}

void
Encoder::raw(const void *data, std::size_t len)
{
    bytes_.append(static_cast<const char *>(data), len);
}

void
Encoder::tagChain(const Tag &t)
{
    std::uint16_t count = 0;
    for (const Frame *f = t.get(); f != nullptr; f = f->inner.get())
        ++count;
    u16(count);
    for (const Frame *f = t.get(); f != nullptr; f = f->inner.get()) {
        u16(f->kind);
        u64(f->a);
        u64(f->b);
        u64(f->c);
        u64(f->d);
    }
}

// ---------------------------------------------------------------- Decoder

void
Decoder::need(std::size_t n) const
{
    if (bytes_.size() - pos_ < n)
        throw CorruptCheckpoint("checkpoint section truncated");
}

std::uint8_t
Decoder::u8()
{
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint16_t
Decoder::u16()
{
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t
Decoder::u32()
{
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
}

std::uint64_t
Decoder::u64()
{
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
}

double
Decoder::dbl()
{
    const std::string s = str();
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == s.c_str())
        throw CorruptCheckpoint("malformed hexfloat in checkpoint");
    return v;
}

std::string
Decoder::str()
{
    const std::uint16_t n = u16();
    need(n);
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
}

void
Decoder::raw(void *out, std::size_t len)
{
    need(len);
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
}

Tag
Decoder::tagChain()
{
    const std::uint16_t count = u16();
    std::vector<Frame> frames(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        frames[i].kind = u16();
        frames[i].a = u64();
        frames[i].b = u64();
        frames[i].c = u64();
        frames[i].d = u64();
    }
    Tag chain;
    for (std::uint16_t i = count; i-- > 0;) {
        auto f = std::make_shared<Frame>(frames[i]);
        f->inner = std::move(chain);
        chain = std::move(f);
    }
    return chain;
}

void
Decoder::expectEnd(const char *what) const
{
    if (pos_ != bytes_.size())
        throw CorruptCheckpoint(std::string("trailing bytes in ") +
                                what + " section");
}

// ------------------------------------------------------------- container

std::string
packFile(std::uint64_t fingerprint,
         const std::vector<Section> &sections)
{
    Encoder e;
    e.raw(kMagic, sizeof kMagic);
    e.u32(kFormatVersion);
    e.u64(fingerprint);
    e.u32(static_cast<std::uint32_t>(sections.size()));
    for (const Section &s : sections) {
        e.str(s.name);
        e.u64(s.payload.size());
        e.raw(s.payload.data(), s.payload.size());
        e.u32(crc32(s.payload.data(), s.payload.size()));
    }
    std::string out = e.take();
    const std::uint32_t whole = crc32(out.data(), out.size());
    Encoder tail;
    tail.u32(whole);
    out += tail.take();
    return out;
}

ParsedFile
parseFile(std::string_view bytes)
{
    if (bytes.size() < sizeof kMagic + 4 + 8 + 4 + 4)
        throw CorruptCheckpoint("checkpoint file truncated");
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        throw CorruptCheckpoint("bad checkpoint magic");

    // Whole-file CRC first: it detects truncation and bit flips
    // anywhere, independent of the format version.
    const std::string_view body = bytes.substr(0, bytes.size() - 4);
    Decoder tail(bytes.substr(bytes.size() - 4));
    if (crc32(body.data(), body.size()) != tail.u32())
        throw CorruptCheckpoint("checkpoint whole-file CRC mismatch");

    Decoder d(body);
    char magic[sizeof kMagic];
    d.raw(magic, sizeof magic);
    const std::uint32_t version = d.u32();
    if (version != kFormatVersion)
        throw ConfigError("config.restore",
                          "unsupported checkpoint format version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kFormatVersion) + ")");

    ParsedFile file;
    file.fingerprint = d.u64();
    const std::uint32_t count = d.u32();
    file.sections.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        s.name = d.str();
        const std::uint64_t len = d.u64();
        s.payload.resize(len);
        d.raw(s.payload.data(), len);
        const std::uint32_t crc = d.u32();
        if (crc32(s.payload.data(), s.payload.size()) != crc)
            throw CorruptCheckpoint("checkpoint section '" + s.name +
                                    "' CRC mismatch");
        file.sections.push_back(std::move(s));
    }
    d.expectEnd("container");
    return file;
}

std::string
transcode(std::string_view bytes)
{
    const ParsedFile file = parseFile(bytes);
    return packFile(file.fingerprint, file.sections);
}

} // namespace cmpsim::ckpt
