#include "src/ckpt/controller.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/ckpt/ckpt_io.h"
#include "src/common/sim_error.h"
#include "src/sim/fault_injection.h"

namespace cmpsim::ckpt {

namespace {

/** Whole-file read; empty optional-style: throws CorruptCheckpoint
 *  when the file cannot be opened (missing counts as damage so the
 *  caller's .prev fallback engages — a SIGKILL between the two
 *  renames of atomicSave leaves no current snapshot at all). */
std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        throw CorruptCheckpoint("cannot open checkpoint " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw CorruptCheckpoint("read error on checkpoint " + path);
    return std::move(buf).str();
}

} // namespace

Settings
Settings::parseCkptSpec(const std::string &spec)
{
    Settings s;
    const std::string marker = ":every";
    const auto pos = spec.rfind(marker);
    if (pos == std::string::npos || pos == 0) {
        throw ConfigError("config.ckpt",
                          "CMPSIM_CKPT must be <path>:every<N>, got \"" +
                              spec + "\"");
    }
    s.save_path = spec.substr(0, pos);
    const std::string count = spec.substr(pos + marker.size());
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
        throw ConfigError("config.ckpt",
                          "CMPSIM_CKPT interval must be a positive "
                          "integer, got \"" +
                              count + "\"");
    }
    s.every = std::strtoull(count.c_str(), nullptr, 10);
    if (s.every == 0) {
        throw ConfigError("config.ckpt",
                          "CMPSIM_CKPT interval must be non-zero");
    }
    return s;
}

Settings
Settings::fromEnv()
{
    Settings s;
    if (const char *env = std::getenv("CMPSIM_CKPT");
        env != nullptr && *env != '\0') {
        s = parseCkptSpec(env);
    }
    if (const char *env = std::getenv("CMPSIM_RESTORE");
        env != nullptr && *env != '\0') {
        s.restore_path = env;
    }
    return s;
}

void
atomicSave(const std::string &path, const std::string &bytes)
{
    faultSite("ckpt.save");
    const std::string tmp = path + ".tmp";
    const std::string prev = path + ".prev";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.is_open()) {
            throw SimError(ErrorKind::Internal, "ckpt.save",
                           "cannot open " + tmp + " for writing");
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out.good()) {
            throw SimError(ErrorKind::Internal, "ckpt.save",
                           "write failed on " + tmp);
        }
    }
    // Rotate: current snapshot becomes the fallback generation, then
    // the fresh one takes its place. Each step is a single rename, so
    // a kill at any point leaves a complete snapshot under at least
    // one of the two names. The first rename's failure is ignored on
    // purpose — there is nothing to rotate on the very first save.
    std::rename(path.c_str(), prev.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        throw SimError(ErrorKind::Internal, "ckpt.save",
                       "cannot rename " + tmp + " over " + path);
    }
}

std::string
loadWithFallback(const std::string &path)
{
    faultSite("ckpt.load");
    try {
        std::string bytes = readFile(path);
        parseFile(bytes); // structural validation only
        return bytes;
    } catch (const CorruptCheckpoint &primary) {
        const std::string prev = path + ".prev";
        try {
            std::string bytes = readFile(prev);
            parseFile(bytes);
            return bytes;
        } catch (const CorruptCheckpoint &fallback) {
            throw ConfigError(
                "config.restore",
                "no usable checkpoint: " + std::string(primary.what()) +
                    "; " + fallback.what());
        }
    }
}

} // namespace cmpsim::ckpt
