/**
 * @file
 * Checkpoint controller (DESIGN.md §13): environment-knob parsing,
 * crash-safe atomic snapshot writes and corruption-tolerant loading.
 *
 * Knobs:
 *
 *     CMPSIM_CKPT=<path>:every<N>   autosave the full simulator state
 *                                   to <path> every N timed cycles
 *     CMPSIM_RESTORE=<path>         resume from <path> instead of
 *                                   running from cycle 0
 *
 * Autosave is atomic and keeps one generation of history: the new
 * snapshot is written to <path>.tmp, the previous snapshot rotates to
 * <path>.prev, and the temp file renames over <path> — so a crash (or
 * SIGKILL) at any instant leaves either a complete current snapshot, a
 * complete previous snapshot, or both. loadWithFallback() mirrors
 * that: structural corruption in <path> (bad magic, truncation, CRC
 * mismatch) falls back to <path>.prev; a *well-formed* checkpoint with
 * the wrong format version or pointSpec fingerprint is refused with
 * ConfigError — that file is not damaged, it is simply not a resume
 * point for this run, and silently falling back would resume from
 * stale state.
 *
 * Fault-injection sites: "ckpt.save" (entry of atomicSave) and
 * "ckpt.load" (entry of loadWithFallback), so chaos tests can kill a
 * save mid-rotation or fail a load deterministically.
 */

#ifndef CMPSIM_CKPT_CONTROLLER_H
#define CMPSIM_CKPT_CONTROLLER_H

#include <cstdint>
#include <string>

namespace cmpsim::ckpt {

/** Parsed checkpoint/restore knobs for one CmpSystem. */
struct Settings
{
    std::string save_path;   ///< empty = autosave disabled
    std::uint64_t every = 0; ///< timed cycles between autosaves
    std::string restore_path; ///< empty = fresh run

    /** True when run() should write periodic snapshots. */
    bool
    autosaveArmed() const
    {
        return !save_path.empty() && every > 0;
    }

    /** True when any checkpoint machinery (tagging) must be live. */
    bool
    armed() const
    {
        return !save_path.empty() || !restore_path.empty();
    }

    /**
     * Parse CMPSIM_CKPT / CMPSIM_RESTORE. Malformed CMPSIM_CKPT
     * (missing ":every<N>", empty path, zero/garbage interval) throws
     * ConfigError with context "config.ckpt".
     */
    static Settings fromEnv();

    /** Parse one CMPSIM_CKPT-style spec ("<path>:every<N>"). */
    static Settings parseCkptSpec(const std::string &spec);
};

/**
 * Crash-safe snapshot write: @p bytes go to "<path>.tmp", the current
 * "<path>" (if any) rotates to "<path>.prev", then the temp file
 * renames over "<path>". Throws SimError(Internal, "ckpt.save") when
 * the filesystem refuses. Fault site: "ckpt.save".
 */
void atomicSave(const std::string &path, const std::string &bytes);

/**
 * Read a checkpoint, tolerating a corrupt current snapshot: returns
 * the raw bytes of "<path>" if they parse as a structurally valid
 * container, otherwise the bytes of "<path>.prev". A good-CRC file
 * with an unsupported format version throws ConfigError (context
 * "config.restore") without falling back; when neither file yields a
 * valid container, throws ConfigError naming both candidates.
 * Fault site: "ckpt.load".
 */
std::string loadWithFallback(const std::string &path);

} // namespace cmpsim::ckpt

#endif // CMPSIM_CKPT_CONTROLLER_H
