#include "src/ckpt/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "src/cache/decoupled_set.h"
#include "src/cache/l1_cache.h"
#include "src/cache/l2_cache.h"
#include "src/common/fingerprint.h"
#include "src/common/sim_error.h"
#include "src/core/core_model.h"
#include "src/core_api/cmp_system.h"
#include "src/dram/dram_backend.h"
#include "src/mem/main_memory.h"
#include "src/mem/priority_link.h"
#include "src/mem/value_store.h"
#include "src/prefetch/adaptive_controller.h"
#include "src/prefetch/stride_prefetcher.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

namespace {

void
fpInt(std::string &s, const char *key, std::uint64_t v)
{
    s += key;
    s += '=';
    s += std::to_string(v);
    s += ';';
}

void
fpDbl(std::string &s, const char *key, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    s += key;
    s += '=';
    s += buf;
    s += ';';
}

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::uint64_t
checkpointFingerprint(const SystemConfig &c, const WorkloadParams &w)
{
    std::string s;
    // Behavioural SystemConfig knobs only: lanes and watchdog_cycles
    // never change simulated results (the sharded kernel is
    // byte-identical at any lane count and the watchdog only bounds
    // livelock), so a checkpoint moves freely across them. The audit
    // and sample intervals are *included*: they do not perturb
    // results today, but they gate periodic work inside the run loop
    // and a resumed run must replay the same cursor arithmetic.
    fpInt(s, "cores", c.cores);
    fpInt(s, "scale", c.scale);
    fpInt(s, "cache_compression", c.cache_compression);
    fpInt(s, "link_compression", c.link_compression);
    fpInt(s, "prefetching", c.prefetching);
    fpInt(s, "adaptive_prefetch", c.adaptive_prefetch);
    fpDbl(s, "pin_bandwidth_gbps", c.pin_bandwidth_gbps);
    fpInt(s, "infinite_bandwidth", c.infinite_bandwidth);
    fpInt(s, "seed", c.seed);
    fpInt(s, "shared_l2_prefetcher", c.shared_l2_prefetcher);
    fpInt(s, "l1_prefetch_triggers_l2", c.l1_prefetch_triggers_l2);
    fpInt(s, "extra_victim_tags", c.extra_victim_tags);
    fpInt(s, "l1_startup_prefetches", c.l1_startup_prefetches);
    fpInt(s, "l2_startup_prefetches", c.l2_startup_prefetches);
    fpInt(s, "decompression_latency", c.decompression_latency);
    fpInt(s, "adaptive_compression", c.adaptive_compression);
    fpInt(s, "wide_compressed_sets", c.wide_compressed_sets);
    fpInt(s, "audit_interval", c.audit_interval);
    fpInt(s, "audit_fill_roundtrip", c.audit_fill_roundtrip);
    fpInt(s, "sample_interval", c.sample_interval);
    const DramTimingParams &d = c.dram;
    fpInt(s, "dram.backend", static_cast<unsigned>(d.backend));
    fpInt(s, "dram.channels", d.channels);
    fpInt(s, "dram.ranks", d.ranks);
    fpInt(s, "dram.banks", d.banks);
    fpInt(s, "dram.row_bytes", d.row_bytes);
    fpInt(s, "dram.trcd", d.trcd);
    fpInt(s, "dram.tcas", d.tcas);
    fpInt(s, "dram.trp", d.trp);
    fpInt(s, "dram.tras", d.tras);
    fpInt(s, "dram.burst_bytes", d.burst_bytes);
    fpInt(s, "dram.burst_cycles", d.burst_cycles);
    fpInt(s, "dram.ctrl_latency", d.ctrl_latency);
    fpInt(s, "dram.closed_page", d.closed_page);
    fpInt(s, "dram.sched", static_cast<unsigned>(d.sched));
    fpInt(s, "dram.refresh_interval", d.refresh_interval);
    fpInt(s, "dram.refresh_cycles", d.refresh_cycles);
    fpInt(s, "dram.wq_high", d.write_high_watermark);
    fpInt(s, "dram.wq_low", d.write_low_watermark);
    // Sampling-plan knobs appended only when armed so every unsampled
    // fingerprint stays byte-identical to pre-sampling checkpoints.
    // The plan is behavioural for a sampled run: a checkpoint taken
    // mid-plan must resume under the *same* interval schedule.
    if (c.sampling.armed()) {
        fpInt(s, "sampling.ff", c.sampling.ff_per_core);
        fpInt(s, "sampling.detail", c.sampling.detail_per_core);
        fpInt(s, "sampling.n", c.sampling.max_intervals);
        fpInt(s, "sampling.warm", c.sampling.warm_per_core);
        fpDbl(s, "sampling.ci", c.sampling.ci_target_pct);
    }

    s += "workload=";
    s += w.name;
    s += ';';
    fpDbl(s, "load_frac", w.load_frac);
    fpDbl(s, "store_frac", w.store_frac);
    fpDbl(s, "branch_frac", w.branch_frac);
    fpDbl(s, "mispredict_rate", w.mispredict_rate);
    fpDbl(s, "branch_far_frac", w.branch_far_frac);
    fpInt(s, "i_footprint", w.i_footprint);
    fpInt(s, "ws_private", w.ws_private);
    fpInt(s, "ws_shared", w.ws_shared);
    fpDbl(s, "shared_frac", w.shared_frac);
    fpDbl(s, "stride_frac", w.stride_frac);
    fpDbl(s, "stream_chain", w.stream_chain);
    fpInt(s, "ws_stream", w.ws_stream);
    fpInt(s, "stream_count", w.stream_count);
    fpInt(s, "stream_len_min", w.stream_len_min);
    fpInt(s, "stream_len_max", w.stream_len_max);
    for (int b : w.stride_bytes)
        fpInt(s, "stride_byte",
              static_cast<std::uint64_t>(static_cast<std::int64_t>(b)));
    fpDbl(s, "stream_reuse", w.stream_reuse);
    fpDbl(s, "zipf_s", w.zipf_s);
    fpDbl(s, "hot_frac", w.hot_frac);
    fpInt(s, "ws_hot", w.ws_hot);
    fpDbl(s, "code_zipf", w.code_zipf);
    for (const auto &loop : w.loops) {
        fpInt(s, "loop.bytes", loop.bytes);
        fpDbl(s, "loop.weight", loop.weight);
    }
    fpDbl(s, "loop_frac", w.loop_frac);
    fpInt(s, "loop_record", w.loop_record);
    fpInt(s, "record_accesses", w.record_accesses);
    fpDbl(s, "values.zero", w.values.zero);
    fpDbl(s, "values.small_int", w.values.small_int);
    fpDbl(s, "values.repeated_byte", w.values.repeated_byte);
    fpDbl(s, "values.pointer_pair", w.values.pointer_pair);
    return fnv1a(s);
}

void
CheckpointCodec::untagged(const char *what)
{
    throw ConfigError("config.ckpt",
                      std::string("cannot checkpoint: live ") + what +
                          " closure has no continuation tag (a "
                          "scheduling site is missing its tag)");
}

// ---------------------------------------------------------------
// Continuation factory
// ---------------------------------------------------------------

std::function<void(Cycle)>
CheckpointCodec::doneFromTag(const ckpt::Tag &t)
{
    if (t == nullptr)
        return nullptr;
    switch (t->kind) {
    case ckpt::kNoop:
        return [](Cycle) {};
    case ckpt::kCoreIFetch: {
        CoreModel *core = sys_.cores_.at(t->a).get();
        return [core](Cycle c) {
            core->fetch_stall_until_ = c;
            core->wake(c);
        };
    }
    case ckpt::kCoreLoad: {
        CoreModel *core = sys_.cores_.at(t->a).get();
        const auto slot = static_cast<unsigned>(t->b);
        const std::uint64_t id = t->c;
        return [core, slot, id](Cycle c) {
            core->finishLoad(slot, id, c, false);
        };
    }
    case ckpt::kCoreStoreWake: {
        CoreModel *core = sys_.cores_.at(t->a).get();
        return [core](Cycle c) { core->wake(c); };
    }
    case ckpt::kCoreChainStore: {
        CoreModel *core = sys_.cores_.at(t->a).get();
        return [core](Cycle c) {
            core->chain_outstanding_ = false;
            core->wake(c);
            core->issueChainHead(c);
        };
    }
    case ckpt::kCoreChainLoad: {
        CoreModel *core = sys_.cores_.at(t->a).get();
        const auto slot = static_cast<unsigned>(t->b);
        const std::uint64_t id = t->c;
        return [core, slot, id](Cycle c) {
            core->finishLoad(slot, id, c, true);
        };
    }
    case ckpt::kL2Fill: {
        L2Cache *l2 = sys_.l2_.get();
        const Addr line = t->a;
        return [l2, line](Cycle arrival) { l2->fill(line, arrival); };
    }
    case ckpt::kMemReqArrived: {
        MainMemory *mem = sys_.memory_.get();
        const Addr line = t->a;
        const Cycle when = t->b;
        const auto cls = static_cast<LinkClass>(t->c);
        return [mem, line, when, cls, done = doneFromTag(t->inner),
                inner = t->inner](Cycle req_arrives) mutable {
            mem->fetchStage2(line, when, cls, std::move(done),
                             std::move(inner), req_arrives);
        };
    }
    case ckpt::kMemSendData: {
        MainMemory *mem = sys_.memory_.get();
        const Cycle when = t->a;
        const auto cls = static_cast<LinkClass>(t->b);
        const auto segments = static_cast<unsigned>(t->c);
        return [mem, when, cls, segments, done = doneFromTag(t->inner),
                inner = t->inner](Cycle dram_done) mutable {
            mem->fetchSendData(when, cls, segments, std::move(done),
                               std::move(inner), dram_done);
        };
    }
    case ckpt::kMemDataDelivered: {
        MainMemory *mem = sys_.memory_.get();
        const Cycle when = t->a;
        return [mem, when, done = doneFromTag(t->inner)](Cycle at) {
            mem->fetchDeliver(when, done, at);
        };
    }
    case ckpt::kMemDramWrite: {
        MainMemory *mem = sys_.memory_.get();
        const Addr line = t->a;
        const auto segments = static_cast<unsigned>(t->b);
        return [mem, line, segments](Cycle at) {
            mem->dram_->write(line, segments, at);
        };
    }
    default:
        throw ckpt::CorruptCheckpoint(
            "unexpected completion frame kind " +
            std::to_string(t->kind));
    }
}

std::function<void(Cycle, bool, bool)>
CheckpointCodec::l2DoneFromTag(const ckpt::Tag &t)
{
    if (t == nullptr)
        return nullptr;
    if (t->kind != ckpt::kL1Fill) {
        throw ckpt::CorruptCheckpoint(
            "unexpected L2-response frame kind " +
            std::to_string(t->kind));
    }
    const std::uint64_t id = t->a;
    const Addr line = t->b;
    const auto cpu = static_cast<unsigned>(id / 2);
    L1Cache *l1 = (id % 2 == 0 ? sys_.l1i_ : sys_.l1d_).at(cpu).get();
    return [l1, line](Cycle at, bool exclusive, bool was_compressed) {
        l1->fill(line, at, exclusive, was_compressed);
    };
}

std::function<void()>
CheckpointCodec::eventFromTag(const ckpt::Tag &t)
{
    if (t == nullptr)
        throw ckpt::CorruptCheckpoint("event with empty tag chain");
    switch (t->kind) {
    case ckpt::kDoneAt: {
        const Cycle at = t->a;
        return [done = doneFromTag(t->inner), at] {
            if (done)
                done(at);
        };
    }
    case ckpt::kL2Lookup: {
        L2Cache *l2 = sys_.l2_.get();
        const auto cpu = static_cast<unsigned>(t->a);
        const Addr line = t->b;
        const Cycle start = t->c;
        const bool exclusive = (t->d & 1) != 0;
        const auto type = static_cast<ReqType>(t->d >> 1);
        return [l2, cpu, line, exclusive, type, start,
                done = l2DoneFromTag(t->inner),
                done_tag = t->inner]() mutable {
            l2->lookup(cpu, line, exclusive, type, start,
                       std::move(done), std::move(done_tag));
        };
    }
    case ckpt::kLinkPump: {
        PriorityLink *link = &sys_.memory_->link();
        return [link] { link->pump(); };
    }
    case ckpt::kLinkInflight: {
        PriorityLink *link = &sys_.memory_->link();
        const auto bytes = static_cast<unsigned>(t->a);
        const Cycle done_at = t->b;
        return [link, deliver = doneFromTag(t->inner), done_at,
                bytes]() mutable {
            link->completeTransfer(std::move(deliver), done_at, bytes);
        };
    }
    case ckpt::kDramPump: {
        DramBackend *dram = sys_.memory_->dram();
        const auto ci = static_cast<unsigned>(t->a);
        return [dram, ci] { dram->pump(ci); };
    }
    case ckpt::kDramWriteDone: {
        DramBackend *dram = sys_.memory_->dram();
        const auto ci = static_cast<unsigned>(t->a);
        return [dram, ci] {
            ++dram->writes_serviced_;
            ++dram->conserv_writes_out_;
            --dram->inflight_writes_;
            dram->pump(ci);
        };
    }
    case ckpt::kDramReadSvc: {
        DramBackend *dram = sys_.memory_->dram();
        const auto ci = static_cast<unsigned>(t->a);
        return [dram, ci] {
            ++dram->reads_serviced_;
            ++dram->conserv_reads_out_;
            --dram->inflight_reads_;
            dram->pump(ci);
        };
    }
    default:
        throw ckpt::CorruptCheckpoint("unexpected event frame kind " +
                                      std::to_string(t->kind));
    }
}

// ---------------------------------------------------------------
// Shared structure helpers
// ---------------------------------------------------------------

void
CheckpointCodec::encodeSet(ckpt::Encoder &e, const DecoupledSet &set)
{
    e.u16(static_cast<std::uint16_t>(set.entries_.size()));
    for (const TagEntry &t : set.entries_) {
        e.u64(t.line);
        e.boolean(t.valid);
        e.boolean(t.dirty);
        e.boolean(t.prefetch);
        e.u8(static_cast<std::uint8_t>(t.pf_source));
        e.boolean(t.was_compressed);
        e.u8(t.segments);
        e.u16(t.sharers);
        e.u8(static_cast<std::uint8_t>(t.owner));
    }
    e.u32(set.used_segments_);
}

void
CheckpointCodec::decodeSet(ckpt::Decoder &d, DecoupledSet &set)
{
    const std::uint16_t n = d.u16();
    if (n != set.entries_.size()) {
        throw ckpt::CorruptCheckpoint(
            "cache set tag count mismatch: file " + std::to_string(n) +
            ", config " + std::to_string(set.entries_.size()));
    }
    for (TagEntry &t : set.entries_) {
        t.line = d.u64();
        t.valid = d.boolean();
        t.dirty = d.boolean();
        t.prefetch = d.boolean();
        t.pf_source = static_cast<PfSource>(d.u8());
        t.was_compressed = d.boolean();
        t.segments = d.u8();
        t.sharers = d.u16();
        t.owner = static_cast<std::int8_t>(d.u8());
    }
    set.used_segments_ = d.u32();
}

void
CheckpointCodec::encodePrefetcher(ckpt::Encoder &e,
                                  const StridePrefetcher &pf)
{
    auto table = [&e](const std::vector<StridePrefetcher::FilterEntry>
                          &entries) {
        e.u32(static_cast<std::uint32_t>(entries.size()));
        for (const auto &f : entries) {
            e.i64(f.last_line);
            e.i64(f.stride);
            e.u32(f.count);
            e.u64(f.lru);
            e.boolean(f.valid);
        }
    };
    table(pf.pos_unit_);
    table(pf.neg_unit_);
    table(pf.non_unit_);
    e.u32(static_cast<std::uint32_t>(pf.streams_.size()));
    for (const auto &s : pf.streams_) {
        e.i64(s.next_pf);
        e.i64(s.stride);
        e.i64(s.last_demand);
        e.u64(s.lru);
        e.boolean(s.valid);
    }
    e.u32(static_cast<std::uint32_t>(pf.recent_misses_.size()));
    for (std::int64_t m : pf.recent_misses_)
        e.i64(m);
    e.u64(pf.tick_);
}

void
CheckpointCodec::decodePrefetcher(ckpt::Decoder &d, StridePrefetcher &pf)
{
    auto table = [&d](std::vector<StridePrefetcher::FilterEntry>
                          &entries) {
        const std::uint32_t n = d.u32();
        if (n != entries.size()) {
            throw ckpt::CorruptCheckpoint(
                "prefetcher filter-table size mismatch");
        }
        for (auto &f : entries) {
            f.last_line = d.i64();
            f.stride = d.i64();
            f.count = d.u32();
            f.lru = d.u64();
            f.valid = d.boolean();
        }
    };
    table(pf.pos_unit_);
    table(pf.neg_unit_);
    table(pf.non_unit_);
    const std::uint32_t nstreams = d.u32();
    if (nstreams != pf.streams_.size())
        throw ckpt::CorruptCheckpoint("stream-table size mismatch");
    for (auto &s : pf.streams_) {
        s.next_pf = d.i64();
        s.stride = d.i64();
        s.last_demand = d.i64();
        s.lru = d.u64();
        s.valid = d.boolean();
    }
    pf.recent_misses_.clear();
    const std::uint32_t nmiss = d.u32();
    for (std::uint32_t i = 0; i < nmiss; ++i)
        pf.recent_misses_.push_back(d.i64());
    pf.tick_ = d.u64();
}

// ---------------------------------------------------------------
// Sections
// ---------------------------------------------------------------

std::string
CheckpointCodec::saveSystem()
{
    ckpt::Encoder e;
    e.u64(sys_.eq_.now());
    e.u64(sys_.lane_eqs_.empty() ? sys_.eq_.own_seq_ : sys_.lane_seq_);
    const CmpSystem::RunState &rs = sys_.run_state_;
    e.boolean(rs.active);
    e.u64(rs.start);
    e.u64(rs.start_retired);
    e.u64(rs.target);
    e.u64(rs.next_sample);
    e.u64(rs.next_audit);
    e.u64(rs.next_obs);
    e.u64(rs.last_progress);
    e.u64(rs.last_retired);
    e.dbl(sys_.ratio_samples_.sum());
    e.u64(sys_.ratio_samples_.count());
    e.u64(sys_.audits_.passes_);
    e.u64(sys_.measured_cycles_);
    e.u64(sys_.measured_instructions_);
    return e.take();
}

void
CheckpointCodec::loadSystem(ckpt::Decoder &d)
{
    const Cycle now = d.u64();
    const std::uint64_t seq = d.u64();
    sys_.eq_.now_ = now;
    for (auto &q : sys_.lane_eqs_)
        q->now_ = now;
    if (sys_.lane_eqs_.empty())
        sys_.eq_.own_seq_ = seq;
    else
        sys_.lane_seq_ = seq;
    CmpSystem::RunState &rs = sys_.run_state_;
    rs.active = d.boolean();
    rs.start = d.u64();
    rs.start_retired = d.u64();
    rs.target = d.u64();
    rs.next_sample = d.u64();
    rs.next_audit = d.u64();
    rs.next_obs = d.u64();
    rs.last_progress = d.u64();
    rs.last_retired = d.u64();
    const double ratio_sum = d.dbl();
    const std::uint64_t ratio_count = d.u64();
    sys_.ratio_samples_.restore(ratio_sum, ratio_count);
    sys_.audits_.passes_ = d.u64();
    sys_.measured_cycles_ = d.u64();
    sys_.measured_instructions_ = d.u64();
}

std::string
CheckpointCodec::saveEvents()
{
    // Gather pending events from the uncore queue plus every lane
    // queue (heap and same-cycle FIFO both) and emit them in global
    // (when, seq) order. Which queue held an event is *not* recorded:
    // the merged drain executes events in (when, seq) order wherever
    // they sit, so a single sorted list restores correctly at any
    // lane count — and the bytes are lane-count independent.
    std::vector<const EventQueue::Event *> events;
    auto gather = [&events](const EventQueue &q) {
        for (const auto &ev : q.heap_)
            events.push_back(&ev);
        for (std::size_t i = q.same_head_; i < q.same_cycle_.size(); ++i)
            events.push_back(&q.same_cycle_[i]);
    };
    gather(sys_.eq_);
    for (const auto &q : sys_.lane_eqs_)
        gather(*q);
    std::sort(events.begin(), events.end(),
              [](const EventQueue::Event *a, const EventQueue::Event *b) {
                  return a->before(*b);
              });
    ckpt::Encoder e;
    e.u64(events.size());
    for (const EventQueue::Event *ev : events) {
        if (ev->tag == nullptr)
            untagged("event");
        e.u64(ev->when);
        e.u64(ev->seq);
        e.tagChain(ev->tag);
    }
    return e.take();
}

void
CheckpointCodec::loadEvents(ckpt::Decoder &d)
{
    // All events restore into the uncore queue regardless of lane
    // count: the merged drain replays global (when, seq) order across
    // queues, so placement is semantically irrelevant, and a
    // (when, seq)-sorted array is already a valid binary min-heap.
    EventQueue &eq = sys_.eq_;
    eq.heap_.clear();
    eq.same_cycle_.clear();
    eq.same_head_ = 0;
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        EventQueue::Event ev;
        ev.when = d.u64();
        ev.seq = d.u64();
        ev.tag = d.tagChain();
        ev.cb = eventFromTag(ev.tag);
        eq.heap_.push_back(std::move(ev));
    }
    std::sort(eq.heap_.begin(), eq.heap_.end(),
              [](const EventQueue::Event &a, const EventQueue::Event &b) {
                  return a.before(b);
              });
}

std::string
CheckpointCodec::saveStats()
{
    ckpt::Encoder e;
    const StatRegistry &reg = sys_.registry_;
    const auto counters = reg.counterNames();
    e.u32(static_cast<std::uint32_t>(counters.size()));
    for (const auto &name : counters) {
        e.str(name);
        e.u64(reg.counter(name));
    }
    const auto averages = reg.averageNames();
    e.u32(static_cast<std::uint32_t>(averages.size()));
    for (const auto &name : averages) {
        const Average &a = reg.averageStat(name);
        e.str(name);
        e.dbl(a.sum());
        e.u64(a.count());
    }
    const auto histograms = reg.histogramNames();
    e.u32(static_cast<std::uint32_t>(histograms.size()));
    for (const auto &name : histograms) {
        const Histogram &h = reg.histogram(name);
        e.str(name);
        e.u32(h.buckets());
        for (unsigned i = 0; i < h.buckets(); ++i)
            e.u64(h.bucket(i));
        e.u64(h.underflow());
        e.dbl(h.mean() * static_cast<double>(h.total())); // sum
        e.u64(h.total());
    }
    return e.take();
}

void
CheckpointCodec::loadStats(ckpt::Decoder &d)
{
    StatRegistry &reg = sys_.registry_;
    const std::uint32_t ncounters = d.u32();
    for (std::uint32_t i = 0; i < ncounters; ++i) {
        const std::string name = d.str();
        reg.restoreCounter(name, d.u64());
    }
    const std::uint32_t naverages = d.u32();
    for (std::uint32_t i = 0; i < naverages; ++i) {
        const std::string name = d.str();
        const double sum = d.dbl();
        const std::uint64_t count = d.u64();
        reg.restoreAverage(name, sum, count);
    }
    const std::uint32_t nhist = d.u32();
    for (std::uint32_t i = 0; i < nhist; ++i) {
        const std::string name = d.str();
        const std::uint32_t buckets = d.u32();
        if (buckets != reg.histogram(name).buckets()) {
            throw ckpt::CorruptCheckpoint(
                "histogram bucket-count mismatch for " + name);
        }
        std::vector<std::uint64_t> counts(buckets);
        for (auto &c : counts)
            c = d.u64();
        const std::uint64_t underflow = d.u64();
        const double sum = d.dbl();
        const std::uint64_t total = d.u64();
        reg.restoreHistogram(name, counts, underflow, sum, total);
    }
}

std::string
CheckpointCodec::saveCores()
{
    ckpt::Encoder e;
    e.u32(static_cast<std::uint32_t>(sys_.cores_.size()));
    for (const auto &cp : sys_.cores_) {
        const CoreModel &c = *cp;
        e.u32(static_cast<std::uint32_t>(c.rob_.size()));
        for (const auto &r : c.rob_) {
            e.u8(static_cast<std::uint8_t>(r.type));
            e.u64(r.done_at);
            e.u64(r.id);
        }
        e.u32(c.rob_head_);
        e.u32(c.rob_tail_);
        e.u32(c.rob_count_);
        e.u64(c.next_rob_id_);
        e.boolean(c.have_pending_);
        e.u8(static_cast<std::uint8_t>(c.pending_.type));
        e.u64(c.pending_.pc);
        e.u64(c.pending_.addr);
        e.u32(c.pending_.store_value);
        e.boolean(c.pending_.mispredict);
        e.boolean(c.pending_.chained);
        e.u32(static_cast<std::uint32_t>(c.chain_queue_.size()));
        for (const auto &a : c.chain_queue_) {
            e.u64(a.addr);
            e.boolean(a.is_write);
            e.u32(a.slot);
            e.u64(a.id);
        }
        e.boolean(c.chain_outstanding_);
        e.u64(c.last_fetch_line_);
        e.u64(c.fetch_stall_until_);
        e.u64(c.next_wake_);
    }
    return e.take();
}

void
CheckpointCodec::loadCores(ckpt::Decoder &d)
{
    const std::uint32_t n = d.u32();
    if (n != sys_.cores_.size())
        throw ckpt::CorruptCheckpoint("core count mismatch");
    for (auto &cp : sys_.cores_) {
        CoreModel &c = *cp;
        const std::uint32_t rob = d.u32();
        if (rob != c.rob_.size())
            throw ckpt::CorruptCheckpoint("ROB size mismatch");
        for (auto &r : c.rob_) {
            r.type = static_cast<InstrType>(d.u8());
            r.done_at = d.u64();
            r.id = d.u64();
        }
        c.rob_head_ = d.u32();
        c.rob_tail_ = d.u32();
        c.rob_count_ = d.u32();
        c.next_rob_id_ = d.u64();
        c.have_pending_ = d.boolean();
        c.pending_.type = static_cast<InstrType>(d.u8());
        c.pending_.pc = d.u64();
        c.pending_.addr = d.u64();
        c.pending_.store_value = d.u32();
        c.pending_.mispredict = d.boolean();
        c.pending_.chained = d.boolean();
        c.chain_queue_.clear();
        const std::uint32_t chain = d.u32();
        for (std::uint32_t i = 0; i < chain; ++i) {
            CoreModel::ChainedAccess a;
            a.addr = d.u64();
            a.is_write = d.boolean();
            a.slot = d.u32();
            a.id = d.u64();
            c.chain_queue_.push_back(a);
        }
        c.chain_outstanding_ = d.boolean();
        c.last_fetch_line_ = d.u64();
        c.fetch_stall_until_ = d.u64();
        c.next_wake_ = d.u64();
    }
}

std::string
CheckpointCodec::saveL1s()
{
    ckpt::Encoder e;
    auto one = [this, &e](const L1Cache &l1) {
        if (l1.functional_mode_) {
            throw ConfigError("config.ckpt",
                              "cannot checkpoint in functional mode");
        }
        e.u32(static_cast<std::uint32_t>(l1.sets_.size()));
        for (const auto &set : l1.sets_)
            encodeSet(e, set);
        std::vector<Addr> keys;
        keys.reserve(l1.mshrs_.size());
        // analyze-ok: unordered-iter keys are sorted before encoding
        for (const auto &[addr, mshr] : l1.mshrs_)
            keys.push_back(addr);
        std::sort(keys.begin(), keys.end());
        e.u32(static_cast<std::uint32_t>(keys.size()));
        for (Addr addr : keys) {
            const auto &mshr = l1.mshrs_.at(addr);
            e.u64(addr);
            e.boolean(mshr.prefetch_only);
            e.boolean(mshr.requested_exclusive);
            e.u32(static_cast<std::uint32_t>(mshr.waiters.size()));
            for (const auto &w : mshr.waiters) {
                if (w.done != nullptr && w.tag == nullptr)
                    untagged("L1 MSHR waiter");
                e.boolean(w.is_write);
                e.tagChain(w.tag);
            }
        }
    };
    for (unsigned c = 0; c < sys_.config_.cores; ++c) {
        one(*sys_.l1i_[c]);
        one(*sys_.l1d_[c]);
    }
    return e.take();
}

void
CheckpointCodec::loadL1s(ckpt::Decoder &d)
{
    auto one = [this, &d](L1Cache &l1) {
        const std::uint32_t nsets = d.u32();
        if (nsets != l1.sets_.size())
            throw ckpt::CorruptCheckpoint("L1 set count mismatch");
        for (auto &set : l1.sets_)
            decodeSet(d, set);
        l1.mshrs_.clear();
        const std::uint32_t nmshr = d.u32();
        for (std::uint32_t i = 0; i < nmshr; ++i) {
            const Addr addr = d.u64();
            L1Cache::Mshr &mshr = l1.mshrs_[addr];
            mshr.prefetch_only = d.boolean();
            mshr.requested_exclusive = d.boolean();
            const std::uint32_t nwait = d.u32();
            for (std::uint32_t w = 0; w < nwait; ++w) {
                L1Cache::Waiter waiter;
                waiter.is_write = d.boolean();
                waiter.tag = d.tagChain();
                waiter.done = doneFromTag(waiter.tag);
                mshr.waiters.push_back(std::move(waiter));
            }
        }
    };
    for (unsigned c = 0; c < sys_.config_.cores; ++c) {
        one(*sys_.l1i_[c]);
        one(*sys_.l1d_[c]);
    }
}

std::string
CheckpointCodec::saveL2()
{
    const L2Cache &l2 = *sys_.l2_;
    if (l2.functional_mode_) {
        throw ConfigError("config.ckpt",
                          "cannot checkpoint in functional mode");
    }
    ckpt::Encoder e;
    e.u32(static_cast<std::uint32_t>(l2.sets_.size()));
    for (const auto &set : l2.sets_)
        encodeSet(e, set);
    e.u32(static_cast<std::uint32_t>(l2.bank_free_.size()));
    for (Cycle c : l2.bank_free_)
        e.u64(c);
    const BandwidthResource &bw = l2.onchip_;
    e.dbl(bw.next_free_);
    e.u64(bw.total_bytes_);
    e.u64(bw.transfers_);
    e.dbl(bw.busy_);
    std::vector<Addr> keys;
    keys.reserve(l2.mshrs_.size());
    // analyze-ok: unordered-iter keys are sorted before encoding
    for (const auto &[addr, mshr] : l2.mshrs_)
        keys.push_back(addr);
    std::sort(keys.begin(), keys.end());
    e.u32(static_cast<std::uint32_t>(keys.size()));
    for (Addr addr : keys) {
        const auto &mshr = l2.mshrs_.at(addr);
        e.u64(addr);
        e.boolean(mshr.prefetch_only);
        e.u8(static_cast<std::uint8_t>(mshr.pf_source));
        e.u32(mshr.pf_cpu);
        e.u32(static_cast<std::uint32_t>(mshr.waiters.size()));
        for (const auto &w : mshr.waiters) {
            if (w.done != nullptr && w.tag == nullptr)
                untagged("L2 MSHR waiter");
            e.u32(w.cpu);
            e.boolean(w.exclusive);
            e.u8(static_cast<std::uint8_t>(w.type));
            e.tagChain(w.tag);
        }
    }
    e.u32(static_cast<std::uint32_t>(l2.pf_outstanding_.size()));
    for (unsigned v : l2.pf_outstanding_)
        e.u32(v);
    e.i64(l2.gcp_);
    e.u64(l2.l2pf_in_network_);
    e.u64(l2.l2pf_pending_at_reset_);
    return e.take();
}

void
CheckpointCodec::loadL2(ckpt::Decoder &d)
{
    L2Cache &l2 = *sys_.l2_;
    const std::uint32_t nsets = d.u32();
    if (nsets != l2.sets_.size())
        throw ckpt::CorruptCheckpoint("L2 set count mismatch");
    for (auto &set : l2.sets_)
        decodeSet(d, set);
    const std::uint32_t nbanks = d.u32();
    if (nbanks != l2.bank_free_.size())
        throw ckpt::CorruptCheckpoint("L2 bank count mismatch");
    for (auto &c : l2.bank_free_)
        c = d.u64();
    BandwidthResource &bw = l2.onchip_;
    bw.next_free_ = d.dbl();
    bw.total_bytes_ = d.u64();
    bw.transfers_ = d.u64();
    bw.busy_ = d.dbl();
    l2.mshrs_.clear();
    const std::uint32_t nmshr = d.u32();
    for (std::uint32_t i = 0; i < nmshr; ++i) {
        const Addr addr = d.u64();
        L2Cache::Mshr &mshr = l2.mshrs_[addr];
        mshr.prefetch_only = d.boolean();
        mshr.pf_source = static_cast<PfSource>(d.u8());
        mshr.pf_cpu = d.u32();
        const std::uint32_t nwait = d.u32();
        for (std::uint32_t w = 0; w < nwait; ++w) {
            L2Cache::Waiter waiter;
            waiter.cpu = d.u32();
            waiter.exclusive = d.boolean();
            waiter.type = static_cast<ReqType>(d.u8());
            waiter.tag = d.tagChain();
            waiter.done = l2DoneFromTag(waiter.tag);
            mshr.waiters.push_back(std::move(waiter));
        }
    }
    const std::uint32_t npf = d.u32();
    if (npf != l2.pf_outstanding_.size())
        throw ckpt::CorruptCheckpoint("pf_outstanding size mismatch");
    for (auto &v : l2.pf_outstanding_)
        v = d.u32();
    l2.gcp_ = d.i64();
    l2.l2pf_in_network_ = d.u64();
    l2.l2pf_pending_at_reset_ = d.u64();
}

std::string
CheckpointCodec::saveLink()
{
    const PriorityLink &link = sys_.memory_->link();
    ckpt::Encoder e;
    for (const auto &q : link.queues_) {
        e.u32(static_cast<std::uint32_t>(q.size()));
        for (const auto &m : q) {
            if (m.deliver != nullptr && m.tag == nullptr)
                untagged("link message");
            e.u32(m.bytes);
            e.u64(m.ready);
            e.tagChain(m.tag);
        }
    }
    e.boolean(link.busy_);
    e.dbl(link.cursor_);
    e.u64(link.inflight_bytes_);
    e.u64(link.pending_at_reset_);
    // delivered_bytes_ backs the byte-conservation audit but is not a
    // registered stat, so the stats section does not carry it.
    e.u64(link.delivered_bytes_.value());
    return e.take();
}

void
CheckpointCodec::loadLink(ckpt::Decoder &d)
{
    PriorityLink &link = sys_.memory_->link();
    for (auto &q : link.queues_) {
        q.clear();
        const std::uint32_t n = d.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            PriorityLink::Message m;
            m.bytes = d.u32();
            m.ready = d.u64();
            m.tag = d.tagChain();
            m.deliver = doneFromTag(m.tag);
            q.push_back(std::move(m));
        }
    }
    link.busy_ = d.boolean();
    link.cursor_ = d.dbl();
    link.inflight_bytes_ = d.u64();
    link.pending_at_reset_ = d.u64();
    link.delivered_bytes_.reset();
    link.delivered_bytes_ += d.u64();
}

std::string
CheckpointCodec::saveDram()
{
    ckpt::Encoder e;
    const DramBackend *dram = sys_.memory_->dram();
    e.boolean(dram != nullptr);
    if (dram == nullptr)
        return e.take();
    auto request = [&e](const DramBackend::Request &r) {
        if (r.done != nullptr && r.tag == nullptr)
            untagged("DRAM request");
        e.u64(r.line);
        e.u64(r.row);
        e.u32(r.bank);
        e.u32(r.beats);
        e.boolean(r.prefetch);
        e.u64(r.ready);
        e.u64(r.seq);
        e.tagChain(r.tag);
    };
    e.u32(static_cast<std::uint32_t>(dram->channels_.size()));
    for (const auto &ch : dram->channels_) {
        e.u32(static_cast<std::uint32_t>(ch.banks.size()));
        for (const auto &b : ch.banks) {
            e.boolean(b.row_open);
            e.u64(b.open_row);
            e.u64(b.ready);
            e.u64(b.activated);
            e.u64(b.pending);
        }
        e.u32(static_cast<std::uint32_t>(ch.reads.size()));
        for (const auto &r : ch.reads)
            request(r);
        e.u32(static_cast<std::uint32_t>(ch.writes.size()));
        for (const auto &r : ch.writes)
            request(r);
        e.boolean(ch.busy);
        e.boolean(ch.draining);
        e.u64(ch.next_refresh);
    }
    e.u64(dram->next_seq_);
    e.u64(dram->inflight_reads_);
    e.u64(dram->inflight_writes_);
    e.u64(dram->conserv_reads_in_);
    e.u64(dram->conserv_reads_out_);
    e.u64(dram->conserv_writes_in_);
    e.u64(dram->conserv_writes_out_);
    return e.take();
}

void
CheckpointCodec::loadDram(ckpt::Decoder &d)
{
    const bool armed = d.boolean();
    DramBackend *dram = sys_.memory_->dram();
    if (armed != (dram != nullptr)) {
        throw ckpt::CorruptCheckpoint(
            "DRAM backend mismatch between checkpoint and config");
    }
    if (dram == nullptr)
        return;
    auto request = [this, &d]() {
        DramBackend::Request r;
        r.line = d.u64();
        r.row = d.u64();
        r.bank = d.u32();
        r.beats = d.u32();
        r.prefetch = d.boolean();
        r.ready = d.u64();
        r.seq = d.u64();
        r.tag = d.tagChain();
        r.done = doneFromTag(r.tag);
        return r;
    };
    const std::uint32_t nch = d.u32();
    if (nch != dram->channels_.size())
        throw ckpt::CorruptCheckpoint("DRAM channel count mismatch");
    for (auto &ch : dram->channels_) {
        const std::uint32_t nbanks = d.u32();
        if (nbanks != ch.banks.size())
            throw ckpt::CorruptCheckpoint("DRAM bank count mismatch");
        for (auto &b : ch.banks) {
            b.row_open = d.boolean();
            b.open_row = d.u64();
            b.ready = d.u64();
            b.activated = d.u64();
            b.pending = d.u64();
        }
        ch.reads.clear();
        const std::uint32_t nreads = d.u32();
        for (std::uint32_t i = 0; i < nreads; ++i)
            ch.reads.push_back(request());
        ch.writes.clear();
        const std::uint32_t nwrites = d.u32();
        for (std::uint32_t i = 0; i < nwrites; ++i)
            ch.writes.push_back(request());
        ch.busy = d.boolean();
        ch.draining = d.boolean();
        ch.next_refresh = d.u64();
    }
    dram->next_seq_ = d.u64();
    dram->inflight_reads_ = d.u64();
    dram->inflight_writes_ = d.u64();
    dram->conserv_reads_in_ = d.u64();
    dram->conserv_reads_out_ = d.u64();
    dram->conserv_writes_in_ = d.u64();
    dram->conserv_writes_out_ = d.u64();
}

std::string
CheckpointCodec::saveValues()
{
    const ValueStore &vs = *sys_.values_;
    std::vector<Addr> keys;
    keys.reserve(vs.lines_.size());
    // analyze-ok: unordered-iter keys are sorted before encoding
    for (const auto &[addr, entry] : vs.lines_)
        keys.push_back(addr);
    std::sort(keys.begin(), keys.end());
    ckpt::Encoder e;
    e.u64(keys.size());
    for (Addr addr : keys) {
        e.u64(addr);
        // Only the bytes: the segment-count memo is a deterministic
        // pure function of the data and recomputes identically, and
        // skipping it keeps save -> load -> save byte-stable.
        e.raw(vs.lines_.at(addr).data.data(), kLineBytes);
    }
    return e.take();
}

void
CheckpointCodec::loadValues(ckpt::Decoder &d)
{
    ValueStore &vs = *sys_.values_;
    vs.lines_.clear();
    vs.dropFilter(); // cached node pointers die with the cleared map
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = d.u64();
        ValueStore::Entry &entry = vs.lines_[addr];
        d.raw(entry.data.data(), kLineBytes);
        entry.segments_valid = false;
    }
}

std::string
CheckpointCodec::savePrefetch()
{
    ckpt::Encoder e;
    e.boolean(sys_.config_.prefetching);
    if (!sys_.config_.prefetching)
        return e.take();
    for (unsigned c = 0; c < sys_.config_.cores; ++c) {
        encodePrefetcher(e, *sys_.pf_l1i_[c]);
        encodePrefetcher(e, *sys_.pf_l1d_[c]);
        e.u32(sys_.ad_l1i_[c]->counter_.value_);
        e.u32(sys_.ad_l1d_[c]->counter_.value_);
    }
    e.u32(static_cast<std::uint32_t>(sys_.pf_l2_.size()));
    for (const auto &pf : sys_.pf_l2_)
        encodePrefetcher(e, *pf);
    e.u32(sys_.l2_adaptive_->counter_.value_);
    return e.take();
}

void
CheckpointCodec::loadPrefetch(ckpt::Decoder &d)
{
    const bool enabled = d.boolean();
    if (enabled != sys_.config_.prefetching) {
        throw ckpt::CorruptCheckpoint(
            "prefetching mismatch between checkpoint and config");
    }
    if (!enabled)
        return;
    for (unsigned c = 0; c < sys_.config_.cores; ++c) {
        decodePrefetcher(d, *sys_.pf_l1i_[c]);
        decodePrefetcher(d, *sys_.pf_l1d_[c]);
        sys_.ad_l1i_[c]->counter_.value_ = d.u32();
        sys_.ad_l1d_[c]->counter_.value_ = d.u32();
    }
    const std::uint32_t engines = d.u32();
    if (engines != sys_.pf_l2_.size())
        throw ckpt::CorruptCheckpoint("L2 prefetcher count mismatch");
    for (auto &pf : sys_.pf_l2_)
        decodePrefetcher(d, *pf);
    sys_.l2_adaptive_->counter_.value_ = d.u32();
}

std::string
CheckpointCodec::saveWorkload()
{
    ckpt::Encoder e;
    e.u32(static_cast<std::uint32_t>(sys_.streams_.size()));
    for (const auto &wp : sys_.streams_) {
        const SyntheticWorkload &w = *wp;
        for (std::uint64_t word : w.rng_.state_)
            e.u64(word);
        e.u64(w.pc_);
        e.u64(w.repeat_line_);
        e.u32(w.repeat_left_);
        e.boolean(w.last_was_loop_);
        e.u32(static_cast<std::uint32_t>(w.streams_.size()));
        for (const auto &st : w.streams_) {
            e.u64(st.cur);
            e.i64(st.stride);
            e.u64(st.remaining);
        }
        e.u32(static_cast<std::uint32_t>(w.recent_bases_.size()));
        for (Addr base : w.recent_bases_)
            e.u64(base);
        // Loop layout (base, shuffled order, cum_weight) is a pure
        // function of (params, seed) and replays in the constructor;
        // only the walk cursor is state.
        e.u32(static_cast<std::uint32_t>(w.loops_.size()));
        for (const auto &loop : w.loops_) {
            e.u64(loop.pos);
            e.u32(loop.on_record);
        }
    }
    return e.take();
}

void
CheckpointCodec::loadWorkload(ckpt::Decoder &d)
{
    const std::uint32_t n = d.u32();
    if (n != sys_.streams_.size())
        throw ckpt::CorruptCheckpoint("workload stream count mismatch");
    for (auto &wp : sys_.streams_) {
        SyntheticWorkload &w = *wp;
        for (std::uint64_t &word : w.rng_.state_)
            word = d.u64();
        w.pc_ = d.u64();
        w.repeat_line_ = d.u64();
        w.repeat_left_ = d.u32();
        w.last_was_loop_ = d.boolean();
        const std::uint32_t nstreams = d.u32();
        if (nstreams != w.streams_.size())
            throw ckpt::CorruptCheckpoint("stride-stream count mismatch");
        for (auto &st : w.streams_) {
            st.cur = d.u64();
            st.stride = static_cast<int>(d.i64());
            st.remaining = d.u64();
        }
        w.recent_bases_.clear();
        const std::uint32_t nbases = d.u32();
        for (std::uint32_t i = 0; i < nbases; ++i)
            w.recent_bases_.push_back(d.u64());
        const std::uint32_t nloops = d.u32();
        if (nloops != w.loops_.size())
            throw ckpt::CorruptCheckpoint("loop count mismatch");
        for (auto &loop : w.loops_) {
            loop.pos = d.u64();
            loop.on_record = d.u32();
        }
    }
}

namespace {

/** StatSnapshot as sorted (name, value) lists — std::map iteration is
 *  ordered, so the bytes are canonical for the roundtrip audit. */
void
encodeSnapshot(ckpt::Encoder &e, const StatSnapshot &s)
{
    e.u64(s.counters.size());
    for (const auto &[name, v] : s.counters) {
        e.str(name);
        e.u64(v);
    }
    e.u64(s.averages.size());
    for (const auto &[name, a] : s.averages) {
        e.str(name);
        e.dbl(a.sum);
        e.u64(a.count);
    }
}

void
decodeSnapshot(ckpt::Decoder &d, StatSnapshot &s)
{
    s.counters.clear();
    s.averages.clear();
    const std::uint64_t ncounters = d.u64();
    for (std::uint64_t i = 0; i < ncounters; ++i) {
        const std::string name = d.str();
        s.counters[name] = d.u64();
    }
    const std::uint64_t naverages = d.u64();
    for (std::uint64_t i = 0; i < naverages; ++i) {
        const std::string name = d.str();
        StatSnapshot::Avg &a = s.averages[name];
        a.sum = d.dbl();
        a.count = d.u64();
    }
}

} // namespace

std::string
CheckpointCodec::saveSample()
{
    // Sampling-plan progress (DESIGN.md §14): the interval cursor,
    // the open interval's baseline snapshot, accumulated detail
    // deltas and per-interval metric samples. The FastForwardEngine's
    // own counters ride in the stats section; its conservation
    // accumulators deliberately restart at zero after restore (both
    // sides restart together, so the audit stays exact).
    ckpt::Encoder e;
    const SampleState &ss = sys_.sample_state_;
    e.u32(ss.intervals_done);
    e.boolean(ss.in_detail);
    e.boolean(ss.stopped_early);
    e.u64(ss.ff_instructions);
    encodeSnapshot(e, ss.baseline);
    encodeSnapshot(e, ss.detail_totals);
    e.u64(ss.samples.size());
    for (const IntervalSample &s : ss.samples) {
        e.dbl(s.cycles);
        e.dbl(s.instructions);
        e.dbl(s.ipc);
        e.dbl(s.l2_miss_rate);
        e.dbl(s.l2_mpki);
        e.dbl(s.bandwidth_gbps);
        e.dbl(s.compression_ratio);
    }
    return e.take();
}

void
CheckpointCodec::loadSample(ckpt::Decoder &d)
{
    SampleState &ss = sys_.sample_state_;
    ss.intervals_done = d.u32();
    ss.in_detail = d.boolean();
    ss.stopped_early = d.boolean();
    ss.ff_instructions = d.u64();
    decodeSnapshot(d, ss.baseline);
    decodeSnapshot(d, ss.detail_totals);
    ss.samples.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        IntervalSample s;
        s.cycles = d.dbl();
        s.instructions = d.dbl();
        s.ipc = d.dbl();
        s.l2_miss_rate = d.dbl();
        s.l2_mpki = d.dbl();
        s.bandwidth_gbps = d.dbl();
        s.compression_ratio = d.dbl();
        ss.samples.push_back(s);
    }
}

// ---------------------------------------------------------------
// Container
// ---------------------------------------------------------------

std::string
CheckpointCodec::save()
{
    std::vector<ckpt::Section> sections;
    sections.push_back({"system", saveSystem()});
    sections.push_back({"stats", saveStats()});
    sections.push_back({"values", saveValues()});
    sections.push_back({"workload", saveWorkload()});
    sections.push_back({"cores", saveCores()});
    sections.push_back({"l1", saveL1s()});
    sections.push_back({"l2", saveL2()});
    sections.push_back({"link", saveLink()});
    sections.push_back({"dram", saveDram()});
    sections.push_back({"prefetch", savePrefetch()});
    sections.push_back({"events", saveEvents()});
    // Conditional 12th section: present only when a sampling plan is
    // armed, so unsampled checkpoints stay byte-identical to the
    // pre-sampling format.
    if (sys_.config_.sampling.armed())
        sections.push_back({"sample", saveSample()});
    return ckpt::packFile(
        checkpointFingerprint(sys_.config_, sys_.workload_), sections);
}

void
CheckpointCodec::restore(std::string_view bytes)
{
    const ckpt::ParsedFile file = ckpt::parseFile(bytes);
    const std::uint64_t want =
        checkpointFingerprint(sys_.config_, sys_.workload_);
    if (file.fingerprint != want) {
        throw ConfigError(
            "config.restore",
            "checkpoint fingerprint " + hex16(file.fingerprint) +
                " does not match this run's " + hex16(want) +
                " (different config, seed or workload)");
    }
    std::set<std::string> seen;
    for (const ckpt::Section &s : file.sections) {
        if (!seen.insert(s.name).second) {
            throw ckpt::CorruptCheckpoint("duplicate section " +
                                          s.name);
        }
        ckpt::Decoder d(s.payload);
        if (s.name == "system")
            loadSystem(d);
        else if (s.name == "stats")
            loadStats(d);
        else if (s.name == "values")
            loadValues(d);
        else if (s.name == "workload")
            loadWorkload(d);
        else if (s.name == "cores")
            loadCores(d);
        else if (s.name == "l1")
            loadL1s(d);
        else if (s.name == "l2")
            loadL2(d);
        else if (s.name == "link")
            loadLink(d);
        else if (s.name == "dram")
            loadDram(d);
        else if (s.name == "prefetch")
            loadPrefetch(d);
        else if (s.name == "events")
            loadEvents(d);
        else if (s.name == "sample" && sys_.config_.sampling.armed())
            loadSample(d);
        else
            throw ckpt::CorruptCheckpoint("unknown section " + s.name);
        d.expectEnd(s.name.c_str());
    }
    static const char *const required[] = {
        "system", "stats", "values", "workload", "cores", "l1",
        "l2",     "link",  "dram",   "prefetch", "events"};
    for (const char *name : required) {
        if (seen.count(name) == 0) {
            throw ckpt::CorruptCheckpoint(
                std::string("missing section ") + name);
        }
    }
    // The sample section is required exactly when the restoring
    // config has an armed plan (the fingerprint already guarantees
    // the saving config agreed).
    if (sys_.config_.sampling.armed() && seen.count("sample") == 0) {
        throw ckpt::CorruptCheckpoint(
            "missing section sample (sampling plan is armed)");
    }
}

} // namespace cmpsim
