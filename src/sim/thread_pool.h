/**
 * @file
 * Fixed-size worker pool for fanning out independent simulations.
 *
 * Two users: the experiment layer fans independent (config, workload,
 * seed) points out as one task each, and the sharded event kernel
 * (src/sim/lane.h) parks one long-lived lane-worker task per extra
 * lane on a dedicated pool. A plain FIFO queue is enough for both —
 * experiment tasks are seconds-long simulations and lane workers
 * never return until teardown, so queue contention is irrelevant and
 * work stealing would buy nothing.
 */

#ifndef CMPSIM_SIM_THREAD_POOL_H
#define CMPSIM_SIM_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cmpsim {

/**
 * Fixed worker pool with FIFO dispatch.
 *
 * submit() enqueues a task; wait() blocks until every submitted task
 * has finished. Task exceptions are collected, not dropped: one
 * failure is rethrown as-is, several are folded into a SimError
 * carrying the failure count and the first error's message. The
 * destructor drains outstanding work and joins the workers.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads worker count; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task. Must not be called concurrently with wait(). */
    void submit(Task task);

    /** Block until all submitted tasks finished. One task exception
     *  since the last wait() is rethrown as-is; several become one
     *  SimError reporting the count and the first message. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::deque<Task> queue_;
    std::size_t in_flight_ = 0; ///< queued + currently executing
    std::vector<std::exception_ptr> errors_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace cmpsim

#endif // CMPSIM_SIM_THREAD_POOL_H
