#include "src/sim/thread_pool.h"

#include <string>
#include <utility>

#include "src/common/sim_error.h"

namespace cmpsim {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads == 0 ? 1 : threads;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (errors_.empty())
        return;
    std::vector<std::exception_ptr> errors = std::move(errors_);
    errors_.clear();
    lock.unlock();

    if (errors.size() == 1)
        std::rethrow_exception(errors.front());

    // Several tasks failed: surface the count plus the first message
    // so the caller sees the batch is poisoned, not just one symptom.
    std::string first = "unknown error";
    try {
        std::rethrow_exception(errors.front());
    } catch (const std::exception &e) {
        first = e.what();
    } catch (...) {
    }
    throw SimError(ErrorKind::Internal, "thread_pool",
                   std::to_string(errors.size()) +
                       " tasks failed; first: " + first);
}

void
ThreadPool::workerLoop()
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            errors_.push_back(std::current_exception());
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace cmpsim
