#include "src/sim/fault_injection.h"

#include <chrono>
#include <cstdlib>

#include "src/common/log.h"
#include "src/common/sim_error.h"

namespace cmpsim {

namespace detail {

/** Per-thread armed state: the plan plus this attempt's hit counts. */
struct ArmedFaults
{
    const FaultPlan *plan = nullptr;
    unsigned attempt = 1;
    std::size_t point = kFaultAnyPoint;
    unsigned seed = kFaultAnySeed;
    std::vector<std::uint64_t> hits; ///< parallel to plan->specs()
    bool stall_latched = false;
};

// analyze-ok: shared-state fault arming is per-worker by design: each harness thread arms its own plan, so thread_local is the isolation, not a leak (DESIGN.md section 8)
thread_local ArmedFaults *tl_armed = nullptr;
// analyze-ok: shared-state per-worker watchdog flag, armed and read only by the owning harness thread
thread_local bool tl_has_deadline = false;

namespace {

// analyze-ok: shared-state per-worker arming storage backing tl_armed; never shared across threads
thread_local ArmedFaults tl_armed_storage;
// analyze-ok: shared-state per-worker watchdog deadline; wall-clock is confined to the containment layer and never reaches simulated state
thread_local std::chrono::steady_clock::time_point tl_deadline;

/** Does @p spec apply to the armed task at all? */
bool
applies(const FaultSpec &spec, const ArmedFaults &armed,
        const char *site)
{
    if (spec.site != site)
        return false;
    if (armed.attempt > spec.fail_attempts)
        return false;
    if (spec.point != kFaultAnyPoint && spec.point != armed.point)
        return false;
    if (spec.seed != kFaultAnySeed && spec.seed != armed.seed)
        return false;
    return true;
}

} // namespace

void
faultSiteSlow(const char *site)
{
    ArmedFaults &armed = *tl_armed;
    const auto &specs = armed.plan->specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const FaultSpec &spec = specs[i];
        if (spec.kind != FaultKind::Throw || spec.site != site)
            continue;
        // Hits are counted whenever the site matches so "the nth
        // occurrence" is a property of the simulation, not of the
        // attempt/point selectors.
        const std::uint64_t hit = ++armed.hits[i];
        if (hit == spec.nth && applies(spec, armed, site))
            throw InjectedFault(site, spec.nth, armed.attempt);
    }
}

bool
faultStallSlow(const char *site)
{
    ArmedFaults &armed = *tl_armed;
    if (!armed.stall_latched) {
        const auto &specs = armed.plan->specs();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const FaultSpec &spec = specs[i];
            if (spec.kind != FaultKind::Stall || spec.site != site)
                continue;
            const std::uint64_t hit = ++armed.hits[i];
            if (hit >= spec.nth && applies(spec, armed, site))
                armed.stall_latched = true;
        }
    }
    return armed.stall_latched;
}

void
checkPointDeadlineSlow(const char *where)
{
    if (std::chrono::steady_clock::now() < tl_deadline)
        return;
    tl_has_deadline = false; // throw once, not on every unwind probe
    throw WatchdogTimeout(where,
                          "wall-clock point deadline exceeded "
                          "(CMPSIM_POINT_TIMEOUT)");
}

} // namespace detail

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        // Split on ':'.
        std::vector<std::string> fields;
        std::size_t p = 0;
        while (true) {
            const std::size_t colon = entry.find(':', p);
            if (colon == std::string::npos) {
                fields.push_back(entry.substr(p));
                break;
            }
            fields.push_back(entry.substr(p, colon - p));
            p = colon + 1;
        }
        if (fields.size() < 2 || fields[0].empty()) {
            throw ConfigError("fault.spec",
                              "expected site:nth[...], got \"" + entry +
                                  "\"");
        }

        auto parseUint = [&entry](const std::string &s,
                                  const char *what) -> std::uint64_t {
            char *end = nullptr;
            const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
            if (end == s.c_str() || *end != '\0') {
                throw ConfigError("fault.spec",
                                  std::string("bad ") + what + " \"" + s +
                                      "\" in \"" + entry + "\"");
            }
            return v;
        };

        FaultSpec fault;
        fault.site = fields[0];
        fault.nth = parseUint(fields[1], "occurrence");
        if (fault.nth == 0) {
            throw ConfigError("fault.spec",
                              "occurrence must be >= 1 in \"" + entry +
                                  "\"");
        }
        for (std::size_t f = 2; f < fields.size(); ++f) {
            const std::string &field = fields[f];
            if (field.empty())
                continue;
            if (field == "all") {
                fault.fail_attempts = kFaultAllAttempts;
            } else if (field == "throw") {
                fault.kind = FaultKind::Throw;
            } else if (field == "stall") {
                fault.kind = FaultKind::Stall;
            } else if (field[0] == 'p' && field.size() > 1) {
                fault.point = static_cast<std::size_t>(
                    parseUint(field.substr(1), "point selector"));
            } else if (field[0] == 's' && field.size() > 1) {
                fault.seed = static_cast<unsigned>(
                    parseUint(field.substr(1), "seed selector"));
            } else if (field[0] >= '0' && field[0] <= '9') {
                const std::uint64_t n =
                    parseUint(field, "attempt count");
                if (n == 0) {
                    throw ConfigError("fault.spec",
                                      "attempt count must be >= 1 in \"" +
                                          entry + "\"");
                }
                fault.fail_attempts = static_cast<unsigned>(n);
            } else {
                throw ConfigError("fault.spec",
                                  "unknown field \"" + field + "\" in \"" +
                                      entry + "\"");
            }
        }
        plan.specs_.push_back(std::move(fault));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("CMPSIM_FAULT");
    if (env == nullptr || *env == '\0')
        return FaultPlan{};
    return parse(env);
}

FaultArmGuard::FaultArmGuard(const FaultPlan &plan, unsigned attempt,
                             std::size_t point, unsigned seed)
{
    cmpsim_assert(detail::tl_armed == nullptr,
                  "nested fault arming on one thread");
    if (plan.empty())
        return;
    detail::ArmedFaults &armed = detail::tl_armed_storage;
    armed.plan = &plan;
    armed.attempt = attempt;
    armed.point = point;
    armed.seed = seed;
    armed.hits.assign(plan.specs().size(), 0);
    armed.stall_latched = false;
    detail::tl_armed = &armed;
}

FaultArmGuard::~FaultArmGuard()
{
    detail::tl_armed = nullptr;
}

DeadlineGuard::DeadlineGuard(double seconds)
{
    if (seconds <= 0.0)
        return;
    detail::tl_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    detail::tl_has_deadline = true;
}

DeadlineGuard::~DeadlineGuard()
{
    detail::tl_has_deadline = false;
}

} // namespace cmpsim
