/**
 * @file
 * FIFO-serialized shared bandwidth channel.
 *
 * Models a resource (off-chip pin interface, on-chip crossbar) with a
 * fixed bytes/cycle rate: each transfer occupies the channel for
 * size/rate cycles, and transfers queue behind one another. This is
 * the mechanism through which prefetching-induced contention degrades
 * performance in the paper, and through which link compression buys it
 * back.
 *
 * An "infinite" mode removes queuing (transfers still take their own
 * serialization time) and is used to measure *bandwidth demand* as the
 * paper defines it: utilization on a system with infinite pin
 * bandwidth (Section 4.2).
 */

#ifndef CMPSIM_SIM_BANDWIDTH_RESOURCE_H
#define CMPSIM_SIM_BANDWIDTH_RESOURCE_H

#include <string>

#include "src/common/log.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace cmpsim {

/** A shared channel with a byte/cycle rate and FIFO queuing. */
class BandwidthResource
{
  public:
    /**
     * @param bytes_per_cycle channel rate; at the paper's 5 GHz clock,
     *        20 GB/s pins = 4 bytes/cycle.
     * @param infinite when true, transfers never queue.
     */
    BandwidthResource(double bytes_per_cycle, bool infinite = false)
        : rate_(bytes_per_cycle), infinite_(infinite)
    {
        cmpsim_assert(bytes_per_cycle > 0);
    }

    /**
     * Reserve a transfer of @p bytes that is ready to start at
     * @p earliest. @return the cycle at which the last byte arrives.
     */
    Cycle
    reserve(Cycle earliest, unsigned bytes)
    {
        const double duration = static_cast<double>(bytes) / rate_;
        total_bytes_ += bytes;
        ++transfers_;

        double start = static_cast<double>(earliest);
        if (!infinite_ && next_free_ > start)
            start = next_free_;

        queue_delay_.sample(start - static_cast<double>(earliest));

        const double end = start + duration;
        if (!infinite_)
            next_free_ = end;
        busy_ += duration;

        // The message is usable when its last byte lands.
        auto end_cycle = static_cast<Cycle>(end);
        if (static_cast<double>(end_cycle) < end)
            ++end_cycle;
        return end_cycle;
    }

    /** Total bytes ever transferred (the bandwidth-demand numerator). */
    std::uint64_t totalBytes() const { return total_bytes_; }

    std::uint64_t transfers() const { return transfers_; }

    /** Channel-busy cycles (for utilization). */
    double busyCycles() const { return busy_; }

    /** Mean cycles a transfer waited behind earlier traffic. */
    double meanQueueDelay() const { return queue_delay_.mean(); }

    double rate() const { return rate_; }
    bool infinite() const { return infinite_; }

    /** Register stats under @p prefix. */
    void
    registerStats(StatRegistry &reg, const std::string &prefix)
    {
        reg.registerAverage(prefix + ".queue_delay", &queue_delay_);
    }

    /** Clear accounting (start of measurement interval). */
    void
    resetStats()
    {
        total_bytes_ = 0;
        transfers_ = 0;
        busy_ = 0;
        queue_delay_.reset();
    }

  private:
    friend class CheckpointCodec; // serializes channel occupancy

    double rate_;
    bool infinite_;
    double next_free_ = 0.0;
    std::uint64_t total_bytes_ = 0;
    std::uint64_t transfers_ = 0;
    double busy_ = 0.0;
    Average queue_delay_;
};

} // namespace cmpsim

#endif // CMPSIM_SIM_BANDWIDTH_RESOURCE_H
