/**
 * @file
 * Sharded event kernel: lane mailboxes and the lane worker crew
 * (DESIGN.md §12).
 *
 * The kernel partitions cores (with their private L1s, prefetchers and
 * instruction streams) into lanes that tick concurrently inside each
 * time quantum. Everything a lane would emit into shared state — event
 * scheduling (which consumes the global (when, seq) counter), L2
 * requests (which reserve bank/bandwidth resources synchronously) and
 * value-store writes — is instead *deferred* into the lane's mailbox
 * and replayed by the coordinator at the barrier, in lane order.
 * Lanes own contiguous core blocks, so lane order == core order ==
 * exactly the order the single-threaded kernel would have produced:
 * results are byte-identical at any lane count.
 *
 * The mailbox also carries the lane's first-touch overlay: the set of
 * value-store lines this lane created (or will create at flush) this
 * quantum, so a second touch within the lane sees the line as present
 * exactly like the sequential kernel would. A cross-lane same-cycle
 * first touch is the one sequential behaviour the overlay cannot
 * reproduce (the later core's RNG draws a value the sequential kernel
 * would not have drawn); flush detects it (the line already exists at
 * apply time), counts it, and the lane.value_overlay audit requires
 * the count to be zero.
 */

#ifndef CMPSIM_SIM_LANE_H
#define CMPSIM_SIM_LANE_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/sim/thread_pool.h"

namespace cmpsim {

/**
 * One lane's deferred-emission log plus its first-touch overlay.
 * defer()/noteCreated() are called only by the lane's own thread
 * during the parallel tick phase; flush() only by the coordinator at
 * the barrier (the crew's condvar hand-off orders the two).
 */
class LaneMailbox
{
  public:
    using Op = std::function<void()>;

    /** Queue @p op for canonical-order replay at the barrier. */
    void
    defer(Op op)
    {
        ops_.push_back(std::move(op));
        ++ops_enqueued_;
    }

    /** Record that this lane creates value-store @p line this quantum. */
    void noteCreated(Addr line) { created_.insert(line); }

    /** True when this lane already created @p line this quantum. */
    bool
    createdThisQuantum(Addr line) const
    {
        return created_.count(line) != 0;
    }

    /** Cross-lane same-cycle first-touch detected at flush time. */
    void noteCollision() { ++collisions_; }

    /**
     * Replay every deferred op in append order (== this lane's core
     * execution order), then clear the log and the overlay. Runs on
     * the coordinator with no lane context armed, so replayed ops hit
     * the real queues/stores directly.
     */
    void
    flush()
    {
        // Index loop, and move the op out before running it: a
        // replayed op may defer again (an L2 request path that
        // re-enters a deferral site), growing — and possibly
        // reallocating — ops_ mid-flush.
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            Op op = std::move(ops_[i]);
            op();
            ++ops_drained_;
        }
        ops_.clear();
        created_.clear();
    }

    std::size_t pendingOps() const { return ops_.size(); }
    std::uint64_t opsEnqueued() const { return ops_enqueued_.value(); }
    std::uint64_t opsDrained() const { return ops_drained_.value(); }
    std::uint64_t collisions() const { return collisions_.value(); }

    void
    registerStats(StatRegistry &reg, const std::string &prefix)
    {
        reg.registerCounter(prefix + ".mailbox_ops", &ops_enqueued_);
        reg.registerCounter(prefix + ".mailbox_drained", &ops_drained_);
        reg.registerCounter(prefix + ".value_collisions", &collisions_);
    }

  private:
    std::vector<Op> ops_;
    std::unordered_set<Addr> created_; ///< lines created this quantum
    Counter ops_enqueued_;
    Counter ops_drained_;
    Counter collisions_;
};

/**
 * The mailbox the calling thread defers emissions into, or nullptr
 * outside a parallel lane tick. Component code (L1 hit path, core
 * store path, workload first touch) checks this at each shared-state
 * emission site and defers when a lane context is armed.
 */
LaneMailbox *laneContext();

/** Arms/clears the calling thread's lane context (RAII). */
class LaneContextGuard
{
  public:
    explicit LaneContextGuard(LaneMailbox *lane);
    ~LaneContextGuard();

    LaneContextGuard(const LaneContextGuard &) = delete;
    LaneContextGuard &operator=(const LaneContextGuard &) = delete;

  private:
    LaneMailbox *prev_;
};

/**
 * Lane worker crew: L-1 long-lived tasks on a ThreadPool plus the
 * coordinator (which ticks lane 0 inline). runQuantum() releases every
 * lane at one cycle, waits at the barrier, and rethrows the first
 * worker exception; flushAll() then replays the mailboxes in lane
 * order.
 */
class LaneCrew
{
  public:
    using Work = std::function<void(Cycle)>;

    /** @param pool must have at least @p lanes - 1 worker threads;
     *  the crew parks one long-lived task per non-zero lane on it. */
    LaneCrew(ThreadPool &pool, unsigned lanes);
    ~LaneCrew();

    LaneCrew(const LaneCrew &) = delete;
    LaneCrew &operator=(const LaneCrew &) = delete;

    unsigned
    lanes() const
    {
        return static_cast<unsigned>(mailboxes_.size());
    }

    LaneMailbox &mailbox(unsigned lane) { return *mailboxes_[lane]; }

    /** Set lane @p lane's per-quantum work (tick its due cores). Must
     *  be called for every lane before the first runQuantum(). */
    void setWork(unsigned lane, Work work);

    /**
     * Run one quantum at cycle @p now: every lane's work runs with its
     * mailbox armed as the thread's lane context — lane 0 on the
     * calling thread, the rest on the pool workers. Returns after all
     * lanes finished (the conservative barrier); a worker exception is
     * rethrown here on the coordinator.
     */
    void runQuantum(Cycle now);

    /** Replay every lane's mailbox in lane order (canonical global
     *  core order — lanes own contiguous core blocks). */
    void flushAll();

    void registerStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t quantaRun() const { return quanta_.value(); }
    std::uint64_t barrierStalls() const { return barrier_stalls_.value(); }

  private:
    void workerLoop(unsigned lane);

    std::vector<std::unique_ptr<LaneMailbox>> mailboxes_;
    std::vector<Work> work_;
    std::vector<std::exception_ptr> errors_;
    unsigned workers_ = 0;

    std::mutex mutex_;
    std::condition_variable start_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    Cycle quantum_now_ = 0;
    unsigned done_count_ = 0;
    bool stop_ = false;

    Counter quanta_;
    Counter barrier_stalls_;
};

} // namespace cmpsim

#endif // CMPSIM_SIM_LANE_H
