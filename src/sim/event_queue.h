/**
 * @file
 * Discrete-event simulation kernel: a time-ordered queue of callbacks.
 *
 * All timing components (caches, link, memory controller) schedule
 * continuations on one shared EventQueue; the Simulator interleaves
 * event execution with core-model ticks. Events at the same cycle run
 * in scheduling order (stable), which keeps runs bit-reproducible.
 */

#ifndef CMPSIM_SIM_EVENT_QUEUE_H
#define CMPSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/log.h"
#include "src/common/types.h"

namespace cmpsim {

/** Time-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /** Schedule @p cb at @p when. @pre when >= now(). */
    void
    schedule(Cycle when, Callback cb)
    {
        cmpsim_assert(when >= now_,
                      "schedule into the past: when=%llu now=%llu",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_));
        heap_.push(Event{when, next_seq_++, std::move(cb)});
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Cycle of the earliest pending event (kCycleNever if none). */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? kCycleNever : heap_.top().when;
    }

    /**
     * Advance now() to @p when and run every event scheduled at or
     * before it, in time order. @pre when >= now().
     */
    void
    advanceTo(Cycle when)
    {
        cmpsim_assert(when >= now_,
                      "advanceTo into the past: when=%llu now=%llu",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_));
        while (!heap_.empty() && heap_.top().when <= when) {
            // Pop before running: the callback may schedule more events.
            // Move rather than copy: the Event owns a std::function
            // whose copy allocates. The moved-from element is popped
            // immediately, so the heap never observes it.
            Event ev = std::move(const_cast<Event &>(heap_.top()));
            heap_.pop();
            now_ = ev.when;
            ev.cb();
        }
        now_ = when;
    }

    /**
     * Run events until the queue drains or @p limit cycles elapse.
     * Used by unit tests and by components driven without cores.
     * @return number of events executed.
     */
    std::uint64_t
    drain(Cycle limit = kCycleNever)
    {
        std::uint64_t executed = 0;
        while (!heap_.empty() && heap_.top().when <= limit) {
            Event ev = std::move(const_cast<Event &>(heap_.top()));
            heap_.pop();
            now_ = ev.when;
            ev.cb();
            ++executed;
        }
        return executed;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_SIM_EVENT_QUEUE_H
