/**
 * @file
 * Discrete-event simulation kernel: a time-ordered queue of callbacks.
 *
 * All timing components (caches, link, memory controller) schedule
 * continuations on one shared EventQueue; the Simulator interleaves
 * event execution with core-model ticks. Events at the same cycle run
 * in scheduling order (stable), which keeps runs bit-reproducible.
 *
 * Implementation notes (hot path — this queue executes every timed
 * cache/link/memory transaction in the simulator):
 *
 *  - The pending set is an intrusive binary min-heap over a
 *    std::vector<Event>, ordered by (when, seq). Unlike
 *    std::priority_queue, popping *moves* the Event (and its
 *    heap-allocated std::function) out of the root, and the sift-down
 *    uses moves throughout — no callback is ever copied.
 *
 *  - Same-cycle fast path: while an event at cycle T executes,
 *    continuations it schedules back at cycle T are appended to a
 *    plain FIFO and run without touching the heap at all. This is
 *    order-exact: once now() has reached T every event already in the
 *    heap at T carries a smaller seq than any newly scheduled one, so
 *    "drain heap entries at T, then the FIFO in append order" is
 *    precisely the global (when, seq) order.
 */

#ifndef CMPSIM_SIM_EVENT_QUEUE_H
#define CMPSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/ckpt/cont_tag.h"
#include "src/common/log.h"
#include "src/common/types.h"
#include "src/obs/profiler.h"

namespace cmpsim {

/** Time-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Exact (when, seq) identity of a pending event. When several
     * queues share one sequence source (setSequenceSource), these keys
     * form a single global total order across all of them — the
     * sharded kernel's merged drain compares keys to replay exactly
     * the order a single queue would have produced.
     */
    struct EventKey
    {
        Cycle when = 0;
        std::uint64_t seq = 0;

        bool
        before(const EventKey &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /** Current simulated cycle. */
    Cycle now() const { return now_; }

    /**
     * Pre-size the pending-event storage for @p events outstanding
     * events so the heap never reallocates mid-run (the caller bounds
     * in-flight continuations, e.g. cores x ROB entries).
     */
    void
    reserve(std::size_t events)
    {
        heap_.reserve(events);
        same_cycle_.reserve(events);
    }

    /**
     * Draw sequence numbers from @p seq instead of the queue's own
     * counter. The sharded kernel points every lane queue and the
     * uncore queue at one shared counter, so (when, seq) stays a
     * total order across queues. All scheduling must happen on one
     * thread (the coordinator) — the counter is not atomic, by
     * design: parallel lane ticks defer emissions into mailboxes
     * precisely so that seq assignment stays deterministic.
     */
    void setSequenceSource(std::uint64_t *seq) { seq_src_ = seq; }

    /**
     * Schedule @p cb at @p when. @pre when >= now(). The optional
     * @p tag is the callback's serializable description for
     * checkpointing (src/ckpt/cont_tag.h); it is empty except when a
     * checkpoint knob armed tagging, and never affects execution.
     */
    void
    schedule(Cycle when, Callback cb, ckpt::Tag tag = {})
    {
        cmpsim_assert(when >= now_,
                      "schedule into the past: when=%llu now=%llu",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_));
        if (when == now_) {
            // Same-cycle continuation: newest seq by construction, so
            // FIFO append order is (when, seq) order.
            same_cycle_.push_back(
                Event{when, (*seq_src_)++, std::move(cb), std::move(tag)});
            return;
        }
        heap_.push_back(
            Event{when, (*seq_src_)++, std::move(cb), std::move(tag)});
        siftUp(heap_.size() - 1);
    }

    bool
    empty() const
    {
        return heap_.empty() && same_head_ == same_cycle_.size();
    }

    std::size_t
    size() const
    {
        return heap_.size() + (same_cycle_.size() - same_head_);
    }

    /** Cycle of the earliest pending event (kCycleNever if none). */
    Cycle
    nextEventCycle() const
    {
        if (same_head_ < same_cycle_.size())
            return now_;
        return heap_.empty() ? kCycleNever : heap_.front().when;
    }

    /**
     * Exact key of the earliest pending event. @return false when the
     * queue is empty. Unlike nextEventCycle() this compares the heap
     * front against the FIFO head by full (when, seq) — during a
     * merged drain another queue's event may have scheduled into this
     * queue's heap *at* the current cycle, with a seq younger than the
     * FIFO's entries.
     */
    bool
    nextKey(EventKey &out) const
    {
        const bool fifo = same_head_ < same_cycle_.size();
        if (!fifo && heap_.empty())
            return false;
        if (fifo && (heap_.empty() ||
                     same_cycle_[same_head_].before(heap_.front()))) {
            out = EventKey{same_cycle_[same_head_].when,
                           same_cycle_[same_head_].seq};
        } else {
            out = EventKey{heap_.front().when, heap_.front().seq};
        }
        return true;
    }

    /**
     * Pop and run the single earliest event (exact (when, seq) order
     * across the heap and the FIFO), advancing now() to its cycle.
     * The sharded kernel's merged drain calls this on whichever queue
     * currently holds the global minimum. @pre !empty().
     */
    void
    runOneEarliest()
    {
        cmpsim_assert(!empty(), "runOneEarliest on an empty queue");
        const bool fifo = same_head_ < same_cycle_.size();
        if (fifo && (heap_.empty() ||
                     same_cycle_[same_head_].before(heap_.front()))) {
            Event ev = std::move(same_cycle_[same_head_++]);
            if (same_head_ == same_cycle_.size()) {
                same_cycle_.clear();
                same_head_ = 0;
            }
            now_ = ev.when;
            ev.cb();
            return;
        }
        Event ev = popHeap();
        now_ = ev.when;
        ev.cb();
    }

    /**
     * Jump now() forward to @p when without running anything: the
     * merged drain has already executed every event at or before it
     * (possibly out of this queue's runDue() order, hence a separate
     * entry point). @pre nothing due at or before @p when remains.
     */
    void
    syncNow(Cycle when)
    {
        cmpsim_assert(when >= now_,
                      "syncNow into the past: when=%llu now=%llu",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_));
        cmpsim_assert(same_head_ == same_cycle_.size() &&
                          (heap_.empty() || heap_.front().when > when),
                      "syncNow(%llu) would skip a due event",
                      static_cast<unsigned long long>(when));
        now_ = when;
    }

    /**
     * Advance now() to @p when and run every event scheduled at or
     * before it, in time order. @pre when >= now().
     */
    void
    advanceTo(Cycle when)
    {
        cmpsim_assert(when >= now_,
                      "advanceTo into the past: when=%llu now=%llu",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_));
        runDue(when);
        now_ = when;
    }

    /**
     * Run events until the queue drains or @p limit cycles elapse.
     * Used by unit tests and by components driven without cores.
     * @return number of events executed.
     */
    std::uint64_t
    drain(Cycle limit = kCycleNever)
    {
        return runDue(limit);
    }

  private:
    friend class CheckpointCodec; // serializes heap_/now_/seq state

    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
        ckpt::Tag tag; ///< serializable description of cb (may be null)

        bool
        before(const Event &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /**
     * Run every due event: heap entries with when <= @p limit plus
     * all same-cycle continuations they spawn. On return the FIFO is
     * empty and the heap's earliest entry (if any) is past limit.
     */
    std::uint64_t
    runDue(Cycle limit)
    {
        // One site for the whole pop+dispatch drain: cheap enough to
        // stay on permanently (a relaxed load when profiling is off),
        // and the run report's eq.dispatch line attributes kernel cost
        // separately from component cost (e.g. l2.lookup).
        CMPSIM_PROF_SCOPE("eq.dispatch");
        std::uint64_t executed = 0;
        // Events at the current cycle (heap leftovers and the FIFO)
        // are due only if now_ itself is within the limit — drain()
        // may be called with a limit in the past and must be a no-op
        // then, exactly like the when <= limit heap condition.
        while (true) {
            const bool now_due = now_ <= limit;
            if (now_due && !heap_.empty() && heap_.front().when <= now_) {
                // Pending heap entry at the current cycle: scheduled
                // before now() reached it, so older than anything in
                // the FIFO — must run first.
                Event ev = popHeap();
                ev.cb();
            } else if (now_due && same_head_ < same_cycle_.size()) {
                Event ev = std::move(same_cycle_[same_head_++]);
                if (same_head_ == same_cycle_.size()) {
                    same_cycle_.clear();
                    same_head_ = 0;
                }
                ev.cb();
            } else if (!heap_.empty() && heap_.front().when <= limit) {
                Event ev = popHeap();
                now_ = ev.when;
                ev.cb();
            } else {
                break;
            }
            ++executed;
        }
        return executed;
    }

    /** Move the root out and restore the heap property with moves. */
    Event
    popHeap()
    {
        Event top = std::move(heap_.front());
        if (heap_.size() > 1) {
            heap_.front() = std::move(heap_.back());
            heap_.pop_back();
            siftDown(0);
        } else {
            heap_.pop_back();
        }
        return top;
    }

    void
    siftUp(std::size_t i)
    {
        Event ev = std::move(heap_[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!ev.before(heap_[parent]))
                break;
            heap_[i] = std::move(heap_[parent]);
            i = parent;
        }
        heap_[i] = std::move(ev);
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        Event ev = std::move(heap_[i]);
        while (true) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && heap_[child + 1].before(heap_[child]))
                ++child;
            if (!heap_[child].before(ev))
                break;
            heap_[i] = std::move(heap_[child]);
            i = child;
        }
        heap_[i] = std::move(ev);
    }

    std::vector<Event> heap_;       ///< binary min-heap by (when, seq)
    std::vector<Event> same_cycle_; ///< FIFO of events at now()
    std::size_t same_head_ = 0;     ///< first unconsumed FIFO slot
    Cycle now_ = 0;
    std::uint64_t own_seq_ = 0;     ///< default sequence counter
    std::uint64_t *seq_src_ = &own_seq_; ///< see setSequenceSource()
};

} // namespace cmpsim

#endif // CMPSIM_SIM_EVENT_QUEUE_H
