#include "src/sim/lane.h"

#include "src/common/log.h"

namespace cmpsim {

namespace {
// Per-thread deferral slot: each lane worker (and the coordinator
// while ticking lane 0) arms its own copy via LaneContextGuard around
// its tick, so no thread ever reads another thread's value.
// analyze-ok: shared-state thread_local by design — strictly per-thread, armed/cleared by RAII guard
thread_local LaneMailbox *tl_lane = nullptr;
} // namespace

LaneMailbox *
laneContext()
{
    return tl_lane;
}

LaneContextGuard::LaneContextGuard(LaneMailbox *lane) : prev_(tl_lane)
{
    tl_lane = lane;
}

LaneContextGuard::~LaneContextGuard()
{
    tl_lane = prev_;
}

LaneCrew::LaneCrew(ThreadPool &pool, unsigned lanes)
    : work_(lanes), errors_(lanes), workers_(lanes - 1)
{
    cmpsim_assert(lanes >= 2, "LaneCrew needs at least two lanes");
    cmpsim_assert(pool.threadCount() >= workers_,
                  "pool has %u threads for %u lane workers",
                  pool.threadCount(), workers_);
    for (unsigned l = 0; l < lanes; ++l)
        mailboxes_.push_back(std::make_unique<LaneMailbox>());
    for (unsigned l = 1; l < lanes; ++l)
        pool.submit([this, l] { workerLoop(l); });
}

LaneCrew::~LaneCrew()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_.notify_all();
    // The worker tasks return once they observe stop_; the owning
    // ThreadPool's destructor (or wait()) joins them afterwards.
}

void
LaneCrew::setWork(unsigned lane, Work work)
{
    work_[lane] = std::move(work);
}

void
LaneCrew::runQuantum(Cycle now)
{
    ++quanta_;
    if (workers_ > 0) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            quantum_now_ = now;
            done_count_ = 0;
            ++generation_;
        }
        start_.notify_all();
    }
    {
        LaneContextGuard ctx(mailboxes_[0].get());
        work_[0](now);
    }
    if (workers_ > 0) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (done_count_ != workers_)
            ++barrier_stalls_;
        done_.wait(lock, [this] { return done_count_ == workers_; });
    }
    std::exception_ptr first;
    for (std::exception_ptr &e : errors_) {
        if (e != nullptr && first == nullptr)
            first = e;
        e = nullptr;
    }
    if (first != nullptr)
        std::rethrow_exception(first);
}

void
LaneCrew::flushAll()
{
    for (auto &m : mailboxes_)
        m->flush();
}

void
LaneCrew::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".quanta", &quanta_);
    reg.registerCounter(prefix + ".barrier_stalls", &barrier_stalls_);
    for (unsigned l = 0; l < lanes(); ++l) {
        mailboxes_[l]->registerStats(reg,
                                     prefix + "." + std::to_string(l));
    }
}

void
LaneCrew::workerLoop(unsigned lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        Cycle now;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            now = quantum_now_;
        }
        try {
            LaneContextGuard ctx(mailboxes_[lane].get());
            work_[lane](now);
        } catch (...) {
            errors_[lane] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++done_count_;
        }
        done_.notify_one();
    }
}

} // namespace cmpsim
