/**
 * @file
 * Deterministic fault-injection harness (DESIGN.md §8).
 *
 * A FaultPlan names simulator sites that should misbehave and when:
 *
 *     CMPSIM_FAULT=l2.fill:100            100th L2 fill throws
 *                                         (first attempt only)
 *     CMPSIM_FAULT=l2.fill:100:all:p1     ... on every attempt, but
 *                                         only for batch point 1
 *     CMPSIM_FAULT=core.stall:1:all:stall cores livelock instead of
 *                                         retiring (watchdog food)
 *     CMPSIM_FAULT=link.transfer:5,workload.gen:1   several at once
 *
 * Spec grammar, per comma-separated entry:
 *     site:nth[:field]...
 * where each optional field is one of
 *     <integer>  fail this many attempts (default 1 — transient;
 *                a retry succeeds), "all" = fail every attempt
 *     throw | stall   fault kind (default throw)
 *     p<N>       only batch point index N
 *     s<N>       only seed number N (1-based, as in config.seed)
 *
 * Plans are armed per thread and per task attempt (FaultArmGuard), so
 * hit counting is deterministic regardless of worker count: every
 * (point, seed, attempt) execution counts its own site hits from
 * zero. Probes are free when nothing is armed (one thread-local
 * pointer test).
 *
 * Known sites: l2.fill (L2Cache::fill), link.transfer
 * (PriorityLink::send), workload.gen (SyntheticWorkload construction),
 * core.stall (CoreModel::tick, stall kind only), dram.access
 * (DramBackend::read — hit only when the banked backend is armed via
 * CMPSIM_DRAM; contains/retries like l2.fill), ckpt.save
 * (ckpt::atomicSave — fails an autosave mid-run) and ckpt.load
 * (ckpt::loadWithFallback — fails a CMPSIM_RESTORE resume).
 *
 * The same file hosts the per-point wall-clock deadline
 * (CMPSIM_POINT_TIMEOUT): DeadlineGuard arms a thread-local deadline
 * and CmpSystem's run/warmup loops poll checkPointDeadline(), which
 * throws WatchdogTimeout once the deadline passes.
 */

#ifndef CMPSIM_SIM_FAULT_INJECTION_H
#define CMPSIM_SIM_FAULT_INJECTION_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cmpsim {

/** What happens when a fault triggers. */
enum class FaultKind
{
    Throw, ///< throw InjectedFault at the site
    Stall, ///< latch a per-thread stall flag (cores stop retiring)
};

inline constexpr unsigned kFaultAllAttempts =
    std::numeric_limits<unsigned>::max();
inline constexpr std::size_t kFaultAnyPoint =
    std::numeric_limits<std::size_t>::max();
inline constexpr unsigned kFaultAnySeed =
    std::numeric_limits<unsigned>::max();

/** One "misbehave at site S, occurrence N" rule. */
struct FaultSpec
{
    std::string site;
    std::uint64_t nth = 1;       ///< 1-based hit that triggers
    unsigned fail_attempts = 1;  ///< attempts 1..k fire; kFaultAllAttempts
    FaultKind kind = FaultKind::Throw;
    std::size_t point = kFaultAnyPoint; ///< restrict to one batch point
    unsigned seed = kFaultAnySeed;      ///< restrict to one seed number
};

/** A parsed, immutable set of fault rules. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Parse @p spec (see grammar above); throws ConfigError on
     *  malformed input. Empty string yields an empty plan. */
    static FaultPlan parse(const std::string &spec);

    /** Plan from CMPSIM_FAULT (empty plan when unset/empty). */
    static FaultPlan fromEnv();

    bool empty() const { return specs_.empty(); }
    const std::vector<FaultSpec> &specs() const { return specs_; }

  private:
    std::vector<FaultSpec> specs_;
};

namespace detail {
struct ArmedFaults;
extern thread_local ArmedFaults *tl_armed;
extern thread_local bool tl_has_deadline;
void faultSiteSlow(const char *site);
bool faultStallSlow(const char *site);
void checkPointDeadlineSlow(const char *where);
} // namespace detail

/**
 * Arm @p plan on the current thread for one task attempt; disarms on
 * destruction. @p attempt is 1-based; @p point / @p seed identify the
 * executing task for p<N>/s<N> selectors (defaults match any).
 */
class FaultArmGuard
{
  public:
    FaultArmGuard(const FaultPlan &plan, unsigned attempt,
                  std::size_t point = kFaultAnyPoint,
                  unsigned seed = kFaultAnySeed);
    ~FaultArmGuard();

    FaultArmGuard(const FaultArmGuard &) = delete;
    FaultArmGuard &operator=(const FaultArmGuard &) = delete;
};

/** Throw-kind probe: count a hit of @p site; throws InjectedFault
 *  when an armed rule triggers. No-op when nothing is armed. */
inline void
faultSite(const char *site)
{
    if (detail::tl_armed != nullptr)
        detail::faultSiteSlow(site);
}

/** Stall-kind probe: count a hit of @p site and report whether a
 *  stall is latched on this thread (sticky for the rest of the
 *  attempt). Always false when nothing is armed. */
inline bool
faultStallActive(const char *site)
{
    return detail::tl_armed != nullptr && detail::faultStallSlow(site);
}

/**
 * Arm a wall-clock deadline for the current thread's task; disarms on
 * destruction. @p seconds <= 0 arms nothing (no deadline).
 */
class DeadlineGuard
{
  public:
    explicit DeadlineGuard(double seconds);
    ~DeadlineGuard();

    DeadlineGuard(const DeadlineGuard &) = delete;
    DeadlineGuard &operator=(const DeadlineGuard &) = delete;
};

/** Throw WatchdogTimeout (context @p where) if the armed deadline has
 *  passed. Free when no deadline is armed. */
inline void
checkPointDeadline(const char *where)
{
    if (detail::tl_has_deadline)
        detail::checkPointDeadlineSlow(where);
}

} // namespace cmpsim

#endif // CMPSIM_SIM_FAULT_INJECTION_H
