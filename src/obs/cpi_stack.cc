#include "src/obs/cpi_stack.h"

#include <cmath>

#include "src/common/log.h"
#include "src/obs/trace.h"

namespace cmpsim {

namespace {

/** First journey leaf (the leaf_hists_ base index). */
constexpr unsigned kFirstJourneyLeaf =
    static_cast<unsigned>(CpiLeaf::L2Service);
/** Journey leaves: L2Service..DramService, contiguous in CpiLeaf. */
constexpr unsigned kJourneyLeafCount =
    static_cast<unsigned>(CpiLeaf::DramService) - kFirstJourneyLeaf + 1;

/** Cycles [begin, end) spends inside [lo, hi). */
Cycle
overlap(Cycle begin, Cycle end, Cycle lo, Cycle hi)
{
    const Cycle a = begin > lo ? begin : lo;
    const Cycle b = end < hi ? end : hi;
    return b > a ? b - a : 0;
}

} // namespace

const char *
cpiLeafName(CpiLeaf leaf)
{
    switch (leaf) {
    case CpiLeaf::Compute:
        return "compute";
    case CpiLeaf::BranchRedirect:
        return "branch_redirect";
    case CpiLeaf::MshrFull:
        return "mshr_full";
    case CpiLeaf::L1iMiss:
        return "l1i_miss";
    case CpiLeaf::L1dService:
        return "l1d_service";
    case CpiLeaf::L2Service:
        return "l2_service";
    case CpiLeaf::LinkQueue:
        return "link_queue";
    case CpiLeaf::LinkSerialize:
        return "link_serialize";
    case CpiLeaf::Decompression:
        return "decompression";
    case CpiLeaf::DramQueue:
        return "dram_queue";
    case CpiLeaf::DramService:
        return "dram_service";
    case CpiLeaf::PfResidue:
        return "pf_residue";
    case CpiLeaf::Count:
        break;
    }
    cmpsim_assert(false && "bad CpiLeaf");
    return "?";
}

// ---------------------------------------------------------------- journal

MissJournal::MissJournal(double link_bytes_per_cycle, bool infinite_link)
    : link_rate_(link_bytes_per_cycle), infinite_link_(infinite_link)
{
    leaf_hists_.reserve(kJourneyLeafCount);
    for (unsigned i = 0; i < kJourneyLeafCount; ++i)
        leaf_hists_.emplace_back(25.0, 40);
}

void
MissJournal::seal(MissRecord &r, CpiLeaf leaf, Cycle until)
{
    if (until > r.frontier_start) {
        r.segments.push_back({leaf, r.frontier_start, until});
        r.frontier_start = until;
    }
    r.frontier = leaf;
}

void
MissJournal::onL2Request(unsigned cpu, Addr line, bool prefetch,
                         Cycle when)
{
    auto it = records_.find(line);
    Cycle prev_pf_span = 0;
    if (it != records_.end()) {
        MissRecord &r = it->second;
        if (!r.complete) {
            // The line's journey is already in flight: this request
            // coalesces into it. A demand joining a prefetch journey
            // is the "partially hidden" case — remember when it
            // joined, so the hidden prefix (start..join) is exact.
            if (!prefetch) {
                if (r.demand_join == 0)
                    r.demand_join_when = when;
                ++r.demand_join;
            }
            return;
        }
        // A fresh journey for a line whose previous journey was a
        // pure prefetch: a demand arriving now would have stalled for
        // that journey's full span had the prefetch not run. Carry
        // the span so CpiAccount can credit it as fully hidden.
        if (!prefetch && r.prefetch_origin && r.demand_join == 0)
            prev_pf_span = r.end - r.start;
    }
    MissRecord r;
    r.line = line;
    r.start = when;
    r.cpu = cpu;
    r.prefetch_origin = prefetch;
    r.prev_pf_span = prev_pf_span;
    r.frontier = CpiLeaf::L2Service;
    r.frontier_start = when;
    r.span_id = ++next_span_id_;
    records_[line] = std::move(r);
}

void
MissJournal::onL2Hit(Addr line, Cycle lookup_done, Cycle ready,
                     bool penalized)
{
    auto it = records_.find(line);
    if (it == records_.end() || it->second.complete)
        return;
    MissRecord &r = it->second;
    r.l2_hit = true;
    r.penalized = r.penalized || penalized;
    seal(r, CpiLeaf::L2Service, lookup_done);
    if (penalized)
        seal(r, CpiLeaf::Decompression, ready);
    seal(r, CpiLeaf::L2Service, ready > lookup_done ? ready : lookup_done);
    r.frontier = CpiLeaf::L2Service;
}

void
MissJournal::onMemRequestSent(Addr line, Cycle enq, Cycle arrive,
                              unsigned data_segments)
{
    auto it = records_.find(line);
    if (it == records_.end() || it->second.complete)
        return;
    MissRecord &r = it->second;
    r.data_segments = data_segments;
    seal(r, CpiLeaf::L2Service, enq);
    // Split the request message's link time: the tail link_rate-paced
    // cycles are serialization, anything before is queueing behind
    // other messages (zero when the link is modeled infinite).
    Cycle ser = 0;
    if (!infinite_link_ && link_rate_ > 0.0) {
        ser = static_cast<Cycle>(
            std::ceil(kMessageHeaderBytes / link_rate_));
    }
    const Cycle span = arrive > r.frontier_start
                           ? arrive - r.frontier_start
                           : 0;
    if (ser > span)
        ser = span;
    seal(r, CpiLeaf::LinkQueue, arrive - ser);
    seal(r, CpiLeaf::LinkSerialize, arrive);
    r.frontier = CpiLeaf::DramQueue;
}

void
MissJournal::onDramService(Addr line, Cycle svc_start, Cycle done,
                           bool row_hit)
{
    auto it = records_.find(line);
    if (it == records_.end() || it->second.complete)
        return;
    MissRecord &r = it->second;
    r.row_hit = row_hit ? 1 : 0;
    seal(r, CpiLeaf::DramQueue, svc_start);
    seal(r, CpiLeaf::DramService, done);
    r.frontier = CpiLeaf::LinkQueue;
}

void
MissJournal::onDramFixed(Addr line, Cycle begin, Cycle end)
{
    auto it = records_.find(line);
    if (it == records_.end() || it->second.complete)
        return;
    MissRecord &r = it->second;
    seal(r, CpiLeaf::DramQueue, begin);
    seal(r, CpiLeaf::DramService, end);
    r.frontier = CpiLeaf::LinkQueue;
}

void
MissJournal::onL2Fill(Addr line, Cycle arrival, Cycle decomp_end)
{
    auto it = records_.find(line);
    if (it == records_.end() || it->second.complete)
        return;
    MissRecord &r = it->second;
    // Split the data message's link time the same way as the request:
    // serialization is the size-class-dependent tail.
    const unsigned bytes =
        kMessageHeaderBytes + r.data_segments * kSegmentBytes;
    Cycle ser = 0;
    if (!infinite_link_ && link_rate_ > 0.0)
        ser = static_cast<Cycle>(std::ceil(bytes / link_rate_));
    const Cycle span = arrival > r.frontier_start
                           ? arrival - r.frontier_start
                           : 0;
    if (ser > span)
        ser = span;
    seal(r, CpiLeaf::LinkQueue, arrival - ser);
    seal(r, CpiLeaf::LinkSerialize, arrival);
    if (decomp_end > arrival) {
        r.penalized = true;
        seal(r, CpiLeaf::Decompression, decomp_end);
    }
    r.frontier = CpiLeaf::L2Service;
}

void
MissJournal::onGranted(Addr line, Cycle at_l1)
{
    auto it = records_.find(line);
    if (it == records_.end() || it->second.complete)
        return;
    MissRecord &r = it->second;
    seal(r, CpiLeaf::L2Service, at_l1);
    r.end = at_l1;
    r.complete = true;
    finish(r);
}

void
MissJournal::onPrefetchSquashed(Addr line, Cycle when)
{
    auto it = records_.find(line);
    if (it == records_.end())
        return;
    MissRecord &r = it->second;
    // Only a pure prefetch journey dies here; if a demand coalesced
    // into it, the demand's own lookup/fill path completes the record.
    if (r.complete || !r.prefetch_origin || r.demand_join != 0)
        return;
    seal(r, r.frontier, when);
    r.end = when > r.start ? when : r.start;
    r.complete = true;
    ++pf_squashed_;
}

void
MissJournal::finish(MissRecord &r)
{
    ++completed_;
    if (r.prefetch_origin)
        ++pf_origin_completed_;
    if (r.row_hit == 1)
        ++row_hit_fetches_;
    else if (r.row_hit == 0)
        ++row_miss_fetches_;
    total_hist_.sample(static_cast<double>(r.end - r.start));

    double per_leaf[kJourneyLeafCount] = {};
    for (const MissSegment &s : r.segments) {
        const unsigned li = static_cast<unsigned>(s.leaf);
        if (li >= kFirstJourneyLeaf &&
            li < kFirstJourneyLeaf + kJourneyLeafCount) {
            per_leaf[li - kFirstJourneyLeaf] +=
                static_cast<double>(s.end - s.begin);
        }
    }
    for (unsigned i = 0; i < kJourneyLeafCount; ++i)
        leaf_hists_[i].sample(per_leaf[i]);

    if (Tracer *t = Tracer::armed()) {
        // Per-core journey track, labeled by CmpSystem's thread_name
        // metadata.
        TraceThreadScope scope(kTraceSimPid,
                               kJourneyTraceTidBase + r.cpu);
        t->asyncBegin("mem.journey", r.start, r.span_id,
                      {{"line", static_cast<std::uint64_t>(r.line)},
                       {"origin",
                        r.prefetch_origin ? "prefetch" : "demand"},
                       {"size_class",
                        static_cast<std::uint64_t>(r.data_segments)},
                       {"row_hit",
                        r.row_hit < 0 ? "n/a"
                                      : (r.row_hit != 0 ? "hit" : "miss")},
                       {"demand_joins",
                        static_cast<std::uint64_t>(r.demand_join)}});
        for (const MissSegment &s : r.segments) {
            t->asyncBegin(cpiLeafName(s.leaf), s.begin, r.span_id);
            t->asyncEnd(cpiLeafName(s.leaf), s.end, r.span_id);
        }
        t->asyncEnd("mem.journey", r.end, r.span_id);
    }
}

const MissRecord *
MissJournal::find(Addr line) const
{
    auto it = records_.find(line);
    return it == records_.end() ? nullptr : &it->second;
}

void
MissJournal::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".completed", &completed_);
    reg.registerCounter(prefix + ".pf_squashed", &pf_squashed_);
    reg.registerCounter(prefix + ".pf_completed", &pf_origin_completed_);
    reg.registerCounter(prefix + ".row_hits", &row_hit_fetches_);
    reg.registerCounter(prefix + ".row_misses", &row_miss_fetches_);
    reg.registerHistogram(prefix + ".journey_cycles", &total_hist_);
    for (unsigned i = 0; i < kJourneyLeafCount; ++i) {
        const CpiLeaf leaf =
            static_cast<CpiLeaf>(kFirstJourneyLeaf + i);
        reg.registerHistogram(prefix + ".seg_" + cpiLeafName(leaf),
                              &leaf_hists_[i]);
    }
}

void
MissJournal::resetStats()
{
    completed_.reset();
    pf_squashed_.reset();
    pf_origin_completed_.reset();
    row_hit_fetches_.reset();
    row_miss_fetches_.reset();
    total_hist_.reset();
    for (Histogram &h : leaf_hists_)
        h.reset();
    // records_ survives a reset on purpose: in-flight journeys that
    // straddle the warmup/measure boundary must keep their timeline.
}

// ---------------------------------------------------------------- account

CpiAccount::CpiAccount(unsigned cpu, unsigned rob_entries,
                       const MissJournal *journal)
    : cpu_(cpu), journal_(journal), load_lines_(rob_entries, 0)
{
}

void
CpiAccount::beginTick(Cycle now)
{
    close(now);
}

void
CpiAccount::flush(Cycle end)
{
    close(end);
}

void
CpiAccount::close(Cycle now)
{
    if (now <= from_)
        return;
    const Cycle n = now - from_;
    switch (pending_) {
    case CpiBlock::Compute:
        leaves_[static_cast<unsigned>(CpiLeaf::Compute)] += n;
        break;
    case CpiBlock::BranchRedirect:
        leaves_[static_cast<unsigned>(CpiLeaf::BranchRedirect)] += n;
        break;
    case CpiBlock::MshrFull:
        leaves_[static_cast<unsigned>(CpiLeaf::MshrFull)] += n;
        break;
    case CpiBlock::L1iMiss:
        leaves_[static_cast<unsigned>(CpiLeaf::L1iMiss)] += n;
        break;
    case CpiBlock::L1dMiss:
        attributeMiss(from_, now, pending_line_);
        break;
    }
    from_ = now;
}

void
CpiAccount::attributeMiss(Cycle begin, Cycle end, Addr line)
{
    const Cycle window = end - begin;
    const MissRecord *r =
        journal_ != nullptr ? journal_->find(line) : nullptr;
    if (r == nullptr) {
        // No journey on file (e.g. an L1-level chained stall): the
        // catch-all leaf keeps the sum exact.
        leaves_[static_cast<unsigned>(CpiLeaf::L1dService)] += window;
        return;
    }

    // The window that sees the journey complete settles the hidden-
    // latency credits (exactly once per journey, per blocking core).
    const bool final_window =
        r->complete && r->end > begin && r->end <= end;

    Cycle covered = 0;
    if (r->prefetch_origin) {
        // Stalling behind an in-flight prefetch: the whole in-journey
        // overlap is the prefetch residue the prefetch failed to hide.
        const Cycle jr_end = r->complete ? r->end : end;
        const Cycle res = overlap(begin, end, r->start, jr_end);
        leaves_[static_cast<unsigned>(CpiLeaf::PfResidue)] += res;
        covered = res;
        if (final_window && r->demand_join != 0 &&
            r->demand_join_when > r->start)
            pf_hidden_ += r->demand_join_when - r->start;
    } else {
        for (const MissSegment &s : r->segments) {
            const Cycle o = overlap(begin, end, s.begin, s.end);
            leaves_[static_cast<unsigned>(s.leaf)] += o;
            covered += o;
        }
        if (!r->complete) {
            const Cycle o = overlap(begin, end, r->frontier_start, end);
            leaves_[static_cast<unsigned>(r->frontier)] += o;
            covered += o;
        }
        if (final_window)
            pf_hidden_ += r->prev_pf_span;
    }
    cmpsim_assert(covered <= window);
    leaves_[static_cast<unsigned>(CpiLeaf::L1dService)] +=
        window - covered;
}

bool
CpiAccount::conserved(std::string &why) const
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < kCpiLeafCount; ++i)
        sum += leaves_[i].value();
    const std::uint64_t want = from_ - origin_;
    if (sum == want)
        return true;
    why = "cpi." + std::to_string(cpu_) + ": leaves sum to " +
          std::to_string(sum) + " but " + std::to_string(want) +
          " cycles elapsed";
    return false;
}

void
CpiAccount::registerStats(StatRegistry &reg, const std::string &prefix)
{
    for (unsigned i = 0; i < kCpiLeafCount; ++i) {
        reg.registerCounter(prefix + "." +
                                cpiLeafName(static_cast<CpiLeaf>(i)),
                            &leaves_[i]);
    }
    reg.registerCounter(prefix + ".pf_hidden", &pf_hidden_);
}

void
CpiAccount::resetStats()
{
    for (unsigned i = 0; i < kCpiLeafCount; ++i)
        leaves_[i].reset();
    pf_hidden_.reset();
    origin_ = from_;
}

} // namespace cmpsim
