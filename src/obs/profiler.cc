#include "src/obs/profiler.h"

#include <cstdlib>
#include <map>
#include <mutex>

namespace cmpsim {

namespace detail {
std::atomic<bool> g_prof_enabled{false};
} // namespace detail

namespace {

/** Head of the intrusive site list; push-only, mutex-serialized. */
std::atomic<ProfSite *> g_sites{nullptr};
std::mutex g_register_mutex;

} // namespace

void
ProfSite::profRegisterSite(ProfSite &site)
{
    std::lock_guard<std::mutex> lock(g_register_mutex);
    site.next = g_sites.load(std::memory_order_relaxed);
    g_sites.store(&site, std::memory_order_release);
}

void
setProfEnabled(bool on)
{
    detail::g_prof_enabled.store(on, std::memory_order_relaxed);
}

void
profInitFromEnv()
{
    const char *env = std::getenv("CMPSIM_PROF");
    if (env != nullptr && *env != '\0' &&
        !(env[0] == '0' && env[1] == '\0'))
        setProfEnabled(true);
}

std::vector<ProfSample>
profSnapshot()
{
    // Merge by name: distinct site objects may share a label (e.g. a
    // scope in a header that ends up instantiated more than once).
    std::map<std::string, ProfSample> merged;
    for (const ProfSite *s = g_sites.load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
        const std::uint64_t calls =
            s->calls.load(std::memory_order_relaxed);
        if (calls == 0)
            continue;
        ProfSample &sample = merged[s->name];
        sample.name = s->name;
        sample.calls += calls;
        sample.total_ns += s->total_ns.load(std::memory_order_relaxed);
    }
    std::vector<ProfSample> out;
    out.reserve(merged.size());
    for (auto &[name, sample] : merged) {
        (void)name;
        out.push_back(std::move(sample));
    }
    return out;
}

void
profReset()
{
    for (ProfSite *s = g_sites.load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
        s->calls.store(0, std::memory_order_relaxed);
        s->total_ns.store(0, std::memory_order_relaxed);
    }
}

} // namespace cmpsim
