/**
 * @file
 * Chrome-trace-event tracer (DESIGN.md §9): records simulator events
 * into the JSON array format that chrome://tracing and Perfetto load
 * directly.
 *
 * Two timelines coexist in one file, separated by pid:
 *  - pid 0 "wall": wall-clock duration events (microseconds since the
 *    tracer opened) — warmup/measure phases, per-(point, seed) tasks
 *    in the parallel runner;
 *  - pid >= 1 "sim": simulated-cycle-stamped events (ts = cycle,
 *    rendered as if cycles were microseconds) — l2.fill,
 *    link.transfer, prefetch issue/fill/useless, watchdog
 *    diagnostics, and the interval sampler's counter tracks.
 *
 * Arming mirrors the fault-injection harness: probes are inline and
 * cost one relaxed atomic load plus a predictable branch when no
 * tracer is armed (benchmarked in bench/micro_components.cc), so the
 * instrumentation can live permanently in the hot paths. Probes only
 * *read* simulator state — simulated results are byte-identical with
 * tracing on or off (tests/event_trace_test.cc proves it; the CI
 * determinism gate runs traced).
 *
 * Concurrency: one process-wide tracer may be armed; emission is
 * mutex-serialized, and each worker thread labels its events with the
 * (pid, tid) installed by TraceThreadScope, so parallel-runner points
 * land on separate tracks instead of interleaving.
 */

#ifndef CMPSIM_OBS_TRACE_H
#define CMPSIM_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/types.h"

namespace cmpsim {

/** One "key": value argument of a trace event. */
struct TraceArg
{
    TraceArg(const char *k, std::uint64_t v)
        : key(k), num(static_cast<double>(v)), is_string(false)
    {
    }
    TraceArg(const char *k, double v) : key(k), num(v), is_string(false)
    {
    }
    TraceArg(const char *k, const char *v)
        : key(k), str(v), is_string(true)
    {
    }

    const char *key;
    double num = 0.0;
    const char *str = "";
    bool is_string;
};

using TraceArgs = std::initializer_list<TraceArg>;

/** The wall-clock pseudo-process (phases, runner tasks). */
inline constexpr unsigned kTraceWallPid = 0;
/** Default simulated-cycles pseudo-process (single runs). */
inline constexpr unsigned kTraceSimPid = 1;

/** Collects trace events and streams them to a JSON file. */
class Tracer
{
  public:
    /** Open @p path for writing; throws ConfigError on failure. */
    explicit Tracer(const std::string &path);

    /** Closes the JSON array; disarms itself if still armed. */
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Make @p t the process-wide tracer (nullptr disarms). */
    static void arm(Tracer *t);

    /** The armed tracer, or nullptr. */
    static Tracer *armed();

    /** Microseconds of wall time since this tracer opened. */
    std::uint64_t nowWallUs() const;

    /** Instant event at simulated @p cycle on the caller's track. */
    void instant(const char *name, Cycle cycle, TraceArgs args = {});

    /** Complete (duration) event in simulated cycles. */
    void completeCycles(const char *name, Cycle start, Cycle end,
                        TraceArgs args = {});

    /** Complete (duration) event on the wall-clock timeline; the
     *  caller's TraceThreadScope tid separates concurrent tracks. */
    void completeWall(const char *name, std::uint64_t start_us,
                      std::uint64_t end_us, TraceArgs args = {});

    /** Counter track @p name: one series per arg, at @p cycle. */
    void counter(const char *name, Cycle cycle, TraceArgs args);

    /** Name the pseudo-process @p pid in the trace viewer. */
    void processName(unsigned pid, const std::string &name);

    /** Name thread @p tid of pseudo-process @p pid (Perfetto renders
     *  the label instead of a bare tid). */
    void threadName(unsigned pid, unsigned tid,
                    const std::string &name);

    /** Open an async span ('b') at simulated @p cycle; @p id pairs it
     *  with the matching asyncEnd. Async spans may nest and overlap
     *  freely — Perfetto groups them by (name, id). */
    void asyncBegin(const char *name, Cycle cycle, std::uint64_t id,
                    TraceArgs args = {});

    /** Close the async span opened under the same (name, id). */
    void asyncEnd(const char *name, Cycle cycle, std::uint64_t id,
                  TraceArgs args = {});

    std::uint64_t eventsWritten() const { return events_; }
    const std::string &path() const { return path_; }

  private:
    void emit(const char *name, char phase, std::uint64_t ts,
              unsigned pid, unsigned tid, std::uint64_t dur,
              bool has_dur, bool instant_scope, TraceArgs args,
              std::uint64_t id = 0, bool has_id = false);

    std::string path_;
    std::ofstream out_;
    std::mutex mutex_;
    std::uint64_t events_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * Installs the (pid, tid) the current thread stamps on simulated
 * events, so concurrent runner tasks trace onto separate tracks.
 * Restores the previous identity on destruction.
 */
class TraceThreadScope
{
  public:
    TraceThreadScope(unsigned pid, unsigned tid);
    ~TraceThreadScope();

    TraceThreadScope(const TraceThreadScope &) = delete;
    TraceThreadScope &operator=(const TraceThreadScope &) = delete;

  private:
    unsigned prev_pid_;
    unsigned prev_tid_;
};

namespace detail {
extern std::atomic<Tracer *> g_tracer;
} // namespace detail

/** Hot-path probe guard: true when a tracer is armed. */
inline bool
traceEnabled()
{
    return detail::g_tracer.load(std::memory_order_relaxed) != nullptr;
}

/** Instant-event probe; free when no tracer is armed. */
inline void
traceInstant(const char *name, Cycle cycle, TraceArgs args = {})
{
    if (Tracer *t = detail::g_tracer.load(std::memory_order_relaxed))
        t->instant(name, cycle, args);
}

/** Counter-track probe; free when no tracer is armed. */
inline void
traceCounter(const char *name, Cycle cycle, TraceArgs args)
{
    if (Tracer *t = detail::g_tracer.load(std::memory_order_relaxed))
        t->counter(name, cycle, args);
}

/**
 * RAII helper for process entry points (CLI, determinism gate):
 * opens and arms a tracer when CMPSIM_TRACE (or the explicit @p path)
 * names a file, and closes it at scope exit. Inert when neither is
 * set.
 */
class TraceSession
{
  public:
    /** @p path overrides CMPSIM_TRACE when non-empty. */
    explicit TraceSession(const std::string &path = "");
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    bool active() const { return tracer_ != nullptr; }
    Tracer *tracer() { return tracer_.get(); }

  private:
    std::unique_ptr<Tracer> tracer_;
};

} // namespace cmpsim

#endif // CMPSIM_OBS_TRACE_H
