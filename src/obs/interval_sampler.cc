#include "src/obs/interval_sampler.h"

#include <utility>

#include "src/common/log.h"
#include "src/obs/json_writer.h"

namespace cmpsim {

namespace {

/** "a/b" with 0/0 -> 0 (an idle interval is not an error). */
double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

IntervalSampler::IntervalSampler(const StatRegistry &reg, Cycle interval,
                                 const Shape &shape)
    : reg_(reg), interval_(interval), shape_(shape),
      names_(reg.counterNames())
{
    cmpsim_assert(interval_ > 0);
}

void
IntervalSampler::addGauge(const std::string &name,
                          std::function<double()> fn)
{
    cmpsim_assert(!began_); // gauge set must be fixed before sampling
    gauge_names_.push_back(name);
    gauge_fns_.push_back(std::move(fn));
}

void
IntervalSampler::snapshotInto(std::vector<std::uint64_t> &out) const
{
    out.resize(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i)
        out[i] = reg_.counter(names_[i]);
}

void
IntervalSampler::begin(Cycle now)
{
    baseline_cycle_ = now;
    snapshotInto(baseline_);
    began_ = true;
}

void
IntervalSampler::sampleAt(Cycle now)
{
    cmpsim_assert(began_);
    if (now <= baseline_cycle_)
        return; // empty interval: nothing can have changed

    SampleRow row;
    row.t0 = baseline_cycle_;
    row.t1 = now;
    row.counter_deltas.resize(names_.size());
    std::vector<std::uint64_t> current;
    snapshotInto(current);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        // Counters are monotone between resets, and resets re-anchor
        // via onStatsReset(); a wrapped delta here is a bug upstream.
        cmpsim_assert(current[i] >= baseline_[i]);
        row.counter_deltas[i] = current[i] - baseline_[i];
    }
    row.gauges.reserve(gauge_fns_.size());
    for (const auto &fn : gauge_fns_)
        row.gauges.push_back(fn());

    baseline_cycle_ = now;
    baseline_.swap(current);
    rows_.push_back(std::move(row));
}

void
IntervalSampler::onStatsReset(Cycle now)
{
    if (!began_)
        return;
    // Everything just went to zero; deltas accumulated so far in the
    // open interval are lost by design (the reset marks a measurement
    // boundary, e.g. warmup -> measure).
    begin(now);
}

std::uint64_t
IntervalSampler::counterDelta(const SampleRow &row,
                              const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return row.counter_deltas.at(i);
    }
    return 0;
}

DerivedMetrics
IntervalSampler::derived(const SampleRow &row) const
{
    DerivedMetrics m;
    const Cycle span = row.t1 - row.t0;
    if (span == 0)
        return m;

    std::uint64_t retired_total = 0;
    std::uint64_t l1i_acc = 0, l1i_miss = 0;
    std::uint64_t l1d_acc = 0, l1d_miss = 0;
    m.ipc_core.resize(shape_.cores, 0.0);
    for (unsigned c = 0; c < shape_.cores; ++c) {
        const std::string idx = std::to_string(c);
        const std::uint64_t retired =
            counterDelta(row, "core." + idx + ".retired");
        retired_total += retired;
        m.ipc_core[c] =
            static_cast<double>(retired) / static_cast<double>(span);
        l1i_acc += counterDelta(row, "l1i." + idx + ".accesses");
        l1i_miss += counterDelta(row, "l1i." + idx + ".misses");
        l1d_acc += counterDelta(row, "l1d." + idx + ".accesses");
        l1d_miss += counterDelta(row, "l1d." + idx + ".misses");
    }
    m.ipc_total =
        static_cast<double>(retired_total) / static_cast<double>(span);
    m.l1i_miss_rate = ratio(l1i_miss, l1i_acc);
    m.l1d_miss_rate = ratio(l1d_miss, l1d_acc);
    m.l2_miss_rate = ratio(counterDelta(row, "l2.demand_misses"),
                           counterDelta(row, "l2.demand_accesses"));

    const std::uint64_t link_bytes = counterDelta(row, "mem.link.bytes");
    m.link_bytes_per_cycle =
        static_cast<double>(link_bytes) / static_cast<double>(span);
    if (shape_.link_bytes_per_cycle > 0.0)
        m.link_utilization =
            m.link_bytes_per_cycle / shape_.link_bytes_per_cycle;

    m.l2pf_accuracy_pct =
        100.0 * ratio(counterDelta(row, "l2.pf_hits_l2"),
                      counterDelta(row, "l2.l2pf_issued"));
    return m;
}

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    os << "cycle_start,cycle_end,ipc_total";
    for (unsigned c = 0; c < shape_.cores; ++c)
        os << ",ipc_core" << c;
    os << ",l1i_miss_rate,l1d_miss_rate,l2_miss_rate"
       << ",link_bytes_per_cycle,link_utilization,l2pf_accuracy_pct";
    for (const auto &g : gauge_names_)
        os << "," << g;
    for (const auto &n : names_)
        os << ",d_" << n;
    os << "\n";

    const auto flags = os.flags();
    os.precision(6);
    for (const SampleRow &row : rows_) {
        const DerivedMetrics m = derived(row);
        os << row.t0 << "," << row.t1 << "," << m.ipc_total;
        for (double v : m.ipc_core)
            os << "," << v;
        os << "," << m.l1i_miss_rate << "," << m.l1d_miss_rate << ","
           << m.l2_miss_rate << "," << m.link_bytes_per_cycle << ","
           << m.link_utilization << "," << m.l2pf_accuracy_pct;
        for (double v : row.gauges)
            os << "," << v;
        for (std::uint64_t v : row.counter_deltas)
            os << "," << v;
        os << "\n";
    }
    os.flags(flags);
}

void
IntervalSampler::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.keyValue("interval_cycles", interval_);
    w.keyValue("cores", static_cast<std::uint64_t>(shape_.cores));
    w.beginArray("counter_names");
    for (const auto &n : names_)
        w.value(n);
    w.end();
    w.beginArray("gauge_names");
    for (const auto &g : gauge_names_)
        w.value(g);
    w.end();
    w.beginArray("rows");
    for (const SampleRow &row : rows_) {
        const DerivedMetrics m = derived(row);
        w.beginObject();
        w.keyValue("t0", row.t0);
        w.keyValue("t1", row.t1);
        w.keyValue("ipc_total", m.ipc_total);
        w.beginArray("ipc_core");
        for (double v : m.ipc_core)
            w.value(v);
        w.end();
        w.keyValue("l1i_miss_rate", m.l1i_miss_rate);
        w.keyValue("l1d_miss_rate", m.l1d_miss_rate);
        w.keyValue("l2_miss_rate", m.l2_miss_rate);
        w.keyValue("link_bytes_per_cycle", m.link_bytes_per_cycle);
        w.keyValue("link_utilization", m.link_utilization);
        w.keyValue("l2pf_accuracy_pct", m.l2pf_accuracy_pct);
        w.beginArray("gauges");
        for (double v : row.gauges)
            w.value(v);
        w.end();
        w.beginArray("deltas");
        for (std::uint64_t v : row.counter_deltas)
            w.value(v);
        w.end();
        w.end();
    }
    w.end();
    w.end();
    os << "\n";
}

} // namespace cmpsim
