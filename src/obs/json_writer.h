/**
 * @file
 * Minimal streaming JSON emitter for the observability layer (run
 * reports, batch reports, interval-sampler series). No reflection, no
 * DOM: callers push begin/end/key/value calls and the writer tracks
 * comma placement and indentation. Output is deterministic for
 * deterministic inputs — doubles are printed with %.17g so a value
 * round-trips bit-exactly through a JSON parser.
 */

#ifndef CMPSIM_OBS_JSON_WRITER_H
#define CMPSIM_OBS_JSON_WRITER_H

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/log.h"

namespace cmpsim {

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** Push-based JSON writer with two-space indentation. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /** Open the root (or a nested anonymous) object/array. */
    void beginObject() { open('{'); }
    void beginArray() { open('['); }

    /** Open an object/array as the value of @p key. */
    void
    beginObject(const char *key)
    {
        keyPrefix(key);
        openRaw('{');
    }

    void
    beginArray(const char *key)
    {
        keyPrefix(key);
        openRaw('[');
    }

    void
    end()
    {
        cmpsim_assert(!stack_.empty());
        const Frame f = stack_.back();
        stack_.pop_back();
        if (f.count > 0) {
            os_ << "\n";
            indent();
        }
        os_ << (f.array ? ']' : '}');
    }

    // -- scalar values ---------------------------------------------
    void value(const std::string &v) { item("\"" + jsonEscape(v) + "\""); }
    void value(const char *v) { value(std::string(v)); }
    void value(bool v) { item(v ? "true" : "false"); }
    void value(std::uint64_t v) { item(std::to_string(v)); }
    void value(std::int64_t v) { item(std::to_string(v)); }
    void value(unsigned v) { item(std::to_string(v)); }
    void value(int v) { item(std::to_string(v)); }

    void
    value(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        item(buf);
    }

    template <typename T>
    void
    keyValue(const char *key, const T &v)
    {
        keyPrefix(key);
        pending_key_ = true;
        value(v);
    }

  private:
    struct Frame
    {
        bool array;
        unsigned count;
    };

    void
    indent()
    {
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    /** Comma/newline/indent for the next element of the open frame. */
    void
    separate()
    {
        if (stack_.empty())
            return;
        if (stack_.back().count++ > 0)
            os_ << ",";
        os_ << "\n";
        indent();
    }

    void
    keyPrefix(const char *key)
    {
        cmpsim_assert(!stack_.empty() && !stack_.back().array);
        separate();
        os_ << "\"" << jsonEscape(key) << "\": ";
    }

    void
    open(char c)
    {
        if (!stack_.empty())
            separate();
        openRaw(c);
    }

    void
    openRaw(char c)
    {
        os_ << c;
        stack_.push_back(Frame{c == '[', 0});
    }

    void
    item(const std::string &text)
    {
        if (pending_key_)
            pending_key_ = false; // key already emitted the separator
        else
            separate();
        os_ << text;
    }

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool pending_key_ = false;
};

} // namespace cmpsim

#endif // CMPSIM_OBS_JSON_WRITER_H
