/**
 * @file
 * Cycle-accounting CPI stacks and miss-genealogy records (DESIGN.md
 * §9): the attribution layer that says *which cycles* decompression
 * cost and prefetching hid, instead of only end-to-end IPC deltas.
 *
 * Two cooperating pieces:
 *
 *  - MissJournal — one record per L2-level request journey (demand or
 *    prefetch), keyed by line address. Every timing layer the request
 *    crosses closes the record's open "frontier" segment and opens the
 *    next one (L2 service -> link queue -> link serialization -> DRAM
 *    queue -> DRAM service -> link back -> decompression -> L2
 *    service), so a completed record is a gap-free timeline of the
 *    journey tagged with demand/prefetch origin, compressed size class
 *    and DRAM row-hit outcome. Completion feeds per-segment latency
 *    histograms and (when a tracer is armed) Chrome-trace async spans.
 *
 *  - CpiAccount — per-core critical-path accounting. Each core tick
 *    closes the window since the previous tick and attributes every
 *    cycle in it to exactly one leaf cause, decided by the blocking
 *    instruction at the *previous* tick (window-open time). Memory
 *    windows are subdivided by overlapping them with the blocking
 *    load's journal record, so one number per leaf sums exactly to
 *    elapsed cycles (the obs.cpi_conservation audit).
 *
 * Arming is opt-in (SystemConfig::cpi_stack / CMPSIM_CPISTACK) and all
 * stats land in a separate registry (CmpSystem::cpiStats()), mirroring
 * laneStats(): default stat dumps — and therefore the determinism
 * fingerprints — are byte-identical whether or not the layer is armed.
 *
 * Threading (lanes > 1): every MissJournal mutation happens in serial
 * event callbacks (the merged drain and mailbox replay both run on the
 * coordinator); parallel lane ticks only *read* the journal through
 * CpiAccount, and each CpiAccount is written solely by the lane that
 * owns its core. Per-core accounts registered in core order therefore
 * merge in canonical lane order with no atomics and no divergence
 * across lane counts.
 */

#ifndef CMPSIM_OBS_CPI_STACK_H
#define CMPSIM_OBS_CPI_STACK_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace cmpsim {

/**
 * Leaf causes of the per-core CPI stack. Every elapsed cycle is
 * attributed to exactly one leaf; the sum over all leaves equals
 * elapsed cycles (enforced by CpiAccount::conserved()).
 */
enum class CpiLeaf : unsigned {
    Compute,        ///< dispatching/retiring (or no memory blockage)
    BranchRedirect, ///< pipeline refill after a mispredict
    MshrFull,       ///< dispatch stalled on a full L1D MSHR file
    L1iMiss,        ///< fetch stalled on an instruction miss
    L1dService,     ///< load miss: L1/uncovered handling (catch-all)
    L2Service,      ///< load miss: L2 lookup/bank/on-chip transfer
    LinkQueue,      ///< load miss: waiting for the pin link
    LinkSerialize,  ///< load miss: bytes crossing the pin link
    Decompression,  ///< load miss: decompression pipeline latency
    DramQueue,      ///< load miss: queued at the DRAM controller
    DramService,    ///< load miss: DRAM bank/burst service
    PfResidue,      ///< stall behind an in-flight (partial) prefetch
    Count
};

inline constexpr unsigned kCpiLeafCount =
    static_cast<unsigned>(CpiLeaf::Count);

/** Stable stat-name token for @p leaf ("compute", "link_queue", ...). */
const char *cpiLeafName(CpiLeaf leaf);

/** Trace tid of core @p cpu's journey track on the sim pseudo-process
 *  (offset keeps it clear of tid 0 and the runner's worker tids). */
inline constexpr unsigned kJourneyTraceTidBase = 1000;

/** Blocking cause a core reports at the end of one tick. */
enum class CpiBlock : unsigned {
    Compute,        ///< made progress (or nothing identifiable blocks)
    BranchRedirect,
    MshrFull,
    L1iMiss,
    L1dMiss,        ///< ROB head is an incomplete load (line known)
};

/** One (leaf, begin, end) slice of a request journey. */
struct MissSegment
{
    CpiLeaf leaf;
    Cycle begin;
    Cycle end;
};

/** Lifetime record of one L2-level request journey for a line. */
struct MissRecord
{
    Addr line = 0;
    Cycle start = 0;          ///< request left the L1 (or prefetcher)
    Cycle end = 0;            ///< data granted at the L1 (when complete)
    bool complete = false;
    bool prefetch_origin = false; ///< journey started as a prefetch
    bool l2_hit = false;
    bool penalized = false;       ///< paid the decompression latency
    unsigned demand_join = 0;     ///< demand requests that coalesced
    Cycle demand_join_when = 0;   ///< first demand coalescing time
    int row_hit = -1;             ///< 1/0 from banked DRAM, -1 unknown
    unsigned data_segments = 0;   ///< compressed size class (link form)
    unsigned cpu = 0;
    /** Span of the *previous* complete prefetch journey for this line
     *  that this demand journey displaced (full prefetch hit). */
    Cycle prev_pf_span = 0;
    std::uint64_t span_id = 0;    ///< Chrome-trace async span id

    /** Closed timeline slices, contiguous and in time order. */
    std::vector<MissSegment> segments;
    /** Open slice: @p frontier accrues from @p frontier_start. */
    CpiLeaf frontier = CpiLeaf::L2Service;
    Cycle frontier_start = 0;
};

/**
 * Journey journal + per-segment latency histograms. One instance per
 * CmpSystem, fed by L2Cache, MainMemory and DramBackend hooks; read by
 * every CpiAccount. All hooks run in serial event context.
 */
class MissJournal
{
  public:
    /** @p link_bytes_per_cycle / @p infinite_link mirror the pin-link
     *  config so the queueing/serialization split of link time is
     *  computable without touching the link itself. */
    MissJournal(double link_bytes_per_cycle, bool infinite_link);

    // ---- hooks (timing layers call these; serial context only) ----

    /** A request for @p line entered the L2 pipeline at @p when. */
    void onL2Request(unsigned cpu, Addr line, bool prefetch, Cycle when);

    /** L2 lookup hit: tag check done at @p lookup_done, data ready
     *  (after any decompression) at @p ready. */
    void onL2Hit(Addr line, Cycle lookup_done, Cycle ready,
                 bool penalized);

    /** The off-chip request message (enqueued at @p enq) arrived at
     *  the memory controller at @p arrive; the data reply will carry
     *  @p data_segments segments (the compressed size class). */
    void onMemRequestSent(Addr line, Cycle enq, Cycle arrive,
                          unsigned data_segments);

    /** Banked DRAM serviced the read: service ran [svc_start, done). */
    void onDramService(Addr line, Cycle svc_start, Cycle done,
                       bool row_hit);

    /** Fixed-latency DRAM path: service ran [begin, end). */
    void onDramFixed(Addr line, Cycle begin, Cycle end);

    /** The data message landed at the L2 at @p arrival; decompression
     *  (if any) completes at @p decomp_end (== arrival when none). */
    void onL2Fill(Addr line, Cycle arrival, Cycle decomp_end);

    /** Data granted to the requesting L1 at @p at_l1: the journey is
     *  complete — sample histograms and emit trace spans. */
    void onGranted(Addr line, Cycle at_l1);

    /** A prefetch journey ended without a fill (line already present
     *  or budget-dropped). Only closes pure prefetch records. */
    void onPrefetchSquashed(Addr line, Cycle when);

    // ---- reads (safe from parallel lane ticks) ----

    /** Latest journey record for @p line, or nullptr. */
    const MissRecord *find(Addr line) const;

    std::uint64_t recordsCompleted() const { return completed_.value(); }

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

  private:
    /** Close the open frontier as @p leaf up to @p until (no-op when
     *  @p until is not ahead of it) and restart it there. */
    static void seal(MissRecord &r, CpiLeaf leaf, Cycle until);

    /** Sample per-leaf histograms + emit trace spans for @p r. */
    void finish(MissRecord &r);

    double link_rate_;
    bool infinite_link_;

    std::unordered_map<Addr, MissRecord> records_;
    std::uint64_t next_span_id_ = 0;

    Counter completed_;
    Counter pf_squashed_;
    Counter pf_origin_completed_;
    Counter row_hit_fetches_;
    Counter row_miss_fetches_;
    Histogram total_hist_{50.0, 64};
    /** Per-record per-leaf dwell time, for the six journey leaves
     *  (L2Service..DramService in CpiLeaf order). */
    std::vector<Histogram> leaf_hists_;
};

/**
 * Per-core window accounting. The owning core calls beginTick() /
 * endTick() around each tick; beginTick closes the window opened at
 * the previous tick and attributes it per the cause recorded then.
 */
class CpiAccount
{
  public:
    CpiAccount(unsigned cpu, unsigned rob_entries,
               const MissJournal *journal);

    /** Remember the line a dispatched load (ROB @p slot) targets. */
    void
    noteLoad(unsigned slot, Addr line)
    {
        load_lines_[slot] = line;
    }

    /** Line of the load occupying ROB @p slot. */
    Addr loadLine(unsigned slot) const { return load_lines_[slot]; }

    /** Close and attribute the window [previous tick, @p now). */
    void beginTick(Cycle now);

    /** Record this tick's blocking cause for the window it opens.
     *  @p line is the blocking load's line for CpiBlock::L1dMiss. */
    void
    endTick(Cycle now, CpiBlock cause, Addr line)
    {
        (void)now;
        pending_ = cause;
        pending_line_ = line;
    }

    /** End-of-run: attribute the final open window up to @p end. */
    void flush(Cycle end);

    /** Conservation invariant: the leaves sum exactly to the cycles
     *  attributed so far (window origin to the last closed window). */
    bool conserved(std::string &why) const;

    std::uint64_t
    leafCycles(CpiLeaf leaf) const
    {
        return leaves_[static_cast<unsigned>(leaf)].value();
    }

    /** Attributed cycles so far (== sum of the leaves). */
    Cycle attributed() const { return from_ - origin_; }

    /** Info counter (outside the conservation sum): memory-latency
     *  cycles prefetches hid from this core's demand stalls. */
    std::uint64_t pfHiddenCycles() const { return pf_hidden_.value(); }

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

  private:
    /** Attribute [from_, now) to pending_ and advance from_. */
    void close(Cycle now);

    /** Subdivide a blocked-on-load window via the journal. */
    void attributeMiss(Cycle begin, Cycle end, Addr line);

    unsigned cpu_;
    const MissJournal *journal_;
    std::vector<Addr> load_lines_;

    Cycle origin_ = 0; ///< accounting epoch (reset at stats reset)
    Cycle from_ = 0;   ///< open-window start (last tick time)
    CpiBlock pending_ = CpiBlock::Compute;
    Addr pending_line_ = 0;

    Counter leaves_[kCpiLeafCount];
    Counter pf_hidden_;
};

} // namespace cmpsim

#endif // CMPSIM_OBS_CPI_STACK_H
