/**
 * @file
 * Interval time-series sampler (DESIGN.md §9): driven by the event
 * kernel every SystemConfig::sample_interval cycles (CMPSIM_SAMPLE_CYCLES
 * overrides), it snapshots every counter registered in the system's
 * StatRegistry as a per-interval *delta*, plus a set of instantaneous
 * gauges (compression ratio, adaptive-controller counter, ...), and
 * derives the paper's rate metrics (per-core IPC, L1/L2 miss rates,
 * link bytes/cycle, L2 prefetch accuracy) per interval.
 *
 * This is the counter infrastructure runtime-guided prefetch
 * reconfiguration depends on (Prat et al., IPDPS'15) and the raw
 * series representative-interval selection consumes (Bueno et al.):
 * without per-interval data there is no way to see *when* the
 * adaptive controller throttles or a link saturates.
 *
 * The sampler is an observer: it only reads stats, so enabling it
 * cannot change simulated results (the determinism gate runs with it
 * on). Deltas are taken against an internal baseline that
 * CmpSystem::resetAllStats() re-anchors, so the warmup -> measure
 * stat reset cannot produce wrapped (underflowed) deltas.
 */

#ifndef CMPSIM_OBS_INTERVAL_SAMPLER_H
#define CMPSIM_OBS_INTERVAL_SAMPLER_H

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace cmpsim {

/** One sampled interval: [t0, t1) deltas plus gauge values. */
struct SampleRow
{
    Cycle t0 = 0;
    Cycle t1 = 0;
    std::vector<std::uint64_t> counter_deltas; ///< parallel to counterNames()
    std::vector<double> gauges;                ///< parallel to gaugeNames()
};

/** Rate metrics derived from one row (what the figures plot). */
struct DerivedMetrics
{
    double ipc_total = 0.0;
    std::vector<double> ipc_core;
    double l1i_miss_rate = 0.0;
    double l1d_miss_rate = 0.0;
    double l2_miss_rate = 0.0;
    double link_bytes_per_cycle = 0.0;
    double link_utilization = 0.0; ///< bytes/cycle over the pin rate
    double l2pf_accuracy_pct = 0.0;
};

/** Periodic whole-registry snapshotter. */
class IntervalSampler
{
  public:
    /** Shape of the sampled system (for derived metrics). */
    struct Shape
    {
        unsigned cores = 0;
        double link_bytes_per_cycle = 0.0; ///< pin rate (0 = unknown)
    };

    /**
     * @param reg registry to snapshot (must outlive the sampler);
     *        the counter-name set is captured here and fixed
     * @param interval nominal sampling period in cycles
     */
    IntervalSampler(const StatRegistry &reg, Cycle interval,
                    const Shape &shape);

    /** Add an instantaneous gauge sampled with each row. */
    void addGauge(const std::string &name, std::function<double()> fn);

    /** Anchor the baseline at @p now (start of measurement). */
    void begin(Cycle now);

    /** Record the interval [baseline, now) and re-anchor. Intervals
     *  of zero cycles are skipped (nothing can have changed). */
    void sampleAt(Cycle now);

    /** Stats were reset to zero: re-anchor the baseline at @p now so
     *  the next delta is (current - 0), not a wrapped subtraction. */
    void onStatsReset(Cycle now);

    Cycle interval() const { return interval_; }
    const std::vector<std::string> &counterNames() const { return names_; }
    const std::vector<std::string> &gaugeNames() const { return gauge_names_; }
    const std::vector<SampleRow> &rows() const { return rows_; }

    /** Delta of counter @p name in @p row (0 when unknown). */
    std::uint64_t counterDelta(const SampleRow &row,
                               const std::string &name) const;

    /** Rate metrics for @p row. */
    DerivedMetrics derived(const SampleRow &row) const;

    /**
     * CSV: header then one line per row —
     * cycle_start,cycle_end,<derived...>,<gauges...>,<counter deltas...>
     */
    void writeCsv(std::ostream &os) const;

    /** JSON object mirroring the CSV (schema in DESIGN.md §9). */
    void writeJson(std::ostream &os) const;

  private:
    void snapshotInto(std::vector<std::uint64_t> &out) const;

    const StatRegistry &reg_;
    Cycle interval_;
    Shape shape_;

    std::vector<std::string> names_; ///< sorted counter names (fixed)
    std::vector<std::string> gauge_names_;
    std::vector<std::function<double()>> gauge_fns_;

    Cycle baseline_cycle_ = 0;
    std::vector<std::uint64_t> baseline_;
    bool began_ = false;

    std::vector<SampleRow> rows_;
};

} // namespace cmpsim

#endif // CMPSIM_OBS_INTERVAL_SAMPLER_H
