#include "src/obs/trace.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/sim_error.h"
#include "src/obs/json_writer.h"

namespace cmpsim {

namespace detail {
std::atomic<Tracer *> g_tracer{nullptr};
} // namespace detail

namespace {

/** Per-thread track identity for simulated events. */
thread_local unsigned tl_pid = kTraceSimPid;
thread_local unsigned tl_tid = 0;

} // namespace

Tracer::Tracer(const std::string &path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc),
      epoch_(std::chrono::steady_clock::now())
{
    if (!out_.is_open()) {
        throw ConfigError("trace",
                          "cannot open trace file \"" + path +
                              "\" for writing");
    }
    out_ << "[\n";
    processName(kTraceWallPid, "cmpsim wall clock (us)");
    processName(kTraceSimPid, "cmpsim simulation (cycles)");
}

Tracer::~Tracer()
{
    if (armed() == this)
        arm(nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    // A trailing comma after the last event is invalid JSON; the
    // metadata events emitted at construction guarantee at least one
    // event, so closing after "\n]" is always well-formed.
    out_ << "\n]\n";
    out_.flush();
}

void
Tracer::arm(Tracer *t)
{
    detail::g_tracer.store(t, std::memory_order_release);
}

Tracer *
Tracer::armed()
{
    return detail::g_tracer.load(std::memory_order_acquire);
}

std::uint64_t
Tracer::nowWallUs() const
{
    const auto dt = std::chrono::steady_clock::now() - epoch_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(dt)
            .count());
}

void
Tracer::emit(const char *name, char phase, std::uint64_t ts,
             unsigned pid, unsigned tid, std::uint64_t dur,
             bool has_dur, bool instant_scope, TraceArgs args,
             std::uint64_t id, bool has_id)
{
    // One event per line: greppable, and a truncated tail is easy to
    // spot. Built outside the lock; only the write is serialized.
    std::string line;
    line.reserve(128);
    line += "{\"name\":\"";
    line += jsonEscape(name);
    line += "\",\"ph\":\"";
    line += phase;
    line += "\",\"ts\":";
    line += std::to_string(ts);
    if (has_dur) {
        line += ",\"dur\":";
        line += std::to_string(dur);
    }
    if (has_id) {
        line += ",\"id\":";
        line += std::to_string(id);
    }
    line += ",\"pid\":";
    line += std::to_string(pid);
    line += ",\"tid\":";
    line += std::to_string(tid);
    if (instant_scope)
        line += ",\"s\":\"t\""; // thread-scoped instant marker
    if (args.size() != 0) {
        line += ",\"args\":{";
        bool first = true;
        for (const TraceArg &a : args) {
            if (!first)
                line += ",";
            first = false;
            line += "\"";
            line += jsonEscape(a.key);
            line += "\":";
            if (a.is_string) {
                line += "\"";
                line += jsonEscape(a.str);
                line += "\"";
            } else {
                char buf[40];
                std::snprintf(buf, sizeof(buf), "%.17g", a.num);
                line += buf;
            }
        }
        line += "}";
    }
    line += "}";

    std::lock_guard<std::mutex> lock(mutex_);
    if (events_ != 0)
        out_ << ",\n";
    out_ << line;
    ++events_;
}

void
Tracer::instant(const char *name, Cycle cycle, TraceArgs args)
{
    emit(name, 'i', cycle, tl_pid, tl_tid, 0, false, true, args);
}

void
Tracer::completeCycles(const char *name, Cycle start, Cycle end,
                       TraceArgs args)
{
    emit(name, 'X', start, tl_pid, tl_tid,
         end >= start ? end - start : 0, true, false, args);
}

void
Tracer::completeWall(const char *name, std::uint64_t start_us,
                     std::uint64_t end_us, TraceArgs args)
{
    emit(name, 'X', start_us, kTraceWallPid, tl_tid,
         end_us >= start_us ? end_us - start_us : 0, true, false, args);
}

void
Tracer::counter(const char *name, Cycle cycle, TraceArgs args)
{
    emit(name, 'C', cycle, tl_pid, tl_tid, 0, false, false, args);
}

void
Tracer::processName(unsigned pid, const std::string &name)
{
    emit("process_name", 'M', 0, pid, 0, 0, false, false,
         {{"name", name.c_str()}});
}

void
Tracer::threadName(unsigned pid, unsigned tid, const std::string &name)
{
    emit("thread_name", 'M', 0, pid, tid, 0, false, false,
         {{"name", name.c_str()}});
}

void
Tracer::asyncBegin(const char *name, Cycle cycle, std::uint64_t id,
                   TraceArgs args)
{
    emit(name, 'b', cycle, tl_pid, tl_tid, 0, false, false, args, id,
         /*has_id=*/true);
}

void
Tracer::asyncEnd(const char *name, Cycle cycle, std::uint64_t id,
                 TraceArgs args)
{
    emit(name, 'e', cycle, tl_pid, tl_tid, 0, false, false, args, id,
         /*has_id=*/true);
}

TraceThreadScope::TraceThreadScope(unsigned pid, unsigned tid)
    : prev_pid_(tl_pid), prev_tid_(tl_tid)
{
    tl_pid = pid;
    tl_tid = tid;
}

TraceThreadScope::~TraceThreadScope()
{
    tl_pid = prev_pid_;
    tl_tid = prev_tid_;
}

TraceSession::TraceSession(const std::string &path)
{
    std::string target = path;
    if (target.empty()) {
        if (const char *env = std::getenv("CMPSIM_TRACE")) {
            if (*env != '\0')
                target = env;
        }
    }
    if (target.empty())
        return;
    tracer_ = std::make_unique<Tracer>(target);
    Tracer::arm(tracer_.get());
}

TraceSession::~TraceSession()
{
    if (tracer_ != nullptr && Tracer::armed() == tracer_.get())
        Tracer::arm(nullptr);
}

} // namespace cmpsim
