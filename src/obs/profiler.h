/**
 * @file
 * Lightweight scoped wall-time profiler for the simulator's hot paths
 * (DESIGN.md §9). Sites are declared in place:
 *
 *     void L2Cache::lookup(...) {
 *         CMPSIM_PROF_SCOPE("l2.lookup");
 *         ...
 *     }
 *
 * and accumulate (call count, total nanoseconds) into a process-wide
 * registry that the run report serializes, so a BENCH regression can
 * be attributed to "the event kernel got slower" vs "cache lookups
 * got slower" without re-running under an external profiler.
 *
 * Overhead discipline:
 *  - disabled (the default): each scope is one relaxed atomic load
 *    and a predictable branch — cheap enough for the event-kernel
 *    dispatch path (benchmarked in bench/micro_components.cc);
 *  - enabled (CMPSIM_PROF=1): two steady_clock reads per scope plus
 *    two relaxed atomic adds;
 *  - compiled out entirely with -DCMPSIM_PROF_DISABLED (CMake option
 *    CMPSIM_PROF=OFF) for builds that must not carry even the branch.
 *
 * Profiling never feeds back into simulated behaviour: timers only
 * observe wall time, so results are identical with it on or off (the
 * determinism gate runs either way).
 */

#ifndef CMPSIM_OBS_PROFILER_H
#define CMPSIM_OBS_PROFILER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace cmpsim {

/** One instrumented site's accumulated totals. */
struct ProfSite
{
    explicit ProfSite(const char *site_name) : name(site_name)
    {
        profRegisterSite(*this);
    }

    const char *name;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> total_ns{0};
    ProfSite *next = nullptr; ///< intrusive registry list

  private:
    static void profRegisterSite(ProfSite &site);
};

namespace detail {
extern std::atomic<bool> g_prof_enabled;
} // namespace detail

/** Whether scoped timers are currently recording. */
inline bool
profEnabled()
{
    return detail::g_prof_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off (tests; CLI uses profInitFromEnv()). */
void setProfEnabled(bool on);

/** Enable recording when CMPSIM_PROF is set to a non-"0" value. */
void profInitFromEnv();

/** Snapshot of one site for reporting. */
struct ProfSample
{
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
};

/** All sites with at least one recorded call, sorted by name. */
std::vector<ProfSample> profSnapshot();

/** Zero every site's accumulators (test isolation). */
void profReset();

/** RAII timer: charges the enclosing scope's wall time to @p site. */
class ScopedProf
{
  public:
    explicit ScopedProf(ProfSite &site)
        : site_(profEnabled() ? &site : nullptr)
    {
        if (site_ != nullptr)
            t0_ = std::chrono::steady_clock::now();
    }

    ~ScopedProf()
    {
        if (site_ == nullptr)
            return;
        const auto dt = std::chrono::steady_clock::now() - t0_;
        site_->calls.fetch_add(1, std::memory_order_relaxed);
        site_->total_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()),
            std::memory_order_relaxed);
    }

    ScopedProf(const ScopedProf &) = delete;
    ScopedProf &operator=(const ScopedProf &) = delete;

  private:
    ProfSite *site_;
    std::chrono::steady_clock::time_point t0_;
};

#if defined(CMPSIM_PROF_DISABLED)
#define CMPSIM_PROF_SCOPE(name)
#else
#define CMPSIM_PROF_CONCAT2(a, b) a##b
#define CMPSIM_PROF_CONCAT(a, b) CMPSIM_PROF_CONCAT2(a, b)
/**
 * Declare-and-time an instrumented scope. The site object is a
 * function-local static, so registration happens once on first
 * execution (thread-safe via magic statics).
 */
#define CMPSIM_PROF_SCOPE(name)                                       \
    static ::cmpsim::ProfSite CMPSIM_PROF_CONCAT(cmpsim_prof_site_,   \
                                                 __LINE__){name};     \
    ::cmpsim::ScopedProf CMPSIM_PROF_CONCAT(cmpsim_prof_scope_,       \
                                            __LINE__)(                \
        CMPSIM_PROF_CONCAT(cmpsim_prof_site_, __LINE__))
#endif

} // namespace cmpsim

#endif // CMPSIM_OBS_PROFILER_H
