/**
 * @file
 * Structured JSON run reports (DESIGN.md §9): a machine-readable
 * record of one simulation run — config fingerprint, outcome status,
 * headline metrics, every registered counter, histogram summaries
 * with quantiles, wall-clock/heap telemetry, and the profiler's site
 * totals — written by `cmpsim_cli --report out.json` and aggregated
 * per-point by the parallel runner's batch report (CMPSIM_REPORT).
 *
 * The report is the artifact a sweep harness archives next to each
 * run: enough to audit *what* was simulated (fingerprint), *what came
 * out* (counters), and *what it cost* (wall seconds, max RSS, prof
 * sites) without re-parsing human-oriented stdout.
 *
 * Determinism note: the simulated payload (fingerprint, counters,
 * histograms) is deterministic per seed; the telemetry block
 * (wall_seconds, max_rss_kb, prof) is wall-clock by nature and is
 * kept in a separate "telemetry" object so tooling can hash the rest.
 */

#ifndef CMPSIM_OBS_RUN_REPORT_H
#define CMPSIM_OBS_RUN_REPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/profiler.h"

namespace cmpsim {

/** One histogram's summary line-up in a report. */
struct HistogramReport
{
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::uint64_t underflow = 0;
};

/** Everything one run's report serializes. */
struct RunReport
{
    // Identity / provenance.
    std::string benchmark;
    std::uint64_t seed = 0;
    std::uint64_t config_fingerprint = 0; ///< fnv1a(pointSpecBytes)
    std::uint64_t warmup_per_core = 0;
    std::uint64_t measure_per_core = 0;

    // Outcome.
    std::string status = "ok"; ///< "ok" or the SimError kind name
    std::string error;         ///< what() when status != "ok"

    // Headline metrics (zero when the run failed before measuring).
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    double bandwidth_gbps = 0.0;
    double compression_ratio = 1.0;

    // Full stat capture.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<HistogramReport> histograms;

    /** CPI-stack / miss-genealogy counters (CmpSystem::cpiStats()),
     *  captured only when the layer is armed (--cpi-stack /
     *  CMPSIM_CPISTACK); the "cpi_stack" object is omitted otherwise
     *  so unarmed reports are byte-identical to older ones. */
    std::vector<std::pair<std::string, std::uint64_t>> cpi_stack;
    std::vector<HistogramReport> cpi_histograms;

    /** Statistical-sampling summary (config.sampling /
     *  CMPSIM_SAMPLING, DESIGN.md §14), captured only when a plan is
     *  armed; the "sampling" object is omitted otherwise so unsampled
     *  reports are byte-identical to older ones. */
    struct SamplingReport
    {
        bool armed = false;
        std::uint64_t intervals = 0;
        bool stopped_early = false;
        double ff_instructions = 0;
        /** (metric name, per-interval mean/ci95/n) rows. */
        std::vector<std::pair<std::string, SampleSummary>> metrics;
    };
    SamplingReport sampling;

    // Host-side telemetry (not part of the deterministic payload).
    double wall_seconds = 0.0;
    std::uint64_t max_rss_kb = 0;
    std::vector<ProfSample> prof;
};

/** Peak resident set size of this process in KiB (0 if unknown). */
std::uint64_t currentMaxRssKb();

/** Copy every registered counter and histogram into @p report. */
void captureStats(const StatRegistry &reg, RunReport &report);

/** Copy the CPI-stack registry (CmpSystem::cpiStats()) into the
 *  report's cpi_stack section. */
void captureCpiStats(const StatRegistry &reg, RunReport &report);

/** Serialize @p report as a pretty-printed JSON object. */
void writeRunReport(std::ostream &os, const RunReport &report);

} // namespace cmpsim

#endif // CMPSIM_OBS_RUN_REPORT_H
