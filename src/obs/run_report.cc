#include "src/obs/run_report.h"

#include <sys/resource.h>

#include "src/obs/json_writer.h"

namespace cmpsim {

std::uint64_t
currentMaxRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB already.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

void
captureStats(const StatRegistry &reg, RunReport &report)
{
    report.counters.clear();
    for (const std::string &name : reg.counterNames())
        report.counters.emplace_back(name, reg.counter(name));

    report.histograms.clear();
    for (const std::string &name : reg.histogramNames()) {
        const Histogram &h = reg.histogram(name);
        HistogramReport hr;
        hr.name = name;
        hr.count = h.total();
        hr.mean = h.mean();
        hr.p50 = h.quantile(0.50);
        hr.p90 = h.quantile(0.90);
        hr.p99 = h.quantile(0.99);
        hr.underflow = h.underflow();
        report.histograms.push_back(std::move(hr));
    }
}

void
captureCpiStats(const StatRegistry &reg, RunReport &report)
{
    report.cpi_stack.clear();
    for (const std::string &name : reg.counterNames())
        report.cpi_stack.emplace_back(name, reg.counter(name));

    report.cpi_histograms.clear();
    for (const std::string &name : reg.histogramNames()) {
        const Histogram &h = reg.histogram(name);
        HistogramReport hr;
        hr.name = name;
        hr.count = h.total();
        hr.mean = h.mean();
        hr.p50 = h.quantile(0.50);
        hr.p90 = h.quantile(0.90);
        hr.p99 = h.quantile(0.99);
        hr.underflow = h.underflow();
        report.cpi_histograms.push_back(std::move(hr));
    }
}

void
writeRunReport(std::ostream &os, const RunReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.keyValue("schema", "cmpsim.run_report.v1");
    w.keyValue("benchmark", report.benchmark);
    w.keyValue("seed", report.seed);
    w.keyValue("config_fingerprint", report.config_fingerprint);
    w.keyValue("warmup_per_core", report.warmup_per_core);
    w.keyValue("measure_per_core", report.measure_per_core);
    w.keyValue("status", report.status);
    if (!report.error.empty())
        w.keyValue("error", report.error);

    w.beginObject("metrics");
    w.keyValue("cycles", report.cycles);
    w.keyValue("instructions", report.instructions);
    w.keyValue("ipc", report.ipc);
    w.keyValue("bandwidth_gbps", report.bandwidth_gbps);
    w.keyValue("compression_ratio", report.compression_ratio);
    w.end();

    w.beginObject("counters");
    for (const auto &[name, value] : report.counters)
        w.keyValue(name.c_str(), value);
    w.end();

    w.beginArray("histograms");
    for (const HistogramReport &h : report.histograms) {
        w.beginObject();
        w.keyValue("name", h.name);
        w.keyValue("count", h.count);
        w.keyValue("mean", h.mean);
        w.keyValue("p50", h.p50);
        w.keyValue("p90", h.p90);
        w.keyValue("p99", h.p99);
        w.keyValue("underflow", h.underflow);
        w.end();
    }
    w.end();

    if (!report.cpi_stack.empty() || !report.cpi_histograms.empty()) {
        w.beginObject("cpi_stack");
        w.beginObject("counters");
        for (const auto &[name, value] : report.cpi_stack)
            w.keyValue(name.c_str(), value);
        w.end();
        w.beginArray("histograms");
        for (const HistogramReport &h : report.cpi_histograms) {
            w.beginObject();
            w.keyValue("name", h.name);
            w.keyValue("count", h.count);
            w.keyValue("mean", h.mean);
            w.keyValue("p50", h.p50);
            w.keyValue("p90", h.p90);
            w.keyValue("p99", h.p99);
            w.keyValue("underflow", h.underflow);
            w.end();
        }
        w.end();
        w.end();
    }

    if (report.sampling.armed) {
        w.beginObject("sampling");
        w.keyValue("intervals", report.sampling.intervals);
        w.keyValue("stopped_early",
                   std::uint64_t(report.sampling.stopped_early ? 1 : 0));
        w.keyValue("ff_instructions", report.sampling.ff_instructions);
        w.beginArray("metrics");
        for (const auto &[name, s] : report.sampling.metrics) {
            w.beginObject();
            w.keyValue("name", name);
            w.keyValue("mean", s.mean);
            w.keyValue("ci95", s.ci95);
            w.keyValue("n", static_cast<std::uint64_t>(s.n));
            w.end();
        }
        w.end();
        w.end();
    }

    w.beginObject("telemetry");
    w.keyValue("wall_seconds", report.wall_seconds);
    w.keyValue("max_rss_kb", report.max_rss_kb);
    w.beginArray("prof");
    for (const ProfSample &p : report.prof) {
        w.beginObject();
        w.keyValue("site", p.name);
        w.keyValue("calls", p.calls);
        w.keyValue("total_ns", p.total_ns);
        w.end();
    }
    w.end();
    w.end();

    w.end();
    os << "\n";
}

} // namespace cmpsim
