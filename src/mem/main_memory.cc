#include "src/mem/main_memory.h"

#include "src/dram/dram_backend.h"
#include "src/obs/cpi_stack.h"

namespace cmpsim {

MainMemory::MainMemory(EventQueue &eq, ValueStore &values,
                       const MemoryParams &params)
    : eq_(eq), values_(values), params_(params),
      link_(eq, params.link_bytes_per_cycle, params.infinite_bandwidth)
{
    if (params_.dram.backend == DramBackendKind::Banked)
        dram_ = std::make_unique<DramBackend>(eq, params_.dram);
}

MainMemory::~MainMemory() = default;

unsigned
MainMemory::dataSegments(Addr line_addr)
{
    return params_.link_compression ? values_.segments(line_addr)
                                    : kSegmentsPerLine;
}

void
MainMemory::fetchLine(Addr line_addr, Cycle when, bool prefetch,
                      FetchCallback done, ckpt::Tag done_tag)
{
    ++reads_;
    ++header_flits_;
    const LinkClass cls =
        prefetch ? LinkClass::Prefetch : LinkClass::Demand;

    // Request message toward memory, then DRAM, then the data message
    // back (fetchStage2 -> fetchSendData -> fetchDeliver). The data
    // message enters the link queue only when DRAM has produced it.
    // Lines are stored in memory in the form the chip sent them (ECC
    // meta-bit trick), so the banked backend's burst count follows the
    // stored segment count.
    ckpt::Tag deliver_tag =
        ckpt::tag(ckpt::kMemReqArrived, line_addr, when,
                  static_cast<std::uint64_t>(cls), 0, done_tag);
    link_.send(kMessageHeaderBytes, cls, when,
               [this, line_addr, when, cls, done = std::move(done),
                done_tag =
                    std::move(done_tag)](Cycle req_arrives) mutable {
                   fetchStage2(line_addr, when, cls, std::move(done),
                               std::move(done_tag), req_arrives);
               },
               std::move(deliver_tag));
}

void
MainMemory::fetchStage2(Addr line_addr, Cycle when, LinkClass cls,
                        FetchCallback done, ckpt::Tag done_tag,
                        Cycle req_arrives)
{
    const unsigned segments = dataSegments(line_addr);
    if (journal_ != nullptr)
        journal_->onMemRequestSent(line_addr, when, req_arrives, segments);
    ckpt::Tag send_tag =
        ckpt::tag(ckpt::kMemSendData, when,
                  static_cast<std::uint64_t>(cls), segments, 0,
                  done_tag);
    auto send_data = [this, when, cls, segments, done = std::move(done),
                      done_tag =
                          std::move(done_tag)](Cycle dram_done) mutable {
        fetchSendData(when, cls, segments, std::move(done),
                      std::move(done_tag), dram_done);
    };
    if (dram_) {
        dram_->read(line_addr, segments, cls == LinkClass::Prefetch,
                    req_arrives, std::move(send_data),
                    std::move(send_tag));
    } else {
        if (journal_ != nullptr) {
            journal_->onDramFixed(line_addr, req_arrives,
                                  req_arrives + params_.dram_latency);
        }
        send_data(req_arrives + params_.dram_latency);
    }
}

void
MainMemory::fetchSendData(Cycle when, LinkClass cls, unsigned segments,
                          FetchCallback done, ckpt::Tag done_tag,
                          Cycle dram_done)
{
    ++header_flits_;
    data_flits_ += segments;
    const unsigned bytes = kMessageHeaderBytes + segments * kSegmentBytes;
    ckpt::Tag deliver_tag = ckpt::tag(ckpt::kMemDataDelivered, when, 0,
                                      0, 0, std::move(done_tag));
    link_.send(bytes, cls, dram_done,
               [this, when, done = std::move(done)](Cycle at) {
                   fetchDeliver(when, done, at);
               },
               std::move(deliver_tag));
}

void
MainMemory::fetchDeliver(Cycle when, const FetchCallback &done, Cycle at)
{
    read_latency_.sample(static_cast<double>(at - when));
    read_latency_hist_.sample(static_cast<double>(at - when));
    done(at);
}

void
MainMemory::writebackLine(Addr line_addr, Cycle when)
{
    ++writebacks_;
    ++header_flits_;
    const unsigned segments = dataSegments(line_addr);
    data_flits_ += segments;
    const unsigned bytes =
        kMessageHeaderBytes + segments * kSegmentBytes;
    // Fixed backend: writebacks vanish once across the link. Banked:
    // they enter the controller's write queue on arrival and occupy
    // bank/bus time when drained.
    PriorityLink::Deliver deliver = nullptr;
    ckpt::Tag deliver_tag;
    if (dram_) {
        deliver = [this, line_addr, segments](Cycle at) {
            dram_->write(line_addr, segments, at);
        };
        deliver_tag = ckpt::tag(ckpt::kMemDramWrite, line_addr, segments);
    }
    link_.send(bytes, LinkClass::Writeback, when, std::move(deliver),
               std::move(deliver_tag));
}

void
MainMemory::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".reads", &reads_);
    reg.registerCounter(prefix + ".writebacks", &writebacks_);
    reg.registerCounter(prefix + ".data_flits", &data_flits_);
    reg.registerCounter(prefix + ".header_flits", &header_flits_);
    reg.registerAverage(prefix + ".read_latency", &read_latency_);
    reg.registerHistogram(prefix + ".read_latency_hist",
                          &read_latency_hist_);
    link_.registerStats(reg, prefix + ".link");
    if (dram_)
        dram_->registerStats(reg, prefix + ".dram");
}

void
MainMemory::registerAudits(InvariantRegistry &reg,
                           const std::string &name)
{
    if (dram_)
        dram_->registerAudits(reg, name + ".dram");
}

void
MainMemory::resetStats()
{
    reads_.reset();
    writebacks_.reset();
    data_flits_.reset();
    header_flits_.reset();
    read_latency_.reset();
    read_latency_hist_.reset();
    link_.resetStats();
    if (dram_)
        dram_->resetStats();
}

} // namespace cmpsim
