/**
 * @file
 * Event-driven off-chip link transmitter with priority classes.
 *
 * The pin interface transmits one message at a time at a fixed
 * byte/cycle rate. Demand fetches outrank prefetches, which outrank
 * writebacks — the arbitration every real memory controller applies —
 * so a 25-deep prefetch burst delays later prefetches rather than
 * stalling the demand miss behind it. Contention still degrades
 * performance once total traffic approaches the pin rate (the paper's
 * Section 5.1 effect); priorities only decide who absorbs the delay.
 *
 * In infinite-bandwidth mode (the paper's bandwidth-*demand*
 * methodology, Section 4.2) messages never queue but bytes are still
 * counted.
 */

#ifndef CMPSIM_MEM_PRIORITY_LINK_H
#define CMPSIM_MEM_PRIORITY_LINK_H

#include <array>
#include <deque>
#include <functional>
#include <string>

#include "src/ckpt/cont_tag.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

/** Arbitration class of an off-chip message. */
enum class LinkClass : unsigned
{
    Demand = 0,    ///< critical-path fetches
    Prefetch = 1,  ///< speculative fetches
    Writeback = 2, ///< dirty evictions (never latency-critical)
};

inline constexpr unsigned kLinkClasses = 3;

/** One shared, priority-arbitrated off-chip channel. */
class PriorityLink
{
  public:
    using Deliver = std::function<void(Cycle)>;

    /**
     * @param bytes_per_cycle pin rate (20 GB/s @ 5 GHz = 4)
     * @param infinite measure demand without queuing
     */
    PriorityLink(EventQueue &eq, double bytes_per_cycle, bool infinite);

    /**
     * Queue a message of @p bytes, ready to transmit at @p ready.
     * @p deliver runs at the cycle the last byte lands (may be empty).
     * @p deliver_tag is @p deliver's serializable description for
     * checkpointing (empty unless checkpoint tagging is armed).
     */
    void send(unsigned bytes, LinkClass cls, Cycle ready,
              Deliver deliver, ckpt::Tag deliver_tag = {});

    std::uint64_t totalBytes() const { return total_bytes_.value(); }
    std::uint64_t classBytes(LinkClass c) const
    {
        return class_bytes_[static_cast<unsigned>(c)].value();
    }
    std::uint64_t transfers() const { return transfers_.value(); }

    // --- byte-conservation accounting (audit subsystem) ----------
    // Invariant: totalBytes() + pendingBytesAtReset() ==
    //            deliveredBytes() + inflightBytes() + queuedBytes().

    /** Bytes whose transfer has completed (last byte landed). */
    std::uint64_t deliveredBytes() const { return delivered_bytes_.value(); }

    /** Bytes of the transfer currently occupying the channel. */
    std::uint64_t inflightBytes() const { return inflight_bytes_; }

    /** Bytes sitting in the class queues, not yet transmitting. */
    std::uint64_t queuedBytes() const;

    /** Bytes that were in flight or queued when stats were last
     *  reset (so conservation holds across resetStats()). */
    std::uint64_t pendingBytesAtReset() const { return pending_at_reset_; }
    double meanQueueDelay() const { return queue_delay_.mean(); }
    double rate() const { return rate_; }
    bool infinite() const { return infinite_; }

    /** Messages waiting (all classes), for tests. */
    std::size_t backlog() const;

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

  private:
    friend class CheckpointCodec; // serializes queues_/in-flight state

    struct Message
    {
        unsigned bytes;
        Cycle ready;
        Deliver deliver;
        ckpt::Tag tag; ///< serializable description of deliver
    };

    /** Start the next transmission if the channel is idle. */
    void pump();

    /** End-of-transfer bookkeeping + delivery (the completion event's
     *  body, named so a restored checkpoint can rebuild the event). */
    void completeTransfer(Deliver deliver, Cycle done, unsigned bytes);

    /** Serialization time for @p bytes starting at @p start. */
    Cycle
    endOfTransfer(double start, unsigned bytes) const
    {
        const double end = start + static_cast<double>(bytes) / rate_;
        auto c = static_cast<Cycle>(end);
        if (static_cast<double>(c) < end)
            ++c;
        return c;
    }

    EventQueue &eq_;
    double rate_;
    bool infinite_;

    std::array<std::deque<Message>, kLinkClasses> queues_;
    bool busy_ = false;
    double cursor_ = 0.0; ///< fractional end of the last transmission

    Counter total_bytes_;
    std::array<Counter, kLinkClasses> class_bytes_;
    Counter transfers_;
    Counter delivered_bytes_;
    std::uint64_t inflight_bytes_ = 0;
    std::uint64_t pending_at_reset_ = 0;
    Average queue_delay_;
    /** Queue-delay distribution: 64 buckets of 10 cycles. The mean
     *  alone hides the bimodal idle-link/saturated-link split the
     *  paper's bandwidth sweep produces. */
    Histogram queue_delay_hist_{10.0, 64};
};

} // namespace cmpsim

#endif // CMPSIM_MEM_PRIORITY_LINK_H
