#include "src/mem/priority_link.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

PriorityLink::PriorityLink(EventQueue &eq, double bytes_per_cycle,
                           bool infinite)
    : eq_(eq), rate_(bytes_per_cycle), infinite_(infinite)
{
    cmpsim_assert(bytes_per_cycle > 0);
}

void
PriorityLink::send(unsigned bytes, LinkClass cls, Cycle ready,
                   Deliver deliver, ckpt::Tag deliver_tag)
{
    faultSite("link.transfer");
    // Stamp with the current cycle, not `ready` (which may lie in the
    // future), so the track's timestamps stay monotone.
    traceInstant("link.transfer", eq_.now(),
                 {{"bytes", std::uint64_t{bytes}},
                  {"class", cls == LinkClass::Demand     ? "demand"
                            : cls == LinkClass::Prefetch ? "prefetch"
                                                         : "writeback"}});
    total_bytes_ += bytes;
    class_bytes_[static_cast<unsigned>(cls)] += bytes;
    ++transfers_;

    if (infinite_) {
        // No queuing: only the serialization time applies. Bytes count
        // as delivered immediately — nothing ever occupies the channel.
        delivered_bytes_ += bytes;
        const Cycle done =
            endOfTransfer(static_cast<double>(ready), bytes);
        queue_delay_.sample(0.0);
        queue_delay_hist_.sample(0.0);
        if (deliver) {
            eq_.schedule(done,
                         [deliver = std::move(deliver), done] {
                             deliver(done);
                         },
                         ckpt::tag(ckpt::kDoneAt, done, 0, 0, 0,
                                   std::move(deliver_tag)));
        }
        return;
    }

    queues_[static_cast<unsigned>(cls)].push_back(Message{
        bytes, ready, std::move(deliver), std::move(deliver_tag)});
    if (!busy_) {
        // Kick the pump at the message's ready time (or now).
        const Cycle at = std::max(ready, eq_.now());
        eq_.schedule(at, [this] { pump(); },
                     ckpt::tag(ckpt::kLinkPump));
    }
}

std::size_t
PriorityLink::backlog() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

std::uint64_t
PriorityLink::queuedBytes() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        for (const Message &m : q)
            n += m.bytes;
    return n;
}

void
PriorityLink::pump()
{
    if (busy_)
        return;

    const Cycle now = eq_.now();

    // Highest-priority message that is ready (FIFO within a class,
    // but a ready message may overtake a not-yet-ready one). A full
    // write buffer gets promoted: real controllers must drain
    // writebacks before the buffer backs up into the cache.
    constexpr std::size_t kWbHighWater = 16;
    std::deque<Message> *queue = nullptr;
    std::size_t index = 0;
    Cycle earliest_future = kCycleNever;

    auto scan = [&](std::deque<Message> &q) {
        for (std::size_t i = 0; i < q.size(); ++i) {
            if (q[i].ready <= now) {
                queue = &q;
                index = i;
                return true;
            }
            earliest_future = std::min(earliest_future, q[i].ready);
        }
        return false;
    };

    auto &wb_queue =
        queues_[static_cast<unsigned>(LinkClass::Writeback)];
    if (wb_queue.size() > kWbHighWater)
        scan(wb_queue);
    for (auto &q : queues_) {
        if (queue)
            break;
        scan(q);
    }

    if (queue == nullptr) {
        if (earliest_future != kCycleNever)
            eq_.schedule(earliest_future, [this] { pump(); },
                         ckpt::tag(ckpt::kLinkPump));
        return;
    }

    Message msg = std::move((*queue)[index]);
    queue->erase(queue->begin() + static_cast<std::ptrdiff_t>(index));

    queue_delay_.sample(static_cast<double>(now - msg.ready));
    queue_delay_hist_.sample(static_cast<double>(now - msg.ready));

    const double start =
        std::max(cursor_, static_cast<double>(now));
    const Cycle done = endOfTransfer(start, msg.bytes);
    cursor_ = start + static_cast<double>(msg.bytes) / rate_;

    busy_ = true;
    inflight_bytes_ = msg.bytes;
    ckpt::Tag ev_tag = ckpt::tag(ckpt::kLinkInflight, msg.bytes, done,
                                 0, 0, std::move(msg.tag));
    eq_.schedule(done,
                 [this, deliver = std::move(msg.deliver), done,
                  bytes = msg.bytes]() mutable {
                     completeTransfer(std::move(deliver), done, bytes);
                 },
                 std::move(ev_tag));
}

void
PriorityLink::completeTransfer(Deliver deliver, Cycle done,
                               unsigned bytes)
{
    busy_ = false;
    inflight_bytes_ = 0;
    delivered_bytes_ += bytes;
    if (deliver)
        deliver(done);
    pump();
}

void
PriorityLink::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".bytes", &total_bytes_);
    reg.registerCounter(prefix + ".demand_bytes",
                        &class_bytes_[0]);
    reg.registerCounter(prefix + ".prefetch_bytes",
                        &class_bytes_[1]);
    reg.registerCounter(prefix + ".writeback_bytes",
                        &class_bytes_[2]);
    reg.registerCounter(prefix + ".transfers", &transfers_);
    reg.registerAverage(prefix + ".queue_delay", &queue_delay_);
    reg.registerHistogram(prefix + ".queue_delay_hist",
                          &queue_delay_hist_);
}

void
PriorityLink::resetStats()
{
    total_bytes_.reset();
    for (auto &c : class_bytes_)
        c.reset();
    transfers_.reset();
    queue_delay_.reset();
    queue_delay_hist_.reset();
    delivered_bytes_.reset();
    // Messages still queued or on the channel were requested before the
    // reset; remember them so byte conservation holds afterwards.
    pending_at_reset_ = inflight_bytes_ + queuedBytes();
}

} // namespace cmpsim
