/**
 * @file
 * Backing store for the value contents of every simulated line.
 *
 * cmpsim keeps one authoritative copy of each line's bytes (the caches
 * move metadata, not payloads) and memoizes the FPC-compressed segment
 * count per line, invalidating it on writes. This is a simulator
 * convenience, not an architectural statement: stores update values
 * immediately while the timing model still charges write-back traffic,
 * so compressed sizes always reflect current data.
 */

#ifndef CMPSIM_MEM_VALUE_STORE_H
#define CMPSIM_MEM_VALUE_STORE_H

#include <cstdint>
#include <unordered_map>

#include "src/common/line_data.h"
#include "src/common/types.h"
#include "src/compression/compressor.h"

namespace cmpsim {

/** Line-value owner + compressed-size memo. */
class ValueStore
{
  public:
    /** @param compressor sizing algorithm; must outlive the store. */
    explicit ValueStore(const Compressor &compressor)
        : compressor_(compressor)
    {
    }

    /** True when @p addr's line has been given a value. */
    bool
    hasLine(Addr addr) const
    {
        return lines_.count(lineAddr(addr)) != 0;
    }

    /**
     * Read the line containing @p addr; absent lines read as zero
     * (zero-fill semantics, like untouched DRAM in the paper's
     * functional simulator).
     */
    const LineData &
    line(Addr addr) const
    {
        static const LineData zero{};
        auto it = lines_.find(lineAddr(addr));
        return it == lines_.end() ? zero : it->second.data;
    }

    /** Replace the whole line containing @p addr. */
    void
    setLine(Addr addr, const LineData &data)
    {
        auto &e = lines_[lineAddr(addr)];
        e.data = data;
        e.segments_valid = false;
    }

    /** Write one 32-bit word at byte offset @p offset within the line. */
    void
    writeWord(Addr addr, std::uint32_t value)
    {
        auto &e = lines_[lineAddr(addr)];
        setLineWord(e.data, lineOffset(addr) / 4, value);
        e.segments_valid = false;
    }

    /**
     * Compressed size, in 8-byte segments, of the line containing
     * @p addr under the store's compressor. Memoized per line.
     */
    unsigned
    segments(Addr addr)
    {
        auto it = lines_.find(lineAddr(addr));
        if (it == lines_.end())
            return zero_segments();
        auto &e = it->second;
        if (!e.segments_valid) {
            e.segments = compressor_.compressedSegments(e.data);
            e.segments_valid = true;
        }
        return e.segments;
    }

    std::size_t lineCount() const { return lines_.size(); }

    const Compressor &compressor() const { return compressor_; }

  private:
    friend class CheckpointCodec; // serializes the line map

    struct Entry
    {
        LineData data{};
        unsigned segments = 0;
        bool segments_valid = false;
    };

    unsigned
    zero_segments()
    {
        if (zero_segments_ == 0)
            zero_segments_ = compressor_.compressedSegments(LineData{});
        return zero_segments_;
    }

    const Compressor &compressor_;
    std::unordered_map<Addr, Entry> lines_;
    unsigned zero_segments_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_MEM_VALUE_STORE_H
