/**
 * @file
 * Backing store for the value contents of every simulated line.
 *
 * cmpsim keeps one authoritative copy of each line's bytes (the caches
 * move metadata, not payloads) and memoizes the FPC-compressed segment
 * count per line, invalidating it on writes. This is a simulator
 * convenience, not an architectural statement: stores update values
 * immediately while the timing model still charges write-back traffic,
 * so compressed sizes always reflect current data.
 */

#ifndef CMPSIM_MEM_VALUE_STORE_H
#define CMPSIM_MEM_VALUE_STORE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/line_data.h"
#include "src/common/log.h"
#include "src/common/types.h"
#include "src/compression/compressor.h"

namespace cmpsim {

/** Line-value owner + compressed-size memo. */
class ValueStore
{
  public:
    /** @param compressor sizing algorithm; must outlive the store. */
    explicit ValueStore(const Compressor &compressor)
        : compressor_(compressor)
    {
    }

    /** True when @p addr's line has been given a value. */
    bool
    hasLine(Addr addr) const
    {
        return findCached(lineAddr(addr)) != nullptr;
    }

    /**
     * Read the line containing @p addr; absent lines read as zero
     * (zero-fill semantics, like untouched DRAM in the paper's
     * functional simulator).
     */
    const LineData &
    line(Addr addr) const
    {
        static const LineData zero{};
        const Entry *e = findCached(lineAddr(addr));
        return e == nullptr ? zero : e->data;
    }

    /** Replace the whole line containing @p addr. */
    void
    setLine(Addr addr, const LineData &data)
    {
        if (journaling_)
            journal_.push_back({addr, data, 0, true});
        Entry &e = ensure(lineAddr(addr));
        e.data = data;
        e.segments_valid = false;
    }

    /** Write one 32-bit word at byte offset @p offset within the line. */
    void
    writeWord(Addr addr, std::uint32_t value)
    {
        if (journaling_) {
            journal_.push_back({addr, LineData{}, value, false});
        }
        Entry &e = ensure(lineAddr(addr));
        setLineWord(e.data, lineOffset(addr) / 4, value);
        e.segments_valid = false;
    }

    /** One recorded mutation (lockstep skip sharing, DESIGN.md §14). */
    struct Op
    {
        Addr addr;
        LineData data;       ///< whole-line payload (whole_line only)
        std::uint32_t word;  ///< store value (word writes only)
        bool whole_line;
    };

    /** Start recording every setLine()/writeWord() into a journal.
     *  Replaying the journal through applyOps() reproduces this
     *  store's mutations on a lockstep twin whose workload position
     *  matches — the follower half of shared-prefix fast-forward. */
    void
    startJournal()
    {
        journal_.clear();
        journaling_ = true;
    }

    /** Stop recording and hand the journal to the caller. */
    std::vector<Op>
    takeJournal()
    {
        journaling_ = false;
        return std::move(journal_);
    }

    /** Replay a journal recorded by a lockstep twin, in order. */
    void
    applyOps(const std::vector<Op> &ops)
    {
        cmpsim_assert(!journaling_);
        for (const Op &op : ops) {
            if (op.whole_line)
                setLine(op.addr, op.data);
            else
                writeWord(op.addr, op.word);
        }
    }

    /**
     * Compressed size, in 8-byte segments, of the line containing
     * @p addr under the store's compressor. Memoized per line.
     */
    unsigned
    segments(Addr addr)
    {
        Entry *e = findCached(lineAddr(addr));
        if (e == nullptr)
            return zero_segments();
        if (!e->segments_valid) {
            e->segments = compressor_.compressedSegments(e->data);
            e->segments_valid = true;
        }
        return e->segments;
    }

    std::size_t lineCount() const { return lines_.size(); }

    const Compressor &compressor() const { return compressor_; }

  private:
    friend class CheckpointCodec; // serializes the line map

    struct Entry
    {
        LineData data{};
        unsigned segments = 0;
        bool segments_valid = false;
    };

    unsigned
    zero_segments()
    {
        if (zero_segments_ == 0)
            zero_segments_ = compressor_.compressedSegments(LineData{});
        return zero_segments_;
    }

    /**
     * Look up @p line through a small direct-mapped filter of
     * known-present lines. Every functionally executed data access
     * probes the store (touchLine, writeWord, fill-path reads); with
     * hundreds of thousands of resident lines each probe is a couple
     * of cache misses in the hash table, while the filter catches the
     * heavy reuse of record/stream/hot lines. Caching only positives
     * keeps it exact: lines are never erased outside restore (which
     * calls dropFilter()), so a cached node pointer — stable in
     * unordered_map — never goes stale.
     */
    Entry *
    findCached(Addr line) const
    {
        const std::size_t slot = (line >> 6) & (kFilterSlots - 1);
        if (filter_line_[slot] == line)
            return filter_entry_[slot];
        auto it = lines_.find(line);
        if (it == lines_.end())
            return nullptr;
        filter_line_[slot] = line;
        filter_entry_[slot] =
            const_cast<Entry *>(&it->second);
        return filter_entry_[slot];
    }

    /** Find-or-insert @p line, keeping the filter coherent. */
    Entry &
    ensure(Addr line)
    {
        if (Entry *e = findCached(line))
            return *e;
        Entry &e = lines_[line];
        const std::size_t slot = (line >> 6) & (kFilterSlots - 1);
        filter_line_[slot] = line;
        filter_entry_[slot] = &e;
        return e;
    }

    /** Invalidate the filter after lines_ is rebuilt (ckpt restore). */
    void
    dropFilter()
    {
        for (std::size_t i = 0; i < kFilterSlots; ++i) {
            filter_line_[i] = kNoLine;
            filter_entry_[i] = nullptr;
        }
    }

    static constexpr std::size_t kFilterSlots = 8;
    /** Line addresses are 64-byte aligned, so all-ones never occurs. */
    static constexpr Addr kNoLine = ~static_cast<Addr>(0);

    const Compressor &compressor_;
    std::unordered_map<Addr, Entry> lines_;
    bool journaling_ = false;
    std::vector<Op> journal_;
    unsigned zero_segments_ = 0;
    mutable Addr filter_line_[kFilterSlots] = {
        kNoLine, kNoLine, kNoLine, kNoLine,
        kNoLine, kNoLine, kNoLine, kNoLine};
    mutable Entry *filter_entry_[kFilterSlots] = {};
};

} // namespace cmpsim

#endif // CMPSIM_MEM_VALUE_STORE_H
