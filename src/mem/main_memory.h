/**
 * @file
 * Off-chip memory subsystem: the priority-arbitrated pin link, the
 * memory controller and the DRAM array, matching the paper's memory
 * interface (Section 2): 400-cycle DRAM access, 20 GB/s chip-to-memory
 * bandwidth, variable-length compressed message formats when link
 * compression is enabled, and lines stored in memory in the form the
 * chip sent them (the ECC meta-bit trick), which our value-store model
 * gives us for free because both sides use the same compressor.
 *
 * Message framing: every message carries one 8-byte header flit; data
 * messages add one 8-byte flit per stored segment (1-8 compressed,
 * 8 uncompressed).
 */

#ifndef CMPSIM_MEM_MAIN_MEMORY_H
#define CMPSIM_MEM_MAIN_MEMORY_H

#include <functional>
#include <memory>
#include <string>

#include "src/ckpt/cont_tag.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/dram/dram_params.h"
#include "src/mem/priority_link.h"
#include "src/mem/value_store.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

class DramBackend;
class InvariantRegistry;
class MissJournal;

/** Configuration of the off-chip memory path. */
struct MemoryParams
{
    /** DRAM access latency in cycles (row + column + controller). */
    Cycle dram_latency = 400;

    /** Pin bandwidth in bytes per core cycle (20 GB/s @ 5 GHz = 4). */
    double link_bytes_per_cycle = 4.0;

    /** Measure demand: remove queuing from the link. */
    bool infinite_bandwidth = false;

    /** Compress data payloads on the link (paper's link compression). */
    bool link_compression = false;

    /** Memory backend behind the link: the paper-validated fixed
     *  dram_latency (default) or the banked timing model. */
    DramTimingParams dram;
};

/** DRAM + controller + pin link. */
class MainMemory
{
  public:
    using FetchCallback = std::function<void(Cycle)>;

    MainMemory(EventQueue &eq, ValueStore &values,
               const MemoryParams &params);
    ~MainMemory();

    /**
     * Fetch the line at @p line_addr; @p done runs at the cycle the
     * full data message has crossed the link onto the chip.
     *
     * @param when cycle the request message is ready to leave the chip
     * @param prefetch arbitrate below demand fetches and writebacks
     * @param done_tag serializable description of @p done for
     *        checkpointing (empty unless checkpoint tagging is armed)
     */
    void fetchLine(Addr line_addr, Cycle when, bool prefetch,
                   FetchCallback done, ckpt::Tag done_tag = {});

    /** Write the line at @p line_addr back to memory (no response). */
    void writebackLine(Addr line_addr, Cycle when);

    /** Pin-interface accounting. */
    const PriorityLink &link() const { return link_; }
    PriorityLink &link() { return link_; }

    /** Banked DRAM backend, or nullptr on the fixed-latency path. */
    DramBackend *dram() { return dram_.get(); }
    const DramBackend *dram() const { return dram_.get(); }

    /** Wire the (opt-in) miss-genealogy journal; nullptr disarms. */
    void setJournal(MissJournal *j) { journal_ = j; }

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    std::uint64_t dataFlits() const { return data_flits_.value(); }
    std::uint64_t headerFlits() const { return header_flits_.value(); }

    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** Register backend audits (no-op on the fixed path, which has no
     *  outstanding-request state to conserve). */
    void registerAudits(InvariantRegistry &reg, const std::string &name);

    void resetStats();

    const MemoryParams &params() const { return params_; }

  private:
    friend class CheckpointCodec; // rebuilds the fetch-stage closures

    /** Payload segments for a data message for @p line_addr. */
    unsigned dataSegments(Addr line_addr);

    // The fetch pipeline's continuations, named (instead of nested
    // lambdas) so a restored checkpoint can rebuild a pending fetch at
    // any stage from its continuation tag.

    /** Request message arrived at the controller: start DRAM (or the
     *  fixed latency) and arrange the data message back. */
    void fetchStage2(Addr line_addr, Cycle when, LinkClass cls,
                     FetchCallback done, ckpt::Tag done_tag,
                     Cycle req_arrives);

    /** DRAM produced the data: queue the data message onto the link. */
    void fetchSendData(Cycle when, LinkClass cls, unsigned segments,
                       FetchCallback done, ckpt::Tag done_tag,
                       Cycle dram_done);

    /** Data message landed on-chip: sample latency, complete. */
    void fetchDeliver(Cycle when, const FetchCallback &done, Cycle at);

    EventQueue &eq_;
    ValueStore &values_;
    MemoryParams params_;
    PriorityLink link_;
    std::unique_ptr<DramBackend> dram_; ///< null when backend == Fixed
    MissJournal *journal_ = nullptr;

    Counter reads_;
    Counter writebacks_;
    Counter data_flits_;
    Counter header_flits_;
    Average read_latency_;
    /** Read-latency distribution: 64 buckets of 50 cycles covers the
     *  400-cycle DRAM floor through heavy link queuing. */
    Histogram read_latency_hist_{50.0, 64};
};

} // namespace cmpsim

#endif // CMPSIM_MEM_MAIN_MEMORY_H
