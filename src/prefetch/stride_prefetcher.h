/**
 * @file
 * Stride-based hardware prefetcher modeled on the IBM Power4/Power5
 * implementation the paper uses (Section 2, Table 1):
 *
 *  - three 32-entry filter tables: positive unit stride, negative unit
 *    stride, and non-unit stride;
 *  - a filter entry that observes 4 fixed-stride misses allocates one
 *    of 8 stream-table entries;
 *  - on allocation the stream launches a burst of startup prefetches
 *    (6 for L1 prefetchers, 25 for L2 prefetchers, "at most" under the
 *    adaptive scheme);
 *  - thereafter each use of a prefetched block advances the stream by
 *    one line, maintaining the startup depth ahead of the demand
 *    stream.
 *
 * The prefetcher sees only miss/use addresses (line granularity) —
 * exactly the information the hardware has.
 */

#ifndef CMPSIM_PREFETCH_STRIDE_PREFETCHER_H
#define CMPSIM_PREFETCH_STRIDE_PREFETCHER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace cmpsim {

/** Static configuration of one prefetcher instance. */
struct PrefetcherParams
{
    /** Entries per filter table (three tables). */
    unsigned filter_entries = 32;

    /** Stream-table entries. */
    unsigned stream_entries = 8;

    /** Fixed-stride misses required to allocate a stream. */
    unsigned train_count = 4;

    /** Startup prefetches per new stream (6 for L1, 25 for L2). */
    unsigned startup_prefetches = 6;

    /** Largest |stride| (in lines) the non-unit table learns. */
    int max_stride = 32;

    /**
     * Lines per OS page (0 disables). Hardware prefetchers operate on
     * physical addresses and cannot follow a stream across a page
     * boundary, so bursts and advances stop at page edges (Power4
     * behaviour). 8 KB pages = 128 lines.
     */
    std::uint64_t page_lines = 128;
};

/** One Power4-style stride prefetch engine. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherParams &params);

    /**
     * Observe a demand miss at line address @p line_addr.
     * @param startup_limit at most this many startup prefetches for a
     *        newly allocated stream (the adaptive counter value);
     *        0 disables stream allocation and prefetch issue.
     * @return line addresses to prefetch now.
     */
    std::vector<Addr> observeMiss(Addr line_addr, unsigned startup_limit);

    /**
     * Observe the first demand use of a prefetched block (a "prefetch
     * hit"); the owning stream advances one line.
     * @return line addresses to prefetch now.
     */
    std::vector<Addr> observeUse(Addr line_addr, unsigned startup_limit);

    const PrefetcherParams &params() const { return params_; }

    std::uint64_t streamsAllocated() const { return streams_alloc_.value(); }
    std::uint64_t prefetchesGenerated() const { return generated_.value(); }

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

    /** Drop all learned state (filter and stream tables). */
    void clear();

  private:
    friend class CheckpointCodec; // serializes filter/stream tables

    struct FilterEntry
    {
        std::int64_t last_line = 0;
        std::int64_t stride = 0; // +1 / -1 / non-unit
        unsigned count = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    struct StreamEntry
    {
        std::int64_t next_pf = 0;      // next line to prefetch
        std::int64_t stride = 0;
        std::int64_t last_demand = 0;  // stream head (demand side)
        std::uint64_t lru = 0;
        bool valid = false;
    };

    using FilterTable = std::vector<FilterEntry>;

    /** Match+advance in one table; returns matched entry or nullptr. */
    FilterEntry *matchFilter(FilterTable &table, std::int64_t line,
                             std::int64_t stride);

    /** Allocate (LRU) a filter entry. */
    void allocFilter(FilterTable &table, std::int64_t line,
                     std::int64_t stride, unsigned count);

    /** Allocate a stream and emit its startup burst. */
    std::vector<Addr> allocStream(std::int64_t line, std::int64_t stride,
                                  unsigned startup_limit);

    /** Find the stream whose window covers @p line, or nullptr. */
    StreamEntry *findStream(std::int64_t line);

    /** True when lines @p a and @p b share an OS page. */
    bool samePage(std::int64_t a, std::int64_t b) const;

    /** Advance @p stream past demand @p line; maybe prefetch. */
    std::vector<Addr> advanceStream(StreamEntry &stream,
                                    std::int64_t line,
                                    unsigned startup_limit);

    PrefetcherParams params_;
    FilterTable pos_unit_;
    FilterTable neg_unit_;
    FilterTable non_unit_;
    std::vector<StreamEntry> streams_;
    std::deque<std::int64_t> recent_misses_;
    std::uint64_t tick_ = 0;

    Counter streams_alloc_;
    Counter generated_;
    Counter filter_allocs_;
    Counter stream_advances_;
};

} // namespace cmpsim

#endif // CMPSIM_PREFETCH_STRIDE_PREFETCHER_H
