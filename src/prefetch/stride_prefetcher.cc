#include "src/prefetch/stride_prefetcher.h"

#include <algorithm>
#include <cstdlib>

namespace cmpsim {

namespace {
constexpr unsigned kRecentMissWindow = 8;
} // namespace

StridePrefetcher::StridePrefetcher(const PrefetcherParams &params)
    : params_(params), pos_unit_(params.filter_entries),
      neg_unit_(params.filter_entries), non_unit_(params.filter_entries),
      streams_(params.stream_entries)
{
    cmpsim_assert(params.filter_entries > 0);
    cmpsim_assert(params.stream_entries > 0);
    cmpsim_assert(params.train_count >= 2);
}

StridePrefetcher::FilterEntry *
StridePrefetcher::matchFilter(FilterTable &table, std::int64_t line,
                              std::int64_t stride)
{
    for (auto &e : table) {
        const std::int64_t s = stride != 0 ? stride : e.stride;
        if (e.valid && s != 0 && e.last_line + s == line)
            return &e;
    }
    return nullptr;
}

void
StridePrefetcher::allocFilter(FilterTable &table, std::int64_t line,
                              std::int64_t stride, unsigned count)
{
    ++filter_allocs_;
    FilterEntry *victim = &table[0];
    for (auto &e : table) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->last_line = line;
    victim->stride = stride;
    victim->count = count;
    victim->lru = tick_;
}

bool
StridePrefetcher::samePage(std::int64_t a, std::int64_t b) const
{
    if (params_.page_lines == 0)
        return true;
    return static_cast<std::uint64_t>(a) / params_.page_lines ==
           static_cast<std::uint64_t>(b) / params_.page_lines;
}

std::vector<Addr>
StridePrefetcher::allocStream(std::int64_t line, std::int64_t stride,
                              unsigned startup_limit)
{
    const unsigned n =
        std::min(params_.startup_prefetches, startup_limit);
    if (n == 0)
        return {};

    StreamEntry *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }

    ++streams_alloc_;
    victim->valid = true;
    victim->stride = stride;
    victim->lru = tick_;

    std::vector<Addr> out;
    out.reserve(n);
    for (unsigned i = 1; i <= n; ++i) {
        const std::int64_t l = line + stride * static_cast<int>(i);
        if (l < 0 || !samePage(line, l))
            break;
        out.push_back(static_cast<Addr>(l) << kLineShift);
    }
    generated_ += out.size();

    victim->last_demand = line;
    victim->next_pf = line + stride * static_cast<int>(n) + stride;
    return out;
}

StridePrefetcher::StreamEntry *
StridePrefetcher::findStream(std::int64_t line)
{
    // A line belongs to a stream only if it lies on the stride
    // lattice between the demand head and the prefetch head — the
    // region the stream has actually prefetched. (An unbounded
    // window would let unrelated hot-region misses "advance" streams
    // and run them away from the demand stream.)
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t delta = line - s.last_demand;
        if (delta == 0 || delta % s.stride != 0)
            continue;
        const std::int64_t steps = delta / s.stride;
        const std::int64_t depth =
            (s.next_pf - s.last_demand) / s.stride;
        if (steps > 0 && steps <= depth)
            return &s;
    }
    return nullptr;
}

std::vector<Addr>
StridePrefetcher::advanceStream(StreamEntry &stream, std::int64_t line,
                                unsigned startup_limit)
{
    stream.lru = tick_;
    // The demand head has reached `line`.
    if ((line - stream.last_demand) * (stream.stride > 0 ? 1 : -1) > 0)
        stream.last_demand = line;
    if (startup_limit == 0)
        return {};
    if (stream.next_pf < 0) {
        stream.valid = false;
        return {};
    }
    ++stream_advances_;
    std::vector<Addr> out;
    // The demand head moved; keep the prefetch head a bounded
    // distance in front of it (the startup depth), as the Power4
    // ramping scheme does.
    const std::int64_t ahead =
        (stream.next_pf - stream.last_demand) / stream.stride;
    if (ahead <= static_cast<std::int64_t>(startup_limit) &&
        samePage(stream.last_demand, stream.next_pf)) {
        ++generated_;
        out.push_back(static_cast<Addr>(stream.next_pf) << kLineShift);
        stream.next_pf += stream.stride;
    }
    return out;
}

std::vector<Addr>
StridePrefetcher::observeMiss(Addr line_addr, unsigned startup_limit)
{
    ++tick_;
    const auto line = static_cast<std::int64_t>(lineNumber(line_addr));

    // A miss inside an active stream window (the prefetch was dropped
    // or already evicted): keep the stream alive and move it along.
    if (StreamEntry *s = findStream(line))
        return advanceStream(*s, line, startup_limit);

    // Positive unit stride.
    if (FilterEntry *e = matchFilter(pos_unit_, line, +1)) {
        e->last_line = line;
        e->lru = tick_;
        if (++e->count >= params_.train_count) {
            e->valid = false;
            return startup_limit ? allocStream(line, +1, startup_limit)
                                 : std::vector<Addr>{};
        }
        return {};
    }

    // Negative unit stride.
    if (FilterEntry *e = matchFilter(neg_unit_, line, -1)) {
        e->last_line = line;
        e->lru = tick_;
        if (++e->count >= params_.train_count) {
            e->valid = false;
            return startup_limit ? allocStream(line, -1, startup_limit)
                                 : std::vector<Addr>{};
        }
        return {};
    }

    // Non-unit stride (stride learned per entry).
    if (FilterEntry *e = matchFilter(non_unit_, line, 0)) {
        e->last_line = line;
        e->lru = tick_;
        if (++e->count >= params_.train_count) {
            const std::int64_t stride = e->stride;
            e->valid = false;
            return startup_limit
                       ? allocStream(line, stride, startup_limit)
                       : std::vector<Addr>{};
        }
        return {};
    }

    // No match: start tracking this miss. Unit tables learn from the
    // address alone; the non-unit table pairs it with a recent miss.
    allocFilter(pos_unit_, line, +1, 1);
    allocFilter(neg_unit_, line, -1, 1);
    for (const std::int64_t m : recent_misses_) {
        const std::int64_t d = line - m;
        if (d != 0 && std::abs(d) > 1 &&
            std::abs(d) <= params_.max_stride) {
            allocFilter(non_unit_, line, d, 2);
            break;
        }
    }
    recent_misses_.push_back(line);
    if (recent_misses_.size() > kRecentMissWindow)
        recent_misses_.pop_front();
    return {};
}

std::vector<Addr>
StridePrefetcher::observeUse(Addr line_addr, unsigned startup_limit)
{
    ++tick_;
    const auto line = static_cast<std::int64_t>(lineNumber(line_addr));
    if (StreamEntry *s = findStream(line))
        return advanceStream(*s, line, startup_limit);
    return {};
}

void
StridePrefetcher::registerStats(StatRegistry &reg,
                                const std::string &prefix)
{
    reg.registerCounter(prefix + ".streams", &streams_alloc_);
    reg.registerCounter(prefix + ".generated", &generated_);
    reg.registerCounter(prefix + ".filter_allocs", &filter_allocs_);
    reg.registerCounter(prefix + ".advances", &stream_advances_);
}

void
StridePrefetcher::resetStats()
{
    streams_alloc_.reset();
    generated_.reset();
    filter_allocs_.reset();
    stream_advances_.reset();
}

void
StridePrefetcher::clear()
{
    for (auto &e : pos_unit_)
        e.valid = false;
    for (auto &e : neg_unit_)
        e.valid = false;
    for (auto &e : non_unit_)
        e.valid = false;
    for (auto &s : streams_)
        s.valid = false;
    recent_misses_.clear();
}

} // namespace cmpsim
