/**
 * @file
 * The paper's adaptive prefetching mechanism (Section 3): one
 * saturating counter per cache scales the number of startup prefetches
 * per stream, and disables prefetching for that cache at zero.
 *
 * Counter updates, driven by the owning cache:
 *  - cache hit on a line whose prefetch bit is set  -> useful, +1;
 *  - replacement of a line whose prefetch bit is still set
 *    (never referenced)                             -> useless, -1;
 *  - miss whose address matches a victim tag while the set holds any
 *    valid prefetched line (conservatively assume the line was pushed
 *    out by a prefetch)                             -> harmful, -1.
 *
 * Counters start at their maximum, so the system boots with full
 * Power4-style behaviour and throttles only on evidence.
 */

#ifndef CMPSIM_PREFETCH_ADAPTIVE_CONTROLLER_H
#define CMPSIM_PREFETCH_ADAPTIVE_CONTROLLER_H

#include <string>

#include "src/common/sat_counter.h"
#include "src/common/stats.h"

namespace cmpsim {

/** Per-cache adaptive prefetch throttle. */
class AdaptivePrefetchController
{
  public:
    /**
     * @param max_startup counter ceiling = the prefetcher's startup
     *        burst length (6 for L1, 25 for L2)
     * @param enabled when false, allowedStartup() always returns the
     *        ceiling (the paper's non-adaptive configurations)
     */
    AdaptivePrefetchController(unsigned max_startup, bool enabled)
        : counter_(max_startup), enabled_(enabled)
    {
    }

    /** Startup prefetches a newly allocated stream may launch now. */
    unsigned
    allowedStartup() const
    {
        return enabled_ ? counter_.value() : counter_.max();
    }

    bool adaptive() const { return enabled_; }

    /** A prefetched line was referenced: useful prefetch. */
    void
    onUsefulPrefetch()
    {
        ++useful_;
        if (enabled_)
            counter_.increment();
    }

    /** A never-referenced prefetched line was replaced: useless. */
    void
    onUselessPrefetch()
    {
        ++useless_;
        if (enabled_)
            counter_.decrement();
    }

    /** A miss matched a victim tag in a set holding prefetched lines:
     *  conservatively a harmful prefetch. */
    void
    onHarmfulPrefetch()
    {
        ++harmful_;
        if (enabled_)
            counter_.decrement();
    }

    unsigned counterValue() const { return counter_.value(); }

    std::uint64_t usefulCount() const { return useful_.value(); }
    std::uint64_t uselessCount() const { return useless_.value(); }
    std::uint64_t harmfulCount() const { return harmful_.value(); }

    void
    registerStats(StatRegistry &reg, const std::string &prefix)
    {
        reg.registerCounter(prefix + ".useful", &useful_);
        reg.registerCounter(prefix + ".useless", &useless_);
        reg.registerCounter(prefix + ".harmful", &harmful_);
    }

    void
    resetStats()
    {
        useful_.reset();
        useless_.reset();
        harmful_.reset();
    }

  private:
    friend class CheckpointCodec; // serializes the throttle counter

    SatCounter counter_;
    bool enabled_;
    Counter useful_;
    Counter useless_;
    Counter harmful_;
};

} // namespace cmpsim

#endif // CMPSIM_PREFETCH_ADAPTIVE_CONTROLLER_H
