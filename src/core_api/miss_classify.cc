#include "src/core_api/miss_classify.h"

#include <algorithm>
#include <vector>

namespace cmpsim {

namespace {

/** Keys of @p m in ascending address order. Hash-table iteration is
 *  implementation-defined, so every floating-point accumulation below
 *  walks this sorted view instead — FP addition is not associative,
 *  and the classification fractions feed the run report verbatim. */
std::vector<Addr>
sortedKeys(const std::unordered_map<Addr, std::uint32_t> &m)
{
    std::vector<Addr> keys;
    keys.reserve(m.size());
    // analyze-ok: unordered-iter key collection is order-independent; the keys are sorted before any order-sensitive use
    for (const auto &[line, count] : m) {
        (void)count;
        keys.push_back(line);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

std::uint64_t
MissProfile::totalDemandMisses() const
{
    std::uint64_t n = 0;
    // analyze-ok: unordered-iter integer sum; addition over uint64 is associative and commutative, so order cannot change the result
    for (const auto &[line, count] : demand_) {
        (void)line;
        n += count;
    }
    return n;
}

std::uint64_t
MissProfile::totalPrefetchFills() const
{
    std::uint64_t n = 0;
    // analyze-ok: unordered-iter integer sum; addition over uint64 is associative and commutative, so order cannot change the result
    for (const auto &[line, count] : prefetch_) {
        (void)line;
        n += count;
    }
    return n;
}

MissClassification
classifyMisses(const MissProfile &base,
               const MissProfile &with_compression,
               const MissProfile &with_prefetching,
               const MissProfile &with_both)
{
    MissClassification out;
    const double total =
        static_cast<double>(base.totalDemandMisses());
    if (total == 0)
        return out;

    auto count_in = [](const std::unordered_map<Addr, std::uint32_t> &m,
                       Addr line) -> double {
        auto it = m.find(line);
        return it == m.end() ? 0.0 : static_cast<double>(it->second);
    };

    double only_c = 0, only_p = 0, either = 0, unavoidable = 0;
    for (const Addr line : sortedKeys(base.demand())) {
        const double b = count_in(base.demand(), line);
        const double avoided_c = std::max(
            0.0, b - count_in(with_compression.demand(), line));
        const double avoided_p = std::max(
            0.0, b - count_in(with_prefetching.demand(), line));
        const double both = std::min(avoided_c, avoided_p);
        only_c += avoided_c - both;
        only_p += avoided_p - both;
        either += both;
        unavoidable += b - (avoided_c - both) - (avoided_p - both) - both;
    }

    out.unavoidable = unavoidable / total;
    out.only_compression = only_c / total;
    out.only_prefetching = only_p / total;
    out.either = either / total;

    // Prefetch classes: fills issued with prefetching alone vs with
    // compression added.
    double kept = 0, avoided = 0;
    for (const Addr line : sortedKeys(with_prefetching.prefetches())) {
        const double p = count_in(with_prefetching.prefetches(), line);
        const double cp = count_in(with_both.prefetches(), line);
        kept += std::min(p, cp);
        avoided += std::max(0.0, p - cp);
    }
    out.prefetches_kept = kept / total;
    out.prefetches_avoided = avoided / total;
    return out;
}

} // namespace cmpsim
