/**
 * @file
 * Top-level configuration of one simulated CMP — the knobs the paper
 * varies across its experiments. Everything else (Table 1 latencies,
 * widths, table sizes) is fixed at the paper's values but remains
 * overridable through the derived parameter structs.
 */

#ifndef CMPSIM_CORE_API_SYSTEM_CONFIG_H
#define CMPSIM_CORE_API_SYSTEM_CONFIG_H

#include <cstdint>

#include "src/cache/l1_cache.h"
#include "src/cache/l2_cache.h"
#include "src/core/core_model.h"
#include "src/mem/main_memory.h"
#include "src/prefetch/stride_prefetcher.h"
#include "src/sample/sampling_plan.h"

namespace cmpsim {

/** One experimental configuration (a bar in the paper's figures). */
struct SystemConfig
{
    /** Number of single-threaded cores (paper default: 8). */
    unsigned cores = 8;

    /**
     * Capacity scale divisor: caches and workload footprints shrink
     * together so shapes are preserved while runs stay fast. scale=1
     * is the paper's full-size system (4 MB L2, 64 KB L1s).
     */
    unsigned scale = 1;

    /** Store L2 lines FPC-compressed (decoupled variable-segment). */
    bool cache_compression = false;

    /** Compress data payloads on the pin interface. */
    bool link_compression = false;

    /** Enable the L1I/L1D/L2 stride prefetchers. */
    bool prefetching = false;

    /** Enable the adaptive throttling mechanism (Section 3). */
    bool adaptive_prefetch = false;

    /** Pin bandwidth in GB/s (Figure 11 sweeps 10-80). */
    double pin_bandwidth_gbps = 20.0;

    /** Remove link queuing to measure bandwidth *demand* (EQ 1). */
    bool infinite_bandwidth = false;

    /** RNG seed (vary across runs for confidence intervals). */
    std::uint64_t seed = 1;

    // ---- sharded event kernel (DESIGN.md Section 12) ----

    /**
     * Event-kernel lanes: 1 (the default) runs the single-threaded
     * kernel unchanged; >1 partitions the cores (with their private
     * L1s, prefetchers and instruction streams) into that many
     * contiguous lane clusters ticked in parallel each quantum, with
     * every shared-state emission deferred through per-lane mailboxes
     * and replayed in canonical core order at the barrier — results
     * are byte-identical at any lane count. Clamped to the core
     * count at construction. The CMPSIM_LANES environment variable
     * overrides this at CmpSystem construction. Like CMPSIM_JOBS,
     * lanes change wall-clock but never results, so the knob is
     * excluded from pointSpecBytes().
     */
    unsigned lanes = 1;

    // ---- CPI-stack attribution (DESIGN.md Section 9) ----

    /**
     * Arm the cycle-accounting CPI-stack and miss-genealogy layer:
     * per-core leaf-cause attribution of every elapsed cycle plus
     * per-request journey records with per-segment latency histograms.
     * Pure observation — simulated results are byte-identical armed or
     * not — and its stats land in a *separate* registry
     * (CmpSystem::cpiStats(), mirroring laneStats()) so default stat
     * dumps and determinism fingerprints never change. The
     * CMPSIM_CPISTACK environment variable overrides this at
     * CmpSystem construction ("0" or empty leaves it off). Refused in
     * combination with checkpoint/restore (attribution windows and
     * genealogy records are not checkpointed). Excluded from
     * pointSpecBytes() like the other observation knobs.
     */
    bool cpi_stack = false;

    // ---- ablation knobs (DESIGN.md Section 4) ----

    /** One L2 prefetcher shared by all cores instead of per-core. */
    bool shared_l2_prefetcher = false;

    /** L1 prefetches train the L2 prefetcher (paper's choice). */
    bool l1_prefetch_triggers_l2 = true;

    /** Extra victim-only tags per set in *uncompressed* adaptive
     *  configs (the paper's "four extra tags per set"). */
    unsigned extra_victim_tags = 4;

    /** Startup prefetch depths (Table 1: 6 for L1, 25 for L2). */
    unsigned l1_startup_prefetches = 6;
    unsigned l2_startup_prefetches = 25;

    /** Decompression pipeline depth in cycles (Table 1: 5). */
    Cycle decompression_latency = 5;

    /** ISCA'04 adaptive compression policy (the paper runs it but it
     *  "always adapted to compress" for these workloads). */
    bool adaptive_compression = false;

    /** Use 64 segments/set for the compressed L2 instead of 32 (the
     *  paper text's ambiguous alternative geometry; see DESIGN.md). */
    bool wide_compressed_sets = false;

    // ---- DRAM backend (DESIGN.md Section 10) ----

    /**
     * Memory backend behind the pin link: the paper-validated fixed
     * 400-cycle latency (default — seed hashes depend on it) or the
     * banked timing model with FR-FCFS scheduling, row-buffer state
     * and compression-shortened bursts. makeConfig() applies the
     * CMPSIM_DRAM environment spec ("banked:banks=16,sched=fcfs",
     * see parseDramSpec) so every entry point can arm it.
     */
    DramTimingParams dram;

    // ---- statistical sampling (DESIGN.md Section 14) ----

    /**
     * Statistical sampling plan: when armed (max_intervals > 0), a
     * run alternates functional fast-forward and detailed measurement
     * intervals per the plan instead of one contiguous timed run, and
     * every metric carries a 95% confidence interval over the
     * intervals. makeConfig() applies the CMPSIM_SAMPLING environment
     * spec ("<ff>:<detail>:<n>[:ci<pct>]", see SamplingPlan::parse)
     * so batch fingerprints and journal keys see the plan — sampling
     * changes the measurement protocol, hence the measured numbers,
     * so unlike lanes/audit knobs it IS part of pointSpecBytes()
     * (appended only when armed, keeping unsampled fingerprints
     * byte-identical to older journals). Refused in combination with
     * the CPI-stack layer (attribution windows do not span the
     * fast-forward gaps between intervals).
     */
    SamplingPlan sampling;

    // ---- invariant audits (DESIGN.md Section 6) ----

    /**
     * Run the full invariant audit every this many cycles of timed
     * simulation (plus once at end-of-run). 0 disables periodic audits
     * — the Release default; tests and CI audit legs turn it on. The
     * CMPSIM_AUDIT environment variable overrides this at CmpSystem
     * construction ("0" disables, any other integer sets the period).
     */
    Cycle audit_interval = 0;

    /** Verify an FPC and a BDI compress -> decompress round-trip of
     *  the line's value on every L2 fill (debug/audit builds). */
    bool audit_fill_roundtrip = false;

    /**
     * Interval time-series sampling period in cycles (DESIGN.md §9):
     * every this many cycles of timed simulation the system snapshots
     * every registered counter as a delta plus instantaneous gauges
     * (compression ratio, adaptive-counter state). 0 disables — the
     * default; sampling is pure observation and cannot change
     * simulated results. The CMPSIM_SAMPLE_CYCLES environment
     * variable overrides this at CmpSystem construction.
     */
    Cycle sample_interval = 0;

    // ---- failure model (DESIGN.md Section 8) ----

    /**
     * No-forward-progress watchdog: if no core retires a single
     * instruction across this many cycles of timed simulation, run()
     * throws WatchdogTimeout with an event-queue/core diagnostic
     * instead of spinning forever. 0 disables. The default is far
     * above any legitimate stall (DRAM latency is 400 cycles; link
     * backlogs reach thousands). The CMPSIM_WATCHDOG environment
     * variable overrides this at CmpSystem construction.
     */
    Cycle watchdog_cycles = 2'000'000;

    /**
     * Reject impossible configurations (zero cores/ways, non-power-of-
     * two set counts, inconsistent link widths, ...) by throwing
     * ConfigError with the offending knob as context. Called by
     * CmpSystem's constructor, so every entry point — CLI, benches,
     * the parallel runner — fails with a catchable, structured error
     * instead of building a broken system.
     */
    void validate() const;

    // ---- derived parameter blocks ----

    L1Params l1Params() const;
    L2Params l2Params() const;
    MemoryParams memoryParams() const;
    CoreParams coreParams() const;
    PrefetcherParams l1PrefetcherParams() const;
    PrefetcherParams l2PrefetcherParams() const;

    /** Pin bytes per 5 GHz core cycle for @p gbps. */
    static double
    bytesPerCycle(double gbps)
    {
        return gbps / 5.0;
    }
};

/** Convenience factory covering the paper's standard config matrix. */
SystemConfig makeConfig(unsigned cores, unsigned scale,
                        bool cache_compression, bool link_compression,
                        bool prefetching, bool adaptive,
                        double pin_bandwidth_gbps = 20.0);

} // namespace cmpsim

#endif // CMPSIM_CORE_API_SYSTEM_CONFIG_H
