/**
 * @file
 * Parallel experiment execution: fan a batch of independent
 * (config, workload, seed) simulation points across a worker pool.
 *
 * Every point is a pure function of (SystemConfig, workload name,
 * RunLengths, seed) — each run owns its CmpSystem, EventQueue and
 * Random — so runs can execute on any thread in any order. Results
 * are written into pre-sized slots indexed by submission order, which
 * makes the output vector (and therefore every table printed from
 * it) byte-identical regardless of the worker count.
 *
 * Worker count: CMPSIM_JOBS (0 or unset = hardware_concurrency), or
 * an explicit jobs argument.
 */

#ifndef CMPSIM_CORE_API_PARALLEL_RUNNER_H
#define CMPSIM_CORE_API_PARALLEL_RUNNER_H

#include <string>
#include <vector>

#include "src/core_api/experiment.h"

namespace cmpsim {

/** One experiment point: a config/workload pair run over N seeds. */
struct PointSpec
{
    SystemConfig config;
    std::string benchmark;
    RunLengths lengths;
    unsigned seeds = 1;
};

/**
 * Worker count policy: CMPSIM_JOBS if set and non-zero, else
 * std::thread::hardware_concurrency() (at least 1). CMPSIM_JOBS=0
 * explicitly requests the hardware default.
 */
unsigned defaultJobs();

/**
 * Run every (point, seed) task across @p jobs workers (0 = use
 * defaultJobs()). Returns one MetricSummary per input point, in
 * input order; runs[s] within each summary is seed s+1, exactly as
 * the serial runSeeds loop produced. Deterministic: the result is a
 * pure function of @p points, independent of jobs.
 */
std::vector<MetricSummary> runPoints(const std::vector<PointSpec> &points,
                                     unsigned jobs = 0);

/**
 * Byte-exact serialization of a summary's every metric (hexfloat, so
 * no rounding ambiguity), for fingerprint comparison in determinism
 * gates. Feed to fnv1a() from src/common/fingerprint.h.
 */
std::string summaryBytes(const MetricSummary &summary);

} // namespace cmpsim

#endif // CMPSIM_CORE_API_PARALLEL_RUNNER_H
