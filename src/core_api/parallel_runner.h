/**
 * @file
 * Parallel experiment execution: fan a batch of independent
 * (config, workload, seed) simulation points across a worker pool,
 * with crash containment, bounded retry, and journaled resume
 * (DESIGN.md §8).
 *
 * Every point is a pure function of (SystemConfig, workload name,
 * RunLengths, seed) — each run owns its CmpSystem, EventQueue and
 * Random — so runs can execute on any thread in any order. Results
 * are written into pre-sized slots indexed by submission order, which
 * makes the output vector (and therefore every table printed from
 * it) byte-identical regardless of the worker count.
 *
 * Failure model: runPointsChecked() never lets one broken point sink
 * the batch. Each task's exception is caught and recorded as a
 * PointOutcome; transient failures (injected faults, watchdogs) are
 * retried up to RunPolicy::max_attempts in deterministic attempt
 * order; deterministic failures (bad config, bad workload, tripped
 * invariants) are reported once and never retried. The legacy
 * runPoints() wrapper keeps the old all-or-nothing contract by
 * throwing a SimError summarising any failures.
 *
 * Journaled resume: with RunPolicy::journal_path set, every completed
 * point's spec fingerprint and summaryBytes are appended to a journal
 * file as soon as its last seed finishes. A rerun over the same
 * journal restores those points byte-identically (asserted by
 * tests/journal_resume_test.cc) and only simulates the rest.
 *
 * Environment (read by defaultRunPolicy(), which runPoints() uses):
 *   CMPSIM_JOBS          worker threads (0/unset = hardware)
 *   CMPSIM_RETRIES       extra attempts for transient failures (def 1)
 *   CMPSIM_JOURNAL       journal file path (unset = no journal)
 *   CMPSIM_POINT_TIMEOUT per-point wall-clock deadline, seconds
 *   CMPSIM_FAULT         fault-injection plan (src/sim/fault_injection.h)
 *   CMPSIM_REPORT        batch JSON report path (unset = no report)
 *   CMPSIM_PROGRESS      "1" = per-task stderr progress lines
 */

#ifndef CMPSIM_CORE_API_PARALLEL_RUNNER_H
#define CMPSIM_CORE_API_PARALLEL_RUNNER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_error.h"
#include "src/core_api/experiment.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

/** One experiment point: a config/workload pair run over N seeds. */
struct PointSpec
{
    SystemConfig config;
    std::string benchmark;
    RunLengths lengths;
    unsigned seeds = 1;
};

/** How one point of a checked batch ended up. */
enum class PointStatus
{
    Ok,       ///< simulated this run; all seeds succeeded
    /** Not simulated from scratch: either loaded byte-identically
     *  from the journal (attempts == 0), or resumed mid-measurement
     *  from a CMPSIM_RESTORE checkpoint (attempts > 0). */
    Restored,
    Failed,   ///< at least one seed failed on its final attempt
};

/** Per-point execution record from runPointsChecked(). */
struct PointOutcome
{
    PointStatus status = PointStatus::Ok;
    /** Kind of the first recorded failure (valid when Failed). */
    ErrorKind error_kind = ErrorKind::Internal;
    /** what() of the first recorded failure ("" when not Failed). */
    std::string error;
    /** Highest attempt number any of the point's seeds used
     *  (0 for journal-restored points — nothing was executed). */
    unsigned attempts = 0;
};

/** Everything a checked batch produced: summaries + outcomes. */
struct BatchResult
{
    /** One summary per input point, input order. A Failed point's
     *  summary holds whatever seeds did complete; its aggregate
     *  cycles stay default-initialised. */
    std::vector<MetricSummary> summaries;
    std::vector<PointOutcome> outcomes; ///< parallel to summaries

    /** Backoff slept before each retry round, in ms. Deterministic:
     *  keyed on the retrying points' spec fingerprints and the attempt
     *  number, never on wall-clock or randomness, so reruns of the
     *  same batch sleep the same schedule. */
    std::vector<std::uint64_t> retry_delays_ms;

    std::size_t failed() const;   ///< points with status Failed
    std::size_t restored() const; ///< points with status Restored

    /** Multi-line human-readable digest of every failure (including
     *  the retry backoff schedule, when any round was retried), or ""
     *  when the batch is clean. */
    std::string failureSummary() const;
};

/** Fault-tolerance policy for one batch. The default-constructed
 *  policy is inert: one attempt, no journal, no deadline, no faults. */
struct RunPolicy
{
    /** Total attempts per (point, seed) task; transient failures are
     *  retried until this bound, deterministic ones never. */
    unsigned max_attempts = 1;
    /** Journal file for completed points ("" = no journal). */
    std::string journal_path;
    /** Per-point wall-clock deadline in seconds (0 = none). */
    double point_timeout_sec = 0.0;
    /** Deterministic fault-injection plan (empty = none). */
    FaultPlan faults;
    /** Batch JSON report path ("" = no report): per-point provenance
     *  (status, attempts, error kind, spec fingerprint, aggregate
     *  cycles) plus batch wall-clock/heap telemetry (DESIGN.md §9). */
    std::string report_path;
    /** Emit one stderr progress line per finished (point, seed) task
     *  — live visibility into long sweeps without polluting stdout. */
    bool progress = false;
};

/** Policy from the environment: CMPSIM_RETRIES / CMPSIM_JOURNAL /
 *  CMPSIM_POINT_TIMEOUT / CMPSIM_FAULT as documented above. */
RunPolicy defaultRunPolicy();

/**
 * Worker count policy: CMPSIM_JOBS if set and non-zero, else
 * std::thread::hardware_concurrency() (at least 1). CMPSIM_JOBS=0
 * explicitly requests the hardware default.
 */
unsigned defaultJobs();

/**
 * Run every (point, seed) task across @p jobs workers (0 = use
 * defaultJobs()) under @p policy. One point's failure is contained:
 * the rest of the batch still runs to completion and the failure is
 * recorded in the returned outcomes. Deterministic: the summaries
 * are a pure function of @p points (and the journal contents),
 * independent of jobs. Throws only on batch-level misuse (bad
 * journal path, malformed fault plan, zero seeds).
 */
BatchResult runPointsChecked(const std::vector<PointSpec> &points,
                             unsigned jobs = 0,
                             const RunPolicy &policy = RunPolicy{});

/**
 * Legacy strict wrapper: runPointsChecked() under defaultRunPolicy(),
 * returning just the summaries. Any point failure throws a SimError
 * of the first failure's kind whose message is the batch's
 * failureSummary(). runs[s] within each summary is seed s+1, exactly
 * as the serial runSeeds loop produced.
 */
std::vector<MetricSummary> runPoints(const std::vector<PointSpec> &points,
                                     unsigned jobs = 0);

/**
 * Byte-exact serialization of a summary's every metric (hexfloat, so
 * no rounding ambiguity), for fingerprint comparison in determinism
 * gates and for journal records. Feed to fnv1a() from
 * src/common/fingerprint.h.
 */
std::string summaryBytes(const MetricSummary &summary);

/** Inverse of summaryBytes(): rebuild @p out (aggregate recomputed
 *  with summarize(), so re-serialising is byte-identical). Returns
 *  false on malformed input, leaving @p out unspecified. */
bool parseSummaryBytes(const std::string &bytes, MetricSummary &out);

/**
 * Stable serialization of everything that determines a point's
 * results — the behavioural config knobs (not seed, which the runner
 * owns, and not observability knobs like audit/watchdog settings),
 * the benchmark, run lengths, and seed count. fnv1a() of this is the
 * journal key.
 */
std::string pointSpecBytes(const PointSpec &spec);

} // namespace cmpsim

#endif // CMPSIM_CORE_API_PARALLEL_RUNNER_H
