#include "src/core_api/experiment.h"

#include <cstdlib>

#include "src/core_api/parallel_runner.h"
#include "src/sample/sampling_controller.h"

namespace cmpsim {

std::uint64_t
envUint64Or(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    const auto parsed = std::strtoull(v, &end, 10);
    // Reject only genuine parse failures (no digits, trailing junk):
    // an explicit 0 is a legitimate value (CMPSIM_JOBS=0 means "auto",
    // CMPSIM_WARMUP=0 means "no warmup").
    if (end == v || *end != '\0')
        cmpsim_fatal("bad value for %s: %s", name, v);
    return parsed;
}

namespace {

RunResult::PfMetrics
pfMetrics(double issued, double hits, double demand_misses,
          double kilo_instr)
{
    RunResult::PfMetrics m;
    m.rate_per_kilo_instr = kilo_instr > 0 ? issued / kilo_instr : 0;
    const double denom = hits + demand_misses;
    m.coverage_pct = denom > 0 ? 100.0 * hits / denom : 0;
    m.accuracy_pct = issued > 0 ? 100.0 * hits / issued : 0;
    return m;
}

} // namespace

unsigned
defaultScale()
{
    return static_cast<unsigned>(envUint64Or("CMPSIM_SCALE", 4));
}

RunLengths
defaultRunLengths()
{
    RunLengths l;
    l.warmup_per_core = envUint64Or("CMPSIM_WARMUP", 400000);
    l.measure_per_core = envUint64Or("CMPSIM_MEASURE", 50000);
    return l;
}

unsigned
defaultSeeds()
{
    return static_cast<unsigned>(envUint64Or("CMPSIM_SEEDS", 2));
}

namespace {

/** Sum a per-core counter family out of a stat-delta snapshot. */
double
snapshotL1Sum(const StatSnapshot &t, unsigned cores, const char *side,
              const char *leaf)
{
    double total = 0;
    for (unsigned c = 0; c < cores; ++c) {
        total += static_cast<double>(t.counter(
            std::string(side) + "." + std::to_string(c) + "." + leaf));
    }
    return total;
}

/** Sampled-run metric extraction: drive the plan, then rebuild the
 *  standard RunResult fields from the detail-interval stat deltas so
 *  fast-forward (whose counters keep growing in functional mode)
 *  never leaks into measured numbers. */
RunResult
runSampled(CmpSystem &sys)
{
    SamplingController ctl(sys);
    const SamplingResult res = ctl.run();
    const SystemConfig &config = sys.config();
    const StatSnapshot &t = res.totals;

    RunResult r;
    r.cycles = res.detail_cycles;
    r.instructions = res.detail_instructions;
    r.ipc = r.cycles > 0 ? r.instructions / r.cycles : 0;

    r.l2_demand_misses =
        static_cast<double>(t.counter("l2.demand_misses"));
    r.l2_demand_accesses =
        static_cast<double>(t.counter("l2.demand_accesses"));
    r.l2_miss_rate = r.l2_demand_accesses > 0
                         ? r.l2_demand_misses / r.l2_demand_accesses
                         : 0;
    const double kilo_instr = r.instructions / 1000.0;
    r.l2_misses_per_kilo_instr =
        kilo_instr > 0 ? r.l2_demand_misses / kilo_instr : 0;

    const double link_bytes =
        static_cast<double>(t.counter("mem.link.bytes"));
    r.bandwidth_gbps =
        r.cycles > 0 ? link_bytes / r.cycles * 5.0 : 0; // 5 GHz
    r.compression_ratio = res.compression_ratio.mean;
    r.penalized_hits =
        static_cast<double>(t.counter("l2.penalized_hits"));

    if (config.prefetching) {
        const unsigned cores = config.cores;
        r.l1i = pfMetrics(
            snapshotL1Sum(t, cores, "l1i", "pf_issued"),
            snapshotL1Sum(t, cores, "l1i", "pf_hits"),
            snapshotL1Sum(t, cores, "l1i", "misses"), kilo_instr);
        r.l1d = pfMetrics(
            snapshotL1Sum(t, cores, "l1d", "pf_issued"),
            snapshotL1Sum(t, cores, "l1d", "pf_hits"),
            snapshotL1Sum(t, cores, "l1d", "misses"), kilo_instr);
        r.l2pf = pfMetrics(
            static_cast<double>(t.counter("l2.l2pf_issued")),
            static_cast<double>(t.counter("l2.pf_hits_l2")),
            r.l2_demand_misses, kilo_instr);

        r.l2_adaptive_counter = sys.l2Adaptive().counterValue();
        r.useful_prefetches =
            static_cast<double>(t.counter("ad.l2.useful"));
        r.useless_prefetches =
            static_cast<double>(t.counter("ad.l2.useless"));
        r.harmful_flags =
            static_cast<double>(t.counter("ad.l2.harmful"));
    }
    r.victim_tags_per_set = sys.l2().meanVictimTags();

    r.sampled.armed = true;
    r.sampled.intervals = res.intervals;
    r.sampled.stopped_early = res.stopped_early;
    r.sampled.ff_instructions =
        static_cast<double>(res.ff_instructions);
    r.sampled.cycles = res.cycles;
    r.sampled.ipc = res.ipc;
    r.sampled.l2_miss_rate = res.l2_miss_rate;
    r.sampled.l2_mpki = res.l2_mpki;
    r.sampled.bandwidth_gbps = res.bandwidth_gbps;
    r.sampled.compression_ratio = res.compression_ratio;
    return r;
}

} // namespace

RunResult
runOnce(const SystemConfig &config, const std::string &benchmark,
        const RunLengths &lengths)
{
    CmpSystem sys(config, benchmarkParams(benchmark));
    sys.warmup(lengths.warmup_per_core);
    if (config.sampling.armed())
        return runSampled(sys);
    sys.run(lengths.measure_per_core);

    RunResult r;
    r.cycles = static_cast<double>(sys.cycles());
    r.instructions = static_cast<double>(sys.instructions());
    r.ipc = sys.ipc();

    const auto &reg = sys.stats();
    r.l2_demand_misses =
        static_cast<double>(reg.counter("l2.demand_misses"));
    r.l2_demand_accesses =
        static_cast<double>(reg.counter("l2.demand_accesses"));
    r.l2_miss_rate = r.l2_demand_accesses > 0
                         ? r.l2_demand_misses / r.l2_demand_accesses
                         : 0;
    const double kilo_instr = r.instructions / 1000.0;
    r.l2_misses_per_kilo_instr =
        kilo_instr > 0 ? r.l2_demand_misses / kilo_instr : 0;

    r.bandwidth_gbps = sys.bandwidthGBps();
    r.compression_ratio = sys.compressionRatio();
    r.penalized_hits =
        static_cast<double>(reg.counter("l2.penalized_hits"));

    if (config.prefetching) {
        const double l1i_issued =
            static_cast<double>(sys.sumL1Counter("l1i", "pf_issued"));
        const double l1i_hits =
            static_cast<double>(sys.sumL1Counter("l1i", "pf_hits"));
        const double l1i_misses =
            static_cast<double>(sys.sumL1Counter("l1i", "misses"));
        r.l1i = pfMetrics(l1i_issued, l1i_hits, l1i_misses, kilo_instr);

        const double l1d_issued =
            static_cast<double>(sys.sumL1Counter("l1d", "pf_issued"));
        const double l1d_hits =
            static_cast<double>(sys.sumL1Counter("l1d", "pf_hits"));
        const double l1d_misses =
            static_cast<double>(sys.sumL1Counter("l1d", "misses"));
        r.l1d = pfMetrics(l1d_issued, l1d_hits, l1d_misses, kilo_instr);

        const double l2_issued =
            static_cast<double>(reg.counter("l2.l2pf_issued"));
        const double l2_hits =
            static_cast<double>(reg.counter("l2.pf_hits_l2"));
        r.l2pf = pfMetrics(l2_issued, l2_hits, r.l2_demand_misses,
                           kilo_instr);

        r.l2_adaptive_counter = sys.l2Adaptive().counterValue();
        r.useful_prefetches =
            static_cast<double>(reg.counter("ad.l2.useful"));
        r.useless_prefetches =
            static_cast<double>(reg.counter("ad.l2.useless"));
        r.harmful_flags =
            static_cast<double>(reg.counter("ad.l2.harmful"));
    }
    r.victim_tags_per_set = sys.l2().meanVictimTags();
    return r;
}

MetricSummary
runSeeds(SystemConfig config, const std::string &benchmark,
         const RunLengths &lengths, unsigned seeds)
{
    cmpsim_assert(seeds >= 1);
    // One point, fanned over seeds by the parallel runner; seed s
    // lands in runs[s] regardless of worker count, so the result is
    // bit-identical to the old serial loop.
    PointSpec spec;
    spec.config = config;
    spec.benchmark = benchmark;
    spec.lengths = lengths;
    spec.seeds = seeds;
    return std::move(runPoints({std::move(spec)}).front());
}

double
meanCycles(const MetricSummary &s)
{
    return s.cycles.mean;
}

double
meanOf(const MetricSummary &s, double (*extract)(const RunResult &))
{
    double total = 0;
    for (const auto &r : s.runs)
        total += extract(r);
    return s.runs.empty() ? 0 : total / static_cast<double>(s.runs.size());
}

} // namespace cmpsim
