/**
 * @file
 * CmpSystem: the fully wired CMP of the paper — cores, split L1s,
 * per-core L1I/L1D/L2 stride prefetchers, adaptive controllers, the
 * banked shared compressed L2, the pin link with optional link
 * compression, and DRAM — built from a SystemConfig plus a workload,
 * with functional warmup and a timed run loop.
 *
 * This is the library's primary entry point:
 *
 *     CmpSystem sys(makeConfig(8, 4, true, true, true, true),
 *                   benchmarkParams("zeus"));
 *     sys.warmup(200'000);
 *     sys.run(50'000);
 *     double speedup_input = sys.cycles();
 */

#ifndef CMPSIM_CORE_API_CMP_SYSTEM_H
#define CMPSIM_CORE_API_CMP_SYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "src/audit/invariant_registry.h"
#include "src/ckpt/controller.h"
#include "src/compression/fpc.h"
#include "src/core_api/system_config.h"
#include "src/obs/interval_sampler.h"
#include "src/sample/fast_forward.h"
#include "src/sample/sample_state.h"
#include "src/sim/lane.h"
#include "src/workload/synthetic_workload.h"

namespace cmpsim {

class CpiAccount;
class MissJournal;

/** A complete simulated CMP. */
class CmpSystem
{
  public:
    CmpSystem(const SystemConfig &config, const WorkloadParams &workload);
    ~CmpSystem();

    CmpSystem(const CmpSystem &) = delete;
    CmpSystem &operator=(const CmpSystem &) = delete;

    /**
     * Functional cache warmup: every core executes @p instr_per_core
     * instructions updating cache/directory/prefetcher state with no
     * timing. Stats are reset afterwards.
     */
    void warmup(std::uint64_t instr_per_core);

    /**
     * Timed simulation until the cores together retire
     * @p instr_per_core x cores instructions (measured from the call).
     */
    void run(std::uint64_t instr_per_core);

    /** Cycles elapsed during run(). */
    Cycle cycles() const { return measured_cycles_; }

    /** Instructions retired during run(). */
    std::uint64_t instructions() const { return measured_instructions_; }

    double
    ipc() const
    {
        return measured_cycles_ == 0
                   ? 0.0
                   : static_cast<double>(measured_instructions_) /
                         static_cast<double>(measured_cycles_);
    }

    /**
     * Off-chip bandwidth consumed during run(), in GB/s at the 5 GHz
     * clock (the paper's Figure 4/7 metric when the config has
     * infinite_bandwidth set).
     */
    double bandwidthGBps() const;

    /** Mean L2 compression ratio over the periodic samples. */
    double compressionRatio() const { return ratio_samples_.mean(); }

    // Component access for stats and tests.
    const SystemConfig &config() const { return config_; }
    const WorkloadParams &workload() const { return workload_; }
    L2Cache &l2() { return *l2_; }
    const L2Cache &l2() const { return *l2_; }
    MainMemory &memory() { return *memory_; }
    L1Cache &l1i(unsigned cpu) { return *l1i_[cpu]; }
    L1Cache &l1d(unsigned cpu) { return *l1d_[cpu]; }
    CoreModel &core(unsigned cpu) { return *cores_[cpu]; }
    StatRegistry &stats() { return registry_; }
    AdaptivePrefetchController &l2Adaptive() { return *l2_adaptive_; }

    /**
     * The system-wide invariant registry. Populated at construction;
     * run() enforces it every config.audit_interval cycles (and once
     * at end-of-run) when the interval is non-zero. Tests may call
     * audits().check()/enforce() directly at any point.
     */
    InvariantRegistry &audits() { return audits_; }
    const InvariantRegistry &audits() const { return audits_; }

    /**
     * The interval time-series sampler, or nullptr when
     * config.sample_interval is 0 (the default). Created at
     * construction when sampling is enabled (CMPSIM_SAMPLE_CYCLES
     * overrides the config knob); run() feeds it every interval and
     * flushes a final partial interval at end-of-run.
     */
    IntervalSampler *sampler() { return sampler_.get(); }
    const IntervalSampler *sampler() const { return sampler_.get(); }

    /** Sum a per-core counter family ("l1d.<cpu>.<leaf>"). */
    std::uint64_t sumL1Counter(const char *side, const char *leaf) const;

    // ---- statistical sampling (DESIGN.md §14) ----

    /**
     * Budgeted functional fast-forward between detailed intervals:
     * drain every event queue to quiescence (functional execution
     * must not race pending fills holding tag references), then
     * advance every core @p instr_per_core instructions through the
     * FastForwardEngine with no event timing. Unlike warmup() this
     * does NOT reset stats — the SamplingController brackets detailed
     * intervals with snapshots instead — and it requires an armed
     * config.sampling plan (the engine only exists then). Only the
     * last @p warm_per_core instructions (clamped; default all) run
     * in functional-warming mode; any prefix runs in pure skip mode
     * (see FastForwardEngine::advance()).
     */
    void fastForward(std::uint64_t instr_per_core,
                     std::uint64_t warm_per_core =
                         ~static_cast<std::uint64_t>(0));

    /**
     * Leader half of shared-prefix fast-forward (DESIGN.md §14): run
     * a pure-skip fastForward(instr_per_core, 0) while journaling
     * every value-store mutation, and return the journal. A pure-skip
     * phase touches no cache, prefetcher or timing state, so its
     * outcome (workload cursor + value-store delta) is identical for
     * every configuration of the same workload and seed — lockstep
     * twins can adopt it instead of re-executing the stream.
     */
    std::vector<ValueStore::Op>
    fastForwardJournaled(std::uint64_t instr_per_core);

    /**
     * Follower half: jump this system over a pure-skip phase @p
     * leader just executed via fastForwardJournaled() — drain to
     * quiescence, copy the per-core workload cursors and skip
     * counters, and replay the value-store journal. Requires lockstep
     * twins: same workload, seed and core count, and this system at
     * exactly instr_per_core retired instructions behind the leader
     * (asserted per core).
     */
    void adoptSkip(const CmpSystem &leader,
                   const std::vector<ValueStore::Op> &ops,
                   std::uint64_t instr_per_core);

    /**
     * Sampling-plan progress (interval cursor, per-interval metric
     * samples, accumulated stat deltas). Lives here rather than in
     * the SamplingController so CheckpointCodec serializes it: a
     * mid-plan autosave restores to the exact interval boundary or
     * mid-interval point and the finished run's report is
     * byte-identical to the uninterrupted one.
     */
    SampleState &sampleState() { return sample_state_; }
    const SampleState &sampleState() const { return sample_state_; }

    /** The fast-forward engine, or nullptr when config.sampling is
     *  not armed. */
    FastForwardEngine *fastForwardEngine() { return ff_engine_.get(); }

    /** Effective event-kernel lane count (config.lanes clamped to the
     *  core count); 1 means the single-threaded kernel. */
    unsigned
    lanes() const
    {
        return lane_crew_ != nullptr ? lane_crew_->lanes() : 1;
    }

    /**
     * Sharded-kernel statistics (per-lane quanta, barrier stalls,
     * mailbox traffic). Deliberately a *separate* registry: stats()
     * dumps feed determinism fingerprints that must stay byte-
     * identical across lane counts, and lane bookkeeping is a
     * property of the execution strategy, not the simulated machine.
     * Empty when lanes() == 1.
     */
    StatRegistry &laneStats() { return lane_registry_; }
    const StatRegistry &laneStats() const { return lane_registry_; }

    /**
     * CPI-stack and miss-genealogy statistics (config.cpi_stack /
     * CMPSIM_CPISTACK, DESIGN.md §9): per-core "cpi.<n>.<leaf>" cycle
     * counters plus "genealogy.*" journey counters and per-segment
     * latency histograms. A *separate* registry for the same reason
     * as laneStats(): stats() dumps feed determinism fingerprints
     * that must stay byte-identical whether or not the attribution
     * layer is armed. Empty when the layer is off.
     */
    StatRegistry &cpiStats() { return cpi_registry_; }
    const StatRegistry &cpiStats() const { return cpi_registry_; }

    /** Per-core CPI account, or nullptr when the layer is off. */
    const CpiAccount *cpiAccount(unsigned cpu) const
    {
        return cpu < cpi_.size() ? cpi_[cpu].get() : nullptr;
    }

    /** The miss-genealogy journal, or nullptr when the layer is off. */
    const MissJournal *missJournal() const { return miss_journal_.get(); }

    // ---- checkpoint/restore (DESIGN.md §13) ----

    /**
     * Serialize the complete simulator state (event queues, cache
     * tags, MSHRs, link/DRAM in-flight work, prefetcher tables, RNG
     * cursors, every stat) as one versioned, CRC-protected container.
     * A system built from the same (config, workload) restored from
     * these bytes finishes the run with byte-identical stat dumps.
     */
    std::string checkpointBytes();

    /**
     * Restore the full state captured by checkpointBytes() into this
     * freshly constructed system. Throws ckpt::CorruptCheckpoint on
     * structural damage and ConfigError("config.restore") when the
     * checkpoint's fingerprint or format version does not match.
     */
    void restoreCheckpoint(std::string_view bytes);

    /** True when this system resumed from a checkpoint (warmup is a
     *  no-op then: the restored state is already mid-measurement). */
    bool restoredFromCheckpoint() const { return restored_; }

  private:
    friend class CheckpointCodec;

    /**
     * Mid-run loop state, promoted from run()/runSharded() locals so
     * a checkpoint taken between iterations carries the retirement
     * target and periodic-task cursors, letting a restored system
     * resume toward the *original* target.
     */
    struct RunState
    {
        bool active = false; ///< a timed run is in progress
        Cycle start = 0;
        std::uint64_t start_retired = 0;
        std::uint64_t target = 0;
        Cycle next_sample = 0;
        Cycle next_audit = kCycleNever;
        Cycle next_obs = kCycleNever;
        Cycle last_progress = 0;
        std::uint64_t last_retired = 0;
    };

    /** Serialize + atomically write one autosave snapshot. */
    void saveCheckpointNow();

    /** Fill run_state_ for a fresh run; no-op when resuming (the
     *  restored cursors already point mid-run). */
    void initRunState(std::uint64_t instr_per_core);

    void buildSystem();
    void resetAllStats();
    /** run() body for lanes() > 1: merged serial event drain plus
     *  parallel lane ticks with barrier replay. */
    void runSharded(std::uint64_t instr_per_core);
    /** Earliest pending event cycle across the uncore and lane queues. */
    Cycle nextPendingEventCycle() const;
    /** Run every event with (when, seq) at or before @p limit in exact
     *  global order across all queues, then sync every now() to it. */
    void drainMergedTo(Cycle limit);
    /** One-line-per-item progress diagnostic for watchdog/deadlock
     *  reports: event-queue depth and horizon plus per-core state. */
    std::string runDiagnostic(Cycle now) const;

    /** Close every core's open attribution window at @p now so the
     *  CPI leaves sum to exactly the elapsed cycles (end-of-run). */
    void cpiFlush(Cycle now);

    SystemConfig config_;
    WorkloadParams workload_;

    EventQueue eq_; ///< uncore queue (and the only queue at lanes=1)
    /** Shared (when, seq) source across all queues at lanes > 1, so
     *  the merged drain replays one global total order. */
    std::uint64_t lane_seq_ = 0;
    std::vector<std::unique_ptr<EventQueue>> lane_eqs_; ///< per lane
    std::vector<unsigned> lane_of_core_;
    std::unique_ptr<ThreadPool> lane_pool_; ///< destroyed after crew_
    std::unique_ptr<LaneCrew> lane_crew_;
    FpcCompressor fpc_;
    std::unique_ptr<ValueStore> values_;
    std::unique_ptr<MainMemory> memory_;
    std::unique_ptr<L2Cache> l2_;
    std::vector<std::unique_ptr<L1Cache>> l1i_;
    std::vector<std::unique_ptr<L1Cache>> l1d_;
    std::vector<std::unique_ptr<StridePrefetcher>> pf_l1i_;
    std::vector<std::unique_ptr<StridePrefetcher>> pf_l1d_;
    std::vector<std::unique_ptr<StridePrefetcher>> pf_l2_;
    std::vector<std::unique_ptr<AdaptivePrefetchController>> ad_l1i_;
    std::vector<std::unique_ptr<AdaptivePrefetchController>> ad_l1d_;
    std::unique_ptr<AdaptivePrefetchController> l2_adaptive_;
    std::vector<std::unique_ptr<SyntheticWorkload>> streams_;
    std::vector<std::unique_ptr<CoreModel>> cores_;

    std::unique_ptr<MissJournal> miss_journal_;     ///< see cpiStats()
    std::vector<std::unique_ptr<CpiAccount>> cpi_;  ///< per core

    StatRegistry registry_;
    StatRegistry lane_registry_; ///< see laneStats()
    StatRegistry cpi_registry_;  ///< see cpiStats()
    InvariantRegistry audits_;
    Average ratio_samples_;
    std::unique_ptr<IntervalSampler> sampler_;

    std::unique_ptr<FastForwardEngine> ff_engine_; ///< see fastForward()
    SampleState sample_state_;                     ///< see sampleState()

    ckpt::Settings ckpt_settings_;
    RunState run_state_;
    bool restored_ = false;

    Cycle measured_cycles_ = 0;
    std::uint64_t measured_instructions_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_CORE_API_CMP_SYSTEM_H
