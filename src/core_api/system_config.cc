#include "src/core_api/system_config.h"

#include "src/common/log.h"

namespace cmpsim {

L1Params
SystemConfig::l1Params() const
{
    L1Params p;
    // 64 KB, 4-way, 64 B lines -> 256 sets at full scale. The L1
    // shrinks at half the system scale rate: scaling it 1:1 with the
    // L2 starves it relative to real workload locality and floods the
    // L2 with accesses the paper's 64 KB L1s would have absorbed.
    p.sets = std::max(256u / std::max(1u, scale / 2), 4u);
    p.ways = 4;
    p.victim_tags = adaptive_prefetch ? extra_victim_tags : 0;
    p.hit_latency = 3;
    p.mshrs = 16;
    return p;
}

L2Params
SystemConfig::l2Params() const
{
    L2Params p;
    if (cache_compression) {
        // 4 MB of data as 16 K sets x (8 tags over 32 segments).
        p.sets = std::max(16384u / scale, 16u);
        p.tags_per_set = 8;
        p.segment_budget = wide_compressed_sets ? 64 : 32;
        p.compressed = true;
    } else {
        // Plain 4 MB 8-way: 8 K sets. Adaptive prefetching borrows
        // the compression hardware's spare tags as victim tags.
        p.sets = std::max(8192u / scale, 16u);
        p.tags_per_set = 8 + (adaptive_prefetch ? extra_victim_tags : 0);
        p.segment_budget = 64;
        p.compressed = false;
    }
    p.banks = 8;
    p.cores = cores;
    p.decompression_latency = decompression_latency;
    p.adaptive_compression = adaptive_compression;
    p.l1_prefetch_trains_l2 = l1_prefetch_triggers_l2;
    p.verify_fill_roundtrip = audit_fill_roundtrip;
    return p;
}

MemoryParams
SystemConfig::memoryParams() const
{
    MemoryParams p;
    p.dram_latency = 400;
    p.link_bytes_per_cycle = bytesPerCycle(pin_bandwidth_gbps);
    p.infinite_bandwidth = infinite_bandwidth;
    p.link_compression = link_compression;
    return p;
}

CoreParams
SystemConfig::coreParams() const
{
    return CoreParams{};
}

PrefetcherParams
SystemConfig::l1PrefetcherParams() const
{
    PrefetcherParams p;
    p.startup_prefetches = l1_startup_prefetches;
    return p;
}

PrefetcherParams
SystemConfig::l2PrefetcherParams() const
{
    PrefetcherParams p;
    p.startup_prefetches = l2_startup_prefetches;
    return p;
}

SystemConfig
makeConfig(unsigned cores, unsigned scale, bool cache_compression,
           bool link_compression, bool prefetching, bool adaptive,
           double pin_bandwidth_gbps)
{
    cmpsim_assert(cores >= 1 && cores <= kMaxCores);
    SystemConfig c;
    c.cores = cores;
    c.scale = scale;
    c.cache_compression = cache_compression;
    c.link_compression = link_compression;
    c.prefetching = prefetching;
    c.adaptive_prefetch = adaptive;
    c.pin_bandwidth_gbps = pin_bandwidth_gbps;
    return c;
}

} // namespace cmpsim
