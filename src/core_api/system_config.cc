#include "src/core_api/system_config.h"

#include <cmath>
#include <string>

#include "src/common/log.h"
#include "src/common/sim_error.h"

namespace cmpsim {

namespace {

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

[[noreturn]] void
reject(const char *knob, const std::string &why)
{
    throw ConfigError(knob, why);
}

} // namespace

void
SystemConfig::validate() const
{
    if (cores < 1 || cores > kMaxCores) {
        reject("config.cores", "cores must be 1.." +
                                   std::to_string(kMaxCores) + ", got " +
                                   std::to_string(cores));
    }
    if (scale < 1)
        reject("config.scale", "scale must be >= 1");
    if (lanes < 1 || lanes > kMaxCores) {
        // Excess lanes beyond the core count are merely clamped, but a
        // value outside any sane range is a mistyped CMPSIM_LANES.
        reject("config.lanes", "lanes must be 1.." +
                                   std::to_string(kMaxCores) + ", got " +
                                   std::to_string(lanes));
    }

    const L1Params l1 = l1Params();
    if (l1.ways == 0)
        reject("config.l1", "zero L1 ways");
    if (!isPowerOfTwo(l1.sets)) {
        reject("config.l1", "non-power-of-two L1 set count " +
                                std::to_string(l1.sets) + " (scale " +
                                std::to_string(scale) + ")");
    }
    if (l1.mshrs == 0)
        reject("config.l1", "zero L1 MSHRs");

    const L2Params l2 = l2Params();
    if (l2.tags_per_set == 0)
        reject("config.l2", "zero L2 tags per set");
    if (!isPowerOfTwo(l2.sets)) {
        reject("config.l2", "non-power-of-two L2 set count " +
                                std::to_string(l2.sets) + " (scale " +
                                std::to_string(scale) + ")");
    }
    if (!isPowerOfTwo(l2.banks))
        reject("config.l2", "L2 bank count must be a power of two");
    if (l2.segment_budget < kSegmentsPerLine) {
        reject("config.l2", "segment budget " +
                                std::to_string(l2.segment_budget) +
                                " cannot hold one uncompressed " +
                                std::to_string(kSegmentsPerLine) +
                                "-segment line");
    }

    const MemoryParams mem = memoryParams();
    if (!infinite_bandwidth) {
        if (!(pin_bandwidth_gbps > 0.0) ||
            !std::isfinite(pin_bandwidth_gbps)) {
            reject("config.bandwidth",
                   "pin bandwidth must be positive and finite");
        }
        // The derived link width must agree with the requested pin
        // rate (bytesPerCycle is the single source of truth; a zero
        // or negative width would stall every off-chip transfer).
        if (!(mem.link_bytes_per_cycle > 0.0)) {
            reject("config.link",
                   "inconsistent link width: " +
                       std::to_string(mem.link_bytes_per_cycle) +
                       " bytes/cycle derived from " +
                       std::to_string(pin_bandwidth_gbps) + " GB/s");
        }
    }

    // DRAM knobs must always be arm-able, whichever backend is
    // selected (validateDramParams throws knob-named ConfigErrors).
    validateDramParams(dram);

    if (sampling.armed()) {
        if (sampling.detail_per_core == 0) {
            reject("config.sampling",
                   "sampling plan needs detail_per_core >= 1 (a plan "
                   "of pure fast-forward measures nothing)");
        }
        if (!(sampling.ci_target_pct >= 0.0) ||
            sampling.ci_target_pct >= 100.0 ||
            !std::isfinite(sampling.ci_target_pct)) {
            reject("config.sampling",
                   "ci target must be in [0, 100) percent, got " +
                       std::to_string(sampling.ci_target_pct));
        }
        if (cpi_stack) {
            reject("config.sampling",
                   "statistical sampling cannot be combined with the "
                   "CPI-stack layer: attribution windows do not span "
                   "the fast-forward gaps between intervals");
        }
    }
}

L1Params
SystemConfig::l1Params() const
{
    L1Params p;
    // 64 KB, 4-way, 64 B lines -> 256 sets at full scale. The L1
    // shrinks at half the system scale rate: scaling it 1:1 with the
    // L2 starves it relative to real workload locality and floods the
    // L2 with accesses the paper's 64 KB L1s would have absorbed.
    p.sets = std::max(256u / std::max(1u, scale / 2), 4u);
    p.ways = 4;
    p.victim_tags = adaptive_prefetch ? extra_victim_tags : 0;
    p.hit_latency = 3;
    p.mshrs = 16;
    return p;
}

L2Params
SystemConfig::l2Params() const
{
    L2Params p;
    if (cache_compression) {
        // 4 MB of data as 16 K sets x (8 tags over 32 segments).
        p.sets = std::max(16384u / scale, 16u);
        p.tags_per_set = 8;
        p.segment_budget = wide_compressed_sets ? 64 : 32;
        p.compressed = true;
    } else {
        // Plain 4 MB 8-way: 8 K sets. Adaptive prefetching borrows
        // the compression hardware's spare tags as victim tags.
        p.sets = std::max(8192u / scale, 16u);
        p.tags_per_set = 8 + (adaptive_prefetch ? extra_victim_tags : 0);
        p.segment_budget = 64;
        p.compressed = false;
    }
    p.banks = 8;
    p.cores = cores;
    p.decompression_latency = decompression_latency;
    p.adaptive_compression = adaptive_compression;
    p.l1_prefetch_trains_l2 = l1_prefetch_triggers_l2;
    p.verify_fill_roundtrip = audit_fill_roundtrip;
    return p;
}

MemoryParams
SystemConfig::memoryParams() const
{
    MemoryParams p;
    p.dram_latency = 400;
    p.link_bytes_per_cycle = bytesPerCycle(pin_bandwidth_gbps);
    p.infinite_bandwidth = infinite_bandwidth;
    p.link_compression = link_compression;
    p.dram = dram;
    return p;
}

CoreParams
SystemConfig::coreParams() const
{
    return CoreParams{};
}

PrefetcherParams
SystemConfig::l1PrefetcherParams() const
{
    PrefetcherParams p;
    p.startup_prefetches = l1_startup_prefetches;
    return p;
}

PrefetcherParams
SystemConfig::l2PrefetcherParams() const
{
    PrefetcherParams p;
    p.startup_prefetches = l2_startup_prefetches;
    return p;
}

SystemConfig
makeConfig(unsigned cores, unsigned scale, bool cache_compression,
           bool link_compression, bool prefetching, bool adaptive,
           double pin_bandwidth_gbps)
{
    // Out-of-range values are rejected by validate() when the system
    // is built, with a catchable ConfigError instead of an assert.
    SystemConfig c;
    c.cores = cores;
    c.scale = scale;
    c.cache_compression = cache_compression;
    c.link_compression = link_compression;
    c.prefetching = prefetching;
    c.adaptive_prefetch = adaptive;
    c.pin_bandwidth_gbps = pin_bandwidth_gbps;
    // The CMPSIM_DRAM spec lands in the config itself (not applied at
    // some later layer) so batch fingerprints and journal keys see
    // the armed backend.
    applyDramEnv(c.dram);
    // Same contract for CMPSIM_SAMPLING: the plan changes measured
    // numbers, so it must land in the config that feeds fingerprints.
    applySamplingEnv(c.sampling);
    return c;
}

} // namespace cmpsim
