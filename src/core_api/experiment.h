/**
 * @file
 * Experiment harness: runs (config, workload, seed) points, extracts
 * the paper's metrics, aggregates over seeds with 95% confidence
 * intervals [3], and computes the speedup / interaction arithmetic of
 * Section 5 (EQ 5, after Fields et al. [21]).
 */

#ifndef CMPSIM_CORE_API_EXPERIMENT_H
#define CMPSIM_CORE_API_EXPERIMENT_H

#include <string>
#include <vector>

#include "src/core_api/cmp_system.h"
#include "src/workload/workload_params.h"

namespace cmpsim {

/** Metrics extracted from one simulation run. */
struct RunResult
{
    double cycles = 0;
    double instructions = 0;
    double ipc = 0;

    // L2 behaviour.
    double l2_demand_misses = 0;
    double l2_demand_accesses = 0;
    double l2_miss_rate = 0;                  ///< misses / accesses
    double l2_misses_per_kilo_instr = 0;

    // Off-chip.
    double bandwidth_gbps = 0;

    // Compression.
    double compression_ratio = 1.0;
    double penalized_hits = 0;

    // Prefetching (Table 4 metrics per prefetcher level).
    struct PfMetrics
    {
        double rate_per_kilo_instr = 0; ///< EQ 2
        double coverage_pct = 0;        ///< EQ 3
        double accuracy_pct = 0;        ///< EQ 4
    };
    PfMetrics l1i, l1d, l2pf;

    // Adaptive mechanism.
    double l2_adaptive_counter = 0;
    double useful_prefetches = 0;
    double useless_prefetches = 0;
    double harmful_flags = 0;
    double victim_tags_per_set = 0;

    /**
     * Statistical sampling (DESIGN.md §14): populated when the run
     * used an armed config.sampling plan. The headline fields above
     * then aggregate over exactly the detailed intervals (counter
     * deltas bracketing each measured window), and these summaries
     * carry the per-interval mean / 95% CI of each metric.
     */
    struct SampledMetrics
    {
        bool armed = false;
        unsigned intervals = 0;     ///< intervals actually measured
        bool stopped_early = false; ///< CI stopping rule fired
        double ff_instructions = 0; ///< fast-forwarded, all cores

        SampleSummary cycles;
        SampleSummary ipc;
        SampleSummary l2_miss_rate;
        SampleSummary l2_mpki;
        SampleSummary bandwidth_gbps;
        SampleSummary compression_ratio;
    };
    SampledMetrics sampled;
};

/** Run-length policy (overridable via environment; see options.cc). */
struct RunLengths
{
    std::uint64_t warmup_per_core = 200000;
    std::uint64_t measure_per_core = 60000;
};

/**
 * Environment-configured defaults:
 *   CMPSIM_SCALE   capacity divisor (default 4; 1 = paper full size)
 *   CMPSIM_WARMUP  functional warmup instructions per core
 *   CMPSIM_MEASURE timed instructions per core
 *   CMPSIM_SEEDS   seeds per experiment point (default 2)
 *   CMPSIM_JOBS    experiment worker threads (0/unset = hardware)
 */
unsigned defaultScale();
RunLengths defaultRunLengths();
unsigned defaultSeeds();

/**
 * Parse environment variable @p name as an unsigned integer,
 * returning @p fallback when unset or empty. An explicit 0 is a
 * valid value (e.g. CMPSIM_WARMUP=0, CMPSIM_JOBS=0 = auto); only a
 * string with no digits or trailing garbage is fatal.
 */
std::uint64_t envUint64Or(const char *name, std::uint64_t fallback);

/**
 * Build a system, warm it up, run it, and extract metrics. When
 * config.sampling is armed the run executes the sampling plan instead
 * of one contiguous lengths.measure_per_core window (which is then
 * ignored — the plan's detail_per_core defines the measured length)
 * and RunResult::sampled carries the per-interval CIs.
 */
RunResult runOnce(const SystemConfig &config,
                  const std::string &benchmark,
                  const RunLengths &lengths);

/** Multi-seed aggregate of a metric extracted per run. */
struct MetricSummary
{
    SampleSummary cycles;
    /** Over-seed IPC summary. Recomputed from runs wherever cycles
     *  is (aggregatePoint), never serialized: journal bodies written
     *  before it existed parse unchanged. */
    SampleSummary ipc;
    std::vector<RunResult> runs;
};

/** Run @p seeds seeds of one point. */
MetricSummary runSeeds(SystemConfig config, const std::string &benchmark,
                       const RunLengths &lengths, unsigned seeds);

/** Speedup of @p enhanced over @p base (both in cycles). */
inline double
speedup(double base_cycles, double enhanced_cycles)
{
    return base_cycles / enhanced_cycles;
}

/**
 * Interaction(A, B) per EQ 5:
 *   Speedup(A,B) = Speedup(A) x Speedup(B) x (1 + Interaction(A,B)).
 */
inline double
interaction(double speedup_a, double speedup_b, double speedup_ab)
{
    return speedup_ab / (speedup_a * speedup_b) - 1.0;
}

/** Mean over seeds of the cycle counts of @p s. */
double meanCycles(const MetricSummary &s);

/** Mean of an arbitrary RunResult field over seeds. */
double meanOf(const MetricSummary &s,
              double (*extract)(const RunResult &));

} // namespace cmpsim

#endif // CMPSIM_CORE_API_EXPERIMENT_H
