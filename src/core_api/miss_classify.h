/**
 * @file
 * L2 miss classification for the paper's Figure 8: how many demand
 * misses can be avoided by compression, by prefetching, by either, or
 * by neither, plus how many prefetches compression eliminates.
 *
 * The paper estimates these sets by comparing miss profiles across
 * configurations with inclusion-exclusion; we do the same but with
 * exact per-line miss counts recorded by the L2's miss observer, so
 * the intersection is computed per address rather than globally:
 *
 *   avoided_by_C(l)   = max(0, base(l) - withC(l))
 *   avoided_by_P(l)   = max(0, base(l) - withP(l))
 *   avoided_either(l) = min(avoided_by_C, avoided_by_P)  [intersection]
 *
 * summed over lines l. Prefetch classes compare prefetch-fill counts
 * between the P and CP configurations.
 */

#ifndef CMPSIM_CORE_API_MISS_CLASSIFY_H
#define CMPSIM_CORE_API_MISS_CLASSIFY_H

#include <unordered_map>

#include "src/cache/request_types.h"
#include "src/common/types.h"

namespace cmpsim {

/** Per-line demand-miss and prefetch-fill counts from one run. */
class MissProfile
{
  public:
    /** Wire as the L2 miss observer. */
    void
    record(ReqType type, Addr line)
    {
        if (type == ReqType::Demand)
            ++demand_[line];
        else
            ++prefetch_[line];
    }

    std::uint64_t totalDemandMisses() const;
    std::uint64_t totalPrefetchFills() const;

    const std::unordered_map<Addr, std::uint32_t> &demand() const
    {
        return demand_;
    }
    const std::unordered_map<Addr, std::uint32_t> &prefetches() const
    {
        return prefetch_;
    }

  private:
    std::unordered_map<Addr, std::uint32_t> demand_;
    std::unordered_map<Addr, std::uint32_t> prefetch_;
};

/** Figure 8's six access classes, as fractions of base demand misses
 *  (the figure's 100% line). */
struct MissClassification
{
    double unavoidable = 0;       ///< missed in every config
    double only_compression = 0;  ///< avoided only by L2 compression
    double only_prefetching = 0;  ///< avoided only by L2 prefetching
    double either = 0;            ///< avoided by either technique
    double prefetches_kept = 0;   ///< prefetch fills surviving compression
    double prefetches_avoided = 0;///< prefetch fills compression removes

    double
    totalDemandFraction() const
    {
        return unavoidable + only_compression + only_prefetching +
               either;
    }
};

/**
 * Combine four profiles (base, compression-only, prefetch-only, both)
 * into the Figure 8 classification.
 */
MissClassification classifyMisses(const MissProfile &base,
                                  const MissProfile &with_compression,
                                  const MissProfile &with_prefetching,
                                  const MissProfile &with_both);

} // namespace cmpsim

#endif // CMPSIM_CORE_API_MISS_CLASSIFY_H
