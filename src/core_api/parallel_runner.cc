#include "src/core_api/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/ckpt/cont_tag.h"
#include "src/ckpt/crc32.h"
#include "src/common/fingerprint.h"
#include "src/obs/json_writer.h"
#include "src/obs/run_report.h"
#include "src/obs/trace.h"
#include "src/sim/thread_pool.h"

namespace cmpsim {

unsigned
defaultJobs()
{
    const auto jobs = envUint64Or("CMPSIM_JOBS", 0);
    if (jobs != 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

RunPolicy
defaultRunPolicy()
{
    RunPolicy policy;
    policy.max_attempts =
        1 + static_cast<unsigned>(envUint64Or("CMPSIM_RETRIES", 1));
    if (const char *env = std::getenv("CMPSIM_JOURNAL")) {
        if (*env != '\0')
            policy.journal_path = env;
    }
    if (const char *env = std::getenv("CMPSIM_POINT_TIMEOUT")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end == env || *end != '\0') {
            throw ConfigError("CMPSIM_POINT_TIMEOUT",
                              std::string("bad value \"") + env + "\"");
        }
        policy.point_timeout_sec = v;
    }
    policy.faults = FaultPlan::fromEnv();
    if (const char *env = std::getenv("CMPSIM_REPORT")) {
        if (*env != '\0')
            policy.report_path = env;
    }
    if (const char *env = std::getenv("CMPSIM_PROGRESS")) {
        policy.progress = *env != '\0' &&
                          !(env[0] == '0' && env[1] == '\0');
    }
    return policy;
}

std::size_t
BatchResult::failed() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const PointOutcome &o) {
                          return o.status == PointStatus::Failed;
                      }));
}

std::size_t
BatchResult::restored() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const PointOutcome &o) {
                          return o.status == PointStatus::Restored;
                      }));
}

std::string
BatchResult::failureSummary() const
{
    const std::size_t n = failed();
    if (n == 0)
        return "";
    std::string out = std::to_string(n) + "/" +
                      std::to_string(outcomes.size()) +
                      " points failed:";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const PointOutcome &o = outcomes[i];
        if (o.status != PointStatus::Failed)
            continue;
        out += "\n  point " + std::to_string(i) + " after " +
               std::to_string(o.attempts) + " attempt(s): " + o.error;
    }
    if (!retry_delays_ms.empty()) {
        out += "\n  retry backoff:";
        for (const std::uint64_t ms : retry_delays_ms)
            out += " " + std::to_string(ms) + "ms";
    }
    return out;
}

namespace {

/**
 * Append-only journal of completed points. Text format (v2):
 *
 *     cmpsim-journal v2\n
 *     point <fp:016x> <len> <crc:08x>\n
 *     <len bytes of summaryBytes() text>end\n
 *     ...
 *
 * <crc> is the CRC-32 of the record body, so a corrupted *interior*
 * record (bit rot, partial overwrite) is detected — the journal is
 * truncated at the first bad record, keeping the valid prefix, rather
 * than trusting a body whose framing happens to still line up. v1
 * files (no CRC field) are still read; loading one rewrites it in v2
 * so every on-disk journal converges to the checked format.
 *
 * Loading tolerates a crash mid-append: the valid prefix is kept and
 * the partial tail truncated away, so a journal is usable after any
 * interruption. Appends are serialized by a mutex and flushed per
 * record (a record is either fully present or dropped on reload).
 */
class Journal
{
  public:
    explicit Journal(const std::string &path) : path_(path)
    {
        load();
        out_.open(path_, std::ios::binary | std::ios::app);
        if (!out_.is_open()) {
            throw ConfigError("journal",
                              "cannot open journal file \"" + path_ +
                                  "\" for append");
        }
    }

    bool
    lookup(std::uint64_t fp, std::string &bytes) const
    {
        const auto it = records_.find(fp);
        if (it == records_.end())
            return false;
        bytes = it->second;
        return true;
    }

    void
    append(std::uint64_t fp, const std::string &bytes)
    {
        const std::string head = recordHead(fp, bytes);
        std::lock_guard<std::mutex> lock(mutex_);
        out_ << head << bytes << "end\n";
        out_.flush();
    }

  private:
    static constexpr const char *kHeader = "cmpsim-journal v2\n";
    static constexpr const char *kHeaderV1 = "cmpsim-journal v1\n";

    static std::string
    recordHead(std::uint64_t fp, const std::string &bytes)
    {
        char head[80];
        std::snprintf(head, sizeof(head), "point %016llx %zu %08lx\n",
                      static_cast<unsigned long long>(fp), bytes.size(),
                      static_cast<unsigned long>(
                          ckpt::crc32(bytes.data(), bytes.size())));
        return head;
    }

    void
    load()
    {
        std::string content;
        {
            std::ifstream in(path_, std::ios::binary);
            if (in) {
                content.assign(std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>());
            }
        }

        const std::string header = kHeader;
        const std::string header_v1 = kHeaderV1;
        const bool v2 = content.compare(0, header.size(), header) == 0;
        const bool v1 =
            !v2 && content.compare(0, header_v1.size(), header_v1) == 0;

        // Parse-order record list: the map serves lookups, the vector
        // preserves append order for the v1 -> v2 rewrite.
        std::vector<std::pair<std::uint64_t, std::string>> ordered;
        std::size_t good = 0;
        if (v2 || v1) {
            std::size_t pos = header.size(); // both headers same length
            good = pos;
            while (pos < content.size()) {
                if (content.compare(pos, 6, "point ") != 0)
                    break;
                const std::size_t nl = content.find('\n', pos);
                if (nl == std::string::npos)
                    break;
                const char *p = content.c_str() + pos + 6;
                char *end = nullptr;
                const std::uint64_t fp = std::strtoull(p, &end, 16);
                if (end == p || *end != ' ')
                    break;
                p = end + 1;
                const std::uint64_t len = std::strtoull(p, &end, 10);
                if (end == p)
                    break;
                std::uint64_t crc = 0;
                if (v2) {
                    if (*end != ' ')
                        break;
                    p = end + 1;
                    crc = std::strtoull(p, &end, 16);
                }
                if (end != content.c_str() + nl)
                    break;
                const std::size_t body = nl + 1;
                if (body + len + 4 > content.size())
                    break; // truncated mid-record
                if (content.compare(body + len, 4, "end\n") != 0)
                    break;
                std::string bytes = content.substr(body, len);
                if (v2 && ckpt::crc32(bytes.data(), bytes.size()) !=
                              static_cast<std::uint32_t>(crc)) {
                    break; // interior corruption: keep the prefix
                }
                records_[fp] = bytes;
                ordered.emplace_back(fp, std::move(bytes));
                pos = body + len + 4;
                good = pos;
            }
        }

        if (good == 0) {
            // Missing, empty, or unrecognisable: start fresh.
            std::ofstream fresh(path_,
                                std::ios::binary | std::ios::trunc);
            if (fresh.is_open())
                fresh << header;
        } else if (v1) {
            // Upgrade in place: rewrite the valid prefix with CRCs so
            // subsequent appends and reloads are all one format.
            std::ofstream fresh(path_,
                                std::ios::binary | std::ios::trunc);
            if (fresh.is_open()) {
                fresh << header;
                for (const auto &[fp, bytes] : ordered)
                    fresh << recordHead(fp, bytes) << bytes << "end\n";
            }
        } else if (good < content.size()) {
            // Drop the corrupt/partial tail.
            std::filesystem::resize_file(path_, good);
        }
    }

    std::string path_;
    std::unordered_map<std::uint64_t, std::string> records_;
    std::ofstream out_;
    std::mutex mutex_;
};

void
appendHex(std::string &out, const char *name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%a\n", name, v);
    out += buf;
}

/** Aggregate a point's per-seed cycles exactly as the serial runSeeds
 *  loop does, so summaries are bit-identical however they were
 *  produced (simulated, retried, or journal-restored). */
void
aggregatePoint(MetricSummary &summary)
{
    std::vector<double> cycle_samples, ipc_samples;
    cycle_samples.reserve(summary.runs.size());
    ipc_samples.reserve(summary.runs.size());
    for (const auto &r : summary.runs) {
        cycle_samples.push_back(r.cycles);
        ipc_samples.push_back(r.ipc);
    }
    summary.cycles = summarize(cycle_samples);
    summary.ipc = summarize(ipc_samples);
}

const char *
pointStatusName(PointStatus s)
{
    switch (s) {
    case PointStatus::Ok: return "ok";
    case PointStatus::Restored: return "restored";
    case PointStatus::Failed: return "failed";
    }
    return "unknown";
}

/** Batch JSON report (RunPolicy::report_path / CMPSIM_REPORT): the
 *  per-point provenance a sweep harness archives — what ran, what was
 *  restored, what failed and why, and what the batch cost. */
void
writeBatchReport(const std::string &path,
                 const std::vector<PointSpec> &points,
                 const BatchResult &batch,
                 const std::vector<std::uint64_t> &fps,
                 double wall_seconds)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
        throw ConfigError("report",
                          "cannot open batch report file \"" + path +
                              "\" for writing");
    }
    JsonWriter w(out);
    w.beginObject();
    w.keyValue("schema", "cmpsim.batch_report.v1");
    w.keyValue("points", static_cast<std::uint64_t>(points.size()));
    w.keyValue("failed", static_cast<std::uint64_t>(batch.failed()));
    w.keyValue("restored",
               static_cast<std::uint64_t>(batch.restored()));
    w.beginArray("outcomes");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointOutcome &o = batch.outcomes[i];
        const MetricSummary &s = batch.summaries[i];
        w.beginObject();
        w.keyValue("point", static_cast<std::uint64_t>(i));
        w.keyValue("benchmark", points[i].benchmark);
        w.keyValue("seeds",
                   static_cast<std::uint64_t>(points[i].seeds));
        w.keyValue("fingerprint", fps[i]);
        w.keyValue("status", pointStatusName(o.status));
        w.keyValue("attempts", static_cast<std::uint64_t>(o.attempts));
        if (o.status == PointStatus::Failed) {
            w.keyValue("error_kind", errorKindName(o.error_kind));
            w.keyValue("error", o.error);
        }
        w.keyValue("cycles_mean", s.cycles.mean);
        w.keyValue("cycles_ci95", s.cycles.ci95);
        w.end();
    }
    w.end();
    w.beginObject("telemetry");
    w.keyValue("wall_seconds", wall_seconds);
    w.keyValue("max_rss_kb", currentMaxRssKb());
    w.end();
    w.end();
    out << "\n";
}

} // namespace

BatchResult
runPointsChecked(const std::vector<PointSpec> &points, unsigned jobs,
                 const RunPolicy &policy)
{
    const auto batch_start = std::chrono::steady_clock::now();
    BatchResult batch;
    batch.summaries.resize(points.size());
    batch.outcomes.resize(points.size());

    std::unique_ptr<Journal> journal;
    if (!policy.journal_path.empty())
        journal = std::make_unique<Journal>(policy.journal_path);

    // Restore journaled points; lay out the remaining (point, seed)
    // tasks in submission order.
    struct Task
    {
        std::size_t point;
        unsigned seed_idx;
    };
    std::vector<Task> tasks;
    std::vector<std::uint64_t> fps(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].seeds < 1) {
            throw ConfigError("point.seeds",
                              "point " + std::to_string(i) +
                                  " has zero seeds");
        }
        fps[i] = fnv1a(pointSpecBytes(points[i]));
        std::string bytes;
        if (journal && journal->lookup(fps[i], bytes) &&
            parseSummaryBytes(bytes, batch.summaries[i]) &&
            batch.summaries[i].runs.size() == points[i].seeds) {
            batch.outcomes[i].status = PointStatus::Restored;
            continue;
        }
        batch.summaries[i].runs.assign(points[i].seeds, RunResult{});
        for (unsigned s = 0; s < points[i].seeds; ++s)
            tasks.push_back(Task{i, s});
    }
    auto finishBatch = [&] {
        if (policy.report_path.empty())
            return;
        const double wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - batch_start)
                .count();
        writeBatchReport(policy.report_path, points, batch, fps,
                         wall_seconds);
    };

    if (tasks.empty()) {
        finishBatch();
        return batch;
    }

    if (jobs == 0)
        jobs = defaultJobs();
    jobs = static_cast<unsigned>(std::min<std::size_t>(jobs, tasks.size()));

    // Per-task failure slots (race-free: unique per task) and per-point
    // countdown of outstanding seeds; the last seed to finish a point
    // aggregates it and appends the journal record, so a crash later
    // in the batch cannot lose already-completed points.
    struct TaskFailure
    {
        bool failed = false;
        bool restored = false; ///< resumed from a CMPSIM_RESTORE ckpt
        ErrorKind kind = ErrorKind::Internal;
        std::string what;
    };
    std::vector<TaskFailure> failures(tasks.size());
    std::unique_ptr<std::atomic<unsigned>[]> pending(
        new std::atomic<unsigned>[points.size()]);
    for (std::size_t i = 0; i < points.size(); ++i)
        pending[i].store(points[i].seeds, std::memory_order_relaxed);

    const unsigned max_attempts = std::max(policy.max_attempts, 1u);
    std::vector<std::size_t> round(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t)
        round[t] = t;

    const std::size_t total_tasks = tasks.size();
    std::atomic<std::size_t> tasks_done{0};

    // Scope the pool so its destructor joins the workers even if
    // wait() rethrows (it shouldn't: tasks catch internally).
    ThreadPool pool(jobs);
    for (unsigned attempt = 1;
         attempt <= max_attempts && !round.empty(); ++attempt) {
        for (const std::size_t t : round) {
            pool.submit([&points, &policy, &batch, &failures, &tasks,
                         &fps, &pending, &journal, &tasks_done,
                         total_tasks, t, attempt] {
                const Task &task = tasks[t];
                TaskFailure &slot = failures[t];
                slot.failed = false;
                // Each concurrent task traces onto its own (pid, tid)
                // track so parallel points don't interleave.
                TraceThreadScope trace_scope(
                    kTraceSimPid, static_cast<unsigned>(t) + 1);
                Tracer *tracer = Tracer::armed();
                const std::uint64_t wall0 =
                    tracer != nullptr ? tracer->nowWallUs() : 0;
                try {
                    // Arm injection/deadline for exactly this attempt
                    // of this (point, seed) task.
                    FaultArmGuard arm(policy.faults, attempt,
                                      task.point, task.seed_idx + 1);
                    DeadlineGuard deadline(policy.point_timeout_sec);
                    SystemConfig config = points[task.point].config;
                    config.seed = task.seed_idx + 1;
                    batch.summaries[task.point].runs[task.seed_idx] =
                        runOnce(config, points[task.point].benchmark,
                                points[task.point].lengths);
                } catch (const SimError &e) {
                    slot.failed = true;
                    slot.kind = e.kind();
                    slot.what = e.what();
                } catch (const std::exception &e) {
                    slot.failed = true;
                    slot.kind = ErrorKind::Internal;
                    slot.what = e.what();
                } catch (...) {
                    slot.failed = true;
                    slot.kind = ErrorKind::Internal;
                    slot.what = "non-standard exception";
                }
                // Consume unconditionally so a failed attempt cannot
                // leak this thread's flag into its next task.
                slot.restored =
                    ckpt::consumeRestoredFlag() && !slot.failed;
                if (!slot.failed &&
                    pending[task.point].fetch_sub(1) == 1) {
                    aggregatePoint(batch.summaries[task.point]);
                    if (journal) {
                        journal->append(
                            fps[task.point],
                            summaryBytes(batch.summaries[task.point]));
                    }
                }
                const char *result = slot.failed ? "failed" : "ok";
                if (tracer != nullptr) {
                    tracer->completeWall(
                        "point.task", wall0, tracer->nowWallUs(),
                        {{"point", std::uint64_t{task.point}},
                         {"seed", std::uint64_t{task.seed_idx + 1}},
                         {"attempt", std::uint64_t{attempt}},
                         {"status", result}});
                }
                const std::size_t done =
                    tasks_done.fetch_add(1) + 1;
                if (policy.progress) {
                    std::fprintf(
                        stderr,
                        "[cmpsim] %zu/%zu point %zu seed %u "
                        "attempt %u: %s\n",
                        done, total_tasks, task.point,
                        task.seed_idx + 1, attempt, result);
                }
            });
        }
        pool.wait();

        // Classify this round serially, in task order, so retry order
        // (and therefore every outcome) is deterministic.
        std::vector<std::size_t> retry;
        for (const std::size_t t : round) {
            const Task &task = tasks[t];
            PointOutcome &outcome = batch.outcomes[task.point];
            outcome.attempts = std::max(outcome.attempts, attempt);
            const TaskFailure &slot = failures[t];
            if (!slot.failed) {
                // A run that resumed from a checkpoint completed, but
                // was not simulated from scratch — report it as
                // Restored (same status journal hits use).
                if (slot.restored && outcome.status == PointStatus::Ok)
                    outcome.status = PointStatus::Restored;
                continue;
            }
            if (errorKindTransient(slot.kind) && attempt < max_attempts) {
                retry.push_back(t);
                continue;
            }
            if (outcome.status != PointStatus::Failed) {
                outcome.status = PointStatus::Failed;
                outcome.error_kind = slot.kind;
                outcome.error = slot.what;
            }
        }
        round = std::move(retry);

        if (!round.empty() && attempt < max_attempts) {
            // Bounded backoff before the next retry round, so a
            // transiently overloaded host (the usual cause of watchdog
            // trips) gets breathing room. Deterministic by design: the
            // delay is keyed on the retrying points' spec fingerprints
            // and the attempt number — simulation-derived quantities —
            // never on wall-clock or randomness, so rerunning the same
            // batch sleeps the same schedule.
            std::uint64_t key = 0x9e3779b97f4a7c15ULL ^ attempt;
            for (const std::size_t t : round)
                key = (key ^ fps[tasks[t].point]) * 0x100000001b3ULL;
            const std::uint64_t delay_ms =
                std::min<std::uint64_t>(500, 10ULL << (attempt - 1)) +
                key % 10;
            batch.retry_delays_ms.push_back(delay_ms);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
        }
    }

    finishBatch();
    return batch;
}

std::vector<MetricSummary>
runPoints(const std::vector<PointSpec> &points, unsigned jobs)
{
    BatchResult batch = runPointsChecked(points, jobs, defaultRunPolicy());
    if (batch.failed() != 0) {
        ErrorKind kind = ErrorKind::Internal;
        for (const PointOutcome &o : batch.outcomes) {
            if (o.status == PointStatus::Failed) {
                kind = o.error_kind;
                break;
            }
        }
        throw SimError(kind, "parallel_runner", batch.failureSummary());
    }
    return std::move(batch.summaries);
}

std::string
summaryBytes(const MetricSummary &summary)
{
    std::string out;
    appendHex(out, "cycles.mean", summary.cycles.mean);
    appendHex(out, "cycles.ci95", summary.cycles.ci95);
    out += "n=" + std::to_string(summary.cycles.n) + "\n";
    for (const auto &r : summary.runs) {
        appendHex(out, "cycles", r.cycles);
        appendHex(out, "instructions", r.instructions);
        appendHex(out, "ipc", r.ipc);
        appendHex(out, "l2_demand_misses", r.l2_demand_misses);
        appendHex(out, "l2_demand_accesses", r.l2_demand_accesses);
        appendHex(out, "l2_miss_rate", r.l2_miss_rate);
        appendHex(out, "l2_mpki", r.l2_misses_per_kilo_instr);
        appendHex(out, "bandwidth_gbps", r.bandwidth_gbps);
        appendHex(out, "compression_ratio", r.compression_ratio);
        appendHex(out, "penalized_hits", r.penalized_hits);
        for (const auto *pf : {&r.l1i, &r.l1d, &r.l2pf}) {
            appendHex(out, "pf.rate", pf->rate_per_kilo_instr);
            appendHex(out, "pf.coverage", pf->coverage_pct);
            appendHex(out, "pf.accuracy", pf->accuracy_pct);
        }
        appendHex(out, "adaptive_counter", r.l2_adaptive_counter);
        appendHex(out, "useful", r.useful_prefetches);
        appendHex(out, "useless", r.useless_prefetches);
        appendHex(out, "harmful", r.harmful_flags);
        appendHex(out, "victim_tags", r.victim_tags_per_set);
        // Sampled-run block, appended only when the run used an armed
        // sampling plan: unsampled journal bodies stay byte-identical
        // to the pre-sampling format (same gating idea as the DRAM
        // knobs in pointSpecBytes).
        if (r.sampled.armed) {
            const RunResult::SampledMetrics &sm = r.sampled;
            out += "sampling.intervals=" +
                   std::to_string(sm.intervals) + "\n";
            out += "sampling.stopped_early=" +
                   std::to_string(sm.stopped_early ? 1 : 0) + "\n";
            appendHex(out, "sampling.ff_instructions",
                      sm.ff_instructions);
            const std::pair<const char *, const SampleSummary *>
                metrics[] = {
                    {"cycles", &sm.cycles},
                    {"ipc", &sm.ipc},
                    {"l2_miss_rate", &sm.l2_miss_rate},
                    {"l2_mpki", &sm.l2_mpki},
                    {"bandwidth_gbps", &sm.bandwidth_gbps},
                    {"compression_ratio", &sm.compression_ratio}};
            for (const auto &[name, s] : metrics) {
                const std::string key = std::string("sampling.") + name;
                appendHex(out, (key + ".mean").c_str(), s->mean);
                appendHex(out, (key + ".ci95").c_str(), s->ci95);
            }
        }
    }
    return out;
}

bool
parseSummaryBytes(const std::string &bytes, MetricSummary &out)
{
    out = MetricSummary{};
    std::size_t pos = 0;

    auto nextLine = [&bytes, &pos](std::string &line) {
        if (pos >= bytes.size())
            return false;
        const std::size_t nl = bytes.find('\n', pos);
        if (nl == std::string::npos)
            return false; // every line must be newline-terminated
        line.assign(bytes, pos, nl - pos);
        pos = nl + 1;
        return true;
    };
    auto readValue = [&nextLine](const char *key, double &v) {
        std::string line;
        if (!nextLine(line))
            return false;
        const std::size_t klen = std::string(key).size();
        if (line.compare(0, klen, key) != 0 || line.size() <= klen ||
            line[klen] != '=')
            return false;
        const char *start = line.c_str() + klen + 1;
        char *end = nullptr;
        v = std::strtod(start, &end);
        return end == line.c_str() + line.size();
    };

    double mean = 0, ci95 = 0;
    if (!readValue("cycles.mean", mean) ||
        !readValue("cycles.ci95", ci95))
        return false;
    std::string nline;
    if (!nextLine(nline) || nline.compare(0, 2, "n=") != 0)
        return false;
    char *end = nullptr;
    const std::uint64_t n =
        std::strtoull(nline.c_str() + 2, &end, 10);
    if (end != nline.c_str() + nline.size())
        return false;

    while (pos < bytes.size()) {
        RunResult r;
        if (!readValue("cycles", r.cycles) ||
            !readValue("instructions", r.instructions) ||
            !readValue("ipc", r.ipc) ||
            !readValue("l2_demand_misses", r.l2_demand_misses) ||
            !readValue("l2_demand_accesses", r.l2_demand_accesses) ||
            !readValue("l2_miss_rate", r.l2_miss_rate) ||
            !readValue("l2_mpki", r.l2_misses_per_kilo_instr) ||
            !readValue("bandwidth_gbps", r.bandwidth_gbps) ||
            !readValue("compression_ratio", r.compression_ratio) ||
            !readValue("penalized_hits", r.penalized_hits))
            return false;
        for (auto *pf : {&r.l1i, &r.l1d, &r.l2pf}) {
            if (!readValue("pf.rate", pf->rate_per_kilo_instr) ||
                !readValue("pf.coverage", pf->coverage_pct) ||
                !readValue("pf.accuracy", pf->accuracy_pct))
                return false;
        }
        if (!readValue("adaptive_counter", r.l2_adaptive_counter) ||
            !readValue("useful", r.useful_prefetches) ||
            !readValue("useless", r.useless_prefetches) ||
            !readValue("harmful", r.harmful_flags) ||
            !readValue("victim_tags", r.victim_tags_per_set))
            return false;
        // Optional sampled-run block: presence is detected by peeking
        // for the "sampling." prefix, so journal bodies written before
        // the sampling engine existed still parse.
        if (bytes.compare(pos, 9, "sampling.") == 0) {
            RunResult::SampledMetrics &sm = r.sampled;
            std::string line;
            if (!nextLine(line) ||
                line.compare(0, 19, "sampling.intervals=") != 0)
                return false;
            char *iend = nullptr;
            sm.intervals = static_cast<unsigned>(
                std::strtoul(line.c_str() + 19, &iend, 10));
            if (iend != line.c_str() + line.size())
                return false;
            if (!nextLine(line))
                return false;
            if (line == "sampling.stopped_early=1")
                sm.stopped_early = true;
            else if (line != "sampling.stopped_early=0")
                return false;
            if (!readValue("sampling.ff_instructions",
                           sm.ff_instructions))
                return false;
            const std::pair<const char *, SampleSummary *> metrics[] = {
                {"cycles", &sm.cycles},
                {"ipc", &sm.ipc},
                {"l2_miss_rate", &sm.l2_miss_rate},
                {"l2_mpki", &sm.l2_mpki},
                {"bandwidth_gbps", &sm.bandwidth_gbps},
                {"compression_ratio", &sm.compression_ratio}};
            for (const auto &[name, s] : metrics) {
                const std::string key = std::string("sampling.") + name;
                if (!readValue((key + ".mean").c_str(), s->mean) ||
                    !readValue((key + ".ci95").c_str(), s->ci95))
                    return false;
                s->n = sm.intervals;
            }
            sm.armed = true;
        }
        out.runs.push_back(r);
    }
    if (n != out.runs.size())
        return false;

    // Recompute the aggregate instead of trusting the stored header:
    // summarize() is deterministic, so the round trip is byte-exact
    // and the struct is internally consistent by construction.
    aggregatePoint(out);
    return true;
}

std::string
pointSpecBytes(const PointSpec &spec)
{
    const SystemConfig &c = spec.config;
    std::string out = "cmpsim-point v1\n";
    auto kv = [&out](const char *key, std::uint64_t v) {
        out += std::string(key) + "=" + std::to_string(v) + "\n";
    };
    // Every knob that changes simulated behaviour. Excluded on
    // purpose: seed (the runner assigns s+1 per task), audit_interval
    // / audit_fill_roundtrip / watchdog_cycles (observability only —
    // they abort bad runs, never change good ones), sample_interval
    // (pure observation: the sampler only reads counters, so a
    // sampled and an unsampled run are byte-identical), and lanes
    // (the sharded kernel replays the sequential event order exactly,
    // so results are byte-identical at any lane count — enforced by
    // determinism_check's lanes leg and LaneKernelTest).
    kv("cores", c.cores);
    kv("scale", c.scale);
    kv("cache_compression", c.cache_compression);
    kv("link_compression", c.link_compression);
    kv("prefetching", c.prefetching);
    kv("adaptive_prefetch", c.adaptive_prefetch);
    appendHex(out, "pin_bandwidth_gbps", c.pin_bandwidth_gbps);
    kv("infinite_bandwidth", c.infinite_bandwidth);
    kv("shared_l2_prefetcher", c.shared_l2_prefetcher);
    kv("l1_prefetch_triggers_l2", c.l1_prefetch_triggers_l2);
    kv("extra_victim_tags", c.extra_victim_tags);
    kv("l1_startup_prefetches", c.l1_startup_prefetches);
    kv("l2_startup_prefetches", c.l2_startup_prefetches);
    kv("decompression_latency", c.decompression_latency);
    kv("adaptive_compression", c.adaptive_compression);
    kv("wide_compressed_sets", c.wide_compressed_sets);
    // DRAM knobs are inert while the backend is Fixed, so they are
    // appended only when armed: fixed-mode fingerprints — and every
    // journal written before the banked backend existed — stay valid.
    if (c.dram.backend != DramBackendKind::Fixed) {
        const DramTimingParams &d = c.dram;
        kv("dram.backend", static_cast<std::uint64_t>(d.backend));
        kv("dram.channels", d.channels);
        kv("dram.ranks", d.ranks);
        kv("dram.banks", d.banks);
        kv("dram.row_bytes", d.row_bytes);
        kv("dram.trcd", d.trcd);
        kv("dram.tcas", d.tcas);
        kv("dram.trp", d.trp);
        kv("dram.tras", d.tras);
        kv("dram.burst_bytes", d.burst_bytes);
        kv("dram.burst_cycles", d.burst_cycles);
        kv("dram.ctrl_latency", d.ctrl_latency);
        kv("dram.closed_page", d.closed_page);
        kv("dram.sched", static_cast<std::uint64_t>(d.sched));
        kv("dram.refresh_interval", d.refresh_interval);
        kv("dram.refresh_cycles", d.refresh_cycles);
        kv("dram.wq_high", d.write_high_watermark);
        kv("dram.wq_low", d.write_low_watermark);
    }
    // Sampling-plan knobs use the same gating: the plan changes the
    // measurement protocol (interval schedule, hence every measured
    // number), so it is behavioural — but appending it only when
    // armed keeps every unsampled fingerprint, and every journal
    // written before the sampling engine existed, valid.
    if (c.sampling.armed()) {
        kv("sampling.ff", c.sampling.ff_per_core);
        kv("sampling.detail", c.sampling.detail_per_core);
        kv("sampling.n", c.sampling.max_intervals);
        kv("sampling.warm", c.sampling.warm_per_core);
        appendHex(out, "sampling.ci", c.sampling.ci_target_pct);
    }
    out += "benchmark=" + spec.benchmark + "\n";
    kv("warmup_per_core", spec.lengths.warmup_per_core);
    kv("measure_per_core", spec.lengths.measure_per_core);
    kv("seeds", spec.seeds);
    return out;
}

} // namespace cmpsim
