#include "src/core_api/parallel_runner.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/sim/thread_pool.h"

namespace cmpsim {

unsigned
defaultJobs()
{
    const auto jobs = envUint64Or("CMPSIM_JOBS", 0);
    if (jobs != 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<MetricSummary>
runPoints(const std::vector<PointSpec> &points, unsigned jobs)
{
    std::vector<MetricSummary> results(points.size());
    std::size_t tasks = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        cmpsim_assert(points[i].seeds >= 1);
        results[i].runs.resize(points[i].seeds);
        tasks += points[i].seeds;
    }
    if (tasks == 0)
        return results;

    if (jobs == 0)
        jobs = defaultJobs();
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, tasks));

    {
        // Scope the pool so its destructor joins the workers even if
        // wait() rethrows a task exception.
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < points.size(); ++i) {
            for (unsigned s = 0; s < points[i].seeds; ++s) {
                // Slot writes are race-free: (i, s) is unique per task
                // and the result vectors are pre-sized above.
                pool.submit([&points, &results, i, s] {
                    SystemConfig config = points[i].config;
                    config.seed = s + 1;
                    results[i].runs[s] = runOnce(
                        config, points[i].benchmark, points[i].lengths);
                });
            }
        }
        pool.wait();
    }

    // Seed aggregation happens serially, in slot order, so the
    // summary statistics are bit-identical to the serial loop's.
    for (auto &summary : results) {
        std::vector<double> cycle_samples;
        cycle_samples.reserve(summary.runs.size());
        for (const auto &r : summary.runs)
            cycle_samples.push_back(r.cycles);
        summary.cycles = summarize(cycle_samples);
    }
    return results;
}

namespace {

void
appendHex(std::string &out, const char *name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%a\n", name, v);
    out += buf;
}

} // namespace

std::string
summaryBytes(const MetricSummary &summary)
{
    std::string out;
    appendHex(out, "cycles.mean", summary.cycles.mean);
    appendHex(out, "cycles.ci95", summary.cycles.ci95);
    out += "n=" + std::to_string(summary.cycles.n) + "\n";
    for (const auto &r : summary.runs) {
        appendHex(out, "cycles", r.cycles);
        appendHex(out, "instructions", r.instructions);
        appendHex(out, "ipc", r.ipc);
        appendHex(out, "l2_demand_misses", r.l2_demand_misses);
        appendHex(out, "l2_demand_accesses", r.l2_demand_accesses);
        appendHex(out, "l2_miss_rate", r.l2_miss_rate);
        appendHex(out, "l2_mpki", r.l2_misses_per_kilo_instr);
        appendHex(out, "bandwidth_gbps", r.bandwidth_gbps);
        appendHex(out, "compression_ratio", r.compression_ratio);
        appendHex(out, "penalized_hits", r.penalized_hits);
        for (const auto *pf : {&r.l1i, &r.l1d, &r.l2pf}) {
            appendHex(out, "pf.rate", pf->rate_per_kilo_instr);
            appendHex(out, "pf.coverage", pf->coverage_pct);
            appendHex(out, "pf.accuracy", pf->accuracy_pct);
        }
        appendHex(out, "adaptive_counter", r.l2_adaptive_counter);
        appendHex(out, "useful", r.useful_prefetches);
        appendHex(out, "useless", r.useless_prefetches);
        appendHex(out, "harmful", r.harmful_flags);
        appendHex(out, "victim_tags", r.victim_tags_per_set);
    }
    return out;
}

} // namespace cmpsim
