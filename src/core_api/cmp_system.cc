#include "src/core_api/cmp_system.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/audit/audits.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/sim_error.h"
#include "src/dram/dram_backend.h"
#include "src/obs/cpi_stack.h"
#include "src/obs/trace.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

namespace {
/** Cycles between effective-cache-size samples (Table 3 methodology:
 *  "periodically measuring the average effective cache size"). */
constexpr Cycle kRatioSampleInterval = 20000;

/** Functional warmup interleaves cores in chunks this large so the
 *  shared region and the L2 see a realistic interleaving. */
constexpr std::uint64_t kWarmupChunk = 2000;
} // namespace

CmpSystem::CmpSystem(const SystemConfig &config,
                     const WorkloadParams &workload)
    : config_(config), workload_(workload.scaled(config.scale))
{
    // CI's audit leg turns audits on for unmodified binaries:
    // CMPSIM_AUDIT=<cycles> sets the periodic-audit interval (and the
    // per-fill round-trip check); CMPSIM_AUDIT=0 forces audits off.
    if (const char *env = std::getenv("CMPSIM_AUDIT")) {
        config_.audit_interval =
            static_cast<Cycle>(std::strtoull(env, nullptr, 10));
        config_.audit_fill_roundtrip = config_.audit_interval != 0;
    }
    // Same pattern for the forward-progress watchdog: CMPSIM_WATCHDOG
    // overrides the cycle budget (0 disables it).
    if (const char *env = std::getenv("CMPSIM_WATCHDOG")) {
        config_.watchdog_cycles =
            static_cast<Cycle>(std::strtoull(env, nullptr, 10));
    }
    // And for interval time-series sampling: CMPSIM_SAMPLE_CYCLES
    // sets the period (0 disables).
    if (const char *env = std::getenv("CMPSIM_SAMPLE_CYCLES")) {
        config_.sample_interval =
            static_cast<Cycle>(std::strtoull(env, nullptr, 10));
    }
    // Sharded event kernel: CMPSIM_LANES overrides the lane count
    // (validate() rejects 0; the count is clamped to cores). Results
    // are byte-identical at any lane count — only wall-clock changes.
    if (const char *env = std::getenv("CMPSIM_LANES")) {
        config_.lanes =
            static_cast<unsigned>(std::strtoull(env, nullptr, 10));
    }
    // Opt-in CPI-stack / miss-genealogy layer (DESIGN.md §9):
    // CMPSIM_CPISTACK arms it ("0" or empty leaves it off). Pure
    // observation — stats land in cpiStats(), never in stats().
    if (const char *env = std::getenv("CMPSIM_CPISTACK")) {
        config_.cpi_stack =
            *env != '\0' && std::strcmp(env, "0") != 0;
    }
    // Checkpoint/restore knobs (DESIGN.md §13). Tagging must be armed
    // before any component can create a continuation, so every pending
    // closure a later save() walks carries its serializable tag.
    ckpt_settings_ = ckpt::Settings::fromEnv();
    if (ckpt_settings_.armed())
        ckpt::setArmed(true);
    config_.validate();
    if (ckpt_settings_.armed() && config_.sample_interval > 0) {
        throw ConfigError(
            "config.ckpt",
            "checkpointing cannot be combined with interval sampling "
            "(CMPSIM_SAMPLE_CYCLES): sampler rows are not checkpointed");
    }
    if (ckpt_settings_.armed() && config_.cpi_stack) {
        throw ConfigError(
            "config.cpistack",
            "CPI-stack accounting cannot be combined with "
            "checkpoint/restore (CMPSIM_CKPT/CMPSIM_RESTORE): "
            "genealogy records and attribution windows are not "
            "checkpointed");
    }
    buildSystem();

    if (Tracer *tracer = Tracer::armed()) {
        // Label the sim-pid tracks so Perfetto renders names instead
        // of bare tids: tid 0 carries the uncore events, and each
        // core's miss journeys land on their own track.
        tracer->threadName(kTraceSimPid, 0, "uncore");
        if (config_.cpi_stack) {
            for (unsigned c = 0; c < config_.cores; ++c) {
                tracer->threadName(
                    kTraceSimPid, kJourneyTraceTidBase + c,
                    "core " + std::to_string(c) + " journeys (lane " +
                        std::to_string(lane_of_core_[c]) + ")");
            }
        }
    }

    if (config_.sample_interval > 0) {
        IntervalSampler::Shape shape;
        shape.cores = config_.cores;
        shape.link_bytes_per_cycle =
            config_.infinite_bandwidth
                ? 0.0
                : SystemConfig::bytesPerCycle(config_.pin_bandwidth_gbps);
        sampler_ = std::make_unique<IntervalSampler>(
            registry_, config_.sample_interval, shape);
        sampler_->addGauge("l2_compression_ratio",
                           [this] { return l2_->compressionRatio(); });
        sampler_->addGauge("l2_adaptive_counter", [this] {
            return l2_adaptive_ == nullptr
                       ? 0.0
                       : static_cast<double>(
                             l2_adaptive_->counterValue());
        });
        // Registered only when the banked backend is armed so the
        // fixed-path sample rows stay byte-identical to older runs.
        if (memory_->dram() != nullptr) {
            sampler_->addGauge("dram_row_hit_rate", [this] {
                return memory_->dram()->rowHitRate();
            });
        }
        sampler_->begin(eq_.now());
    }

    if (ckpt_settings_.armed()) {
        // Serialize, re-parse, re-serialize: any non-canonical byte
        // (unsorted map walk, uninitialised padding, stale memo) shows
        // up as a self-comparison mismatch long before a restore leg
        // would catch it.
        audits_.add("ckpt.roundtrip", [this](std::string &why) {
            CheckpointCodec codec(*this);
            const std::string once = codec.save();
            if (ckpt::transcode(once) != once) {
                why = "checkpoint re-encode is not byte-identical";
                return false;
            }
            return true;
        });
    }

    if (!ckpt_settings_.restore_path.empty()) {
        restoreCheckpoint(
            ckpt::loadWithFallback(ckpt_settings_.restore_path));
        ckpt::noteRestored();
    }
}

CmpSystem::~CmpSystem() = default;

void
CmpSystem::buildSystem()
{
    // Lane partitioning (DESIGN.md §12): cores map to contiguous lane
    // blocks so lane-order mailbox replay equals core order. Lane
    // components (L1s, cores) schedule on their lane's queue; the
    // uncore (L2, link, DRAM) stays on eq_. All queues share one
    // (when, seq) counter so the merged drain is one total order.
    const unsigned lanes = std::min(
        std::max(config_.lanes, 1u), config_.cores);
    lane_of_core_.resize(config_.cores, 0);
    if (lanes > 1) {
        eq_.setSequenceSource(&lane_seq_);
        for (unsigned l = 0; l < lanes; ++l) {
            lane_eqs_.push_back(std::make_unique<EventQueue>());
            lane_eqs_.back()->setSequenceSource(&lane_seq_);
        }
        for (unsigned c = 0; c < config_.cores; ++c)
            lane_of_core_[c] = c * lanes / config_.cores;
    }
    auto laneQueue = [this, lanes](unsigned c) -> EventQueue & {
        return lanes > 1 ? *lane_eqs_[lane_of_core_[c]] : eq_;
    };

    // Pre-size the kernel heaps so mid-run event bursts never
    // reallocate: in-flight continuations are bounded by cores times
    // pipeline depth (each ROB slot holds at most one outstanding
    // completion, plus fetch/prefetch headroom absorbed by the bound).
    const std::size_t depth = config_.coreParams().rob_entries;
    eq_.reserve(config_.cores * depth);

    values_ = std::make_unique<ValueStore>(fpc_);
    memory_ =
        std::make_unique<MainMemory>(eq_, *values_, config_.memoryParams());
    l2_ = std::make_unique<L2Cache>(eq_, *values_, *memory_,
                                    config_.l2Params());

    const L1Params l1d_params = config_.l1Params();
    L1Params l1i_params = l1d_params;
    l1i_params.mshrs = 4; // sequential fetch + a few prefetches
    l1i_params.prefetch_headroom = 1;

    for (unsigned c = 0; c < config_.cores; ++c) {
        l1i_.push_back(
            std::make_unique<L1Cache>(laneQueue(c), *l2_, c, l1i_params));
        l1d_.push_back(
            std::make_unique<L1Cache>(laneQueue(c), *l2_, c, l1d_params));
        // Checkpoint identity (2*cpu + data side): lets an L2 response
        // tag name which L1 to fill on restore.
        l1i_.back()->setCkptId(2 * c);
        l1d_.back()->setCkptId(2 * c + 1);
    }

    l2_->setL1Invalidator([this](unsigned cpu, Addr line) {
        const bool d_dirty = l1d_[cpu]->invalidateLine(line);
        const bool i_dirty = l1i_[cpu]->invalidateLine(line);
        return d_dirty || i_dirty;
    });
    l2_->setL1Downgrader([this](unsigned cpu, Addr line) {
        l1d_[cpu]->downgradeLine(line);
        l1i_[cpu]->downgradeLine(line);
    });

    if (config_.prefetching) {
        for (unsigned c = 0; c < config_.cores; ++c) {
            pf_l1i_.push_back(std::make_unique<StridePrefetcher>(
                config_.l1PrefetcherParams()));
            pf_l1d_.push_back(std::make_unique<StridePrefetcher>(
                config_.l1PrefetcherParams()));
            ad_l1i_.push_back(
                std::make_unique<AdaptivePrefetchController>(
                    config_.l1_startup_prefetches,
                    config_.adaptive_prefetch));
            ad_l1d_.push_back(
                std::make_unique<AdaptivePrefetchController>(
                    config_.l1_startup_prefetches,
                    config_.adaptive_prefetch));
            l1i_[c]->setPrefetcher(pf_l1i_[c].get());
            l1d_[c]->setPrefetcher(pf_l1d_[c].get());
            l1i_[c]->setAdaptiveController(ad_l1i_[c].get());
            l1d_[c]->setAdaptiveController(ad_l1d_[c].get());
        }
        // One saturating counter for the shared L2 (Section 3), with
        // per-core L2 prefetch engines [7] (or one shared, ablation).
        l2_adaptive_ = std::make_unique<AdaptivePrefetchController>(
            config_.l2_startup_prefetches, config_.adaptive_prefetch);
        l2_->setAdaptiveController(l2_adaptive_.get());
        const unsigned engines =
            config_.shared_l2_prefetcher ? 1 : config_.cores;
        for (unsigned e = 0; e < engines; ++e) {
            pf_l2_.push_back(std::make_unique<StridePrefetcher>(
                config_.l2PrefetcherParams()));
        }
        for (unsigned c = 0; c < config_.cores; ++c) {
            l2_->setPrefetcher(
                c, pf_l2_[config_.shared_l2_prefetcher ? 0 : c].get());
        }
    }

    for (unsigned c = 0; c < config_.cores; ++c) {
        streams_.push_back(std::make_unique<SyntheticWorkload>(
            workload_, *values_, c, config_.seed));
        cores_.push_back(std::make_unique<CoreModel>(
            laneQueue(c), *l1i_[c], *l1d_[c], *values_, *streams_[c], c,
            config_.coreParams()));
    }

    if (config_.cpi_stack) {
        // CPI-stack / miss-genealogy layer (DESIGN.md §9): one journal
        // fed by the uncore timing layers plus one account per core.
        // All its stats land in cpi_registry_ so stats() dumps — and
        // the determinism fingerprints — never change when it's armed.
        const MemoryParams mp = config_.memoryParams();
        miss_journal_ = std::make_unique<MissJournal>(
            mp.link_bytes_per_cycle, mp.infinite_bandwidth);
        l2_->setJournal(miss_journal_.get());
        memory_->setJournal(miss_journal_.get());
        if (memory_->dram() != nullptr) {
            memory_->dram()->setReadObserver(
                [j = miss_journal_.get()](Addr line, Cycle svc_start,
                                          Cycle done, bool row_hit) {
                    j->onDramService(line, svc_start, done, row_hit);
                });
        }
        for (unsigned c = 0; c < config_.cores; ++c) {
            cpi_.push_back(std::make_unique<CpiAccount>(
                c, config_.coreParams().rob_entries,
                miss_journal_.get()));
            cores_[c]->setCpi(cpi_[c].get());
        }
        miss_journal_->registerStats(cpi_registry_, "genealogy");
        for (unsigned c = 0; c < config_.cores; ++c) {
            cpi_[c]->registerStats(cpi_registry_,
                                   "cpi." + std::to_string(c));
        }
        // Conservation: every attributed window's leaves must sum to
        // exactly the elapsed cycles it covered — checked per core.
        audits_.add("obs.cpi_conservation", [this](std::string &why) {
            for (auto &a : cpi_) {
                if (!a->conserved(why))
                    return false;
            }
            return true;
        });
    }

    if (config_.sampling.armed()) {
        // Statistical sampling (DESIGN.md §14): the fast-forward
        // engine exists only when a plan is armed so unsampled runs
        // register no extra stats and their dumps stay byte-identical.
        std::vector<CoreModel *> raw;
        for (auto &core : cores_)
            raw.push_back(core.get());
        ff_engine_ = std::make_unique<FastForwardEngine>(std::move(raw),
                                                         *l2_);
        ff_engine_->registerStats(registry_, "sample");
        // Conservation: functional execution must retire exactly the
        // budget handed out — a skipped or double-counted instruction
        // would silently bias every sampled metric.
        audits_.add("sample.conservation", [this](std::string &why) {
            return ff_engine_->conserved(why);
        });
    }

    if (lanes > 1) {
        // Lane worker crew: lanes - 1 long-lived tasks on a dedicated
        // pool (the coordinator ticks lane 0 inline). Each lane's work
        // is "tick my block's due cores in core order".
        lane_pool_ = std::make_unique<ThreadPool>(lanes - 1);
        lane_crew_ = std::make_unique<LaneCrew>(*lane_pool_, lanes);
        for (unsigned l = 0; l < lanes; ++l) {
            unsigned begin = config_.cores, end = 0;
            for (unsigned c = 0; c < config_.cores; ++c) {
                if (lane_of_core_[c] == l) {
                    begin = std::min(begin, c);
                    end = std::max(end, c + 1);
                }
            }
            lane_eqs_[l]->reserve((end - begin) * depth);
            lane_crew_->setWork(l, [this, begin, end](Cycle now) {
                for (unsigned c = begin; c < end; ++c) {
                    if (cores_[c]->nextWake() <= now)
                        cores_[c]->tick(now);
                }
            });
        }
        lane_crew_->registerStats(lane_registry_, "lane");
    }

    // Stat registration.
    l2_->registerStats(registry_, "l2");
    memory_->registerStats(registry_, "mem");
    for (unsigned c = 0; c < config_.cores; ++c) {
        const std::string idx = std::to_string(c);
        l1i_[c]->registerStats(registry_, "l1i." + idx);
        l1d_[c]->registerStats(registry_, "l1d." + idx);
        cores_[c]->registerStats(registry_, "core." + idx);
        if (config_.prefetching) {
            pf_l1i_[c]->registerStats(registry_, "pf.l1i." + idx);
            pf_l1d_[c]->registerStats(registry_, "pf.l1d." + idx);
            ad_l1i_[c]->registerStats(registry_, "ad.l1i." + idx);
            ad_l1d_[c]->registerStats(registry_, "ad.l1d." + idx);
        }
    }
    if (config_.prefetching) {
        for (unsigned e = 0; e < pf_l2_.size(); ++e) {
            pf_l2_[e]->registerStats(registry_,
                                     "pf.l2." + std::to_string(e));
        }
        l2_adaptive_->registerStats(registry_, "ad.l2");
    }

    // Invariant registration (DESIGN.md §6). Every component hangs its
    // named checks on the shared registry; run() enforces it
    // periodically when config_.audit_interval is set.
    registerEventQueueAudits(audits_, eq_, "eq");
    if (lane_crew_ != nullptr) {
        for (unsigned l = 0; l < lane_crew_->lanes(); ++l) {
            registerEventQueueAudits(audits_, *lane_eqs_[l],
                                     "eq.lane" + std::to_string(l));
        }
        // Lane conservation: every cross-lane emission enqueued into a
        // mailbox must have been drained at a barrier — audits only
        // ever run between quanta, where the logs must be empty.
        audits_.add("lane.conservation", [this](std::string &why) {
            for (unsigned l = 0; l < lane_crew_->lanes(); ++l) {
                const LaneMailbox &m = lane_crew_->mailbox(l);
                if (m.opsEnqueued() != m.opsDrained() ||
                    m.pendingOps() != 0) {
                    why = auditFormat(
                        "lane %u: %llu ops enqueued, %llu drained, "
                        "%zu pending",
                        l,
                        static_cast<unsigned long long>(m.opsEnqueued()),
                        static_cast<unsigned long long>(m.opsDrained()),
                        m.pendingOps());
                    return false;
                }
            }
            return true;
        });
        // Cross-lane same-cycle first touches are the one sequential
        // behaviour the lane overlay cannot reproduce (the later
        // core's RNG stream diverges); flush detects and counts them,
        // and byte-identical results require the count to stay zero.
        audits_.add("lane.value_overlay", [this](std::string &why) {
            for (unsigned l = 0; l < lane_crew_->lanes(); ++l) {
                const LaneMailbox &m = lane_crew_->mailbox(l);
                if (m.collisions() != 0) {
                    why = auditFormat(
                        "lane %u: %llu cross-lane first-touch "
                        "collisions",
                        l,
                        static_cast<unsigned long long>(m.collisions()));
                    return false;
                }
            }
            return true;
        });
    }
    l2_->registerAudits(audits_, "l2");
    registerBandwidthResourceAudits(audits_, l2_->onchip(), "l2.onchip");
    registerPriorityLinkAudits(audits_, memory_->link(), "mem.link");
    memory_->registerAudits(audits_, "mem");
    for (unsigned c = 0; c < config_.cores; ++c) {
        const std::string idx = std::to_string(c);
        l1i_[c]->registerAudits(audits_, "l1i." + idx);
        l1d_[c]->registerAudits(audits_, "l1d." + idx);
    }
}

void
CmpSystem::resetAllStats()
{
    registry_.resetAll();
    memory_->resetStats();
    l2_->resetStats();
    for (unsigned c = 0; c < config_.cores; ++c) {
        l1i_[c]->resetStats();
        l1d_[c]->resetStats();
        cores_[c]->resetStats();
    }
    if (config_.prefetching) {
        for (auto &p : pf_l1i_)
            p->resetStats();
        for (auto &p : pf_l1d_)
            p->resetStats();
        for (auto &p : pf_l2_)
            p->resetStats();
        for (auto &a : ad_l1i_)
            a->resetStats();
        for (auto &a : ad_l1d_)
            a->resetStats();
        l2_adaptive_->resetStats();
    }
    ratio_samples_.reset();
    lane_registry_.resetAll();
    cpi_registry_.resetAll();
    for (auto &a : cpi_)
        a->resetStats();
    if (miss_journal_ != nullptr)
        miss_journal_->resetStats();
    if (sampler_ != nullptr)
        sampler_->onStatsReset(eq_.now());
}

void
CmpSystem::cpiFlush(Cycle now)
{
    for (auto &a : cpi_)
        a->flush(now);
}

void
CmpSystem::warmup(std::uint64_t instr_per_core)
{
    if (restored_) {
        // A restored system is already mid-measurement: the warmed
        // caches, reset-adjusted stats and run cursors all came from
        // the checkpoint. Re-warming would corrupt them.
        return;
    }
    Tracer *tracer = Tracer::armed();
    const std::uint64_t t0 = tracer != nullptr ? tracer->nowWallUs() : 0;

    l2_->setFunctionalMode(true);
    std::uint64_t done = 0;
    while (done < instr_per_core) {
        checkPointDeadline("warmup");
        const std::uint64_t chunk =
            std::min(kWarmupChunk, instr_per_core - done);
        for (auto &core : cores_)
            core->runFunctional(chunk);
        done += chunk;
    }
    l2_->setFunctionalMode(false);
    resetAllStats();

    if (tracer != nullptr) {
        tracer->completeWall("phase.warmup", t0, tracer->nowWallUs(),
                             {{"instr_per_core", instr_per_core}});
    }
}

namespace {

/** Counter tracks in the trace viewer for one sampler row. */
void
traceSampleRow(const IntervalSampler &sampler, const SampleRow &row)
{
    const DerivedMetrics m = sampler.derived(row);
    traceCounter("obs.ipc", row.t1, {{"ipc", m.ipc_total}});
    traceCounter("obs.miss_rates", row.t1,
                 {{"l1d", m.l1d_miss_rate}, {"l2", m.l2_miss_rate}});
    traceCounter("obs.link", row.t1,
                 {{"bytes_per_cycle", m.link_bytes_per_cycle}});
    if (!row.gauges.empty()) {
        traceCounter("obs.compression_ratio", row.t1,
                     {{"ratio", row.gauges[0]}});
    }
}

} // namespace

void
CmpSystem::run(std::uint64_t instr_per_core)
{
    if (lane_crew_ != nullptr) {
        // Sharded kernel (config.lanes > 1): same observable behaviour
        // as the loop below, parallel lane ticks inside each quantum.
        runSharded(instr_per_core);
        return;
    }

    Tracer *tracer = Tracer::armed();
    const std::uint64_t wall0 =
        tracer != nullptr ? tracer->nowWallUs() : 0;

    // Loop cursors live in run_state_ so a mid-run checkpoint carries
    // them; on a fresh run initRunState() fills them, on a resume the
    // restored values already point mid-measurement.
    initRunState(instr_per_core);
    const Cycle start = run_state_.start;
    const std::uint64_t start_retired = run_state_.start_retired;
    const std::uint64_t target = run_state_.target;

    Cycle now = eq_.now();
    Cycle next_sample = run_state_.next_sample;
    const Cycle audit_interval = config_.audit_interval;
    Cycle next_audit = run_state_.next_audit;
    const Cycle obs_interval =
        sampler_ != nullptr ? sampler_->interval() : 0;
    Cycle next_obs = run_state_.next_obs;
    std::uint64_t retired = 0;
    for (auto &core : cores_)
        retired += core->instructionsRetired();

    // Forward-progress watchdog: if no core retires an instruction for
    // watchdog_cycles simulated cycles, the run is livelocked (events
    // keep flowing but nothing completes) and we bail out with a
    // diagnosable WatchdogTimeout instead of spinning forever.
    const Cycle watchdog = config_.watchdog_cycles;
    Cycle last_progress = run_state_.last_progress;
    std::uint64_t last_retired = run_state_.last_retired;
    std::uint64_t iterations = 0;

    // Autosave cadence restarts from "now" on every run() entry (it is
    // wall-progress insurance, not simulated state, so it is not a
    // serialized cursor).
    const std::uint64_t ckpt_every =
        ckpt_settings_.autosaveArmed() ? ckpt_settings_.every : 0;
    Cycle next_ckpt = ckpt_every > 0 ? now + ckpt_every : kCycleNever;

    while (retired < target) {
        if ((++iterations & 0x1ff) == 0)
            checkPointDeadline("run");

        Cycle next = eq_.nextEventCycle();
        for (auto &core : cores_)
            next = std::min(next, core->nextWake());
        if (next == kCycleNever) {
            cmpsim_panic("simulation deadlock: no events, no core "
                         "work\n%s",
                         runDiagnostic(now).c_str());
        }
        if (next < now)
            next = now;

        eq_.advanceTo(next);
        now = next;

        retired = 0;
        for (auto &core : cores_) {
            if (core->nextWake() <= now)
                core->tick(now);
            retired += core->instructionsRetired();
        }

        if (retired != last_retired) {
            last_retired = retired;
            last_progress = now;
        } else if (watchdog > 0 && now - last_progress >= watchdog) {
            traceInstant("watchdog.timeout", now,
                         {{"stalled_cycles", now - last_progress},
                          {"retired", retired}});
            throw WatchdogTimeout(
                "cmp_system.run",
                "no instruction retired in " + std::to_string(watchdog) +
                    " cycles (CMPSIM_WATCHDOG)\n" + runDiagnostic(now));
        }

        if (now >= next_sample) {
            ratio_samples_.sample(l2_->compressionRatio());
            next_sample = now + kRatioSampleInterval;
        }
        if (now >= next_audit) {
            audits_.enforce();
            next_audit = now + audit_interval;
        }
        if (now >= next_obs) {
            sampler_->sampleAt(now);
            if (traceEnabled() && !sampler_->rows().empty())
                traceSampleRow(*sampler_, sampler_->rows().back());
            next_obs = now + obs_interval;
        }
        if (now >= next_ckpt) {
            run_state_.next_sample = next_sample;
            run_state_.next_audit = next_audit;
            run_state_.next_obs = next_obs;
            run_state_.last_progress = last_progress;
            run_state_.last_retired = last_retired;
            saveCheckpointNow();
            next_ckpt = now + ckpt_every;
        }
    }

    ratio_samples_.sample(l2_->compressionRatio());
    if (sampler_ != nullptr) {
        // Flush the final partial interval so short runs still
        // produce a non-empty time-series.
        sampler_->sampleAt(now);
        if (traceEnabled() && !sampler_->rows().empty())
            traceSampleRow(*sampler_, sampler_->rows().back());
    }
    if (!cpi_.empty()) {
        // Close every open attribution window so the CPI leaves sum to
        // exactly the measured cycles before the end-of-run audit.
        cpiFlush(now);
    }
    if (audit_interval > 0)
        audits_.enforce(); // end-of-simulation audit
    run_state_.active = false;
    measured_cycles_ = now - start;
    measured_instructions_ = retired - start_retired;

    if (tracer != nullptr) {
        tracer->completeWall("phase.measure", wall0, tracer->nowWallUs(),
                             {{"instr_per_core", instr_per_core},
                              {"cycles", measured_cycles_}});
    }
}

Cycle
CmpSystem::nextPendingEventCycle() const
{
    Cycle next = eq_.nextEventCycle();
    for (const auto &q : lane_eqs_)
        next = std::min(next, q->nextEventCycle());
    return next;
}

void
CmpSystem::drainMergedTo(Cycle limit)
{
    // Exact k-way merge over the uncore queue plus every lane queue:
    // all queues share one (when, seq) counter, so repeatedly running
    // the globally smallest key replays precisely the order the
    // single-queue kernel would have produced. Cross-queue schedules
    // during the drain (an uncore grant completing an L1 fill, say)
    // land in the target queue's heap with a fresh — larger — seq and
    // are picked up by later rounds of the same scan.
    for (;;) {
        EventQueue *best = nullptr;
        EventQueue::EventKey best_key;
        auto consider = [&](EventQueue &q) {
            EventQueue::EventKey k;
            if (q.nextKey(k) && k.when <= limit &&
                (best == nullptr || k.before(best_key))) {
                best = &q;
                best_key = k;
            }
        };
        consider(eq_);
        for (auto &q : lane_eqs_)
            consider(*q);
        if (best == nullptr)
            break;
        best->runOneEarliest();
    }
    eq_.syncNow(limit);
    for (auto &q : lane_eqs_)
        q->syncNow(limit);
}

void
CmpSystem::runSharded(std::uint64_t instr_per_core)
{
    Tracer *tracer = Tracer::armed();
    const std::uint64_t wall0 =
        tracer != nullptr ? tracer->nowWallUs() : 0;

    initRunState(instr_per_core);
    const Cycle start = run_state_.start;
    const std::uint64_t start_retired = run_state_.start_retired;
    const std::uint64_t target = run_state_.target;

    Cycle now = eq_.now();
    Cycle next_sample = run_state_.next_sample;
    const Cycle audit_interval = config_.audit_interval;
    Cycle next_audit = run_state_.next_audit;
    const Cycle obs_interval =
        sampler_ != nullptr ? sampler_->interval() : 0;
    Cycle next_obs = run_state_.next_obs;
    std::uint64_t retired = 0;
    for (auto &core : cores_)
        retired += core->instructionsRetired();

    const Cycle watchdog = config_.watchdog_cycles;
    Cycle last_progress = run_state_.last_progress;
    std::uint64_t last_retired = run_state_.last_retired;
    std::uint64_t iterations = 0;

    const std::uint64_t ckpt_every =
        ckpt_settings_.autosaveArmed() ? ckpt_settings_.every : 0;
    Cycle next_ckpt = ckpt_every > 0 ? now + ckpt_every : kCycleNever;

    while (retired < target) {
        if ((++iterations & 0x1ff) == 0)
            checkPointDeadline("run");

        Cycle next = nextPendingEventCycle();
        for (auto &core : cores_)
            next = std::min(next, core->nextWake());
        if (next == kCycleNever) {
            cmpsim_panic("simulation deadlock: no events, no core "
                         "work\n%s",
                         runDiagnostic(now).c_str());
        }
        if (next < now)
            next = now;

        drainMergedTo(next);
        now = next;

        {
            // One quantum: every lane ticks its due cores in parallel
            // with emissions deferred, then the coordinator replays
            // the mailboxes in lane (== core) order. Probed and
            // profiled on the coordinator — lane workers never carry
            // the fault-plan arming, so core.stall-style probes are
            // inert inside parallel ticks (DESIGN.md §12).
            CMPSIM_PROF_SCOPE("lane.sync");
            faultSite("lane.sync");
            lane_crew_->runQuantum(now);
            lane_crew_->flushAll();
        }

        retired = 0;
        for (auto &core : cores_)
            retired += core->instructionsRetired();

        if (retired != last_retired) {
            last_retired = retired;
            last_progress = now;
        } else if (watchdog > 0 && now - last_progress >= watchdog) {
            traceInstant("watchdog.timeout", now,
                         {{"stalled_cycles", now - last_progress},
                          {"retired", retired}});
            throw WatchdogTimeout(
                "cmp_system.run",
                "no instruction retired in " + std::to_string(watchdog) +
                    " cycles (CMPSIM_WATCHDOG)\n" + runDiagnostic(now));
        }

        if (now >= next_sample) {
            ratio_samples_.sample(l2_->compressionRatio());
            next_sample = now + kRatioSampleInterval;
        }
        if (now >= next_audit) {
            audits_.enforce();
            next_audit = now + audit_interval;
        }
        if (now >= next_obs) {
            sampler_->sampleAt(now);
            if (traceEnabled() && !sampler_->rows().empty())
                traceSampleRow(*sampler_, sampler_->rows().back());
            next_obs = now + obs_interval;
        }
        if (now >= next_ckpt) {
            run_state_.next_sample = next_sample;
            run_state_.next_audit = next_audit;
            run_state_.next_obs = next_obs;
            run_state_.last_progress = last_progress;
            run_state_.last_retired = last_retired;
            saveCheckpointNow();
            next_ckpt = now + ckpt_every;
        }
    }

    ratio_samples_.sample(l2_->compressionRatio());
    if (sampler_ != nullptr) {
        sampler_->sampleAt(now);
        if (traceEnabled() && !sampler_->rows().empty())
            traceSampleRow(*sampler_, sampler_->rows().back());
    }
    if (!cpi_.empty()) {
        // Close every open attribution window so the CPI leaves sum to
        // exactly the measured cycles before the end-of-run audit.
        cpiFlush(now);
    }
    if (audit_interval > 0)
        audits_.enforce(); // end-of-simulation audit
    run_state_.active = false;
    measured_cycles_ = now - start;
    measured_instructions_ = retired - start_retired;

    if (tracer != nullptr) {
        tracer->completeWall("phase.measure", wall0, tracer->nowWallUs(),
                             {{"instr_per_core", instr_per_core},
                              {"cycles", measured_cycles_}});
    }
}

void
CmpSystem::initRunState(std::uint64_t instr_per_core)
{
    if (run_state_.active)
        return;
    RunState rs;
    rs.active = true;
    rs.start = eq_.now();
    for (auto &core : cores_)
        rs.start_retired += core->instructionsRetired();
    rs.target = rs.start_retired + instr_per_core * config_.cores;
    rs.next_sample = rs.start + kRatioSampleInterval;
    rs.next_audit = config_.audit_interval > 0
                        ? rs.start + config_.audit_interval
                        : kCycleNever;
    const Cycle obs_interval =
        sampler_ != nullptr ? sampler_->interval() : 0;
    rs.next_obs =
        obs_interval > 0 ? rs.start + obs_interval : kCycleNever;
    rs.last_progress = rs.start;
    rs.last_retired = rs.start_retired;
    run_state_ = rs;
}

void
CmpSystem::fastForward(std::uint64_t instr_per_core,
                       std::uint64_t warm_per_core)
{
    cmpsim_assert(ff_engine_ != nullptr);
    Tracer *tracer = Tracer::armed();
    const std::uint64_t t0 = tracer != nullptr ? tracer->nowWallUs() : 0;

    // Drain to quiescence first: functional accesses evict lines, and
    // a pending fill completing into an evicted tag would corrupt the
    // set. The loop terminates because pending events only complete
    // existing work (DRAM refresh is lazy, cores create new events
    // only via tick(), which the drain never calls).
    for (;;) {
        const Cycle next = nextPendingEventCycle();
        if (next == kCycleNever)
            break;
        drainMergedTo(std::max(next, eq_.now()));
    }

    ff_engine_->advance(instr_per_core, warm_per_core);
    sample_state_.ff_instructions +=
        instr_per_core * static_cast<std::uint64_t>(config_.cores);

    if (tracer != nullptr) {
        tracer->completeWall("phase.fastforward", t0, tracer->nowWallUs(),
                             {{"instr_per_core", instr_per_core}});
    }
}

std::vector<ValueStore::Op>
CmpSystem::fastForwardJournaled(std::uint64_t instr_per_core)
{
    values_->startJournal();
    fastForward(instr_per_core, 0);
    return values_->takeJournal();
}

void
CmpSystem::adoptSkip(const CmpSystem &leader,
                     const std::vector<ValueStore::Op> &ops,
                     std::uint64_t instr_per_core)
{
    cmpsim_assert(ff_engine_ != nullptr);
    cmpsim_assert(config_.cores == leader.config_.cores);
    cmpsim_assert(config_.seed == leader.config_.seed);
    cmpsim_assert(workload_.name == leader.workload_.name);

    // Same pre-condition as fastForward(): functional state must not
    // change under pending timed events.
    for (;;) {
        const Cycle next = nextPendingEventCycle();
        if (next == kCycleNever)
            break;
        drainMergedTo(std::max(next, eq_.now()));
    }

    // The timed detail windows between skips spend a *total* budget,
    // so per-core retirement drifts across configurations by up to
    // one window; adoption is a resync to the leader's cursors, and
    // the drift bounds the per-core gap check inside.
    const std::uint64_t slack =
        config_.sampling.detail_per_core *
        static_cast<std::uint64_t>(config_.cores);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        streams_[i]->copyStateFrom(*leader.streams_[i]);
        cores_[i]->adoptSkip(*leader.cores_[i], instr_per_core, slack);
    }
    values_->applyOps(ops);

    const std::uint64_t budget =
        instr_per_core * static_cast<std::uint64_t>(config_.cores);
    ff_engine_->noteAdopted(budget);
    sample_state_.ff_instructions += budget;
}

std::string
CmpSystem::checkpointBytes()
{
    CheckpointCodec codec(*this);
    return codec.save();
}

void
CmpSystem::restoreCheckpoint(std::string_view bytes)
{
    CheckpointCodec codec(*this);
    codec.restore(bytes);
    restored_ = true;
}

void
CmpSystem::saveCheckpointNow()
{
    ckpt::atomicSave(ckpt_settings_.save_path, checkpointBytes());
}

std::string
CmpSystem::runDiagnostic(Cycle now) const
{
    std::string out = "  now=" + std::to_string(now) +
                      " eq.size=" + std::to_string(eq_.size());
    const Cycle horizon = eq_.nextEventCycle();
    out += " eq.next=";
    out += horizon == kCycleNever ? "never" : std::to_string(horizon);
    for (unsigned l = 0; l < lane_eqs_.size(); ++l) {
        const Cycle lh = lane_eqs_[l]->nextEventCycle();
        out += "\n  eq.lane" + std::to_string(l) +
               ": size=" + std::to_string(lane_eqs_[l]->size()) +
               " next=";
        out += lh == kCycleNever ? "never" : std::to_string(lh);
    }
    for (unsigned c = 0; c < config_.cores; ++c) {
        const Cycle wake = cores_[c]->nextWake();
        out += "\n  core." + std::to_string(c) + ": nextWake=";
        out += wake == kCycleNever ? "never" : std::to_string(wake);
        out += " retired=" +
               std::to_string(cores_[c]->instructionsRetired());
    }
    return out;
}

double
CmpSystem::bandwidthGBps() const
{
    if (measured_cycles_ == 0)
        return 0.0;
    const double bytes_per_cycle =
        static_cast<double>(memory_->link().totalBytes()) /
        static_cast<double>(measured_cycles_);
    return bytes_per_cycle * 5.0; // 5 GHz, GB = 1e9 bytes
}

std::uint64_t
CmpSystem::sumL1Counter(const char *side, const char *leaf) const
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < config_.cores; ++c) {
        const std::string name = std::string(side) + "." +
                                 std::to_string(c) + "." + leaf;
        total += registry_.counter(name);
    }
    return total;
}

} // namespace cmpsim
