#include "src/sample/matrix_sampler.h"

#include "src/common/log.h"
#include "src/core_api/cmp_system.h"

namespace cmpsim {

MatrixSampler::MatrixSampler(std::vector<CmpSystem *> systems)
    : systems_(std::move(systems))
{
    cmpsim_assert(!systems_.empty());
    controllers_.reserve(systems_.size());
    for (CmpSystem *sys : systems_)
        controllers_.emplace_back(*sys);
    const SamplingPlan &lead = controllers_.front().plan();
    for (const SamplingController &c : controllers_) {
        cmpsim_assert(c.plan().ff_per_core == lead.ff_per_core);
        cmpsim_assert(c.plan().detail_per_core ==
                      lead.detail_per_core);
        cmpsim_assert(c.plan().max_intervals == lead.max_intervals);
        cmpsim_assert(c.plan().warm_per_core == lead.warm_per_core);
    }
}

std::vector<SamplingResult>
MatrixSampler::run()
{
    const SamplingPlan &plan = controllers_.front().plan();
    const std::uint64_t warm = plan.warmPerCore();
    const std::uint64_t skip = plan.ff_per_core - warm;

    for (unsigned i = 0; i < plan.max_intervals; ++i) {
        if (skip > 0) {
            const std::vector<ValueStore::Op> ops =
                systems_.front()->fastForwardJournaled(skip);
            for (std::size_t s = 1; s < systems_.size(); ++s)
                systems_[s]->adoptSkip(*systems_.front(), ops, skip);
        }
        if (warm > 0) {
            for (CmpSystem *sys : systems_)
                sys->fastForward(warm, warm);
        }
        for (SamplingController &c : controllers_)
            c.measureInterval();
    }

    std::vector<SamplingResult> results;
    results.reserve(controllers_.size());
    for (const SamplingController &c : controllers_)
        results.push_back(c.finish());
    return results;
}

} // namespace cmpsim
