#include "src/sample/fast_forward.h"

#include <algorithm>

#include "src/cache/l2_cache.h"
#include "src/common/log.h"
#include "src/core/core_model.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

namespace {
/** Interleave granularity, matching CmpSystem::warmup()'s chunking so
 *  the shared L2 sees the same realistic core mix. */
constexpr std::uint64_t kFfChunk = 2000;
} // namespace

FastForwardEngine::FastForwardEngine(std::vector<CoreModel *> cores,
                                     L2Cache &l2)
    : cores_(std::move(cores)), l2_(l2)
{
    cmpsim_assert(!cores_.empty());
}

std::uint64_t
FastForwardEngine::retiredTotal() const
{
    std::uint64_t total = 0;
    for (const CoreModel *core : cores_)
        total += core->instructionsRetired();
    return total;
}

void
FastForwardEngine::advance(std::uint64_t instr_per_core,
                           std::uint64_t warm_per_core)
{
    const std::uint64_t before = retiredTotal();
    const std::uint64_t warm =
        std::min(warm_per_core, instr_per_core);
    const std::uint64_t skip = instr_per_core - warm;
    l2_.setFunctionalMode(true);
    std::uint64_t done = 0;
    while (done < instr_per_core) {
        faultSite("sample.ff");
        checkPointDeadline("sample.ff");
        const std::uint64_t chunk =
            std::min(kFfChunk, instr_per_core - done);
        if (done < skip) {
            // Clamp so no chunk straddles the skip/warm boundary.
            const std::uint64_t c = std::min(chunk, skip - done);
            for (CoreModel *core : cores_)
                core->runSkip(c);
            done += c;
            skip_instructions_ += c * cores_.size();
        } else {
            for (CoreModel *core : cores_)
                core->runFunctional(chunk);
            done += chunk;
        }
        ++chunks_;
    }
    l2_.setFunctionalMode(false);
    const std::uint64_t budget = instr_per_core * cores_.size();
    instructions_ += budget;
    expected_ += budget;
    observed_ += retiredTotal() - before;
}

bool
FastForwardEngine::conserved(std::string &why) const
{
    if (observed_ == expected_)
        return true;
    why = "fast-forward retired " + std::to_string(observed_) +
          " instructions against a budget of " +
          std::to_string(expected_);
    return false;
}

void
FastForwardEngine::registerStats(StatRegistry &reg,
                                 const std::string &prefix)
{
    reg.registerCounter(prefix + ".ff_instructions", &instructions_);
    reg.registerCounter(prefix + ".ff_skip_instructions",
                        &skip_instructions_);
    reg.registerCounter(prefix + ".ff_chunks", &chunks_);
}

} // namespace cmpsim
