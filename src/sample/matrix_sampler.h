/**
 * @file
 * MatrixSampler (DESIGN.md §14): lockstep sampled execution of one
 * plan over a matrix of configurations of the same workload and seed,
 * sharing the pure-skip prefix of every fast-forward phase.
 *
 * A pure-skip phase (CoreModel::runSkip()) advances only the workload
 * generators and the value store — state that is a pure function of
 * the instruction index, identical for every configuration. So for a
 * config-matrix study (the paper's Table 5: base / prefetch /
 * compression / both over one workload) the skip work only needs to
 * be executed once per interval: the first system is the leader, runs
 * the skip with value-store journaling, and every follower adopts the
 * result (workload cursors + journal replay) at a fraction of the
 * cost. Warming and detailed measurement still run per system — they
 * touch per-config cache, prefetcher and timing state.
 *
 * The protocol is deterministic: the leader's execution is
 * byte-identical to a standalone sampled run of its config, and every
 * adoption *resynchronizes* the followers to the leader's workload
 * cursors — timed detail windows spend a total (not per-core) budget,
 * so per-core position drifts by up to one window per interval, and
 * the resync erases that drift instead of letting it accumulate. The
 * result: sample i of every system covers the same workload window —
 * the pairing that lets interaction ratios cancel common-mode phase
 * noise (see bench/table5_sampled). Follower value-store words that
 * differ at a window edge or from cross-core write interleaving take
 * the leader's value, the standard trace-driven-study semantics.
 *
 * The CI stopping rule is ignored (a fixed interval count keeps the
 * systems in lockstep), and mid-plan checkpointing is not supported —
 * both remain features of the single-system SamplingController path.
 */

#ifndef CMPSIM_SAMPLE_MATRIX_SAMPLER_H
#define CMPSIM_SAMPLE_MATRIX_SAMPLER_H

#include <vector>

#include "src/sample/sampling_controller.h"

namespace cmpsim {

class CmpSystem;

/** Lockstep sampling over N same-workload, same-seed systems. */
class MatrixSampler
{
  public:
    /**
     * @p systems all armed with the same sampling plan, workload,
     * seed and core count; systems[0] leads. At least one system.
     */
    explicit MatrixSampler(std::vector<CmpSystem *> systems);

    /** Drive the full plan; results in systems order. */
    std::vector<SamplingResult> run();

  private:
    std::vector<CmpSystem *> systems_;
    std::vector<SamplingController> controllers_;
};

} // namespace cmpsim

#endif // CMPSIM_SAMPLE_MATRIX_SAMPLER_H
