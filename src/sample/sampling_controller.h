/**
 * @file
 * SamplingController (DESIGN.md §14): drives one statistical-sampling
 * plan over a CmpSystem — alternating functional fast-forward and
 * detailed (timed) measurement intervals — and reduces the
 * per-interval metric samples to means with 95% confidence intervals
 * via the Student-t summarize() the multi-seed path already uses.
 *
 * All progress state lives in CmpSystem::sampleState() (see
 * sample_state.h) so mid-plan CMPSIM_CKPT autosaves — which always
 * land inside a detailed interval, the only phase that advances
 * simulated time — checkpoint the plan cursor alongside the machine,
 * and a CMPSIM_RESTORE'd system resumes the open interval and the
 * remaining plan to a byte-identical final report.
 */

#ifndef CMPSIM_SAMPLE_SAMPLING_CONTROLLER_H
#define CMPSIM_SAMPLE_SAMPLING_CONTROLLER_H

#include "src/common/stats.h"
#include "src/sample/sample_state.h"
#include "src/sample/sampling_plan.h"

namespace cmpsim {

class CmpSystem;

/** Reduction of one completed sampling plan. */
struct SamplingResult
{
    unsigned intervals = 0;      ///< intervals actually measured
    bool stopped_early = false;  ///< CI stopping rule fired
    std::uint64_t ff_instructions = 0; ///< all cores, all FF phases

    /** Totals across detailed intervals only (FF/drain excluded). */
    double detail_cycles = 0;
    double detail_instructions = 0;

    /** Per-interval mean / 95% CI of each headline metric; every
     *  summary's n is the measured interval count. */
    SampleSummary cycles;
    SampleSummary ipc;
    SampleSummary l2_miss_rate;
    SampleSummary l2_mpki;
    SampleSummary bandwidth_gbps;
    SampleSummary compression_ratio;

    /** Summed per-interval stat deltas (counter deltas over exactly
     *  the detailed windows) for derived-metric extraction. */
    StatSnapshot totals;

    /** The raw per-interval samples behind the summaries. Because
     *  intervals are instruction-indexed, two runs differing only in
     *  architectural knobs measure the *same* workload windows —
     *  pairing samples[i] across configs cancels the phase noise
     *  that dominates the unpaired CIs (DESIGN.md §14). */
    std::vector<IntervalSample> samples;
};

/** Drives config().sampling over one system. */
class SamplingController
{
  public:
    /** @p sys must have an armed config().sampling plan. */
    explicit SamplingController(CmpSystem &sys);

    /**
     * Execute (or, after a mid-plan restore, finish) the plan:
     * for each interval, fast-forward ff_per_core instructions per
     * core, snapshot stats, run detail_per_core timed instructions
     * per core, and close the interval with the stat delta. Stops
     * early when the optional CI target is met. Probes
     * faultSite("sample.interval") once per interval.
     */
    SamplingResult run();

    /**
     * One plan step with the fast-forward phase already performed by
     * the caller (shared-prefix matrix studies, see MatrixSampler):
     * probe the interval fault site, then measure one detailed
     * interval of plan().detail_per_core instructions per core.
     */
    void measureInterval();

    /** Reduce the intervals measured so far (MatrixSampler's
     *  per-system result after it drives the plan itself). */
    SamplingResult finish() const { return reduce(); }

    const SamplingPlan &plan() const { return plan_; }

  private:
    /** Snapshot the baseline and open a detailed interval. */
    void beginInterval();

    /** Difference stats against the baseline, append the interval's
     *  metric sample, and accumulate the delta into the totals. */
    void closeInterval();

    /** True once the CI stopping rule is satisfied (needs >= 2
     *  intervals and an armed ci_target_pct). */
    bool ciTargetMet() const;

    SamplingResult reduce() const;

    CmpSystem &sys_;
    SamplingPlan plan_;
    SampleState &state_;
};

} // namespace cmpsim

#endif // CMPSIM_SAMPLE_SAMPLING_CONTROLLER_H
