/**
 * @file
 * Mutable progress state of one statistical-sampling plan (DESIGN.md
 * §14), owned by CmpSystem so CheckpointCodec can serialize it: a
 * mid-plan autosave must carry the interval cursor, the in-progress
 * interval's stat baseline and every closed interval's metric sample,
 * or a restored run could not resume to a byte-identical final
 * report. The SamplingController in src/sample/ holds the *logic*;
 * all of its *state* lives here.
 */

#ifndef CMPSIM_SAMPLE_SAMPLE_STATE_H
#define CMPSIM_SAMPLE_SAMPLE_STATE_H

#include <cstdint>
#include <vector>

#include "src/common/stats.h"

namespace cmpsim {

/** Headline metrics of one closed detailed interval. */
struct IntervalSample
{
    double cycles = 0;
    double instructions = 0;
    double ipc = 0;
    double l2_miss_rate = 0;
    double l2_mpki = 0;
    double bandwidth_gbps = 0;
    double compression_ratio = 0;
};

/** Progress of one sampling plan (checkpointed when armed). */
struct SampleState
{
    /** Closed (fully measured) intervals so far. */
    std::uint32_t intervals_done = 0;

    /** A detailed interval is in progress (between beginInterval()
     *  and closeInterval()) — where every mid-plan autosave lands,
     *  since only detailed intervals advance simulated time. */
    bool in_detail = false;

    /** Stat baseline at the open interval's start (valid only while
     *  in_detail); differenced against the interval-end snapshot. */
    StatSnapshot baseline;

    /** Accumulated per-interval stat deltas over closed intervals —
     *  the counters a sampled RunResult's metrics are derived from,
     *  so fast-forward and drain phases never pollute them. */
    StatSnapshot detail_totals;

    /** Per-interval metric samples (CI inputs). */
    std::vector<IntervalSample> samples;

    /** Total functionally fast-forwarded instructions (all cores). */
    std::uint64_t ff_instructions = 0;

    /** The CI stopping rule fired before max_intervals. */
    bool stopped_early = false;
};

} // namespace cmpsim

#endif // CMPSIM_SAMPLE_SAMPLE_STATE_H
