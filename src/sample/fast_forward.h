/**
 * @file
 * FastForwardEngine (DESIGN.md §14): first-class functional execution
 * — every core advances its instruction stream updating cache,
 * directory, prefetcher-table and DRAM-row state with no event
 * timing. This generalizes CmpSystem::warmup()'s inner loop into a
 * budgeted mode the sampling engine invokes between detailed
 * intervals, with its own fault site (sample.ff), deadline polling,
 * stat counters and an instruction-conservation audit.
 *
 * The engine must only run from a *quiesced* system (no pending
 * events): functional accesses evict cache lines, and a pending fill
 * completion holding a tag reference across an eviction would corrupt
 * the set. CmpSystem::fastForward() drains all event queues to
 * quiescence before delegating here.
 */

#ifndef CMPSIM_SAMPLE_FAST_FORWARD_H
#define CMPSIM_SAMPLE_FAST_FORWARD_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace cmpsim {

class CoreModel;
class L2Cache;

/** Budgeted functional execution over all cores. */
class FastForwardEngine
{
  public:
    FastForwardEngine(std::vector<CoreModel *> cores, L2Cache &l2);

    /**
     * Advance every core @p instr_per_core instructions, interleaved
     * in chunks so the shared L2 sees a realistic access mix. The
     * last @p warm_per_core instructions (clamped; default the whole
     * budget) run in functional-warming mode updating cache and
     * prefetcher state; anything before runs in pure skip mode
     * (workload position and value store only — see
     * CoreModel::runSkip()). Probes faultSite("sample.ff") and the
     * point deadline once per chunk round.
     */
    void advance(std::uint64_t instr_per_core,
                 std::uint64_t warm_per_core =
                     ~static_cast<std::uint64_t>(0));

    /** Total instructions fast-forwarded (all cores, all calls). */
    std::uint64_t instructionsAdvanced() const
    {
        return instructions_.value();
    }

    /**
     * Account for a pure-skip budget a lockstep leader executed on
     * this system's behalf (CmpSystem::adoptSkip()). The cores'
     * retirement counters were copied to the post-skip values, so
     * both sides of the conservation audit grow by @p budget.
     */
    void
    noteAdopted(std::uint64_t budget)
    {
        instructions_ += budget;
        skip_instructions_ += budget;
        expected_ += budget;
        observed_ += budget;
    }

    /**
     * Conservation audit: across every advance() call, the cores'
     * retirement counters must have grown by exactly the budget
     * handed out — a functional loop that skips or double-counts
     * instructions would silently bias every sampled metric.
     */
    bool conserved(std::string &why) const;

    /** Register "prefix.ff_instructions" / "prefix.ff_chunks" /
     *  "prefix.ff_skip_instructions". */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    /** Sum of every core's retirement counter. */
    std::uint64_t retiredTotal() const;

    std::vector<CoreModel *> cores_;
    L2Cache &l2_;
    Counter instructions_;      ///< budget handed out (all cores)
    Counter skip_instructions_; ///< pure-skip share of the budget
    Counter chunks_;            ///< interleave rounds executed
    std::uint64_t expected_ = 0; ///< cumulative budget (all cores)
    std::uint64_t observed_ = 0; ///< retirement growth across advances
};

} // namespace cmpsim

#endif // CMPSIM_SAMPLE_FAST_FORWARD_H
