/**
 * @file
 * Statistical sampling plan (DESIGN.md §14): the knobs of one
 * alternating fast-forward / detailed-measurement schedule, SMARTS-
 * style. A plan of N intervals measures N detailed windows of
 * detail_per_core instructions each, functionally fast-forwarding
 * ff_per_core instructions before every window, and reports each
 * metric as a mean with a 95% confidence interval over the intervals.
 *
 * The CMPSIM_SAMPLING environment spec
 *
 *     CMPSIM_SAMPLING=<ff>:<detail>:<n>[:ci<pct>][:warm<instr>]
 *
 * is applied by makeConfig() (like CMPSIM_DRAM) so batch fingerprints
 * and journal keys see the plan; the optional ci<pct> suffix arms the
 * stopping rule — stop as soon as the IPC confidence half-width drops
 * below <pct> percent of the mean (n stays the hard ceiling) — and
 * the optional warm<instr> suffix splits each fast-forward phase
 * SMARTS-style: only the last <instr> instructions per core run in
 * functional-warming mode (cache/prefetcher state updated), the rest
 * in pure skip mode (workload and value store advance only). Without
 * the suffix the whole fast-forward phase warms.
 */

#ifndef CMPSIM_SAMPLE_SAMPLING_PLAN_H
#define CMPSIM_SAMPLE_SAMPLING_PLAN_H

#include <cstdint>
#include <string>

namespace cmpsim {

/** One statistical-sampling schedule (config.sampling). */
struct SamplingPlan
{
    /** Functional fast-forward instructions per core before each
     *  detailed interval (0 = back-to-back detailed intervals). */
    std::uint64_t ff_per_core = 0;

    /** Detailed (timed) instructions per core per interval. */
    std::uint64_t detail_per_core = 0;

    /** Interval-count ceiling; 0 leaves sampling disarmed. */
    unsigned max_intervals = 0;

    /**
     * Optional stopping rule: stop after any interval >= 2 whose
     * cumulative IPC 95% CI half-width is below this percentage of
     * the running mean. 0 (the default) disables the rule and runs
     * exactly max_intervals intervals.
     */
    double ci_target_pct = 0.0;

    /** "Warm the whole fast-forward phase" sentinel. */
    static constexpr std::uint64_t kWarmAll =
        ~static_cast<std::uint64_t>(0);

    /**
     * Functional-warming tail of each fast-forward phase: the last
     * warmPerCore() instructions per core update cache/prefetcher
     * state; anything before runs in pure skip mode. Defaults to the
     * whole phase.
     */
    std::uint64_t warm_per_core = kWarmAll;

    /** Warm tail clamped to the fast-forward length. */
    std::uint64_t
    warmPerCore() const
    {
        return warm_per_core < ff_per_core ? warm_per_core
                                           : ff_per_core;
    }

    /** True when a plan is active (max_intervals > 0). */
    bool armed() const { return max_intervals > 0; }

    /**
     * Parse a "<ff>:<detail>:<n>[:ci<pct>]" spec. Throws
     * ConfigError("config.sampling") on malformed input; range checks
     * live in SystemConfig::validate() so programmatic plans get the
     * same guards.
     */
    static SamplingPlan parse(const std::string &spec);
};

/** Apply the CMPSIM_SAMPLING environment spec to @p plan (no-op when
 *  the variable is unset or empty). */
void applySamplingEnv(SamplingPlan &plan);

} // namespace cmpsim

#endif // CMPSIM_SAMPLE_SAMPLING_PLAN_H
