#include "src/sample/sampling_plan.h"

#include <cstdlib>

#include "src/common/sim_error.h"

namespace cmpsim {

namespace {

[[noreturn]] void
badSpec(const std::string &spec, const std::string &why)
{
    throw ConfigError(
        "config.sampling",
        "bad sampling spec \"" + spec + "\": " + why +
            " (expected <ff>:<detail>:<n>[:ci<pct>][:warm<instr>])");
}

std::uint64_t
parseField(const std::string &spec, const char *&p, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(p, &end, 10);
    if (end == p)
        badSpec(spec, std::string("missing ") + what);
    p = end;
    return v;
}

} // namespace

SamplingPlan
SamplingPlan::parse(const std::string &spec)
{
    SamplingPlan plan;
    const char *p = spec.c_str();
    plan.ff_per_core = parseField(spec, p, "fast-forward length");
    if (*p != ':')
        badSpec(spec, "missing ':' after fast-forward length");
    ++p;
    plan.detail_per_core = parseField(spec, p, "detail length");
    if (*p != ':')
        badSpec(spec, "missing ':' after detail length");
    ++p;
    const std::uint64_t n = parseField(spec, p, "interval count");
    if (n > 1000000)
        badSpec(spec, "interval count " + std::to_string(n) +
                          " is absurd (max 1000000)");
    plan.max_intervals = static_cast<unsigned>(n);
    while (*p == ':') {
        ++p;
        if (p[0] == 'c' && p[1] == 'i') {
            p += 2;
            char *end = nullptr;
            plan.ci_target_pct = std::strtod(p, &end);
            if (end == p)
                badSpec(spec, "missing percentage after \"ci\"");
            p = end;
        } else if (p[0] == 'w' && p[1] == 'a' && p[2] == 'r' &&
                   p[3] == 'm') {
            p += 4;
            plan.warm_per_core =
                parseField(spec, p, "instruction count after \"warm\"");
        } else {
            badSpec(spec, "expected ci<pct> or warm<instr> suffix");
        }
    }
    if (*p != '\0')
        badSpec(spec, std::string("trailing garbage \"") + p + "\"");
    return plan;
}

void
applySamplingEnv(SamplingPlan &plan)
{
    const char *env = std::getenv("CMPSIM_SAMPLING");
    if (env == nullptr || *env == '\0')
        return;
    plan = SamplingPlan::parse(env);
}

} // namespace cmpsim
