#include "src/sample/sampling_controller.h"

#include "src/common/log.h"
#include "src/core_api/cmp_system.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

SamplingController::SamplingController(CmpSystem &sys)
    : sys_(sys), plan_(sys.config().sampling),
      state_(sys.sampleState())
{
    cmpsim_assert(plan_.armed());
}

void
SamplingController::beginInterval()
{
    state_.baseline = sys_.stats().snapshot();
    state_.in_detail = true;
}

void
SamplingController::closeInterval()
{
    const StatSnapshot delta =
        StatRegistry::delta(sys_.stats().snapshot(), state_.baseline);

    IntervalSample s;
    // run() measures from interval start even across a mid-interval
    // checkpoint restore: the start cursor is part of the serialized
    // RunState, so cycles()/instructions() always cover the full
    // interval.
    s.cycles = static_cast<double>(sys_.cycles());
    s.instructions = static_cast<double>(sys_.instructions());
    s.ipc = sys_.ipc();
    const double misses =
        static_cast<double>(delta.counter("l2.demand_misses"));
    const double accesses =
        static_cast<double>(delta.counter("l2.demand_accesses"));
    s.l2_miss_rate = accesses > 0 ? misses / accesses : 0;
    const double kilo_instr = s.instructions / 1000.0;
    s.l2_mpki = kilo_instr > 0 ? misses / kilo_instr : 0;
    const double link_bytes =
        static_cast<double>(delta.counter("mem.link.bytes"));
    s.bandwidth_gbps =
        s.cycles > 0 ? link_bytes / s.cycles * 5.0 : 0; // 5 GHz clock
    s.compression_ratio = sys_.l2().compressionRatio();

    state_.samples.push_back(s);
    state_.detail_totals.accumulate(delta);
    state_.baseline = StatSnapshot{};
    state_.in_detail = false;
    ++state_.intervals_done;
}

bool
SamplingController::ciTargetMet() const
{
    if (plan_.ci_target_pct <= 0 || state_.samples.size() < 2)
        return false;
    std::vector<double> ipc;
    ipc.reserve(state_.samples.size());
    for (const IntervalSample &s : state_.samples)
        ipc.push_back(s.ipc);
    const SampleSummary sum = summarize(ipc);
    return sum.mean > 0 &&
           sum.ci95 <= plan_.ci_target_pct / 100.0 * sum.mean;
}

void
SamplingController::measureInterval()
{
    faultSite("sample.interval");
    beginInterval();
    sys_.run(plan_.detail_per_core);
    closeInterval();
}

SamplingResult
SamplingController::run()
{
    // A restore can land mid-interval (in_detail: finish the open
    // interval's remaining instructions first) or exactly on a
    // boundary; either way intervals_done tells us where the plan
    // cursor is.
    if (state_.in_detail) {
        sys_.run(plan_.detail_per_core); // resumes the restored target
        closeInterval();
    }
    while (state_.intervals_done < plan_.max_intervals) {
        if (ciTargetMet()) {
            state_.stopped_early = true;
            break;
        }
        faultSite("sample.interval");
        if (plan_.ff_per_core > 0)
            sys_.fastForward(plan_.ff_per_core, plan_.warmPerCore());
        beginInterval();
        sys_.run(plan_.detail_per_core);
        closeInterval();
    }
    return reduce();
}

SamplingResult
SamplingController::reduce() const
{
    SamplingResult r;
    r.intervals = state_.intervals_done;
    r.stopped_early = state_.stopped_early;
    r.ff_instructions = state_.ff_instructions;
    r.totals = state_.detail_totals;
    r.samples = state_.samples;

    std::vector<double> cycles, ipc, miss_rate, mpki, bw, ratio;
    for (const IntervalSample &s : state_.samples) {
        cycles.push_back(s.cycles);
        ipc.push_back(s.ipc);
        miss_rate.push_back(s.l2_miss_rate);
        mpki.push_back(s.l2_mpki);
        bw.push_back(s.bandwidth_gbps);
        ratio.push_back(s.compression_ratio);
        r.detail_cycles += s.cycles;
        r.detail_instructions += s.instructions;
    }
    r.cycles = summarize(cycles);
    r.ipc = summarize(ipc);
    r.l2_miss_rate = summarize(miss_rate);
    r.l2_mpki = summarize(mpki);
    r.bandwidth_gbps = summarize(bw);
    r.compression_ratio = summarize(ratio);
    return r;
}

} // namespace cmpsim
