/**
 * @file
 * Pass-through compressor: every line is stored raw. Used for the
 * paper's base (uncompressed) configurations so the cache and link
 * code paths are identical across configs.
 */

#ifndef CMPSIM_COMPRESSION_NULL_COMPRESSOR_H
#define CMPSIM_COMPRESSION_NULL_COMPRESSOR_H

#include "src/compression/compressor.h"

namespace cmpsim {

/** Identity "compression": always kSegmentsPerLine segments. */
class NullCompressor : public Compressor
{
  public:
    std::string name() const override { return "none"; }

    CompressedSize
    compress(const LineData &line, BitStream *out = nullptr) const override
    {
        if (out) {
            out->clear();
            for (unsigned q = 0; q < kLineBytes / 8; ++q)
                out->put(lineQword(line, q), 64);
        }
        return CompressedSize{};
    }

    LineData
    decompress(const BitStream &encoded,
               const CompressedSize &size) const override
    {
        cmpsim_assert(!size.isCompressed());
        LineData line{};
        BitReader rd(encoded);
        for (unsigned q = 0; q < kLineBytes / 8; ++q)
            setLineQword(line, q, rd.get(64));
        return line;
    }
};

} // namespace cmpsim

#endif // CMPSIM_COMPRESSION_NULL_COMPRESSOR_H
