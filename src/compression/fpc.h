/**
 * @file
 * Frequent Pattern Compression (FPC) — the compression algorithm used
 * for both cache and link compression in the paper (Alameldeen & Wood,
 * UW-Madison TR-1500 / HPCA'07 Section 2).
 *
 * Each 32-bit word is encoded as a 3-bit prefix plus variable data:
 *
 *   000  run of 1-8 all-zero words       (3 data bits: run length - 1)
 *   001  4-bit sign-extended value       (4 data bits)
 *   010  8-bit sign-extended value       (8 data bits)
 *   011  16-bit sign-extended value      (16 data bits)
 *   100  lower halfword zero             (16 data bits: upper halfword)
 *   101  two sign-extended-byte halfwords(16 data bits: two bytes)
 *   110  word of one repeated byte       (8 data bits)
 *   111  uncompressed word               (32 data bits)
 *
 * The encoded line is rounded up to 8-byte segments; if it needs as
 * many segments as the raw line it is stored uncompressed.
 */

#ifndef CMPSIM_COMPRESSION_FPC_H
#define CMPSIM_COMPRESSION_FPC_H

#include "src/compression/compressor.h"

namespace cmpsim {

/** Bit-exact FPC encoder/decoder. */
class FpcCompressor : public Compressor
{
  public:
    std::string name() const override { return "fpc"; }

    CompressedSize compress(const LineData &line,
                            BitStream *out = nullptr) const override;

    LineData decompress(const BitStream &encoded,
                        const CompressedSize &size) const override;

    /** FPC word patterns, exposed for tests and stat breakdowns. */
    enum Pattern : unsigned
    {
        ZeroRun = 0,
        Se4 = 1,
        Se8 = 2,
        Se16 = 3,
        LowerZero = 4,
        TwoSeBytes = 5,
        RepeatedByte = 6,
        Raw = 7,
    };

    /** Classify one 32-bit word (ZeroRun means "this word is zero"). */
    static Pattern classify(std::uint32_t word);

    /** Encoded data bits for a pattern (excluding the 3-bit prefix). */
    static unsigned dataBits(Pattern p);
};

} // namespace cmpsim

#endif // CMPSIM_COMPRESSION_FPC_H
