/**
 * @file
 * Abstract line-compression interface shared by the L2 cache and the
 * off-chip link. Implementations must be lossless: decompress() of a
 * compress() result reproduces the input bytes exactly, and tests
 * enforce it with randomized round-trips.
 */

#ifndef CMPSIM_COMPRESSION_COMPRESSOR_H
#define CMPSIM_COMPRESSION_COMPRESSOR_H

#include <string>

#include "src/common/line_data.h"
#include "src/common/types.h"
#include "src/compression/bitstream.h"

namespace cmpsim {

/** Size outcome of compressing one line. */
struct CompressedSize
{
    /** Encoded payload size in bits (before segment rounding). */
    unsigned bits = kLineBytes * 8;

    /**
     * Storage segments (8-byte units) the line occupies in a
     * compressed cache or on the link, in [1, kSegmentsPerLine].
     * Lines whose encoding does not fit in fewer segments than the
     * uncompressed form are stored raw and report kSegmentsPerLine.
     */
    unsigned segments = kSegmentsPerLine;

    bool isCompressed() const { return segments < kSegmentsPerLine; }
};

/** Round an encoded bit count up to 8-byte storage segments. */
constexpr unsigned
segmentsForBits(unsigned bits)
{
    const unsigned segs = (bits + kSegmentBytes * 8 - 1) / (kSegmentBytes * 8);
    return segs == 0 ? 1 : segs;
}

/** Lossless cache-line compressor. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /** Human-readable algorithm name. */
    virtual std::string name() const = 0;

    /**
     * Compress @p line.
     *
     * @param line input bytes
     * @param out optional: receives the exact encoded bit stream
     *        (cleared first). When the line is stored raw because the
     *        encoding would not save a segment, @p out receives the
     *        raw line bits.
     * @return encoded size; segments == kSegmentsPerLine means "stored
     *         uncompressed".
     */
    virtual CompressedSize compress(const LineData &line,
                                    BitStream *out = nullptr) const = 0;

    /**
     * Reverse compress(). @p size must be the CompressedSize that
     * compress() returned for this stream.
     */
    virtual LineData decompress(const BitStream &encoded,
                                const CompressedSize &size) const = 0;

    /** Convenience: segments only (the common fast path in the sim). */
    unsigned
    compressedSegments(const LineData &line) const
    {
        return compress(line).segments;
    }
};

} // namespace cmpsim

#endif // CMPSIM_COMPRESSION_COMPRESSOR_H
