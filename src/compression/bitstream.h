/**
 * @file
 * Append-only bit writer and sequential bit reader used to hold the
 * exact encoded form of a compressed cache line. Bits are packed
 * little-endian within 64-bit words, LSB first.
 */

#ifndef CMPSIM_COMPRESSION_BITSTREAM_H
#define CMPSIM_COMPRESSION_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "src/common/log.h"

namespace cmpsim {

/** Growable bit vector with an append cursor. */
class BitStream
{
  public:
    /** Append the low @p nbits bits of @p value. @pre nbits <= 64. */
    void
    put(std::uint64_t value, unsigned nbits)
    {
        cmpsim_assert(nbits <= 64);
        if (nbits == 0)
            return;
        if (nbits < 64)
            value &= (1ULL << nbits) - 1;
        const unsigned word = size_bits_ / 64;
        const unsigned off = size_bits_ % 64;
        if (word >= words_.size())
            words_.push_back(0);
        words_[word] |= value << off;
        if (off + nbits > 64) {
            words_.push_back(value >> (64 - off));
        }
        size_bits_ += nbits;
    }

    unsigned sizeBits() const { return size_bits_; }

    const std::vector<std::uint64_t> &words() const { return words_; }

    void
    clear()
    {
        words_.clear();
        size_bits_ = 0;
    }

  private:
    std::vector<std::uint64_t> words_;
    unsigned size_bits_ = 0;
};

/** Sequential reader over a BitStream. */
class BitReader
{
  public:
    explicit BitReader(const BitStream &bs) : bs_(bs) {}

    /** Read the next @p nbits bits. @pre enough bits remain. */
    std::uint64_t
    get(unsigned nbits)
    {
        cmpsim_assert(nbits <= 64);
        cmpsim_assert(pos_ + nbits <= bs_.sizeBits());
        if (nbits == 0)
            return 0;
        const unsigned word = pos_ / 64;
        const unsigned off = pos_ % 64;
        std::uint64_t v = bs_.words()[word] >> off;
        if (off + nbits > 64)
            v |= bs_.words()[word + 1] << (64 - off);
        if (nbits < 64)
            v &= (1ULL << nbits) - 1;
        pos_ += nbits;
        return v;
    }

    unsigned remaining() const { return bs_.sizeBits() - pos_; }

  private:
    const BitStream &bs_;
    unsigned pos_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_COMPRESSION_BITSTREAM_H
