/**
 * @file
 * Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012),
 * implemented as an extension comparator to FPC. Not used by the
 * paper itself; included so ablation benches can swap the compression
 * algorithm and observe how the compression/prefetching interaction
 * shifts with a different compressor.
 *
 * A line is encoded as (encoding id, base, per-element 1-bit base
 * selector, packed deltas); elements match either an implicit zero
 * base or the single explicit base. We try the standard (base size,
 * delta size) pairs and keep the smallest lossless encoding.
 */

#ifndef CMPSIM_COMPRESSION_BDI_H
#define CMPSIM_COMPRESSION_BDI_H

#include "src/compression/compressor.h"

namespace cmpsim {

/** Base-Delta-Immediate encoder/decoder. */
class BdiCompressor : public Compressor
{
  public:
    std::string name() const override { return "bdi"; }

    CompressedSize compress(const LineData &line,
                            BitStream *out = nullptr) const override;

    LineData decompress(const BitStream &encoded,
                        const CompressedSize &size) const override;

    /** Encoding ids stored in the 4-bit header. */
    enum Encoding : unsigned
    {
        Zeros = 0,      ///< all bytes zero
        Repeated8 = 1,  ///< one 8-byte value repeated
        B8D1 = 2,
        B8D2 = 3,
        B8D4 = 4,
        B4D1 = 5,
        B4D2 = 6,
        B2D1 = 7,
        Uncompressed = 8,
    };
};

} // namespace cmpsim

#endif // CMPSIM_COMPRESSION_BDI_H
