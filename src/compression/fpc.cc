#include "src/compression/fpc.h"

namespace cmpsim {

namespace {

/** True when @p w equals its low @p n bits sign-extended to 32. */
bool
fitsSigned(std::uint32_t w, unsigned n)
{
    const auto v = static_cast<std::int32_t>(w);
    const std::int32_t lo = -(1 << (n - 1));
    const std::int32_t hi = (1 << (n - 1)) - 1;
    return v >= lo && v <= hi;
}

/** True when halfword @p h is a sign-extended byte. */
bool
halfIsSeByte(std::uint16_t h)
{
    const auto v = static_cast<std::int16_t>(h);
    return v >= -128 && v <= 127;
}

} // namespace

FpcCompressor::Pattern
FpcCompressor::classify(std::uint32_t w)
{
    if (w == 0)
        return ZeroRun;
    if (fitsSigned(w, 4))
        return Se4;
    if (fitsSigned(w, 8))
        return Se8;
    if (fitsSigned(w, 16))
        return Se16;
    if ((w & 0xffffu) == 0)
        return LowerZero;
    if (halfIsSeByte(static_cast<std::uint16_t>(w & 0xffffu)) &&
        halfIsSeByte(static_cast<std::uint16_t>(w >> 16))) {
        return TwoSeBytes;
    }
    const std::uint32_t b = w & 0xffu;
    if (w == (b | (b << 8) | (b << 16) | (b << 24)))
        return RepeatedByte;
    return Raw;
}

unsigned
FpcCompressor::dataBits(Pattern p)
{
    switch (p) {
      case ZeroRun:
        return 3;
      case Se4:
        return 4;
      case Se8:
        return 8;
      case Se16:
      case LowerZero:
      case TwoSeBytes:
        return 16;
      case RepeatedByte:
        return 8;
      case Raw:
        return 32;
    }
    cmpsim_panic("bad FPC pattern %u", static_cast<unsigned>(p));
}

CompressedSize
FpcCompressor::compress(const LineData &line, BitStream *out) const
{
    if (out)
        out->clear();

    // First pass: compute the encoded size (and optionally emit).
    // Zero runs of up to 8 words share one (prefix, length) tuple.
    unsigned bits = 0;
    BitStream local;
    BitStream *bs = out ? out : &local;
    const bool emit = true; // always build; cheap relative to lookup

    unsigned i = 0;
    while (i < kWordsPerLine) {
        const std::uint32_t w = lineWord(line, i);
        const Pattern p = classify(w);
        if (p == ZeroRun) {
            unsigned run = 1;
            while (run < 8 && i + run < kWordsPerLine &&
                   lineWord(line, i + run) == 0) {
                ++run;
            }
            bits += 3 + 3;
            if (emit) {
                bs->put(ZeroRun, 3);
                bs->put(run - 1, 3);
            }
            i += run;
            continue;
        }

        const unsigned db = dataBits(p);
        bits += 3 + db;
        if (emit) {
            bs->put(p, 3);
            std::uint64_t payload = 0;
            switch (p) {
              case Se4:
              case Se8:
              case Se16:
              case Raw:
                payload = w;
                break;
              case LowerZero:
                payload = w >> 16;
                break;
              case TwoSeBytes:
                // low byte of each halfword, low halfword first
                payload = (w & 0xffu) | (((w >> 16) & 0xffu) << 8);
                break;
              case RepeatedByte:
                payload = w & 0xffu;
                break;
              case ZeroRun:
                break; // handled above
            }
            bs->put(payload, db);
        }
        ++i;
    }

    CompressedSize size;
    size.bits = bits;
    size.segments = segmentsForBits(bits);

    if (size.segments >= kSegmentsPerLine) {
        // Not worth compressing: store raw.
        size.bits = kLineBytes * 8;
        size.segments = kSegmentsPerLine;
        if (out) {
            out->clear();
            for (unsigned q = 0; q < kLineBytes / 8; ++q)
                out->put(lineQword(line, q), 64);
        }
    }
    return size;
}

LineData
FpcCompressor::decompress(const BitStream &encoded,
                          const CompressedSize &size) const
{
    LineData line{};
    BitReader rd(encoded);

    if (!size.isCompressed()) {
        for (unsigned q = 0; q < kLineBytes / 8; ++q)
            setLineQword(line, q, rd.get(64));
        return line;
    }

    unsigned i = 0;
    while (i < kWordsPerLine) {
        const auto p = static_cast<Pattern>(rd.get(3));
        switch (p) {
          case ZeroRun: {
            const unsigned run = static_cast<unsigned>(rd.get(3)) + 1;
            cmpsim_assert(i + run <= kWordsPerLine);
            i += run; // line is zero-initialized
            break;
          }
          case Se4: {
            const auto v = static_cast<std::int64_t>(rd.get(4) << 60) >> 60;
            setLineWord(line, i++, static_cast<std::uint32_t>(v));
            break;
          }
          case Se8: {
            const auto v = static_cast<std::int64_t>(rd.get(8) << 56) >> 56;
            setLineWord(line, i++, static_cast<std::uint32_t>(v));
            break;
          }
          case Se16: {
            const auto v = static_cast<std::int64_t>(rd.get(16) << 48) >> 48;
            setLineWord(line, i++, static_cast<std::uint32_t>(v));
            break;
          }
          case LowerZero: {
            const auto upper = static_cast<std::uint32_t>(rd.get(16));
            setLineWord(line, i++, upper << 16);
            break;
          }
          case TwoSeBytes: {
            const auto two = static_cast<std::uint32_t>(rd.get(16));
            const std::uint32_t lo =
                static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(
                        static_cast<std::int8_t>(two & 0xffu))) &
                0xffffu;
            const std::uint32_t hi =
                static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(
                        static_cast<std::int8_t>((two >> 8) & 0xffu))) &
                0xffffu;
            setLineWord(line, i++, lo | (hi << 16));
            break;
          }
          case RepeatedByte: {
            const auto b = static_cast<std::uint32_t>(rd.get(8));
            setLineWord(line, i++, b | (b << 8) | (b << 16) | (b << 24));
            break;
          }
          case Raw: {
            setLineWord(line, i++,
                        static_cast<std::uint32_t>(rd.get(32)));
            break;
          }
        }
    }
    return line;
}

} // namespace cmpsim
