#include "src/compression/bdi.h"

#include <cstring>

namespace cmpsim {

namespace {

struct TrialSpec
{
    BdiCompressor::Encoding enc;
    unsigned base_bytes;
    unsigned delta_bytes;
};

constexpr TrialSpec kTrials[] = {
    {BdiCompressor::B8D1, 8, 1}, {BdiCompressor::B8D2, 8, 2},
    {BdiCompressor::B8D4, 8, 4}, {BdiCompressor::B4D1, 4, 1},
    {BdiCompressor::B4D2, 4, 2}, {BdiCompressor::B2D1, 2, 1},
};

std::uint64_t
element(const LineData &line, unsigned base_bytes, unsigned i)
{
    std::uint64_t v = 0;
    std::memcpy(&v, line.data() + i * base_bytes, base_bytes);
    return v;
}

/** Signed-fit check: does (a - b) fit in delta_bytes as signed? */
bool
deltaFits(std::uint64_t a, std::uint64_t b, unsigned delta_bytes)
{
    const auto d = static_cast<std::int64_t>(a - b);
    const std::int64_t lo = -(1LL << (delta_bytes * 8 - 1));
    const std::int64_t hi = (1LL << (delta_bytes * 8 - 1)) - 1;
    return d >= lo && d <= hi;
}

/**
 * Attempt one (base, delta) trial. Returns encoded bit size, or 0 on
 * failure. On success and non-null outputs, fills base/selectors.
 */
unsigned
tryTrial(const LineData &line, const TrialSpec &t, std::uint64_t *base_out,
         std::uint64_t *mask_out)
{
    const unsigned n = kLineBytes / t.base_bytes;
    bool have_base = false;
    std::uint64_t base = 0;
    std::uint64_t mask = 0; // bit i set -> element uses explicit base

    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t v = element(line, t.base_bytes, i);
        if (deltaFits(v, 0, t.delta_bytes))
            continue; // implicit zero base
        if (!have_base) {
            have_base = true;
            base = v;
        }
        if (!deltaFits(v, base, t.delta_bytes))
            return 0;
        mask |= 1ULL << i;
    }

    if (base_out)
        *base_out = base;
    if (mask_out)
        *mask_out = mask;
    // 4-bit encoding id + base + selector bit per element + deltas.
    return 4 + t.base_bytes * 8 + n + n * t.delta_bytes * 8;
}

} // namespace

CompressedSize
BdiCompressor::compress(const LineData &line, BitStream *out) const
{
    if (out)
        out->clear();

    // Special case: all zero.
    bool all_zero = true;
    for (unsigned q = 0; q < kLineBytes / 8 && all_zero; ++q)
        all_zero = lineQword(line, q) == 0;
    if (all_zero) {
        if (out)
            out->put(Zeros, 4);
        CompressedSize s;
        s.bits = 4;
        s.segments = 1;
        return s;
    }

    // Special case: repeated 8-byte value.
    bool repeated = true;
    const std::uint64_t first = lineQword(line, 0);
    for (unsigned q = 1; q < kLineBytes / 8 && repeated; ++q)
        repeated = lineQword(line, q) == first;
    if (repeated) {
        if (out) {
            out->put(Repeated8, 4);
            out->put(first, 64);
        }
        CompressedSize s;
        s.bits = 4 + 64;
        s.segments = segmentsForBits(s.bits);
        return s;
    }

    // Base+delta trials; keep the smallest that succeeds.
    const TrialSpec *best = nullptr;
    unsigned best_bits = kLineBytes * 8;
    for (const auto &t : kTrials) {
        const unsigned bits = tryTrial(line, t, nullptr, nullptr);
        if (bits != 0 && bits < best_bits) {
            best = &t;
            best_bits = bits;
        }
    }

    if (best == nullptr || segmentsForBits(best_bits) >= kSegmentsPerLine) {
        if (out) {
            out->put(Uncompressed, 4);
            for (unsigned q = 0; q < kLineBytes / 8; ++q)
                out->put(lineQword(line, q), 64);
        }
        return CompressedSize{};
    }

    std::uint64_t base = 0;
    std::uint64_t mask = 0;
    tryTrial(line, *best, &base, &mask);
    if (out) {
        const unsigned n = kLineBytes / best->base_bytes;
        out->put(best->enc, 4);
        out->put(base, best->base_bytes * 8);
        out->put(mask, n);
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t v = element(line, best->base_bytes, i);
            const std::uint64_t b = (mask >> i) & 1 ? base : 0;
            out->put(v - b, best->delta_bytes * 8);
        }
    }

    CompressedSize s;
    s.bits = best_bits;
    s.segments = segmentsForBits(best_bits);
    return s;
}

LineData
BdiCompressor::decompress(const BitStream &encoded,
                          const CompressedSize &size) const
{
    (void)size;
    LineData line{};
    BitReader rd(encoded);
    const auto enc = static_cast<Encoding>(rd.get(4));

    switch (enc) {
      case Zeros:
        return line;
      case Repeated8: {
        const std::uint64_t v = rd.get(64);
        for (unsigned q = 0; q < kLineBytes / 8; ++q)
            setLineQword(line, q, v);
        return line;
      }
      case Uncompressed:
        for (unsigned q = 0; q < kLineBytes / 8; ++q)
            setLineQword(line, q, rd.get(64));
        return line;
      default:
        break;
    }

    const TrialSpec *spec = nullptr;
    for (const auto &t : kTrials) {
        if (t.enc == enc) {
            spec = &t;
            break;
        }
    }
    cmpsim_assert(spec != nullptr);

    const unsigned n = kLineBytes / spec->base_bytes;
    const std::uint64_t base = rd.get(spec->base_bytes * 8);
    const std::uint64_t mask = rd.get(n);
    for (unsigned i = 0; i < n; ++i) {
        std::uint64_t d = rd.get(spec->delta_bytes * 8);
        // Sign-extend the delta.
        const unsigned bits = spec->delta_bytes * 8;
        if (bits < 64 && (d >> (bits - 1)) & 1)
            d |= ~((1ULL << bits) - 1);
        const std::uint64_t b = (mask >> i) & 1 ? base : 0;
        std::uint64_t v = b + d;
        if (spec->base_bytes < 8)
            v &= (1ULL << (spec->base_bytes * 8)) - 1;
        std::memcpy(line.data() + i * spec->base_bytes, &v,
                    spec->base_bytes);
    }
    return line;
}

} // namespace cmpsim
