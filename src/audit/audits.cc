#include "src/audit/audits.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace cmpsim {

std::string
auditFormat(const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

bool
auditDecoupledSet(const DecoupledSet &set, bool require_full_charge,
                  std::string &why)
{
    const auto &entries = set.entries();
    unsigned segment_sum = 0;
    bool seen_invalid = false;

    for (unsigned i = 0; i < entries.size(); ++i) {
        const TagEntry &e = entries[i];
        if (!e.valid) {
            seen_invalid = true;
            // Victim/empty tags must carry no live line state: stale
            // directory bits here would leak into the next insert.
            if (e.dirty || e.prefetch || e.pf_source != PfSource::None ||
                e.sharers != 0 || e.owner != kNoOwner ||
                e.segments != kSegmentsPerLine) {
                why = auditFormat(
                    "invalid tag at depth %u (line %#llx) carries live "
                    "state: dirty=%d prefetch=%d sharers=%#x owner=%d "
                    "segments=%u",
                    i, static_cast<unsigned long long>(e.line), e.dirty,
                    e.prefetch, e.sharers, e.owner, e.segments);
                return false;
            }
            continue;
        }

        if (seen_invalid) {
            why = auditFormat(
                "valid line %#llx at depth %u sits behind a victim/"
                "empty tag: valid entries must form the MRU prefix",
                static_cast<unsigned long long>(e.line), i);
            return false;
        }
        if (e.line == kAddrInvalid) {
            why = auditFormat("valid entry at depth %u has no address", i);
            return false;
        }
        if (e.segments < 1 || e.segments > kSegmentsPerLine) {
            why = auditFormat(
                "line %#llx charged %u segments (legal range 1..%u)",
                static_cast<unsigned long long>(e.line), e.segments,
                kSegmentsPerLine);
            return false;
        }
        if (require_full_charge && e.segments != kSegmentsPerLine) {
            why = auditFormat(
                "uncompressed line %#llx charged %u segments, expected "
                "exactly %u",
                static_cast<unsigned long long>(e.line), e.segments,
                kSegmentsPerLine);
            return false;
        }
        for (unsigned j = 0; j < i; ++j) {
            if (entries[j].valid && entries[j].line == e.line) {
                why = auditFormat(
                    "duplicate valid line %#llx at depths %u and %u",
                    static_cast<unsigned long long>(e.line), j, i);
                return false;
            }
        }
        segment_sum += e.segments;
    }

    if (segment_sum != set.usedSegments()) {
        why = auditFormat(
            "segment accounting drift: sum over valid tags = %u but "
            "usedSegments() = %u (budget %u)",
            segment_sum, set.usedSegments(), set.segmentBudget());
        return false;
    }
    if (segment_sum > set.segmentBudget()) {
        why = auditFormat(
            "segment budget overflow: %u segments allocated, budget %u",
            segment_sum, set.segmentBudget());
        return false;
    }
    return true;
}

bool
auditCompressorRoundTrip(const Compressor &c, const LineData &line,
                         std::string &why)
{
    BitStream bits;
    const CompressedSize size = c.compress(line, &bits);
    if (size.segments < 1 || size.segments > kSegmentsPerLine) {
        why = auditFormat("%s reported %u segments (legal range 1..%u)",
                          c.name().c_str(), size.segments,
                          kSegmentsPerLine);
        return false;
    }
    const LineData back = c.decompress(bits, size);
    if (back != line) {
        unsigned first_bad = 0;
        while (first_bad < kLineBytes && back[first_bad] == line[first_bad])
            ++first_bad;
        why = auditFormat(
            "%s round-trip mismatch at byte %u: wrote %#04x, read back "
            "%#04x (%u encoded bits, %u segments)",
            c.name().c_str(), first_bad, line[first_bad], back[first_bad],
            size.bits, size.segments);
        return false;
    }
    return true;
}

void
registerEventQueueAudits(InvariantRegistry &reg, const EventQueue &eq,
                         const std::string &name)
{
    reg.add(name + ".monotonic_now",
            [&eq, last = Cycle{0}](std::string &why) mutable {
                if (eq.now() < last) {
                    why = auditFormat(
                        "now() went backwards: %llu after %llu",
                        static_cast<unsigned long long>(eq.now()),
                        static_cast<unsigned long long>(last));
                    return false;
                }
                last = eq.now();
                return true;
            });
    reg.add(name + ".no_past_events", [&eq](std::string &why) {
        const Cycle next = eq.nextEventCycle();
        if (next != kCycleNever && next < eq.now()) {
            why = auditFormat(
                "event pending at cycle %llu but now() is %llu "
                "(%zu events queued)",
                static_cast<unsigned long long>(next),
                static_cast<unsigned long long>(eq.now()), eq.size());
            return false;
        }
        return true;
    });
}

void
registerPriorityLinkAudits(InvariantRegistry &reg,
                           const PriorityLink &link,
                           const std::string &name)
{
    reg.add(name + ".byte_conservation", [&link](std::string &why) {
        const std::uint64_t requested =
            link.totalBytes() + link.pendingBytesAtReset();
        const std::uint64_t accounted = link.deliveredBytes() +
                                        link.inflightBytes() +
                                        link.queuedBytes();
        if (requested != accounted) {
            why = auditFormat(
                "bytes requested (%llu + %llu pending at reset) != "
                "delivered %llu + in-flight %llu + queued %llu",
                static_cast<unsigned long long>(link.totalBytes()),
                static_cast<unsigned long long>(
                    link.pendingBytesAtReset()),
                static_cast<unsigned long long>(link.deliveredBytes()),
                static_cast<unsigned long long>(link.inflightBytes()),
                static_cast<unsigned long long>(link.queuedBytes()));
            return false;
        }
        return true;
    });
}

void
registerBandwidthResourceAudits(InvariantRegistry &reg,
                                const BandwidthResource &bw,
                                const std::string &name)
{
    reg.add(name + ".busy_bytes", [&bw](std::string &why) {
        // Every reserve() adds bytes/rate to the busy accumulator, so
        // busy * rate must track total bytes up to FP rounding.
        const double expect =
            static_cast<double>(bw.totalBytes()) / bw.rate();
        const double tol = 1e-6 * (expect + 1.0);
        if (std::fabs(bw.busyCycles() - expect) > tol) {
            why = auditFormat(
                "busy cycles %.6f inconsistent with %llu bytes at "
                "%.3f B/cycle (expected %.6f)",
                bw.busyCycles(),
                static_cast<unsigned long long>(bw.totalBytes()),
                bw.rate(), expect);
            return false;
        }
        return true;
    });
}

} // namespace cmpsim
