#include "src/audit/invariant_registry.h"

#include "src/common/log.h"

namespace cmpsim {

void
InvariantRegistry::add(const std::string &name, Check fn)
{
    cmpsim_assert(fn != nullptr);
    for (const auto &[existing, _] : checks_) {
        cmpsim_assert(existing != name,
                      "duplicate invariant name \"%s\"", name.c_str());
    }
    checks_.emplace_back(name, std::move(fn));
}

std::vector<InvariantFailure>
InvariantRegistry::check() const
{
    std::vector<InvariantFailure> failures;
    for (const auto &[name, fn] : checks_) {
        std::string why;
        if (!fn(why))
            failures.push_back(InvariantFailure{name, why});
    }
    ++passes_;
    return failures;
}

void
InvariantRegistry::enforce() const
{
    for (const auto &[name, fn] : checks_) {
        std::string why;
        if (!fn(why)) {
            cmpsim_panic("invariant \"%s\" violated: %s", name.c_str(),
                         why.empty() ? "(no detail)" : why.c_str());
        }
    }
    ++passes_;
}

std::vector<std::string>
InvariantRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(checks_.size());
    for (const auto &[name, _] : checks_)
        out.push_back(name);
    return out;
}

} // namespace cmpsim
