/**
 * @file
 * Per-layer invariant audits: the concrete checks components register
 * with an InvariantRegistry (see invariant_registry.h for the
 * machinery and DESIGN.md §6 for the catalogue).
 *
 * Layer coverage:
 *  - DecoupledSet: segment accounting vs. budget, valid-prefix LRU
 *    stack order, no duplicate valid line addresses, full 8-segment
 *    charge for uncompressed caches, clean victim-tag state;
 *  - EventQueue: monotonic now(), no event pending in the past;
 *  - PriorityLink: byte conservation (requested = delivered +
 *    in-flight + queued);
 *  - BandwidthResource: busy-time/byte-count consistency;
 *  - Compressor: lossless compress -> decompress round-trip (run on
 *    every L2 fill when L2Params::verify_fill_roundtrip is set).
 *
 * Cache-internal audits (MSHR accounting, stat conservation) need
 * private state and live on L1Cache/L2Cache as registerAudits()
 * members; CmpSystem adds the cross-component stat checks.
 */

#ifndef CMPSIM_AUDIT_AUDITS_H
#define CMPSIM_AUDIT_AUDITS_H

#include <string>

#include "src/audit/invariant_registry.h"
#include "src/cache/decoupled_set.h"
#include "src/common/line_data.h"
#include "src/compression/compressor.h"
#include "src/mem/priority_link.h"
#include "src/sim/bandwidth_resource.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

/** printf-style helper for audit failure details. */
std::string auditFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * One-shot structural check of @p set (see DecoupledSet's class
 * comment for the audited invariants).
 *
 * @param require_full_charge every valid line must be charged exactly
 *        kSegmentsPerLine segments (uncompressed caches: L1s and the
 *        uncompressed L2 configuration)
 * @param why receives the offending entry/counter state on failure
 * @return true when every invariant holds
 */
bool auditDecoupledSet(const DecoupledSet &set, bool require_full_charge,
                       std::string &why);

/**
 * Lossless round-trip check: compress @p line with @p c, decompress,
 * and compare byte-for-byte; also validates the reported segment
 * count. Used on every L2 fill in audit builds and by the audit tests.
 */
bool auditCompressorRoundTrip(const Compressor &c, const LineData &line,
                              std::string &why);

/** Register @p eq's audits (monotonic now, no past events) as
 *  "<name>.monotonic_now" and "<name>.no_past_events". */
void registerEventQueueAudits(InvariantRegistry &reg,
                              const EventQueue &eq,
                              const std::string &name);

/** Register @p link's byte-conservation audit as
 *  "<name>.byte_conservation". */
void registerPriorityLinkAudits(InvariantRegistry &reg,
                                const PriorityLink &link,
                                const std::string &name);

/** Register @p bw's busy-time/byte consistency audit as
 *  "<name>.busy_bytes". */
void registerBandwidthResourceAudits(InvariantRegistry &reg,
                                     const BandwidthResource &bw,
                                     const std::string &name);

} // namespace cmpsim

#endif // CMPSIM_AUDIT_AUDITS_H
