/**
 * @file
 * Invariant-audit registry: the safety net every simulation component
 * hangs its named consistency checks on.
 *
 * Simulator bugs rarely crash — they silently corrupt miss rates,
 * bandwidth counters and speedups (exactly the numbers the paper's
 * figures are built from). Components therefore register named check
 * functions here; CmpSystem runs the whole registry every
 * SystemConfig::audit_interval cycles and at end-of-simulation, and
 * panics with the failing invariant's name plus a description of the
 * offending component state.
 *
 * Two evaluation modes:
 *  - enforce(): production/test runs — panic on the first failure;
 *  - check():   audit unit tests — collect every failure and return
 *               them without aborting, so deliberate corruption can be
 *               asserted on.
 */

#ifndef CMPSIM_AUDIT_INVARIANT_REGISTRY_H
#define CMPSIM_AUDIT_INVARIANT_REGISTRY_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace cmpsim {

/** One failed invariant: its registered name + component state. */
struct InvariantFailure
{
    std::string name;   ///< registered invariant name ("l2.set_segments")
    std::string detail; ///< offending component state, human-readable
};

/** Name -> check-function registry for simulation invariants. */
class InvariantRegistry
{
  public:
    /**
     * One invariant check. Return true when the invariant holds;
     * otherwise fill @p why with the offending component state (values
     * of the counters/fields that disagree) and return false. Checks
     * may keep mutable state (e.g. the last observed cycle for
     * monotonicity checks) but must never modify simulation state.
     */
    using Check = std::function<bool(std::string &why)>;

    /** Register @p fn under @p name. Names should be hierarchical
     *  dotted paths ("l2.set_segments", "eq.monotonic_now"). */
    void add(const std::string &name, Check fn);

    /** Run every check; return all failures (never aborts). */
    std::vector<InvariantFailure> check() const;

    /** Run every check; panic with name + state on the first failure. */
    void enforce() const;

    std::size_t size() const { return checks_.size(); }

    /** Registered invariant names, in registration order. */
    std::vector<std::string> names() const;

    /** Number of completed full audit passes (check() or enforce()). */
    std::uint64_t passesRun() const { return passes_; }

  private:
    friend class CheckpointCodec; // restores the audit-pass count

    std::vector<std::pair<std::string, Check>> checks_;
    mutable std::uint64_t passes_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_AUDIT_INVARIANT_REGISTRY_H
