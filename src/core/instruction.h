/**
 * @file
 * The dynamic instruction record the core timing model consumes from a
 * workload's instruction stream.
 */

#ifndef CMPSIM_CORE_INSTRUCTION_H
#define CMPSIM_CORE_INSTRUCTION_H

#include <cstdint>

#include "src/common/types.h"

namespace cmpsim {

/** Dynamic instruction classes the timing model distinguishes. */
enum class InstrType : std::uint8_t
{
    Alu,    ///< any non-memory, non-branch operation
    Load,
    Store,
    Branch,
};

/** One dynamic instruction. */
struct Instruction
{
    InstrType type = InstrType::Alu;

    /** Instruction address (drives I-cache behaviour). */
    Addr pc = 0;

    /** Data address for Load/Store. */
    Addr addr = 0;

    /** Store data (one 32-bit word written at addr). */
    std::uint32_t store_value = 0;

    /** Branch only: the front end mispredicts this branch. */
    bool mispredict = false;

    /**
     * Load/Store only: the address depends on the value returned by
     * the previous chained load (pointer chasing). The core cannot
     * issue this access until that load completes, serializing the
     * chain's misses — the memory-level-parallelism killer that makes
     * commercial workloads latency-bound.
     */
    bool chained = false;
};

/** Source of dynamic instructions; implemented by workloads. */
class InstructionStream
{
  public:
    virtual ~InstructionStream() = default;

    /** Produce the next dynamic instruction (infinite stream). */
    virtual Instruction next() = 0;
};

} // namespace cmpsim

#endif // CMPSIM_CORE_INSTRUCTION_H
