/**
 * @file
 * Approximate out-of-order core timing model.
 *
 * The model preserves the degrees of freedom the paper's results
 * depend on — 4-wide dispatch/retire, a 128-entry ROB that bounds how
 * much memory latency can be hidden, up to 16 outstanding misses per
 * core (enforced by the L1D MSHRs), branch-redirect stalls, and
 * I-fetch stalls on L1I misses — without simulating register renaming
 * or a scheduler. ALU operations complete a cycle after dispatch;
 * loads complete when the memory system responds; stores retire from a
 * store buffer (their MSHR occupancy still throttles the core);
 * instructions retire in order.
 *
 * The core is polled by the Simulator: tick(now) advances one cycle
 * and returns the next cycle the core can make progress; memory
 * completion callbacks lower nextWake() so a blocked core resumes as
 * soon as data returns.
 */

#ifndef CMPSIM_CORE_CORE_MODEL_H
#define CMPSIM_CORE_CORE_MODEL_H

#include <deque>
#include <string>
#include <vector>

#include "src/cache/l1_cache.h"
#include "src/common/stats.h"
#include "src/core/instruction.h"
#include "src/mem/value_store.h"

namespace cmpsim {

class CpiAccount;

/** Static core configuration (Table 1). */
struct CoreParams
{
    unsigned dispatch_width = 4;
    unsigned retire_width = 4;
    unsigned rob_entries = 128;

    /** Pipeline refill after a mispredicted branch resolves. */
    Cycle branch_redirect_penalty = 11;

    Cycle alu_latency = 1;
};

/** One single-threaded core. */
class CoreModel
{
  public:
    CoreModel(EventQueue &eq, L1Cache &icache, L1Cache &dcache,
              ValueStore &values, InstructionStream &stream,
              unsigned cpu, const CoreParams &params);

    /**
     * Run one cycle at @p now (retire, then dispatch).
     * @return the next cycle this core can do useful work;
     *         kCycleNever when it is blocked purely on memory
     *         responses (whose callbacks will lower nextWake()).
     */
    Cycle tick(Cycle now);

    /** Earliest cycle the core wants to run (updated by callbacks). */
    Cycle nextWake() const { return next_wake_; }

    std::uint64_t instructionsRetired() const { return retired_.value(); }

    /**
     * Run @p count instructions functionally (cache state only, no
     * timing) for warmup.
     */
    void runFunctional(std::uint64_t count);

    /**
     * Pure fast-forward: advance @p count instructions of the stream
     * — identical RNG draws, value-store first touches and store
     * writes as runFunctional(), so a later functional or detailed
     * phase continues the exact same workload — but with no cache or
     * prefetcher state updates. The cheap half of a SMARTS-style
     * skip+warm fast-forward (DESIGN.md §14).
     */
    void runSkip(std::uint64_t count);

    /**
     * Adopt the outcome of a pure-skip phase a lockstep twin executed
     * on this core's behalf (shared-prefix fast-forward, DESIGN.md
     * §14): copy the fetch cursor and the stream-content counters
     * runSkip() would have advanced, resynchronizing this core to the
     * leader's instruction index. The caller separately copies the
     * workload generator state and replays the twin's value-store
     * journal; @p count is the per-core skip length just executed and
     * @p slack the per-core drift a timed detail window can introduce
     * (its total budget) — the twins' retirement gap is asserted to be
     * count within +/- slack.
     */
    void adoptSkip(const CoreModel &leader, std::uint64_t count,
                   std::uint64_t slack);

    unsigned cpu() const { return cpu_; }

    /** Attach the (opt-in) CPI-stack account this core reports its
     *  per-tick blocking cause to; nullptr (the default) disarms the
     *  probes entirely. */
    void setCpi(CpiAccount *cpi) { cpi_ = cpi; }

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

  private:
    friend class CheckpointCodec; // serializes ROB/chain/fetch state

    struct RobEntry
    {
        InstrType type = InstrType::Alu;
        Cycle done_at = kCycleNever;
        std::uint64_t id = ~0ULL; ///< guards stale memory callbacks
        bool completed(Cycle now) const { return done_at <= now; }
    };

    /** Dispatch one instruction at @p now; false when stalled. */
    bool dispatchOne(Cycle now);

    /** Handle the instruction-fetch side of dispatching @p pc. */
    bool fetchAvailable(Addr pc, Cycle now);

    void
    wake(Cycle c)
    {
        if (c < next_wake_)
            next_wake_ = c;
    }

    EventQueue &eq_;
    L1Cache &icache_;
    L1Cache &dcache_;
    ValueStore &values_;
    InstructionStream &stream_;
    unsigned cpu_;
    CoreParams params_;

    std::vector<RobEntry> rob_; // ring buffer
    unsigned rob_head_ = 0;
    unsigned rob_tail_ = 0;
    unsigned rob_count_ = 0;
    std::uint64_t next_rob_id_ = 0;

    bool have_pending_ = false;   ///< instruction stalled at dispatch
    Instruction pending_{};

    /** Pointer-chase serialization: accesses waiting on the previous
     *  chained load, issued one per completion. */
    struct ChainedAccess
    {
        Addr addr;
        bool is_write;
        unsigned slot;
        std::uint64_t id;
    };
    std::deque<ChainedAccess> chain_queue_;
    bool chain_outstanding_ = false;

    /** Issue the next queued chained access, if any. */
    void issueChainHead(Cycle now);

    /** Completion handling shared by chained and plain loads. */
    void finishLoad(unsigned slot, std::uint64_t id, Cycle c,
                    bool chained);

    Addr last_fetch_line_ = kAddrInvalid;
    Cycle fetch_stall_until_ = 0;
    Cycle next_wake_ = 0;

    /** Why fetch last stalled — the CPI stack's tie-break between an
     *  I-miss and a branch redirect (last writer wins; untouched when
     *  no CpiAccount is attached means it is never read). */
    enum class FetchStallKind : std::uint8_t { IMiss, Branch };
    FetchStallKind fetch_kind_ = FetchStallKind::IMiss;
    bool mshr_stall_ = false; ///< dispatch hit a full MSHR this tick
    CpiAccount *cpi_ = nullptr;

    Counter retired_;
    Counter loads_;
    Counter chained_loads_;
    Counter stores_;
    Counter branches_;
    Counter mispredicts_;
    Counter ifetch_lines_;
    Counter dispatch_stalls_mshr_;
    Counter cycles_;
};

} // namespace cmpsim

#endif // CMPSIM_CORE_CORE_MODEL_H
