#include "src/core/core_model.h"

#include <algorithm>

#include "src/obs/cpi_stack.h"
#include "src/sim/fault_injection.h"
#include "src/sim/lane.h"

namespace cmpsim {

CoreModel::CoreModel(EventQueue &eq, L1Cache &icache, L1Cache &dcache,
                     ValueStore &values, InstructionStream &stream,
                     unsigned cpu, const CoreParams &params)
    : eq_(eq), icache_(icache), dcache_(dcache), values_(values),
      stream_(stream), cpu_(cpu), params_(params),
      rob_(params.rob_entries)
{
    cmpsim_assert(params.rob_entries > 0);
    cmpsim_assert(params.dispatch_width > 0 && params.retire_width > 0);
}

bool
CoreModel::fetchAvailable(Addr pc, Cycle now)
{
    const Addr line = lineAddr(pc);
    if (line == last_fetch_line_)
        return true;

    if (icache_.probeHit(line)) {
        // Pipelined I-hit: no stall, but the access still updates LRU,
        // prefetch bits and the I-prefetcher.
        ++ifetch_lines_;
        last_fetch_line_ = line;
        icache_.access(line, false, now, [](Cycle) {},
                       ckpt::tag(ckpt::kNoop));
        return true;
    }

    if (!icache_.canAccept(line)) {
        // I-MSHRs saturated (prefetch burst); retry shortly.
        fetch_stall_until_ = now + 8;
        fetch_kind_ = FetchStallKind::IMiss;
        return false;
    }

    ++ifetch_lines_;
    last_fetch_line_ = line;
    fetch_stall_until_ = kCycleNever; // resolved by the callback
    fetch_kind_ = FetchStallKind::IMiss;
    icache_.access(line, false, now,
                   [this](Cycle c) {
                       fetch_stall_until_ = c;
                       wake(c);
                   },
                   ckpt::tag(ckpt::kCoreIFetch, cpu_));
    return false;
}

bool
CoreModel::dispatchOne(Cycle now)
{
    if (now < fetch_stall_until_)
        return false;

    if (!have_pending_) {
        pending_ = stream_.next();
        have_pending_ = true;
    }
    const Instruction &in = pending_;

    if (!fetchAvailable(in.pc, now))
        return false;

    const unsigned slot = rob_tail_;
    RobEntry &e = rob_[slot];
    const std::uint64_t id = next_rob_id_;

    switch (in.type) {
      case InstrType::Load: {
        if (!dcache_.canAccept(in.addr)) {
            ++dispatch_stalls_mshr_;
            mshr_stall_ = true;
            return false;
        }
        ++loads_;
        e.type = InstrType::Load;
        e.done_at = kCycleNever;
        if (cpi_ != nullptr)
            cpi_->noteLoad(slot, lineAddr(in.addr));
        if (in.chained) {
            ++chained_loads_;
            chain_queue_.push_back(
                ChainedAccess{in.addr, false, slot, id});
            issueChainHead(now);
        } else {
            dcache_.access(in.addr, false, now,
                           [this, slot, id](Cycle c) {
                               finishLoad(slot, id, c, false);
                           },
                           ckpt::tag(ckpt::kCoreLoad, cpu_, slot, id));
        }
        break;
      }
      case InstrType::Store: {
        if (!dcache_.canAccept(in.addr)) {
            ++dispatch_stalls_mshr_;
            mshr_stall_ = true;
            return false;
        }
        ++stores_;
        // The store's value lands in the value store now (simulator
        // convenience; see ValueStore); timing-wise the store retires
        // from a store buffer while its MSHR throttles the core. The
        // value store is shared across lanes, so a parallel lane tick
        // defers the write to the barrier flush.
        const Addr word = in.addr & ~static_cast<Addr>(3);
        if (LaneMailbox *lane = laneContext()) {
            lane->noteCreated(lineAddr(word));
            lane->defer([&values = values_, word,
                         value = in.store_value] {
                values.writeWord(word, value);
            });
        } else {
            values_.writeWord(word, in.store_value);
        }
        e.type = InstrType::Store;
        e.done_at = now + 1;
        if (in.chained) {
            // The store's address depends on the chain too, but the
            // store buffer decouples it: issue when the chain allows,
            // without blocking retirement.
            chain_queue_.push_back(
                ChainedAccess{in.addr, true, slot, id});
            issueChainHead(now);
        } else {
            dcache_.access(in.addr, true, now,
                           [this](Cycle c) { wake(c); },
                           ckpt::tag(ckpt::kCoreStoreWake, cpu_));
        }
        break;
      }
      case InstrType::Branch: {
        ++branches_;
        e.type = InstrType::Branch;
        e.done_at = now + 1;
        if (in.mispredict) {
            ++mispredicts_;
            fetch_kind_ = FetchStallKind::Branch;
            fetch_stall_until_ = std::max(
                fetch_stall_until_ == kCycleNever ? 0 : fetch_stall_until_,
                now + params_.branch_redirect_penalty);
        }
        break;
      }
      case InstrType::Alu: {
        e.type = InstrType::Alu;
        e.done_at = now + params_.alu_latency;
        break;
      }
    }

    e.id = id;
    ++next_rob_id_;
    rob_tail_ = (rob_tail_ + 1) % params_.rob_entries;
    ++rob_count_;
    have_pending_ = false;
    return true;
}

void
CoreModel::finishLoad(unsigned slot, std::uint64_t id, Cycle c,
                      bool chained)
{
    if (rob_[slot].id == id) {
        rob_[slot].done_at = c;
        wake(c);
    }
    if (chained) {
        chain_outstanding_ = false;
        issueChainHead(c);
    }
}

void
CoreModel::issueChainHead(Cycle now)
{
    if (chain_outstanding_ || chain_queue_.empty())
        return;
    if (!dcache_.canAccept(chain_queue_.front().addr)) {
        // Retry when an MSHR frees (any dcache completion wakes us);
        // leave the access queued.
        return;
    }
    const ChainedAccess a = chain_queue_.front();
    chain_queue_.pop_front();
    chain_outstanding_ = true;
    if (a.is_write) {
        dcache_.access(a.addr, true, now,
                       [this](Cycle c) {
                           chain_outstanding_ = false;
                           wake(c);
                           issueChainHead(c);
                       },
                       ckpt::tag(ckpt::kCoreChainStore, cpu_));
    } else {
        dcache_.access(a.addr, false, now,
                       [this, slot = a.slot, id = a.id](Cycle c) {
                           finishLoad(slot, id, c, true);
                       },
                       ckpt::tag(ckpt::kCoreChainLoad, cpu_, a.slot,
                                 a.id));
    }
}

Cycle
CoreModel::tick(Cycle now)
{
    if (cpi_ != nullptr)
        cpi_->beginTick(now);
    if (faultStallActive("core.stall")) {
        // Injected livelock: keep ticking without retiring anything so
        // the cycle-based watchdog (not a hang) ends the simulation.
        if (cpi_ != nullptr)
            cpi_->endTick(now, CpiBlock::Compute, 0);
        next_wake_ = now + 1;
        return next_wake_;
    }
    ++cycles_;
    mshr_stall_ = false;
    bool progress = false;

    // A chained access may be waiting on a free MSHR.
    issueChainHead(now);

    // In-order retire.
    for (unsigned r = 0; r < params_.retire_width && rob_count_ > 0;
         ++r) {
        RobEntry &head = rob_[rob_head_];
        if (!head.completed(now))
            break;
        head.id = ~head.id; // poison stale completion callbacks
        rob_head_ = (rob_head_ + 1) % params_.rob_entries;
        --rob_count_;
        ++retired_;
        progress = true;
    }

    // Dispatch.
    for (unsigned d = 0;
         d < params_.dispatch_width && rob_count_ < params_.rob_entries;
         ++d) {
        if (!dispatchOne(now))
            break;
        progress = true;
    }

    if (progress) {
        if (cpi_ != nullptr)
            cpi_->endTick(now, CpiBlock::Compute, 0);
        next_wake_ = now + 1;
        return next_wake_;
    }

    if (cpi_ != nullptr) {
        // Blocking-cause tie-break (DESIGN.md §9): the oldest
        // incomplete instruction is what retirement is actually
        // waiting on, so an incomplete ROB-head load wins; otherwise
        // whatever froze the front end this tick.
        CpiBlock cause = CpiBlock::Compute;
        Addr line = 0;
        if (rob_count_ > 0 && !rob_[rob_head_].completed(now) &&
            rob_[rob_head_].type == InstrType::Load) {
            cause = CpiBlock::L1dMiss;
            line = cpi_->loadLine(rob_head_);
        } else if (now < fetch_stall_until_) {
            cause = fetch_kind_ == FetchStallKind::Branch
                        ? CpiBlock::BranchRedirect
                        : CpiBlock::L1iMiss;
        } else if (mshr_stall_) {
            cause = CpiBlock::MshrFull;
        }
        cpi_->endTick(now, cause, line);
    }

    // Blocked: compute the earliest self-known wake-up.
    Cycle nw = kCycleNever;
    unsigned idx = rob_head_;
    for (unsigned i = 0; i < rob_count_; ++i) {
        const Cycle d = rob_[idx].done_at;
        if (d != kCycleNever && d > now)
            nw = std::min(nw, d);
        idx = (idx + 1) % params_.rob_entries;
    }
    if (fetch_stall_until_ != kCycleNever && fetch_stall_until_ > now)
        nw = std::min(nw, fetch_stall_until_);
    next_wake_ = nw;
    return nw;
}

void
CoreModel::runFunctional(std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const Instruction in = stream_.next();
        const Addr iline = lineAddr(in.pc);
        if (iline != last_fetch_line_) {
            ++ifetch_lines_;
            last_fetch_line_ = iline;
            icache_.accessFunctional(in.pc, false);
        }
        switch (in.type) {
          case InstrType::Load:
            ++loads_;
            dcache_.accessFunctional(in.addr, false);
            break;
          case InstrType::Store:
            ++stores_;
            values_.writeWord(in.addr & ~static_cast<Addr>(3),
                              in.store_value);
            dcache_.accessFunctional(in.addr, true);
            break;
          case InstrType::Branch:
            ++branches_;
            if (in.mispredict)
                ++mispredicts_;
            break;
          case InstrType::Alu:
            break;
        }
        ++retired_;
    }
}

void
CoreModel::runSkip(std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const Instruction in = stream_.next();
        const Addr iline = lineAddr(in.pc);
        if (iline != last_fetch_line_) {
            ++ifetch_lines_;
            last_fetch_line_ = iline;
        }
        switch (in.type) {
          case InstrType::Load:
            ++loads_;
            break;
          case InstrType::Store:
            ++stores_;
            values_.writeWord(in.addr & ~static_cast<Addr>(3),
                              in.store_value);
            break;
          case InstrType::Branch:
            ++branches_;
            if (in.mispredict)
                ++mispredicts_;
            break;
          case InstrType::Alu:
            break;
        }
        ++retired_;
    }
}

void
CoreModel::adoptSkip(const CoreModel &leader, std::uint64_t count,
                     std::uint64_t slack)
{
    cmpsim_assert(cpu_ == leader.cpu_);
    // The timed detail window's budget is a *total* across cores, so
    // per-core retirement drifts by up to the window length between
    // configurations; adoption resynchronizes to the leader's cursor.
    // A gap outside skip-length +/- one detail window means the
    // systems were never in lockstep at all.
    const std::uint64_t gap = leader.retired_.value() - retired_.value();
    cmpsim_assert(gap + slack >= count && gap <= count + slack);
    retired_.restore(leader.retired_.value());
    loads_.restore(leader.loads_.value());
    stores_.restore(leader.stores_.value());
    branches_.restore(leader.branches_.value());
    mispredicts_.restore(leader.mispredicts_.value());
    ifetch_lines_.restore(leader.ifetch_lines_.value());
    last_fetch_line_ = leader.last_fetch_line_;
}

void
CoreModel::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".retired", &retired_);
    reg.registerCounter(prefix + ".loads", &loads_);
    reg.registerCounter(prefix + ".chained_loads", &chained_loads_);
    reg.registerCounter(prefix + ".stores", &stores_);
    reg.registerCounter(prefix + ".branches", &branches_);
    reg.registerCounter(prefix + ".mispredicts", &mispredicts_);
    reg.registerCounter(prefix + ".ifetch_lines", &ifetch_lines_);
    reg.registerCounter(prefix + ".dispatch_stalls_mshr",
                        &dispatch_stalls_mshr_);
    reg.registerCounter(prefix + ".active_cycles", &cycles_);
}

void
CoreModel::resetStats()
{
    retired_.reset();
    loads_.reset();
    chained_loads_.reset();
    stores_.reset();
    branches_.reset();
    mispredicts_.reset();
    ifetch_lines_.reset();
    dispatch_stalls_mshr_.reset();
    cycles_.reset();
}

} // namespace cmpsim
