#include "src/dram/dram_backend.h"

#include <algorithm>
#include <tuple>

#include "src/audit/invariant_registry.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

DramBackend::DramBackend(EventQueue &eq, const DramTimingParams &params)
    : eq_(eq), params_(params)
{
    channels_.resize(params_.channels);
    for (auto &ch : channels_) {
        ch.banks.resize(params_.banksPerChannel());
        ch.next_refresh = params_.refresh_interval;
    }
}

DramBackend::Decoded
DramBackend::decode(Addr line_addr) const
{
    // Column bits lowest, then channel, then bank, then row: the
    // consecutive lines of a stride stream walk one row and spread
    // rows across channels, the mapping every open-page controller
    // uses to convert spatial locality into row hits.
    const std::uint64_t line = line_addr / kLineBytes;
    const unsigned lpr = params_.linesPerRow();
    Decoded d;
    d.column = line % lpr;
    std::uint64_t rest = line / lpr;
    d.channel = static_cast<unsigned>(rest % params_.channels);
    rest /= params_.channels;
    d.bank = static_cast<unsigned>(rest % params_.banksPerChannel());
    d.row = rest / params_.banksPerChannel();
    return d;
}

unsigned
DramBackend::beatsFor(unsigned segments) const
{
    const unsigned bytes = segments * kSegmentBytes;
    const unsigned beats =
        (bytes + params_.burst_bytes - 1) / params_.burst_bytes;
    return std::max(1u, beats);
}

void
DramBackend::read(Addr line_addr, unsigned segments, bool prefetch,
                  Cycle when, Done done, ckpt::Tag done_tag)
{
    faultSite("dram.access");
    const Decoded d = decode(line_addr);
    Channel &ch = channels_[d.channel];
    Bank &b = ch.banks[d.bank];

    ++reads_enqueued_;
    ++conserv_reads_in_;
    bank_queue_depth_.sample(static_cast<double>(b.pending));
    ++b.pending;
    ch.reads.push_back(Request{line_addr, d.row, d.bank,
                               beatsFor(segments), prefetch, when,
                               next_seq_++, std::move(done),
                               std::move(done_tag)});
    wake(d.channel, when);
}

void
DramBackend::write(Addr line_addr, unsigned segments, Cycle when)
{
    const Decoded d = decode(line_addr);
    Channel &ch = channels_[d.channel];
    Bank &b = ch.banks[d.bank];

    ++writes_enqueued_;
    ++conserv_writes_in_;
    bank_queue_depth_.sample(static_cast<double>(b.pending));
    ++b.pending;
    ch.writes.push_back(Request{line_addr, d.row, d.bank,
                               beatsFor(segments), false, when,
                               next_seq_++, nullptr, {}});
    wake(d.channel, when);
}

void
DramBackend::wake(unsigned ci, Cycle at)
{
    Channel &ch = channels_[ci];
    if (ch.busy)
        return;
    ch.busy = true;
    eq_.schedule(std::max(at, eq_.now()), [this, ci] { pump(ci); },
                 ckpt::tag(ckpt::kDramPump, ci));
}

bool
DramBackend::select(const Channel &ch, const std::deque<Request> &q,
                    Cycle now, std::size_t &index) const
{
    using Key = std::tuple<unsigned, unsigned, std::uint64_t>;
    bool found = false;
    Key best{};
    for (std::size_t i = 0; i < q.size(); ++i) {
        const Request &r = q[i];
        if (r.ready > now)
            continue;
        Key key;
        if (params_.sched == DramSched::Fcfs) {
            key = Key{0, 0, r.seq};
        } else {
            const Bank &b = ch.banks[r.bank];
            const bool hit = b.row_open && b.open_row == r.row;
            key = Key{hit ? 0u : 1u, r.prefetch ? 1u : 0u, r.seq};
        }
        if (!found || key < best) {
            best = key;
            index = i;
            found = true;
        }
    }
    return found;
}

Cycle
DramBackend::service(Channel &ch, Request &r, Cycle now)
{
    Bank &b = ch.banks[r.bank];
    const Cycle start = std::max(now, b.ready);
    Cycle data_start;
    if (b.row_open && b.open_row == r.row) {
        ++row_hits_;
        data_start = start + params_.tcas;
    } else if (!b.row_open) {
        ++row_misses_;
        b.activated = start;
        data_start = start + params_.trcd + params_.tcas;
    } else {
        ++row_conflicts_;
        // Precharge may not start before tRAS has elapsed since the
        // open row's activation.
        const Cycle pre = std::max(start, b.activated + params_.tras);
        b.activated = pre + params_.trp;
        data_start = b.activated + params_.trcd + params_.tcas;
    }
    const Cycle data_end =
        data_start + static_cast<Cycle>(r.beats) * params_.burst_cycles;
    if (params_.closed_page) {
        b.row_open = false;
        const Cycle pre = std::max(data_end, b.activated + params_.tras);
        b.ready = pre + params_.trp;
    } else {
        b.row_open = true;
        b.open_row = r.row;
        b.ready = data_end;
    }
    return data_end;
}

void
DramBackend::pump(unsigned ci)
{
    Channel &ch = channels_[ci];
    const Cycle now = eq_.now();

    // Refresh catch-up: periods that elapsed entirely while the
    // channel slept are skipped; once work exists and the deadline
    // has passed, one tRFC stall is charged and every row closes.
    if (params_.refresh_interval > 0 && now >= ch.next_refresh) {
        const Cycle interval = params_.refresh_interval;
        const std::uint64_t periods = (now - ch.next_refresh) / interval + 1;
        ch.next_refresh += periods * interval;
        ++refreshes_;
        for (auto &b : ch.banks) {
            b.row_open = false;
            b.ready = std::max(b.ready, now + params_.refresh_cycles);
        }
        eq_.schedule(now + params_.refresh_cycles,
                     [this, ci] { pump(ci); },
                     ckpt::tag(ckpt::kDramPump, ci));
        return;
    }

    // Write-drain hysteresis.
    if (!ch.draining &&
        ch.writes.size() >= params_.write_high_watermark) {
        ch.draining = true;
        ++write_drains_;
    }
    if (ch.draining && ch.writes.size() <= params_.write_low_watermark)
        ch.draining = false;

    std::size_t idx = 0;
    bool is_write = false;
    bool have = false;
    if (ch.draining && select(ch, ch.writes, now, idx)) {
        is_write = true;
        have = true;
    } else if (select(ch, ch.reads, now, idx)) {
        have = true;
    } else if (select(ch, ch.writes, now, idx)) {
        // No ready read: drain a write opportunistically.
        is_write = true;
        have = true;
    }

    if (!have) {
        // Nothing has arrived yet; sleep until the earliest arrival
        // (or go idle — wake() re-enters on the next enqueue).
        Cycle earliest = kCycleNever;
        for (const auto &r : ch.reads)
            earliest = std::min(earliest, r.ready);
        for (const auto &r : ch.writes)
            earliest = std::min(earliest, r.ready);
        if (earliest == kCycleNever) {
            ch.busy = false;
            return;
        }
        eq_.schedule(earliest, [this, ci] { pump(ci); },
                     ckpt::tag(ckpt::kDramPump, ci));
        return;
    }

    std::deque<Request> &q = is_write ? ch.writes : ch.reads;
    Request r = std::move(q[idx]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
    --ch.banks[r.bank].pending;

    // Row outcome must be read before service() rotates the bank's
    // row-buffer state.
    const Bank &rb = ch.banks[r.bank];
    const bool row_hit = rb.row_open && rb.open_row == r.row;

    const Cycle data_end = service(ch, r, now);
    if (is_write) {
        ++inflight_writes_;
        eq_.schedule(data_end,
                     [this, ci] {
                         ++writes_serviced_;
                         ++conserv_writes_out_;
                         --inflight_writes_;
                         pump(ci);
                     },
                     ckpt::tag(ckpt::kDramWriteDone, ci));
    } else {
        ++inflight_reads_;
        read_queue_wait_.sample(static_cast<double>(now - r.ready));
        const Cycle done_at = data_end + params_.ctrl_latency;
        if (read_observer_)
            read_observer_(r.line, now, done_at, row_hit);
        eq_.schedule(done_at,
                     [done = std::move(r.done), done_at] {
                         done(done_at);
                     },
                     ckpt::tag(ckpt::kDoneAt, done_at, 0, 0, 0,
                               std::move(r.tag)));
        eq_.schedule(data_end,
                     [this, ci] {
                         ++reads_serviced_;
                         ++conserv_reads_out_;
                         --inflight_reads_;
                         pump(ci);
                     },
                     ckpt::tag(ckpt::kDramReadSvc, ci));
    }
}

double
DramBackend::rowHitRate() const
{
    const std::uint64_t total = row_hits_.value() + row_misses_.value() +
                                row_conflicts_.value();
    return total == 0
               ? 0.0
               : static_cast<double>(row_hits_.value()) /
                     static_cast<double>(total);
}

std::size_t
DramBackend::queuedReads() const
{
    std::size_t n = 0;
    for (const auto &ch : channels_)
        n += ch.reads.size();
    return n;
}

std::size_t
DramBackend::queuedWrites() const
{
    std::size_t n = 0;
    for (const auto &ch : channels_)
        n += ch.writes.size();
    return n;
}

void
DramBackend::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".reads_enqueued", &reads_enqueued_);
    reg.registerCounter(prefix + ".reads_serviced", &reads_serviced_);
    reg.registerCounter(prefix + ".writes_enqueued", &writes_enqueued_);
    reg.registerCounter(prefix + ".writes_serviced", &writes_serviced_);
    reg.registerCounter(prefix + ".row_hits", &row_hits_);
    reg.registerCounter(prefix + ".row_misses", &row_misses_);
    reg.registerCounter(prefix + ".row_conflicts", &row_conflicts_);
    reg.registerCounter(prefix + ".refreshes", &refreshes_);
    reg.registerCounter(prefix + ".write_drains", &write_drains_);
    reg.registerAverage(prefix + ".read_queue_wait", &read_queue_wait_);
    reg.registerHistogram(prefix + ".bank_queue_depth",
                          &bank_queue_depth_);
}

void
DramBackend::registerAudits(InvariantRegistry &reg,
                            const std::string &name)
{
    reg.add(name + ".request_conservation", [this](std::string &why) {
        const std::uint64_t r_rhs =
            conserv_reads_out_ + inflight_reads_ + queuedReads();
        const std::uint64_t w_rhs =
            conserv_writes_out_ + inflight_writes_ + queuedWrites();
        if (conserv_reads_in_ == r_rhs && conserv_writes_in_ == w_rhs)
            return true;
        why = "reads in=" + std::to_string(conserv_reads_in_) +
              " out=" + std::to_string(conserv_reads_out_) +
              " inflight=" + std::to_string(inflight_reads_) +
              " queued=" + std::to_string(queuedReads()) +
              "; writes in=" + std::to_string(conserv_writes_in_) +
              " out=" + std::to_string(conserv_writes_out_) +
              " inflight=" + std::to_string(inflight_writes_) +
              " queued=" + std::to_string(queuedWrites());
        return false;
    });
}

void
DramBackend::resetStats()
{
    reads_enqueued_.reset();
    reads_serviced_.reset();
    writes_enqueued_.reset();
    writes_serviced_.reset();
    row_hits_.reset();
    row_misses_.reset();
    row_conflicts_.reset();
    refreshes_.reset();
    write_drains_.reset();
    read_queue_wait_.reset();
    bank_queue_depth_.reset();
}

} // namespace cmpsim
