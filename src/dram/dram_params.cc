#include "src/dram/dram_params.h"

#include <cstdlib>

#include "src/common/sim_error.h"

namespace cmpsim {

namespace {

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

[[noreturn]] void
badSpec(const std::string &why)
{
    throw ConfigError("env.CMPSIM_DRAM", why);
}

std::uint64_t
parseUint(const std::string &key, const std::string &value)
{
    if (value.empty())
        badSpec("empty value for \"" + key + "\"");
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size())
        badSpec("bad integer \"" + value + "\" for \"" + key + "\"");
    return v;
}

void
applyOption(DramTimingParams &p, const std::string &key,
            const std::string &value)
{
    auto u32 = [&] { return static_cast<unsigned>(parseUint(key, value)); };
    auto cyc = [&] { return static_cast<Cycle>(parseUint(key, value)); };
    if (key == "channels") {
        p.channels = u32();
    } else if (key == "ranks") {
        p.ranks = u32();
    } else if (key == "banks") {
        p.banks = u32();
    } else if (key == "row_bytes") {
        p.row_bytes = u32();
    } else if (key == "trcd") {
        p.trcd = cyc();
    } else if (key == "tcas") {
        p.tcas = cyc();
    } else if (key == "trp") {
        p.trp = cyc();
    } else if (key == "tras") {
        p.tras = cyc();
    } else if (key == "burst_bytes") {
        p.burst_bytes = u32();
    } else if (key == "burst_cycles") {
        p.burst_cycles = cyc();
    } else if (key == "ctrl_latency") {
        p.ctrl_latency = cyc();
    } else if (key == "refresh_interval") {
        p.refresh_interval = cyc();
    } else if (key == "refresh_cycles") {
        p.refresh_cycles = cyc();
    } else if (key == "wq_high") {
        p.write_high_watermark = u32();
    } else if (key == "wq_low") {
        p.write_low_watermark = u32();
    } else if (key == "page") {
        if (value == "open")
            p.closed_page = false;
        else if (value == "closed")
            p.closed_page = true;
        else
            badSpec("page must be open|closed, got \"" + value + "\"");
    } else if (key == "sched") {
        if (value == "frfcfs")
            p.sched = DramSched::FrFcfs;
        else if (value == "fcfs")
            p.sched = DramSched::Fcfs;
        else
            badSpec("sched must be frfcfs|fcfs, got \"" + value + "\"");
    } else {
        badSpec("unknown option \"" + key + "\"");
    }
}

} // namespace

void
parseDramSpec(const std::string &spec, DramTimingParams &p)
{
    if (spec.empty())
        return;

    const std::size_t colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    if (kind == "fixed") {
        if (colon != std::string::npos)
            badSpec("\"fixed\" takes no options");
        p.backend = DramBackendKind::Fixed;
        return;
    }
    if (kind != "banked")
        badSpec("backend must be fixed|banked, got \"" + kind + "\"");
    p.backend = DramBackendKind::Banked;
    if (colon == std::string::npos)
        return;

    std::size_t at = colon + 1;
    while (at <= spec.size()) {
        std::size_t comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(at, comma - at);
        const std::size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0)
            badSpec("options must be key=value, got \"" + item + "\"");
        applyOption(p, item.substr(0, eq), item.substr(eq + 1));
        at = comma + 1;
    }
}

void
applyDramEnv(DramTimingParams &p)
{
    if (const char *env = std::getenv("CMPSIM_DRAM"))
        parseDramSpec(env, p);
}

void
validateDramParams(const DramTimingParams &p)
{
    auto reject = [](const char *knob, const std::string &why) {
        throw ConfigError(knob, why);
    };

    if (p.channels == 0)
        reject("config.dram.channels", "zero DRAM channels");
    if (p.ranks == 0)
        reject("config.dram.ranks", "zero DRAM ranks");
    if (p.banks == 0)
        reject("config.dram.banks", "zero DRAM banks");
    if (p.row_bytes < kLineBytes || !isPowerOfTwo(p.row_bytes)) {
        reject("config.dram.row_bytes",
               "row buffer must be a power of two >= " +
                   std::to_string(kLineBytes) + " bytes, got " +
                   std::to_string(p.row_bytes));
    }
    if (p.burst_bytes == 0)
        reject("config.dram.burst_bytes", "burst of 0 bytes");
    if (p.burst_cycles == 0)
        reject("config.dram.burst_cycles", "burst of 0 cycles");
    if (p.trcd == 0 || p.tcas == 0 || p.trp == 0) {
        reject("config.dram.timing",
               "tRCD/tCAS/tRP must all be >= 1 cycle");
    }
    if (p.tras < p.trcd + p.tcas) {
        reject("config.dram.tras",
               "tRAS " + std::to_string(p.tras) +
                   " < tRCD + tCAS = " +
                   std::to_string(p.trcd + p.tcas));
    }
    if (p.write_high_watermark == 0)
        reject("config.dram.wq_high", "zero write-drain high watermark");
    if (p.write_low_watermark >= p.write_high_watermark) {
        reject("config.dram.wq_low",
               "write-drain low watermark " +
                   std::to_string(p.write_low_watermark) +
                   " must be below the high watermark " +
                   std::to_string(p.write_high_watermark));
    }
    if (p.refresh_interval > 0 &&
        p.refresh_cycles >= p.refresh_interval) {
        reject("config.dram.refresh",
               "refresh stall " + std::to_string(p.refresh_cycles) +
                   " cycles must be shorter than the refresh interval " +
                   std::to_string(p.refresh_interval));
    }
}

} // namespace cmpsim
