/**
 * @file
 * Configuration of the banked DRAM timing model (DESIGN.md §10).
 *
 * The paper's memory interface is a single 400-cycle constant behind
 * the pin link; that is still the default backend (Fixed) and the one
 * validated against the paper's figures. The Banked backend replaces
 * the constant with channels x ranks x banks of row-buffer state and
 * DDR-style timing so the memory-side interactions the paper studies
 * — prefetch streams hitting open rows, compressed messages shrinking
 * burst counts, writeback drains stealing read slots — have the
 * degrees of freedom that produce them on real hardware.
 *
 * All timings are in 5 GHz core cycles (1 ns = 5 cycles). The
 * defaults approximate a DDR2-era part as seen from the paper's chip:
 * tRCD/tCAS/tRP of 12 ns, tRAS of 32 ns, a 4 KB row buffer, and a
 * 16-byte column access occupying the channel data bus for 16 cycles
 * (so an uncompressed 64 B line needs 4 column accesses and a
 * 1-segment compressed line needs 1 — the compression x scheduling
 * interaction).
 *
 * Channel-count calibration: the model serializes whole accesses per
 * channel (see dram_backend.h), so a channel streams row hits at
 * ~0.5 B/cycle — about 40% of a real pipelined DDR2-800 channel,
 * which hides tCAS under the previous burst. Four default channels
 * restore an aggregate ~10 GB/s effective read bandwidth, matching a
 * real dual-channel DDR2 system's sustained rate, so the default
 * banked system sits above the paper's Figure 4 bandwidth demand for
 * the commercial workloads instead of saturating at base.
 */

#ifndef CMPSIM_DRAM_DRAM_PARAMS_H
#define CMPSIM_DRAM_DRAM_PARAMS_H

#include <string>

#include "src/common/types.h"

namespace cmpsim {

/** Which memory backend services requests behind the pin link. */
enum class DramBackendKind : unsigned
{
    Fixed = 0,  ///< flat MemoryParams::dram_latency (paper-validated)
    Banked = 1, ///< banked timing model with FR-FCFS scheduling
};

/** Scheduling discipline of the banked backend's read queue. */
enum class DramSched : unsigned
{
    FrFcfs = 0, ///< row hits first, then demand-over-prefetch, then age
    Fcfs = 1,   ///< strict arrival order (ablation baseline)
};

/** Knobs of the banked DRAM backend (inert while backend == Fixed). */
struct DramTimingParams
{
    DramBackendKind backend = DramBackendKind::Fixed;

    /** Geometry: independent channels, each ranks x banks (see the
     *  file comment for why 4 channels, not a literal 2). */
    unsigned channels = 4;
    unsigned ranks = 1;
    unsigned banks = 8;

    /** Row-buffer (page) size per bank, bytes. */
    unsigned row_bytes = 4096;

    // ---- DDR-style timings, in 5 GHz core cycles ----
    Cycle trcd = 60; ///< activate -> column command
    Cycle tcas = 60; ///< column command -> first data beat
    Cycle trp = 60;  ///< precharge duration
    Cycle tras = 160; ///< activate -> earliest precharge

    /** Bytes moved per column access and the data-bus cycles that
     *  access occupies; a line needs ceil(payload / burst_bytes)
     *  column accesses, which is where compression shortens bursts. */
    unsigned burst_bytes = 16;
    Cycle burst_cycles = 16;

    /** Controller pipeline overhead added to every read's completion
     *  (queue insertion, response path). */
    Cycle ctrl_latency = 40;

    /** Closed-page policy: auto-precharge after every access instead
     *  of leaving the row open for locality. */
    bool closed_page = false;

    DramSched sched = DramSched::FrFcfs;

    /** Per-channel refresh: every refresh_interval cycles the channel
     *  stalls refresh_cycles and all rows close (tREFI = 7.8 us,
     *  tRFC = 128 ns at 5 GHz). refresh_interval 0 disables. */
    Cycle refresh_interval = 39000;
    Cycle refresh_cycles = 640;

    /** Write-queue drain hysteresis: reads yield to writes once the
     *  queue reaches the high watermark, until it drains to the low. */
    unsigned write_high_watermark = 16;
    unsigned write_low_watermark = 4;

    unsigned banksPerChannel() const { return ranks * banks; }
    unsigned totalBanks() const { return channels * ranks * banks; }
    unsigned linesPerRow() const { return row_bytes / kLineBytes; }
};

/**
 * Parse a CMPSIM_DRAM-style spec into @p p. Grammar:
 *
 *     fixed
 *     banked
 *     banked:key=value[,key=value]...
 *
 * with integer keys channels, ranks, banks, row_bytes, trcd, tcas,
 * trp, tras, burst_bytes, burst_cycles, ctrl_latency,
 * refresh_interval, refresh_cycles, wq_high, wq_low, and enum keys
 * page=open|closed, sched=frfcfs|fcfs. Unknown keys, malformed
 * integers and options after "fixed" throw ConfigError (context
 * "env.CMPSIM_DRAM"). An empty spec leaves @p p untouched.
 */
void parseDramSpec(const std::string &spec, DramTimingParams &p);

/** Apply the CMPSIM_DRAM environment variable to @p p (no-op when
 *  unset or empty). */
void applyDramEnv(DramTimingParams &p);

/**
 * Reject impossible banked-DRAM geometry/timing with a knob-named
 * ConfigError ("config.dram.<knob>"): zero banks/ranks/channels, a
 * row buffer smaller than a line or not a power of two, a burst of 0
 * bytes or 0 cycles, zero tRCD/tCAS/tRP, tRAS < tRCD + tCAS,
 * inverted write watermarks, and refresh stalls at least as long as
 * the refresh interval. Called from SystemConfig::validate()
 * regardless of the selected backend (the knobs must always be
 * arm-able).
 */
void validateDramParams(const DramTimingParams &p);

} // namespace cmpsim

#endif // CMPSIM_DRAM_DRAM_PARAMS_H
