/**
 * @file
 * Event-driven banked DRAM backend (DESIGN.md §10).
 *
 * Requests arriving off the pin link are decoded to (channel, bank,
 * row) — column bits lowest, so the consecutive lines a stride
 * prefetcher fetches land in the same row — and queued per channel.
 * Each channel schedules one access at a time:
 *
 *  - FR-FCFS: among arrived requests, open-row hits first, demand
 *    before prefetch within each class, age as the tie-break (the
 *    classic first-ready, first-come-first-served policy plus the
 *    demand-over-prefetch priority every real controller applies).
 *    DramSched::Fcfs degrades this to strict arrival order for
 *    ablation.
 *  - Row-buffer state: an access to the open row pays tCAS only; to
 *    an idle (precharged) bank tRCD + tCAS; to a bank holding a
 *    different row tRP + tRCD + tCAS, with the precharge gated on
 *    tRAS since that row's activation. Closed-page mode auto-
 *    precharges after every access.
 *  - Compression-aware transfers: a request for S stored segments
 *    needs ceil(S * 8 / burst_bytes) column accesses, each occupying
 *    the channel data bus for burst_cycles — link compression
 *    (which also shrinks the stored form, the paper's ECC meta-bit
 *    trick) therefore shortens the DRAM burst, not just the pin
 *    message.
 *  - Write queue: writebacks buffer per channel and drain when the
 *    queue reaches its high watermark (until the low watermark),
 *    stealing read slots exactly when real controllers do; an idle
 *    channel also drains writes opportunistically.
 *  - Refresh: every refresh_interval cycles the channel stalls for
 *    refresh_cycles and closes every row. Refresh periods that
 *    elapse entirely while the channel has no work are skipped, not
 *    charged retroactively.
 *
 * Deliberate simplification (documented for model-fidelity reviews):
 * a channel serializes whole accesses — bank preparation (activate /
 * precharge) of the *next* request does not overlap the current data
 * burst, so per-channel bank-level parallelism is not modeled;
 * parallelism comes from multiple channels. Row-hit latency savings,
 * FR-FCFS reordering, bank-conflict penalties, burst-length effects
 * and write-drain interference — the effects the paper's memory
 * interactions depend on — are all preserved, and the model stays a
 * pure function of (config, request stream), bit-reproducible under
 * the determinism gate.
 */

#ifndef CMPSIM_DRAM_DRAM_BACKEND_H
#define CMPSIM_DRAM_DRAM_BACKEND_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/ckpt/cont_tag.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/dram/dram_params.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

class InvariantRegistry;

/** Channels x ranks x banks DRAM timing model. */
class DramBackend
{
  public:
    using Done = std::function<void(Cycle)>;

    /** Read-service observer: (line, service_start, done_at, row_hit).
     *  Runs when a read is issued to its bank (serial event context);
     *  pure observation for the miss-genealogy journal. */
    using ReadObserver = std::function<void(Addr, Cycle, Cycle, bool)>;

    DramBackend(EventQueue &eq, const DramTimingParams &params);

    /** Wire the read-service observer (empty disarms). */
    void setReadObserver(ReadObserver obs) { read_observer_ = std::move(obs); }

    /**
     * Service a line read of @p segments stored segments arriving at
     * the controller at @p when; @p done runs at the cycle the last
     * data beat leaves the device (plus ctrl_latency). @p done_tag is
     * @p done's serializable description for checkpointing.
     * Fault-injection site: "dram.access".
     */
    void read(Addr line_addr, unsigned segments, bool prefetch,
              Cycle when, Done done, ckpt::Tag done_tag = {});

    /** Queue a line write of @p segments segments arriving at @p when
     *  (no response; drained by watermark or opportunistically). */
    void write(Addr line_addr, unsigned segments, Cycle when);

    // ---- observers (tests, gauges, audits) ----

    /** (channel, bank-within-channel, row, column) of a line. */
    struct Decoded
    {
        unsigned channel;
        unsigned bank;
        std::uint64_t row;
        std::uint64_t column;
    };
    Decoded decode(Addr line_addr) const;

    /** Column accesses needed for @p segments stored segments. */
    unsigned beatsFor(unsigned segments) const;

    std::uint64_t rowHits() const { return row_hits_.value(); }
    std::uint64_t rowMisses() const { return row_misses_.value(); }
    std::uint64_t rowConflicts() const { return row_conflicts_.value(); }
    std::uint64_t refreshes() const { return refreshes_.value(); }
    std::uint64_t readsServiced() const { return reads_serviced_.value(); }
    std::uint64_t writesServiced() const
    {
        return writes_serviced_.value();
    }
    std::uint64_t writeDrains() const { return write_drains_.value(); }

    /** row hits / all row outcomes since the last stats reset
     *  (0 when nothing has been serviced). */
    double rowHitRate() const;

    /** Requests currently sitting in read/write queues (all channels). */
    std::size_t queuedReads() const;
    std::size_t queuedWrites() const;

    const DramTimingParams &params() const { return params_; }

    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** Register the request-conservation audit ("<name>.request_
     *  conservation"): enqueued == serviced + in-flight + queued,
     *  for reads and writes independently. */
    void registerAudits(InvariantRegistry &reg, const std::string &name);

    void resetStats();

  private:
    friend class CheckpointCodec; // serializes channel/bank/queue state

    struct Request
    {
        Addr line;
        std::uint64_t row;
        unsigned bank; ///< within the channel
        unsigned beats;
        bool prefetch;
        Cycle ready;        ///< arrival at the controller
        std::uint64_t seq;  ///< global arrival order
        Done done;          ///< null for writes
        ckpt::Tag tag;      ///< serializable description of done
    };

    struct Bank
    {
        bool row_open = false;
        std::uint64_t open_row = 0;
        Cycle ready = 0;     ///< earliest next command
        Cycle activated = 0; ///< cycle of the open row's activation
        std::uint64_t pending = 0; ///< queued requests targeting this bank
    };

    struct Channel
    {
        std::vector<Bank> banks;
        std::deque<Request> reads;
        std::deque<Request> writes;
        bool busy = false;     ///< an access (or refresh) is in service
        bool draining = false; ///< write-drain mode latched
        Cycle next_refresh = 0;
    };

    /** Schedule-and-service loop for channel @p ci (event-driven,
     *  PriorityLink-style: re-entered when the channel frees or a
     *  request arrives at an idle channel). */
    void pump(unsigned ci);

    /** Pick the next request index from @p q per the scheduling
     *  policy (bank row state read from @p ch); returns false when
     *  nothing has arrived by @p now. */
    bool select(const Channel &ch, const std::deque<Request> &q,
                Cycle now, std::size_t &index) const;

    /** Issue @p r on its bank starting no earlier than @p now;
     *  returns the cycle its last data beat completes. */
    Cycle service(Channel &ch, Request &r, Cycle now);

    /** Kick pump(ci) at max(at, now) unless the channel is busy. */
    void wake(unsigned ci, Cycle at);

    EventQueue &eq_;
    DramTimingParams params_;
    ReadObserver read_observer_;
    std::vector<Channel> channels_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t inflight_reads_ = 0;
    std::uint64_t inflight_writes_ = 0;

    /** Raw lifetime totals for the conservation audit. Deliberately
     *  separate from the registered Counters: resetStats() zeroes
     *  those at measurement start while warmup requests may still be
     *  queued or in flight, which would break the balance. */
    std::uint64_t conserv_reads_in_ = 0;
    std::uint64_t conserv_reads_out_ = 0;
    std::uint64_t conserv_writes_in_ = 0;
    std::uint64_t conserv_writes_out_ = 0;

    Counter reads_enqueued_;
    Counter reads_serviced_;
    Counter writes_enqueued_;
    Counter writes_serviced_;
    Counter row_hits_;
    Counter row_misses_;
    Counter row_conflicts_;
    Counter refreshes_;
    Counter write_drains_;
    Average read_queue_wait_;
    /** Depth of the target bank's pending-request list as each
     *  request arrives: the per-bank queueing the FR-FCFS scheduler
     *  works against (32 buckets of 1). */
    Histogram bank_queue_depth_{1.0, 32};
};

} // namespace cmpsim

#endif // CMPSIM_DRAM_DRAM_BACKEND_H
