/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - internal invariant violated; a cmpsim bug.
 *            Throws InvariantError (src/common/sim_error.h).
 * fatal()  - the user asked for something impossible (bad config).
 *            Throws ConfigError.
 * warn()   - something works, but not as well as it should.
 * inform() - status messages.
 *
 * panic/fatal used to abort()/exit(1); they throw so the experiment
 * layer can contain one failed simulation point without killing a
 * whole batch (DESIGN.md §8). cmpsim_assert() still aborts: a tripped
 * assertion means in-memory state cannot be trusted enough to unwind.
 */

#ifndef CMPSIM_COMMON_LOG_H
#define CMPSIM_COMMON_LOG_H

#include <cstdarg>

namespace cmpsim {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Failed-assertion reporter: prints the condition text plus an
 *  optional printf-formatted context message, then aborts. */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond,
                                 const char *fmt = nullptr, ...)
    __attribute__((format(printf, 4, 5)));

/** Silence warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace cmpsim

#define cmpsim_panic(...) \
    ::cmpsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cmpsim_fatal(...) \
    ::cmpsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cmpsim_warn(...) ::cmpsim::warnImpl(__VA_ARGS__)
#define cmpsim_inform(...) ::cmpsim::informImpl(__VA_ARGS__)

/**
 * Assert a simulator invariant; active in all build types because
 * simulation bugs silently corrupt results.
 *
 * An optional printf-style message adds the offending values to the
 * report, e.g.
 *
 *     cmpsim_assert(when >= now_, "when=%llu now=%llu", when, now_);
 */
#define cmpsim_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::cmpsim::assertFailImpl(__FILE__, __LINE__,                  \
                                     #cond __VA_OPT__(, ) __VA_ARGS__);   \
        }                                                                 \
    } while (0)

#endif // CMPSIM_COMMON_LOG_H
