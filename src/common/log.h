/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - internal invariant violated; a cmpsim bug. Aborts.
 * fatal()  - the user asked for something impossible (bad config). Exits.
 * warn()   - something works, but not as well as it should.
 * inform() - status messages.
 */

#ifndef CMPSIM_COMMON_LOG_H
#define CMPSIM_COMMON_LOG_H

#include <cstdarg>

namespace cmpsim {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Silence warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace cmpsim

#define cmpsim_panic(...) \
    ::cmpsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cmpsim_fatal(...) \
    ::cmpsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cmpsim_warn(...) ::cmpsim::warnImpl(__VA_ARGS__)
#define cmpsim_inform(...) ::cmpsim::informImpl(__VA_ARGS__)

/**
 * Assert a simulator invariant; active in all build types because
 * simulation bugs silently corrupt results.
 */
#define cmpsim_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::cmpsim::panicImpl(__FILE__, __LINE__,                       \
                                "assertion failed: %s", #cond);           \
        }                                                                 \
    } while (0)

#endif // CMPSIM_COMMON_LOG_H
