#include "src/common/stats.h"

#include <cmath>

namespace cmpsim {

void
StatRegistry::registerCounter(const std::string &name, const Counter *c)
{
    cmpsim_assert(c != nullptr);
    auto [it, inserted] = counters_.emplace(name, c);
    (void)it;
    if (!inserted)
        cmpsim_fatal("duplicate counter registration: %s", name.c_str());
}

void
StatRegistry::registerAverage(const std::string &name, const Average *a)
{
    cmpsim_assert(a != nullptr);
    auto [it, inserted] = averages_.emplace(name, a);
    (void)it;
    if (!inserted)
        cmpsim_fatal("duplicate average registration: %s", name.c_str());
}

void
StatRegistry::registerHistogram(const std::string &name,
                                const Histogram *h)
{
    cmpsim_assert(h != nullptr);
    auto [it, inserted] = histograms_.emplace(name, h);
    (void)it;
    if (!inserted)
        cmpsim_fatal("duplicate histogram registration: %s",
                     name.c_str());
}

std::uint64_t
StatRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        cmpsim_fatal("unknown counter: %s", name.c_str());
    return it->second->value();
}

double
StatRegistry::average(const std::string &name) const
{
    auto it = averages_.find(name);
    if (it == averages_.end())
        cmpsim_fatal("unknown average: %s", name.c_str());
    return it->second->mean();
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

const Histogram &
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        cmpsim_fatal("unknown histogram: %s", name.c_str());
    return *it->second;
}

std::vector<std::string>
StatRegistry::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &[name, stat] : histograms_) {
        (void)stat;
        names.push_back(name);
    }
    return names;
}

std::vector<std::string>
StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &[name, stat] : counters_) {
        (void)stat;
        names.push_back(name);
    }
    return names;
}

std::vector<std::string>
StatRegistry::averageNames() const
{
    std::vector<std::string> names;
    names.reserve(averages_.size());
    for (const auto &[name, stat] : averages_) {
        (void)stat;
        names.push_back(name);
    }
    return names;
}

const Average &
StatRegistry::averageStat(const std::string &name) const
{
    auto it = averages_.find(name);
    if (it == averages_.end())
        cmpsim_fatal("unknown average: %s", name.c_str());
    return *it->second;
}

void
StatRegistry::restoreCounter(const std::string &name, std::uint64_t v)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        cmpsim_fatal("unknown counter: %s", name.c_str());
    const_cast<Counter *>(it->second)->restore(v);
}

void
StatRegistry::restoreAverage(const std::string &name, double sum,
                             std::uint64_t count)
{
    auto it = averages_.find(name);
    if (it == averages_.end())
        cmpsim_fatal("unknown average: %s", name.c_str());
    const_cast<Average *>(it->second)->restore(sum, count);
}

void
StatRegistry::restoreHistogram(const std::string &name,
                               const std::vector<std::uint64_t> &counts,
                               std::uint64_t underflow, double sum,
                               std::uint64_t total)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        cmpsim_fatal("unknown histogram: %s", name.c_str());
    const_cast<Histogram *>(it->second)
        ->restore(counts, underflow, sum, total);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : counters_)
        os << name << " " << stat->value() << "\n";
    for (const auto &[name, stat] : averages_)
        os << name << " " << stat->mean() << "\n";
    for (const auto &[name, stat] : histograms_) {
        os << name << ".count " << stat->total() << "\n";
        os << name << ".mean " << stat->mean() << "\n";
        os << name << ".p50 " << stat->quantile(0.50) << "\n";
        os << name << ".p90 " << stat->quantile(0.90) << "\n";
        os << name << ".p99 " << stat->quantile(0.99) << "\n";
        os << name << ".underflow " << stat->underflow() << "\n";
    }
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : counters_) {
        (void)name;
        const_cast<Counter *>(stat)->reset();
    }
    for (auto &[name, stat] : averages_) {
        (void)name;
        const_cast<Average *>(stat)->reset();
    }
    for (auto &[name, stat] : histograms_) {
        (void)name;
        const_cast<Histogram *>(stat)->reset();
    }
}

std::uint64_t
StatSnapshot::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
StatSnapshot::accumulate(const StatSnapshot &delta)
{
    for (const auto &[name, v] : delta.counters)
        counters[name] += v;
    for (const auto &[name, a] : delta.averages) {
        Avg &dst = averages[name];
        dst.sum += a.sum;
        dst.count += a.count;
    }
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot s;
    for (const auto &[name, stat] : counters_)
        s.counters[name] = stat->value();
    for (const auto &[name, stat] : averages_)
        s.averages[name] = {stat->sum(), stat->count()};
    return s;
}

StatSnapshot
StatRegistry::delta(const StatSnapshot &after,
                    const StatSnapshot &before)
{
    StatSnapshot d;
    for (const auto &[name, v] : after.counters) {
        const auto it = before.counters.find(name);
        d.counters[name] =
            v - (it == before.counters.end() ? 0 : it->second);
    }
    for (const auto &[name, a] : after.averages) {
        StatSnapshot::Avg base;
        const auto it = before.averages.find(name);
        if (it != before.averages.end())
            base = it->second;
        d.averages[name] = {a.sum - base.sum, a.count - base.count};
    }
    return d;
}

double
Histogram::quantile(double p) const
{
    cmpsim_assert(p >= 0.0 && p <= 1.0);
    if (total_ == 0)
        return 0.0;
    // Rank of the target sample, 1-based; ceil(p * total) so p = 0.5
    // of 2 samples resolves to the first.
    const double target = p * static_cast<double>(total_);
    std::uint64_t cum = underflow_;
    if (static_cast<double>(cum) >= target && underflow_ > 0)
        return 0.0; // negative samples report as "below 0"
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (static_cast<double>(cum) >= target)
            return width_ * static_cast<double>(i + 1);
    }
    return width_ * static_cast<double>(counts_.size());
}

namespace {

/**
 * Two-sided 97.5% Student-t quantiles for n-1 degrees of freedom,
 * indexed by dof (1-based); beyond the table we use the normal 1.96.
 */
constexpr double kT975[] = {
    0.0,    // dof 0 (unused)
    12.706, // 1
    4.303,  // 2
    3.182,  // 3
    2.776,  // 4
    2.571,  // 5
    2.447,  // 6
    2.365,  // 7
    2.306,  // 8
    2.262,  // 9
    2.228,  // 10
    2.201,  // 11
    2.179,  // 12
    2.160,  // 13
    2.145,  // 14
    2.131,  // 15
};

} // namespace

SampleSummary
summarize(const std::vector<double> &samples)
{
    SampleSummary s;
    s.n = static_cast<unsigned>(samples.size());
    if (s.n == 0)
        return s;

    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / s.n;

    if (s.n < 2)
        return s;

    double ss = 0.0;
    for (double v : samples) {
        const double d = v - s.mean;
        ss += d * d;
    }
    const double stderr_mean = std::sqrt(ss / (s.n - 1)) / std::sqrt(s.n);
    const unsigned dof = s.n - 1;
    const double t =
        dof < sizeof(kT975) / sizeof(kT975[0]) ? kT975[dof] : 1.96;
    s.ci95 = t * stderr_mean;
    return s;
}

} // namespace cmpsim
