#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cmpsim {

namespace {
// Atomic: warn()/inform() may fire from parallel experiment workers
// (src/core_api/parallel_runner.cc) while a test toggles quiet mode.
std::atomic<bool> quiet_mode{false};

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    quiet_mode = quiet;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: assertion failed: %s", file,
                 line, cond);
    if (fmt != nullptr) {
        std::fprintf(stderr, " — ");
        std::va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quiet_mode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (quiet_mode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace cmpsim
