#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/sim_error.h"

namespace cmpsim {

namespace {
// Atomic: warn()/inform() may fire from parallel experiment workers
// (src/core_api/parallel_runner.cc) while a test toggles quiet mode.
std::atomic<bool> quiet_mode{false};

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list copy;
    va_copy(copy, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (len <= 0)
        return {};
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
fileLine(const char *file, int line)
{
    return std::string(file) + ":" + std::to_string(line);
}
} // namespace

void
setQuiet(bool quiet)
{
    quiet_mode = quiet;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    // Throw instead of abort so the experiment layer can contain the
    // failed point (DESIGN.md §8); an uncaught panic still terminates
    // with the message via the default terminate handler.
    throw InvariantError(fileLine(file, line), msg);
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: assertion failed: %s", file,
                 line, cond);
    if (fmt != nullptr) {
        std::fprintf(stderr, " — ");
        std::va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw ConfigError(fileLine(file, line), msg);
}

void
warnImpl(const char *fmt, ...)
{
    if (quiet_mode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (quiet_mode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace cmpsim
