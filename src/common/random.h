/**
 * @file
 * Deterministic, seedable pseudo-random source (xoshiro256**).
 *
 * Every stochastic decision in cmpsim draws from an explicitly threaded
 * Random instance so that a (seed, config) pair fully determines a
 * simulation; the experiment runner varies seeds to measure space
 * variability the way the paper does [Alameldeen & Wood, HPCA 2003].
 */

#ifndef CMPSIM_COMMON_RANDOM_H
#define CMPSIM_COMMON_RANDOM_H

#include <cstdint>

#include "src/common/log.h"

namespace cmpsim {

/** xoshiro256** generator with splitmix64 seeding. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize the full state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        cmpsim_assert(bound > 0);
        // Lemire's multiply-shift rejection-free variant is fine here;
        // the slight modulo bias of 2^64 % bound is irrelevant for
        // simulation workload draws, but we use 128-bit multiply anyway.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        cmpsim_assert(hi >= lo);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Approximately Zipf-distributed rank in [0, n) with exponent
     * @p s, via inverse-CDF on a power-law envelope. Cheap and close
     * enough to model hot/cold data-set skew.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s);

  private:
    friend class CheckpointCodec; // serializes the raw generator state

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace cmpsim

#endif // CMPSIM_COMMON_RANDOM_H
