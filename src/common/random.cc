#include "src/common/random.h"

#include <cmath>

namespace cmpsim {

namespace {

/** Memoized envelope constants of one (n, s) pair. zipf() is called
 *  once per generated memory access but only ever sees a handful of
 *  distinct (n, s) pairs per workload, and the constant pow()/log()
 *  below would otherwise dominate functional-mode throughput.
 *  Caching is bit-exact: the same inputs produce the same double.
 *  thread_local because sharded lanes draw concurrently. */
struct ZipfEnv
{
    std::uint64_t n = 0;
    double s = 0.0;
    double top = 0.0;     ///< n^(1-s)   (s != 1 branch)
    double inv_oms = 0.0; ///< 1 / (1-s) (s != 1 branch)
    double log_n = 0.0;   ///< ln(n)     (s == 1 branch)
};

ZipfEnv &
zipfEnv(std::uint64_t n, double s)
{
    static thread_local ZipfEnv cache[4];
    static thread_local unsigned victim = 0;
    for (ZipfEnv &e : cache) {
        if (e.n == n && e.s == s)
            return e;
    }
    ZipfEnv &e = cache[victim];
    victim = (victim + 1) & 3;
    e.n = n;
    e.s = s;
    if (std::abs(s - 1.0) < 1e-9) {
        e.log_n = std::log(static_cast<double>(n));
    } else {
        const double one_minus_s = 1.0 - s;
        e.top = std::pow(static_cast<double>(n), one_minus_s);
        e.inv_oms = 1.0 / one_minus_s;
    }
    return e;
}

} // namespace

std::uint64_t
Random::zipf(std::uint64_t n, double s)
{
    cmpsim_assert(n > 0);
    if (n == 1)
        return 0;
    if (s <= 0.0)
        return below(n);
    // Inverse-CDF of the continuous power-law envelope
    //   F(x) ~ (x^(1-s) - 1) / (n^(1-s) - 1)  for s != 1,
    //   F(x) ~ ln(x) / ln(n)                  for s == 1.
    const ZipfEnv &env = zipfEnv(n, s);
    const double u = uniform();
    double x;
    if (std::abs(s - 1.0) < 1e-9)
        x = std::exp(u * env.log_n);
    else
        x = std::pow(u * (env.top - 1.0) + 1.0, env.inv_oms);
    auto rank = static_cast<std::uint64_t>(x) - 1;
    return rank >= n ? n - 1 : rank;
}

} // namespace cmpsim
