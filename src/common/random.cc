#include "src/common/random.h"

#include <cmath>

namespace cmpsim {

std::uint64_t
Random::zipf(std::uint64_t n, double s)
{
    cmpsim_assert(n > 0);
    if (n == 1)
        return 0;
    if (s <= 0.0)
        return below(n);
    // Inverse-CDF of the continuous power-law envelope
    //   F(x) ~ (x^(1-s) - 1) / (n^(1-s) - 1)  for s != 1,
    //   F(x) ~ ln(x) / ln(n)                  for s == 1.
    const double u = uniform();
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
        x = std::exp(u * std::log(static_cast<double>(n)));
    } else {
        const double one_minus_s = 1.0 - s;
        const double top = std::pow(static_cast<double>(n), one_minus_s);
        x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
    }
    auto rank = static_cast<std::uint64_t>(x) - 1;
    return rank >= n ? n - 1 : rank;
}

} // namespace cmpsim
