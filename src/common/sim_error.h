/**
 * @file
 * Structured error taxonomy for fault-tolerant experiment execution
 * (DESIGN.md §8).
 *
 * Every failure the simulator can raise carries a kind (what class of
 * thing went wrong), a context (the site that detected it, e.g.
 * "l2.fill" or "config.cores") and a message. The experiment layer
 * uses the kind to decide containment policy: configuration and
 * invariant errors are deterministic and never retried, while
 * injected faults and watchdog timeouts are treated as transient.
 *
 * The legacy cmpsim_fatal()/cmpsim_panic() reporters throw
 * ConfigError/InvariantError respectively (src/common/log.cc), so a
 * single bad point in a parallel batch unwinds its own simulation
 * instead of killing the process. cmpsim_assert() still aborts: a
 * tripped assertion means in-memory state is untrustworthy.
 */

#ifndef CMPSIM_COMMON_SIM_ERROR_H
#define CMPSIM_COMMON_SIM_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cmpsim {

/** Failure classes, ordered roughly by how deterministic they are. */
enum class ErrorKind
{
    Config,    ///< the user asked for an impossible system
    Workload,  ///< benchmark/trace input missing or malformed
    Invariant, ///< a simulator invariant was violated (a cmpsim bug)
    Watchdog,  ///< no forward progress (livelock) or deadline missed
    Injected,  ///< deliberately injected by the fault harness
    Internal,  ///< wrapped foreign exception / multi-task failure
};

/** Stable lower-case name of @p kind ("config", "watchdog", ...). */
const char *errorKindName(ErrorKind kind);

/** Whether a retry of a failure of @p kind could plausibly succeed
 *  (DESIGN.md §8): injected faults, watchdog expiries and wrapped
 *  foreign exceptions are transient; config/workload/invariant
 *  failures are deterministic and are not retried. */
bool errorKindTransient(ErrorKind kind);

/** Base of the simulator's exception hierarchy. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, std::string context,
             const std::string &message);

    ErrorKind kind() const { return kind_; }

    /** The site that raised the error, e.g. "l2.fill". */
    const std::string &context() const { return context_; }

    /** errorKindTransient(kind()). */
    bool transient() const { return errorKindTransient(kind_); }

  private:
    ErrorKind kind_;
    std::string context_;
};

/** The requested SystemConfig (or environment knob) is impossible. */
class ConfigError : public SimError
{
  public:
    ConfigError(std::string context, const std::string &message);
};

/** A workload input (benchmark name, trace file) is unusable. */
class WorkloadError : public SimError
{
  public:
    WorkloadError(std::string context, const std::string &message);
};

/** A simulator invariant failed — the run's results are untrustworthy. */
class InvariantError : public SimError
{
  public:
    InvariantError(std::string context, const std::string &message);
};

/** The simulation stopped making progress (cycle-based watchdog) or
 *  overran its wall-clock deadline (CMPSIM_POINT_TIMEOUT). */
class WatchdogTimeout : public SimError
{
  public:
    WatchdogTimeout(std::string context, const std::string &message);
};

/** Raised at a named fault site by the injection harness
 *  (CMPSIM_FAULT; src/sim/fault_injection.h). */
class InjectedFault : public SimError
{
  public:
    InjectedFault(std::string site, std::uint64_t nth, unsigned attempt);
};

} // namespace cmpsim

#endif // CMPSIM_COMMON_SIM_ERROR_H
