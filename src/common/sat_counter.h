/**
 * @file
 * Saturating counter, the control element of the paper's adaptive
 * prefetching mechanism (Section 3): one counter per cache scales the
 * number of startup prefetches per stream and disables prefetching
 * entirely at zero.
 */

#ifndef CMPSIM_COMMON_SAT_COUNTER_H
#define CMPSIM_COMMON_SAT_COUNTER_H

#include "src/common/log.h"

namespace cmpsim {

/** Integer counter clamped to [0, max]; starts at max per the paper. */
class SatCounter
{
  public:
    explicit SatCounter(unsigned max_value)
        : value_(max_value), max_(max_value)
    {
        cmpsim_assert(max_value > 0);
    }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

    bool atMax() const { return value_ == max_; }
    bool atZero() const { return value_ == 0; }

    /** Increment by one, saturating at max. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement by one, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to the maximum (the paper's initial state). */
    void reset() { value_ = max_; }

  private:
    friend class CheckpointCodec; // restores the counter value

    unsigned value_;
    unsigned max_;
};

} // namespace cmpsim

#endif // CMPSIM_COMMON_SAT_COUNTER_H
