/**
 * @file
 * Stable, dependency-free fingerprinting for reproducibility gates.
 *
 * FNV-1a over a byte string: used by tools/determinism_check and the
 * parallel-runner determinism tests to compare runs by hash instead
 * of diffing full stat dumps. Not cryptographic — collisions are
 * astronomically unlikely for the handful of comparisons made here,
 * and a stable 64-bit value prints compactly in failure messages.
 */

#ifndef CMPSIM_COMMON_FINGERPRINT_H
#define CMPSIM_COMMON_FINGERPRINT_H

#include <cstdint>
#include <string>

namespace cmpsim {

/** FNV-1a over @p bytes. */
inline std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace cmpsim

#endif // CMPSIM_COMMON_FINGERPRINT_H
