#include "src/common/sim_error.h"

namespace cmpsim {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config:
        return "config";
      case ErrorKind::Workload:
        return "workload";
      case ErrorKind::Invariant:
        return "invariant";
      case ErrorKind::Watchdog:
        return "watchdog";
      case ErrorKind::Injected:
        return "injected";
      case ErrorKind::Internal:
        return "internal";
    }
    return "unknown";
}

namespace {

std::string
compose(ErrorKind kind, const std::string &context,
        const std::string &message)
{
    std::string out = "[";
    out += errorKindName(kind);
    out += "] ";
    out += context;
    out += ": ";
    out += message;
    return out;
}

} // namespace

SimError::SimError(ErrorKind kind, std::string context,
                   const std::string &message)
    : std::runtime_error(compose(kind, context, message)),
      kind_(kind), context_(std::move(context))
{
}

bool
errorKindTransient(ErrorKind kind)
{
    return kind == ErrorKind::Injected || kind == ErrorKind::Watchdog ||
           kind == ErrorKind::Internal;
}

ConfigError::ConfigError(std::string context, const std::string &message)
    : SimError(ErrorKind::Config, std::move(context), message)
{
}

WorkloadError::WorkloadError(std::string context,
                             const std::string &message)
    : SimError(ErrorKind::Workload, std::move(context), message)
{
}

InvariantError::InvariantError(std::string context,
                               const std::string &message)
    : SimError(ErrorKind::Invariant, std::move(context), message)
{
}

WatchdogTimeout::WatchdogTimeout(std::string context,
                                 const std::string &message)
    : SimError(ErrorKind::Watchdog, std::move(context), message)
{
}

InjectedFault::InjectedFault(std::string site, std::uint64_t nth,
                             unsigned attempt)
    : SimError(ErrorKind::Injected, std::move(site),
               "injected fault at occurrence " + std::to_string(nth) +
                   " (attempt " + std::to_string(attempt) + ")")
{
}

} // namespace cmpsim
