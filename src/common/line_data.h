/**
 * @file
 * The value contents of one 64-byte cache line, with word/halfword
 * accessors used by the compressors and the workload value generators.
 */

#ifndef CMPSIM_COMMON_LINE_DATA_H
#define CMPSIM_COMMON_LINE_DATA_H

#include <array>
#include <cstdint>
#include <cstring>

#include "src/common/types.h"

namespace cmpsim {

/** Raw bytes of one cache line. */
using LineData = std::array<std::uint8_t, kLineBytes>;

/** Read the @p i-th little-endian 32-bit word of @p line. */
inline std::uint32_t
lineWord(const LineData &line, unsigned i)
{
    std::uint32_t w;
    std::memcpy(&w, line.data() + i * 4, 4);
    return w;
}

/** Write the @p i-th little-endian 32-bit word of @p line. */
inline void
setLineWord(LineData &line, unsigned i, std::uint32_t w)
{
    std::memcpy(line.data() + i * 4, &w, 4);
}

/** Read the @p i-th little-endian 64-bit word of @p line. */
inline std::uint64_t
lineQword(const LineData &line, unsigned i)
{
    std::uint64_t w;
    std::memcpy(&w, line.data() + i * 8, 8);
    return w;
}

/** Write the @p i-th little-endian 64-bit word of @p line. */
inline void
setLineQword(LineData &line, unsigned i, std::uint64_t w)
{
    std::memcpy(line.data() + i * 8, &w, 8);
}

/** An all-zero line. */
inline LineData
zeroLine()
{
    LineData d{};
    return d;
}

} // namespace cmpsim

#endif // CMPSIM_COMMON_LINE_DATA_H
