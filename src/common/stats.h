/**
 * @file
 * Lightweight statistics package: counters, averages and histograms that
 * components register with a StatRegistry for end-of-run dumping, plus
 * the sample-summary (mean / 95% confidence interval) helpers the
 * experiment runner uses to report multi-seed results the way the paper
 * does.
 */

#ifndef CMPSIM_COMMON_STATS_H
#define CMPSIM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/log.h"

namespace cmpsim {

/** A monotonically growing event count. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t n)
    {
        value_ += n;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Overwrite the count (checkpoint restore). */
    void restore(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Sum/count pair for mean-of-samples stats (e.g., average latency). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    /** Overwrite sum and count (checkpoint restore). */
    void
    restore(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-width-bucket histogram with overflow bucket (last bucket) and
 * a dedicated underflow bucket for negative samples, so a negative
 * latency (always a bug somewhere) is visible instead of being
 * silently folded into bucket 0.
 */
class Histogram
{
  public:
    /** @param bucket_width width of each bucket; @param buckets count. */
    Histogram(double bucket_width, unsigned buckets)
        : width_(bucket_width), counts_(buckets + 1, 0)
    {
        cmpsim_assert(bucket_width > 0 && buckets > 0);
    }

    void
    sample(double v)
    {
        if (v < 0) {
            ++underflow_;
        } else {
            auto idx = static_cast<unsigned>(v / width_);
            if (idx >= counts_.size())
                idx = static_cast<unsigned>(counts_.size()) - 1;
            ++counts_[idx];
        }
        sum_ += v;
        ++total_;
    }

    std::uint64_t bucket(unsigned i) const { return counts_.at(i); }
    unsigned buckets() const { return static_cast<unsigned>(counts_.size()); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t total() const { return total_; }
    double bucketWidth() const { return width_; }

    double
    mean() const
    {
        return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
    }

    /**
     * Value below which fraction @p p (0..1) of the samples fall,
     * resolved to the upper edge of the containing bucket (0 for the
     * underflow bucket, +"inf" is clamped to the overflow bucket's
     * lower edge + width). 0 when empty.
     */
    double quantile(double p) const;

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        underflow_ = 0;
        sum_ = 0.0;
        total_ = 0;
    }

    /**
     * Overwrite the full sample record (checkpoint restore). The
     * bucket layout (width, count) is configuration, not state, so
     * @p counts must match the constructed size.
     */
    void
    restore(const std::vector<std::uint64_t> &counts,
            std::uint64_t underflow, double sum, std::uint64_t total)
    {
        cmpsim_assert(counts.size() == counts_.size());
        counts_ = counts;
        underflow_ = underflow;
        sum_ = sum;
        total_ = total;
    }

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    double sum_ = 0.0;
    std::uint64_t total_ = 0;
};

/**
 * Value snapshot of every registered counter and average, keyed by
 * name (DESIGN.md §14). The statistical sampling engine captures one
 * at each detailed-interval boundary and differences consecutive
 * snapshots to get per-interval metric deltas; histograms are
 * excluded (interval metrics are means and rates, and bucket arrays
 * would bloat every interval-boundary checkpoint).
 */
struct StatSnapshot
{
    /** Sum/count pair of one Average at snapshot time. */
    struct Avg
    {
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Avg> averages;

    /** Counter value, 0 when absent (a stat registered mid-plan). */
    std::uint64_t counter(const std::string &name) const;

    /** Add @p delta into this snapshot (accumulating interval deltas
     *  into a running total). */
    void accumulate(const StatSnapshot &delta);
};

/**
 * Name -> stat-pointer registry. Components register their counters
 * under a hierarchical dotted prefix ("l2.misses"); the registry can
 * dump everything or resolve one value for tests and benches.
 *
 * The registry does not own the stats; registrants must outlive it or
 * call nothing after destruction (the usual pattern is that the System
 * owns both the components and the registry).
 */
class StatRegistry
{
  public:
    void registerCounter(const std::string &name, const Counter *c);
    void registerAverage(const std::string &name, const Average *a);
    void registerHistogram(const std::string &name, const Histogram *h);

    /** Value of a registered counter. Fatal if absent. */
    std::uint64_t counter(const std::string &name) const;

    /** Mean of a registered average. Fatal if absent. */
    double average(const std::string &name) const;

    bool hasCounter(const std::string &name) const;

    /** A registered histogram. Fatal if absent. */
    const Histogram &histogram(const std::string &name) const;

    /** All registered histogram names, sorted. */
    std::vector<std::string> histogramNames() const;

    /** All registered counter names, sorted. */
    std::vector<std::string> counterNames() const;

    /** All registered average names, sorted. */
    std::vector<std::string> averageNames() const;

    /** Sum/count of a registered average (checkpoint save). */
    const Average &averageStat(const std::string &name) const;

    // ---- checkpoint restore (same const_cast idiom as resetAll:
    // the registry holds const views of stats its owner mutates) ----

    /** Overwrite a registered counter. Fatal if absent. */
    void restoreCounter(const std::string &name, std::uint64_t v);

    /** Overwrite a registered average. Fatal if absent. */
    void restoreAverage(const std::string &name, double sum,
                        std::uint64_t count);

    /** Overwrite a registered histogram. Fatal if absent (the bucket
     *  layout must match; see Histogram::restore). */
    void restoreHistogram(const std::string &name,
                          const std::vector<std::uint64_t> &counts,
                          std::uint64_t underflow, double sum,
                          std::uint64_t total);

    /** Dump "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Reset every registered stat to zero (start of measurement). */
    void resetAll();

    // ---- interval sampling (DESIGN.md §14) ----

    /** Capture every registered counter and average by value. */
    StatSnapshot snapshot() const;

    /**
     * Per-name difference @p after - @p before: counter deltas and
     * average sum/count deltas. Names absent from @p before (stats
     * registered between snapshots) count from zero; names absent
     * from @p after are dropped.
     */
    static StatSnapshot delta(const StatSnapshot &after,
                              const StatSnapshot &before);

  private:
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Average *> averages_;
    std::map<std::string, const Histogram *> histograms_;
};

/** Summary of repeated-trial samples: mean and 95% CI half-width. */
struct SampleSummary
{
    double mean = 0.0;
    double ci95 = 0.0; ///< half-width; 0 when fewer than 2 samples
    unsigned n = 0;
};

/** Student-t based summary of @p samples (the paper's methodology). */
SampleSummary summarize(const std::vector<double> &samples);

} // namespace cmpsim

#endif // CMPSIM_COMMON_STATS_H
