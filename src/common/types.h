/**
 * @file
 * Fundamental scalar types and line-geometry constants shared by every
 * cmpsim module.
 */

#ifndef CMPSIM_COMMON_TYPES_H
#define CMPSIM_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace cmpsim {

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle (5 GHz core clock unless stated otherwise). */
using Cycle = std::uint64_t;

/** Sentinel for "no cycle scheduled / never". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for "no address". */
inline constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Cache line size in bytes; fixed at 64 throughout the paper. */
inline constexpr unsigned kLineBytes = 64;

/** log2(kLineBytes). */
inline constexpr unsigned kLineShift = 6;

/** Compression segment size in bytes (one off-chip flit payload). */
inline constexpr unsigned kSegmentBytes = 8;

/** Number of 8-byte segments in an uncompressed line. */
inline constexpr unsigned kSegmentsPerLine = kLineBytes / kSegmentBytes;

/** Number of 32-bit words in a cache line (FPC compresses word-wise). */
inline constexpr unsigned kWordsPerLine = kLineBytes / 4;

/** Off-chip message header size in bytes (address + length + meta). */
inline constexpr unsigned kMessageHeaderBytes = 8;

/** Return the line-aligned address containing @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Return the line number (address >> log2(line size)). */
constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

/** Byte offset of @p a within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (kLineBytes - 1));
}

} // namespace cmpsim

#endif // CMPSIM_COMMON_TYPES_H
