/**
 * @file
 * Parameter sets for the paper's eight workloads (Table 2), expressed
 * as synthetic models. Each comment records the paper-measured
 * properties the parameters were calibrated against: compression
 * ratio (Table 3 / Section 4.2), prefetcher behaviour (Table 4), and
 * bandwidth demand (Figure 4). EXPERIMENTS.md holds the resulting
 * paper-vs-measured comparison.
 */

#include "src/workload/workload_params.h"

#include "src/common/log.h"
#include "src/common/sim_error.h"

namespace cmpsim {

namespace {

/**
 * apache: static web serving, OS/network heavy. Paper: large
 * instruction footprint (L1I pf rate 4.9/1k), moderate stream quality
 * (L2 coverage 37.7% @ 57.9% accuracy), compression ratio high
 * (commercial 1.36-1.8 band), bandwidth demand 8.8 GB/s, compression
 * cuts misses ~23%.
 */
WorkloadParams
apacheParams()
{
    WorkloadParams p;
    p.name = "apache";
    p.load_frac = 0.24;
    p.store_frac = 0.12;
    p.branch_frac = 0.17;
    p.mispredict_rate = 0.06;
    p.branch_far_frac = 0.30;
    p.i_footprint = 640 * 1024;
    p.ws_private = 96 * 1024;
    p.ws_shared = 1024 * 1024;
    p.shared_frac = 0.09;
    p.hot_frac = 0.85;
    p.ws_hot = 32 * 1024;
    p.ws_stream = 4096 * 1024;
    p.stride_frac = 0.30;
    p.stream_count = 4;
    p.stream_len_min = 10;
    p.stream_len_max = 56;
    p.stride_bytes = {8, 8, 16, -8, 64, 128};
    p.stream_reuse = 0.86;
    p.zipf_s = 0.9;
    p.loop_frac = 0.22;
    p.loops = {{96 * 1024, 56}, {224 * 1024, 36}, {4096 * 1024, 6}};
    p.values = {/*zero=*/0.32, /*small_int=*/0.22,
                /*repeated_byte=*/0.05, /*pointer_pair=*/0.12};
    p.stream_chain = 0.7;
    return p;
}

/**
 * zeus: event-driven web server, same data set as apache. Paper: L1I
 * pf rate 7.1, better L1D streams (17.7% @ 79.2%), L2 44.4% @ 56%,
 * prefetching alone +21%, compression +9.7%.
 */
WorkloadParams
zeusParams()
{
    WorkloadParams p;
    p.name = "zeus";
    p.load_frac = 0.25;
    p.store_frac = 0.11;
    p.branch_frac = 0.16;
    p.mispredict_rate = 0.055;
    p.branch_far_frac = 0.28;
    p.i_footprint = 448 * 1024;
    p.ws_private = 96 * 1024;
    p.ws_shared = 768 * 1024;
    p.shared_frac = 0.08;
    p.hot_frac = 0.85;
    p.ws_hot = 32 * 1024;
    p.ws_stream = 4096 * 1024;
    p.stride_frac = 0.34;
    p.stream_count = 4;
    p.stream_len_min = 24;
    p.stream_len_max = 96;
    p.stride_bytes = {8, 8, 8, 16, 64, -8};
    p.stream_reuse = 0.85;
    p.zipf_s = 0.9;
    p.loop_frac = 0.16;
    p.loops = {{112 * 1024, 70}, {144 * 1024, 28}, {3072 * 1024, 2}};
    p.values = {0.31, 0.20, 0.05, 0.12};
    p.stream_chain = 0.9;
    return p;
}

/**
 * oltp: TPC-C on DB2. Paper: the largest instruction footprint (L1I
 * pf rate 13.5/1k), poor stream quality (L2 26.4% @ 41.5%), the best
 * compression ratio (~1.8 -> 7.2 MB effective), bandwidth demand only
 * 5 GB/s, prefetching alone useless (+0.3%).
 */
WorkloadParams
oltpParams()
{
    WorkloadParams p;
    p.name = "oltp";
    p.load_frac = 0.24;
    p.store_frac = 0.13;
    p.branch_frac = 0.18;
    p.mispredict_rate = 0.07;
    p.branch_far_frac = 0.35;
    p.i_footprint = 1024 * 1024;
    p.ws_private = 96 * 1024;
    p.ws_shared = 1536 * 1024;
    p.shared_frac = 0.12;
    p.hot_frac = 0.85;
    p.ws_hot = 32 * 1024;
    p.ws_stream = 2048 * 1024;
    p.stride_frac = 0.14;
    p.stream_count = 4;
    p.stream_len_min = 5;
    p.stream_len_max = 24;
    p.stride_bytes = {8, 8, 16, 64, -8, 192};
    p.stream_reuse = 0.88;
    p.zipf_s = 0.9;
    p.loop_frac = 0.18;
    p.loops = {{96 * 1024, 74}, {200 * 1024, 16}, {3072 * 1024, 10}};
    p.values = {0.40, 0.26, 0.06, 0.10};
    p.stream_chain = 0.5;
    return p;
}

/**
 * jbb: SPECjbb2000 on a JVM. Paper: small-ish code (L1I pf rate 1.8),
 * short chaotic streams with the worst L2 accuracy (32.4%) — the
 * workload non-adaptive prefetching *hurts* by 25% — and a working
 * set near cache capacity so pollution matters; compression ratio at
 * the bottom of the commercial band (~1.36).
 */
WorkloadParams
jbbParams()
{
    WorkloadParams p;
    p.name = "jbb";
    p.load_frac = 0.26;
    p.store_frac = 0.14;
    p.branch_frac = 0.16;
    p.mispredict_rate = 0.05;
    p.branch_far_frac = 0.18;
    p.i_footprint = 192 * 1024;
    p.ws_private = 128 * 1024;
    p.ws_shared = 768 * 1024;
    p.shared_frac = 0.06;
    p.hot_frac = 0.85;
    p.ws_hot = 32 * 1024;
    p.ws_stream = 4096 * 1024;
    p.stride_frac = 0.34;
    p.stream_count = 6;
    p.stream_len_min = 5;
    p.stream_len_max = 9;
    p.stride_bytes = {8, 16, -8, 24, 64, 128};
    p.stream_reuse = 0.75;
    p.zipf_s = 0.9;
    p.loop_frac = 0.18;
    p.loops = {{112 * 1024, 66}, {176 * 1024, 10}, {2048 * 1024, 24}};
    p.values = {0.26, 0.18, 0.04, 0.14};
    p.stream_chain = 0.5;
    return p;
}

/**
 * art: neural-network simulation (SPEComp). Paper: negligible code
 * misses, extreme L1D prefetch rate (56.3/1k) from dense array
 * streaming, L2 56% @ 85%, compression ratio low (FP data), bandwidth
 * 7.6 GB/s.
 */
WorkloadParams
artParams()
{
    WorkloadParams p;
    p.name = "art";
    p.load_frac = 0.34;
    p.store_frac = 0.08;
    p.branch_frac = 0.09;
    p.mispredict_rate = 0.02;
    p.branch_far_frac = 0.05;
    p.i_footprint = 8 * 1024;
    p.ws_private = 64 * 1024;
    p.ws_shared = 128 * 1024;
    p.shared_frac = 0.02;
    p.hot_frac = 0.6;
    p.ws_hot = 16 * 1024;
    p.ws_stream = 420 * 1024;
    p.stride_frac = 0.80;
    p.stream_count = 4;
    p.stream_len_min = 64;
    p.stream_len_max = 256;
    p.stride_bytes = {4, 4, 4, 8};
    p.stream_reuse = 0.85;
    p.zipf_s = 0.6;
    p.loop_frac = 0.06;
    p.loops = {{64 * 1024, 72}, {128 * 1024, 22}, {768 * 1024, 6}};
    p.values = {0.34, 0.05, 0.01, 0.00};
    return p;
}

/**
 * apsi: meteorology (SPEComp). Paper: essentially incompressible
 * (ratio 1.01), near-perfect prefetching (L2 95.8% @ 97.6%).
 */
WorkloadParams
apsiParams()
{
    WorkloadParams p;
    p.name = "apsi";
    p.load_frac = 0.32;
    p.store_frac = 0.10;
    p.branch_frac = 0.07;
    p.mispredict_rate = 0.015;
    p.branch_far_frac = 0.04;
    p.i_footprint = 8 * 1024;
    p.ws_private = 256 * 1024;
    p.ws_shared = 128 * 1024;
    p.shared_frac = 0.02;
    p.hot_frac = 0.7;
    p.ws_hot = 16 * 1024;
    p.ws_stream = 16384 * 1024;
    p.stride_frac = 0.5;
    p.stream_count = 3;
    p.stream_len_min = 256;
    p.stream_len_max = 1024;
    p.stride_bytes = {4, 4, 4, -4};
    p.stream_reuse = 0.35;
    p.zipf_s = 0.6;
    p.loop_frac = 0.0;
    p.values = {0.05, 0.005, 0.0, 0.0};
    return p;
}

/**
 * fma3d: crash simulation (SPEComp). Paper: the bandwidth-bound
 * workload (27.7 GB/s demand vs 20 available), large working set
 * (misses unchanged by compression despite ratio 1.19), link
 * compression alone buys +23%.
 */
WorkloadParams
fma3dParams()
{
    WorkloadParams p;
    p.name = "fma3d";
    p.load_frac = 0.33;
    p.store_frac = 0.12;
    p.branch_frac = 0.08;
    p.mispredict_rate = 0.02;
    p.branch_far_frac = 0.05;
    p.i_footprint = 12 * 1024;
    p.ws_private = 512 * 1024;
    p.ws_shared = 512 * 1024;
    p.shared_frac = 0.03;
    p.hot_frac = 0.6;
    p.ws_hot = 16 * 1024;
    p.ws_stream = 24576 * 1024;
    p.stride_frac = 0.3;
    p.stream_count = 5;
    p.stream_len_min = 40;
    p.stream_len_max = 160;
    p.stride_bytes = {4, 4, -4};
    p.stream_reuse = 0.15;
    p.zipf_s = 0.5;
    p.loop_frac = 0.04;
    p.loops = {{6144 * 1024, 100}};
    p.values = {0.29, 0.03, 0.01, 0.00};
    return p;
}

/**
 * mgrid: multigrid solver (SPEComp). Paper: the best L1D prefetching
 * (80.2% coverage @ 94.2%), L2 89.9% @ 81.9%, prefetching alone +19%,
 * low compressibility.
 */
WorkloadParams
mgridParams()
{
    WorkloadParams p;
    p.name = "mgrid";
    p.load_frac = 0.35;
    p.store_frac = 0.09;
    p.branch_frac = 0.06;
    p.mispredict_rate = 0.01;
    p.branch_far_frac = 0.03;
    p.i_footprint = 8 * 1024;
    p.ws_private = 256 * 1024;
    p.ws_shared = 256 * 1024;
    p.shared_frac = 0.02;
    p.hot_frac = 0.7;
    p.ws_hot = 16 * 1024;
    p.ws_stream = 8192 * 1024;
    p.stride_frac = 0.5;
    p.stream_count = 4;
    p.stream_len_min = 192;
    p.stream_len_max = 768;
    p.stride_bytes = {4, 4, 4, 8, 128};
    p.stream_reuse = 0.6;
    p.zipf_s = 0.6;
    p.loop_frac = 0.0;
    p.values = {0.27, 0.02, 0.01, 0.00};
    return p;
}

const std::vector<std::string> kNames = {
    "apache", "zeus", "oltp", "jbb", "art", "apsi", "fma3d", "mgrid",
};

} // namespace

WorkloadParams
benchmarkParams(const std::string &name)
{
    if (name == "apache")
        return apacheParams();
    if (name == "zeus")
        return zeusParams();
    if (name == "oltp")
        return oltpParams();
    if (name == "jbb")
        return jbbParams();
    if (name == "art")
        return artParams();
    if (name == "apsi")
        return apsiParams();
    if (name == "fma3d")
        return fma3dParams();
    if (name == "mgrid")
        return mgridParams();
    throw WorkloadError("benchmark", "unknown benchmark: " + name);
}

const std::vector<std::string> &
benchmarkNames()
{
    return kNames;
}

bool
isCommercial(const std::string &name)
{
    return name == "apache" || name == "zeus" || name == "oltp" ||
           name == "jbb";
}

} // namespace cmpsim
