#include "src/workload/trace.h"

#include <cstring>
#include <memory>
#include <string>

#include "src/common/log.h"
#include "src/common/sim_error.h"

namespace cmpsim {

namespace {

constexpr char kMagic[8] = {'C', 'M', 'P', 'S', 'I', 'M', 'T', '1'};

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU64(std::FILE *f, std::uint64_t v)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(buf, 1, 8, f) != 8)
        throw WorkloadError("trace.write", "trace write failed");
}

void
putU32(std::FILE *f, std::uint32_t v)
{
    unsigned char buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(buf, 1, 4, f) != 4)
        throw WorkloadError("trace.write", "trace write failed");
}

std::uint64_t
getU64(std::FILE *f, const char *path)
{
    unsigned char buf[8];
    if (std::fread(buf, 1, 8, f) != 8)
        throw WorkloadError("trace.read",
                            std::string("truncated trace file: ") +
                                path);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | buf[i];
    return v;
}

std::uint32_t
getU32(std::FILE *f, const char *path)
{
    unsigned char buf[4];
    if (std::fread(buf, 1, 4, f) != 4)
        throw WorkloadError("trace.read",
                            std::string("truncated trace file: ") +
                                path);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | buf[i];
    return v;
}

} // namespace

void
TraceWriter::record(InstructionStream &source, std::uint64_t count,
                    const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw WorkloadError("trace.write",
                            "cannot open trace file for writing: " +
                                path);
    if (std::fwrite(kMagic, 1, 8, f.get()) != 8)
        throw WorkloadError("trace.write", "trace write failed");
    putU64(f.get(), count);

    for (std::uint64_t i = 0; i < count; ++i) {
        const Instruction in = source.next();
        const unsigned char kind = static_cast<unsigned char>(
            (static_cast<unsigned>(in.type) & 0x3) |
            (in.mispredict ? 0x4 : 0) | (in.chained ? 0x8 : 0));
        if (std::fwrite(&kind, 1, 1, f.get()) != 1)
            throw WorkloadError("trace.write", "trace write failed");
        putU64(f.get(), in.pc);
        putU64(f.get(), in.addr);
        putU32(f.get(), in.store_value);
    }
}

TraceReader::TraceReader(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw WorkloadError("trace.read", "cannot open trace file: " + path);
    char magic[8];
    if (std::fread(magic, 1, 8, f.get()) != 8 ||
        std::memcmp(magic, kMagic, 8) != 0) {
        throw WorkloadError("trace.read", "not a cmpsim trace: " + path);
    }
    const std::uint64_t count = getU64(f.get(), path.c_str());
    if (count == 0)
        throw WorkloadError("trace.read", "empty trace: " + path);
    instructions_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        unsigned char kind;
        if (std::fread(&kind, 1, 1, f.get()) != 1)
            throw WorkloadError("trace.read",
                                "truncated trace file: " + path);
        Instruction in;
        in.type = static_cast<InstrType>(kind & 0x3);
        in.mispredict = (kind & 0x4) != 0;
        in.chained = (kind & 0x8) != 0;
        in.pc = getU64(f.get(), path.c_str());
        in.addr = getU64(f.get(), path.c_str());
        in.store_value = getU32(f.get(), path.c_str());
        instructions_.push_back(in);
    }
}

TraceReader::TraceReader(std::vector<Instruction> instructions)
    : instructions_(std::move(instructions))
{
    cmpsim_assert(!instructions_.empty());
}

Instruction
TraceReader::next()
{
    const Instruction in = instructions_[pos_];
    if (++pos_ == instructions_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return in;
}

} // namespace cmpsim
