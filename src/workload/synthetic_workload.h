/**
 * @file
 * The synthetic per-core instruction stream: a code walker with
 * far branches over a shared instruction footprint, plus a data side
 * mixing strided streams (with finite lifetimes), Zipf-skewed random
 * accesses over a private working set, and accesses to a shared
 * read-write region that exercise the MSI protocol.
 *
 * Lines are given values from the workload's ValueProfile on first
 * touch, so compression ratios emerge from real FPC runs over real
 * bytes.
 */

#ifndef CMPSIM_WORKLOAD_SYNTHETIC_WORKLOAD_H
#define CMPSIM_WORKLOAD_SYNTHETIC_WORKLOAD_H

#include "src/common/random.h"
#include "src/core/instruction.h"
#include "src/mem/value_store.h"
#include "src/workload/workload_params.h"

namespace cmpsim {

/** Address-space layout shared by all synthetic workloads. */
namespace layout {
inline constexpr Addr kCodeBase = 0x1'0000'0000ULL;
inline constexpr Addr kSharedBase = 0x2'0000'0000ULL;
inline constexpr Addr kPrivateBase = 0x4'0000'0000ULL;
inline constexpr Addr kPrivateStride = 0x0'4000'0000ULL; // per core

/** Simulated OS page size for virtual->physical scattering. */
inline constexpr Addr kPageBytes = 8192;

/**
 * Deterministic, bijective virtual-to-physical page mapping. Without
 * it, every region base would alias onto cache set 0 the way no real
 * physical address stream does; full-system simulators get this
 * scattering for free from OS page allocation. The multiplier is odd,
 * so the mapping is a bijection on page numbers, and it is shared by
 * all cores (the same virtual page must land on the same physical
 * page for sharing and coherence to work).
 */
constexpr Addr
translate(Addr vaddr)
{
    const Addr page = vaddr / kPageBytes;
    // splitmix64 finalizer: bijective on 64-bit page numbers and,
    // unlike a plain multiply, mixes high bits into the low bits that
    // become cache set indices (a multiply preserves structure mod
    // powers of two, which is exactly the aliasing to avoid).
    Addr z = page;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    // Truncate to keep page*size below 2^64. The truncation gives up
    // strict bijectivity; with the few thousand distinct pages a
    // workload touches, the collision probability is ~2^-40.
    const Addr phys_page = z % (1ULL << 51);
    return phys_page * kPageBytes + (vaddr % kPageBytes);
}
} // namespace layout

/** One core's synthetic instruction stream. */
class SyntheticWorkload : public InstructionStream
{
  public:
    /**
     * @param params workload description (already scaled)
     * @param values backing store to populate on first touch
     * @param cpu this core's index (selects the private region)
     * @param seed per-run seed; each core derives its own stream
     */
    SyntheticWorkload(const WorkloadParams &params, ValueStore &values,
                      unsigned cpu, std::uint64_t seed);

    Instruction next() override;

    const WorkloadParams &params() const { return params_; }

    /**
     * Copy the generator cursor (RNG, pc, stream/loop positions,
     * record state) from a lockstep twin — another instance built
     * with the same params/cpu/seed that has advanced further. After
     * the copy this stream produces exactly the instructions the twin
     * would produce next. The follower half of shared-prefix
     * fast-forward (DESIGN.md §14).
     */
    void copyStateFrom(const SyntheticWorkload &other);

  private:
    friend class CheckpointCodec; // serializes RNG + generator cursor

    struct Stream
    {
        Addr cur = 0;
        int stride = 8;
        std::uint64_t remaining = 0; // accesses left
    };

    struct Loop
    {
        Addr base = 0;
        std::vector<std::uint32_t> order; ///< shuffled line visit order
        std::uint64_t pos = 0;
        unsigned on_record = 0; // accesses left on the current line
        double cum_weight = 0;  // cumulative selection threshold
    };

    Addr privateBase() const;

    /** Pick the data address for a load/store. */
    Addr pickDataAddr();

    /** (Re)start stream @p s at a random array position. */
    void resetStream(Stream &s);

    /** Ensure the line holding @p addr has values. */
    void touchLine(Addr addr);

    WorkloadParams params_;
    ValueStore &values_;
    ValueGenerator value_gen_;
    unsigned cpu_;
    Random rng_;

    /** Advance one permuted loop and return the touched address. */
    Addr advanceLoop();

    Addr pc_;
    Addr repeat_line_ = 0;     ///< record being re-touched
    unsigned repeat_left_ = 0; ///< further touches of that record
    bool last_was_loop_ = false; ///< marks chained (pointer) accesses
    std::vector<Stream> streams_;
    std::vector<Addr> recent_bases_; ///< for stream_reuse
    std::vector<Loop> loops_;
};

} // namespace cmpsim

#endif // CMPSIM_WORKLOAD_SYNTHETIC_WORKLOAD_H
