/**
 * @file
 * Instruction-trace capture and replay.
 *
 * The synthetic workloads are generative; for reproducible
 * cross-machine experiments (or to drive cmpsim with traces produced
 * elsewhere) an InstructionStream can be captured to a compact binary
 * file and replayed later. Replay loops at end-of-trace, so a finite
 * trace drives arbitrarily long runs the way the paper's
 * fixed-transaction-count measurements do.
 *
 * File layout (little-endian):
 *   8-byte magic "CMPSIMT1"
 *   u64 instruction count
 *   count records of: u8 kind/flags, u64 pc, u64 addr, u32 value
 * where kind/flags packs InstrType (low 2 bits), mispredict (bit 2)
 * and chained (bit 3).
 */

#ifndef CMPSIM_WORKLOAD_TRACE_H
#define CMPSIM_WORKLOAD_TRACE_H

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/instruction.h"

namespace cmpsim {

/** Capture instructions from a source stream into a trace file. */
class TraceWriter
{
  public:
    /**
     * Record @p count instructions of @p source into @p path.
     * Fatal on I/O errors.
     */
    static void record(InstructionStream &source, std::uint64_t count,
                       const std::string &path);
};

/** Replay a trace file as an InstructionStream (looping). */
class TraceReader : public InstructionStream
{
  public:
    /** Load @p path fully into memory. Fatal on a malformed file. */
    explicit TraceReader(const std::string &path);

    /** In-memory construction (tests, programmatic traces). */
    explicit TraceReader(std::vector<Instruction> instructions);

    Instruction next() override;

    std::uint64_t size() const { return instructions_.size(); }

    /** How many times the trace has wrapped. */
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<Instruction> instructions_;
    std::size_t pos_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_WORKLOAD_TRACE_H
