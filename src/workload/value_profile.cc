#include "src/workload/value_profile.h"

namespace cmpsim {

namespace {

enum class WordClass
{
    Zero,
    SmallInt,
    RepeatedByte,
    PointerPair,
    Raw,
};

WordClass
drawClass(const ValueProfile &p, Random &rng)
{
    double u = rng.uniform();
    if (u < p.zero)
        return WordClass::Zero;
    u -= p.zero;
    if (u < p.small_int)
        return WordClass::SmallInt;
    u -= p.small_int;
    if (u < p.repeated_byte)
        return WordClass::RepeatedByte;
    u -= p.repeated_byte;
    if (u < p.pointer_pair)
        return WordClass::PointerPair;
    return WordClass::Raw;
}

std::uint32_t
smallInt(Random &rng)
{
    if (rng.chance(0.7)) {
        return static_cast<std::uint32_t>(
            static_cast<std::int32_t>(rng.inRange(0, 255)) - 128);
    }
    return static_cast<std::uint32_t>(
        static_cast<std::int32_t>(rng.inRange(0, 65535)) - 32768);
}

std::uint32_t
rawWord(Random &rng)
{
    // Force incompressibility: set a high bit and a low bit so the
    // word fits no sign-extension or padding pattern.
    return (static_cast<std::uint32_t>(rng.next()) | 0x80000001u) &
           ~0x00008000u;
}

} // namespace

std::uint32_t
ValueGenerator::generateWord(Random &rng) const
{
    switch (drawClass(profile_, rng)) {
      case WordClass::Zero:
        return 0;
      case WordClass::SmallInt:
        return smallInt(rng);
      case WordClass::RepeatedByte: {
        const auto b = static_cast<std::uint32_t>(rng.below(256));
        return b * 0x01010101u;
      }
      case WordClass::PointerPair:
      case WordClass::Raw:
        return rawWord(rng);
    }
    return rawWord(rng);
}

LineData
ValueGenerator::generate(Random &rng) const
{
    // Per-word independent draws keep the class fractions exact; FPC
    // still finds zero runs where zeros land adjacently, as they do in
    // real sparsely-initialized structures.
    LineData d{};
    unsigned i = 0;
    while (i < kWordsPerLine) {
        switch (drawClass(profile_, rng)) {
          case WordClass::Zero:
            setLineWord(d, i++, 0);
            break;
          case WordClass::SmallInt:
            setLineWord(d, i++, smallInt(rng));
            break;
          case WordClass::RepeatedByte: {
            const auto b = static_cast<std::uint32_t>(rng.below(256));
            setLineWord(d, i++, b * 0x01010101u);
            break;
          }
          case WordClass::PointerPair:
            // 64-bit heap pointer: raw low word, small high word.
            setLineWord(d, i++, rawWord(rng));
            if (i < kWordsPerLine) {
                setLineWord(d, i++, static_cast<std::uint32_t>(
                                        rng.inRange(1, 0x7fff)));
            }
            break;
          case WordClass::Raw:
            setLineWord(d, i++, rawWord(rng));
            break;
        }
    }
    return d;
}

} // namespace cmpsim
