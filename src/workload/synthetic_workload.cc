#include "src/workload/synthetic_workload.h"

#include "src/sim/fault_injection.h"
#include "src/sim/lane.h"

namespace cmpsim {

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     ValueStore &values, unsigned cpu,
                                     std::uint64_t seed)
    : params_(params), values_(values), value_gen_(params.values),
      cpu_(cpu),
      rng_(seed * 0x9e3779b97f4a7c15ULL + cpu * 0x100000001b3ULL + 1),
      pc_(layout::kCodeBase), streams_(params.stream_count)
{
    faultSite("workload.gen");
    cmpsim_assert(params.load_frac + params.store_frac +
                      params.branch_frac <=
                  1.0);
    cmpsim_assert(!params.stride_bytes.empty());
    cmpsim_assert(params.stream_len_min > 0 &&
                  params.stream_len_min <= params.stream_len_max);
    for (auto &s : streams_)
        resetStream(s);

    // Lay the permuted loops out past the private zipf region.
    Addr loop_base = privateBase() + params_.ws_private;
    loop_base = (loop_base + layout::kPageBytes - 1) &
                ~(layout::kPageBytes - 1);
    double total_weight = 0;
    for (const auto &spec : params_.loops)
        total_weight += spec.weight;
    double cum = 0;
    for (const auto &spec : params_.loops) {
        Loop loop;
        loop.base = loop_base;
        const auto lines =
            std::max<std::uint64_t>(spec.bytes / kLineBytes, 4);
        loop_base += lines * kLineBytes + layout::kPageBytes;
        // A Fisher-Yates shuffle of the visit order: a repeating cycle
        // with the loop's reuse distance but no stride structure at
        // all (a linked structure's pointer order).
        loop.order.resize(lines);
        for (std::uint64_t i = 0; i < lines; ++i)
            loop.order[i] = static_cast<std::uint32_t>(i);
        for (std::uint64_t i = lines - 1; i > 0; --i) {
            const auto j = rng_.below(i + 1);
            std::swap(loop.order[i], loop.order[j]);
        }
        loop.pos = rng_.below(lines);
        cum += spec.weight / total_weight;
        loop.cum_weight = cum;
        loops_.push_back(loop);
    }

    // Cores start at different code offsets (they are different
    // threads of the same program).
    pc_ = layout::kCodeBase +
          (rng_.below(params_.i_footprint / 4) * 4);
}

void
SyntheticWorkload::copyStateFrom(const SyntheticWorkload &other)
{
    cmpsim_assert(cpu_ == other.cpu_);
    cmpsim_assert(loops_.size() == other.loops_.size());
    rng_ = other.rng_;
    pc_ = other.pc_;
    repeat_line_ = other.repeat_line_;
    repeat_left_ = other.repeat_left_;
    last_was_loop_ = other.last_was_loop_;
    streams_ = other.streams_;
    recent_bases_ = other.recent_bases_;
    // Loop layout (base, order, cum_weight) is a pure function of
    // params and seed, identical across twins — only the cursors move.
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        loops_[i].pos = other.loops_[i].pos;
        loops_[i].on_record = other.loops_[i].on_record;
    }
}

Addr
SyntheticWorkload::advanceLoop()
{
    cmpsim_assert(!loops_.empty());
    const double u = rng_.uniform();
    Loop *loop = &loops_.back();
    for (auto &l : loops_) {
        if (u < l.cum_weight) {
            loop = &l;
            break;
        }
    }
    if (loop->on_record == 0) {
        loop->pos = (loop->pos + 1) % loop->order.size();
        loop->on_record = params_.loop_record;
    }
    --loop->on_record;
    return loop->base + loop->order[loop->pos] * kLineBytes +
           rng_.below(kWordsPerLine) * 4;
}

Addr
SyntheticWorkload::privateBase() const
{
    return layout::kPrivateBase + cpu_ * layout::kPrivateStride;
}

void
SyntheticWorkload::touchLine(Addr addr)
{
    LaneMailbox *lane = laneContext();
    if (lane == nullptr) {
        if (!values_.hasLine(addr))
            values_.setLine(addr, value_gen_.generate(rng_));
        return;
    }
    // Parallel lane tick: the value store is shared, so first touches
    // use a lane-local overlay. The overlay keeps this lane's RNG
    // draws identical to the sequential schedule (one generate() per
    // first touch); only a *cross-lane* same-quantum first touch of
    // the same line could diverge, which the deferred apply detects
    // and counts (audited to be zero — see lane.value_overlay).
    const Addr line = lineAddr(addr);
    if (values_.hasLine(addr) || lane->createdThisQuantum(line))
        return;
    lane->noteCreated(line);
    lane->defer([&values = values_, line,
                 data = value_gen_.generate(rng_), lane] {
        if (values.hasLine(line))
            lane->noteCollision();
        else
            values.setLine(line, data);
    });
}

void
SyntheticWorkload::resetStream(Stream &s)
{
    const std::uint64_t region =
        params_.ws_stream > 0 ? params_.ws_stream : params_.ws_private;
    const std::uint64_t ws_lines = region / kLineBytes;
    s.stride = params_.stride_bytes[rng_.below(
        params_.stride_bytes.size())];
    const std::uint64_t len_lines =
        rng_.inRange(params_.stream_len_min, params_.stream_len_max);

    // Accesses needed to traverse len_lines lines at this stride.
    const auto abs_stride =
        static_cast<std::uint64_t>(s.stride < 0 ? -s.stride : s.stride);
    s.remaining = abs_stride >= kLineBytes
                      ? len_lines
                      : len_lines * (kLineBytes / abs_stride);

    // Leave room so the walk stays inside the private region.
    const std::uint64_t span_lines =
        len_lines * (abs_stride >= kLineBytes ? abs_stride / kLineBytes
                                              : 1) +
        2;
    const std::uint64_t max_start =
        ws_lines > span_lines ? ws_lines - span_lines : 1;

    // Re-walk a recently streamed array (a reused buffer) or pick a
    // fresh one.
    // Streams get their own region, placed beyond the loops.
    const Addr stream_base = privateBase() + 0x2000'0000ULL;
    Addr start;
    if (!recent_bases_.empty() && rng_.chance(params_.stream_reuse)) {
        start = recent_bases_[rng_.below(recent_bases_.size())];
    } else {
        start = stream_base + rng_.below(max_start) * kLineBytes;
        recent_bases_.push_back(start);
        if (recent_bases_.size() > 16)
            recent_bases_.erase(recent_bases_.begin());
    }
    if (s.stride < 0)
        start += span_lines * kLineBytes - kLineBytes;
    s.cur = start;
}

Addr
SyntheticWorkload::pickDataAddr()
{
    last_was_loop_ = false;
    // Finish the current record first (multi-word object accesses).
    if (repeat_left_ > 0) {
        --repeat_left_;
        const Addr paddr =
            repeat_line_ + rng_.below(kWordsPerLine) * 4;
        return paddr;
    }

    const double u = rng_.uniform();
    Addr vaddr;
    bool record = false;
    if (u < params_.stride_frac) {
        Stream &s = streams_[rng_.below(streams_.size())];
        if (s.remaining == 0)
            resetStream(s);
        last_was_loop_ = rng_.chance(params_.stream_chain);
        vaddr = s.cur & ~static_cast<Addr>(3);
        s.cur = static_cast<Addr>(static_cast<std::int64_t>(s.cur) +
                                  s.stride);
        --s.remaining;
    } else if (u < params_.stride_frac + params_.shared_frac) {
        const std::uint64_t lines = params_.ws_shared / kLineBytes;
        vaddr = layout::kSharedBase +
                rng_.zipf(lines, params_.zipf_s) * kLineBytes +
                rng_.below(kWordsPerLine) * 4;
        record = true;
    } else if (!loops_.empty() &&
               u < params_.stride_frac + params_.shared_frac +
                       params_.loop_frac) {
        vaddr = advanceLoop();
        last_was_loop_ = true;
    } else if (rng_.chance(params_.hot_frac)) {
        // Hot per-core structures at the front of the private region.
        const std::uint64_t lines = params_.ws_hot / kLineBytes;
        vaddr = privateBase() + rng_.zipf(lines, 0.8) * kLineBytes +
                rng_.below(kWordsPerLine) * 4;
        record = true;
    } else {
        const std::uint64_t lines = params_.ws_private / kLineBytes;
        vaddr = privateBase() +
                rng_.zipf(lines, params_.zipf_s) * kLineBytes +
                rng_.below(kWordsPerLine) * 4;
        record = true;
    }
    const Addr paddr = layout::translate(vaddr);
    touchLine(paddr);
    if (record && params_.record_accesses > 1) {
        repeat_line_ = lineAddr(paddr);
        repeat_left_ = params_.record_accesses - 1;
    }
    return paddr;
}

Instruction
SyntheticWorkload::next()
{
    Instruction in;
    in.pc = layout::translate(pc_);

    Addr next_pc = pc_ + 4;
    const double u = rng_.uniform();
    if (u < params_.branch_frac) {
        in.type = InstrType::Branch;
        in.mispredict = rng_.chance(params_.mispredict_rate);
        if (rng_.chance(params_.branch_far_frac)) {
            // Jump targets are reused (loops, hot functions).
            const std::uint64_t code_lines =
                params_.i_footprint / kLineBytes;
            next_pc = layout::kCodeBase +
                      rng_.zipf(code_lines, params_.code_zipf) *
                          kLineBytes +
                      rng_.below(kLineBytes / 4) * 4;
        }
    } else if (u < params_.branch_frac + params_.load_frac) {
        in.type = InstrType::Load;
        in.addr = pickDataAddr();
        in.chained = last_was_loop_;
    } else if (u <
               params_.branch_frac + params_.load_frac +
                   params_.store_frac) {
        in.type = InstrType::Store;
        in.addr = pickDataAddr();
        in.store_value = value_gen_.generateWord(rng_);
        in.chained = last_was_loop_;
    } else {
        in.type = InstrType::Alu;
    }

    if (next_pc >= layout::kCodeBase + params_.i_footprint)
        next_pc = layout::kCodeBase;
    pc_ = next_pc;
    return in;
}

} // namespace cmpsim
