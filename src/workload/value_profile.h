/**
 * @file
 * Per-workload value profiles: the distribution of 32-bit words that
 * populate a workload's data lines. Compression ratios in cmpsim are
 * *emergent* — FPC runs bit-exact over these values — so each
 * benchmark's profile is calibrated to land near the compressibility
 * the paper reports (Table 3: commercial 1.36-1.8, SPEComp 1.01-1.19).
 *
 * Word classes map onto FPC's patterns:
 *  zero          -> 000 zero runs (the dominant compressible content
 *                   in both commercial and FP data [1])
 *  small_int     -> 4/8/16-bit sign-extended patterns
 *  repeated_byte -> pattern 110
 *  pointer_pair  -> adjacent words forming a 64-bit pointer whose low
 *                   word is raw and high word is small (heap layout)
 *  random        -> incompressible (FP mantissas, hashes, ciphertext)
 */

#ifndef CMPSIM_WORKLOAD_VALUE_PROFILE_H
#define CMPSIM_WORKLOAD_VALUE_PROFILE_H

#include "src/common/line_data.h"
#include "src/common/random.h"

namespace cmpsim {

/** Mixture weights over word classes (need not sum to 1; the
 *  remainder is incompressible random data). */
struct ValueProfile
{
    double zero = 0.25;
    double small_int = 0.25;
    double repeated_byte = 0.05;
    double pointer_pair = 0.10;
    // remainder: raw random words
};

/** Draws line values and store words from a ValueProfile. */
class ValueGenerator
{
  public:
    explicit ValueGenerator(const ValueProfile &profile)
        : profile_(profile)
    {
    }

    /** Generate one full line of values. */
    LineData generate(Random &rng) const;

    /** Generate one store word. */
    std::uint32_t generateWord(Random &rng) const;

    const ValueProfile &profile() const { return profile_; }

  private:
    ValueProfile profile_;
};

} // namespace cmpsim

#endif // CMPSIM_WORKLOAD_VALUE_PROFILE_H
