/**
 * @file
 * Parameter block describing one synthetic workload model. The eight
 * instances in benchmarks.cc stand in for the paper's commercial
 * (apache, zeus, oltp, jbb) and SPEComp (art, apsi, fma3d, mgrid)
 * workloads; see DESIGN.md for the substitution rationale and the
 * calibration targets each parameter encodes.
 */

#ifndef CMPSIM_WORKLOAD_WORKLOAD_PARAMS_H
#define CMPSIM_WORKLOAD_WORKLOAD_PARAMS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/value_profile.h"

namespace cmpsim {

/** Full description of one synthetic workload. */
struct WorkloadParams
{
    std::string name = "synthetic";

    // ---- instruction mix (fractions of dynamic instructions) ----
    double load_frac = 0.25;
    double store_frac = 0.10;
    double branch_frac = 0.15;

    /** Probability a branch is mispredicted (redirect stall). */
    double mispredict_rate = 0.05;

    /** Probability a branch jumps to a random spot in the code. */
    double branch_far_frac = 0.15;

    // ---- code footprint (shared by all cores) ----
    std::uint64_t i_footprint = 256 * 1024;

    // ---- data footprints ----
    /** Private data bytes per core. */
    std::uint64_t ws_private = 512 * 1024;

    /** Shared read-write region bytes. */
    std::uint64_t ws_shared = 512 * 1024;

    /** Fraction of data accesses that hit the shared region. */
    double shared_frac = 0.08;

    // ---- strided streams (what the prefetchers can catch) ----
    /** Fraction of data accesses issued by strided streams. */
    double stride_frac = 0.35;

    /** Fraction of stream accesses that are serially dependent (the
     *  stream walks a linked chain of sequentially allocated buffers,
     *  the common slab layout): strided in address — so prefetchable —
     *  but latency-critical, which is what makes stream coverage pay. */
    double stream_chain = 0.0;

    /** Region the strided streams walk (0 = use ws_private). Sized
     *  larger than the cache, with stream_reuse deciding how often a
     *  walk revisits a recent (cache-resident) array. */
    std::uint64_t ws_stream = 0;

    /** Concurrent streams per core. */
    unsigned stream_count = 4;

    /** Stream lifetime in lines before it re-randomizes. Short
     *  streams are the paper's commercial workloads (startup
     *  prefetches overshoot -> low accuracy); long streams are
     *  SPEComp (high accuracy/coverage). */
    unsigned stream_len_min = 8;
    unsigned stream_len_max = 32;

    /** Per-access element strides in bytes (negative = descending;
     *  |stride| < 64 walks within lines -> unit line stride). */
    std::vector<int> stride_bytes = {8, 8, 8, -8, 64, 128};

    /**
     * Probability that a restarting stream re-walks a recently used
     * array instead of a fresh random one. High for servers that
     * reuse buffers (their streamed data mostly hits the L2); low for
     * scientific sweeps over grids larger than the cache.
     */
    double stream_reuse = 0.5;

    /** Zipf exponent of the random (non-strided) private accesses. */
    double zipf_s = 0.6;

    /**
     * Hot-structure model: fraction of random private accesses that
     * go to a small per-core hot region (stack frames, top-level
     * objects) of ws_hot bytes. This is what gives real workloads
     * their high L1 hit rates independently of the L2-sized working
     * set.
     */
    double hot_frac = 0.0;
    std::uint64_t ws_hot = 8 * 1024;

    /** Zipf exponent of far-branch targets over the code footprint. */
    double code_zipf = 0.8;

    /**
     * Permuted loops: cyclic walks over fixed-size per-core arrays in
     * a shuffled (pseudo-random but repeating) order — the synthetic
     * stand-in for hash-table and pointer-structure traversals. Every
     * access to a loop has reuse distance equal to the loop size, so
     * loops sized just beyond the cache are exactly the "critical
     * working set" misses that cache compression recovers, while
     * staying invisible to a stride prefetcher.
     */
    struct LoopSpec
    {
        std::uint64_t bytes; ///< loop array size (full scale)
        double weight;       ///< relative access weight
    };
    std::vector<LoopSpec> loops;

    /** Fraction of data accesses that advance a permuted loop. */
    double loop_frac = 0.0;

    /** Consecutive accesses to each loop record (line) before moving
     *  to the next one; >1 models multi-word records and gives loops
     *  a realistic L1 hit component. */
    unsigned loop_record = 4;

    /** Same idea for shared/hot/cold random accesses: consecutive
     *  touches of one record before picking a new address. */
    unsigned record_accesses = 4;

    // ---- data values (compressibility) ----
    ValueProfile values;

    /** Divide every footprint by @p scale (tracks the cache scale). */
    WorkloadParams
    scaled(unsigned scale) const
    {
        WorkloadParams p = *this;
        if (scale > 1) {
            p.i_footprint = std::max<std::uint64_t>(
                p.i_footprint / scale, 4 * kLineBytes);
            p.ws_private = std::max<std::uint64_t>(
                p.ws_private / scale, 16 * kLineBytes);
            p.ws_shared = std::max<std::uint64_t>(
                p.ws_shared / scale, 16 * kLineBytes);
            p.ws_hot = std::max<std::uint64_t>(p.ws_hot / scale,
                                               8 * kLineBytes);
            if (p.ws_stream > 0) {
                p.ws_stream = std::max<std::uint64_t>(
                    p.ws_stream / scale, 64 * kLineBytes);
            }
            for (auto &loop : p.loops) {
                loop.bytes = std::max<std::uint64_t>(
                    loop.bytes / scale, 8 * kLineBytes);
            }
        }
        return p;
    }
};

/** The eight paper workloads by name; fatal on unknown names. */
WorkloadParams benchmarkParams(const std::string &name);

/** Names of all eight workloads, commercial first (paper order). */
const std::vector<std::string> &benchmarkNames();

/** True for the four commercial workloads. */
bool isCommercial(const std::string &name);

} // namespace cmpsim

#endif // CMPSIM_WORKLOAD_WORKLOAD_PARAMS_H
