/**
 * @file
 * Request classification shared by the L1 and L2 caches: who initiated
 * a memory request. Demand requests come from executing instructions;
 * the prefetch kinds identify the engine that generated them, which
 * the stat machinery uses for the paper's coverage/accuracy metrics
 * (Table 4).
 */

#ifndef CMPSIM_CACHE_REQUEST_TYPES_H
#define CMPSIM_CACHE_REQUEST_TYPES_H

#include <cstdint>

namespace cmpsim {

/** Originator of a cache request. */
enum class ReqType : std::uint8_t
{
    Demand,     ///< core load/store/ifetch (or an L1 demand miss at L2)
    L1Prefetch, ///< issued by an L1 prefetcher (fills L1 and L2)
    L2Prefetch, ///< issued by an L2 prefetcher (fills L2 only)
};

/** Prefetch-fill attribution stored in the tag. */
enum class PfSource : std::uint8_t
{
    None = 0,
    L1 = 1,
    L2 = 2,
};

} // namespace cmpsim

#endif // CMPSIM_CACHE_REQUEST_TYPES_H
