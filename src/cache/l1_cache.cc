#include "src/cache/l1_cache.h"

#include <algorithm>
#include <utility>

#include "src/audit/audits.h"
#include "src/sim/lane.h"

namespace cmpsim {

L1Cache::L1Cache(EventQueue &eq, L2Cache &l2, unsigned cpu,
                 const L1Params &params)
    : eq_(eq), l2_(l2), cpu_(cpu), params_(params),
      sets_(params.sets,
            DecoupledSet(params.ways + params.victim_tags,
                         params.ways * kSegmentsPerLine))
{
    cmpsim_assert(params.sets > 0 && params.ways > 0);
    cmpsim_assert(params.mshrs > params.prefetch_headroom);
}

unsigned
L1Cache::allowedStartup() const
{
    if (!prefetcher_)
        return 0;
    const unsigned max = prefetcher_->params().startup_prefetches;
    return adaptive_ ? std::min(adaptive_->allowedStartup(), max) : max;
}

bool
L1Cache::canAccept(Addr addr) const
{
    const Addr line = lineAddr(addr);
    return mshrs_.count(line) != 0 || mshrs_.size() < params_.mshrs;
}

void
L1Cache::onPrefetchBitHit(TagEntry &e, Cycle when)
{
    e.prefetch = false;
    e.pf_source = PfSource::None;
    ++pf_hits_;
    if (e.was_compressed)
        ++decomp_avoided_; // L1 prefetch hid an L2 decompression penalty
    if (adaptive_)
        adaptive_->onUsefulPrefetch();
    if (prefetcher_) {
        for (Addr a : prefetcher_->observeUse(e.line, allowedStartup()))
            prefetchLine(a, when);
    }
}

void
L1Cache::access(Addr addr, bool is_write, Cycle when, Done done,
                ckpt::Tag tag)
{
    cmpsim_assert(canAccept(addr));
    const Addr line = lineAddr(addr);
    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);
    ++accesses_;

    if (e != nullptr) {
        if (e->prefetch)
            onPrefetchBitHit(*e, when);
        set.touch(line); // invalidates e
        e = set.find(line);
        if (!is_write || e->dirty) {
            // Plain hit (read, or write to an M line).
            ++hits_;
            scheduleDone(when + params_.hit_latency, std::move(done),
                         std::move(tag));
            return;
        }
        // Write to an S line: upgrade through the directory.
        ++upgrades_;
        demandMiss(line, true, /*upgrade=*/true,
                   when + params_.hit_latency, std::move(done),
                   std::move(tag));
        return;
    }

    ++misses_;

    // Harmful-prefetch probe on the victim tags (Section 3).
    if (adaptive_ && set.victimTagMatch(line) && set.anyValidPrefetch()) {
        ++harmful_miss_flags_;
        adaptive_->onHarmfulPrefetch();
    }

    // Train the stride prefetcher on the demand miss stream.
    if (prefetcher_) {
        for (Addr a : prefetcher_->observeMiss(line, allowedStartup()))
            prefetchLine(a, when);
    }

    demandMiss(line, is_write, /*upgrade=*/false,
               when + params_.hit_latency, std::move(done),
               std::move(tag));
}

void
L1Cache::demandMiss(Addr line, bool is_write, bool upgrade, Cycle when,
                    Done done, ckpt::Tag tag)
{
    (void)upgrade;
    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        Mshr &m = it->second;
        if (m.prefetch_only)
            ++partial_hits_;
        m.prefetch_only = false;
        m.waiters.push_back(
            Waiter{is_write, std::move(done), std::move(tag)});
        return;
    }

    Mshr m;
    m.prefetch_only = false;
    m.requested_exclusive = is_write;
    m.waiters.push_back(
        Waiter{is_write, std::move(done), std::move(tag)});
    mshrs_.emplace(line, std::move(m));

    requestFromL2(line, is_write, ReqType::Demand, when);
}

void
L1Cache::prefetchLine(Addr line, Cycle when)
{
    cmpsim_assert(line == lineAddr(line));
    if (sets_[setIndex(line)].find(line) != nullptr ||
        mshrs_.count(line) != 0) {
        ++pf_squashed_;
        return;
    }
    if (mshrs_.size() + params_.prefetch_headroom >= params_.mshrs) {
        ++pf_dropped_;
        return;
    }
    ++pf_issued_;
    Mshr m;
    m.prefetch_only = true;
    mshrs_.emplace(line, std::move(m));
    requestFromL2(line, false, ReqType::L1Prefetch, when);
}

void
L1Cache::scheduleDone(Cycle at, Done done, ckpt::Tag tag)
{
    if (LaneMailbox *lane = laneContext()) {
        // Parallel lane tick: seq numbers are assigned from the shared
        // counter at the barrier, in canonical core order.
        lane->defer([this, at, done = std::move(done),
                     tag = std::move(tag)]() mutable {
            eq_.schedule(at, [done = std::move(done), at] { done(at); },
                         ckpt::tag(ckpt::kDoneAt, at, 0, 0, 0,
                                   std::move(tag)));
        });
        return;
    }
    ckpt::Tag ev_tag =
        ckpt::tag(ckpt::kDoneAt, at, 0, 0, 0, std::move(tag));
    eq_.schedule(at, [done = std::move(done), at] { done(at); },
                 std::move(ev_tag));
}

void
L1Cache::requestFromL2(Addr line, bool is_write, ReqType type, Cycle when)
{
    if (LaneMailbox *lane = laneContext()) {
        // The MSHR entry is already booked (lane-local, safe); only the
        // L2 side — bank queues, link bandwidth, the fill callback's
        // event — is shared state and must wait for the barrier.
        lane->defer([this, line, is_write, type, when] {
            l2_.request(cpu_, line, is_write, type, when,
                        [this, line](Cycle at, bool excl, bool comp) {
                            fill(line, at, excl, comp);
                        },
                        ckpt::tag(ckpt::kL1Fill, ckpt_id_, line));
        });
        return;
    }
    l2_.request(cpu_, line, is_write, type, when,
                [this, line](Cycle at, bool excl, bool comp) {
                    fill(line, at, excl, comp);
                },
                ckpt::tag(ckpt::kL1Fill, ckpt_id_, line));
}

void
L1Cache::fill(Addr line, Cycle at, bool exclusive, bool was_compressed)
{
    auto it = mshrs_.find(line);
    cmpsim_assert(it != mshrs_.end());
    Mshr m = std::move(it->second);
    mshrs_.erase(it);

    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);
    if (e == nullptr) {
        TagEntry entry;
        entry.line = line;
        entry.valid = true;
        entry.dirty = exclusive; // store misses install in M
        entry.prefetch = m.prefetch_only;
        entry.pf_source = m.prefetch_only ? PfSource::L1 : PfSource::None;
        entry.was_compressed = was_compressed;
        for (const TagEntry &victim : set.insert(entry))
            handleVictim(victim, at);
        e = set.find(line);
    } else {
        e->dirty = e->dirty || exclusive;
    }

    if (m.prefetch_only)
        ++pf_fills_;

    // A write waiter that coalesced after a shared request still needs
    // store permission: fix the directory state atomically.
    bool any_write = false;
    for (const Waiter &w : m.waiters)
        any_write |= w.is_write;
    if (any_write && !exclusive) {
        l2_.upgradeAtomic(cpu_, line);
        e->dirty = true;
    }

    for (Waiter &w : m.waiters) {
        // Completion happens at data arrival; schedule rather than
        // call so the core sees a consistent event time. Fills only
        // run during the serial merged drain, so scheduleDone here is
        // always the direct path.
        scheduleDone(at, std::move(w.done), std::move(w.tag));
    }
}

void
L1Cache::handleVictim(const TagEntry &victim, Cycle when)
{
    if (victim.prefetch) {
        ++pf_useless_evicted_;
        if (adaptive_)
            adaptive_->onUselessPrefetch();
    }
    if (victim.dirty) {
        ++writebacks_;
        // In functional mode the L2 has been switched functional too,
        // so this charges no bandwidth.
        l2_.writeback(cpu_, victim.line, when);
    } else {
        l2_.sharerEvict(cpu_, victim.line);
    }
}

bool
L1Cache::invalidateLine(Addr line)
{
    ++invalidations_received_;
    const TagEntry prior = sets_[setIndex(line)].invalidate(line);
    return prior.valid && prior.dirty;
}

void
L1Cache::downgradeLine(Addr line)
{
    TagEntry *e = sets_[setIndex(line)].find(line);
    if (e != nullptr)
        e->dirty = false;
}

bool
L1Cache::accessFunctional(Addr addr, bool is_write)
{
    const bool l2_mode = l2_.functionalMode();
    l2_.setFunctionalMode(true);
    const bool hit = accessFunctionalImpl(addr, is_write);
    l2_.setFunctionalMode(l2_mode);
    return hit;
}

bool
L1Cache::accessFunctionalImpl(Addr addr, bool is_write)
{
    const Addr line = lineAddr(addr);
    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);
    ++accesses_;

    if (e != nullptr) {
        if (e->prefetch) {
            // Stream-advance prefetches issued here take the timed
            // path; anchor them at the current cycle (0 during warmup)
            // so a mid-run fast-forward never schedules into the past.
            onPrefetchBitHit(*e, eq_.now());
        }
        set.touch(line); // invalidates e
        e = set.find(line);
        if (is_write && !e->dirty) {
            ++upgrades_;
            l2_.accessFunctional(cpu_, line, true, ReqType::Demand);
            e = set.find(line); // L2-side upgrades never evict L1 lines
            cmpsim_assert(e != nullptr);
            e->dirty = true;
        }
        ++hits_;
        return true;
    }

    ++misses_;
    if (adaptive_ && set.victimTagMatch(line) && set.anyValidPrefetch()) {
        ++harmful_miss_flags_;
        adaptive_->onHarmfulPrefetch();
    }

    std::vector<Addr> to_prefetch;
    if (prefetcher_)
        to_prefetch = prefetcher_->observeMiss(line, allowedStartup());

    l2_.accessFunctional(cpu_, line, is_write, ReqType::Demand);

    TagEntry entry;
    entry.line = line;
    entry.valid = true;
    entry.dirty = is_write;
    functional_mode_ = true;
    for (const TagEntry &victim : set.insert(entry))
        handleVictim(victim, 0);
    functional_mode_ = false;

    // Functional prefetches: instant fills with the prefetch bit set.
    for (Addr a : to_prefetch) {
        if (sets_[setIndex(a)].find(a) != nullptr) {
            ++pf_squashed_;
            continue;
        }
        ++pf_issued_;
        ++pf_fills_;
        const bool l2_hit =
            l2_.accessFunctional(cpu_, a, false, ReqType::L1Prefetch);
        (void)l2_hit;
        TagEntry pf;
        pf.line = a;
        pf.valid = true;
        pf.prefetch = true;
        pf.pf_source = PfSource::L1;
        functional_mode_ = true;
        for (const TagEntry &victim : sets_[setIndex(a)].insert(pf))
            handleVictim(victim, 0);
        functional_mode_ = false;
    }
    return false;
}

void
L1Cache::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".accesses", &accesses_);
    reg.registerCounter(prefix + ".hits", &hits_);
    reg.registerCounter(prefix + ".misses", &misses_);
    reg.registerCounter(prefix + ".upgrades", &upgrades_);
    reg.registerCounter(prefix + ".writebacks", &writebacks_);
    reg.registerCounter(prefix + ".pf_issued", &pf_issued_);
    reg.registerCounter(prefix + ".pf_fills", &pf_fills_);
    reg.registerCounter(prefix + ".pf_hits", &pf_hits_);
    reg.registerCounter(prefix + ".pf_squashed", &pf_squashed_);
    reg.registerCounter(prefix + ".pf_dropped", &pf_dropped_);
    reg.registerCounter(prefix + ".pf_useless_evicted",
                        &pf_useless_evicted_);
    reg.registerCounter(prefix + ".harmful_miss_flags",
                        &harmful_miss_flags_);
    reg.registerCounter(prefix + ".partial_hits", &partial_hits_);
    reg.registerCounter(prefix + ".invalidations_received",
                        &invalidations_received_);
    reg.registerCounter(prefix + ".decomp_avoided", &decomp_avoided_);
}

void
L1Cache::resetStats()
{
    accesses_.reset();
    hits_.reset();
    misses_.reset();
    upgrades_.reset();
    writebacks_.reset();
    pf_issued_.reset();
    pf_fills_.reset();
    pf_hits_.reset();
    pf_squashed_.reset();
    pf_dropped_.reset();
    pf_useless_evicted_.reset();
    harmful_miss_flags_.reset();
    partial_hits_.reset();
    invalidations_received_.reset();
    decomp_avoided_.reset();
}

void
L1Cache::registerAudits(InvariantRegistry &reg, const std::string &name)
{
    reg.add(name + ".set_integrity", [this](std::string &why) {
        for (unsigned i = 0; i < sets_.size(); ++i) {
            std::string detail;
            if (!auditDecoupledSet(sets_[i],
                                   /*require_full_charge=*/true,
                                   detail)) {
                why = auditFormat("set %u: %s", i, detail.c_str());
                return false;
            }
        }
        return true;
    });

    reg.add(name + ".mshr_limit", [this](std::string &why) {
        if (mshrs_.size() > params_.mshrs) {
            why = auditFormat("%zu MSHRs allocated, limit %u",
                              mshrs_.size(), params_.mshrs);
            return false;
        }
        return true;
    });

    reg.add(name + ".access_balance", [this](std::string &why) {
        // A timed access resolves as exactly one of hit / miss /
        // upgrade; the functional path counts an upgrade as a hit as
        // well, hence the band rather than an equality.
        const std::uint64_t lo = hits_.value() + misses_.value();
        const std::uint64_t hi = lo + upgrades_.value();
        if (accesses_.value() < lo || accesses_.value() > hi) {
            why = auditFormat(
                "accesses %llu outside [hits %llu + misses %llu, "
                "+ upgrades %llu]",
                static_cast<unsigned long long>(accesses_.value()),
                static_cast<unsigned long long>(hits_.value()),
                static_cast<unsigned long long>(misses_.value()),
                static_cast<unsigned long long>(upgrades_.value()));
            return false;
        }
        return true;
    });

    if (adaptive_ != nullptr) {
        reg.add(name + ".adaptive_feedback", [this](std::string &why) {
            if (adaptive_->usefulCount() != pf_hits_.value() ||
                adaptive_->uselessCount() !=
                    pf_useless_evicted_.value() ||
                adaptive_->harmfulCount() !=
                    harmful_miss_flags_.value()) {
                why = auditFormat(
                    "controller (useful %llu, useless %llu, harmful "
                    "%llu) disagrees with cache (pf_hits %llu, "
                    "pf_useless_evicted %llu, harmful_miss_flags %llu)",
                    static_cast<unsigned long long>(
                        adaptive_->usefulCount()),
                    static_cast<unsigned long long>(
                        adaptive_->uselessCount()),
                    static_cast<unsigned long long>(
                        adaptive_->harmfulCount()),
                    static_cast<unsigned long long>(pf_hits_.value()),
                    static_cast<unsigned long long>(
                        pf_useless_evicted_.value()),
                    static_cast<unsigned long long>(
                        harmful_miss_flags_.value()));
                return false;
            }
            return true;
        });
    }
}

} // namespace cmpsim
