#include "src/cache/decoupled_set.h"

#include <algorithm>

namespace cmpsim {

DecoupledSet::DecoupledSet(unsigned tags, unsigned segment_budget)
    : entries_(tags), segment_budget_(segment_budget)
{
    cmpsim_assert(tags > 0);
    cmpsim_assert(segment_budget >= kSegmentsPerLine);
}

TagEntry *
DecoupledSet::find(Addr line)
{
    for (auto &e : entries_) {
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

const TagEntry *
DecoupledSet::find(Addr line) const
{
    return const_cast<DecoupledSet *>(this)->find(line);
}

void
DecoupledSet::touch(Addr line)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->valid && it->line == line) {
            std::rotate(entries_.begin(), it, it + 1);
            return;
        }
    }
    cmpsim_panic("touch of absent line %#lx",
                 static_cast<unsigned long>(line));
}

void
DecoupledSet::retireTag(std::vector<TagEntry>::iterator it)
{
    used_segments_ -= it->segments;
    // Leave a victim tag: address only, all other state cleared.
    it->valid = false;
    it->dirty = false;
    it->prefetch = false;
    it->pf_source = PfSource::None;
    it->was_compressed = false;
    it->segments = kSegmentsPerLine;
    it->sharers = 0;
    it->owner = kNoOwner;
    // Rotate the fresh victim tag just behind the last valid entry so
    // valids remain a contiguous MRU prefix and the newest victim
    // heads the victim region (insert() reuses the backmost invalid
    // tag, so older victims are recycled first).
    auto end_valid = it + 1;
    while (end_valid != entries_.end() && end_valid->valid)
        ++end_valid;
    std::rotate(it, it + 1, end_valid);
}

TagEntry
DecoupledSet::evictLruValid()
{
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->valid) {
            TagEntry victim = *it;
            retireTag(it.base() - 1);
            return victim;
        }
    }
    cmpsim_panic("eviction from a set with no valid lines");
}

std::vector<TagEntry>
DecoupledSet::insert(const TagEntry &entry)
{
    cmpsim_assert(entry.valid);
    cmpsim_assert(entry.segments >= 1 &&
                  entry.segments <= kSegmentsPerLine);
    cmpsim_assert(entry.segments <= segment_budget_);
    cmpsim_assert(find(entry.line) == nullptr);

    std::vector<TagEntry> evicted;

    // Free data space.
    while (used_segments_ + entry.segments > segment_budget_)
        evicted.push_back(evictLruValid());

    // Free a tag: reuse the backmost invalid slot.
    auto slot = entries_.rend();
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (!it->valid) {
            slot = it;
            break;
        }
    }
    if (slot == entries_.rend()) {
        evicted.push_back(evictLruValid());
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (!it->valid) {
                slot = it;
                break;
            }
        }
    }
    cmpsim_assert(slot != entries_.rend());

    // Move the chosen slot to the MRU position and fill it.
    auto fwd = slot.base() - 1; // reverse->forward iterator
    std::rotate(entries_.begin(), fwd, fwd + 1);
    entries_.front() = entry;
    used_segments_ += entry.segments;
    return evicted;
}

std::vector<TagEntry>
DecoupledSet::resize(Addr line, unsigned segments)
{
    cmpsim_assert(segments >= 1 && segments <= kSegmentsPerLine);
    TagEntry *e = find(line);
    cmpsim_assert(e != nullptr);

    std::vector<TagEntry> evicted;
    if (segments <= e->segments) {
        used_segments_ -= e->segments - segments;
        e->segments = static_cast<std::uint8_t>(segments);
        return evicted;
    }

    const unsigned grow = segments - e->segments;
    while (used_segments_ + grow > segment_budget_) {
        // Never evict the line being resized: it can only become the
        // LRU-most valid line if it is the only valid line, in which
        // case the budget always suffices (segments <= budget).
        cmpsim_assert(validCount() > 1);
        // Temporarily skip `line` by evicting the LRU valid that is
        // not `line`.
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (it->valid && it->line != line) {
                TagEntry victim = *it;
                retireTag(it.base() - 1);
                evicted.push_back(victim);
                break;
            }
        }
        e = find(line); // retireTag reordered the stack; re-find
    }
    used_segments_ += grow;
    e->segments = static_cast<std::uint8_t>(segments);
    return evicted;
}

TagEntry
DecoupledSet::invalidate(Addr line)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->valid && it->line == line) {
            TagEntry prior = *it;
            retireTag(it);
            return prior;
        }
    }
    return TagEntry{};
}

bool
DecoupledSet::victimTagMatch(Addr line) const
{
    for (const auto &e : entries_) {
        if (e.isVictimTag() && e.line == line)
            return true;
    }
    return false;
}

bool
DecoupledSet::anyValidPrefetch() const
{
    for (const auto &e : entries_) {
        if (e.valid && e.prefetch)
            return true;
    }
    return false;
}

unsigned
DecoupledSet::usedSegments() const
{
    return used_segments_;
}

unsigned
DecoupledSet::validCount() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid;
    return n;
}

unsigned
DecoupledSet::victimTagCount() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.isVictimTag();
    return n;
}

int
DecoupledSet::validStackDepth(Addr line) const
{
    int depth = 0;
    for (const auto &e : entries_) {
        if (!e.valid)
            continue;
        if (e.line == line)
            return depth;
        ++depth;
    }
    return -1;
}

} // namespace cmpsim
