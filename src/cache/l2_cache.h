/**
 * @file
 * The shared, banked, inclusive L2 cache with optional cache
 * compression — the center of the paper's CMP (Section 2).
 *
 * Geometry. The L2 is built from DecoupledSet structures. The paper's
 * two configurations:
 *  - uncompressed: 8 K sets x 8 ways (4 MB), every line 8 segments;
 *  - compressed:  16 K sets x 8 tags over 32 segments of data space
 *    (4 MB of data, 4-8 effective ways), lines stored FPC-compressed.
 *
 * Coherence. MSI with the L2 holding full sharer knowledge: per-tag
 * sharer bits plus an owner field for a modified L1 copy. Inclusion is
 * enforced: evicting an L2 line invalidates L1 copies through a
 * callback the system wires up. Directory state changes are atomic at
 * an event; bandwidth is charged on the side (writebacks and
 * invalidations consume on-chip/off-chip bandwidth but do not hold
 * locks across events), which keeps the protocol race-free in the
 * sequential event kernel.
 *
 * Timing. A request crosses the on-chip interconnect (shared byte
 * budget + hop latency), occupies its bank, then pays the 15-cycle
 * lookup latency (+5 cycles decompression for a compressed hit). A
 * miss allocates an MSHR (coalescing later requests) and fetches from
 * memory; the fill inserts the line, evicting victims per the
 * decoupled-set rules.
 *
 * Prefetching hooks. Per-core L2 stride prefetchers train on this
 * core's demand (and L1-prefetch) misses; their prefetches fill the L2
 * with the prefetch bit set. The adaptive controller (one counter for
 * the whole shared L2, per the paper) observes useful / useless /
 * harmful prefetch evidence generated here.
 */

#ifndef CMPSIM_CACHE_L2_CACHE_H
#define CMPSIM_CACHE_L2_CACHE_H

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/decoupled_set.h"
#include "src/cache/request_types.h"
#include "src/ckpt/cont_tag.h"
#include "src/common/stats.h"
#include "src/mem/main_memory.h"
#include "src/mem/value_store.h"
#include "src/prefetch/adaptive_controller.h"
#include "src/prefetch/stride_prefetcher.h"
#include "src/sim/bandwidth_resource.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

class InvariantRegistry;
class MissJournal;

/** Static configuration of the shared L2. */
struct L2Params
{
    unsigned sets = 8192;
    unsigned banks = 8;
    unsigned tags_per_set = 8;
    unsigned segment_budget = 64; ///< 64 = uncompressed 8-way; 32 = compressed
    bool compressed = false;      ///< store lines FPC-compressed

    Cycle lookup_latency = 15;        ///< uncompressed hit (Table 1)
    Cycle decompression_latency = 5;  ///< added for compressed hits
    Cycle bank_occupancy = 2;         ///< bank busy time per access
    Cycle onchip_hop_latency = 2;     ///< interconnect wire latency
    Cycle owner_retrieval_latency = 10; ///< fetch M copy from an L1

    double onchip_bytes_per_cycle = 64.0; ///< 320 GB/s at 5 GHz

    unsigned cores = 8;

    /** Outstanding L2-prefetch MSHRs allowed per core. */
    unsigned prefetch_outstanding = 32;

    /** "We allow L1 prefetches to trigger L2 prefetches" (Section 2);
     *  clear for the ablation bench. */
    bool l1_prefetch_trains_l2 = true;

    /**
     * Adaptive compression policy [Alameldeen & Wood, ISCA 2004],
     * which the paper's Section 2 runs but reports "always adapted to
     * compress" for its workloads: a global compression predictor
     * (GCP) saturating counter weighs the benefit of compression
     * (hits to lines resident only because of compression, LRU stack
     * depth beyond the uncompressed associativity, worth one memory
     * access each) against its cost (decompression cycles on hits
     * that would have been hits anyway). New fills store compressed
     * only while the predictor is non-negative.
     */
    bool adaptive_compression = false;

    /** Benefit credited per avoided miss (≈ memory latency). */
    std::int64_t gcp_benefit = 400;

    /** Saturation bound for the predictor. */
    std::int64_t gcp_max = 1 << 20;

    /** Audit builds: verify an FPC and a BDI compress -> decompress
     *  round-trip of the line's current value on every L2 fill. */
    bool verify_fill_roundtrip = false;
};

/** The shared inclusive L2 with its on-chip interconnect. */
class L2Cache
{
  public:
    /**
     * Fill/hit response to the requesting L1.
     * @param Cycle the cycle data is at the L1
     * @param bool exclusive permission granted
     * @param bool the line was compressed in the L2 (penalty paid)
     */
    using Done = std::function<void(Cycle, bool, bool)>;

    /** Inclusion hook: invalidate @p line in L1 @p cpu; returns true
     *  when the L1 copy was dirty. */
    using L1Invalidator = std::function<bool(unsigned cpu, Addr line)>;

    /** Coherence hook: downgrade L1 @p cpu's M copy of @p line to S. */
    using L1Downgrader = std::function<void(unsigned cpu, Addr line)>;

    /** Observer for miss classification (Figure 8): (type, line). */
    using MissObserver = std::function<void(ReqType, Addr)>;

    L2Cache(EventQueue &eq, ValueStore &values, MainMemory &memory,
            const L2Params &params);

    /** Wire the per-core L2 prefetcher (may be null). */
    void setPrefetcher(unsigned cpu, StridePrefetcher *pf);

    /** Wire the (single, shared) adaptive controller (may be null). */
    void setAdaptiveController(AdaptivePrefetchController *ctl);

    /** Wire the inclusion invalidator. */
    void setL1Invalidator(L1Invalidator inv);

    /** Wire the M-to-S downgrade hook. */
    void setL1Downgrader(L1Downgrader down);

    /** Observe demand misses and prefetch fills (for Figure 8). */
    void setMissObserver(MissObserver obs);

    /** Wire the (opt-in) miss-genealogy journal; nullptr disarms. */
    void setJournal(MissJournal *j) { journal_ = j; }

    /**
     * Functional (warmup) mode: state changes apply instantly and no
     * bandwidth is charged, so warmup cannot leave a backlog on the
     * timed channels.
     */
    void setFunctionalMode(bool on) { functional_mode_ = on; }
    bool functionalMode() const { return functional_mode_; }

    /**
     * Timed request from L1 @p cpu for @p line.
     * @param exclusive store permission needed (GETX/upgrade)
     * @param type demand / L1 prefetch / L2 prefetch
     * @param when cycle the request leaves the L1
     * @param done response callback (empty for L2 prefetches)
     * @param done_tag serializable description of @p done for
     *        checkpointing (empty unless checkpoint tagging is armed)
     */
    void request(unsigned cpu, Addr line, bool exclusive, ReqType type,
                 Cycle when, Done done, ckpt::Tag done_tag = {});

    /** L1 dirty eviction: merge data, charge on-chip traffic. Atomic. */
    void writeback(unsigned cpu, Addr line, Cycle when);

    /** L1 clean eviction: clear the sharer bit. Atomic, free. */
    void sharerEvict(unsigned cpu, Addr line);

    /** Late store-permission fix-up after a shared fill (see .cc). */
    void upgradeAtomic(unsigned cpu, Addr line);

    /**
     * Functional (no timing) access for cache warmup: updates tag
     * state, LRU, directory and prefetch training exactly like the
     * timed path, and fills misses instantly.
     * @return true on hit.
     */
    bool accessFunctional(unsigned cpu, Addr line, bool exclusive,
                          ReqType type);

    // --- Introspection & stats -----------------------------------

    /** Bytes of (uncompressed) payload currently resident. */
    std::uint64_t effectiveBytes() const;

    /** Data capacity in bytes (sets x segment budget x 8). */
    std::uint64_t dataCapacityBytes() const;

    /** Current compression ratio (effective / capacity). */
    double
    compressionRatio() const
    {
        return static_cast<double>(effectiveBytes()) /
               static_cast<double>(dataCapacityBytes());
    }

    /** Mean victim tags per set (spare-tag occupancy, Section 5.4). */
    double meanVictimTags() const;

    /** Adaptive-compression predictor value (ISCA'04 GCP). */
    std::int64_t gcpValue() const { return gcp_; }

    /** True when new fills are currently stored compressed. */
    bool
    compressingNow() const
    {
        return params_.compressed &&
               (!params_.adaptive_compression || gcp_ >= 0);
    }

    const L2Params &params() const { return params_; }
    BandwidthResource &onchip() { return onchip_; }

    std::uint64_t demandAccesses() const { return demand_accesses_.value(); }
    std::uint64_t demandMisses() const { return demand_misses_.value(); }
    std::uint64_t demandHits() const { return demand_hits_.value(); }
    std::uint64_t prefetchHits(PfSource src) const;
    std::uint64_t prefetchFills(PfSource src) const;
    std::uint64_t l2PrefetchesIssued() const { return l2pf_issued_.value(); }
    std::uint64_t penalizedHits() const { return penalized_hits_.value(); }

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

    /**
     * Register this cache's invariants under "<name>.*": per-set
     * structural integrity, prefetch-MSHR accounting, demand-stat
     * balance and the prefetch-pipeline bound.
     */
    void registerAudits(InvariantRegistry &reg, const std::string &name);

    /** Test hook: direct set inspection. */
    const DecoupledSet &setAt(unsigned index) const { return sets_[index]; }
    unsigned setIndexOf(Addr line) const { return setIndex(line); }

  private:
    friend class CheckpointCodec; // serializes sets_/mshrs_/bank state

    struct Waiter
    {
        unsigned cpu;
        bool exclusive;
        ReqType type;
        Done done;
        ckpt::Tag tag; ///< serializable description of done
    };

    struct Mshr
    {
        std::vector<Waiter> waiters;
        bool prefetch_only = true;
        PfSource pf_source = PfSource::None;
        unsigned pf_cpu = 0; ///< for the prefetch-outstanding budget
    };

    unsigned
    setIndex(Addr line) const
    {
        return static_cast<unsigned>(lineNumber(line) % params_.sets);
    }

    unsigned
    bankIndex(Addr line) const
    {
        // Banks interleave on the least-significant block address bits
        // (Section 2).
        return static_cast<unsigned>(lineNumber(line) % params_.banks);
    }

    /** Line segment charge under this config. */
    unsigned storedSegments(Addr line);

    /** The lookup stage of a timed request (runs at bank time). */
    void lookup(unsigned cpu, Addr line, bool exclusive, ReqType type,
                Cycle when, Done done, ckpt::Tag done_tag);

    /** Coherence actions + data response for a present line. */
    void grant(unsigned cpu, Addr line, bool exclusive, ReqType type,
               Cycle ready, bool penalized, const Done &done);

    /** Fill from memory: insert, evict, respond to waiters. */
    void fill(Addr line, Cycle arrival);

    /** Debug-mode FPC + BDI round-trip of the line being filled. */
    void verifyFillRoundTrip(Addr line);

    /** Handle one evicted L2 line (inclusion + writeback + stats). */
    void handleVictim(const TagEntry &victim, Cycle when);

    /** Train the per-core L2 prefetcher on a miss at @p line. */
    void trainPrefetcher(unsigned cpu, Addr line, Cycle when);

    /** First demand touch of a prefetched line. */
    void onPrefetchBitHit(unsigned cpu, TagEntry &e, Cycle when);

    /** Update the adaptive-compression predictor on a hit. */
    void updateGcp(const DecoupledSet &set, Addr line,
                   bool compressed_line);

    unsigned allowedStartup(const StridePrefetcher &pf) const;

    EventQueue &eq_;
    ValueStore &values_;
    MainMemory &memory_;
    L2Params params_;

    std::vector<DecoupledSet> sets_;
    std::vector<Cycle> bank_free_;
    BandwidthResource onchip_;

    std::unordered_map<Addr, Mshr> mshrs_;
    std::vector<unsigned> pf_outstanding_; // per core

    std::vector<StridePrefetcher *> prefetchers_;
    AdaptivePrefetchController *adaptive_ = nullptr;
    L1Invalidator l1_invalidate_;
    L1Downgrader l1_downgrade_;
    MissObserver miss_observer_;
    MissJournal *journal_ = nullptr;
    bool functional_mode_ = false;

    // Statistics.
    Counter demand_accesses_;
    Counter demand_hits_;
    Counter demand_misses_;
    Counter partial_hits_;       ///< demand hit an in-flight prefetch
    Counter upgrade_requests_;
    Counter penalized_hits_;     ///< hits paying the decompression cost
    Counter pf_hits_l1_;
    Counter pf_hits_l2_;
    Counter pf_fills_l1_;
    Counter pf_fills_l2_;
    Counter l2pf_generated_;
    Counter l2pf_issued_;        ///< missed and fetched from memory
    Counter l2pf_squashed_;      ///< already present or in flight
    Counter l2pf_dropped_;       ///< outstanding budget exhausted
    Counter useless_pf_evicted_;
    Counter harmful_miss_flags_;
    Counter evictions_;
    Counter memory_writebacks_;
    Counter l1_writebacks_;
    Counter invalidations_sent_;
    Counter owner_retrievals_;
    Counter gcp_benefit_events_;
    Counter gcp_cost_events_;
    std::int64_t gcp_ = 0;

    // Prefetch-pipeline conservation (audit): L2 prefetches counted as
    // generated but whose lookup event has not run yet. Not a stat —
    // never reset — so the pipeline audit stays exact across the
    // warmup/measure stat reset (warmup can leave lookups in flight).
    std::uint64_t l2pf_in_network_ = 0;
    std::uint64_t l2pf_pending_at_reset_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_CACHE_L2_CACHE_H
