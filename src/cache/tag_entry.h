/**
 * @file
 * One address tag in a decoupled variable-segment cache set, carrying
 * the compression tag (segment count), the paper's per-tag "prefetch"
 * bit (Section 3), and the directory state the shared L2 keeps for the
 * on-chip MSI protocol (sharer bits + owner).
 *
 * An entry whose valid bit is clear but whose line address is not
 * kAddrInvalid is a *victim tag*: it records the address of a replaced
 * block so the adaptive prefetcher can detect harmful prefetches.
 */

#ifndef CMPSIM_CACHE_TAG_ENTRY_H
#define CMPSIM_CACHE_TAG_ENTRY_H

#include <cstdint>

#include "src/cache/request_types.h"
#include "src/common/types.h"

namespace cmpsim {

/** Maximum number of cores whose sharer bits fit in the tag. */
inline constexpr unsigned kMaxCores = 16;

/** Sentinel for "no owner" in the L2 directory state. */
inline constexpr std::int8_t kNoOwner = -1;

/** Tag + state for one (possibly compressed) cache line. */
struct TagEntry
{
    /** Line-aligned address; kAddrInvalid when the tag is empty. */
    Addr line = kAddrInvalid;

    /** Data present for this tag. */
    bool valid = false;

    /** Data differs from the next level. */
    bool dirty = false;

    /** Set by a prefetch fill, cleared by the first demand access. */
    bool prefetch = false;

    /** Which engine prefetched this line (valid while prefetch set). */
    PfSource pf_source = PfSource::None;

    /**
     * In an L1: the line was compressed in the L2 when it was filled,
     * so a hit here avoided a decompression penalty (Section 5.3
     * bookkeeping). Unused in the L2.
     */
    bool was_compressed = false;

    /** Compression tag: allocated 8-byte segments (1..8). */
    std::uint8_t segments = kSegmentsPerLine;

    /** L2 directory: bitmask of L1 caches holding a shared copy. */
    std::uint16_t sharers = 0;

    /** L2 directory: L1 cache holding a modified copy, or kNoOwner. */
    std::int8_t owner = kNoOwner;

    bool isVictimTag() const { return !valid && line != kAddrInvalid; }

    bool
    hasSharer(unsigned cpu) const
    {
        return (sharers >> cpu) & 1;
    }

    void addSharer(unsigned cpu) { sharers |= 1u << cpu; }
    void removeSharer(unsigned cpu) { sharers &= ~(1u << cpu); }
    bool anySharer() const { return sharers != 0; }
};

} // namespace cmpsim

#endif // CMPSIM_CACHE_TAG_ENTRY_H
