#include "src/cache/l2_cache.h"

#include <algorithm>

#include "src/audit/audits.h"
#include "src/compression/bdi.h"
#include "src/obs/cpi_stack.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sim/fault_injection.h"

namespace cmpsim {

namespace {
/** On-chip request / invalidation message size. */
constexpr unsigned kCtrlBytes = kMessageHeaderBytes;
/** On-chip data message size (header + full line; L1s are
 *  uncompressed, so L1<->L2 transfers always carry 64 B of data). */
constexpr unsigned kDataBytes = kMessageHeaderBytes + kLineBytes;
} // namespace

L2Cache::L2Cache(EventQueue &eq, ValueStore &values, MainMemory &memory,
                 const L2Params &params)
    : eq_(eq), values_(values), memory_(memory), params_(params),
      sets_(params.sets,
            DecoupledSet(params.tags_per_set, params.segment_budget)),
      bank_free_(params.banks, 0),
      onchip_(params.onchip_bytes_per_cycle),
      pf_outstanding_(params.cores, 0),
      prefetchers_(params.cores, nullptr)
{
    cmpsim_assert(params.sets % params.banks == 0);
    cmpsim_assert(params.cores <= kMaxCores);
}

void
L2Cache::setPrefetcher(unsigned cpu, StridePrefetcher *pf)
{
    cmpsim_assert(cpu < prefetchers_.size());
    prefetchers_[cpu] = pf;
}

void
L2Cache::setAdaptiveController(AdaptivePrefetchController *ctl)
{
    adaptive_ = ctl;
}

void
L2Cache::setL1Invalidator(L1Invalidator inv)
{
    l1_invalidate_ = std::move(inv);
}

void
L2Cache::setL1Downgrader(L1Downgrader down)
{
    l1_downgrade_ = std::move(down);
}

void
L2Cache::setMissObserver(MissObserver obs)
{
    miss_observer_ = std::move(obs);
}

unsigned
L2Cache::storedSegments(Addr line)
{
    return compressingNow() ? values_.segments(line) : kSegmentsPerLine;
}

unsigned
L2Cache::allowedStartup(const StridePrefetcher &pf) const
{
    return adaptive_ ? std::min(adaptive_->allowedStartup(),
                                pf.params().startup_prefetches)
                     : pf.params().startup_prefetches;
}

void
L2Cache::request(unsigned cpu, Addr line, bool exclusive, ReqType type,
                 Cycle when, Done done, ckpt::Tag done_tag)
{
    cmpsim_assert(line == lineAddr(line));

    if (journal_ != nullptr)
        journal_->onL2Request(cpu, line, type != ReqType::Demand, when);

    if (type == ReqType::L2Prefetch)
        ++l2pf_in_network_;

    // L2-prefetcher requests originate at the L2 and skip the
    // L1-to-L2 interconnect; everything else crosses it.
    Cycle arrival = when;
    if (type != ReqType::L2Prefetch) {
        arrival = onchip_.reserve(when, kCtrlBytes) +
                  params_.onchip_hop_latency;
    }

    const unsigned bank = bankIndex(line);
    const Cycle start = std::max(arrival, bank_free_[bank]);
    bank_free_[bank] = start + params_.bank_occupancy;

    ckpt::Tag ev_tag =
        ckpt::tag(ckpt::kL2Lookup, cpu, line, start,
                  (exclusive ? 1u : 0u) |
                      (static_cast<std::uint64_t>(type) << 1),
                  done_tag);
    eq_.schedule(start,
                 [this, cpu, line, exclusive, type, start,
                  done = std::move(done),
                  done_tag = std::move(done_tag)]() mutable {
                     lookup(cpu, line, exclusive, type, start,
                            std::move(done), std::move(done_tag));
                 },
                 std::move(ev_tag));
}

void
L2Cache::updateGcp(const DecoupledSet &set, Addr line,
                   bool compressed_line)
{
    if (!params_.compressed || !params_.adaptive_compression)
        return;
    const int depth = set.validStackDepth(line);
    if (depth < 0)
        return;
    const int uncompressed_ways =
        static_cast<int>(params_.segment_budget / kSegmentsPerLine);
    if (depth >= uncompressed_ways) {
        // This hit exists only because compression packed extra
        // lines: credit one avoided memory access.
        ++gcp_benefit_events_;
        gcp_ = std::min(gcp_ + params_.gcp_benefit, params_.gcp_max);
    } else if (compressed_line) {
        // A hit that an uncompressed cache would also have served:
        // compression only added the decompression penalty.
        ++gcp_cost_events_;
        gcp_ = std::max(gcp_ - static_cast<std::int64_t>(
                                   params_.decompression_latency),
                        -params_.gcp_max);
    }
}

void
L2Cache::onPrefetchBitHit(unsigned cpu, TagEntry &e, Cycle when)
{
    const PfSource src = e.pf_source;
    e.prefetch = false;
    e.pf_source = PfSource::None;
    if (src == PfSource::L2)
        ++pf_hits_l2_;
    else
        ++pf_hits_l1_;
    if (adaptive_)
        adaptive_->onUsefulPrefetch();

    // The demand stream reached prefetched data: advance the stream.
    StridePrefetcher *pf = prefetchers_[cpu];
    if (pf && src == PfSource::L2) {
        for (Addr a : pf->observeUse(e.line, allowedStartup(*pf))) {
            ++l2pf_generated_;
            request(cpu, a, false, ReqType::L2Prefetch, when, nullptr);
        }
    }
}

void
L2Cache::lookup(unsigned cpu, Addr line, bool exclusive, ReqType type,
                Cycle when, Done done, ckpt::Tag done_tag)
{
    CMPSIM_PROF_SCOPE("l2.lookup");
    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);

    if (type == ReqType::Demand)
        ++demand_accesses_;
    if (type == ReqType::L2Prefetch) {
        cmpsim_assert(l2pf_in_network_ > 0);
        --l2pf_in_network_;
    }

    if (e != nullptr) {
        // ------------------------------ hit
        if (type == ReqType::L2Prefetch) {
            ++l2pf_squashed_;
            if (journal_ != nullptr)
                journal_->onPrefetchSquashed(line, when);
            return;
        }
        if (type == ReqType::Demand)
            ++demand_hits_;

        const bool penalized =
            params_.compressed && e->segments < kSegmentsPerLine;
        if (penalized && type == ReqType::Demand)
            ++penalized_hits_;
        if (type == ReqType::Demand)
            updateGcp(set, line, e->segments < kSegmentsPerLine);

        if (e->prefetch && type == ReqType::Demand)
            onPrefetchBitHit(cpu, *e, when);

        set.touch(line);
        Cycle ready = when + params_.lookup_latency +
                      (penalized ? params_.decompression_latency : 0);
        if (journal_ != nullptr) {
            journal_->onL2Hit(line, when + params_.lookup_latency,
                              ready, penalized);
        }
        grant(cpu, line, exclusive, type, ready, penalized, done);
        return;
    }

    // ------------------------------ miss
    if (type == ReqType::Demand) {
        ++demand_misses_;
        if (miss_observer_)
            miss_observer_(ReqType::Demand, line);
        // Harmful-prefetch probe (Section 3): the missing address
        // matches a victim tag while prefetched lines occupy the set.
        if (adaptive_ && set.victimTagMatch(line) &&
            set.anyValidPrefetch()) {
            ++harmful_miss_flags_;
            adaptive_->onHarmfulPrefetch();
        }
    }

    // Train the per-core L2 prefetcher on demand and L1-prefetch
    // misses ("we allow L1 prefetches to trigger L2 prefetches").
    if (type == ReqType::Demand ||
        (type == ReqType::L1Prefetch && params_.l1_prefetch_trains_l2))
        trainPrefetcher(cpu, line, when);

    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        // Coalesce with the in-flight fetch.
        Mshr &m = it->second;
        if (type == ReqType::L2Prefetch) {
            ++l2pf_squashed_;
            return;
        }
        if (type == ReqType::Demand && m.prefetch_only)
            ++partial_hits_;
        if (type == ReqType::Demand)
            m.prefetch_only = false;
        m.waiters.push_back(Waiter{cpu, exclusive, type,
                                   std::move(done),
                                   std::move(done_tag)});
        return;
    }

    // New MSHR.
    if (type == ReqType::L2Prefetch) {
        if (pf_outstanding_[cpu] >= params_.prefetch_outstanding) {
            ++l2pf_dropped_;
            if (journal_ != nullptr)
                journal_->onPrefetchSquashed(line, when);
            return;
        }
        ++pf_outstanding_[cpu];
        ++l2pf_issued_;
        traceInstant("pf.issue", when,
                     {{"line", line}, {"cpu", std::uint64_t{cpu}}});
    }

    Mshr m;
    m.prefetch_only = type != ReqType::Demand;
    m.pf_source = type == ReqType::L2Prefetch  ? PfSource::L2
                  : type == ReqType::L1Prefetch ? PfSource::L1
                                                : PfSource::None;
    m.pf_cpu = cpu;
    if (done)
        m.waiters.push_back(Waiter{cpu, exclusive, type,
                                   std::move(done),
                                   std::move(done_tag)});
    mshrs_.emplace(line, std::move(m));

    memory_.fetchLine(line, when + params_.lookup_latency,
                      type != ReqType::Demand,
                      [this, line](Cycle arrival) { fill(line, arrival); },
                      ckpt::tag(ckpt::kL2Fill, line));
}

void
L2Cache::grant(unsigned cpu, Addr line, bool exclusive, ReqType type,
               Cycle ready, bool penalized, const Done &done)
{
    (void)type;
    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);
    if (e == nullptr) {
        // A previous waiter's grant ran its L1 fill synchronously and
        // the resulting writeback/resize evicted this line from the
        // set re-entrantly. Re-install it so the grant below keeps
        // the directory and inclusion consistent.
        TagEntry entry;
        entry.line = line;
        entry.valid = true;
        entry.segments =
            static_cast<std::uint8_t>(storedSegments(line));
        for (const TagEntry &victim : set.insert(entry))
            handleVictim(victim, ready);
        e = set.find(line);
    }
    cmpsim_assert(e != nullptr);

    if (exclusive) {
        if (e->owner != kNoOwner &&
            static_cast<unsigned>(e->owner) != cpu) {
            ++owner_retrievals_;
            ++invalidations_sent_;
            onchip_.reserve(ready, kCtrlBytes);
            if (l1_invalidate_)
                l1_invalidate_(static_cast<unsigned>(e->owner), line);
            e->dirty = true;
            ready += params_.owner_retrieval_latency;
        }
        bool invalidated_any = false;
        for (unsigned c = 0; c < params_.cores; ++c) {
            if (c != cpu && e->hasSharer(c)) {
                ++invalidations_sent_;
                onchip_.reserve(ready, kCtrlBytes);
                if (l1_invalidate_)
                    l1_invalidate_(c, line);
                invalidated_any = true;
            }
        }
        if (invalidated_any)
            ready += 2 * params_.onchip_hop_latency;
        e->sharers = 0;
        e->owner = static_cast<std::int8_t>(cpu);
    } else {
        if (e->owner != kNoOwner &&
            static_cast<unsigned>(e->owner) != cpu) {
            // Retrieve the modified copy; the old owner keeps a
            // shared copy (M -> S with writeback to L2).
            ++owner_retrievals_;
            const auto old_owner = static_cast<unsigned>(e->owner);
            onchip_.reserve(ready, kDataBytes);
            if (l1_downgrade_)
                l1_downgrade_(old_owner, line);
            e->dirty = true;
            e->addSharer(old_owner);
            e->owner = kNoOwner;
            ready += params_.owner_retrieval_latency;
        }
        e->addSharer(cpu);
        if (e->owner != kNoOwner &&
            static_cast<unsigned>(e->owner) == cpu)
            e->owner = kNoOwner; // regrab as shared after losing M
    }

    // Data response to the L1 (upgrades still get a control message).
    // The callback runs NOW with the future arrival timestamp: the
    // L1's state change must be atomic with this directory update, or
    // an invalidation arriving in the transfer window would be lost
    // and a stale copy installed afterwards (see the coherence
    // property tests). Cores still observe completion at at_l1.
    const unsigned bytes = kDataBytes;
    const Cycle at_l1 =
        onchip_.reserve(ready, bytes) + params_.onchip_hop_latency;
    if (journal_ != nullptr)
        journal_->onGranted(line, at_l1);
    if (done)
        done(at_l1, exclusive, penalized);
}

void
L2Cache::trainPrefetcher(unsigned cpu, Addr line, Cycle when)
{
    StridePrefetcher *pf = prefetchers_[cpu];
    if (!pf)
        return;
    for (Addr a : pf->observeMiss(line, allowedStartup(*pf))) {
        ++l2pf_generated_;
        request(cpu, a, false, ReqType::L2Prefetch, when, nullptr);
    }
}

void
L2Cache::fill(Addr line, Cycle arrival)
{
    faultSite("l2.fill");
    traceInstant("l2.fill", arrival, {{"line", line}});
    auto it = mshrs_.find(line);
    cmpsim_assert(it != mshrs_.end());
    Mshr m = std::move(it->second);
    mshrs_.erase(it);

    if (m.pf_source == PfSource::L2) {
        cmpsim_assert(pf_outstanding_[m.pf_cpu] > 0);
        --pf_outstanding_[m.pf_cpu];
    }

    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry entry;
    entry.line = line;
    entry.valid = true;
    entry.segments = static_cast<std::uint8_t>(storedSegments(line));
    entry.prefetch = m.prefetch_only;
    entry.pf_source = m.prefetch_only ? m.pf_source : PfSource::None;

    if (entry.prefetch) {
        if (entry.pf_source == PfSource::L2)
            ++pf_fills_l2_;
        else
            ++pf_fills_l1_;
        traceInstant("pf.fill", arrival,
                     {{"line", line},
                      {"source", entry.pf_source == PfSource::L2
                                     ? "l2"
                                     : "l1"}});
        if (miss_observer_) {
            miss_observer_(entry.pf_source == PfSource::L2
                               ? ReqType::L2Prefetch
                               : ReqType::L1Prefetch,
                           line);
        }
    }

    if (params_.verify_fill_roundtrip)
        verifyFillRoundTrip(line);

    for (const TagEntry &victim : set.insert(entry))
        handleVictim(victim, arrival);

    if (journal_ != nullptr) {
        const TagEntry *filled = set.find(line);
        const bool penal = params_.compressed && filled != nullptr &&
                           filled->segments < kSegmentsPerLine;
        const Cycle decomp_end =
            arrival + (penal ? params_.decompression_latency : 0);
        journal_->onL2Fill(line, arrival, decomp_end);
        // A prefetch fill with no coalesced waiters ends its journey
        // here: nobody will ever be granted this data.
        if (m.waiters.empty())
            journal_->onGranted(line, decomp_end);
    }

    // Grant every coalesced waiter, in arrival order.
    for (Waiter &w : m.waiters) {
        const bool penalized =
            params_.compressed &&
            set.find(line)->segments < kSegmentsPerLine;
        grant(w.cpu, line, w.exclusive, w.type,
              arrival + (penalized ? params_.decompression_latency : 0),
              penalized, w.done);
    }
}

void
L2Cache::verifyFillRoundTrip(Addr line)
{
    // BDI rides along as a second, structurally different codec: a bug
    // in the shared BitStream plumbing that FPC happens to mask still
    // gets caught here.
    static const BdiCompressor bdi;
    const LineData &data = values_.line(line);
    std::string why;
    if (!auditCompressorRoundTrip(values_.compressor(), data, why)) {
        cmpsim_panic("fill of line %#llx failed %s round-trip: %s",
                     static_cast<unsigned long long>(line),
                     values_.compressor().name().c_str(), why.c_str());
    }
    if (!auditCompressorRoundTrip(bdi, data, why)) {
        cmpsim_panic("fill of line %#llx failed bdi round-trip: %s",
                     static_cast<unsigned long long>(line), why.c_str());
    }
}

void
L2Cache::handleVictim(const TagEntry &victim, Cycle when)
{
    ++evictions_;
    bool dirty = victim.dirty;

    if (victim.owner != kNoOwner) {
        ++invalidations_sent_;
        if (!functional_mode_)
            onchip_.reserve(when, kDataBytes); // retrieve modified data
        if (l1_invalidate_ &&
            l1_invalidate_(static_cast<unsigned>(victim.owner),
                           victim.line)) {
            dirty = true;
        }
    }
    for (unsigned c = 0; c < params_.cores; ++c) {
        if (victim.hasSharer(c)) {
            ++invalidations_sent_;
            if (!functional_mode_)
                onchip_.reserve(when, kCtrlBytes);
            if (l1_invalidate_)
                l1_invalidate_(c, victim.line);
        }
    }

    if (victim.prefetch) {
        ++useless_pf_evicted_;
        traceInstant("pf.useless", when, {{"line", victim.line}});
        if (adaptive_)
            adaptive_->onUselessPrefetch();
    }

    if (dirty && !functional_mode_) {
        ++memory_writebacks_;
        memory_.writebackLine(victim.line, when);
    }
}

void
L2Cache::writeback(unsigned cpu, Addr line, Cycle when)
{
    ++l1_writebacks_;
    if (!functional_mode_)
        onchip_.reserve(when, kDataBytes);

    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);
    if (e == nullptr) {
        // The L2 copy is gone (concurrent eviction path); forward the
        // dirty data straight to memory to preserve it.
        if (!functional_mode_) {
            ++memory_writebacks_;
            memory_.writebackLine(line, when);
        }
        return;
    }
    if (e->owner != kNoOwner && static_cast<unsigned>(e->owner) == cpu)
        e->owner = kNoOwner;
    e->removeSharer(cpu);
    e->dirty = true;

    // The line's data changed; recompute its compressed footprint.
    const unsigned segs = storedSegments(line);
    if (segs != e->segments) {
        for (const TagEntry &victim : set.resize(line, segs))
            handleVictim(victim, when);
    }
}

void
L2Cache::sharerEvict(unsigned cpu, Addr line)
{
    TagEntry *e = sets_[setIndex(line)].find(line);
    if (e == nullptr)
        return;
    e->removeSharer(cpu);
    if (e->owner != kNoOwner && static_cast<unsigned>(e->owner) == cpu)
        e->owner = kNoOwner;
}

void
L2Cache::upgradeAtomic(unsigned cpu, Addr line)
{
    ++upgrade_requests_;
    TagEntry *e = sets_[setIndex(line)].find(line);
    if (e == nullptr)
        return;
    for (unsigned c = 0; c < params_.cores; ++c) {
        if (c != cpu && e->hasSharer(c)) {
            ++invalidations_sent_;
            if (l1_invalidate_)
                l1_invalidate_(c, line);
        }
    }
    e->sharers = 0;
    e->owner = static_cast<std::int8_t>(cpu);
}

bool
L2Cache::accessFunctional(unsigned cpu, Addr line, bool exclusive,
                          ReqType type)
{
    // Inclusive time: recursive prefetch fills re-enter this scope.
    CMPSIM_PROF_SCOPE("l2.functional");
    DecoupledSet &set = sets_[setIndex(line)];
    TagEntry *e = set.find(line);

    if (type == ReqType::Demand)
        ++demand_accesses_;

    if (e != nullptr) {
        if (type == ReqType::L2Prefetch) {
            ++l2pf_squashed_;
            return true;
        }
        if (type == ReqType::Demand) {
            ++demand_hits_;
            updateGcp(set, line, e->segments < kSegmentsPerLine);
            // Anchor stream-advance prefetches at the current cycle
            // (0 during warmup) so a mid-run fast-forward never
            // schedules into the past.
            if (e->prefetch)
                onPrefetchBitHit(cpu, *e, eq_.now());
        }
        set.touch(line); // invalidates e
        e = set.find(line);
        if (exclusive) {
            for (unsigned c = 0; c < params_.cores; ++c) {
                if (c != cpu && e->hasSharer(c) && l1_invalidate_)
                    l1_invalidate_(c, line);
            }
            if (e->owner != kNoOwner &&
                static_cast<unsigned>(e->owner) != cpu && l1_invalidate_)
                l1_invalidate_(static_cast<unsigned>(e->owner), line);
            e->sharers = 0;
            e->owner = static_cast<std::int8_t>(cpu);
        } else if (type != ReqType::L2Prefetch) {
            if (e->owner != kNoOwner &&
                static_cast<unsigned>(e->owner) != cpu) {
                if (l1_downgrade_)
                    l1_downgrade_(static_cast<unsigned>(e->owner), line);
                e->addSharer(static_cast<unsigned>(e->owner));
                e->owner = kNoOwner;
                e->dirty = true;
            }
            e->addSharer(cpu);
        }
        return true;
    }

    // Functional miss: instant fill.
    if (type == ReqType::Demand) {
        ++demand_misses_;
        if (adaptive_ && set.victimTagMatch(line) &&
            set.anyValidPrefetch()) {
            ++harmful_miss_flags_;
            adaptive_->onHarmfulPrefetch();
        }
    } else if (type == ReqType::L2Prefetch) {
        ++l2pf_issued_;
    }

    TagEntry entry;
    entry.line = line;
    entry.valid = true;
    entry.segments = static_cast<std::uint8_t>(storedSegments(line));
    entry.prefetch = type != ReqType::Demand;
    entry.pf_source = type == ReqType::L2Prefetch  ? PfSource::L2
                      : type == ReqType::L1Prefetch ? PfSource::L1
                                                    : PfSource::None;
    if (type == ReqType::Demand) {
        if (exclusive)
            entry.owner = static_cast<std::int8_t>(cpu);
        else
            entry.addSharer(cpu);
    }
    if (entry.prefetch) {
        if (entry.pf_source == PfSource::L2)
            ++pf_fills_l2_;
        else
            ++pf_fills_l1_;
    }

    if (params_.verify_fill_roundtrip)
        verifyFillRoundTrip(line);

    {
        // Victim handling with no bandwidth accounting.
        const bool saved = functional_mode_;
        functional_mode_ = true;
        for (const TagEntry &victim : set.insert(entry))
            handleVictim(victim, 0);
        functional_mode_ = saved;
    }

    if (type != ReqType::L2Prefetch) {
        StridePrefetcher *pf = prefetchers_[cpu];
        if (pf) {
            for (Addr a : pf->observeMiss(line, allowedStartup(*pf))) {
                ++l2pf_generated_;
                accessFunctional(cpu, a, false, ReqType::L2Prefetch);
            }
        }
    }
    return false;
}

std::uint64_t
L2Cache::effectiveBytes() const
{
    std::uint64_t lines = 0;
    for (const auto &set : sets_)
        lines += set.validCount();
    return lines * kLineBytes;
}

std::uint64_t
L2Cache::dataCapacityBytes() const
{
    return static_cast<std::uint64_t>(params_.sets) *
           params_.segment_budget * kSegmentBytes;
}

double
L2Cache::meanVictimTags() const
{
    std::uint64_t tags = 0;
    for (const auto &set : sets_)
        tags += set.victimTagCount();
    return static_cast<double>(tags) / static_cast<double>(sets_.size());
}

std::uint64_t
L2Cache::prefetchHits(PfSource src) const
{
    return src == PfSource::L2 ? pf_hits_l2_.value()
                               : pf_hits_l1_.value();
}

std::uint64_t
L2Cache::prefetchFills(PfSource src) const
{
    return src == PfSource::L2 ? pf_fills_l2_.value()
                               : pf_fills_l1_.value();
}

void
L2Cache::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.registerCounter(prefix + ".demand_accesses", &demand_accesses_);
    reg.registerCounter(prefix + ".demand_hits", &demand_hits_);
    reg.registerCounter(prefix + ".demand_misses", &demand_misses_);
    reg.registerCounter(prefix + ".partial_hits", &partial_hits_);
    reg.registerCounter(prefix + ".upgrades", &upgrade_requests_);
    reg.registerCounter(prefix + ".penalized_hits", &penalized_hits_);
    reg.registerCounter(prefix + ".pf_hits_l1", &pf_hits_l1_);
    reg.registerCounter(prefix + ".pf_hits_l2", &pf_hits_l2_);
    reg.registerCounter(prefix + ".pf_fills_l1", &pf_fills_l1_);
    reg.registerCounter(prefix + ".pf_fills_l2", &pf_fills_l2_);
    reg.registerCounter(prefix + ".l2pf_generated", &l2pf_generated_);
    reg.registerCounter(prefix + ".l2pf_issued", &l2pf_issued_);
    reg.registerCounter(prefix + ".l2pf_squashed", &l2pf_squashed_);
    reg.registerCounter(prefix + ".l2pf_dropped", &l2pf_dropped_);
    reg.registerCounter(prefix + ".useless_pf_evicted",
                        &useless_pf_evicted_);
    reg.registerCounter(prefix + ".harmful_miss_flags",
                        &harmful_miss_flags_);
    reg.registerCounter(prefix + ".evictions", &evictions_);
    reg.registerCounter(prefix + ".memory_writebacks",
                        &memory_writebacks_);
    reg.registerCounter(prefix + ".l1_writebacks", &l1_writebacks_);
    reg.registerCounter(prefix + ".invalidations", &invalidations_sent_);
    reg.registerCounter(prefix + ".owner_retrievals", &owner_retrievals_);
    reg.registerCounter(prefix + ".gcp_benefit_events",
                        &gcp_benefit_events_);
    reg.registerCounter(prefix + ".gcp_cost_events", &gcp_cost_events_);
    onchip_.registerStats(reg, prefix + ".onchip");
}

void
L2Cache::resetStats()
{
    demand_accesses_.reset();
    demand_hits_.reset();
    demand_misses_.reset();
    partial_hits_.reset();
    upgrade_requests_.reset();
    penalized_hits_.reset();
    pf_hits_l1_.reset();
    pf_hits_l2_.reset();
    pf_fills_l1_.reset();
    pf_fills_l2_.reset();
    l2pf_generated_.reset();
    l2pf_issued_.reset();
    l2pf_squashed_.reset();
    l2pf_dropped_.reset();
    useless_pf_evicted_.reset();
    harmful_miss_flags_.reset();
    evictions_.reset();
    memory_writebacks_.reset();
    l1_writebacks_.reset();
    invalidations_sent_.reset();
    owner_retrievals_.reset();
    gcp_benefit_events_.reset();
    gcp_cost_events_.reset();
    onchip_.resetStats();
    // Prefetches generated before the reset resolve (as issued /
    // squashed / dropped) after it; remember how many are in flight so
    // the pipeline audit's conservation equation still balances.
    l2pf_pending_at_reset_ = l2pf_in_network_;
}

void
L2Cache::registerAudits(InvariantRegistry &reg, const std::string &name)
{
    reg.add(name + ".set_integrity", [this](std::string &why) {
        for (unsigned i = 0; i < sets_.size(); ++i) {
            std::string detail;
            if (!auditDecoupledSet(sets_[i], !params_.compressed,
                                   detail)) {
                why = auditFormat("set %u: %s", i, detail.c_str());
                return false;
            }
        }
        return true;
    });

    reg.add(name + ".pf_mshr_accounting", [this](std::string &why) {
        std::uint64_t budget_sum = 0;
        for (unsigned c = 0; c < pf_outstanding_.size(); ++c) {
            if (pf_outstanding_[c] > params_.prefetch_outstanding) {
                why = auditFormat(
                    "core %u holds %u outstanding L2 prefetches, "
                    "budget %u",
                    c, pf_outstanding_[c], params_.prefetch_outstanding);
                return false;
            }
            budget_sum += pf_outstanding_[c];
        }
        std::uint64_t l2pf_mshrs = 0;
        // analyze-ok: unordered-iter integer count of matching entries; order cannot change the audit verdict
        for (const auto &[line, m] : mshrs_) {
            (void)line;
            l2pf_mshrs += m.pf_source == PfSource::L2 ? 1 : 0;
        }
        if (budget_sum != l2pf_mshrs) {
            why = auditFormat(
                "per-core outstanding-prefetch budgets sum to %llu but "
                "%llu L2-prefetch MSHRs are allocated",
                static_cast<unsigned long long>(budget_sum),
                static_cast<unsigned long long>(l2pf_mshrs));
            return false;
        }
        return true;
    });

    reg.add(name + ".demand_balance", [this](std::string &why) {
        // Demand lookups classify hit-or-miss in the same event that
        // counts the access, so this is an equality at any instant.
        const std::uint64_t resolved =
            demand_hits_.value() + demand_misses_.value();
        if (demand_accesses_.value() != resolved) {
            why = auditFormat(
                "demand_accesses %llu != demand_hits %llu + "
                "demand_misses %llu",
                static_cast<unsigned long long>(demand_accesses_.value()),
                static_cast<unsigned long long>(demand_hits_.value()),
                static_cast<unsigned long long>(demand_misses_.value()));
            return false;
        }
        return true;
    });

    reg.add(name + ".prefetch_pipeline", [this](std::string &why) {
        // Every generated L2 prefetch resolves as exactly one of
        // issued / squashed / dropped, or is still in the network.
        const std::uint64_t resolved = l2pf_issued_.value() +
                                       l2pf_squashed_.value() +
                                       l2pf_dropped_.value();
        const std::uint64_t generated =
            l2pf_generated_.value() + l2pf_pending_at_reset_;
        if (resolved + l2pf_in_network_ != generated) {
            why = auditFormat(
                "issued %llu + squashed %llu + dropped %llu + "
                "in-network %llu != generated %llu + %llu pending at "
                "reset",
                static_cast<unsigned long long>(l2pf_issued_.value()),
                static_cast<unsigned long long>(l2pf_squashed_.value()),
                static_cast<unsigned long long>(l2pf_dropped_.value()),
                static_cast<unsigned long long>(l2pf_in_network_),
                static_cast<unsigned long long>(l2pf_generated_.value()),
                static_cast<unsigned long long>(l2pf_pending_at_reset_));
            return false;
        }
        return true;
    });

    if (adaptive_ != nullptr) {
        reg.add(name + ".adaptive_feedback", [this](std::string &why) {
            // Controller events and L2 counters increment at the same
            // call sites, so each pair must agree exactly.
            const std::uint64_t hits =
                pf_hits_l1_.value() + pf_hits_l2_.value();
            if (adaptive_->usefulCount() != hits) {
                why = auditFormat(
                    "controller saw %llu useful prefetches but the L2 "
                    "counted %llu prefetch-bit hits",
                    static_cast<unsigned long long>(
                        adaptive_->usefulCount()),
                    static_cast<unsigned long long>(hits));
                return false;
            }
            if (adaptive_->uselessCount() != useless_pf_evicted_.value()) {
                why = auditFormat(
                    "controller saw %llu useless prefetches but the L2 "
                    "evicted %llu unreferenced prefetched lines",
                    static_cast<unsigned long long>(
                        adaptive_->uselessCount()),
                    static_cast<unsigned long long>(
                        useless_pf_evicted_.value()));
                return false;
            }
            if (adaptive_->harmfulCount() != harmful_miss_flags_.value()) {
                why = auditFormat(
                    "controller saw %llu harmful prefetches but the L2 "
                    "flagged %llu victim-tag misses",
                    static_cast<unsigned long long>(
                        adaptive_->harmfulCount()),
                    static_cast<unsigned long long>(
                        harmful_miss_flags_.value()));
                return false;
            }
            return true;
        });
    }
}

} // namespace cmpsim
