/**
 * @file
 * Private L1 cache (used for both the instruction and data sides):
 * 64 KB, 4-way, 64-byte lines, 3-cycle access, write-back and
 * write-allocate, always uncompressed (Section 2 keeps decompression
 * off the L1 hit path).
 *
 * Coherence: the L1 holds lines in M (dirty flag set) or S. Stores to
 * S lines request an upgrade from the L2 directory. The L2 reaches in
 * through invalidateLine()/downgradeLine() for inclusion and MSI
 * actions.
 *
 * Prefetching: an attached Power4-style stride prefetcher trains on
 * demand misses; its prefetch fills set the per-tag prefetch bit. When
 * adaptive prefetching is enabled, the set's tag array carries extra
 * victim tags (the paper's "four extra tags per set") so harmful
 * prefetches can be detected.
 */

#ifndef CMPSIM_CACHE_L1_CACHE_H
#define CMPSIM_CACHE_L1_CACHE_H

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/decoupled_set.h"
#include "src/cache/l2_cache.h"
#include "src/cache/request_types.h"
#include "src/ckpt/cont_tag.h"
#include "src/common/stats.h"
#include "src/prefetch/adaptive_controller.h"
#include "src/prefetch/stride_prefetcher.h"
#include "src/sim/event_queue.h"

namespace cmpsim {

class InvariantRegistry;

/** Static configuration of one L1. */
struct L1Params
{
    unsigned sets = 256;
    unsigned ways = 4;

    /** Extra victim-only tags per set (adaptive prefetching). */
    unsigned victim_tags = 0;

    Cycle hit_latency = 3;

    /** Outstanding misses (Table 1: 16 per processor). */
    unsigned mshrs = 16;

    /** Free MSHRs a prefetch must leave for demand traffic. */
    unsigned prefetch_headroom = 2;
};

/** One private L1 (I or D). */
class L1Cache
{
  public:
    /** Completion callback: cycle at which the access is done. */
    using Done = std::function<void(Cycle)>;

    L1Cache(EventQueue &eq, L2Cache &l2, unsigned cpu,
            const L1Params &params);

    void setPrefetcher(StridePrefetcher *pf) { prefetcher_ = pf; }
    void setAdaptiveController(AdaptivePrefetchController *c)
    {
        adaptive_ = c;
    }

    /** True when a demand access to @p addr can be issued now. */
    bool canAccept(Addr addr) const;

    /** Non-intrusive hit check (no LRU/stat side effects). */
    bool
    probeHit(Addr addr) const
    {
        return sets_[setIndex(lineAddr(addr))].find(lineAddr(addr)) !=
               nullptr;
    }

    /**
     * Timed demand access (load, store, or instruction fetch). The
     * optional @p tag is @p done's serializable description for
     * checkpointing (empty unless a checkpoint knob armed tagging).
     * @pre canAccept(addr).
     */
    void access(Addr addr, bool is_write, Cycle when, Done done,
                ckpt::Tag tag = {});

    /** Timed prefetch into this L1 (from its stride prefetcher). */
    void prefetchLine(Addr line, Cycle when);

    /** L2 inclusion/coherence: drop @p line. @return was dirty (M). */
    bool invalidateLine(Addr line);

    /** L2 coherence: demote an M copy to S (data already merged). */
    void downgradeLine(Addr line);

    /** Functional access for warmup. @return true on hit. */
    bool accessFunctional(Addr addr, bool is_write);

  private:
    bool accessFunctionalImpl(Addr addr, bool is_write);

  public:

    unsigned cpu() const { return cpu_; }
    const L1Params &params() const { return params_; }

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t prefetchesIssued() const { return pf_issued_.value(); }
    std::uint64_t prefetchHits() const { return pf_hits_.value(); }
    std::uint64_t decompAvoided() const { return decomp_avoided_.value(); }
    std::uint64_t outstanding() const
    {
        return static_cast<std::uint64_t>(mshrs_.size());
    }

    void registerStats(StatRegistry &reg, const std::string &prefix);
    void resetStats();

    /**
     * Register this cache's invariants under "<name>.*": per-set
     * structural integrity (full 8-segment charge — L1s never store
     * compressed), the MSHR limit, and access/hit/miss balance.
     */
    void registerAudits(InvariantRegistry &reg, const std::string &name);

    /** Test hook. */
    const DecoupledSet &setAt(unsigned index) const { return sets_[index]; }

    /** Stable identity used in checkpoint continuation tags
     *  (2*cpu + data side); assigned by CmpSystem::buildSystem. */
    void setCkptId(std::uint64_t id) { ckpt_id_ = id; }

  private:
    friend class CheckpointCodec; // serializes sets_/mshrs_/counters

    struct Waiter
    {
        bool is_write;
        Done done;
        ckpt::Tag tag; ///< serializable description of done
    };

    struct Mshr
    {
        std::vector<Waiter> waiters;
        bool prefetch_only = true;
        bool requested_exclusive = false;
    };

    unsigned
    setIndex(Addr line) const
    {
        return static_cast<unsigned>(lineNumber(line) % params_.sets);
    }

    /** Miss/upgrade path for a demand access. */
    void demandMiss(Addr line, bool is_write, bool upgrade, Cycle when,
                    Done done, ckpt::Tag tag);

    /** Schedule @p done at @p at — directly, or deferred through the
     *  lane mailbox during a parallel lane tick (seq assignment must
     *  happen in canonical core order at the barrier). */
    void scheduleDone(Cycle at, Done done, ckpt::Tag tag);

    /** Issue the L2 request for @p line — directly, or deferred
     *  through the lane mailbox (L2 reserves bank/bandwidth state
     *  synchronously inside request()). */
    void requestFromL2(Addr line, bool is_write, ReqType type,
                       Cycle when);

    /** Response from the L2 for @p line. */
    void fill(Addr line, Cycle at, bool exclusive, bool was_compressed);

    /** Evicted-line handling (writeback or sharer notification). */
    void handleVictim(const TagEntry &victim, Cycle when);

    /** First demand use of a prefetched line. */
    void onPrefetchBitHit(TagEntry &e, Cycle when);

    unsigned allowedStartup() const;

    EventQueue &eq_;
    L2Cache &l2_;
    unsigned cpu_;
    L1Params params_;
    std::uint64_t ckpt_id_ = 0; ///< see setCkptId()
    std::vector<DecoupledSet> sets_;
    std::unordered_map<Addr, Mshr> mshrs_;

    StridePrefetcher *prefetcher_ = nullptr;
    AdaptivePrefetchController *adaptive_ = nullptr;
    bool functional_mode_ = false;

    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter upgrades_;
    Counter writebacks_;
    Counter pf_issued_;
    Counter pf_fills_;
    Counter pf_hits_;
    Counter pf_squashed_;
    Counter pf_dropped_;
    Counter pf_useless_evicted_;
    Counter harmful_miss_flags_;
    Counter partial_hits_;
    Counter invalidations_received_;
    Counter decomp_avoided_;
};

} // namespace cmpsim

#endif // CMPSIM_CACHE_L1_CACHE_H
