/**
 * @file
 * One set of the decoupled variable-segment cache [Alameldeen & Wood,
 * ISCA 2004], the structure the paper uses for the compressed shared
 * L2 (Section 2): more address tags than uncompressed data capacity,
 * with the data space managed as a pool of 8-byte segments.
 *
 * The same structure expresses every cache in cmpsim:
 *  - compressed L2 set:   8 tags, 32-segment budget (4 uncompressed
 *    lines of data space; compression fits up to 8 lines);
 *  - uncompressed L2 set: 8 (+victim) tags, 64-segment budget, every
 *    line charged 8 segments;
 *  - L1 set:              4 (+victim) tags, 32-segment budget.
 *
 * Tags whose data has been evicted retain the line address as *victim
 * tags* in LRU-stack order; the adaptive prefetcher (Section 3) scans
 * them on misses to detect harmful prefetches.
 */

#ifndef CMPSIM_CACHE_DECOUPLED_SET_H
#define CMPSIM_CACHE_DECOUPLED_SET_H

#include <vector>

#include "src/cache/tag_entry.h"
#include "src/common/log.h"

namespace cmpsim {

/**
 * One set: an LRU stack of tags over a shared segment pool.
 *
 * Structural invariants (audited by auditDecoupledSet() in
 * src/audit/audits.h):
 *  - valid entries form a contiguous MRU prefix of the stack; victim
 *    tags and empty tags always sit behind every valid entry;
 *  - the sum of valid entries' segment counts equals usedSegments()
 *    and never exceeds segmentBudget();
 *  - no two valid entries share a line address.
 */
class DecoupledSet
{
  public:
    /**
     * @param tags number of address tags (valid + victim)
     * @param segment_budget data space in 8-byte segments
     */
    DecoupledSet(unsigned tags, unsigned segment_budget);

    /** Find the valid entry for @p line, or nullptr. Does not touch LRU. */
    TagEntry *find(Addr line);
    const TagEntry *find(Addr line) const;

    /** Move @p line's valid entry to the MRU position.
     *  @warning invalidates every TagEntry pointer into this set
     *  (the LRU stack is reordered in place); re-find() after. */
    void touch(Addr line);

    /**
     * Insert @p entry (valid, with a segment count), evicting LRU
     * valid lines until a tag and enough segments are free.
     *
     * @return the evicted entries, in eviction order; each leaves a
     *         victim tag behind.
     * @pre no valid entry for entry.line exists in the set.
     */
    std::vector<TagEntry> insert(const TagEntry &entry);

    /**
     * Change the segment count of the valid entry for @p line (a
     * write changed its compressed size). May evict other LRU lines
     * to make room; never evicts @p line itself.
     */
    std::vector<TagEntry> resize(Addr line, unsigned segments);

    /**
     * Invalidate @p line's valid entry, leaving a victim tag.
     * @return the entry's state just before invalidation (valid=true),
     *         or an empty entry when the line was not present.
     */
    TagEntry invalidate(Addr line);

    /**
     * True when any *invalid* tag (victim tag) matches @p line — the
     * adaptive prefetcher's harmful-prefetch probe.
     */
    bool victimTagMatch(Addr line) const;

    /** True when any valid entry has its prefetch bit set. */
    bool anyValidPrefetch() const;

    /** Sum of segments over valid entries. */
    unsigned usedSegments() const;

    /** Number of valid entries. */
    unsigned validCount() const;

    /** Number of victim tags currently held. */
    unsigned victimTagCount() const;

    unsigned tagCount() const { return static_cast<unsigned>(entries_.size()); }
    unsigned segmentBudget() const { return segment_budget_; }

    /** MRU-to-LRU entry view (tests, stats, compression ratio). */
    const std::vector<TagEntry> &entries() const { return entries_; }

    /**
     * Mutable entry access for audit-test fault injection ONLY:
     * bypasses all segment accounting, so any real caller corrupts
     * the set. Production code must use insert()/resize()/invalidate().
     */
    TagEntry &entryForTest(unsigned i) { return entries_.at(i); }

    /** The LRU-stack depth (0 = MRU) of @p line among valid entries. */
    int validStackDepth(Addr line) const;

  private:
    friend class CheckpointCodec; // restores the tag stack wholesale

    /** Evict the LRU-most valid entry; returns it and leaves a victim
     *  tag at the LRU end of the stack. */
    TagEntry evictLruValid();

    /**
     * Invalidate the valid entry at @p it, leaving a victim tag, and
     * rotate it just behind the remaining valid entries so valids stay
     * a contiguous MRU prefix (the audited stack-order invariant).
     */
    void retireTag(std::vector<TagEntry>::iterator it);

    std::vector<TagEntry> entries_; // front = MRU, back = LRU
    unsigned segment_budget_;
    unsigned used_segments_ = 0;
};

} // namespace cmpsim

#endif // CMPSIM_CACHE_DECOUPLED_SET_H
