#include "src/compression/bitstream.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace cmpsim {
namespace {

TEST(BitStreamTest, PutGetSingleField)
{
    BitStream bs;
    bs.put(0b101, 3);
    EXPECT_EQ(bs.sizeBits(), 3u);
    BitReader rd(bs);
    EXPECT_EQ(rd.get(3), 0b101u);
}

TEST(BitStreamTest, ValueMaskedToWidth)
{
    BitStream bs;
    bs.put(0xff, 4); // only low 4 bits kept
    BitReader rd(bs);
    EXPECT_EQ(rd.get(4), 0xfu);
}

TEST(BitStreamTest, CrossWordBoundary)
{
    BitStream bs;
    bs.put(0x1234567890abcdefULL, 60);
    bs.put(0xabcd, 16); // spans the 64-bit boundary
    BitReader rd(bs);
    EXPECT_EQ(rd.get(60), 0x1234567890abcdefULL & ((1ULL << 60) - 1));
    EXPECT_EQ(rd.get(16), 0xabcdu);
}

TEST(BitStreamTest, FullWordPut)
{
    BitStream bs;
    bs.put(0xdeadbeefcafebabeULL, 64);
    bs.put(0x1122334455667788ULL, 64);
    BitReader rd(bs);
    EXPECT_EQ(rd.get(64), 0xdeadbeefcafebabeULL);
    EXPECT_EQ(rd.get(64), 0x1122334455667788ULL);
}

TEST(BitStreamTest, ZeroWidthPutIsNoop)
{
    BitStream bs;
    bs.put(0xff, 0);
    EXPECT_EQ(bs.sizeBits(), 0u);
}

TEST(BitStreamTest, ClearResets)
{
    BitStream bs;
    bs.put(7, 3);
    bs.clear();
    EXPECT_EQ(bs.sizeBits(), 0u);
    bs.put(1, 1);
    BitReader rd(bs);
    EXPECT_EQ(rd.get(1), 1u);
}

TEST(BitStreamTest, ReaderTracksRemaining)
{
    BitStream bs;
    bs.put(0, 10);
    BitReader rd(bs);
    EXPECT_EQ(rd.remaining(), 10u);
    rd.get(4);
    EXPECT_EQ(rd.remaining(), 6u);
}

TEST(BitStreamTest, RandomizedRoundTrip)
{
    Random rng(12345);
    for (int trial = 0; trial < 200; ++trial) {
        BitStream bs;
        std::vector<std::pair<std::uint64_t, unsigned>> fields;
        unsigned total = 0;
        while (total < 500) {
            const unsigned width =
                static_cast<unsigned>(rng.inRange(1, 64));
            std::uint64_t v = rng.next();
            if (width < 64)
                v &= (1ULL << width) - 1;
            fields.emplace_back(v, width);
            bs.put(v, width);
            total += width;
        }
        ASSERT_EQ(bs.sizeBits(), total);
        BitReader rd(bs);
        for (const auto &[v, width] : fields)
            ASSERT_EQ(rd.get(width), v);
    }
}

} // namespace
} // namespace cmpsim
