/**
 * @file
 * Property-based coherence and structural invariant checks: drive a
 * multi-core L1/L2 hierarchy with randomized traffic (timed and
 * functional), then assert the MSI/inclusion invariants the protocol
 * must maintain at every quiescent point.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache/l1_cache.h"
#include "src/common/random.h"
#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

class CoherenceProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static constexpr unsigned kCores = 4;

    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<L2Cache> l2;
    std::vector<std::unique_ptr<L1Cache>> l1s;
    unsigned l2_sets = 32;

    void
    SetUp() override
    {
        MemoryParams mp;
        mem = std::make_unique<MainMemory>(eq, values, mp);
        L2Params p2;
        p2.sets = l2_sets;
        p2.banks = 4;
        p2.cores = kCores;
        p2.compressed = true;
        p2.segment_budget = 32;
        l2 = std::make_unique<L2Cache>(eq, values, *mem, p2);
        L1Params p1;
        p1.sets = 4;
        p1.victim_tags = 2;
        for (unsigned c = 0; c < kCores; ++c)
            l1s.push_back(std::make_unique<L1Cache>(eq, *l2, c, p1));
        l2->setL1Invalidator([this](unsigned cpu, Addr line) {
            return l1s[cpu]->invalidateLine(line);
        });
        l2->setL1Downgrader([this](unsigned cpu, Addr line) {
            l1s[cpu]->downgradeLine(line);
        });
    }

    /** Check every invariant the protocol guarantees at quiescence. */
    void
    checkInvariants()
    {
        // Collect L1 contents.
        struct L1Line
        {
            unsigned cpu;
            bool dirty;
        };
        std::unordered_map<Addr, std::vector<L1Line>> l1_lines;
        for (unsigned c = 0; c < kCores; ++c) {
            for (unsigned s = 0; s < 4; ++s) {
                for (const auto &e : l1s[c]->setAt(s).entries()) {
                    if (e.valid)
                        l1_lines[e.line].push_back({c, e.dirty});
                }
            }
        }

        for (const auto &[line, holders] : l1_lines) {
            // Single-writer: at most one dirty (M) copy, and if one
            // exists it is the only copy.
            unsigned dirty = 0;
            for (const auto &h : holders)
                dirty += h.dirty;
            ASSERT_LE(dirty, 1u) << std::hex << line;
            if (dirty == 1) {
                ASSERT_EQ(holders.size(), 1u) << std::hex << line;
            }

            // Inclusion: the L2 holds every line an L1 holds.
            const TagEntry *e =
                l2->setAt(l2->setIndexOf(line)).find(line);
            ASSERT_NE(e, nullptr) << std::hex << line;

            // Directory agreement.
            for (const auto &h : holders) {
                if (h.dirty) {
                    ASSERT_EQ(e->owner,
                              static_cast<std::int8_t>(h.cpu));
                } else {
                    ASSERT_TRUE(e->hasSharer(h.cpu) ||
                                e->owner ==
                                    static_cast<std::int8_t>(h.cpu))
                        << std::hex << line;
                }
            }
        }

        // L2 structural invariants: segment accounting and budget.
        for (unsigned s = 0; s < l2_sets; ++s) {
            const auto &set = l2->setAt(s);
            unsigned used = 0;
            for (const auto &e : set.entries()) {
                if (e.valid)
                    used += e.segments;
            }
            ASSERT_EQ(used, set.usedSegments());
            ASSERT_LE(used, 32u);
        }
    }
};

TEST_P(CoherenceProperty, RandomTimedTrafficKeepsInvariants)
{
    Random rng(GetParam());
    Cycle when = 0;
    int outstanding = 0;
    for (int i = 0; i < 3000; ++i) {
        const unsigned cpu = static_cast<unsigned>(rng.below(kCores));
        // A small shared space ensures heavy conflict and sharing.
        const Addr addr = rng.below(96) << kLineShift;
        const bool write = rng.chance(0.35);
        if (l1s[cpu]->canAccept(addr)) {
            ++outstanding;
            l1s[cpu]->access(addr, write, when,
                             [&outstanding](Cycle) { --outstanding; });
        }
        when += rng.below(20);
        if (i % 64 == 0) {
            eq.drain();
            when = std::max(when, eq.now());
            checkInvariants();
        }
    }
    eq.drain();
    EXPECT_EQ(outstanding, 0);
    checkInvariants();
}

TEST_P(CoherenceProperty, RandomFunctionalTrafficKeepsInvariants)
{
    Random rng(GetParam() * 31 + 7);
    for (int i = 0; i < 5000; ++i) {
        const unsigned cpu = static_cast<unsigned>(rng.below(kCores));
        const Addr addr = rng.below(96) << kLineShift;
        l1s[cpu]->accessFunctional(addr, rng.chance(0.35));
        if (i % 256 == 0)
            checkInvariants();
    }
    checkInvariants();
}

TEST_P(CoherenceProperty, MixedTimedAndPrefetchTraffic)
{
    PrefetcherParams pp;
    pp.startup_prefetches = 6;
    std::vector<std::unique_ptr<StridePrefetcher>> pfs;
    for (unsigned c = 0; c < kCores; ++c) {
        pfs.push_back(std::make_unique<StridePrefetcher>(pp));
        l1s[c]->setPrefetcher(pfs[c].get());
        l2->setPrefetcher(c, pfs[c].get());
    }
    Random rng(GetParam() * 131 + 3);
    Cycle when = 0;
    for (int i = 0; i < 2000; ++i) {
        const unsigned cpu = static_cast<unsigned>(rng.below(kCores));
        // Mix strided walks (trains the prefetchers) with random.
        const Addr addr = rng.chance(0.5)
                              ? (1000 + static_cast<Addr>(i % 500))
                                    << kLineShift
                              : rng.below(64) << kLineShift;
        if (l1s[cpu]->canAccept(addr))
            l1s[cpu]->access(addr, rng.chance(0.2), when, [](Cycle) {});
        when += rng.below(12);
        if (i % 128 == 0) {
            eq.drain();
            when = std::max(when, eq.now());
            checkInvariants();
        }
    }
    eq.drain();
    checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21));

} // namespace
} // namespace cmpsim
