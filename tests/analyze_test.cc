/**
 * @file
 * cmpsim_analyze test suite (DESIGN.md §11): the lexer's token/
 * suppression guarantees, every checker against a seeded-bad snippet
 * and its fixed form, the suppression grammar (reason mandatory,
 * unknown ids rejected), the cmpsim.analyze.v1 JSON schema, and a
 * self-scan proving the shipped tree is clean with every suppression
 * carrying a reason.
 *
 * Snippets are embedded rather than read from fixture files so each
 * test shows exactly the code shape it legislates about.
 */

#include "tools/analyze/checker.h"
#include "tools/analyze/lexer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cmpsim::analyze {
namespace {

AnalysisResult
analyze(const std::vector<std::pair<std::string, std::string>> &files,
        const AnalysisContext &ctx = {})
{
    Corpus corpus;
    for (const auto &[path, text] : files)
        corpus.files.push_back(lexSource(path, text));
    return runAnalysis(corpus, ctx);
}

/** Findings of one check id, as "file:line" strings. */
std::vector<std::string>
where(const AnalysisResult &r, const std::string &check)
{
    std::vector<std::string> out;
    for (const Finding &f : r.findings) {
        if (f.check == check)
            out.push_back(f.file + ":" + std::to_string(f.line));
    }
    return out;
}

// ------------------------------------------------------------- lexer

TEST(LexerTest, CommentsAndStringsNeverYieldIdentifiers)
{
    const auto f = lexSource("src/sim/x.cc",
                             "// rand() in a comment\n"
                             "/* time( in a block */\n"
                             "const char *s = \"rand(\";\n"
                             "int keep;\n");
    for (const Token &t : f.tokens) {
        if (t.kind == TokKind::Ident) {
            EXPECT_NE(t.text, "rand");
            EXPECT_NE(t.text, "time");
        }
    }
    // The string literal survives as a String token with unquoted body.
    bool saw_string = false;
    for (const Token &t : f.tokens)
        saw_string |= t.kind == TokKind::String && t.text == "rand(";
    EXPECT_TRUE(saw_string);
}

TEST(LexerTest, TokensCarryLineNumbersThroughMultilineConstructs)
{
    const auto f = lexSource("src/sim/x.cc",
                             "/* line 1\n   line 2 */ int a;\n"
                             "R\"(raw\nstring)\" int b;\n");
    int line_a = 0, line_b = 0;
    for (const Token &t : f.tokens) {
        if (t.kind == TokKind::Ident && t.text == "a")
            line_a = t.line;
        if (t.kind == TokKind::Ident && t.text == "b")
            line_b = t.line;
    }
    EXPECT_EQ(line_a, 2);
    EXPECT_EQ(line_b, 4); // raw string spans lines 3-4
}

TEST(LexerTest, MultiCharOperatorsAreSingleTokens)
{
    const auto f = lexSource("src/sim/x.cc", "if (e == nullptr) e->x;");
    bool saw_eq_eq = false, saw_arrow = false, saw_plain_eq = false;
    for (const Token &t : f.tokens) {
        if (t.kind != TokKind::Punct)
            continue;
        saw_eq_eq |= t.text == "==";
        saw_arrow |= t.text == "->";
        saw_plain_eq |= t.text == "=";
    }
    EXPECT_TRUE(saw_eq_eq);
    EXPECT_TRUE(saw_arrow);
    EXPECT_FALSE(saw_plain_eq) << "`==` must not split into `=` `=`";
}

TEST(LexerTest, PreprocessorDirectivesAreSkipped)
{
    const auto f = lexSource("src/sim/x.cc",
                             "#include <sys/time.h>\n"
                             "#define T time(nullptr)\n"
                             "int x;\n");
    for (const Token &t : f.tokens)
        EXPECT_FALSE(t.kind == TokKind::Ident && t.text == "time");
}

TEST(LexerTest, GrammarExamplesInDocsAreNotSuppressions)
{
    const auto f = lexSource("src/sim/x.cc",
                             "// analyze-ok: <check-id> <reason>\n"
                             "// analyze-ok: ...\n"
                             "// analyze-ok: real-id a real reason\n");
    ASSERT_EQ(f.suppressions.size(), 1u);
    EXPECT_EQ(f.suppressions[0].check_id, "real-id");
    EXPECT_EQ(f.suppressions[0].reason, "a real reason");
}

// ----------------------------------------------------- nondet-source

TEST(NondetSourceTest, FiresOnBannedCallsAndTypes)
{
    const auto r = analyze(
        {{"src/sim/bad.cc",
          "void f() {\n"
          "    int a = rand();\n"
          "    std::mt19937 gen;\n"
          "    auto t = std::time(nullptr);\n"
          "}\n"}});
    EXPECT_EQ(where(r, "nondet-source").size(), 3u);
}

TEST(NondetSourceTest, QuietOnMembersUserQualifiersAndSeededRandom)
{
    const auto r = analyze(
        {{"src/sim/good.cc",
          "void f(Clock &c, Random &rng) {\n"
          "    auto t = c.time();\n"          // member, not ::time
          "    auto u = sim::time(3);\n"      // user-qualified
          "    auto v = rng.uniform(0, 8);\n" // the seeded API
          "}\n"}});
    EXPECT_TRUE(where(r, "nondet-source").empty());
}

// ----------------------------------------------------- unordered-iter

TEST(UnorderedIterTest, FiresOnRangeForAndBeginOverUnordered)
{
    const auto r = analyze(
        {{"src/cache/bad.cc",
          "std::unordered_map<int, int> table_;\n"
          "void f() {\n"
          "    for (const auto &kv : table_) { use(kv); }\n"
          "    std::for_each(table_.begin(), table_.end(), g);\n"
          "}\n"}});
    EXPECT_EQ(where(r, "unordered-iter").size(), 2u);
}

TEST(UnorderedIterTest, QuietOnSortedCopyIdiomAndReceiverPositions)
{
    const auto r = analyze(
        {{"src/cache/good.cc",
          "std::unordered_map<int, Mshr> table_;\n"
          "void f() {\n"
          "    for (int k : sortedKeys(table_)) { use(k); }\n"
          "    for (const Waiter &w : m.waiters) { use(w); }\n"
          "}\n"}});
    EXPECT_TRUE(where(r, "unordered-iter").empty());
}

TEST(UnorderedIterTest, DeclarationsOutsideSrcScopeTheNamesNotTheScan)
{
    // The container is declared in a header under src/ but iterated in
    // bench/: the invariant is scoped to src/, so bench stays quiet.
    const auto r = analyze(
        {{"src/cache/t.h", "std::unordered_map<int, int> table_;\n"},
         {"bench/b.cc",
          "void f() { for (auto &kv : table_) { use(kv); } }\n"}});
    EXPECT_TRUE(where(r, "unordered-iter").empty());
}

// ---------------------------------------------------- tagentry-stale

TEST(TagEntryTest, FiresOnUseAcrossReorderingCall)
{
    const auto r = analyze(
        {{"src/cache/bad.cc",
          "void f(Set &set) {\n"
          "    TagEntry *e = set.find(line);\n"
          "    set.touch(line);\n"
          "    e->dirty = true;\n"
          "}\n"}});
    const auto hits = where(r, "tagentry-stale");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], "src/cache/bad.cc:4");
}

TEST(TagEntryTest, QuietOnReFindIdiom)
{
    const auto r = analyze(
        {{"src/cache/good.cc",
          "void f(Set &set) {\n"
          "    TagEntry *e = set.find(line);\n"
          "    set.touch(line);\n"
          "    e = set.find(line);\n"
          "    e->dirty = true;\n"
          "}\n"}});
    EXPECT_TRUE(where(r, "tagentry-stale").empty());
}

TEST(TagEntryTest, ComparisonIsNotAReassignment)
{
    // `e == nullptr` must not freshen the binding: only `e = ...`
    // (a re-find) does.
    const auto r = analyze(
        {{"src/cache/bad.cc",
          "void f(Set &set) {\n"
          "    TagEntry *e = set.find(line);\n"
          "    set.insert(entry);\n"
          "    if (e == nullptr) return;\n"
          "    e->dirty = true;\n"
          "}\n"}});
    EXPECT_EQ(where(r, "tagentry-stale").size(), 1u);
}

TEST(TagEntryTest, ScopeExitKillsBindings)
{
    const auto r = analyze(
        {{"src/cache/good.cc",
          "void f(Set &set) {\n"
          "    { TagEntry *e = set.find(line); use(e); }\n"
          "    set.touch(line);\n"
          "    { TagEntry *e = set.find(line); e->dirty = true; }\n"
          "}\n"}});
    EXPECT_TRUE(where(r, "tagentry-stale").empty());
}

// ----------------------------------------------------- knob-registry

AnalysisContext
knobCtx()
{
    AnalysisContext ctx;
    ctx.readme = "| variable | default | meaning |\n"
                 "|---|---|---|\n"
                 "| `CMPSIM_FOO` | 1 | documented and read |\n"
                 "| `CMPSIM_STALE` | — | documented, read nowhere |\n"
                 "| `CMPSIM_BUILDKNOB` | — | cmake cache variable |\n";
    ctx.cmake = "set(CMPSIM_BUILDKNOB \"\" CACHE STRING \"...\")\n";
    return ctx;
}

TEST(KnobRegistryTest, FiresOnUndocumentedAndStaleKnobs)
{
    const auto r = analyze(
        {{"src/core_api/k.cc",
          "void f() {\n"
          "    getenv(\"CMPSIM_FOO\");\n"
          "    getenv(\"CMPSIM_BAR\");\n" // undocumented
          "}\n"}},
        knobCtx());
    const auto hits = where(r, "knob-registry");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], "README.md:4");         // CMPSIM_STALE row
    EXPECT_EQ(hits[1], "src/core_api/k.cc:3"); // CMPSIM_BAR read
}

TEST(KnobRegistryTest, CmakeKnobsSatisfyTheReverseCheck)
{
    const auto r = analyze(
        {{"src/core_api/k.cc", "void f() { getenv(\"CMPSIM_FOO\"); }\n"}},
        knobCtx());
    // CMPSIM_BUILDKNOB is documented and unread, but appears in the
    // CMake context, so only CMPSIM_STALE fires.
    const auto hits = where(r, "knob-registry");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], "README.md:4");
}

TEST(KnobRegistryTest, ConfigKnobNeedsValidateCoverage)
{
    AnalysisContext ctx;
    ctx.readme = "| `CMPSIM_DRAM` | `fixed` | backend |\n";
    const auto bad = analyze(
        {{"src/core_api/k.cc", "void f() { getenv(\"CMPSIM_DRAM\"); }\n"}},
        ctx);
    EXPECT_EQ(where(bad, "knob-registry").size(), 1u);

    const auto good = analyze(
        {{"src/core_api/k.cc", "void f() { getenv(\"CMPSIM_DRAM\"); }\n"},
         {"src/dram/v.cc",
          "void v() { reject(\"config.dram.banks\", \"...\"); }\n"}},
        ctx);
    EXPECT_TRUE(where(good, "knob-registry").empty());
}

TEST(KnobRegistryTest, SkipsEntirelyWithoutAReadme)
{
    const auto r = analyze(
        {{"src/core_api/k.cc", "void f() { getenv(\"CMPSIM_BAR\"); }\n"}});
    EXPECT_TRUE(where(r, "knob-registry").empty());
}

// -------------------------------------------------------- fault-site

TEST(FaultSiteTest, FiresOnUntestedAndUndocumentedSites)
{
    AnalysisContext ctx;
    ctx.tests_blob = "faultSite(\"l2.fill\");\n";
    ctx.design = "## 8. Failure model\nsites: `l2.fill`\n## 9. Next\n";
    const auto r = analyze(
        {{"src/dram/d.cc", "void f() { faultSite(\"dram.access\"); }\n"}},
        ctx);
    // Both legs fire for the same probe: untested and undocumented.
    EXPECT_EQ(where(r, "fault-site").size(), 2u);
}

TEST(FaultSiteTest, PlanStringsAndSection8EntriesSatisfyCoverage)
{
    AnalysisContext ctx;
    // A plan string with trailing fields counts as injection.
    ctx.tests_blob = "FaultPlan::parse(\"dram.access:2:all\");\n";
    ctx.design = "## 8. Failure model\nsites: `dram.access`\n";
    const auto r = analyze(
        {{"src/dram/d.cc", "void f() { faultSite(\"dram.access\"); }\n"}},
        ctx);
    EXPECT_TRUE(where(r, "fault-site").empty());
}

TEST(FaultSiteTest, OnlySection8IsConsulted)
{
    AnalysisContext ctx;
    ctx.tests_blob = "faultSite(\"x.y\");\n";
    // The site is named in §10 but not in §8's failure model: the
    // doc leg must still fire (this is the dram.access drift the
    // check was built to catch).
    ctx.design = "## 8. Failure model\nsites: `l2.fill`\n"
                 "## 10. DRAM\nthe `x.y` probe\n";
    const auto r = analyze(
        {{"src/dram/d.cc", "void f() { faultSite(\"x.y\"); }\n"}}, ctx);
    EXPECT_EQ(where(r, "fault-site").size(), 1u);
}

// ------------------------------------------------------ shared-state

TEST(SharedStateTest, FiresOnMutableStaticsAndGlobals)
{
    const auto r = analyze(
        {{"src/sim/bad.cc",
          "int hit_count = 0;\n"            // namespace-scope global
          "namespace {\n"
          "thread_local bool armed = false;\n"
          "}\n"
          "void f() { static int calls = 0; ++calls; }\n"}});
    EXPECT_EQ(where(r, "shared-state").size(), 3u);
}

TEST(SharedStateTest, QuietOnConstAtomicAndFunctionDecls)
{
    const auto r = analyze(
        {{"src/sim/good.cc",
          "constexpr int kLimit = 8;\n"
          "const char *const kName = \"x\";\n"
          "static std::atomic<int> live_count{0};\n"
          "static int helper(int);\n" // declaration, not state
          "void f() { int local = 0; use(local); }\n"}});
    EXPECT_TRUE(where(r, "shared-state").empty());
}

TEST(SharedStateTest, ScopedToKernelDirectories)
{
    // The same mutable static outside src/sim|cache|dram is allowed:
    // the sharded-kernel refactor only touches those directories.
    const auto r = analyze(
        {{"src/core_api/ok.cc", "static int call_count = 0;\n"}});
    EXPECT_TRUE(where(r, "shared-state").empty());
}

TEST(SharedStateTest, ClassMembersAreNotGlobals)
{
    const auto r = analyze(
        {{"src/sim/good.cc",
          "class EventQueue {\n"
          "    int size_ = 0;\n"
          "    std::vector<Event> heap_;\n"
          "};\n"}});
    EXPECT_TRUE(where(r, "shared-state").empty());
}

// ------------------------------------------------------- suppression

TEST(SuppressionTest, SameLineAndLineAboveSuppressWithReason)
{
    const auto r = analyze(
        {{"src/sim/s.cc",
          "void f() {\n"
          "    int a = rand(); // analyze-ok: nondet-source unit-test seed path\n"
          "    // analyze-ok: nondet-source second form, reason here\n"
          "    int b = rand();\n"
          "}\n"}});
    EXPECT_TRUE(r.findings.empty());
    ASSERT_EQ(r.suppressed.size(), 2u);
    EXPECT_EQ(r.suppressed[0].reason, "unit-test seed path");
}

TEST(SuppressionTest, MissingReasonIsItselfAFindingAndDoesNotSuppress)
{
    const auto r = analyze(
        {{"src/sim/s.cc",
          "void f() {\n"
          "    int a = rand(); // analyze-ok: nondet-source\n"
          "}\n"}});
    // Both the original finding and the reasonless suppression fire.
    EXPECT_EQ(where(r, "nondet-source").size(), 1u);
    EXPECT_EQ(where(r, "suppression").size(), 1u);
    EXPECT_TRUE(r.suppressed.empty());
}

TEST(SuppressionTest, UnknownCheckIdIsAFinding)
{
    const auto r = analyze(
        {{"src/sim/s.cc",
          "// analyze-ok: no-such-check some reason\nint x;\n"}});
    ASSERT_EQ(where(r, "suppression").size(), 1u);
    EXPECT_NE(r.findings[0].message.find("no-such-check"),
              std::string::npos);
}

TEST(SuppressionTest, SuppressionOnlyCoversItsOwnLineAndCheck)
{
    const auto r = analyze(
        {{"src/sim/s.cc",
          "void f() {\n"
          "    int a = rand(); // analyze-ok: unordered-iter wrong check\n"
          "    int b = rand();\n"
          "}\n"}});
    // Wrong check id on line 2, nothing on line 3: both findings stand.
    EXPECT_EQ(where(r, "nondet-source").size(), 2u);
}

// -------------------------------------------------------------- JSON

TEST(JsonTest, SchemaShapeAndOrderingAreStable)
{
    const auto r = analyze(
        {{"src/sim/z.cc", "void f() { int a = rand(); }\n"},
         {"src/sim/a.cc", "void g() { int b = rand(); }\n"}});
    const std::string json = toJson(r);

    EXPECT_NE(json.find("\"schema\": \"cmpsim.analyze.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\": ["), std::string::npos);
    // Findings sort by (file, line, check): a.cc before z.cc even
    // though z.cc was lexed first.
    EXPECT_LT(json.find("src/sim/a.cc"), json.find("src/sim/z.cc"));
    // Every finding row carries the full field set.
    EXPECT_NE(json.find("\"check\": \"nondet-source\", \"file\": "
                        "\"src/sim/a.cc\", \"line\": 1, \"message\": "),
              std::string::npos);
}

TEST(JsonTest, MessagesAreEscaped)
{
    AnalysisResult r;
    r.findings.push_back({"x", "f.cc", 1, "quote \" backslash \\ tab \t"});
    const std::string json = toJson(r);
    EXPECT_NE(json.find("quote \\\" backslash \\\\ tab \\t"),
              std::string::npos);
}

// --------------------------------------------------------- self-scan

/** Walk the shipped tree exactly like cmpsim_analyze's driver. */
AnalysisResult
scanRepo()
{
    namespace fs = std::filesystem;
    const fs::path root = CMPSIM_REPO_ROOT;

    auto slurp = [](const fs::path &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };

    Corpus corpus;
    std::vector<fs::path> files;
    for (const char *dir : {"src", "tools", "bench", "examples"}) {
        if (!fs::is_directory(root / dir))
            continue;
        for (const auto &e : fs::recursive_directory_iterator(root / dir)) {
            const std::string ext = e.path().extension().string();
            if (e.is_regular_file() && (ext == ".cc" || ext == ".h"))
                files.push_back(e.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &p : files) {
        corpus.files.push_back(
            lexSource(fs::relative(p, root).generic_string(), slurp(p)));
    }

    AnalysisContext ctx;
    ctx.readme = slurp(root / "README.md");
    ctx.design = slurp(root / "DESIGN.md");
    ctx.cmake = slurp(root / "CMakeLists.txt");
    std::vector<fs::path> tests;
    for (const auto &e :
         fs::recursive_directory_iterator(root / "tests")) {
        const std::string ext = e.path().extension().string();
        if (e.is_regular_file() && (ext == ".cc" || ext == ".h"))
            tests.push_back(e.path());
    }
    std::sort(tests.begin(), tests.end());
    for (const fs::path &p : tests)
        ctx.tests_blob += slurp(p) + "\n";

    return runAnalysis(corpus, ctx);
}

TEST(SelfScanTest, ShippedTreeIsClean)
{
    const AnalysisResult r = scanRepo();
    ASSERT_GT(r.files_scanned, 50u) << "walk found too few files — "
                                       "CMPSIM_REPO_ROOT misconfigured?";
    std::string details;
    for (const Finding &f : r.findings) {
        details += f.file + ":" + std::to_string(f.line) + ": [" +
                   f.check + "] " + f.message + "\n";
    }
    EXPECT_TRUE(r.findings.empty()) << details;
}

TEST(SelfScanTest, EverySuppressionCarriesAReason)
{
    const AnalysisResult r = scanRepo();
    EXPECT_FALSE(r.suppressed.empty())
        << "the tree documents known-safe sites via suppressions; "
           "none found suggests the scan missed them";
    for (const SuppressedFinding &s : r.suppressed)
        EXPECT_FALSE(s.reason.empty())
            << s.file << ":" << s.line << " (" << s.check << ")";
}

} // namespace
} // namespace cmpsim::analyze
