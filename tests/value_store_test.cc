#include "src/mem/value_store.h"

#include <gtest/gtest.h>

#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

class ValueStoreTest : public ::testing::Test
{
  protected:
    FpcCompressor fpc;
    ValueStore store{fpc};
};

TEST_F(ValueStoreTest, UntouchedLinesReadZero)
{
    EXPECT_FALSE(store.hasLine(0x1000));
    EXPECT_EQ(store.line(0x1000), zeroLine());
    // Zero lines compress to one segment under FPC.
    EXPECT_EQ(store.segments(0x1000), 1u);
}

TEST_F(ValueStoreTest, SetLineRoundTrip)
{
    LineData d{};
    setLineWord(d, 3, 0xdeadbeef);
    store.setLine(0x2040, d);
    EXPECT_TRUE(store.hasLine(0x2040));
    EXPECT_EQ(store.line(0x2047), d); // any addr within the line
    EXPECT_EQ(lineWord(store.line(0x2040), 3), 0xdeadbeefu);
}

TEST_F(ValueStoreTest, WriteWordUpdatesLineAndSize)
{
    // All-zero line: 1 segment. Make every word raw: size grows.
    EXPECT_EQ(store.segments(0x3000), 1u);
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        store.writeWord(0x3000 + i * 4, 0x89abcdefu + i * 1097);
    EXPECT_EQ(store.segments(0x3000), kSegmentsPerLine);
}

TEST_F(ValueStoreTest, SegmentsMemoInvalidatedOnWrite)
{
    store.writeWord(0x4000, 5); // Se4 word + 15 zeros: tiny
    const unsigned small = store.segments(0x4000);
    EXPECT_EQ(small, 1u);
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        store.writeWord(0x4000 + i * 4, 0xf0e1d2c3u ^ (i * 0x9e3779b9u));
    EXPECT_GT(store.segments(0x4000), small);
}

TEST_F(ValueStoreTest, LinesAreIndependent)
{
    store.writeWord(0x5000, 1);
    store.writeWord(0x5040, 2);
    EXPECT_EQ(lineWord(store.line(0x5000), 0), 1u);
    EXPECT_EQ(lineWord(store.line(0x5040), 0), 2u);
    EXPECT_EQ(store.lineCount(), 2u);
}

TEST_F(ValueStoreTest, SegmentsMatchCompressorDirectly)
{
    LineData d{};
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        setLineWord(d, i, i % 2 ? 100u : 0u);
    store.setLine(0x6000, d);
    EXPECT_EQ(store.segments(0x6000), fpc.compress(d).segments);
}

} // namespace
} // namespace cmpsim
