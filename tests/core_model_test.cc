#include "src/core/core_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

/** Scripted instruction stream for deterministic core tests. */
class ScriptedStream : public InstructionStream
{
  public:
    static constexpr Addr kPc = 0x10000000;
    std::vector<Instruction> script;
    std::size_t pos = 0;

    Instruction
    next() override
    {
        if (pos < script.size())
            return script[pos++];
        Instruction alu;
        alu.type = InstrType::Alu;
        alu.pc = kPc; // one I-line: a single cold fetch miss
        ++pos;
        return alu;
    }

    void
    addAlu(int count)
    {
        for (int i = 0; i < count; ++i) {
            Instruction in;
            in.type = InstrType::Alu;
            in.pc = kPc;
            script.push_back(in);
        }
    }

    void
    addLoad(Addr addr)
    {
        Instruction in;
        in.type = InstrType::Load;
        in.pc = kPc;
        in.addr = addr;
        script.push_back(in);
    }

    void
    addStore(Addr addr, std::uint32_t v)
    {
        Instruction in;
        in.type = InstrType::Store;
        in.pc = kPc;
        in.addr = addr;
        in.store_value = v;
        script.push_back(in);
    }

    void
    addBranch(bool mispredict)
    {
        Instruction in;
        in.type = InstrType::Branch;
        in.pc = kPc;
        in.mispredict = mispredict;
        script.push_back(in);
    }
};

class CoreModelTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<L1Cache> icache, dcache;
    ScriptedStream stream;
    std::unique_ptr<CoreModel> core;

    void
    build()
    {
        MemoryParams mp;
        mem = std::make_unique<MainMemory>(eq, values, mp);
        L2Params p2;
        p2.sets = 256;
        p2.banks = 2;
        p2.cores = 1;
        l2 = std::make_unique<L2Cache>(eq, values, *mem, p2);
        L1Params p1;
        p1.sets = 16;
        icache = std::make_unique<L1Cache>(eq, *l2, 0, p1);
        dcache = std::make_unique<L1Cache>(eq, *l2, 0, p1);
        CoreParams cp;
        core = std::make_unique<CoreModel>(eq, *icache, *dcache, values,
                                           stream, 0, cp);
    }

    /** Run until @p instructions retire; returns final cycle. */
    Cycle
    runUntil(std::uint64_t instructions, Cycle limit = 2000000)
    {
        Cycle now = 0;
        while (core->instructionsRetired() < instructions) {
            const Cycle core_wake = core->nextWake();
            const Cycle ev = eq.nextEventCycle();
            Cycle next = std::min(core_wake, ev);
            cmpsim_assert(next != kCycleNever);
            if (next < now)
                next = now;
            eq.advanceTo(next);
            now = next;
            if (core->nextWake() <= now)
                core->tick(now);
            cmpsim_assert(now < limit);
        }
        return now;
    }
};

TEST_F(CoreModelTest, AluIpcApproachesWidth)
{
    build();
    // First instruction I-fetch misses; afterwards pure ALU sustains
    // near-width IPC. Measure the steady-state delta.
    const Cycle warm = runUntil(100);
    const Cycle end = runUntil(8100);
    const double ipc = 8000.0 / static_cast<double>(end - warm);
    EXPECT_GT(ipc, 3.0);
}

TEST_F(CoreModelTest, LoadHitDoesNotStallPipeline)
{
    build();
    stream.addLoad(0x2000); // warm the line (miss)
    stream.addAlu(100);
    for (int i = 0; i < 50; ++i) {
        stream.addLoad(0x2000 + (i % 8) * 4);
        stream.addAlu(3);
    }
    // Warm section: I-miss + load miss (~900 cycles).
    const Cycle warm = runUntil(101);
    // Hit section: 200 instructions with L1-hit loads overlap fully.
    const Cycle end = runUntil(stream.script.size());
    EXPECT_LT(end - warm, 150u);
}

TEST_F(CoreModelTest, LoadMissStallsUntilMemoryReturns)
{
    build();
    stream.addLoad(0x40000);
    const Cycle end = runUntil(1);
    EXPECT_GT(end, 400u); // DRAM latency dominates
}

TEST_F(CoreModelTest, IndependentMissesOverlap)
{
    build();
    // Two independent loads to different lines dispatch in the same
    // cycle and overlap their ~440-cycle memory latencies.
    stream.addAlu(8); // absorb the I-fetch miss first
    stream.addLoad(0x100000);
    stream.addLoad(0x200000);
    const Cycle warm = runUntil(8);
    const Cycle end = runUntil(10);
    EXPECT_LT(end - warm, 600u); // less than 2x the miss latency
}

TEST_F(CoreModelTest, RobLimitsMemoryLevelParallelism)
{
    build();
    // A load miss followed by >128 ALU ops: the ROB fills and the next
    // miss cannot dispatch until the first retires.
    stream.addLoad(0x100000);
    stream.addAlu(200);
    stream.addLoad(0x200000);
    const Cycle end = runUntil(stream.script.size());
    EXPECT_GT(end, 800u); // the two misses serialize
}

TEST_F(CoreModelTest, StoresRetireWithoutWaitingForMemory)
{
    build();
    stream.addAlu(8); // absorb the I-fetch miss first
    stream.addStore(0x300000, 7);
    stream.addAlu(20);
    const Cycle warm = runUntil(8);
    const Cycle end = runUntil(29);
    EXPECT_LT(end - warm, 100u); // no 400-cycle stall
    // But the MSHR was used: the store's line lands in the caches.
    eq.drain();
    EXPECT_TRUE(dcache->probeHit(0x300000));
}

TEST_F(CoreModelTest, StoreWritesValueStore)
{
    build();
    stream.addStore(0x300004, 0xabcd1234);
    runUntil(1);
    EXPECT_EQ(lineWord(values.line(0x300000), 1), 0xabcd1234u);
}

TEST_F(CoreModelTest, MispredictedBranchStallsFetch)
{
    build();
    stream.addAlu(16); // warm I-line
    stream.addBranch(true);
    stream.addAlu(16);
    const Cycle no_penalty_estimate = 16 / 4 + 16 / 4 + 1;
    const Cycle end = runUntil(33);
    EXPECT_GT(end, no_penalty_estimate + 8);
}

TEST_F(CoreModelTest, MshrLimitThrottlesOutstandingLoads)
{
    build();
    for (int i = 0; i < 32; ++i)
        stream.addLoad(0x400000 + i * 64);
    runUntil(32);
    // With 16 MSHRs the 32 misses need two memory rounds. (Padding
    // ALU instructions may retire alongside the scripted loads.)
    EXPECT_GE(core->instructionsRetired(), 32u);
    EXPECT_GT(dcache->misses(), 16u);
}

TEST_F(CoreModelTest, FunctionalRunWarmsCaches)
{
    build();
    stream.addLoad(0x500000);
    stream.addLoad(0x500040);
    core->runFunctional(2);
    EXPECT_TRUE(dcache->probeHit(0x500000));
    EXPECT_TRUE(dcache->probeHit(0x500040));
    EXPECT_EQ(core->instructionsRetired(), 2u);
    EXPECT_EQ(mem->link().totalBytes(), 0u);
}

TEST_F(CoreModelTest, IFetchMissStallsDispatch)
{
    build();
    // All instructions on one line; first fetch misses: nothing can
    // retire before the I-line returns (~440 cycles).
    stream.addAlu(4);
    const Cycle end = runUntil(4);
    EXPECT_GT(end, 400u);
}

} // namespace
} // namespace cmpsim
