/**
 * @file
 * Timing-behaviour tests that pin down the mechanisms the headline
 * results rest on: pointer-chase serialization in the core, L2 bank
 * parallelism, L1 partial hits on in-flight prefetches, and store
 * permission fix-up for coalesced writers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/core/core_model.h"
#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

// ---------------------------------------------------------------
// Chained-load serialization in the core.

class ChainStream : public InstructionStream
{
  public:
    std::vector<Instruction> script;
    std::size_t pos = 0;

    Instruction
    next() override
    {
        if (pos < script.size())
            return script[pos++];
        Instruction alu;
        alu.type = InstrType::Alu;
        alu.pc = 0x10000000;
        ++pos;
        return alu;
    }

    void
    addLoad(Addr addr, bool chained)
    {
        Instruction in;
        in.type = InstrType::Load;
        in.pc = 0x10000000;
        in.addr = addr;
        in.chained = chained;
        script.push_back(in);
    }
};

class ChainTimingTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<L1Cache> icache, dcache;
    ChainStream stream;
    std::unique_ptr<CoreModel> core;

    void
    build()
    {
        MemoryParams mp;
        mem = std::make_unique<MainMemory>(eq, values, mp);
        L2Params p2;
        p2.sets = 256;
        p2.banks = 2;
        p2.cores = 1;
        l2 = std::make_unique<L2Cache>(eq, values, *mem, p2);
        L1Params p1;
        p1.sets = 16;
        icache = std::make_unique<L1Cache>(eq, *l2, 0, p1);
        dcache = std::make_unique<L1Cache>(eq, *l2, 0, p1);
        CoreParams cp;
        core = std::make_unique<CoreModel>(eq, *icache, *dcache,
                                           values, stream, 0, cp);
    }

    Cycle
    runUntil(std::uint64_t instructions)
    {
        Cycle now = 0;
        while (core->instructionsRetired() < instructions) {
            Cycle next = std::min(core->nextWake(), eq.nextEventCycle());
            cmpsim_assert(next != kCycleNever);
            if (next < now)
                next = now;
            eq.advanceTo(next);
            now = next;
            if (core->nextWake() <= now)
                core->tick(now);
            cmpsim_assert(now < 50'000'000);
        }
        return now;
    }
};

TEST_F(ChainTimingTest, IndependentLoadsOverlapChainedDoNot)
{
    build();
    stream.script.clear();
    for (int i = 0; i < 8; ++i) {
        Instruction a;
        a.type = InstrType::Alu;
        a.pc = 0x10000000;
        stream.script.push_back(a);
    }
    for (int i = 0; i < 4; ++i)
        stream.addLoad(0x100000 + i * 0x10000, /*chained=*/false);
    const Cycle warm = runUntil(8);
    const Cycle independent = runUntil(12) - warm;

    // Rebuild with chained loads.
    stream = ChainStream();
    for (int i = 0; i < 8; ++i) {
        Instruction a;
        a.type = InstrType::Alu;
        a.pc = 0x10000000;
        stream.script.push_back(a);
    }
    for (int i = 0; i < 4; ++i)
        stream.addLoad(0x900000 + i * 0x10000, /*chained=*/true);
    eq = EventQueue();
    build();
    const Cycle warm2 = runUntil(8);
    const Cycle chained = runUntil(12) - warm2;

    // Four chained ~440-cycle misses serialize; independent ones
    // overlap almost completely.
    EXPECT_GT(chained, independent * 3);
}

TEST_F(ChainTimingTest, ChainedHitsStaySerialButFast)
{
    build();
    // Warm one line, then chase within it: chained L1 hits cost a
    // few cycles each, far from the miss case.
    stream.addLoad(0x2000, false);
    for (int i = 0; i < 16; ++i)
        stream.addLoad(0x2000 + (i % 8) * 8, true);
    const Cycle end = runUntil(17);
    EXPECT_LT(end, 1200u); // one miss + 16 short chained hits
}

// ---------------------------------------------------------------
// L2 bank behaviour and L1 MSHR semantics.

class HierTimingTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<L1Cache> l1;

    void
    build(unsigned banks)
    {
        MemoryParams mp;
        mem = std::make_unique<MainMemory>(eq, values, mp);
        L2Params p2;
        p2.sets = 64;
        p2.banks = banks;
        p2.cores = 1;
        p2.bank_occupancy = 10; // exaggerate bank serialization
        l2 = std::make_unique<L2Cache>(eq, values, *mem, p2);
        L1Params p1;
        p1.sets = 16;
        l1 = std::make_unique<L1Cache>(eq, *l2, 0, p1);
        l2->setL1Invalidator(
            [this](unsigned, Addr line) { return l1->invalidateLine(line); });
        l2->setL1Downgrader(
            [this](unsigned, Addr line) { l1->downgradeLine(line); });
    }

    /** Warm two lines mapping to the given banks, then time a pair of
     *  simultaneous L2 hits. */
    Cycle
    pairLatency(Addr a, Addr b)
    {
        Cycle done_a = 0, done_b = 0;
        l2->request(0, a, false, ReqType::Demand, 0,
                    [&](Cycle c, bool, bool) { done_a = c; });
        l2->request(0, b, false, ReqType::Demand, 0,
                    [&](Cycle c, bool, bool) { done_b = c; });
        eq.drain();
        const Cycle t0 = eq.now() + 1000;
        l2->request(0, a, false, ReqType::Demand, t0,
                    [&](Cycle c, bool, bool) { done_a = c; });
        l2->request(0, b, false, ReqType::Demand, t0,
                    [&](Cycle c, bool, bool) { done_b = c; });
        eq.drain();
        return std::max(done_a, done_b) - t0;
    }
};

TEST_F(HierTimingTest, DifferentBanksOverlapSameBankSerializes)
{
    build(2);
    // Lines 0 and 1 hit banks 0 and 1; lines 0 and 2 both hit bank 0.
    const Cycle cross_bank = pairLatency(0x0, 0x40);
    eq = EventQueue();
    build(2);
    const Cycle same_bank = pairLatency(0x0, 0x80);
    EXPECT_GT(same_bank, cross_bank);
}

TEST_F(HierTimingTest, L1PartialHitOnInflightPrefetch)
{
    build(2);
    l1->prefetchLine(0x3000, 0);
    // Demand access arrives while the prefetch is still in flight:
    // coalesces (no second L2 fetch) and counts a partial hit, and
    // the line must NOT carry the prefetch bit afterwards.
    Cycle done = 0;
    l1->access(0x3008, false, 5, [&](Cycle c) { done = c; });
    eq.drain();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(mem->reads(), 1u);
    const TagEntry *e =
        l1->setAt(static_cast<unsigned>(lineNumber(0x3000) % 16))
            .find(lineAddr(0x3000));
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->prefetch);
    // The prefetcher must not get credit for it later.
    EXPECT_EQ(l1->prefetchHits(), 0u);
}

TEST_F(HierTimingTest, CoalescedWriterGetsStorePermission)
{
    build(2);
    // A read miss goes out; a write to the same line coalesces onto
    // the read's MSHR. After the fill the line must be M (dirty) and
    // the L2 directory must agree.
    Cycle read_done = 0, write_done = 0;
    l1->access(0x5000, false, 0, [&](Cycle c) { read_done = c; });
    l1->access(0x5010, true, 3, [&](Cycle c) { write_done = c; });
    eq.drain();
    EXPECT_GT(read_done, 0u);
    EXPECT_GT(write_done, 0u);
    const TagEntry *e =
        l1->setAt(static_cast<unsigned>(lineNumber(0x5000) % 16))
            .find(lineAddr(0x5000));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->dirty);
    const TagEntry *d =
        l2->setAt(l2->setIndexOf(lineAddr(0x5000)))
            .find(lineAddr(0x5000));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->owner, 0);
}

} // namespace
} // namespace cmpsim
