/**
 * @file
 * Banked DRAM backend tests: closed-form latencies for row hit / row
 * miss / bank conflict, FR-FCFS vs FCFS ordering, demand-over-prefetch
 * priority, refresh stalls, write-drain watermarks, compression-
 * shortened bursts, CMPSIM_DRAM parsing/validation, the dram.access
 * fault probe, and same-seed determinism with the backend armed.
 *
 * Timing recap for the closed forms (see DramBackend::service):
 *   row miss:     start + tRCD + tCAS + beats*burst
 *   row hit:      start + tCAS + beats*burst
 *   bank conflict: precharge at max(start, activated + tRAS), then
 *                 tRP + tRCD + tCAS + beats*burst
 * and every read completion adds ctrl_latency.
 */

#include "src/dram/dram_backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/invariant_registry.h"
#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/dram/dram_params.h"
#include "src/mem/main_memory.h"
#include "src/sim/fault_injection.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

/** One channel, two banks, refresh off: every latency is closed-form.
 *  64 lines per 4 KB row; tRCD = tCAS = tRP = 60, tRAS = 160; a
 *  16-byte column access holds the bus 16 cycles; +40 controller. */
DramTimingParams
tinyParams()
{
    DramTimingParams p;
    p.backend = DramBackendKind::Banked;
    p.channels = 1;
    p.ranks = 1;
    p.banks = 2;
    p.row_bytes = 4096;
    p.trcd = 60;
    p.tcas = 60;
    p.trp = 60;
    p.tras = 160;
    p.burst_bytes = 16;
    p.burst_cycles = 16;
    p.ctrl_latency = 40;
    p.refresh_interval = 0;
    p.write_high_watermark = 16;
    p.write_low_watermark = 4;
    return p;
}

// tinyParams address map: bank = (line/64) % 2, row = line/128.
constexpr Addr kBank0Row0 = 0x0000; // line 0
constexpr Addr kBank0Row0Col1 = 0x0040; // line 1, same row
constexpr Addr kBank1Row0 = 0x1000; // line 64
constexpr Addr kBank0Row1 = 0x2000; // line 128
constexpr Addr kBank1Row1 = 0x3000; // line 192

class DramBackendTest : public ::testing::Test
{
  protected:
    EventQueue eq;
};

TEST_F(DramBackendTest, DecodeColumnChannelBankRowOrder)
{
    DramTimingParams p = tinyParams();
    p.channels = 2;
    p.banks = 8;
    DramBackend dram(eq, p);
    // line = addr/64; col = line % 64, then channel (2), bank (8), row.
    auto d = dram.decode(0);
    EXPECT_EQ(d.channel, 0u);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 0u);
    EXPECT_EQ(d.column, 0u);
    d = dram.decode(63 * 64); // last line of the row
    EXPECT_EQ(d.column, 63u);
    EXPECT_EQ(d.channel, 0u);
    d = dram.decode(64 * 64); // next 4 KB region: channel rotates
    EXPECT_EQ(d.channel, 1u);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 0u);
    d = dram.decode(128 * 64); // then the bank
    EXPECT_EQ(d.channel, 0u);
    EXPECT_EQ(d.bank, 1u);
    d = dram.decode(1024 * 64); // 16 regions later: row increments
    EXPECT_EQ(d.channel, 0u);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 1u);
}

TEST_F(DramBackendTest, BeatsFollowStoredSegments)
{
    DramBackend dram(eq, tinyParams());
    EXPECT_EQ(dram.beatsFor(8), 4u); // 64 B / 16 B
    EXPECT_EQ(dram.beatsFor(5), 3u); // 40 B -> ceil
    EXPECT_EQ(dram.beatsFor(3), 2u);
    EXPECT_EQ(dram.beatsFor(2), 1u);
    EXPECT_EQ(dram.beatsFor(1), 1u);
}

TEST_F(DramBackendTest, RowMissClosedForm)
{
    DramBackend dram(eq, tinyParams());
    Cycle done = 0;
    dram.read(kBank0Row0, 8, false, 100, [&](Cycle c) { done = c; });
    eq.drain();
    // 100 + tRCD(60) + tCAS(60) + 4*16 + ctrl(40)
    EXPECT_EQ(done, 324u);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 0u);
}

TEST_F(DramBackendTest, RowHitClosedForm)
{
    DramBackend dram(eq, tinyParams());
    Cycle done_b = 0;
    dram.read(kBank0Row0, 8, false, 100, [](Cycle) {});
    dram.read(kBank0Row0Col1, 8, false, 100,
              [&](Cycle c) { done_b = c; });
    eq.drain();
    // A occupies the channel until 284; B then hits the open row:
    // 284 + tCAS(60) + 64 + 40.
    EXPECT_EQ(done_b, 448u);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_DOUBLE_EQ(dram.rowHitRate(), 0.5);
}

TEST_F(DramBackendTest, BankConflictClosedForm)
{
    DramBackend dram(eq, tinyParams());
    Cycle done_b = 0;
    dram.read(kBank0Row0, 8, false, 100, [](Cycle) {});
    dram.read(kBank0Row1, 8, false, 100, [&](Cycle c) { done_b = c; });
    eq.drain();
    // B at 284 finds row 0 open: precharge at max(284, 100+160)=284,
    // activate at 344, data at 464..528, +40.
    EXPECT_EQ(done_b, 568u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
}

TEST_F(DramBackendTest, TrasGatesThePrecharge)
{
    DramTimingParams p = tinyParams();
    p.tras = 500;
    DramBackend dram(eq, p);
    Cycle done_b = 0;
    dram.read(kBank0Row0, 8, false, 100, [](Cycle) {});
    dram.read(kBank0Row1, 8, false, 100, [&](Cycle c) { done_b = c; });
    eq.drain();
    // The row activated at 100 may not precharge before 600 even
    // though the channel frees at 284: 600+60+60+60+64+40.
    EXPECT_EQ(done_b, 884u);
}

TEST_F(DramBackendTest, CompressedLineNeedsFewerColumnAccesses)
{
    DramBackend dram(eq, tinyParams());
    Cycle done = 0;
    dram.read(kBank0Row0, 1, false, 100, [&](Cycle c) { done = c; });
    eq.drain();
    // One 16-cycle beat instead of four: 100+120+16+40.
    EXPECT_EQ(done, 276u);
}

TEST_F(DramBackendTest, ClosedPageAutoPrecharges)
{
    DramTimingParams p = tinyParams();
    p.closed_page = true;
    DramBackend dram(eq, p);
    Cycle done_b = 0;
    dram.read(kBank0Row0, 8, false, 100, [](Cycle) {});
    dram.read(kBank0Row0Col1, 8, false, 100,
              [&](Cycle c) { done_b = c; });
    eq.drain();
    // Same row, but the page closed behind A (precharge 284..344):
    // B activates at 344: 344+120+64+40.
    EXPECT_EQ(done_b, 568u);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

/** Record completion order by label. */
struct OrderLog
{
    std::vector<std::string> order;
    DramBackend::Done
    cb(const std::string &label)
    {
        return [this, label](Cycle) { order.push_back(label); };
    }
};

TEST_F(DramBackendTest, FrFcfsServesRowHitBeforeOlderConflict)
{
    DramBackend dram(eq, tinyParams());
    OrderLog log;
    dram.read(kBank0Row0, 8, false, 100, log.cb("A"));
    dram.read(kBank0Row1, 8, false, 100, log.cb("B")); // older, conflict
    dram.read(kBank0Row0Col1, 8, false, 100, log.cb("C")); // newer, hit
    eq.drain();
    EXPECT_EQ(log.order, (std::vector<std::string>{"A", "C", "B"}));
}

TEST_F(DramBackendTest, FcfsAblationServesArrivalOrder)
{
    DramTimingParams p = tinyParams();
    p.sched = DramSched::Fcfs;
    DramBackend dram(eq, p);
    OrderLog log;
    dram.read(kBank0Row0, 8, false, 100, log.cb("A"));
    dram.read(kBank0Row1, 8, false, 100, log.cb("B"));
    dram.read(kBank0Row0Col1, 8, false, 100, log.cb("C"));
    eq.drain();
    EXPECT_EQ(log.order, (std::vector<std::string>{"A", "B", "C"}));
}

TEST_F(DramBackendTest, DemandOutranksOlderPrefetch)
{
    DramBackend dram(eq, tinyParams());
    OrderLog log;
    dram.read(kBank0Row0, 8, false, 100, log.cb("A"));
    // Neither P nor D can row-hit; the younger demand still wins.
    dram.read(kBank0Row1, 8, true, 100, log.cb("P"));
    dram.read(kBank1Row1, 8, false, 100, log.cb("D"));
    eq.drain();
    EXPECT_EQ(log.order, (std::vector<std::string>{"A", "D", "P"}));
}

TEST_F(DramBackendTest, RefreshStallsAndClosesRows)
{
    DramTimingParams p = tinyParams();
    p.refresh_interval = 1000;
    p.refresh_cycles = 100;
    DramBackend dram(eq, p);
    Cycle done = 0;
    dram.read(kBank0Row0, 8, false, 1500, [&](Cycle c) { done = c; });
    eq.drain();
    // The refresh due at 1000 is charged when work appears at 1500:
    // banks free at 1600, then a row miss: 1600+120+64+40.
    EXPECT_EQ(done, 1824u);
    EXPECT_EQ(dram.refreshes(), 1u);
}

TEST_F(DramBackendTest, IdleRefreshPeriodsAreSkippedNotAccumulated)
{
    DramTimingParams p = tinyParams();
    p.refresh_interval = 1000;
    p.refresh_cycles = 100;
    DramBackend dram(eq, p);
    Cycle done = 0;
    dram.read(kBank0Row0, 8, false, 10500, [&](Cycle c) { done = c; });
    eq.drain();
    // Ten periods elapsed idle; exactly one tRFC is charged.
    EXPECT_EQ(dram.refreshes(), 1u);
    EXPECT_EQ(done, 10500u + 100 + 120 + 64 + 40);
}

TEST_F(DramBackendTest, WriteDrainWatermarkStealsOneReadSlot)
{
    DramTimingParams p = tinyParams();
    p.write_high_watermark = 2;
    p.write_low_watermark = 1;
    DramBackend dram(eq, p);
    Cycle read_done = 0;
    dram.write(kBank0Row0, 8, 100);
    dram.write(kBank1Row0, 8, 100); // hits the high watermark
    dram.read(kBank0Row1, 8, false, 100,
              [&](Cycle c) { read_done = c; });
    eq.drain();
    EXPECT_EQ(dram.writeDrains(), 1u);
    // One write drains (to the low watermark) before the read: the
    // read starts at 284 into a bank-conflict, finishing at 568; the
    // second write goes opportunistically afterwards.
    EXPECT_EQ(read_done, 568u);
    EXPECT_EQ(dram.writesServiced(), 2u);
}

TEST_F(DramBackendTest, IdleChannelDrainsWritesOpportunistically)
{
    DramBackend dram(eq, tinyParams());
    dram.write(kBank0Row0, 8, 100); // far below the watermark
    eq.drain();
    EXPECT_EQ(dram.writesServiced(), 1u);
    EXPECT_EQ(dram.writeDrains(), 0u);
    EXPECT_EQ(dram.queuedWrites(), 0u);
}

TEST_F(DramBackendTest, RequestConservationAuditHolds)
{
    DramBackend dram(eq, tinyParams());
    InvariantRegistry audits;
    dram.registerAudits(audits, "dram");
    for (unsigned i = 0; i < 6; ++i) {
        dram.read(static_cast<Addr>(i) * 0x1000, 8, i % 2 == 0, 100,
                  [](Cycle) {});
        dram.write(static_cast<Addr>(i) * 0x2000, 8, 100);
    }
    // Mid-flight (some serviced, some queued) and at quiesce.
    eq.drain(400);
    EXPECT_TRUE(audits.check().empty());
    eq.drain();
    EXPECT_TRUE(audits.check().empty());
    EXPECT_EQ(dram.readsServiced(), 6u);
    EXPECT_EQ(dram.writesServiced(), 6u);
    // And the balance survives a mid-stream stats reset.
    dram.read(0, 8, false, eq.now(), [](Cycle) {});
    dram.resetStats();
    EXPECT_TRUE(audits.check().empty());
    eq.drain();
    EXPECT_TRUE(audits.check().empty());
}

// ---- MainMemory integration --------------------------------------

class DramMainMemoryTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};

    MemoryParams
    bankedParams()
    {
        MemoryParams p;
        p.link_bytes_per_cycle = 4.0;
        p.dram = tinyParams();
        return p;
    }
};

TEST_F(DramMainMemoryTest, BankedFetchClosedForm)
{
    MainMemory mem(eq, values, bankedParams());
    ASSERT_NE(mem.dram(), nullptr);
    Cycle done = 0;
    mem.fetchLine(0x1000, 100, false, [&](Cycle c) { done = c; });
    eq.drain();
    // request 8 B = 2 cycles; row miss 120 + 4*16 + ctrl 40; data
    // message 72 B = 18 cycles.
    EXPECT_EQ(done, 100u + 2 + 120 + 64 + 40 + 18);
}

TEST_F(DramMainMemoryTest, LinkCompressionShortensBurstAndMessage)
{
    MemoryParams p = bankedParams();
    p.link_compression = true;
    MainMemory mem(eq, values, p);
    Cycle done = 0;
    // Untouched line = zeros = 1 stored segment = 1 column access.
    mem.fetchLine(0x1000, 100, false, [&](Cycle c) { done = c; });
    eq.drain();
    // request 2; miss 120 + 1*16 + 40; data 16 B = 4 cycles.
    EXPECT_EQ(done, 100u + 2 + 120 + 16 + 40 + 4);
}

TEST_F(DramMainMemoryTest, WritebackLandsInControllerWriteQueue)
{
    MainMemory mem(eq, values, bankedParams());
    mem.writebackLine(0x1000, 0);
    eq.drain();
    EXPECT_EQ(mem.dram()->writesServiced(), 1u);
}

TEST_F(DramMainMemoryTest, FixedBackendHasNoDramObject)
{
    MemoryParams p;
    p.link_bytes_per_cycle = 4.0;
    MainMemory mem(eq, values, p);
    EXPECT_EQ(mem.dram(), nullptr);
    StatRegistry reg;
    mem.registerStats(reg, "mem");
    EXPECT_FALSE(reg.hasCounter("mem.dram.row_hits"));
}

TEST_F(DramMainMemoryTest, ReadLatencyHistogramSplitsByBackend)
{
    // Fixed backend: 2 + 400 + 18 = 420 -> 50-cycle bucket 8.
    {
        MemoryParams p;
        p.link_bytes_per_cycle = 4.0;
        MainMemory mem(eq, values, p);
        StatRegistry reg;
        mem.registerStats(reg, "mem");
        mem.fetchLine(0x1000, 100, false, [](Cycle) {});
        eq.drain();
        EXPECT_DOUBLE_EQ(reg.average("mem.read_latency"), 420.0);
        EXPECT_EQ(reg.histogram("mem.read_latency_hist").bucket(8), 1u);
    }
    // Banked backend, unloaded row miss: 244 -> bucket 4.
    {
        MainMemory mem(eq, values, bankedParams());
        StatRegistry reg;
        mem.registerStats(reg, "mem");
        EXPECT_TRUE(reg.hasCounter("mem.dram.row_hits"));
        mem.fetchLine(0x1000, 1000, false, [](Cycle) {});
        eq.drain();
        EXPECT_DOUBLE_EQ(reg.average("mem.read_latency"), 244.0);
        EXPECT_EQ(reg.histogram("mem.read_latency_hist").bucket(4), 1u);
    }
}

// ---- CMPSIM_DRAM spec parsing and validation ---------------------

TEST(DramSpecTest, ParsesBankedWithOptions)
{
    DramTimingParams p;
    parseDramSpec("banked:channels=4,banks=16,row_bytes=8192,"
                  "sched=fcfs,page=closed,tras=200,wq_high=32,wq_low=8",
                  p);
    EXPECT_EQ(p.backend, DramBackendKind::Banked);
    EXPECT_EQ(p.channels, 4u);
    EXPECT_EQ(p.banks, 16u);
    EXPECT_EQ(p.row_bytes, 8192u);
    EXPECT_EQ(p.sched, DramSched::Fcfs);
    EXPECT_TRUE(p.closed_page);
    EXPECT_EQ(p.tras, 200u);
    EXPECT_EQ(p.write_high_watermark, 32u);
    EXPECT_EQ(p.write_low_watermark, 8u);
}

TEST(DramSpecTest, FixedResetsBackendAndEmptyIsNoOp)
{
    DramTimingParams p;
    p.backend = DramBackendKind::Banked;
    parseDramSpec("fixed", p);
    EXPECT_EQ(p.backend, DramBackendKind::Fixed);
    p.backend = DramBackendKind::Banked;
    parseDramSpec("", p);
    EXPECT_EQ(p.backend, DramBackendKind::Banked);
}

TEST(DramSpecTest, MalformedSpecsThrowKnobNamedErrors)
{
    DramTimingParams p;
    EXPECT_THROW(parseDramSpec("bogus", p), ConfigError);
    EXPECT_THROW(parseDramSpec("fixed:banks=2", p), ConfigError);
    EXPECT_THROW(parseDramSpec("banked:banks", p), ConfigError);
    EXPECT_THROW(parseDramSpec("banked:banks=abc", p), ConfigError);
    EXPECT_THROW(parseDramSpec("banked:nope=1", p), ConfigError);
    EXPECT_THROW(parseDramSpec("banked:=3", p), ConfigError);
    EXPECT_THROW(parseDramSpec("banked:page=ajar", p), ConfigError);
    try {
        parseDramSpec("banked:banks=abc", p);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.context(), "env.CMPSIM_DRAM");
    }
}

TEST(DramSpecTest, EnvSpecLandsInMakeConfig)
{
    ::setenv("CMPSIM_DRAM", "banked:channels=1,sched=fcfs", 1);
    SystemConfig c = makeConfig(2, 8, false, false, false, false);
    ::unsetenv("CMPSIM_DRAM");
    EXPECT_EQ(c.dram.backend, DramBackendKind::Banked);
    EXPECT_EQ(c.dram.channels, 1u);
    EXPECT_EQ(c.dram.sched, DramSched::Fcfs);
    // Unset env leaves the paper-validated fixed backend.
    c = makeConfig(2, 8, false, false, false, false);
    EXPECT_EQ(c.dram.backend, DramBackendKind::Fixed);
}

/** validate() must throw a ConfigError naming @p knob after @p mutate
 *  is applied to an otherwise-good config. */
template <typename Fn>
void
expectReject(const char *knob, Fn mutate)
{
    SystemConfig c = makeConfig(2, 8, false, false, false, false);
    mutate(c.dram);
    try {
        c.validate();
        FAIL() << "expected ConfigError for " << knob;
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.context(), knob);
    }
}

TEST(DramValidateTest, RejectsImpossibleGeometryAndTiming)
{
    expectReject("config.dram.channels",
                 [](DramTimingParams &d) { d.channels = 0; });
    expectReject("config.dram.ranks",
                 [](DramTimingParams &d) { d.ranks = 0; });
    expectReject("config.dram.banks",
                 [](DramTimingParams &d) { d.banks = 0; });
    expectReject("config.dram.row_bytes",
                 [](DramTimingParams &d) { d.row_bytes = 100; });
    expectReject("config.dram.row_bytes",
                 [](DramTimingParams &d) { d.row_bytes = 32; });
    expectReject("config.dram.burst_bytes",
                 [](DramTimingParams &d) { d.burst_bytes = 0; });
    expectReject("config.dram.burst_cycles",
                 [](DramTimingParams &d) { d.burst_cycles = 0; });
    expectReject("config.dram.timing",
                 [](DramTimingParams &d) { d.trcd = 0; });
    expectReject("config.dram.tras",
                 [](DramTimingParams &d) { d.tras = 100; });
    expectReject("config.dram.wq_high",
                 [](DramTimingParams &d) { d.write_high_watermark = 0; });
    expectReject("config.dram.wq_low", [](DramTimingParams &d) {
        d.write_low_watermark = d.write_high_watermark;
    });
    expectReject("config.dram.refresh", [](DramTimingParams &d) {
        d.refresh_cycles = d.refresh_interval;
    });
    // The knobs are validated even while the backend is Fixed (they
    // must always be arm-able), and a good banked config passes.
    SystemConfig ok = makeConfig(2, 8, false, false, false, false);
    ok.dram.backend = DramBackendKind::Banked;
    EXPECT_NO_THROW(ok.validate());
}

// ---- fault injection ---------------------------------------------

TEST(DramFaultTest, DramAccessProbeThrowsThenRecovers)
{
    EventQueue eq;
    DramBackend dram(eq, tinyParams());
    const FaultPlan plan = FaultPlan::parse("dram.access:2");
    {
        FaultArmGuard arm(plan, /*attempt=*/1);
        dram.read(0, 8, false, 0, [](Cycle) {}); // 1st hit: clean
        EXPECT_THROW(dram.read(0x1000, 8, false, 0, [](Cycle) {}),
                     InjectedFault);
    }
    {
        // Transient by default: the retry attempt sails through.
        FaultArmGuard arm(plan, /*attempt=*/2);
        EXPECT_NO_THROW(dram.read(0x2000, 8, false, 0, [](Cycle) {}));
    }
    eq.drain();
}

// ---- whole-system determinism with the backend armed -------------

TEST(DramDeterminismTest, SameSeedSameStatsWithBankedBackend)
{
    auto run = [] {
        SystemConfig c = makeConfig(2, 16, true, true, true, false);
        c.dram.backend = DramBackendKind::Banked;
        CmpSystem sys(c, benchmarkParams("zeus"));
        sys.warmup(20000);
        sys.run(8000);
        std::ostringstream os;
        sys.stats().dump(os);
        return os.str();
    };
    const std::string a = run();
    EXPECT_FALSE(a.empty());
    EXPECT_NE(a.find("mem.dram.row_hits"), std::string::npos);
    EXPECT_EQ(a, run());
}

} // namespace
} // namespace cmpsim
