#include "src/sim/thread_pool.h"

#include <gtest/gtest.h>

#include "src/common/sim_error.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cmpsim {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads)
{
    ThreadPool pool(2);
    std::mutex m;
    std::set<std::thread::id> ids;
    const auto self = std::this_thread::get_id();
    for (int i = 0; i < 50; ++i) {
        pool.submit([&] {
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 2u);
    EXPECT_EQ(ids.count(self), 0u);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The batch still drained: an exception poisons wait(), not the
    // remaining tasks.
    EXPECT_EQ(ran.load(), 10);
    // The error is consumed; a fresh batch is clean.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, MultipleFailuresAggregateIntoOneSimError)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ++ran; });
    try {
        pool.wait();
        FAIL() << "wait() did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
        const std::string what = e.what();
        EXPECT_NE(what.find("3 tasks failed"), std::string::npos) << what;
        EXPECT_NE(what.find("boom"), std::string::npos) << what;
    }
    EXPECT_EQ(ran.load(), 10);
    // All errors were consumed in one throw; the pool is reusable.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingTasksDrained)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
    }
    EXPECT_EQ(count.load(), 20);
}

} // namespace
} // namespace cmpsim
