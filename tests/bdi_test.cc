#include "src/compression/bdi.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/compression/fpc.h"
#include "src/compression/null_compressor.h"

namespace cmpsim {
namespace {

class BdiTest : public ::testing::Test
{
  protected:
    BdiCompressor bdi;

    void
    expectRoundTrip(const LineData &line)
    {
        BitStream bs;
        const auto size = bdi.compress(line, &bs);
        const LineData back = bdi.decompress(bs, size);
        ASSERT_EQ(back, line);
    }
};

TEST_F(BdiTest, ZerosLineIsOneSegment)
{
    const auto size = bdi.compress(zeroLine());
    EXPECT_EQ(size.segments, 1u);
    expectRoundTrip(zeroLine());
}

TEST_F(BdiTest, RepeatedQwordCompresses)
{
    LineData d{};
    for (unsigned q = 0; q < kLineBytes / 8; ++q)
        setLineQword(d, q, 0xdeadbeefcafebabeULL);
    const auto size = bdi.compress(d);
    EXPECT_EQ(size.segments, 2u); // 68 bits
    expectRoundTrip(d);
}

TEST_F(BdiTest, NearbyPointersCompressBase8)
{
    LineData d{};
    const std::uint64_t base = 0x00007f8812345000ULL;
    for (unsigned q = 0; q < kLineBytes / 8; ++q)
        setLineQword(d, q, base + q * 8);
    const auto size = bdi.compress(d);
    EXPECT_TRUE(size.isCompressed());
    expectRoundTrip(d);
}

TEST_F(BdiTest, MixedZeroAndBaseElements)
{
    LineData d{};
    const std::uint64_t base = 0xffff000011110000ULL;
    for (unsigned q = 0; q < kLineBytes / 8; ++q)
        setLineQword(d, q, q % 2 ? base + q : q); // zero-base + big base
    const auto size = bdi.compress(d);
    EXPECT_TRUE(size.isCompressed());
    expectRoundTrip(d);
}

TEST_F(BdiTest, RandomLineFallsBackToRaw)
{
    Random rng(4);
    LineData d{};
    for (unsigned q = 0; q < kLineBytes / 8; ++q)
        setLineQword(d, q, rng.next());
    const auto size = bdi.compress(d);
    EXPECT_FALSE(size.isCompressed());
    expectRoundTrip(d);
}

TEST_F(BdiTest, SmallIntsCompressViaB4)
{
    LineData d{};
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        setLineWord(d, i, 1000 + i);
    const auto size = bdi.compress(d);
    EXPECT_TRUE(size.isCompressed());
    EXPECT_LE(size.segments, 4u);
    expectRoundTrip(d);
}

TEST_F(BdiTest, RandomizedRoundTrip)
{
    Random rng(777);
    for (int trial = 0; trial < 300; ++trial) {
        LineData d{};
        const std::uint64_t base = rng.next();
        for (unsigned q = 0; q < kLineBytes / 8; ++q) {
            switch (rng.below(4)) {
              case 0:
                setLineQword(d, q, 0);
                break;
              case 1:
                setLineQword(d, q, base + rng.below(100));
                break;
              case 2:
                setLineQword(d, q, rng.below(200));
                break;
              default:
                setLineQword(d, q, rng.next());
                break;
            }
        }
        BitStream bs;
        const auto size = bdi.compress(d, &bs);
        ASSERT_GE(size.segments, 1u);
        ASSERT_LE(size.segments, kSegmentsPerLine);
        ASSERT_EQ(bdi.decompress(bs, size), d);
    }
}

TEST(NullCompressorTest, AlwaysRawRoundTrip)
{
    NullCompressor null;
    Random rng(5);
    LineData d{};
    for (unsigned q = 0; q < kLineBytes / 8; ++q)
        setLineQword(d, q, rng.next());
    BitStream bs;
    const auto size = null.compress(d, &bs);
    EXPECT_FALSE(size.isCompressed());
    EXPECT_EQ(size.segments, kSegmentsPerLine);
    EXPECT_EQ(null.decompress(bs, size), d);
}

TEST(CompressorComparisonTest, BdiBeatsFpcOnPointerArrays)
{
    // Arrays of nearby 64-bit pointers: classic BDI-wins case.
    BdiCompressor bdi;
    FpcCompressor fpc;
    LineData d{};
    const std::uint64_t base = 0x00007fff12345678ULL;
    for (unsigned q = 0; q < kLineBytes / 8; ++q)
        setLineQword(d, q, base + q * 16);
    EXPECT_LT(bdi.compress(d).segments, fpc.compress(d).segments);
}

TEST(CompressorComparisonTest, FpcBeatsBdiOnSparseSmallInts)
{
    // Alternating zero / small-int words favour FPC's word patterns.
    BdiCompressor bdi;
    FpcCompressor fpc;
    LineData d{};
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        setLineWord(d, i, i % 2 ? 3u : 0u);
    EXPECT_LE(fpc.compress(d).segments, bdi.compress(d).segments);
}

} // namespace
} // namespace cmpsim
