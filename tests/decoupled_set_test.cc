#include "src/cache/decoupled_set.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace cmpsim {
namespace {

TagEntry
makeEntry(Addr line, unsigned segments = kSegmentsPerLine)
{
    TagEntry e;
    e.line = line;
    e.valid = true;
    e.segments = static_cast<std::uint8_t>(segments);
    return e;
}

TEST(DecoupledSetTest, InsertAndFind)
{
    DecoupledSet set(8, 32);
    EXPECT_TRUE(set.insert(makeEntry(0x100)).empty());
    EXPECT_NE(set.find(0x100), nullptr);
    EXPECT_EQ(set.find(0x200), nullptr);
    EXPECT_EQ(set.validCount(), 1u);
    EXPECT_EQ(set.usedSegments(), 8u);
}

TEST(DecoupledSetTest, UncompressedCapacityIsFourLines)
{
    // The paper's compressed-L2 geometry: 8 tags, 32 segments.
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(set.insert(makeEntry(a << kLineShift)).empty());
    // Fifth uncompressed line evicts the LRU (line 0).
    const auto evicted = set.insert(makeEntry(4 << kLineShift));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].line, 0u);
    EXPECT_EQ(set.validCount(), 4u);
}

TEST(DecoupledSetTest, CompressedLinesDoubleCapacity)
{
    DecoupledSet set(8, 32);
    // Eight 4-segment lines fit exactly: capacity doubled.
    for (Addr a = 0; a < 8; ++a)
        EXPECT_TRUE(set.insert(makeEntry(a << kLineShift, 4)).empty());
    EXPECT_EQ(set.validCount(), 8u);
    EXPECT_EQ(set.usedSegments(), 32u);
    // A ninth line must evict even though segments would be free after
    // eviction: tags are exhausted.
    const auto evicted = set.insert(makeEntry(8 << kLineShift, 1));
    EXPECT_EQ(evicted.size(), 1u);
}

TEST(DecoupledSetTest, LruOrderRespectsTouch)
{
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 4; ++a)
        set.insert(makeEntry(a << kLineShift));
    set.touch(0); // line 0 becomes MRU; line 1 now LRU
    const auto evicted = set.insert(makeEntry(100 << kLineShift));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].line, 1u << kLineShift);
}

TEST(DecoupledSetTest, EvictionLeavesVictimTag)
{
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 5; ++a)
        set.insert(makeEntry(a << kLineShift));
    // Line 0 was evicted; its address remains as a victim tag.
    EXPECT_TRUE(set.victimTagMatch(0));
    EXPECT_FALSE(set.victimTagMatch(3 << kLineShift));
    EXPECT_GE(set.victimTagCount(), 1u);
}

TEST(DecoupledSetTest, MultipleEvictionsForOneBigInsert)
{
    DecoupledSet set(8, 32);
    // Fill with eight 4-segment lines, then insert an 8-segment line:
    // needs two evictions for segments.
    for (Addr a = 0; a < 8; ++a)
        set.insert(makeEntry(a << kLineShift, 4));
    const auto evicted = set.insert(makeEntry(0x9000, 8));
    EXPECT_EQ(evicted.size(), 2u);
    EXPECT_EQ(set.usedSegments(), 6u * 4 + 8);
}

TEST(DecoupledSetTest, SegmentAccountingInvariant)
{
    Random rng(7);
    DecoupledSet set(8, 32);
    for (int i = 0; i < 2000; ++i) {
        const Addr line = rng.below(64) << kLineShift;
        if (set.find(line)) {
            if (rng.chance(0.3))
                set.resize(line, static_cast<unsigned>(rng.inRange(1, 8)));
            else if (rng.chance(0.1))
                set.invalidate(line);
            else
                set.touch(line);
        } else {
            set.insert(
                makeEntry(line, static_cast<unsigned>(rng.inRange(1, 8))));
        }
        // Invariants: budget respected, accounting exact.
        unsigned sum = 0, valid = 0;
        for (const auto &e : set.entries()) {
            if (e.valid) {
                sum += e.segments;
                ++valid;
            }
        }
        ASSERT_EQ(sum, set.usedSegments());
        ASSERT_EQ(valid, set.validCount());
        ASSERT_LE(sum, 32u);
        ASSERT_LE(valid, 8u);
    }
}

TEST(DecoupledSetTest, ResizeShrinkFreesSegments)
{
    DecoupledSet set(8, 32);
    set.insert(makeEntry(0x100, 8));
    EXPECT_TRUE(set.resize(0x100, 2).empty());
    EXPECT_EQ(set.usedSegments(), 2u);
    EXPECT_EQ(set.find(0x100)->segments, 2u);
}

TEST(DecoupledSetTest, ResizeGrowEvictsOthersNotSelf)
{
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 8; ++a)
        set.insert(makeEntry(a << kLineShift, 4));
    // Grow the MRU line (7): needs 4 more segments -> evict LRU (0).
    set.touch(7 << kLineShift);
    const auto evicted = set.resize(7 << kLineShift, 8);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].line, 0u);
    EXPECT_NE(set.find(7 << kLineShift), nullptr);
}

TEST(DecoupledSetTest, ResizeGrowLruLineDoesNotEvictSelf)
{
    DecoupledSet set(8, 32);
    for (Addr a = 0; a < 8; ++a)
        set.insert(makeEntry(a << kLineShift, 4));
    // Line 0 is LRU; growing it must evict other lines.
    const auto evicted = set.resize(0, 8);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_NE(evicted[0].line, 0u);
    EXPECT_NE(set.find(0), nullptr);
    EXPECT_EQ(set.find(0)->segments, 8u);
}

TEST(DecoupledSetTest, InvalidateKeepsVictimTag)
{
    DecoupledSet set(8, 32);
    auto e = makeEntry(0x340, 4);
    e.dirty = true;
    set.insert(e);
    const TagEntry prior = set.invalidate(0x340);
    EXPECT_TRUE(prior.valid);
    EXPECT_TRUE(prior.dirty);
    EXPECT_EQ(set.find(0x340), nullptr);
    EXPECT_TRUE(set.victimTagMatch(0x340));
    EXPECT_EQ(set.usedSegments(), 0u);
}

TEST(DecoupledSetTest, InvalidateAbsentLineReturnsEmpty)
{
    DecoupledSet set(4, 32);
    EXPECT_FALSE(set.invalidate(0x123000).valid);
}

TEST(DecoupledSetTest, AnyValidPrefetchTracksBits)
{
    DecoupledSet set(8, 32);
    set.insert(makeEntry(0x100));
    EXPECT_FALSE(set.anyValidPrefetch());
    auto e = makeEntry(0x200);
    e.prefetch = true;
    set.insert(e);
    EXPECT_TRUE(set.anyValidPrefetch());
    set.invalidate(0x200);
    EXPECT_FALSE(set.anyValidPrefetch());
}

TEST(DecoupledSetTest, ExtraVictimTagsSurviveFullValidSet)
{
    // 12 tags but only 8 lines of data: 4 permanent victim-tag slots,
    // the paper's uncompressed-adaptive configuration.
    DecoupledSet set(12, 64);
    for (Addr a = 0; a < 8; ++a)
        set.insert(makeEntry(a << kLineShift));
    // Evict 0..3 by inserting 4 more.
    for (Addr a = 8; a < 12; ++a)
        set.insert(makeEntry(a << kLineShift));
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(set.victimTagMatch(a << kLineShift));
}

TEST(DecoupledSetTest, FindTouchReFindReturnsFreshPointer)
{
    // The invalidation hazard the lint heuristic guards against:
    // touch() rotates the entry vector, so a pointer from before the
    // touch dangles. The supported idiom is find -> touch -> re-find;
    // the re-found entry must carry the same state at MRU position.
    DecoupledSet set(8, 32);
    auto e = makeEntry(0x100, 4);
    e.dirty = true;
    set.insert(e);
    set.insert(makeEntry(0x200, 4));
    set.insert(makeEntry(0x300, 4));

    TagEntry *before = set.find(0x100);
    ASSERT_NE(before, nullptr);
    EXPECT_EQ(set.validStackDepth(0x100), 2);

    set.touch(0x100);
    TagEntry *after = set.find(0x100);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->line, 0x100u);
    EXPECT_TRUE(after->dirty);
    EXPECT_EQ(after->segments, 4u);
    EXPECT_EQ(set.validStackDepth(0x100), 0);

    // Mutations through the re-found pointer must land on the entry
    // find() keeps returning.
    after->prefetch = true;
    EXPECT_TRUE(set.find(0x100)->prefetch);
    EXPECT_EQ(set.usedSegments(), 12u);
}

TEST(DecoupledSetTest, InvalidateKeepsValidEntriesInMruPrefix)
{
    // Invalidating a mid-stack line must not strand valid entries
    // behind the new victim tag (the audited valid-prefix invariant).
    DecoupledSet set(8, 32);
    for (Addr a = 1; a <= 4; ++a)
        set.insert(makeEntry(a << kLineShift, 4));
    set.invalidate(2 << kLineShift); // mid-stack

    bool seen_invalid = false;
    for (const auto &e : set.entries()) {
        if (!e.valid)
            seen_invalid = true;
        else
            EXPECT_FALSE(seen_invalid)
                << "valid line behind a victim tag";
    }
    // Relative LRU order of survivors is preserved: 4 MRU ... 1 LRU.
    EXPECT_EQ(set.validStackDepth(4 << kLineShift), 0);
    EXPECT_EQ(set.validStackDepth(3 << kLineShift), 1);
    EXPECT_EQ(set.validStackDepth(1 << kLineShift), 2);
    // The victim tag still matches.
    EXPECT_TRUE(set.victimTagMatch(2 << kLineShift));
}

TEST(DecoupledSetTest, ValidStackDepth)
{
    DecoupledSet set(8, 64);
    set.insert(makeEntry(0x100));
    set.insert(makeEntry(0x200));
    set.insert(makeEntry(0x300));
    EXPECT_EQ(set.validStackDepth(0x300), 0);
    EXPECT_EQ(set.validStackDepth(0x200), 1);
    EXPECT_EQ(set.validStackDepth(0x100), 2);
    EXPECT_EQ(set.validStackDepth(0x999), -1);
}

} // namespace
} // namespace cmpsim
