#include "src/obs/run_report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/obs/profiler.h"

namespace cmpsim {
namespace {

/** Brackets/braces balance outside string literals. */
bool
jsonBalanced(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
        case '"': in_string = true; break;
        case '[': stack.push_back(']'); break;
        case '{': stack.push_back('}'); break;
        case ']':
        case '}':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
        default: break;
        }
    }
    return !in_string && stack.empty();
}

TEST(RunReportTest, CaptureStatsCopiesEveryCounterAndHistogram)
{
    StatRegistry reg;
    Counter a, b;
    Histogram h(10.0, 4);
    reg.registerCounter("b.second", &b);
    reg.registerCounter("a.first", &a);
    reg.registerHistogram("lat", &h);
    a += 3;
    b += 9;
    h.sample(5);
    h.sample(15);
    h.sample(-1);

    RunReport report;
    captureStats(reg, report);

    ASSERT_EQ(report.counters.size(), 2u);
    EXPECT_EQ(report.counters[0].first, "a.first"); // sorted
    EXPECT_EQ(report.counters[0].second, 3u);
    EXPECT_EQ(report.counters[1].first, "b.second");
    EXPECT_EQ(report.counters[1].second, 9u);

    ASSERT_EQ(report.histograms.size(), 1u);
    const HistogramReport &hr = report.histograms[0];
    EXPECT_EQ(hr.name, "lat");
    EXPECT_EQ(hr.count, 3u);
    EXPECT_EQ(hr.underflow, 1u);
    EXPECT_DOUBLE_EQ(hr.p50, h.quantile(0.50));
    EXPECT_DOUBLE_EQ(hr.p99, h.quantile(0.99));
}

TEST(RunReportTest, JsonRoundTripsEveryField)
{
    RunReport report;
    report.benchmark = "zeus";
    report.seed = 42;
    report.config_fingerprint = 0xdeadbeefu;
    report.warmup_per_core = 1000;
    report.measure_per_core = 500;
    report.cycles = 12345;
    report.instructions = 6789;
    report.ipc = 0.5;
    report.counters.emplace_back("l2.demand_misses", 17);
    HistogramReport hr;
    hr.name = "mem.read_latency_hist";
    hr.count = 4;
    hr.p99 = 250.0;
    report.histograms.push_back(hr);
    report.wall_seconds = 1.25;
    report.max_rss_kb = 2048;
    ProfSample prof;
    prof.name = "eq.dispatch";
    prof.calls = 7;
    prof.total_ns = 900;
    report.prof.push_back(prof);

    std::ostringstream os;
    writeRunReport(os, report);
    const std::string json = os.str();

    EXPECT_TRUE(jsonBalanced(json));
    EXPECT_NE(json.find("\"schema\": \"cmpsim.run_report.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"zeus\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": 12345"), std::string::npos);
    EXPECT_NE(json.find("\"l2.demand_misses\": 17"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"mem.read_latency_hist\""),
              std::string::npos);
    EXPECT_NE(json.find("\"p99\": 250"), std::string::npos);
    EXPECT_NE(json.find("\"max_rss_kb\": 2048"), std::string::npos);
    EXPECT_NE(json.find("\"site\": \"eq.dispatch\""), std::string::npos);
    EXPECT_NE(json.find("\"calls\": 7"), std::string::npos);
    // "error" is omitted on the happy path.
    EXPECT_EQ(json.find("\"error\""), std::string::npos);
}

TEST(RunReportTest, FailedRunReportCarriesErrorAndStatus)
{
    RunReport report;
    report.status = "watchdog";
    report.error = "[watchdog] run: no instruction retired";
    std::ostringstream os;
    writeRunReport(os, report);
    const std::string json = os.str();
    EXPECT_TRUE(jsonBalanced(json));
    EXPECT_NE(json.find("\"status\": \"watchdog\""), std::string::npos);
    EXPECT_NE(json.find("\"error\": \"[watchdog] run: no instruction "
                        "retired\""),
              std::string::npos);
}

TEST(RunReportTest, MaxRssIsReported)
{
    // getrusage can't reasonably fail for RUSAGE_SELF on Linux, and a
    // running gtest binary occupies at least a megabyte.
    EXPECT_GT(currentMaxRssKb(), 1024u);
}

TEST(ProfilerTest, ScopedTimersAccumulateWhenEnabled)
{
    profReset();
    setProfEnabled(true);
    for (int i = 0; i < 10; ++i) {
        CMPSIM_PROF_SCOPE("test.prof_site");
    }
    setProfEnabled(false);

    const std::vector<ProfSample> snap = profSnapshot();
    const ProfSample *site = nullptr;
    for (const ProfSample &s : snap) {
        if (s.name == "test.prof_site")
            site = &s;
    }
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->calls, 10u);

    profReset();
    for (const ProfSample &s : profSnapshot())
        EXPECT_NE(s.name, "test.prof_site"); // zero-call sites dropped
}

TEST(ProfilerTest, DisabledScopesCostNoSamples)
{
    profReset();
    setProfEnabled(false);
    {
        CMPSIM_PROF_SCOPE("test.disabled_site");
    }
    for (const ProfSample &s : profSnapshot())
        EXPECT_NE(s.name, "test.disabled_site");
}

} // namespace
} // namespace cmpsim
