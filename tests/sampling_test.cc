/**
 * @file
 * Statistical sampling engine contract (DESIGN.md §14): the
 * CMPSIM_SAMPLING plan grammar and validation, fast-forward
 * instruction conservation, detail-interval stat isolation, the CI
 * stopping rule, sampled-run determinism across repeats and lane
 * counts, mid-plan checkpoint/restore to a byte-identical final
 * report, and the MatrixSampler's leader-equivalence guarantee.
 */

#include "src/sample/sampling_controller.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/core_api/experiment.h"
#include "src/core_api/parallel_runner.h"
#include "src/sample/matrix_sampler.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

/** Small full-feature config; sampling plans are set per test. */
SystemConfig
smallConfig()
{
    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/8,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/false);
    cfg.seed = 4242;
    return cfg;
}

/** Stats fingerprint of a finished system, exactly as the
 *  determinism gate hashes it. */
std::uint64_t
statsHash(CmpSystem &sys)
{
    std::ostringstream out;
    sys.stats().dump(out);
    out << "cycles " << sys.cycles() << "\n";
    out << "instructions " << sys.instructions() << "\n";
    return fnv1a(out.str());
}

/** Bit-level fingerprint of a result's per-interval samples. */
std::uint64_t
samplesHash(const SamplingResult &r)
{
    std::ostringstream out;
    out.precision(17);
    for (const IntervalSample &s : r.samples) {
        out << s.cycles << " " << s.instructions << " " << s.ipc << " "
            << s.l2_miss_rate << " " << s.l2_mpki << " "
            << s.bandwidth_gbps << " " << s.compression_ratio << "\n";
    }
    return fnv1a(out.str());
}

class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name_, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

    EnvGuard(const EnvGuard &) = delete;
    EnvGuard &operator=(const EnvGuard &) = delete;

  private:
    const char *name_;
};

// ------------------------------------------------------ plan grammar

TEST(SamplingPlanTest, ParsesBareTriple)
{
    const SamplingPlan p = SamplingPlan::parse("100000:5000:30");
    EXPECT_EQ(p.ff_per_core, 100000u);
    EXPECT_EQ(p.detail_per_core, 5000u);
    EXPECT_EQ(p.max_intervals, 30u);
    EXPECT_EQ(p.ci_target_pct, 0.0);
    EXPECT_TRUE(p.armed());
    // Without a warm suffix, the whole fast-forward phase warms.
    EXPECT_EQ(p.warm_per_core, SamplingPlan::kWarmAll);
    EXPECT_EQ(p.warmPerCore(), 100000u);
}

TEST(SamplingPlanTest, ParsesCiAndWarmSuffixesInEitherOrder)
{
    const SamplingPlan a =
        SamplingPlan::parse("100000:5000:30:ci2.5:warm20000");
    EXPECT_EQ(a.ci_target_pct, 2.5);
    EXPECT_EQ(a.warm_per_core, 20000u);
    EXPECT_EQ(a.warmPerCore(), 20000u);

    const SamplingPlan b =
        SamplingPlan::parse("100000:5000:30:warm20000:ci2.5");
    EXPECT_EQ(b.ci_target_pct, 2.5);
    EXPECT_EQ(b.warm_per_core, 20000u);
}

TEST(SamplingPlanTest, WarmTailClampsToFastForwardLength)
{
    const SamplingPlan p =
        SamplingPlan::parse("10000:5000:4:warm999999");
    EXPECT_EQ(p.warm_per_core, 999999u);
    EXPECT_EQ(p.warmPerCore(), 10000u);
}

TEST(SamplingPlanTest, DefaultPlanIsDisarmed)
{
    EXPECT_FALSE(SamplingPlan{}.armed());
    const SamplingPlan zero = SamplingPlan::parse("0:5000:0");
    EXPECT_FALSE(zero.armed());
}

TEST(SamplingPlanTest, MalformedSpecsThrowConfigError)
{
    EXPECT_THROW(SamplingPlan::parse(""), ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000"), ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000"), ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000:x"), ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000:30:ci"), ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000:30:warm"),
                 ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000:30:fast"),
                 ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000:30junk"),
                 ConfigError);
    EXPECT_THROW(SamplingPlan::parse("100000:5000:30:ci5:2"),
                 ConfigError);
}

TEST(SamplingPlanTest, EnvSpecIsAppliedAndValidatedByMakeConfig)
{
    EnvGuard env("CMPSIM_SAMPLING", "8000:2000:3:warm1000");
    const SystemConfig cfg =
        makeConfig(2, 8, false, false, false, false);
    EXPECT_TRUE(cfg.sampling.armed());
    EXPECT_EQ(cfg.sampling.ff_per_core, 8000u);
    EXPECT_EQ(cfg.sampling.detail_per_core, 2000u);
    EXPECT_EQ(cfg.sampling.max_intervals, 3u);
    EXPECT_EQ(cfg.sampling.warm_per_core, 1000u);
}

TEST(SamplingPlanTest, ValidateRejectsUnmeasurablePlans)
{
    SystemConfig cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("8000:1:3");
    cfg.sampling.detail_per_core = 0; // pure fast-forward
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("8000:2000:3:ci150");
    EXPECT_THROW(cfg.validate(), ConfigError);
}

// --------------------------------------------- plan execution basics

TEST(SamplingRunTest, ConservesFastForwardInstructions)
{
    SystemConfig cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("6000:2000:4:warm2000");
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    SamplingController ctl(sys);
    const SamplingResult res = ctl.run();

    EXPECT_EQ(res.intervals, 4u);
    // Every interval fast-forwards ff_per_core on each core.
    const std::uint64_t expected_ff = 6000ull * 2 * 4;
    EXPECT_EQ(res.ff_instructions, expected_ff);
    EXPECT_EQ(sys.stats().counter("sample.ff_instructions"),
              expected_ff);
    // The skip/warm split: 4000 of each 6000 skip, 2000 warm.
    EXPECT_EQ(sys.stats().counter("sample.ff_skip_instructions"),
              4000ull * 2 * 4);
    // The conservation audit (sample.conservation) must hold.
    EXPECT_TRUE(sys.audits().check().empty());
}

TEST(SamplingRunTest, DetailTotalsExcludeFastForward)
{
    SystemConfig cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("6000:2000:4");
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    const SamplingResult res = SamplingController(sys).run();

    // The measured instruction total covers exactly the detailed
    // windows (a run() window can overshoot its budget by at most a
    // few instructions per core), never the 48k fast-forwarded ones.
    const double budget = 2000.0 * 2 * 4;
    EXPECT_GE(res.detail_instructions, budget);
    EXPECT_LT(res.detail_instructions, budget + 100 * 2 * 4);

    // The per-interval retired-counter deltas agree with the total.
    double retired = 0;
    for (unsigned c = 0; c < 2; ++c) {
        retired += static_cast<double>(res.totals.counter(
            "core." + std::to_string(c) + ".retired"));
    }
    EXPECT_EQ(retired, res.detail_instructions);

    // Every headline summary reduces over all measured intervals.
    EXPECT_EQ(res.samples.size(), 4u);
    EXPECT_EQ(res.ipc.n, 4u);
    EXPECT_GT(res.ipc.mean, 0.0);
    EXPECT_GT(res.cycles.ci95, 0.0);
}

TEST(SamplingRunTest, CiStoppingRuleFiresEarly)
{
    SystemConfig cfg = smallConfig();
    // A 90% IPC half-width target is met after the minimum two
    // intervals on any stable workload.
    cfg.sampling = SamplingPlan::parse("3000:2000:50:ci90");
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    const SamplingResult res = SamplingController(sys).run();

    EXPECT_TRUE(res.stopped_early);
    EXPECT_LT(res.intervals, 50u);
    EXPECT_GE(res.intervals, 2u);
    EXPECT_EQ(res.samples.size(), res.intervals);
}

// ---------------------------------------------------- determinism

TEST(SamplingDeterminismTest, RepeatRunsAreByteIdentical)
{
    SystemConfig cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("6000:2000:3:warm2000");

    std::uint64_t stats[2];
    std::uint64_t samples[2];
    for (int i = 0; i < 2; ++i) {
        CmpSystem sys(cfg, benchmarkParams("apsi"));
        const SamplingResult res = SamplingController(sys).run();
        stats[i] = statsHash(sys);
        samples[i] = samplesHash(res);
    }
    EXPECT_EQ(stats[0], stats[1]);
    EXPECT_EQ(samples[0], samples[1]);
}

TEST(SamplingDeterminismTest, LaneCountDoesNotChangeTheReport)
{
    // The sampled path composes with the sharded event kernel: the
    // published summary must be identical at any lane count.
    PointSpec spec;
    spec.config = smallConfig();
    spec.config.sampling = SamplingPlan::parse("6000:2000:3:warm2000");
    spec.benchmark = "zeus";
    spec.lengths.warmup_per_core = 2000;
    spec.lengths.measure_per_core = 0; // sampled runs ignore it
    spec.seeds = 2;

    PointSpec wide = spec;
    wide.config.lanes = 4;

    const auto narrow_res = runPoints({spec});
    const auto wide_res = runPoints({wide});
    EXPECT_EQ(fnv1a(summaryBytes(narrow_res.front())),
              fnv1a(summaryBytes(wide_res.front())));
}

// ------------------------------------------- checkpoint mid-plan

TEST(SamplingCheckpointTest, MidPlanRestoreFinishesByteIdentical)
{
    SystemConfig cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("4000:2000:4:warm1000");
    const std::string path =
        ::testing::TempDir() + "cmpsim_sampling_midplan.ckpt";
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());

    // Uninterrupted reference.
    std::uint64_t want_stats = 0;
    std::uint64_t want_samples = 0;
    {
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        const SamplingResult res = SamplingController(sys).run();
        want_stats = statsHash(sys);
        want_samples = samplesHash(res);
    }

    // Autosave every 1000 timed cycles: the last snapshot lands
    // inside a detailed interval, mid-plan.
    {
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every1000");
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        SamplingController(sys).run();
    }

    // Resume from the mid-plan snapshot and finish the plan.
    {
        EnvGuard restore("CMPSIM_RESTORE", path);
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        const SamplingResult res = SamplingController(sys).run();
        // The restored cursor sits mid-plan, so the resumed half
        // measures fewer intervals than the full plan...
        EXPECT_EQ(res.intervals, 4u);
        EXPECT_EQ(res.samples.size(), 4u);
        // ...but the final report is byte-identical to the
        // uninterrupted run: the serialized SampleState carries the
        // closed intervals and the open interval's baseline.
        EXPECT_EQ(statsHash(sys), want_stats);
        EXPECT_EQ(samplesHash(res), want_samples);
    }

    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

// ------------------------------------------------- matrix sampler

TEST(MatrixSamplerTest, LeaderIsByteIdenticalToStandaloneRun)
{
    SystemConfig base = smallConfig();
    base.sampling = SamplingPlan::parse("6000:2000:3:warm2000");
    SystemConfig pref = base;
    pref.prefetching = false; // a genuinely different follower config

    // Standalone run of the leader's exact config.
    std::uint64_t want_stats = 0;
    std::uint64_t want_samples = 0;
    {
        CmpSystem sys(base, benchmarkParams("zeus"));
        const SamplingResult res = SamplingController(sys).run();
        want_stats = statsHash(sys);
        want_samples = samplesHash(res);
    }

    CmpSystem lead(base, benchmarkParams("zeus"));
    CmpSystem follow(pref, benchmarkParams("zeus"));
    const auto results = MatrixSampler({&lead, &follow}).run();
    ASSERT_EQ(results.size(), 2u);

    // Journaling the leader's skips and sharing them must not perturb
    // the leader's own execution in any way.
    EXPECT_EQ(statsHash(lead), want_stats);
    EXPECT_EQ(samplesHash(results[0]), want_samples);

    // Followers measure the full plan on the same workload windows.
    EXPECT_EQ(results[1].intervals, 3u);
    EXPECT_EQ(results[1].samples.size(), 3u);
    EXPECT_GT(results[1].ipc.mean, 0.0);
    EXPECT_NE(samplesHash(results[1]), samplesHash(results[0]));

    // Both systems' invariant audits (including fast-forward
    // conservation on the adopted skips) hold.
    EXPECT_TRUE(lead.audits().check().empty());
    EXPECT_TRUE(follow.audits().check().empty());
}

TEST(MatrixSamplerTest, MatrixRunsAreDeterministic)
{
    SystemConfig base = smallConfig();
    base.sampling = SamplingPlan::parse("6000:2000:3:warm2000");
    SystemConfig compr = base;
    compr.cache_compression = false;
    compr.link_compression = false;

    std::uint64_t follower_hash[2];
    for (int i = 0; i < 2; ++i) {
        CmpSystem lead(base, benchmarkParams("apsi"));
        CmpSystem follow(compr, benchmarkParams("apsi"));
        const auto results = MatrixSampler({&lead, &follow}).run();
        follower_hash[i] =
            samplesHash(results[1]) ^ statsHash(follow);
    }
    EXPECT_EQ(follower_hash[0], follower_hash[1]);
}

// ------------------------------------------------- experiment layer

TEST(SampledExperimentTest, RunOnceReportsSampledMetrics)
{
    SystemConfig cfg = smallConfig();
    cfg.sampling = SamplingPlan::parse("6000:2000:3");
    RunLengths lengths;
    lengths.warmup_per_core = 2000;
    lengths.measure_per_core = 0; // sampled runs ignore it

    const RunResult r = runOnce(cfg, "zeus", lengths);
    EXPECT_TRUE(r.sampled.armed);
    EXPECT_EQ(r.sampled.intervals, 3u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.sampled.ipc.mean, 0.0);
    EXPECT_GT(r.sampled.ipc.ci95, 0.0);
    EXPECT_GT(r.sampled.ff_instructions, 0.0);
    // Measured counters cover only the detailed windows.
    const double budget = 2000.0 * 2 * 3;
    EXPECT_GE(r.instructions, budget);
    EXPECT_LT(r.instructions, budget * 1.1);
}

} // namespace
} // namespace cmpsim
