#include "src/audit/audits.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/sim_error.h"

#include "src/compression/bdi.h"
#include "src/compression/fpc.h"
#include "src/core_api/cmp_system.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

TagEntry
makeEntry(Addr line, unsigned segments = kSegmentsPerLine)
{
    TagEntry e;
    e.line = line;
    e.valid = true;
    e.segments = static_cast<std::uint8_t>(segments);
    return e;
}

// ---------------------------------------------------------- registry

TEST(InvariantRegistryTest, CheckCollectsFailuresWithoutAborting)
{
    InvariantRegistry reg;
    reg.add("always.ok", [](std::string &) { return true; });
    reg.add("always.bad", [](std::string &why) {
        why = "broken on purpose";
        return false;
    });
    reg.add("also.bad", [](std::string &) { return false; });

    const auto failures = reg.check();
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].name, "always.bad");
    EXPECT_EQ(failures[0].detail, "broken on purpose");
    EXPECT_EQ(failures[1].name, "also.bad");
    EXPECT_EQ(reg.passesRun(), 1u);
}

TEST(InvariantRegistryTest, EnforcePanicsWithInvariantName)
{
    InvariantRegistry reg;
    reg.add("doomed.check", [](std::string &why) {
        why = "counter drifted by 3";
        return false;
    });
    try {
        reg.enforce();
        FAIL() << "enforce() did not throw";
    } catch (const InvariantError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("doomed.check"), std::string::npos) << what;
        EXPECT_NE(what.find("counter drifted by 3"), std::string::npos)
            << what;
    }
}

TEST(InvariantRegistryTest, DuplicateNameIsFatal)
{
    InvariantRegistry reg;
    reg.add("dup", [](std::string &) { return true; });
    EXPECT_DEATH(reg.add("dup", [](std::string &) { return true; }),
                 "duplicate invariant name");
}

TEST(InvariantRegistryTest, NamesPreserveRegistrationOrder)
{
    InvariantRegistry reg;
    reg.add("b", [](std::string &) { return true; });
    reg.add("a", [](std::string &) { return true; });
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "b");
    EXPECT_EQ(names[1], "a");
}

// ----------------------------------------------- decoupled-set audit

TEST(AuditDecoupledSetTest, CleanSetPasses)
{
    DecoupledSet set(8, 32);
    set.insert(makeEntry(0x100, 4));
    set.insert(makeEntry(0x200, 8));
    std::string why;
    EXPECT_TRUE(auditDecoupledSet(set, false, why)) << why;
}

TEST(AuditDecoupledSetTest, DetectsSegmentAccountingDrift)
{
    DecoupledSet set(8, 32);
    set.insert(makeEntry(0x100, 4));
    // Corrupt the per-tag charge behind the set's back: the cached
    // used_segments_ total no longer matches the sum over tags.
    set.entryForTest(0).segments = 6;
    std::string why;
    EXPECT_FALSE(auditDecoupledSet(set, false, why));
    EXPECT_NE(why.find("segment accounting drift"), std::string::npos)
        << why;
}

TEST(AuditDecoupledSetTest, DetectsValidEntryBehindVictimTag)
{
    DecoupledSet set(4, 32);
    set.insert(makeEntry(0x100, 8));
    set.insert(makeEntry(0x200, 8));
    // Invalidate the MRU tag directly, stranding 0x100 behind it.
    set.entryForTest(0).valid = false;
    set.entryForTest(0).segments = kSegmentsPerLine;
    std::string why;
    EXPECT_FALSE(auditDecoupledSet(set, false, why));
    EXPECT_NE(why.find("MRU prefix"), std::string::npos) << why;
}

TEST(AuditDecoupledSetTest, DetectsDuplicateLineAddress)
{
    DecoupledSet set(8, 32);
    set.insert(makeEntry(0x100, 4));
    set.insert(makeEntry(0x200, 4));
    set.entryForTest(0).line = 0x100; // now two tags claim 0x100
    std::string why;
    EXPECT_FALSE(auditDecoupledSet(set, false, why));
    EXPECT_NE(why.find("duplicate valid line"), std::string::npos)
        << why;
}

TEST(AuditDecoupledSetTest, DetectsPartialChargeWhenFullRequired)
{
    DecoupledSet set(8, 64);
    set.insert(makeEntry(0x100, 8));
    std::string why;
    EXPECT_TRUE(auditDecoupledSet(set, true, why)) << why;
    // An uncompressed cache must charge every line exactly 8 segments.
    DecoupledSet partial(8, 64);
    partial.insert(makeEntry(0x200, 3));
    EXPECT_FALSE(auditDecoupledSet(partial, true, why));
    EXPECT_NE(why.find("expected exactly"), std::string::npos) << why;
}

TEST(AuditDecoupledSetTest, DetectsLiveStateOnInvalidTag)
{
    DecoupledSet set(4, 32);
    set.insert(makeEntry(0x100, 8));
    set.invalidate(0x100);
    // A victim tag that still claims dirty data is a leak waiting to
    // be re-inserted.
    set.entryForTest(set.entries().size() - 1).dirty = true;
    std::string why;
    EXPECT_FALSE(auditDecoupledSet(set, false, why));
    EXPECT_NE(why.find("live"), std::string::npos) << why;
}

// ------------------------------------------------- round-trip audit

TEST(AuditRoundTripTest, FpcAndBdiSurviveStructuredData)
{
    FpcCompressor fpc;
    BdiCompressor bdi;
    LineData line{};
    for (unsigned i = 0; i < kLineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(i * 7 + 3);
    std::string why;
    EXPECT_TRUE(auditCompressorRoundTrip(fpc, line, why)) << why;
    EXPECT_TRUE(auditCompressorRoundTrip(bdi, line, why)) << why;
}

namespace {
/** A deliberately lossy "compressor" the audit must reject. */
class LossyCompressor : public Compressor
{
  public:
    std::string name() const override { return "lossy"; }

    CompressedSize
    compress(const LineData &line, BitStream *out) const override
    {
        (void)line;
        if (out)
            *out = BitStream{};
        return CompressedSize{64, 1};
    }

    LineData
    decompress(const BitStream &, const CompressedSize &) const override
    {
        LineData garbage{};
        garbage[5] = 0xAB;
        return garbage;
    }
};
} // namespace

TEST(AuditRoundTripTest, DetectsLossyCompressor)
{
    LossyCompressor lossy;
    LineData line{};
    line[5] = 0xCD;
    std::string why;
    EXPECT_FALSE(auditCompressorRoundTrip(lossy, line, why));
    EXPECT_NE(why.find("round-trip mismatch at byte 5"),
              std::string::npos)
        << why;
}

// ------------------------------------------------ event-queue audit

TEST(AuditEventQueueTest, CleanQueuePassesAndAdvancesTrack)
{
    EventQueue eq;
    InvariantRegistry reg;
    registerEventQueueAudits(reg, eq, "eq");
    eq.schedule(10, [] {});
    EXPECT_TRUE(reg.check().empty());
    eq.advanceTo(5);
    EXPECT_TRUE(reg.check().empty());
    eq.advanceTo(50);
    EXPECT_TRUE(reg.check().empty());
}

// ------------------------------------------------ whole-system audit

TEST(AuditSystemTest, FullSystemRunPassesAllAudits)
{
    SystemConfig cfg = makeConfig(2, 8, true, true, true, true);
    cfg.audit_interval = 5000;
    cfg.audit_fill_roundtrip = true;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(3000);
    sys.run(2000); // enforces periodically + at end-of-run
    EXPECT_GT(sys.audits().size(), 10u);
    EXPECT_GE(sys.audits().passesRun(), 1u);
    const auto failures = sys.audits().check();
    EXPECT_TRUE(failures.empty())
        << failures[0].name << ": " << failures[0].detail;
}

TEST(AuditSystemTest, CorruptedL2SetIsCaughtAndNamed)
{
    SystemConfig cfg = makeConfig(2, 8, false, false, false, false);
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(2000);
    sys.run(500);

    // Reach into a set the run populated and corrupt one tag's
    // segment charge.
    DecoupledSet *victim = nullptr;
    for (unsigned i = 0; i < sys.config().l2Params().sets; ++i) {
        if (sys.l2().setAt(i).validCount() > 0) {
            victim = const_cast<DecoupledSet *>(&sys.l2().setAt(i));
            break;
        }
    }
    ASSERT_NE(victim, nullptr) << "run left the L2 empty";
    victim->entryForTest(0).segments = 3;

    const auto failures = sys.audits().check();
    ASSERT_FALSE(failures.empty());
    EXPECT_EQ(failures[0].name, "l2.set_integrity");
    try {
        sys.audits().enforce();
        FAIL() << "enforce() did not throw";
    } catch (const InvariantError &e) {
        EXPECT_NE(std::string(e.what()).find("l2.set_integrity"),
                  std::string::npos)
            << e.what();
    }
}

TEST(AuditSystemTest, DesyncedAdaptiveControllerIsCaughtAndNamed)
{
    SystemConfig cfg = makeConfig(2, 8, false, false, true, true);
    CmpSystem sys(cfg, benchmarkParams("apsi"));
    sys.warmup(2000);
    sys.run(500);

    // Feed the shared L2 controller events the L2 never saw: the
    // useful-prefetch cross-check must notice the disagreement.
    for (int i = 0; i < 3; ++i)
        sys.l2Adaptive().onUsefulPrefetch();
    const auto failures = sys.audits().check();
    ASSERT_FALSE(failures.empty());
    bool found = false;
    for (const auto &f : failures)
        found = found || f.name == "l2.adaptive_feedback";
    EXPECT_TRUE(found) << "expected l2.adaptive_feedback to fire";
}

} // namespace
} // namespace cmpsim
