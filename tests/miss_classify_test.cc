#include "src/core_api/miss_classify.h"

#include <gtest/gtest.h>

namespace cmpsim {
namespace {

Addr
la(std::uint64_t i)
{
    return i << kLineShift;
}

TEST(MissProfileTest, CountsByType)
{
    MissProfile p;
    p.record(ReqType::Demand, la(1));
    p.record(ReqType::Demand, la(1));
    p.record(ReqType::Demand, la(2));
    p.record(ReqType::L2Prefetch, la(3));
    EXPECT_EQ(p.totalDemandMisses(), 3u);
    EXPECT_EQ(p.totalPrefetchFills(), 1u);
}

TEST(MissClassifyTest, EmptyBaseYieldsZeros)
{
    MissProfile e;
    const auto c = classifyMisses(e, e, e, e);
    EXPECT_DOUBLE_EQ(c.totalDemandFraction(), 0.0);
}

TEST(MissClassifyTest, AllUnavoidable)
{
    MissProfile base, same;
    for (int i = 0; i < 10; ++i) {
        base.record(ReqType::Demand, la(i));
        same.record(ReqType::Demand, la(i));
    }
    const auto c = classifyMisses(base, same, same, same);
    EXPECT_DOUBLE_EQ(c.unavoidable, 1.0);
    EXPECT_DOUBLE_EQ(c.only_compression, 0.0);
    EXPECT_DOUBLE_EQ(c.only_prefetching, 0.0);
    EXPECT_DOUBLE_EQ(c.either, 0.0);
}

TEST(MissClassifyTest, DisjointAvoidanceSplitsCleanly)
{
    // Lines 0-4 avoided only by compression; 5-9 only by prefetching.
    MissProfile base, with_c, with_p, with_cp;
    for (int i = 0; i < 10; ++i)
        base.record(ReqType::Demand, la(i));
    for (int i = 5; i < 10; ++i)
        with_c.record(ReqType::Demand, la(i)); // compression kept 5-9
    for (int i = 0; i < 5; ++i)
        with_p.record(ReqType::Demand, la(i)); // prefetching kept 0-4
    const auto c = classifyMisses(base, with_c, with_p, with_cp);
    EXPECT_DOUBLE_EQ(c.only_compression, 0.5);
    EXPECT_DOUBLE_EQ(c.only_prefetching, 0.5);
    EXPECT_DOUBLE_EQ(c.either, 0.0);
    EXPECT_DOUBLE_EQ(c.unavoidable, 0.0);
    EXPECT_NEAR(c.totalDemandFraction(), 1.0, 1e-12);
}

TEST(MissClassifyTest, OverlapCountedAsEither)
{
    // Line 0 avoided by both techniques: the negative-interaction
    // intersection of Section 5.2.
    MissProfile base, with_c, with_p, with_cp;
    base.record(ReqType::Demand, la(0));
    base.record(ReqType::Demand, la(1));
    with_c.record(ReqType::Demand, la(1));
    with_p.record(ReqType::Demand, la(1));
    const auto c = classifyMisses(base, with_c, with_p, with_cp);
    EXPECT_DOUBLE_EQ(c.either, 0.5);
    EXPECT_DOUBLE_EQ(c.unavoidable, 0.5);
}

TEST(MissClassifyTest, PartialCountsClampAtZero)
{
    // A config with MORE misses on a line than base must not create
    // negative avoidance.
    MissProfile base, with_c, with_p, with_cp;
    base.record(ReqType::Demand, la(0));
    with_c.record(ReqType::Demand, la(0));
    with_c.record(ReqType::Demand, la(0)); // worse under compression
    with_p.record(ReqType::Demand, la(0));
    const auto c = classifyMisses(base, with_c, with_p, with_cp);
    EXPECT_DOUBLE_EQ(c.only_compression, 0.0);
    EXPECT_DOUBLE_EQ(c.unavoidable, 1.0);
}

TEST(MissClassifyTest, PrefetchesAvoidedByCompression)
{
    MissProfile base, with_c, with_p, with_cp;
    base.record(ReqType::Demand, la(0));
    // Prefetching alone issues 4 fills; with compression only 1.
    for (int i = 0; i < 4; ++i)
        with_p.record(ReqType::L2Prefetch, la(10 + i));
    with_cp.record(ReqType::L2Prefetch, la(10));
    const auto c = classifyMisses(base, with_c, with_p, with_cp);
    EXPECT_DOUBLE_EQ(c.prefetches_kept, 1.0);   // of base misses
    EXPECT_DOUBLE_EQ(c.prefetches_avoided, 3.0);
}

} // namespace
} // namespace cmpsim
