#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core_api/cmp_system.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "cmpsim_event_trace_" + name + ".json";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Structural JSON validation without a parser dependency: brackets
 * and braces balance outside string literals, strings terminate, and
 * the document reduces to exactly one top-level value.
 */
bool
jsonBalanced(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
        case '"': in_string = true; break;
        case '[': stack.push_back(']'); break;
        case '{': stack.push_back('}'); break;
        case ']':
        case '}':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
        default: break;
        }
    }
    return !in_string && stack.empty();
}

/** Every "ts" of events named @p name, in file order. */
std::vector<std::uint64_t>
timestampsOf(const std::string &text, const std::string &name)
{
    std::vector<std::uint64_t> out;
    const std::string needle = "\"name\":\"" + name + "\"";
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find(needle) == std::string::npos)
            continue;
        const auto ts_pos = line.find("\"ts\":");
        if (ts_pos == std::string::npos) {
            ADD_FAILURE() << "event without ts: " << line;
            continue;
        }
        out.push_back(std::strtoull(line.c_str() + ts_pos + 5, nullptr, 10));
    }
    return out;
}

/** One deterministic mini-run; returns the stats fingerprint text. */
std::string
runFingerprint()
{
    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/4,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/true);
    cfg.seed = 99;
    cfg.sample_interval = 5000;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(5000);
    sys.run(3000);
    std::ostringstream os;
    sys.stats().dump(os);
    os << "cycles " << sys.cycles() << "\n";
    os << "instructions " << sys.instructions() << "\n";
    return os.str();
}

TEST(EventTraceTest, FileIsWellFormedJsonArray)
{
    const std::string path = tempPath("wellformed");
    {
        Tracer tracer(path);
        Tracer::arm(&tracer);
        TraceThreadScope scope(kTraceSimPid, 3);
        traceInstant("unit.event", 10, {{"line", std::uint64_t{64}}});
        traceCounter("unit.counter", 20, {{"v", 1.5}});
        tracer.completeCycles("unit.span", 30, 50, {{"tag", "x"}});
        tracer.completeWall("unit.wall", 0, 100);
        Tracer::arm(nullptr);
        EXPECT_GE(tracer.eventsWritten(), 6u); // 2 metadata + 4 above
    }
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 2), "]\n");
    EXPECT_TRUE(jsonBalanced(text));
    // The escaping path holds up for quotes and backslashes too.
    EXPECT_NE(text.find("\"unit.event\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(EventTraceTest, ProbesAreInertWhenUnarmed)
{
    ASSERT_EQ(Tracer::armed(), nullptr);
    EXPECT_FALSE(traceEnabled());
    // Must be safe (and free) to call with no tracer.
    traceInstant("nobody.listening", 1, {{"x", std::uint64_t{2}}});
    traceCounter("nobody.listening", 1, {{"x", 1.0}});
}

TEST(EventTraceTest, TracedRunEmitsMonotonicObservabilityTracks)
{
    const std::string path = tempPath("monotonic");
    {
        TraceSession session(path);
        ASSERT_TRUE(session.active());
        (void)runFingerprint();
    }
    const std::string text = slurp(path);
    EXPECT_TRUE(jsonBalanced(text));

    // The sampler's counter tracks and the wall-clock phase events
    // are emitted in time order.
    for (const char *track : {"obs.ipc", "obs.link", "phase.measure"}) {
        const std::vector<std::uint64_t> ts = timestampsOf(text, track);
        ASSERT_FALSE(ts.empty()) << track << " missing from trace";
        for (std::size_t i = 1; i < ts.size(); ++i)
            EXPECT_LE(ts[i - 1], ts[i]) << track;
    }
    // The probe sites actually fired during a full-featured run.
    EXPECT_NE(text.find("\"l2.fill\""), std::string::npos);
    EXPECT_NE(text.find("\"link.transfer\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(EventTraceTest, TracingDoesNotPerturbSimulation)
{
    const std::string baseline = runFingerprint();
    const std::string path = tempPath("perturb");
    std::string traced;
    {
        TraceSession session(path);
        ASSERT_TRUE(session.active());
        traced = runFingerprint();
    }
    // Byte-identical stats: the probes only read simulator state.
    EXPECT_EQ(baseline, traced);
    std::remove(path.c_str());
}

} // namespace
} // namespace cmpsim
