#include "src/mem/priority_link.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmpsim {
namespace {

class PriorityLinkTest : public ::testing::Test
{
  protected:
    EventQueue eq;
};

TEST_F(PriorityLinkTest, SingleTransferSerialization)
{
    PriorityLink link(eq, 4.0, false);
    Cycle done = 0;
    link.send(72, LinkClass::Demand, 100, [&](Cycle c) { done = c; });
    eq.drain();
    EXPECT_EQ(done, 118u); // 72 B @ 4 B/cycle
    EXPECT_EQ(link.totalBytes(), 72u);
    EXPECT_EQ(link.transfers(), 1u);
}

TEST_F(PriorityLinkTest, SameClassIsFifo)
{
    PriorityLink link(eq, 4.0, false);
    std::vector<int> order;
    link.send(40, LinkClass::Demand, 0,
              [&](Cycle) { order.push_back(1); });
    link.send(40, LinkClass::Demand, 0,
              [&](Cycle) { order.push_back(2); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(PriorityLinkTest, DemandOvertakesQueuedPrefetch)
{
    PriorityLink link(eq, 4.0, false);
    std::vector<int> order;
    // One prefetch occupies the link; more prefetches queue; a demand
    // arriving later must transmit before the queued prefetches.
    for (int i = 0; i < 3; ++i) {
        link.send(400, LinkClass::Prefetch, 0,
                  [&, i](Cycle) { order.push_back(10 + i); });
    }
    link.send(40, LinkClass::Demand, 5,
              [&](Cycle) { order.push_back(1); });
    eq.drain();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 10); // already in flight
    EXPECT_EQ(order[1], 1);  // demand jumps the prefetch queue
}

TEST_F(PriorityLinkTest, PrefetchOvertakesQueuedWriteback)
{
    PriorityLink link(eq, 4.0, false);
    std::vector<int> order;
    link.send(400, LinkClass::Writeback, 0,
              [&](Cycle) { order.push_back(1); });
    link.send(400, LinkClass::Writeback, 0,
              [&](Cycle) { order.push_back(2); });
    link.send(40, LinkClass::Prefetch, 5,
              [&](Cycle) { order.push_back(3); });
    eq.drain();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], 3);
}

TEST_F(PriorityLinkTest, WritebackHighWaterPromotes)
{
    PriorityLink link(eq, 4.0, false);
    // Flood the writeback queue past the high-water mark, then offer
    // a demand message: the backed-up writebacks must drain first.
    int wb_done = 0;
    for (int i = 0; i < 20; ++i)
        link.send(72, LinkClass::Writeback, 0,
                  [&](Cycle) { ++wb_done; });
    Cycle demand_done = 0;
    link.send(8, LinkClass::Demand, 0,
              [&](Cycle c) { demand_done = c; });
    eq.drain();
    EXPECT_EQ(wb_done, 20);
    // The demand finished after several promoted writebacks (i.e., it
    // did not preempt the whole backlog).
    EXPECT_GT(demand_done, 72u / 4);
}

TEST_F(PriorityLinkTest, InfiniteModeCountsButNeverQueues)
{
    PriorityLink link(eq, 4.0, true);
    Cycle a = 0, b = 0;
    link.send(400, LinkClass::Demand, 0, [&](Cycle c) { a = c; });
    link.send(400, LinkClass::Demand, 0, [&](Cycle c) { b = c; });
    eq.drain();
    EXPECT_EQ(a, b);
    EXPECT_EQ(link.totalBytes(), 800u);
    EXPECT_DOUBLE_EQ(link.meanQueueDelay(), 0.0);
}

TEST_F(PriorityLinkTest, NotReadyMessagesWaitTheirTurn)
{
    PriorityLink link(eq, 4.0, false);
    std::vector<int> order;
    link.send(40, LinkClass::Demand, 100,
              [&](Cycle) { order.push_back(1); });
    link.send(40, LinkClass::Prefetch, 0,
              [&](Cycle) { order.push_back(2); });
    eq.drain();
    // The prefetch is ready first and transmits first despite the
    // queued (not yet ready) demand message.
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_F(PriorityLinkTest, ClassBytesAccounted)
{
    PriorityLink link(eq, 4.0, false);
    link.send(72, LinkClass::Demand, 0, nullptr);
    link.send(72, LinkClass::Prefetch, 0, nullptr);
    link.send(16, LinkClass::Writeback, 0, nullptr);
    eq.drain();
    EXPECT_EQ(link.classBytes(LinkClass::Demand), 72u);
    EXPECT_EQ(link.classBytes(LinkClass::Prefetch), 72u);
    EXPECT_EQ(link.classBytes(LinkClass::Writeback), 16u);
    EXPECT_EQ(link.totalBytes(), 160u);
}

TEST_F(PriorityLinkTest, BacklogDrainsToZero)
{
    PriorityLink link(eq, 4.0, false);
    for (int i = 0; i < 10; ++i)
        link.send(72, LinkClass::Prefetch, 0, nullptr);
    EXPECT_GT(link.backlog(), 0u);
    eq.drain();
    EXPECT_EQ(link.backlog(), 0u);
}

TEST_F(PriorityLinkTest, ResetStatsKeepsSchedule)
{
    PriorityLink link(eq, 4.0, false);
    link.send(4000, LinkClass::Demand, 0, nullptr);
    link.resetStats();
    EXPECT_EQ(link.totalBytes(), 0u);
    Cycle done = 0;
    link.send(4, LinkClass::Demand, 0, [&](Cycle c) { done = c; });
    eq.drain();
    EXPECT_GE(done, 1000u); // still behind the in-flight transfer
}

TEST_F(PriorityLinkTest, ThroughputMatchesRate)
{
    PriorityLink link(eq, 8.0, false);
    Cycle last = 0;
    for (int i = 0; i < 100; ++i)
        link.send(80, LinkClass::Demand, 0, [&](Cycle c) { last = c; });
    eq.drain();
    // 100 x 80 B at 8 B/cycle = 1000 cycles.
    EXPECT_EQ(last, 1000u);
}

} // namespace
} // namespace cmpsim
