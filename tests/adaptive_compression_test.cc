/**
 * @file
 * Tests for the ISCA'04 adaptive compression policy (the global
 * compression predictor the paper's Section 2 runs): compression is
 * applied only while its estimated benefit (avoided misses) outweighs
 * its cost (decompression penalties).
 */

#include <gtest/gtest.h>

#include "src/cache/l2_cache.h"
#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

class AdaptiveCompressionTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<L2Cache> l2;

    void
    build(bool adaptive)
    {
        MemoryParams mp;
        mem = std::make_unique<MainMemory>(eq, values, mp);
        L2Params p;
        p.sets = 4;
        p.banks = 1;
        p.tags_per_set = 8;
        p.segment_budget = 32;
        p.compressed = true;
        p.adaptive_compression = adaptive;
        p.cores = 1;
        l2 = std::make_unique<L2Cache>(eq, values, *mem, p);
    }

    Addr
    la(std::uint64_t i)
    {
        return i << kLineShift;
    }

    void
    touch(Addr line)
    {
        l2->accessFunctional(0, line, false, ReqType::Demand);
    }
};

TEST_F(AdaptiveCompressionTest, StartsCompressing)
{
    build(true);
    EXPECT_TRUE(l2->compressingNow());
    EXPECT_EQ(l2->gcpValue(), 0);
}

TEST_F(AdaptiveCompressionTest, PenalizedHitsTurnCompressionOff)
{
    build(true);
    // Four compressible lines in one set: they fit uncompressed too,
    // so every hit is pure decompression cost.
    for (std::uint64_t i = 0; i < 4; ++i)
        touch(la(i * 4));
    for (int round = 0; round < 10; ++round) {
        for (std::uint64_t i = 0; i < 4; ++i)
            touch(la(i * 4));
    }
    EXPECT_LT(l2->gcpValue(), 0);
    EXPECT_FALSE(l2->compressingNow());
    // New fills are now stored uncompressed.
    touch(la(100 * 4));
    const TagEntry *e = l2->setAt(0).find(la(100 * 4));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->segments, kSegmentsPerLine);
}

TEST_F(AdaptiveCompressionTest, DeepHitsKeepCompressionOn)
{
    build(true);
    // Eight compressible lines in one set: hits at stack depth >= 4
    // only exist because of compression and earn the memory-latency
    // benefit, outweighing the decompression costs.
    for (std::uint64_t i = 0; i < 8; ++i)
        touch(la(i * 4));
    for (int round = 0; round < 10; ++round) {
        for (std::uint64_t i = 0; i < 8; ++i)
            touch(la(i * 4));
    }
    EXPECT_GT(l2->gcpValue(), 0);
    EXPECT_TRUE(l2->compressingNow());
}

TEST_F(AdaptiveCompressionTest, AlwaysPolicyIgnoresCosts)
{
    build(false);
    for (std::uint64_t i = 0; i < 4; ++i)
        touch(la(i * 4));
    for (int round = 0; round < 20; ++round) {
        for (std::uint64_t i = 0; i < 4; ++i)
            touch(la(i * 4));
    }
    // Predictor untouched, compression stays on.
    EXPECT_EQ(l2->gcpValue(), 0);
    EXPECT_TRUE(l2->compressingNow());
    touch(la(100 * 4));
    const TagEntry *e = l2->setAt(0).find(la(100 * 4));
    ASSERT_NE(e, nullptr);
    EXPECT_LT(e->segments, kSegmentsPerLine);
}

TEST_F(AdaptiveCompressionTest, RecoversWhenBenefitReturns)
{
    build(true);
    // Drive the predictor negative with shallow penalized hits.
    for (std::uint64_t i = 0; i < 4; ++i)
        touch(la(i * 4));
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t i = 0; i < 4; ++i)
            touch(la(i * 4));
    ASSERT_FALSE(l2->compressingNow());

    // Now create depth pressure: the still-compressed early lines
    // plus new ones produce deep hits that pay back quickly
    // (one deep hit outweighs 80 penalized hits).
    for (std::uint64_t i = 4; i < 7; ++i)
        touch(la(i * 4));
    for (int round = 0; round < 30 && !l2->compressingNow(); ++round) {
        for (std::uint64_t i = 0; i < 7; ++i)
            touch(la(i * 4));
    }
    EXPECT_TRUE(l2->compressingNow());
}

} // namespace
} // namespace cmpsim
