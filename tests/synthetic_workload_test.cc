#include "src/workload/synthetic_workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

class SyntheticWorkloadTest : public ::testing::Test
{
  protected:
    FpcCompressor fpc;
    ValueStore values{fpc};

    WorkloadParams
    simpleParams()
    {
        WorkloadParams p;
        p.load_frac = 0.30;
        p.store_frac = 0.10;
        p.branch_frac = 0.15;
        p.i_footprint = 16 * 1024;
        p.ws_private = 64 * 1024;
        p.ws_shared = 32 * 1024;
        return p;
    }
};

TEST_F(SyntheticWorkloadTest, InstructionMixMatchesFractions)
{
    SyntheticWorkload wl(simpleParams(), values, 0, 42);
    std::map<InstrType, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[wl.next().type];
    EXPECT_NEAR(counts[InstrType::Load] / double(n), 0.30, 0.01);
    EXPECT_NEAR(counts[InstrType::Store] / double(n), 0.10, 0.01);
    EXPECT_NEAR(counts[InstrType::Branch] / double(n), 0.15, 0.01);
    EXPECT_NEAR(counts[InstrType::Alu] / double(n), 0.45, 0.01);
}

TEST_F(SyntheticWorkloadTest, PcFootprintBounded)
{
    // PCs are page-translated; the distinct-line footprint still may
    // not exceed the configured instruction footprint.
    auto p = simpleParams();
    SyntheticWorkload wl(p, values, 0, 1);
    std::set<Addr> lines;
    for (int i = 0; i < 50000; ++i)
        lines.insert(lineAddr(wl.next().pc));
    EXPECT_LE(lines.size(), p.i_footprint / kLineBytes);
    EXPECT_GT(lines.size(), p.i_footprint / kLineBytes / 2);
}

TEST_F(SyntheticWorkloadTest, TranslationIsBijectiveOnPages)
{
    std::set<Addr> phys;
    for (Addr page = 0; page < 20000; ++page) {
        phys.insert(layout::translate(page * layout::kPageBytes));
    }
    EXPECT_EQ(phys.size(), 20000u);
    // Offsets within a page are preserved.
    EXPECT_EQ(layout::translate(0x12345678) % layout::kPageBytes,
              0x12345678 % layout::kPageBytes);
}

TEST_F(SyntheticWorkloadTest, TranslationScattersCacheSets)
{
    // Consecutive pages land on well-spread set indices (the reason
    // the translation exists; see header comment).
    // 40 pages x 128 lines cover > 4096 line slots; the permuted page
    // frames should reach most of the 4096 sets.
    std::set<Addr> sets;
    for (Addr page = 0; page < 40; ++page) {
        for (Addr l = 0; l < layout::kPageBytes / kLineBytes; ++l) {
            const Addr line = lineNumber(
                layout::translate(layout::kPrivateBase +
                                  page * layout::kPageBytes +
                                  l * kLineBytes));
            sets.insert(line % 4096);
        }
    }
    EXPECT_GT(sets.size(), 2500u);
}

TEST_F(SyntheticWorkloadTest, DataFootprintBounded)
{
    auto p = simpleParams();
    SyntheticWorkload wl(p, values, 2, 1);
    std::set<Addr> lines;
    for (int i = 0; i < 200000; ++i) {
        const auto in = wl.next();
        if (in.type == InstrType::Load || in.type == InstrType::Store)
            lines.insert(lineAddr(in.addr));
    }
    // Distinct data lines stay within the configured footprints: the
    // private and shared regions plus the dedicated stream area
    // (ws_stream = 0 here, so stream arrays span up to another
    // ws_private worth of lines), with an allowance for edge overruns.
    EXPECT_LE(lines.size(),
              (2 * p.ws_private + p.ws_shared) / kLineBytes * 21 / 20);
    EXPECT_GT(lines.size(), p.ws_private / kLineBytes / 2);
}

TEST_F(SyntheticWorkloadTest, DifferentCoresUseDisjointPrivateRegions)
{
    auto p = simpleParams();
    p.shared_frac = 0.0;
    SyntheticWorkload w0(p, values, 0, 9);
    SyntheticWorkload w1(p, values, 1, 9);
    std::set<Addr> lines0, lines1;
    for (int i = 0; i < 20000; ++i) {
        const auto a = w0.next();
        const auto b = w1.next();
        if (a.type == InstrType::Load || a.type == InstrType::Store)
            lines0.insert(lineAddr(a.addr));
        if (b.type == InstrType::Load || b.type == InstrType::Store)
            lines1.insert(lineAddr(b.addr));
    }
    for (Addr l : lines0)
        EXPECT_EQ(lines1.count(l), 0u);
}

TEST_F(SyntheticWorkloadTest, SharedRegionIsShared)
{
    auto p = simpleParams();
    p.shared_frac = 0.5;
    p.stride_frac = 0.0;
    SyntheticWorkload w0(p, values, 0, 9);
    SyntheticWorkload w1(p, values, 1, 10);
    std::set<Addr> lines0, lines1;
    for (int i = 0; i < 20000; ++i) {
        const auto a = w0.next();
        const auto b = w1.next();
        if (a.type == InstrType::Load || a.type == InstrType::Store)
            lines0.insert(lineAddr(a.addr));
        if (b.type == InstrType::Load || b.type == InstrType::Store)
            lines1.insert(lineAddr(b.addr));
    }
    int overlap = 0;
    for (Addr l : lines0)
        overlap += lines1.count(l);
    EXPECT_GT(overlap, 50);
}

TEST_F(SyntheticWorkloadTest, TouchedLinesGetValues)
{
    SyntheticWorkload wl(simpleParams(), values, 0, 3);
    for (int i = 0; i < 10000; ++i) {
        const auto in = wl.next();
        if (in.type == InstrType::Load || in.type == InstrType::Store) {
            EXPECT_TRUE(values.hasLine(in.addr));
        }
    }
    EXPECT_GT(values.lineCount(), 100u);
}

TEST_F(SyntheticWorkloadTest, StridedAccessesFormDetectableStreams)
{
    auto p = simpleParams();
    p.stride_frac = 1.0;
    p.stream_count = 1;
    p.stream_len_min = 64;
    p.stream_len_max = 64;
    p.stride_bytes = {8};
    SyntheticWorkload wl(p, values, 0, 5);
    // Consecutive data addresses advance by 8 bytes.
    Addr prev = 0;
    int unit_steps = 0, samples = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto in = wl.next();
        if (in.type != InstrType::Load && in.type != InstrType::Store)
            continue;
        if (prev != 0 && in.addr == prev + 8)
            ++unit_steps;
        prev = in.addr;
        ++samples;
    }
    EXPECT_GT(unit_steps, samples * 9 / 10);
}

TEST_F(SyntheticWorkloadTest, MispredictRateRespected)
{
    auto p = simpleParams();
    p.mispredict_rate = 0.25;
    SyntheticWorkload wl(p, values, 0, 7);
    int branches = 0, mispredicts = 0;
    for (int i = 0; i < 200000; ++i) {
        const auto in = wl.next();
        if (in.type == InstrType::Branch) {
            ++branches;
            mispredicts += in.mispredict;
        }
    }
    EXPECT_NEAR(mispredicts / double(branches), 0.25, 0.02);
}

TEST_F(SyntheticWorkloadTest, DeterministicGivenSeed)
{
    auto p = simpleParams();
    FpcCompressor f2;
    ValueStore v2(f2);
    SyntheticWorkload a(p, values, 0, 11), b(p, v2, 0, 11);
    for (int i = 0; i < 1000; ++i) {
        const auto x = a.next(), y = b.next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(static_cast<int>(x.type), static_cast<int>(y.type));
        EXPECT_EQ(x.addr, y.addr);
    }
}

TEST_F(SyntheticWorkloadTest, DifferentSeedsDiffer)
{
    auto p = simpleParams();
    SyntheticWorkload a(p, values, 0, 1), b(p, values, 0, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().pc == b.next().pc;
    EXPECT_LT(same, 900);
}

} // namespace
} // namespace cmpsim
