/**
 * @file
 * Sharded event kernel (DESIGN.md §12): lane mailboxes, the lane
 * worker crew, and the end-to-end byte-identical-determinism
 * guarantee — the same (config, seed) must produce the same stats
 * fingerprint at every lane count.
 */

#include "src/sim/lane.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

// ---------------------------------------------------------------- //
// LaneMailbox                                                      //
// ---------------------------------------------------------------- //

TEST(LaneMailboxTest, FlushRunsOpsInAppendOrder)
{
    LaneMailbox box;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        box.defer([&order, i] { order.push_back(i); });
    EXPECT_EQ(box.pendingOps(), 8u);
    EXPECT_EQ(box.opsEnqueued(), 8u);
    EXPECT_EQ(box.opsDrained(), 0u);

    box.flush();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(box.pendingOps(), 0u);
    EXPECT_EQ(box.opsDrained(), 8u);
}

TEST(LaneMailboxTest, FlushHandlesOpsDeferredDuringFlush)
{
    // A replayed op may itself defer (an L2 request whose callback
    // schedules): flush must run ops appended mid-flush too, in order.
    LaneMailbox box;
    std::vector<int> order;
    box.defer([&] {
        order.push_back(0);
        box.defer([&] { order.push_back(2); });
    });
    box.defer([&] { order.push_back(1); });
    box.flush();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(box.opsEnqueued(), box.opsDrained());
    EXPECT_EQ(box.pendingOps(), 0u);
}

TEST(LaneMailboxTest, OverlayTracksCreatedLinesPerQuantum)
{
    LaneMailbox box;
    EXPECT_FALSE(box.createdThisQuantum(0x1000));
    box.noteCreated(0x1000);
    EXPECT_TRUE(box.createdThisQuantum(0x1000));
    EXPECT_FALSE(box.createdThisQuantum(0x2000));
    box.flush(); // quantum barrier clears the overlay
    EXPECT_FALSE(box.createdThisQuantum(0x1000));
}

TEST(LaneMailboxTest, CollisionCounterAccumulates)
{
    LaneMailbox box;
    EXPECT_EQ(box.collisions(), 0u);
    box.noteCollision();
    box.noteCollision();
    EXPECT_EQ(box.collisions(), 2u);
}

TEST(LaneMailboxTest, StatsRegisterUnderPrefix)
{
    LaneMailbox box;
    StatRegistry reg;
    box.registerStats(reg, "lane.0");
    box.defer([] {});
    box.flush();
    EXPECT_EQ(reg.counter("lane.0.mailbox_ops"), 1u);
    EXPECT_EQ(reg.counter("lane.0.mailbox_drained"), 1u);
    EXPECT_EQ(reg.counter("lane.0.value_collisions"), 0u);
}

TEST(LaneMailboxTest, LaneContextGuardArmsAndRestores)
{
    EXPECT_EQ(laneContext(), nullptr);
    LaneMailbox outer;
    LaneMailbox inner;
    {
        LaneContextGuard g1(&outer);
        EXPECT_EQ(laneContext(), &outer);
        {
            LaneContextGuard g2(&inner);
            EXPECT_EQ(laneContext(), &inner);
        }
        EXPECT_EQ(laneContext(), &outer);
    }
    EXPECT_EQ(laneContext(), nullptr);
}

// ---------------------------------------------------------------- //
// LaneCrew                                                         //
// ---------------------------------------------------------------- //

TEST(LaneCrewTest, RunsEveryLaneEachQuantumWithContextArmed)
{
    ThreadPool pool(3);
    LaneCrew crew(pool, 4);
    std::vector<int> ticks(4, 0);
    std::vector<bool> armed(4, false);
    for (unsigned l = 0; l < 4; ++l) {
        crew.setWork(l, [&, l](Cycle now) {
            EXPECT_EQ(now, 17u);
            armed[l] = laneContext() == &crew.mailbox(l);
            ++ticks[l];
        });
    }
    crew.runQuantum(17);
    crew.runQuantum(17);
    for (unsigned l = 0; l < 4; ++l) {
        EXPECT_EQ(ticks[l], 2) << "lane " << l;
        EXPECT_TRUE(armed[l]) << "lane " << l;
    }
    EXPECT_EQ(crew.quantaRun(), 2u);
}

TEST(LaneCrewTest, FlushAllReplaysInLaneOrder)
{
    ThreadPool pool(2);
    LaneCrew crew(pool, 3);
    std::vector<unsigned> order;
    for (unsigned l = 0; l < 3; ++l) {
        crew.setWork(l, [&crew, &order, l](Cycle) {
            // Two ops per lane, deferred through the armed context.
            laneContext()->defer([&order, l] { order.push_back(l); });
            crew.mailbox(l).defer([&order, l] { order.push_back(l); });
        });
    }
    crew.runQuantum(1);
    crew.flushAll();
    EXPECT_EQ(order, (std::vector<unsigned>{0, 0, 1, 1, 2, 2}));
}

TEST(LaneCrewTest, WorkerExceptionRethrownAtBarrier)
{
    ThreadPool pool(1);
    LaneCrew crew(pool, 2);
    crew.setWork(0, [](Cycle) {});
    crew.setWork(1, [](Cycle) {
        throw std::runtime_error("lane boom");
    });
    EXPECT_THROW(crew.runQuantum(1), std::runtime_error);
    // The crew must still be usable (and destructible) afterwards.
    crew.setWork(1, [](Cycle) {});
    EXPECT_NO_THROW(crew.runQuantum(2));
}

TEST(LaneCrewTest, StatsRegisterQuantaAndPerLaneMailboxes)
{
    ThreadPool pool(1);
    LaneCrew crew(pool, 2);
    StatRegistry reg;
    crew.registerStats(reg, "lane");
    crew.setWork(0, [](Cycle) {});
    crew.setWork(1, [](Cycle) {
        laneContext()->defer([] {});
    });
    crew.runQuantum(5);
    crew.flushAll();
    EXPECT_EQ(reg.counter("lane.quanta"), 1u);
    EXPECT_EQ(reg.counter("lane.1.mailbox_ops"), 1u);
    EXPECT_EQ(reg.counter("lane.1.mailbox_drained"), 1u);
}

// ---------------------------------------------------------------- //
// End-to-end kernel                                                //
// ---------------------------------------------------------------- //

/** Small full-feature run; returns the determinism fingerprint. */
std::uint64_t
runFingerprint(const std::string &workload, unsigned lanes)
{
    SystemConfig cfg = makeConfig(/*cores=*/4, /*scale=*/8,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/true);
    cfg.seed = 7;
    cfg.lanes = lanes;
    cfg.audit_interval = 5000;
    CmpSystem sys(cfg, benchmarkParams(workload));
    sys.warmup(5000);
    sys.run(2000);
    std::ostringstream out;
    sys.stats().dump(out);
    out << "cycles " << sys.cycles() << "\n";
    out << "instructions " << sys.instructions() << "\n";
    return fnv1a(out.str());
}

TEST(LaneKernelTest, HashIdenticalAcrossLaneCounts)
{
    for (const char *wl : {"zeus", "apsi"}) {
        const std::uint64_t base = runFingerprint(wl, 1);
        for (unsigned lanes : {2u, 3u, 4u}) {
            EXPECT_EQ(runFingerprint(wl, lanes), base)
                << wl << " diverged at lanes=" << lanes;
        }
    }
}

TEST(LaneKernelTest, LanesClampedToCoreCount)
{
    SystemConfig cfg = makeConfig(2, 8, false, false, false, false);
    cfg.lanes = 16;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    EXPECT_EQ(sys.lanes(), 2u);
}

TEST(LaneKernelTest, ZeroLanesRejected)
{
    SystemConfig cfg = makeConfig(2, 8, false, false, false, false);
    cfg.lanes = 0;
    EXPECT_THROW(CmpSystem(cfg, benchmarkParams("zeus")),
                 ConfigError);
}

TEST(LaneKernelTest, LaneStatsLiveInSeparateRegistry)
{
    // Lane bookkeeping must never leak into stats(): the determinism
    // fingerprint hashes the main registry's dump, which has to stay
    // byte-identical across lane counts.
    SystemConfig cfg = makeConfig(4, 8, false, false, false, false);
    cfg.lanes = 2;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.run(500);

    std::ostringstream main_dump;
    sys.stats().dump(main_dump);
    EXPECT_EQ(main_dump.str().find("lane."), std::string::npos);

    EXPECT_GT(sys.laneStats().counter("lane.quanta"), 0u);
    EXPECT_EQ(sys.laneStats().counter("lane.0.value_collisions"), 0u);
    EXPECT_EQ(sys.laneStats().counter("lane.1.value_collisions"), 0u);
}

TEST(LaneKernelTest, ConservationAuditsPassAfterRun)
{
    SystemConfig cfg = makeConfig(4, 8, true, true, true, true);
    cfg.lanes = 4;
    CmpSystem sys(cfg, benchmarkParams("apsi"));
    sys.warmup(2000);
    sys.run(1000);
    EXPECT_NO_THROW(sys.audits().enforce());
}

TEST(LaneKernelTest, SingleLaneUsesUnshardedKernel)
{
    SystemConfig cfg = makeConfig(4, 8, false, false, false, false);
    cfg.lanes = 1;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    EXPECT_EQ(sys.lanes(), 1u);
    sys.run(500);
    // No lane bookkeeping at all in the single-threaded kernel.
    std::ostringstream lane_dump;
    sys.laneStats().dump(lane_dump);
    EXPECT_TRUE(lane_dump.str().empty());
}

} // namespace
} // namespace cmpsim
