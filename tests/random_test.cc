#include "src/common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmpsim {
namespace {

TEST(RandomTest, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RandomTest, ReseedRestartsSequence)
{
    Random a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(RandomTest, BelowStaysInBound)
{
    Random r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RandomTest, BelowOneAlwaysZero)
{
    Random r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(RandomTest, InRangeInclusiveBounds)
{
    Random r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = r.inRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ChanceRespectsProbability)
{
    Random r(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RandomTest, BelowIsRoughlyUniform)
{
    Random r(17);
    std::vector<int> buckets(8, 0);
    for (int i = 0; i < 80000; ++i)
        ++buckets[r.below(8)];
    for (int count : buckets)
        EXPECT_NEAR(count, 10000, 500);
}

TEST(RandomTest, ZipfStaysInRange)
{
    Random r(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.zipf(100, 0.9), 100u);
}

TEST(RandomTest, ZipfSkewsTowardLowRanks)
{
    Random r(23);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto v = r.zipf(1000, 1.0);
        if (v < 100)
            ++low;
        else if (v >= 900)
            ++high;
    }
    EXPECT_GT(low, high * 3);
}

TEST(RandomTest, ZipfZeroExponentIsUniform)
{
    Random r(29);
    std::uint64_t low = 0;
    for (int i = 0; i < 50000; ++i)
        low += r.zipf(1000, 0.0) < 500;
    EXPECT_NEAR(low / 50000.0, 0.5, 0.02);
}

TEST(RandomTest, ZipfSingleElement)
{
    Random r(31);
    EXPECT_EQ(r.zipf(1, 1.2), 0u);
}

} // namespace
} // namespace cmpsim
