#include "src/workload/value_profile.h"

#include <gtest/gtest.h>

#include "src/compression/fpc.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

/** Mean FPC compression ratio (8 / segments) over sampled lines. */
double
measuredRatio(const ValueProfile &profile, std::uint64_t seed,
              int lines = 2000)
{
    ValueGenerator gen(profile);
    FpcCompressor fpc;
    Random rng(seed);
    double total_segments = 0;
    for (int i = 0; i < lines; ++i)
        total_segments += fpc.compress(gen.generate(rng)).segments;
    return lines * 8.0 / total_segments;
}

TEST(ValueProfileTest, AllZeroProfileMaximallyCompressible)
{
    const double r = measuredRatio({1.0, 0.0, 0.0, 0.0}, 1);
    EXPECT_DOUBLE_EQ(r, 8.0);
}

TEST(ValueProfileTest, AllRawProfileIncompressible)
{
    const double r = measuredRatio({0.0, 0.0, 0.0, 0.0}, 2);
    EXPECT_NEAR(r, 1.0, 0.02);
}

TEST(ValueProfileTest, RatioMonotoneInZeroFraction)
{
    double prev = 0.9;
    for (double z : {0.1, 0.3, 0.5, 0.7}) {
        const double r = measuredRatio({z, 0.1, 0.0, 0.0}, 3);
        EXPECT_GT(r, prev);
        prev = r;
    }
}

TEST(ValueProfileTest, GenerateWordRespectsClasses)
{
    ValueGenerator gen({1.0, 0.0, 0.0, 0.0});
    Random rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.generateWord(rng), 0u);
}

/** The per-benchmark profiles must land near the paper's Table 3
 *  bands: commercial 1.3-1.9, SPEComp 1.0-1.25. */
class BenchmarkCompressibility
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BenchmarkCompressibility, RatioInPaperBand)
{
    const auto params = benchmarkParams(GetParam());
    const double r = measuredRatio(params.values, 7);
    if (isCommercial(GetParam())) {
        EXPECT_GE(r, 1.30) << GetParam();
        EXPECT_LE(r, 2.00) << GetParam();
    } else {
        EXPECT_GE(r, 1.00) << GetParam();
        EXPECT_LE(r, 1.30) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkCompressibility,
                         ::testing::Values("apache", "zeus", "oltp",
                                           "jbb", "art", "apsi", "fma3d",
                                           "mgrid"));

TEST(BenchmarkParamsTest, OltpMostCompressibleCommercial)
{
    // Table 3: oltp ~1.8 tops the commercial band.
    const double oltp = measuredRatio(benchmarkParams("oltp").values, 11);
    const double jbb = measuredRatio(benchmarkParams("jbb").values, 11);
    EXPECT_GT(oltp, jbb);
    EXPECT_NEAR(oltp, 1.8, 0.25);
}

TEST(BenchmarkParamsTest, ApsiNearlyIncompressible)
{
    const double r = measuredRatio(benchmarkParams("apsi").values, 13);
    EXPECT_NEAR(r, 1.03, 0.05);
}

TEST(BenchmarkParamsTest, RegistryListsEightWorkloads)
{
    EXPECT_EQ(benchmarkNames().size(), 8u);
    for (const auto &name : benchmarkNames())
        EXPECT_EQ(benchmarkParams(name).name, name);
}

TEST(BenchmarkParamsTest, ScaledDividesFootprints)
{
    const auto full = benchmarkParams("apache");
    const auto quarter = full.scaled(4);
    EXPECT_EQ(quarter.ws_private, full.ws_private / 4);
    EXPECT_EQ(quarter.i_footprint, full.i_footprint / 4);
    EXPECT_EQ(quarter.ws_shared, full.ws_shared / 4);
    // Fractions untouched.
    EXPECT_DOUBLE_EQ(quarter.stride_frac, full.stride_frac);
}

TEST(BenchmarkParamsTest, ScaleOneIsIdentity)
{
    const auto full = benchmarkParams("mgrid");
    const auto same = full.scaled(1);
    EXPECT_EQ(same.ws_private, full.ws_private);
}

} // namespace
} // namespace cmpsim
