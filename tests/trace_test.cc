#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/compression/fpc.h"
#include "src/workload/synthetic_workload.h"

namespace cmpsim {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    std::string path_;

    void
    SetUp() override
    {
        // Unique per test case: ctest -j runs the discovered cases as
        // parallel processes, and a shared path makes TearDown in one
        // process race reads in another.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "cmpsim_trace_test_" +
                info->name() + ".bin";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }
};

TEST_F(TraceTest, RoundTripPreservesInstructions)
{
    // Same seed reproduces the same stream only with independent
    // value stores (first-touch value generation consumes RNG draws).
    FpcCompressor fpc;
    ValueStore values_a(fpc), values_b(fpc);
    auto params = benchmarkParams("zeus").scaled(8);
    SyntheticWorkload source(params, values_a, 0, 77);
    SyntheticWorkload reference(params, values_b, 0, 77);
    TraceWriter::record(source, 5000, path_);

    TraceReader replay(path_);
    ASSERT_EQ(replay.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        const Instruction a = replay.next();
        const Instruction b = reference.next();
        ASSERT_EQ(static_cast<int>(a.type), static_cast<int>(b.type));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.store_value, b.store_value);
        ASSERT_EQ(a.mispredict, b.mispredict);
        ASSERT_EQ(a.chained, b.chained);
    }
}

TEST_F(TraceTest, ReplayLoopsAtEnd)
{
    std::vector<Instruction> prog(3);
    prog[0].type = InstrType::Alu;
    prog[1].type = InstrType::Load;
    prog[1].addr = 0x100;
    prog[2].type = InstrType::Branch;
    TraceReader replay(prog);
    for (int loop = 0; loop < 4; ++loop) {
        EXPECT_EQ(static_cast<int>(replay.next().type),
                  static_cast<int>(InstrType::Alu));
        EXPECT_EQ(replay.next().addr, 0x100u);
        EXPECT_EQ(static_cast<int>(replay.next().type),
                  static_cast<int>(InstrType::Branch));
    }
    EXPECT_EQ(replay.loops(), 4u);
}

TEST_F(TraceTest, FlagsSurviveRoundTrip)
{
    std::vector<Instruction> prog(2);
    prog[0].type = InstrType::Branch;
    prog[0].mispredict = true;
    prog[1].type = InstrType::Load;
    prog[1].chained = true;
    prog[1].pc = 0xdeadbeef000;
    TraceReader mem(prog);
    TraceWriter::record(mem, 2, path_);

    TraceReader replay(path_);
    const auto a = replay.next();
    const auto b = replay.next();
    EXPECT_TRUE(a.mispredict);
    EXPECT_FALSE(a.chained);
    EXPECT_TRUE(b.chained);
    EXPECT_EQ(b.pc, 0xdeadbeef000u);
}

TEST_F(TraceTest, LargeAddressesPreserved)
{
    std::vector<Instruction> prog(1);
    prog[0].type = InstrType::Store;
    prog[0].addr = 0x7fff'ffff'ffff'ffc0ULL;
    prog[0].store_value = 0xffffffffu;
    TraceReader mem(prog);
    TraceWriter::record(mem, 1, path_);
    TraceReader replay(path_);
    const auto in = replay.next();
    EXPECT_EQ(in.addr, 0x7fff'ffff'ffff'ffc0ULL);
    EXPECT_EQ(in.store_value, 0xffffffffu);
}

} // namespace
} // namespace cmpsim
