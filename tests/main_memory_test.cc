#include "src/mem/main_memory.h"

#include <gtest/gtest.h>

#include "src/compression/fpc.h"

namespace cmpsim {
namespace {

class MainMemoryTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    FpcCompressor fpc;
    ValueStore values{fpc};

    MemoryParams
    baseParams()
    {
        MemoryParams p;
        p.dram_latency = 400;
        p.link_bytes_per_cycle = 4.0;
        return p;
    }

    /** Fill a line with incompressible data. */
    void
    makeRaw(Addr addr)
    {
        LineData d{};
        for (unsigned i = 0; i < kWordsPerLine; ++i)
            setLineWord(d, i, 0x9e3779b9u * (i + 3) + 0x85ebca6bu);
        values.setLine(addr, d);
    }
};

TEST_F(MainMemoryTest, UnloadedFetchLatency)
{
    MainMemory mem(eq, values, baseParams());
    makeRaw(0x1000);
    Cycle done_at = 0;
    mem.fetchLine(0x1000, 100, false, [&](Cycle c) { done_at = c; });
    eq.drain();
    // request: 8B @4B/c = 2 cycles; DRAM 400; data 8+64=72B = 18 cycles.
    EXPECT_EQ(done_at, 100u + 2 + 400 + 18);
    EXPECT_EQ(mem.reads(), 1u);
    EXPECT_EQ(mem.link().totalBytes(), 8u + 72u);
}

TEST_F(MainMemoryTest, LinkCompressionShrinksDataMessage)
{
    auto p = baseParams();
    p.link_compression = true;
    MainMemory mem(eq, values, p);
    // Untouched line = zeros = 1 segment.
    Cycle done_at = 0;
    mem.fetchLine(0x2000, 0, false, [&](Cycle c) { done_at = c; });
    eq.drain();
    // request 2 cycles; DRAM 400; data 8+8=16B = 4 cycles.
    EXPECT_EQ(done_at, 0u + 2 + 400 + 4);
    EXPECT_EQ(mem.dataFlits(), 1u);
    EXPECT_EQ(mem.headerFlits(), 2u);
}

TEST_F(MainMemoryTest, NoCompressionAlwaysEightDataFlits)
{
    MainMemory mem(eq, values, baseParams());
    mem.fetchLine(0x2000, 0, false, [](Cycle) {});
    eq.drain();
    EXPECT_EQ(mem.dataFlits(), 8u);
}

TEST_F(MainMemoryTest, ContentionQueuesSecondFetch)
{
    MainMemory mem(eq, values, baseParams());
    makeRaw(0x1000);
    makeRaw(0x2000);
    Cycle first = 0, second = 0;
    mem.fetchLine(0x1000, 0, false, [&](Cycle c) { first = c; });
    mem.fetchLine(0x2000, 0, false, [&](Cycle c) { second = c; });
    eq.drain();
    // Second request waits 2 cycles for the link, and its data message
    // queues behind the first data message.
    EXPECT_GT(second, first);
}

TEST_F(MainMemoryTest, InfiniteBandwidthRemovesQueueing)
{
    auto p = baseParams();
    p.infinite_bandwidth = true;
    MainMemory mem(eq, values, p);
    makeRaw(0x1000);
    makeRaw(0x2000);
    Cycle first = 0, second = 0;
    mem.fetchLine(0x1000, 0, false, [&](Cycle c) { first = c; });
    mem.fetchLine(0x2000, 0, false, [&](Cycle c) { second = c; });
    eq.drain();
    EXPECT_EQ(first, second);
    // Demand is still fully accounted.
    EXPECT_EQ(mem.link().totalBytes(), 2u * (8 + 72));
}

TEST_F(MainMemoryTest, WritebackConsumesLinkOnly)
{
    MainMemory mem(eq, values, baseParams());
    makeRaw(0x3000);
    mem.writebackLine(0x3000, 50);
    eq.drain();
    EXPECT_EQ(mem.writebacks(), 1u);
    EXPECT_EQ(mem.link().totalBytes(), 72u);
    // A fetch at the same instant: the writeback (queued first, both
    // ready at 50) occupies the link, delaying the demand request
    // slightly; priorities apply to queued messages, not transfers
    // already in flight.
    Cycle done_at = 0;
    mem.fetchLine(0x3000, 50, false, [&](Cycle c) { done_at = c; });
    eq.drain();
    EXPECT_GE(done_at, 50u + 2 + 400 + 18);
}

TEST_F(MainMemoryTest, CompressedWritebackUsesFewerBytes)
{
    auto p = baseParams();
    p.link_compression = true;
    MainMemory mem(eq, values, p);
    values.writeWord(0x4000, 3); // tiny line: 1 segment
    mem.writebackLine(0x4000, 0);
    EXPECT_EQ(mem.link().totalBytes(), 8u + 8u);
}

TEST_F(MainMemoryTest, ResetStatsZeroesCounters)
{
    MainMemory mem(eq, values, baseParams());
    mem.fetchLine(0x1000, 0, false, [](Cycle) {});
    eq.drain();
    mem.resetStats();
    EXPECT_EQ(mem.reads(), 0u);
    EXPECT_EQ(mem.link().totalBytes(), 0u);
}

} // namespace
} // namespace cmpsim
