#include "src/obs/interval_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/core_api/cmp_system.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

TEST(IntervalSamplerTest, DeltasBetweenSamples)
{
    StatRegistry reg;
    Counter c;
    reg.registerCounter("x", &c);
    IntervalSampler s(reg, 100, IntervalSampler::Shape{});
    s.begin(0);
    c += 5;
    s.sampleAt(100);
    ASSERT_EQ(s.rows().size(), 1u);
    EXPECT_EQ(s.rows()[0].t0, 0u);
    EXPECT_EQ(s.rows()[0].t1, 100u);
    EXPECT_EQ(s.counterDelta(s.rows()[0], "x"), 5u);
    c += 3;
    s.sampleAt(250);
    ASSERT_EQ(s.rows().size(), 2u);
    EXPECT_EQ(s.counterDelta(s.rows()[1], "x"), 3u);
    // An unknown counter is a 0 delta, not a fault.
    EXPECT_EQ(s.counterDelta(s.rows()[1], "nope"), 0u);
}

TEST(IntervalSamplerTest, EmptyIntervalSkipped)
{
    StatRegistry reg;
    Counter c;
    reg.registerCounter("x", &c);
    IntervalSampler s(reg, 100, IntervalSampler::Shape{});
    s.begin(50);
    s.sampleAt(50); // zero-cycle interval
    s.sampleAt(40); // time did not advance
    EXPECT_TRUE(s.rows().empty());
}

TEST(IntervalSamplerTest, DeltasCorrectAcrossStatsReset)
{
    // The warmup -> measure stat reset zeroes every counter; the
    // sampler must re-anchor (onStatsReset) or the next delta would
    // wrap around.
    StatRegistry reg;
    Counter c;
    reg.registerCounter("x", &c);
    IntervalSampler s(reg, 100, IntervalSampler::Shape{});
    s.begin(0);
    c += 50;
    s.sampleAt(100);
    reg.resetAll();
    s.onStatsReset(100);
    c += 7;
    s.sampleAt(200);
    ASSERT_EQ(s.rows().size(), 2u);
    EXPECT_EQ(s.counterDelta(s.rows()[0], "x"), 50u);
    EXPECT_EQ(s.counterDelta(s.rows()[1], "x"), 7u);
}

TEST(IntervalSamplerTest, GaugesSampledPerRow)
{
    StatRegistry reg;
    Counter c;
    reg.registerCounter("x", &c);
    IntervalSampler s(reg, 100, IntervalSampler::Shape{});
    double ratio = 1.5;
    s.addGauge("ratio", [&ratio] { return ratio; });
    s.begin(0);
    s.sampleAt(100);
    ratio = 2.0;
    s.sampleAt(200);
    ASSERT_EQ(s.rows().size(), 2u);
    ASSERT_EQ(s.gaugeNames().size(), 1u);
    EXPECT_EQ(s.gaugeNames()[0], "ratio");
    EXPECT_DOUBLE_EQ(s.rows()[0].gauges.at(0), 1.5);
    EXPECT_DOUBLE_EQ(s.rows()[1].gauges.at(0), 2.0);
}

TEST(IntervalSamplerTest, DerivedMetricsFromKnownDeltas)
{
    StatRegistry reg;
    Counter retired, l1i_acc, l1i_miss, l1d_acc, l1d_miss;
    Counter l2_acc, l2_miss, link_bytes, pf_hits, pf_issued;
    reg.registerCounter("core.0.retired", &retired);
    reg.registerCounter("l1i.0.accesses", &l1i_acc);
    reg.registerCounter("l1i.0.misses", &l1i_miss);
    reg.registerCounter("l1d.0.accesses", &l1d_acc);
    reg.registerCounter("l1d.0.misses", &l1d_miss);
    reg.registerCounter("l2.demand_accesses", &l2_acc);
    reg.registerCounter("l2.demand_misses", &l2_miss);
    reg.registerCounter("mem.link.bytes", &link_bytes);
    reg.registerCounter("l2.pf_hits_l2", &pf_hits);
    reg.registerCounter("l2.l2pf_issued", &pf_issued);

    IntervalSampler::Shape shape;
    shape.cores = 1;
    shape.link_bytes_per_cycle = 2.0;
    IntervalSampler s(reg, 100, shape);
    s.begin(0);
    retired += 50;
    l1i_acc += 100;
    l1i_miss += 10;
    l1d_acc += 200;
    l1d_miss += 20;
    l2_acc += 30;
    l2_miss += 3;
    link_bytes += 100;
    pf_hits += 4;
    pf_issued += 8;
    s.sampleAt(100);

    ASSERT_EQ(s.rows().size(), 1u);
    const DerivedMetrics m = s.derived(s.rows()[0]);
    EXPECT_DOUBLE_EQ(m.ipc_total, 0.5);
    ASSERT_EQ(m.ipc_core.size(), 1u);
    EXPECT_DOUBLE_EQ(m.ipc_core[0], 0.5);
    EXPECT_DOUBLE_EQ(m.l1i_miss_rate, 0.1);
    EXPECT_DOUBLE_EQ(m.l1d_miss_rate, 0.1);
    EXPECT_DOUBLE_EQ(m.l2_miss_rate, 0.1);
    EXPECT_DOUBLE_EQ(m.link_bytes_per_cycle, 1.0);
    EXPECT_DOUBLE_EQ(m.link_utilization, 0.5);
    EXPECT_DOUBLE_EQ(m.l2pf_accuracy_pct, 50.0);
}

TEST(IntervalSamplerTest, CsvHasHeaderAndOneLinePerRow)
{
    StatRegistry reg;
    Counter c;
    reg.registerCounter("x", &c);
    IntervalSampler s(reg, 100, IntervalSampler::Shape{});
    s.begin(0);
    c += 5;
    s.sampleAt(100);
    std::ostringstream os;
    s.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.find("cycle_start,cycle_end,ipc_total"), 0u);
    EXPECT_NE(csv.find(",d_x"), std::string::npos);
    EXPECT_NE(csv.find("\n0,100,"), std::string::npos);
    // Header + one row, each newline-terminated.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(IntervalSamplerTest, SystemRowsAccountForEveryInstruction)
{
    // End-to-end: a sampled CmpSystem run must (a) produce rows and
    // (b) have its per-interval retired deltas sum to exactly the
    // cumulative retired counters — no interval lost at the stat
    // reset and no instruction double-counted.
    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/4,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/true);
    cfg.seed = 7;
    cfg.sample_interval = 5000;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(5000);
    sys.run(3000);

    const IntervalSampler *s = sys.sampler();
    ASSERT_NE(s, nullptr);
    ASSERT_FALSE(s->rows().empty());

    std::uint64_t delta_sum = 0;
    for (const SampleRow &row : s->rows()) {
        delta_sum += s->counterDelta(row, "core.0.retired");
        delta_sum += s->counterDelta(row, "core.1.retired");
    }
    const std::uint64_t final_sum = sys.stats().counter("core.0.retired") +
                                    sys.stats().counter("core.1.retired");
    EXPECT_EQ(delta_sum, final_sum);

    // The JSON mirror emits without faulting and is non-trivial.
    std::ostringstream os;
    s->writeJson(os);
    EXPECT_NE(os.str().find("\"rows\": ["), std::string::npos);
}

} // namespace
} // namespace cmpsim
