/**
 * @file
 * Determinism contract of the parallel experiment runner: the result
 * of runPoints() is a pure function of the point list, independent of
 * the worker count. Compared via the same FNV-1a fingerprinting the
 * determinism_check tool uses.
 */

#include "src/core_api/parallel_runner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/fingerprint.h"

namespace cmpsim {
namespace {

/** zeus + apsi under the full feature set, two seeds each. */
std::vector<PointSpec>
standardPoints()
{
    std::vector<PointSpec> specs;
    for (const char *wl : {"zeus", "apsi"}) {
        PointSpec spec;
        spec.config = makeConfig(/*cores=*/4, /*scale=*/4,
                                 /*cache_compression=*/true,
                                 /*link_compression=*/true,
                                 /*prefetching=*/true,
                                 /*adaptive=*/true);
        spec.benchmark = wl;
        spec.lengths.warmup_per_core = 20000;
        spec.lengths.measure_per_core = 5000;
        spec.seeds = 2;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<std::uint64_t>
fingerprints(const std::vector<MetricSummary> &results)
{
    std::vector<std::uint64_t> hashes;
    hashes.reserve(results.size());
    for (const auto &s : results)
        hashes.push_back(fnv1a(summaryBytes(s)));
    return hashes;
}

TEST(ParallelRunnerTest, EmptyBatchYieldsEmptyResults)
{
    EXPECT_TRUE(runPoints({}, 4).empty());
}

TEST(ParallelRunnerTest, ResultShapeMatchesSpecs)
{
    const auto results = runPoints(standardPoints(), 2);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &s : results) {
        EXPECT_EQ(s.runs.size(), 2u);
        EXPECT_EQ(s.cycles.n, 2u);
        EXPECT_GT(s.cycles.mean, 0.0);
        for (const auto &r : s.runs)
            EXPECT_GT(r.instructions, 0.0);
    }
}

TEST(ParallelRunnerTest, OneVsFourJobsByteIdentical)
{
    const auto specs = standardPoints();
    const auto serial = fingerprints(runPoints(specs, 1));
    const auto parallel = fingerprints(runPoints(specs, 4));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i])
            << "point " << i << " (" << specs[i].benchmark
            << ") diverges between 1 and 4 workers";
}

TEST(ParallelRunnerTest, RepeatedParallelRunsReproduce)
{
    const auto specs = standardPoints();
    EXPECT_EQ(fingerprints(runPoints(specs, 4)),
              fingerprints(runPoints(specs, 4)));
}

TEST(ParallelRunnerTest, RetryBackoffIsBoundedAndDeterministic)
{
    auto specs = standardPoints();
    specs.resize(1);

    // Transient fault on the first two attempts: rounds 1 and 2 fail,
    // a backoff is slept before each retry round, round 3 succeeds.
    RunPolicy policy;
    policy.max_attempts = 3;
    policy.faults = FaultPlan::parse("l2.fill:50:2");

    const BatchResult first = runPointsChecked(specs, 2, policy);
    ASSERT_EQ(first.failed(), 0u);
    EXPECT_EQ(first.outcomes[0].attempts, 3u);
    ASSERT_EQ(first.retry_delays_ms.size(), 2u);
    for (const std::uint64_t ms : first.retry_delays_ms) {
        EXPECT_GT(ms, 0u);
        EXPECT_LE(ms, 510u); // 500ms cap + <10ms deterministic jitter
    }

    // Keyed on (attempt, spec fingerprints), never wall-clock: an
    // identical batch sleeps the identical schedule.
    const BatchResult second = runPointsChecked(specs, 2, policy);
    EXPECT_EQ(second.retry_delays_ms, first.retry_delays_ms);

    // A permanently failing batch reports the schedule in its digest.
    RunPolicy broken;
    broken.max_attempts = 2;
    broken.faults = FaultPlan::parse("l2.fill:50:all");
    const BatchResult failed = runPointsChecked(specs, 2, broken);
    ASSERT_EQ(failed.failed(), 1u);
    EXPECT_NE(failed.failureSummary().find("retry backoff:"),
              std::string::npos)
        << failed.failureSummary();
}

TEST(ParallelRunnerTest, RunSeedsMatchesRunPointsSlotForSlot)
{
    auto specs = standardPoints();
    specs.resize(1);
    const auto batch = runPoints(specs, 3);
    const MetricSummary direct =
        runSeeds(specs[0].config, specs[0].benchmark, specs[0].lengths,
                 specs[0].seeds);
    EXPECT_EQ(fnv1a(summaryBytes(batch.front())),
              fnv1a(summaryBytes(direct)));
}

} // namespace
} // namespace cmpsim
