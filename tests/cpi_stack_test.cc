/**
 * @file
 * CPI-stack / miss-genealogy layer (DESIGN.md Section 9): cycle
 * conservation, default-hash invariance when armed, lane-count
 * invariance of the attribution registry, the checkpoint refusal,
 * journey histograms, trace-span emission, and the run report's
 * cpi_stack section — including under CMPSIM_LANES > 1 and after a
 * checkpoint restore.
 */

#include "src/obs/cpi_stack.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/obs/run_report.h"
#include "src/obs/trace.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

constexpr std::uint64_t kWarmup = 10000;
constexpr std::uint64_t kMeasure = 6000;

/** Scoped environment variable (CmpSystem reads the layer's knobs
 *  from the environment at construction). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name_, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

    EnvGuard(const EnvGuard &) = delete;
    EnvGuard &operator=(const EnvGuard &) = delete;

  private:
    const char *name_;
};

SystemConfig
fullConfig(bool cpi_stack)
{
    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/4,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/true);
    cfg.seed = 7;
    cfg.cpi_stack = cpi_stack;
    return cfg;
}

std::string
registryDump(const StatRegistry &reg)
{
    std::ostringstream os;
    reg.dump(os);
    return os.str();
}

std::string
mainFingerprint(CmpSystem &sys)
{
    std::ostringstream os;
    sys.stats().dump(os);
    os << "cycles " << sys.cycles() << "\n";
    os << "instructions " << sys.instructions() << "\n";
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(CpiStackTest, AttributedCyclesSumExactlyToElapsed)
{
    CmpSystem sys(fullConfig(true), benchmarkParams("zeus"));
    sys.warmup(kWarmup);
    sys.run(kMeasure);

    ASSERT_GT(sys.cycles(), 0u);
    for (unsigned c = 0; c < sys.config().cores; ++c) {
        const CpiAccount *a = sys.cpiAccount(c);
        ASSERT_NE(a, nullptr);
        // Window accounting spans exactly the measured interval.
        EXPECT_EQ(a->attributed(), sys.cycles()) << "core " << c;
        // And the per-leaf split loses nothing.
        std::string why;
        EXPECT_TRUE(a->conserved(why)) << why;
        std::uint64_t sum = 0;
        for (unsigned l = 0; l < kCpiLeafCount; ++l)
            sum += a->leafCycles(static_cast<CpiLeaf>(l));
        EXPECT_EQ(sum, sys.cycles()) << "core " << c;
    }
    // The wired-in audit agrees.
    EXPECT_TRUE(sys.audits().check().empty());
}

TEST(CpiStackTest, MemoryLeavesActuallyPopulated)
{
    CmpSystem sys(fullConfig(true), benchmarkParams("zeus"));
    sys.warmup(kWarmup);
    sys.run(kMeasure);

    std::uint64_t dram = 0, l2svc = 0, decomp = 0;
    for (unsigned c = 0; c < sys.config().cores; ++c) {
        const CpiAccount *a = sys.cpiAccount(c);
        dram += a->leafCycles(CpiLeaf::DramService);
        l2svc += a->leafCycles(CpiLeaf::L2Service);
        decomp += a->leafCycles(CpiLeaf::Decompression);
    }
    // A compressed config with off-chip misses must show DRAM and L2
    // service time and some decompression exposure.
    EXPECT_GT(dram, 0u);
    EXPECT_GT(l2svc, 0u);
    EXPECT_GT(decomp, 0u);

    const MissJournal *j = sys.missJournal();
    ASSERT_NE(j, nullptr);
    EXPECT_GT(j->recordsCompleted(), 0u);
    EXPECT_GT(sys.cpiStats().histogram("genealogy.journey_cycles")
                  .total(),
              0u);
    EXPECT_GT(sys.cpiStats().counter("genealogy.completed"), 0u);
}

TEST(CpiStackTest, ArmingDoesNotChangeMainStats)
{
    std::string unarmed, armed;
    {
        CmpSystem sys(fullConfig(false), benchmarkParams("apsi"));
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        unarmed = mainFingerprint(sys);
        EXPECT_TRUE(registryDump(sys.cpiStats()).empty());
        EXPECT_EQ(sys.cpiAccount(0), nullptr);
        EXPECT_EQ(sys.missJournal(), nullptr);
    }
    {
        CmpSystem sys(fullConfig(true), benchmarkParams("apsi"));
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        armed = mainFingerprint(sys);
        EXPECT_FALSE(registryDump(sys.cpiStats()).empty());
    }
    // Byte-identical: the layer only observes.
    EXPECT_EQ(unarmed, armed);
}

TEST(CpiStackTest, AttributionIsLaneCountInvariant)
{
    std::string main1, main2, cpi1, cpi2;
    {
        SystemConfig cfg = fullConfig(true);
        cfg.lanes = 1;
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        main1 = mainFingerprint(sys);
        cpi1 = registryDump(sys.cpiStats());
    }
    {
        SystemConfig cfg = fullConfig(true);
        cfg.lanes = 2;
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        main2 = mainFingerprint(sys);
        cpi2 = registryDump(sys.cpiStats());
    }
    // Both the simulated results and the attribution itself must be
    // byte-identical across event-kernel lane counts.
    EXPECT_EQ(main1, main2);
    EXPECT_EQ(cpi1, cpi2);
}

TEST(CpiStackTest, EnvKnobArmsAndDisarms)
{
    {
        EnvGuard arm("CMPSIM_CPISTACK", "1");
        CmpSystem sys(fullConfig(false), benchmarkParams("zeus"));
        EXPECT_TRUE(sys.config().cpi_stack);
        EXPECT_NE(sys.missJournal(), nullptr);
    }
    {
        EnvGuard off("CMPSIM_CPISTACK", "0");
        SystemConfig cfg = fullConfig(true);
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        EXPECT_FALSE(sys.config().cpi_stack);
        EXPECT_EQ(sys.missJournal(), nullptr);
    }
}

TEST(CpiStackTest, RefusesCheckpointCombination)
{
    EnvGuard ckpt("CMPSIM_CKPT", "cpi_refusal.ckpt:every5000");
    SystemConfig cfg = fullConfig(true);
    EXPECT_THROW(CmpSystem(cfg, benchmarkParams("apsi")), ConfigError);
    std::remove("cpi_refusal.ckpt");
    std::remove("cpi_refusal.ckpt.prev");
}

TEST(CpiStackTest, TracedArmedRunEmitsJourneySpans)
{
    const std::string path =
        ::testing::TempDir() + "cmpsim_cpi_trace.json";
    {
        TraceSession session(path);
        ASSERT_TRUE(session.active());
        CmpSystem sys(fullConfig(true), benchmarkParams("zeus"));
        sys.warmup(kWarmup);
        sys.run(kMeasure);
    }
    const std::string text = slurp(path);
    // Async begin/end journey spans with ids, on named per-core
    // journey tracks (Perfetto renders the thread_name metadata).
    EXPECT_NE(text.find("\"mem.journey\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(text.find("\"id\":"), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    EXPECT_NE(text.find("journeys (lane 0)"), std::string::npos);
    // Segment spans use the stable leaf names.
    EXPECT_NE(text.find("\"dram_service\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(CpiStackTest, ReportAndTraceUnderMultiLaneRun)
{
    const std::string path =
        ::testing::TempDir() + "cmpsim_cpi_lanes_trace.json";
    EnvGuard lanes("CMPSIM_LANES", "2");
    RunReport report;
    {
        TraceSession session(path);
        ASSERT_TRUE(session.active());
        CmpSystem sys(fullConfig(true), benchmarkParams("zeus"));
        EXPECT_EQ(sys.lanes(), 2u);
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        captureStats(sys.stats(), report);
        captureCpiStats(sys.cpiStats(), report);
        report.cycles = sys.cycles();
    }
    EXPECT_FALSE(report.counters.empty());
    EXPECT_FALSE(report.cpi_stack.empty());
    EXPECT_FALSE(report.cpi_histograms.empty());
    std::ostringstream os;
    writeRunReport(os, report);
    EXPECT_NE(os.str().find("\"cpi_stack\""), std::string::npos);
    EXPECT_NE(os.str().find("genealogy.completed"), std::string::npos);

    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"mem.journey\""), std::string::npos);
    EXPECT_NE(text.find("journeys (lane 1)"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CpiStackTest, ReportAndTraceUnderRestoredCheckpoint)
{
    // The CPI layer itself refuses checkpointing, so the restored leg
    // runs unarmed — what must keep working under a restore is the
    // tracer and the run report.
    const std::string ckpt = "cpi_restore_leg.ckpt";
    SystemConfig cfg = fullConfig(false);
    std::string baseline;
    {
        EnvGuard save("CMPSIM_CKPT", ckpt + ":every2000");
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        baseline = mainFingerprint(sys);
    }
    const std::string path =
        ::testing::TempDir() + "cmpsim_cpi_restore_trace.json";
    RunReport report;
    std::string resumed;
    {
        EnvGuard restore("CMPSIM_RESTORE", ckpt);
        TraceSession session(path);
        ASSERT_TRUE(session.active());
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        EXPECT_TRUE(sys.restoredFromCheckpoint());
        sys.warmup(kWarmup); // no-op on a restored system
        sys.run(kMeasure);
        resumed = mainFingerprint(sys);
        captureStats(sys.stats(), report);
        report.cycles = sys.cycles();
    }
    EXPECT_EQ(baseline, resumed);
    EXPECT_FALSE(report.counters.empty());
    std::ostringstream os;
    writeRunReport(os, report);
    EXPECT_NE(os.str().find("\"counters\""), std::string::npos);

    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"phase.measure\""), std::string::npos);
    std::remove(path.c_str());
    std::remove(ckpt.c_str());
    std::remove((ckpt + ".prev").c_str());
}

TEST(CpiStackTest, BankedDramRecordsRowHitOutcomes)
{
    EnvGuard dram("CMPSIM_DRAM", "banked");
    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/4,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/false,
                                  /*adaptive=*/false);
    cfg.seed = 7;
    cfg.cpi_stack = true;
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(kWarmup);
    sys.run(kMeasure);

    // Row-buffer outcomes are tagged onto journeys, and queue/service
    // time is split (the fixed path books everything as service).
    const StatRegistry &reg = sys.cpiStats();
    EXPECT_GT(reg.counter("genealogy.row_hits") +
                  reg.counter("genealogy.row_misses"),
              0u);
    std::uint64_t queue = 0;
    for (unsigned c = 0; c < sys.config().cores; ++c)
        queue += sys.cpiAccount(c)->leafCycles(CpiLeaf::DramQueue);
    (void)queue; // may be zero on an idle bus; presence checked above
    std::string why;
    for (unsigned c = 0; c < sys.config().cores; ++c)
        EXPECT_TRUE(sys.cpiAccount(c)->conserved(why)) << why;
}

TEST(CpiStackTest, LeafNamesAreStable)
{
    EXPECT_STREQ(cpiLeafName(CpiLeaf::Compute), "compute");
    EXPECT_STREQ(cpiLeafName(CpiLeaf::Decompression), "decompression");
    EXPECT_STREQ(cpiLeafName(CpiLeaf::PfResidue), "pf_residue");
    EXPECT_STREQ(cpiLeafName(CpiLeaf::DramQueue), "dram_queue");
}

} // namespace
} // namespace cmpsim
