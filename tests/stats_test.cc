#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cmpsim {
namespace {

TEST(CounterTest, AccumulatesAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AverageTest, MeanOfSamples)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // buckets [0,10) [10,20) [20,30) [30,40) + ovf
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(39);
    h.sample(100); // overflow
    h.sample(-3);  // underflow bucket, not bucket 0
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramTest, MeanTracksSamples)
{
    Histogram h(1.0, 100);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, UnderflowCountsInMeanAndReset)
{
    Histogram h(1.0, 4);
    h.sample(-2.0);
    h.sample(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0); // negative sample still in the sum
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.total(), 0u);
}

TEST(HistogramTest, QuantileBucketUpperEdges)
{
    Histogram h(10.0, 4);
    // 10 samples: 4 in [0,10), 4 in [10,20), 2 in [20,30).
    for (int i = 0; i < 4; ++i)
        h.sample(5);
    for (int i = 0; i < 4; ++i)
        h.sample(15);
    h.sample(25);
    h.sample(25);
    EXPECT_DOUBLE_EQ(h.quantile(0.4), 10.0); // 4/10 within [0,10)
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.8), 20.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 30.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
}

TEST(HistogramTest, QuantileEmptyAndUnderflow)
{
    Histogram h(10.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0); // empty
    h.sample(-1);
    h.sample(-1);
    h.sample(5);
    h.sample(5);
    // p50 lands entirely in the underflow bucket -> reported as 0.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(StatRegistryTest, RegisterAndLookup)
{
    StatRegistry reg;
    Counter misses;
    reg.registerCounter("l2.misses", &misses);
    misses += 7;
    EXPECT_EQ(reg.counter("l2.misses"), 7u);
    EXPECT_TRUE(reg.hasCounter("l2.misses"));
    EXPECT_FALSE(reg.hasCounter("l2.hits"));
}

TEST(StatRegistryTest, DumpSortedOutput)
{
    StatRegistry reg;
    Counter b, a;
    reg.registerCounter("b.count", &b);
    reg.registerCounter("a.count", &a);
    ++a;
    b += 2;
    std::ostringstream os;
    reg.dump(os);
    EXPECT_EQ(os.str(), "a.count 1\nb.count 2\n");
}

TEST(StatRegistryTest, ResetAllZeroesCounters)
{
    StatRegistry reg;
    Counter c;
    Average a;
    reg.registerCounter("c", &c);
    reg.registerAverage("a", &a);
    c += 5;
    a.sample(2);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(StatRegistryTest, HistogramLookupDumpAndReset)
{
    StatRegistry reg;
    Histogram h(10.0, 4);
    reg.registerHistogram("l2.lat", &h);
    h.sample(5);
    h.sample(15);
    EXPECT_EQ(&reg.histogram("l2.lat"), &h);
    const auto names = reg.histogramNames();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "l2.lat");

    std::ostringstream os;
    reg.dump(os);
    const std::string dump = os.str();
    EXPECT_NE(dump.find("l2.lat.count 2\n"), std::string::npos);
    EXPECT_NE(dump.find("l2.lat.mean 10\n"), std::string::npos);
    EXPECT_NE(dump.find("l2.lat.p50 10\n"), std::string::npos);
    EXPECT_NE(dump.find("l2.lat.p99 20\n"), std::string::npos);
    EXPECT_NE(dump.find("l2.lat.underflow 0\n"), std::string::npos);

    reg.resetAll();
    EXPECT_EQ(h.total(), 0u);
}

TEST(StatRegistryTest, CounterNamesSorted)
{
    StatRegistry reg;
    Counter x, y;
    reg.registerCounter("z", &x);
    reg.registerCounter("a", &y);
    const auto names = reg.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "z");
}

TEST(SummaryTest, EmptyAndSingle)
{
    EXPECT_EQ(summarize({}).n, 0u);
    const auto s = summarize({5.0});
    EXPECT_EQ(s.n, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(SummaryTest, MeanAndCiOfKnownSamples)
{
    // n=4, mean 10, sample sd ~ 2.582; CI = 3.182 * sd/2
    const auto s = summarize({7, 9, 11, 13});
    EXPECT_EQ(s.n, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 10.0);
    EXPECT_NEAR(s.ci95, 3.182 * 2.5819889 / 2.0, 1e-3);
}

TEST(SummaryTest, IdenticalSamplesHaveZeroCi)
{
    const auto s = summarize({4.2, 4.2, 4.2});
    EXPECT_DOUBLE_EQ(s.mean, 4.2);
    EXPECT_NEAR(s.ci95, 0.0, 1e-12);
}

} // namespace
} // namespace cmpsim
