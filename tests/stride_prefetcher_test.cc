#include "src/prefetch/stride_prefetcher.h"

#include <gtest/gtest.h>

#include "src/prefetch/adaptive_controller.h"

namespace cmpsim {
namespace {

Addr
la(std::uint64_t line)
{
    return line << kLineShift;
}

PrefetcherParams
l1Params()
{
    PrefetcherParams p;
    p.startup_prefetches = 6;
    return p;
}

PrefetcherParams
l2Params()
{
    PrefetcherParams p;
    p.startup_prefetches = 25;
    return p;
}

TEST(StridePrefetcherTest, NoPrefetchBeforeFourMisses)
{
    StridePrefetcher pf(l1Params());
    EXPECT_TRUE(pf.observeMiss(la(100), 6).empty());
    EXPECT_TRUE(pf.observeMiss(la(101), 6).empty());
    EXPECT_TRUE(pf.observeMiss(la(102), 6).empty());
    EXPECT_EQ(pf.streamsAllocated(), 0u);
}

TEST(StridePrefetcherTest, FourthUnitStrideMissLaunchesStartupBurst)
{
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 100; l < 103; ++l)
        EXPECT_TRUE(pf.observeMiss(la(l), 6).empty());
    const auto out = pf.observeMiss(la(103), 6);
    ASSERT_EQ(out.size(), 6u);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(out[i], la(104 + i));
    EXPECT_EQ(pf.streamsAllocated(), 1u);
    EXPECT_EQ(pf.prefetchesGenerated(), 6u);
}

TEST(StridePrefetcherTest, NegativeUnitStrideDetected)
{
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 203; l > 200; --l)
        EXPECT_TRUE(pf.observeMiss(la(l), 6).empty());
    const auto out = pf.observeMiss(la(200), 6);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], la(199));
    EXPECT_EQ(out[5], la(194));
}

TEST(StridePrefetcherTest, NonUnitStrideDetected)
{
    StridePrefetcher pf(l1Params());
    // Stride of 3 lines: 100, 103, 106, 109.
    EXPECT_TRUE(pf.observeMiss(la(100), 6).empty());
    EXPECT_TRUE(pf.observeMiss(la(103), 6).empty()); // learns stride 3
    EXPECT_TRUE(pf.observeMiss(la(106), 6).empty()); // count 3
    const auto out = pf.observeMiss(la(109), 6);     // count 4: stream
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], la(112));
    EXPECT_EQ(out[1], la(115));
}

TEST(StridePrefetcherTest, StrideBeyondMaxNotLearned)
{
    PrefetcherParams p = l1Params();
    p.max_stride = 8;
    StridePrefetcher pf(p);
    for (std::uint64_t l = 100; l <= 100 + 16 * 10; l += 16)
        EXPECT_TRUE(pf.observeMiss(la(l), 6).empty());
    EXPECT_EQ(pf.streamsAllocated(), 0u);
}

TEST(StridePrefetcherTest, UseAdvancesStreamOneLine)
{
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 100; l < 104; ++l)
        pf.observeMiss(la(l), 6);
    // Startup window is 104..109; first use advances to 110.
    const auto out = pf.observeUse(la(104), 6);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], la(110));
    // And the window now includes 110.
    const auto out2 = pf.observeUse(la(110), 6);
    ASSERT_EQ(out2.size(), 1u);
    EXPECT_EQ(out2[0], la(111));
}

TEST(StridePrefetcherTest, UseOutsideAnyStreamIsIgnored)
{
    StridePrefetcher pf(l1Params());
    EXPECT_TRUE(pf.observeUse(la(500), 6).empty());
}

TEST(StridePrefetcherTest, MissInsideWindowKeepsStreamAlive)
{
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 100; l < 104; ++l)
        pf.observeMiss(la(l), 6);
    // A demand miss at 105 (prefetch evicted): stream advances anyway.
    const auto out = pf.observeMiss(la(105), 6);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], la(110));
}

TEST(StridePrefetcherTest, L2StartupIsTwentyFive)
{
    // Lines 2560..2588 all sit inside one 128-line page.
    StridePrefetcher pf(l2Params());
    for (std::uint64_t l = 2560; l < 2563; ++l)
        pf.observeMiss(la(l), 25);
    EXPECT_EQ(pf.observeMiss(la(2563), 25).size(), 25u);
}

TEST(StridePrefetcherTest, BurstStopsAtPageBoundary)
{
    // Training ends at line 123; page 0 ends at line 127: only 4 of
    // the 25 startup prefetches fit (hardware prefetchers cannot
    // cross a physical page).
    StridePrefetcher pf(l2Params());
    for (std::uint64_t l = 120; l < 123; ++l)
        pf.observeMiss(la(l), 25);
    const auto out = pf.observeMiss(la(123), 25);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.back(), la(127));
    // Advances refuse to cross the boundary too.
    EXPECT_TRUE(pf.observeUse(la(124), 25).empty());
}

TEST(StridePrefetcherTest, StartupLimitThrottlesBurst)
{
    StridePrefetcher pf(l2Params());
    for (std::uint64_t l = 100; l < 103; ++l)
        pf.observeMiss(la(l), 25);
    EXPECT_EQ(pf.observeMiss(la(103), 3).size(), 3u);
}

TEST(StridePrefetcherTest, ZeroLimitDisablesCompletely)
{
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 100; l < 110; ++l)
        EXPECT_TRUE(pf.observeMiss(la(l), 0).empty());
    EXPECT_EQ(pf.streamsAllocated(), 0u);
    EXPECT_EQ(pf.prefetchesGenerated(), 0u);
}

TEST(StridePrefetcherTest, InterleavedStreamsBothDetected)
{
    StridePrefetcher pf(l1Params());
    unsigned bursts = 0;
    for (std::uint64_t i = 0; i < 4; ++i) {
        bursts += !pf.observeMiss(la(1000 + i), 6).empty();
        bursts += !pf.observeMiss(la(5000 + i * 2), 6).empty();
    }
    EXPECT_EQ(bursts, 2u);
    EXPECT_EQ(pf.streamsAllocated(), 2u);
}

TEST(StridePrefetcherTest, StreamTableEvictsLru)
{
    PrefetcherParams p = l1Params();
    p.stream_entries = 2;
    StridePrefetcher pf(p);
    // Train three streams; the first should be evicted.
    for (std::uint64_t base : {1000u, 2000u, 3000u}) {
        for (std::uint64_t i = 0; i < 4; ++i)
            pf.observeMiss(la(base + i), 6);
    }
    EXPECT_EQ(pf.streamsAllocated(), 3u);
    // Stream 1's window (1004..1009) is gone: use does nothing.
    EXPECT_TRUE(pf.observeUse(la(1004), 6).empty());
    // Stream 3's window is alive.
    EXPECT_FALSE(pf.observeUse(la(3004), 6).empty());
}

TEST(StridePrefetcherTest, NegativeStreamStopsAtLineZero)
{
    StridePrefetcher pf(l1Params());
    pf.observeMiss(la(7), 6);
    pf.observeMiss(la(6), 6);
    pf.observeMiss(la(5), 6);
    const auto out = pf.observeMiss(la(4), 6);
    // Only lines 3,2,1,0 exist below 4.
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(out.back(), la(0));
}

TEST(StridePrefetcherTest, ClearDropsAllState)
{
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 100; l < 104; ++l)
        pf.observeMiss(la(l), 6);
    pf.clear();
    EXPECT_TRUE(pf.observeUse(la(104), 6).empty());
    // Training starts over.
    EXPECT_TRUE(pf.observeMiss(la(300), 6).empty());
}

TEST(AdaptiveControllerTest, DisabledAlwaysAllowsMax)
{
    AdaptivePrefetchController ctl(25, /*enabled=*/false);
    for (int i = 0; i < 100; ++i)
        ctl.onUselessPrefetch();
    EXPECT_EQ(ctl.allowedStartup(), 25u);
    EXPECT_EQ(ctl.uselessCount(), 100u);
}

TEST(AdaptiveControllerTest, UselessAndHarmfulThrottle)
{
    AdaptivePrefetchController ctl(6, true);
    EXPECT_EQ(ctl.allowedStartup(), 6u);
    ctl.onUselessPrefetch();
    ctl.onHarmfulPrefetch();
    EXPECT_EQ(ctl.allowedStartup(), 4u);
    for (int i = 0; i < 10; ++i)
        ctl.onUselessPrefetch();
    EXPECT_EQ(ctl.allowedStartup(), 0u);
}

TEST(AdaptiveControllerTest, UsefulPrefetchesRecover)
{
    AdaptivePrefetchController ctl(6, true);
    for (int i = 0; i < 6; ++i)
        ctl.onUselessPrefetch();
    EXPECT_EQ(ctl.allowedStartup(), 0u);
    ctl.onUsefulPrefetch();
    ctl.onUsefulPrefetch();
    EXPECT_EQ(ctl.allowedStartup(), 2u);
    for (int i = 0; i < 100; ++i)
        ctl.onUsefulPrefetch();
    EXPECT_EQ(ctl.allowedStartup(), 6u);
}

TEST(AdaptiveControllerTest, ThrottledPrefetcherEndToEnd)
{
    // Counter at 2 limits the startup burst of a fresh stream.
    AdaptivePrefetchController ctl(6, true);
    for (int i = 0; i < 4; ++i)
        ctl.onUselessPrefetch();
    StridePrefetcher pf(l1Params());
    for (std::uint64_t l = 100; l < 103; ++l)
        pf.observeMiss(la(l), ctl.allowedStartup());
    EXPECT_EQ(pf.observeMiss(la(103), ctl.allowedStartup()).size(), 2u);
}

} // namespace
} // namespace cmpsim
