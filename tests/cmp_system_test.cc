#include "src/core_api/cmp_system.h"

#include <gtest/gtest.h>

#include "src/core_api/experiment.h"
#include "src/core_api/miss_classify.h"

namespace cmpsim {
namespace {

constexpr std::uint64_t kWarm = 60000;
constexpr std::uint64_t kMeasure = 15000;

/** Build, warm and run one config; returns the system for probing. */
std::unique_ptr<CmpSystem>
runSystem(SystemConfig cfg, const std::string &wl,
          std::uint64_t warm = kWarm, std::uint64_t measure = kMeasure)
{
    auto sys =
        std::make_unique<CmpSystem>(cfg, benchmarkParams(wl));
    sys->warmup(warm);
    sys->run(measure);
    return sys;
}

TEST(CmpSystemTest, RunsAndRetiresRequestedWork)
{
    auto sys = runSystem(makeConfig(8, 4, false, false, false, false),
                         "zeus");
    EXPECT_GE(sys->instructions(), 8u * kMeasure);
    EXPECT_GT(sys->cycles(), 0u);
    EXPECT_GT(sys->ipc(), 0.5);
    EXPECT_LT(sys->ipc(), 32.0);
}

TEST(CmpSystemTest, WarmupPopulatesCachesAndResetsStats)
{
    SystemConfig cfg = makeConfig(4, 4, false, false, false, false);
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(kWarm);
    // Caches warm but stats clean.
    EXPECT_GT(sys.l2().effectiveBytes(), 0u);
    EXPECT_EQ(sys.stats().counter("l2.demand_misses"), 0u);
    EXPECT_EQ(sys.memory().link().totalBytes(), 0u);
}

TEST(CmpSystemTest, DeterministicForSameSeed)
{
    const auto cfg = makeConfig(4, 4, true, true, true, true);
    auto a = runSystem(cfg, "apache");
    auto b = runSystem(cfg, "apache");
    EXPECT_EQ(a->cycles(), b->cycles());
    EXPECT_EQ(a->stats().counter("l2.demand_misses"),
              b->stats().counter("l2.demand_misses"));
}

TEST(CmpSystemTest, DifferentSeedsDiffer)
{
    auto cfg = makeConfig(4, 4, false, false, false, false);
    auto a = runSystem(cfg, "zeus");
    cfg.seed = 2;
    auto b = runSystem(cfg, "zeus");
    EXPECT_NE(a->cycles(), b->cycles());
}

TEST(CmpSystemTest, CompressionRaisesEffectiveCapacityForCommercial)
{
    auto sys = runSystem(makeConfig(8, 4, true, false, false, false),
                         "oltp", 400000);
    // oltp data is highly compressible (Table 3: ~1.8); even the
    // packed in-cache ratio should clear 1.15 once warm.
    EXPECT_GT(sys->compressionRatio(), 1.15);
    EXPECT_GT(sys->stats().counter("l2.penalized_hits"), 0u);
}

TEST(CmpSystemTest, CompressionReducesMissesForCommercial)
{
    auto base = runSystem(makeConfig(8, 4, false, false, false, false),
                          "apache", 120000);
    auto compr = runSystem(makeConfig(8, 4, true, true, false, false),
                           "apache", 120000);
    const double m_base =
        static_cast<double>(base->stats().counter("l2.demand_misses"));
    const double m_compr = static_cast<double>(
        compr->stats().counter("l2.demand_misses"));
    EXPECT_LT(m_compr, m_base);
}

TEST(CmpSystemTest, LinkCompressionReducesFlits)
{
    auto plain = runSystem(makeConfig(8, 4, false, false, false, false),
                           "oltp");
    auto link = runSystem(makeConfig(8, 4, false, true, false, false),
                          "oltp");
    auto flits_per_msg = [](CmpSystem &sys) {
        return static_cast<double>(sys.memory().dataFlits()) /
               static_cast<double>(sys.memory().reads() +
                                   sys.memory().writebacks());
    };
    EXPECT_DOUBLE_EQ(flits_per_msg(*plain), 8.0);
    EXPECT_LT(flits_per_msg(*link), 7.0); // oltp compresses well
}

TEST(CmpSystemTest, PrefetchingIssuesAndCovers)
{
    auto sys = runSystem(makeConfig(8, 4, false, false, true, false),
                         "zeus", 120000);
    EXPECT_GT(sys->stats().counter("l2.l2pf_issued"), 0u);
    EXPECT_GT(sys->stats().counter("l2.pf_hits_l2"), 0u);
    EXPECT_GT(sys->sumL1Counter("l1d", "pf_issued"), 0u);
    EXPECT_GT(sys->sumL1Counter("l1i", "pf_issued"), 0u);
}

TEST(CmpSystemTest, PrefetchingHurtsJbbAdaptiveRescues)
{
    // The paper's jbb story: non-adaptive prefetching degrades
    // performance; the adaptive mechanism recovers most of it.
    auto base = runSystem(makeConfig(8, 4, false, false, false, false),
                          "jbb", 120000, 25000);
    auto pref = runSystem(makeConfig(8, 4, false, false, true, false),
                          "jbb", 120000, 25000);
    auto adap = runSystem(makeConfig(8, 4, false, false, true, true),
                          "jbb", 120000, 25000);
    EXPECT_GT(pref->cycles(), base->cycles());  // prefetching hurts
    EXPECT_LT(adap->cycles(), pref->cycles());  // adaptation recovers
    // And the adaptive throttle actually engaged.
    EXPECT_LT(adap->l2Adaptive().counterValue(), 25u);
}

TEST(CmpSystemTest, InfiniteBandwidthNeverSlower)
{
    auto finite = runSystem(makeConfig(8, 4, false, false, true, false),
                            "fma3d", 80000);
    auto cfg = makeConfig(8, 4, false, false, true, false);
    cfg.infinite_bandwidth = true;
    auto infinite = runSystem(cfg, "fma3d", 80000);
    EXPECT_LE(infinite->cycles(), finite->cycles());
    // Demand measured on the infinite link exceeds the 20 GB/s cap
    // for the paper's bandwidth-bound workload.
    EXPECT_GT(infinite->bandwidthGBps(), 20.0);
}

TEST(CmpSystemTest, LowerPinBandwidthIsSlower)
{
    auto fast =
        runSystem(makeConfig(8, 4, false, false, false, false, 80.0),
                  "apache");
    auto slow =
        runSystem(makeConfig(8, 4, false, false, false, false, 10.0),
                  "apache");
    EXPECT_GT(slow->cycles(), fast->cycles());
}

TEST(CmpSystemTest, CoreCountScalesPressure)
{
    // Same per-core work: more cores -> more contention per core on
    // the shared L2 and pins (the premise of Figures 1 and 12).
    auto one = runSystem(makeConfig(1, 4, false, false, false, false),
                         "zeus");
    auto sixteen =
        runSystem(makeConfig(16, 4, false, false, false, false), "zeus");
    const double ipc1 = one->ipc() / 1.0;
    const double ipc16 = sixteen->ipc() / 16.0;
    EXPECT_LT(ipc16, ipc1);
}

TEST(CmpSystemTest, SharedL2PrefetcherAblationRuns)
{
    auto cfg = makeConfig(4, 4, false, false, true, false);
    cfg.shared_l2_prefetcher = true;
    auto sys = runSystem(cfg, "mgrid");
    EXPECT_GT(sys->stats().counter("l2.l2pf_issued"), 0u);
}

TEST(CmpSystemTest, VictimTagsPresentInAdaptiveConfigs)
{
    auto cfg = makeConfig(8, 4, false, false, true, true);
    auto sys = runSystem(cfg, "jbb");
    // Uncompressed adaptive config has 4 extra tags per set: victim
    // tags survive even in heavily-churned sets (Section 5.4).
    EXPECT_GT(sys->l2().meanVictimTags(), 0.3);
}

TEST(ExperimentTest, RunOnceExtractsMetrics)
{
    RunLengths len;
    len.warmup_per_core = kWarm;
    len.measure_per_core = kMeasure;
    const auto r =
        runOnce(makeConfig(8, 4, true, true, true, true), "zeus", len);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.l2_demand_accesses, 0.0);
    EXPECT_GT(r.bandwidth_gbps, 0.0);
    EXPECT_GT(r.compression_ratio, 0.5);
    EXPECT_GT(r.l2pf.rate_per_kilo_instr, 0.0);
    EXPECT_GE(r.l2pf.accuracy_pct, 0.0);
    EXPECT_LE(r.l2pf.accuracy_pct, 100.0);
}

TEST(ExperimentTest, RunSeedsSummarizes)
{
    RunLengths len;
    len.warmup_per_core = 30000;
    len.measure_per_core = 8000;
    const auto s = runSeeds(makeConfig(4, 4, false, false, false, false),
                            "art", len, 3);
    EXPECT_EQ(s.runs.size(), 3u);
    EXPECT_EQ(s.cycles.n, 3u);
    EXPECT_GT(s.cycles.mean, 0.0);
    EXPECT_GT(s.cycles.ci95, 0.0); // seeds differ
}

TEST(ExperimentTest, SpeedupAndInteractionMath)
{
    EXPECT_DOUBLE_EQ(speedup(200, 100), 2.0);
    // EQ 5: S(A,B) = S(A) x S(B) x (1 + I)
    EXPECT_NEAR(interaction(1.2, 1.1, 1.452), 0.10, 1e-9);
    EXPECT_NEAR(interaction(1.2, 1.1, 1.32), 0.0, 1e-9);
    EXPECT_LT(interaction(1.2, 1.1, 1.2), 0.0);
}

TEST(ExperimentTest, MissObserverFeedsClassifier)
{
    SystemConfig cfg = makeConfig(4, 4, false, false, false, false);
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    MissProfile profile;
    sys.l2().setMissObserver(
        [&](ReqType t, Addr line) { profile.record(t, line); });
    sys.warmup(kWarm);
    sys.run(kMeasure);
    EXPECT_EQ(profile.totalDemandMisses(),
              sys.stats().counter("l2.demand_misses"));
}

} // namespace
} // namespace cmpsim
