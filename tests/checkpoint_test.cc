/**
 * @file
 * Checkpoint/restore contract (DESIGN.md §13): a run interrupted by
 * an autosave and resumed in a fresh process finishes with stat dumps
 * byte-identical to the uninterrupted run — across lane counts and
 * DRAM backends — while damaged or mismatched snapshots are refused
 * with [config]-kind errors, a bit-flipped primary falls back to its
 * .prev predecessor, and a SIGKILL landing mid-autosave (the chaos
 * test) never loses the run.
 */

#include "src/ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "src/ckpt/cont_tag.h"
#include "src/ckpt/controller.h"
#include "src/common/fingerprint.h"
#include "src/common/sim_error.h"
#include "src/core_api/cmp_system.h"
#include "src/sim/fault_injection.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

constexpr std::uint64_t kWarmup = 5000;
constexpr std::uint64_t kMeasure = 3000;

SystemConfig
smallConfig()
{
    SystemConfig cfg = makeConfig(/*cores=*/2, /*scale=*/8,
                                  /*cache_compression=*/true,
                                  /*link_compression=*/true,
                                  /*prefetching=*/true,
                                  /*adaptive=*/true);
    cfg.seed = 4242;
    cfg.audit_interval = 5000;
    return cfg;
}

std::string
ckptPath(const char *name)
{
    return ::testing::TempDir() + "cmpsim_" + name + ".ckpt";
}

void
removeSnapshots(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    std::remove((path + ".tmp").c_str());
}

/** Stats fingerprint of a finished system, exactly as the
 *  determinism gate hashes it. */
std::uint64_t
statsHash(CmpSystem &sys)
{
    std::ostringstream out;
    sys.stats().dump(out);
    out << "cycles " << sys.cycles() << "\n";
    out << "instructions " << sys.instructions() << "\n";
    out << "audit_passes " << sys.audits().passesRun() << "\n";
    return fnv1a(out.str());
}

/** One full warmup + run under the current environment. */
std::uint64_t
runToEnd(const SystemConfig &cfg, const char *workload)
{
    CmpSystem sys(cfg, benchmarkParams(workload));
    sys.warmup(kWarmup);
    sys.run(kMeasure);
    return statsHash(sys);
}

/** Scoped environment variable (CmpSystem reads the checkpoint knobs
 *  from the environment at construction). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name_, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

    EnvGuard(const EnvGuard &) = delete;
    EnvGuard &operator=(const EnvGuard &) = delete;

  private:
    const char *name_;
};

/** Arm continuation tagging for direct checkpointBytes() use (the
 *  env-armed paths arm it themselves in the CmpSystem constructor). */
class ArmGuard
{
  public:
    ArmGuard() { ckpt::setArmed(true); }
    ~ArmGuard() { ckpt::setArmed(false); }
};

void
flipByte(const std::string &path, std::size_t offset)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_LT(offset, size);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

// ------------------------------------------------------- roundtrip

TEST(CheckpointTest, SaveRestoreSaveIsByteIdentical)
{
    ArmGuard arm;
    const SystemConfig cfg = smallConfig();

    CmpSystem first(cfg, benchmarkParams("zeus"));
    first.warmup(kWarmup);
    first.run(kMeasure);
    const std::string bytes = first.checkpointBytes();

    CmpSystem second(cfg, benchmarkParams("zeus"));
    second.restoreCheckpoint(bytes);
    EXPECT_TRUE(second.restoredFromCheckpoint());
    EXPECT_EQ(second.checkpointBytes(), bytes);
    EXPECT_EQ(statsHash(second), statsHash(first));
}

TEST(CheckpointTest, AutosaveResumeMatchesUninterruptedRun)
{
    const SystemConfig cfg = smallConfig();
    const std::uint64_t baseline = runToEnd(cfg, "zeus");

    const std::string path = ckptPath("AutosaveResume");
    removeSnapshots(path);
    {
        // Autosaving is a pure observer: same hash as the baseline,
        // and the last mid-run snapshot is left on disk.
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        EXPECT_EQ(runToEnd(cfg, "zeus"), baseline);
    }
    {
        // Resume from the last snapshot: warmup is a no-op (the state
        // is already mid-measurement) and the run finishes toward the
        // original retirement target with the baseline hash.
        EnvGuard restore("CMPSIM_RESTORE", path);
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        EXPECT_TRUE(sys.restoredFromCheckpoint());
        sys.warmup(kWarmup);
        sys.run(kMeasure);
        EXPECT_EQ(statsHash(sys), baseline);
    }
    removeSnapshots(path);
}

TEST(CheckpointTest, SnapshotRestoresAcrossLaneCounts)
{
    const SystemConfig cfg = smallConfig();
    const std::uint64_t baseline = runToEnd(cfg, "apsi");

    const std::string path = ckptPath("LaneRestore");
    removeSnapshots(path);
    {
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        EXPECT_EQ(runToEnd(cfg, "apsi"), baseline);
    }
    {
        // A snapshot saved by the single-threaded kernel resumes on
        // the sharded kernel (CMPSIM_LANES invariance, DESIGN.md §12)
        // with identical results.
        EnvGuard restore("CMPSIM_RESTORE", path);
        EnvGuard lanes("CMPSIM_LANES", "4");
        SystemConfig sharded = cfg;
        sharded.lanes = 4;
        CmpSystem sys(sharded, benchmarkParams("apsi"));
        sys.run(kMeasure);
        EXPECT_EQ(statsHash(sys), baseline);
    }
    removeSnapshots(path);
}

TEST(CheckpointTest, BankedDramStateRoundtrips)
{
    SystemConfig cfg = smallConfig();
    cfg.dram.backend = DramBackendKind::Banked;
    const std::uint64_t baseline = runToEnd(cfg, "zeus");

    const std::string path = ckptPath("BankedDram");
    removeSnapshots(path);
    {
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        EXPECT_EQ(runToEnd(cfg, "zeus"), baseline);
    }
    {
        EnvGuard restore("CMPSIM_RESTORE", path);
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        sys.run(kMeasure);
        EXPECT_EQ(statsHash(sys), baseline);
    }
    removeSnapshots(path);
}

// ------------------------------------------------------- rejection

TEST(CheckpointTest, MismatchedFingerprintIsRefused)
{
    const SystemConfig cfg = smallConfig();
    const std::string path = ckptPath("FingerprintMismatch");
    removeSnapshots(path);
    {
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        runToEnd(cfg, "zeus");
    }

    EnvGuard restore("CMPSIM_RESTORE", path);
    // Different workload: fingerprints disagree, restore is refused.
    EXPECT_THROW(CmpSystem(cfg, benchmarkParams("apsi")), ConfigError);
    // Different behavioural config knob: ditto.
    SystemConfig other = cfg;
    other.cache_compression = false;
    EXPECT_THROW(CmpSystem(other, benchmarkParams("zeus")), ConfigError);
    removeSnapshots(path);
}

TEST(CheckpointTest, TruncatedSnapshotWithoutFallbackIsRefused)
{
    const SystemConfig cfg = smallConfig();
    const std::string path = ckptPath("Truncated");
    removeSnapshots(path);
    {
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        runToEnd(cfg, "zeus");
    }
    std::remove((path + ".prev").c_str());

    // Chop the file mid-section: the whole-file CRC no longer matches
    // and there is no .prev to fall back to.
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 200u);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() / 2);
    }

    EnvGuard restore("CMPSIM_RESTORE", path);
    try {
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        FAIL() << "truncated snapshot was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("[config]"),
                  std::string::npos)
            << e.what();
    }
    removeSnapshots(path);
}

TEST(CheckpointTest, BitFlippedPrimaryFallsBackToPrev)
{
    const SystemConfig cfg = smallConfig();
    const std::uint64_t baseline = runToEnd(cfg, "zeus");

    const std::string path = ckptPath("BitFlip");
    removeSnapshots(path);
    {
        // every500 over a few-thousand-cycle run: several autosaves,
        // so both the primary and its .prev predecessor exist.
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        runToEnd(cfg, "zeus");
    }
    std::ifstream prev(path + ".prev", std::ios::binary);
    ASSERT_TRUE(prev.good()) << "autosave never rotated a .prev";
    prev.close();

    flipByte(path, 4096);
    {
        // Corrupt primary, intact .prev: restore silently falls back
        // and the resumed run still reproduces the baseline.
        EnvGuard restore("CMPSIM_RESTORE", path);
        CmpSystem sys(cfg, benchmarkParams("zeus"));
        sys.run(kMeasure);
        EXPECT_EQ(statsHash(sys), baseline);
    }

    flipByte(path + ".prev", 4096);
    {
        // Both damaged: refused with a [config]-kind error.
        EnvGuard restore("CMPSIM_RESTORE", path);
        EXPECT_THROW(CmpSystem(cfg, benchmarkParams("zeus")),
                     ConfigError);
    }
    removeSnapshots(path);
}

TEST(CheckpointTest, SamplerAndCheckpointAreMutuallyExclusive)
{
    SystemConfig cfg = smallConfig();
    cfg.sample_interval = 1000;
    const std::string path = ckptPath("SamplerConflict");
    EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
    EXPECT_THROW(CmpSystem(cfg, benchmarkParams("zeus")), ConfigError);
    removeSnapshots(path);
}

TEST(CheckpointTest, MalformedCkptSpecIsRefused)
{
    EXPECT_THROW(ckpt::Settings::parseCkptSpec("snap.bin"), ConfigError);
    EXPECT_THROW(ckpt::Settings::parseCkptSpec("snap.bin:every"),
                 ConfigError);
    EXPECT_THROW(ckpt::Settings::parseCkptSpec("snap.bin:every0"),
                 ConfigError);
    EXPECT_THROW(ckpt::Settings::parseCkptSpec("snap.bin:everyx9"),
                 ConfigError);
    const ckpt::Settings s = ckpt::Settings::parseCkptSpec(
        "snap.bin:every1000");
    EXPECT_EQ(s.save_path, "snap.bin");
    EXPECT_EQ(s.every, 1000u);
}

// ---------------------------------------------------- fault sites

TEST(CheckpointFaultTest, SaveSiteInjectsOnAutosave)
{
    const SystemConfig cfg = smallConfig();
    const std::string path = ckptPath("SaveFault");
    removeSnapshots(path);

    const FaultPlan plan = FaultPlan::parse("ckpt.save:1");
    FaultArmGuard arm(plan, /*attempt=*/1);
    EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(kWarmup);
    EXPECT_THROW(sys.run(kMeasure), InjectedFault);
    removeSnapshots(path);
}

TEST(CheckpointFaultTest, LoadSiteInjectsOnRestore)
{
    const SystemConfig cfg = smallConfig();
    const std::string path = ckptPath("LoadFault");
    removeSnapshots(path);
    {
        EnvGuard ckpt("CMPSIM_CKPT", path + ":every500");
        runToEnd(cfg, "zeus");
    }

    const FaultPlan plan = FaultPlan::parse("ckpt.load:1");
    FaultArmGuard arm(plan, /*attempt=*/1);
    EnvGuard restore("CMPSIM_RESTORE", path);
    EXPECT_THROW(CmpSystem(cfg, benchmarkParams("zeus")), InjectedFault);
    removeSnapshots(path);
}

// ----------------------------------------------------- chaos test

/**
 * Crash-safety: fork a child that runs with frequent autosaves, then
 * SIGKILL it as soon as a snapshot exists — with every500 the kill
 * frequently lands inside atomicSave's write/rename window. Whatever
 * instant the kill hit, the parent must be able to resume from the
 * primary-or-.prev snapshot and finish with the uninterrupted run's
 * exact stats.
 */
TEST(CheckpointChaosTest, KilledMidAutosaveResumesFromSnapshot)
{
    const SystemConfig cfg = smallConfig();
    const std::uint64_t baseline = runToEnd(cfg, "zeus");

    const std::string path = ckptPath("Chaos");
    removeSnapshots(path);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: autosave aggressively until killed. _exit, never
        // return into gtest.
        setenv("CMPSIM_CKPT", (path + ":every500").c_str(), 1);
        try {
            CmpSystem sys(cfg, benchmarkParams("zeus"));
            sys.warmup(kWarmup);
            sys.run(kMeasure);
        } catch (...) {
        }
        _exit(0);
    }

    // Parent: kill the child the moment any snapshot exists (or reap
    // it if the run finished first — the last autosave still resumes).
    for (int i = 0; i < 20000; ++i) {
        if (access(path.c_str(), F_OK) == 0 ||
            access((path + ".prev").c_str(), F_OK) == 0)
            break;
        int wstatus = 0;
        if (waitpid(pid, &wstatus, WNOHANG) == pid)
            break;
        usleep(1000);
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    ASSERT_TRUE(access(path.c_str(), F_OK) == 0 ||
                access((path + ".prev").c_str(), F_OK) == 0)
        << "child was killed before any autosave landed";

    EnvGuard restore("CMPSIM_RESTORE", path);
    CmpSystem sys(cfg, benchmarkParams("zeus"));
    sys.warmup(kWarmup);
    sys.run(kMeasure);
    EXPECT_EQ(statsHash(sys), baseline);
    removeSnapshots(path);
}

} // namespace
} // namespace cmpsim
