/**
 * @file
 * Error-taxonomy contract (DESIGN.md §8): kinds, what() structure,
 * transience classification, the throwing cmpsim_fatal/cmpsim_panic
 * reporters, and SystemConfig::validate() rejections.
 */

#include "src/common/sim_error.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/log.h"
#include "src/core_api/cmp_system.h"
#include "src/workload/workload_params.h"

namespace cmpsim {
namespace {

TEST(SimErrorTest, WhatCarriesKindContextAndMessage)
{
    const ConfigError e("config.cores", "cores must be 1..16, got 99");
    EXPECT_EQ(std::string(e.what()),
              "[config] config.cores: cores must be 1..16, got 99");
    EXPECT_EQ(e.kind(), ErrorKind::Config);
    EXPECT_EQ(e.context(), "config.cores");
}

TEST(SimErrorTest, KindNamesAreStable)
{
    EXPECT_STREQ(errorKindName(ErrorKind::Config), "config");
    EXPECT_STREQ(errorKindName(ErrorKind::Workload), "workload");
    EXPECT_STREQ(errorKindName(ErrorKind::Invariant), "invariant");
    EXPECT_STREQ(errorKindName(ErrorKind::Watchdog), "watchdog");
    EXPECT_STREQ(errorKindName(ErrorKind::Injected), "injected");
    EXPECT_STREQ(errorKindName(ErrorKind::Internal), "internal");
}

TEST(SimErrorTest, TransienceSplitsDeterministicFromRetryable)
{
    EXPECT_FALSE(errorKindTransient(ErrorKind::Config));
    EXPECT_FALSE(errorKindTransient(ErrorKind::Workload));
    EXPECT_FALSE(errorKindTransient(ErrorKind::Invariant));
    EXPECT_TRUE(errorKindTransient(ErrorKind::Watchdog));
    EXPECT_TRUE(errorKindTransient(ErrorKind::Injected));
    EXPECT_TRUE(errorKindTransient(ErrorKind::Internal));
    EXPECT_TRUE(InjectedFault("l2.fill", 3, 1).transient());
    EXPECT_FALSE(WorkloadError("trace.read", "gone").transient());
}

TEST(SimErrorTest, HierarchyIsCatchableAsSimError)
{
    try {
        throw WatchdogTimeout("cmp_system.run", "no progress");
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Watchdog);
        EXPECT_TRUE(e.transient());
    }
}

TEST(SimErrorTest, InjectedFaultNamesSiteOccurrenceAndAttempt)
{
    const InjectedFault e("link.transfer", 5, 2);
    const std::string what = e.what();
    EXPECT_EQ(e.context(), "link.transfer");
    EXPECT_NE(what.find("occurrence 5"), std::string::npos) << what;
    EXPECT_NE(what.find("attempt 2"), std::string::npos) << what;
}

TEST(SimErrorTest, PanicThrowsInvariantErrorWithFileLineContext)
{
    try {
        cmpsim_panic("counter drifted by %d", 3);
        FAIL() << "panic did not throw";
    } catch (const InvariantError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("counter drifted by 3"), std::string::npos)
            << what;
        EXPECT_NE(what.find("sim_error_test.cc"), std::string::npos)
            << what;
    }
}

TEST(SimErrorTest, FatalThrowsConfigError)
{
    EXPECT_THROW(cmpsim_fatal("bad value for %s: %s", "KNOB", "x"),
                 ConfigError);
}

TEST(SimErrorTest, UnknownBenchmarkIsWorkloadError)
{
    try {
        benchmarkParams("no-such-benchmark");
        FAIL() << "benchmarkParams did not throw";
    } catch (const WorkloadError &e) {
        EXPECT_NE(std::string(e.what()).find("no-such-benchmark"),
                  std::string::npos)
            << e.what();
    }
}

// ------------------------------------------- SystemConfig::validate

TEST(ConfigValidateTest, PaperConfigMatrixPasses)
{
    for (const bool compress : {false, true}) {
        for (const bool prefetch : {false, true}) {
            const SystemConfig c = makeConfig(8, 4, compress, compress,
                                              prefetch, prefetch);
            EXPECT_NO_THROW(c.validate());
        }
    }
}

TEST(ConfigValidateTest, RejectsZeroAndOversizedCores)
{
    SystemConfig c = makeConfig(8, 4, false, false, false, false);
    c.cores = 0;
    EXPECT_THROW(c.validate(), ConfigError);
    c.cores = 17;
    EXPECT_THROW(c.validate(), ConfigError);
}

TEST(ConfigValidateTest, RejectsZeroScale)
{
    SystemConfig c = makeConfig(8, 4, false, false, false, false);
    c.scale = 0;
    EXPECT_THROW(c.validate(), ConfigError);
}

TEST(ConfigValidateTest, RejectsNonsensePinBandwidth)
{
    SystemConfig c = makeConfig(8, 4, false, false, false, false);
    c.pin_bandwidth_gbps = 0.0;
    EXPECT_THROW(c.validate(), ConfigError);
    c.pin_bandwidth_gbps = -5.0;
    EXPECT_THROW(c.validate(), ConfigError);
    // Infinite-bandwidth mode never consults the pin rate.
    c.infinite_bandwidth = true;
    EXPECT_NO_THROW(c.validate());
}

TEST(ConfigValidateTest, ErrorNamesTheOffendingKnob)
{
    SystemConfig c = makeConfig(8, 4, false, false, false, false);
    c.cores = 99;
    try {
        c.validate();
        FAIL() << "validate() did not throw";
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.context(), "config.cores");
    }
}

TEST(ConfigValidateTest, BadConfigIsRejectedAtSystemBuild)
{
    SystemConfig c = makeConfig(8, 4, true, true, true, true);
    c.scale = 0;
    EXPECT_THROW(CmpSystem(c, benchmarkParams("zeus")), ConfigError);
}

} // namespace
} // namespace cmpsim
