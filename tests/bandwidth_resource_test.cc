#include "src/sim/bandwidth_resource.h"

#include <gtest/gtest.h>

namespace cmpsim {
namespace {

TEST(BandwidthResourceTest, SingleTransferSerializationTime)
{
    BandwidthResource link(4.0); // 4 bytes/cycle
    // 72-byte message: 18 cycles.
    EXPECT_EQ(link.reserve(100, 72), 118u);
    EXPECT_EQ(link.totalBytes(), 72u);
    EXPECT_EQ(link.transfers(), 1u);
}

TEST(BandwidthResourceTest, BackToBackTransfersQueue)
{
    BandwidthResource link(4.0);
    EXPECT_EQ(link.reserve(0, 40), 10u);  // busy [0,10)
    EXPECT_EQ(link.reserve(0, 40), 20u);  // waits until 10
    EXPECT_EQ(link.reserve(5, 8), 22u);   // waits until 20
    EXPECT_GT(link.meanQueueDelay(), 0.0);
}

TEST(BandwidthResourceTest, IdleGapsDoNotQueue)
{
    BandwidthResource link(4.0);
    link.reserve(0, 8);                  // done at 2
    EXPECT_EQ(link.reserve(100, 8), 102u);
    EXPECT_DOUBLE_EQ(link.meanQueueDelay(), 0.0);
}

TEST(BandwidthResourceTest, InfiniteModeNeverQueues)
{
    BandwidthResource link(4.0, /*infinite=*/true);
    EXPECT_EQ(link.reserve(0, 400), 100u);
    EXPECT_EQ(link.reserve(0, 400), 100u); // same start, no queue
    EXPECT_DOUBLE_EQ(link.meanQueueDelay(), 0.0);
    EXPECT_EQ(link.totalBytes(), 800u); // demand still counted
}

TEST(BandwidthResourceTest, FractionalCyclesRoundUp)
{
    BandwidthResource link(4.0);
    // 6 bytes @4 B/c = 1.5 cycles -> arrives at cycle 2.
    EXPECT_EQ(link.reserve(0, 6), 2u);
    // Next transfer starts at 1.5, not 2: no capacity lost.
    EXPECT_EQ(link.reserve(0, 6), 3u);
}

TEST(BandwidthResourceTest, BusyCyclesAccumulate)
{
    BandwidthResource link(8.0);
    link.reserve(0, 80);
    link.reserve(50, 40);
    EXPECT_DOUBLE_EQ(link.busyCycles(), 15.0);
}

TEST(BandwidthResourceTest, ResetStatsClearsAccountingNotSchedule)
{
    BandwidthResource link(4.0);
    link.reserve(0, 4000); // busy until 1000
    link.resetStats();
    EXPECT_EQ(link.totalBytes(), 0u);
    // The channel is still busy: new transfer queues behind.
    EXPECT_GT(link.reserve(0, 4), 1000u);
}

TEST(BandwidthResourceTest, HigherRateFinishesSooner)
{
    BandwidthResource slow(2.0), fast(16.0);
    EXPECT_GT(slow.reserve(0, 64), fast.reserve(0, 64));
}

} // namespace
} // namespace cmpsim
